/**
 * @file
 * vsnoopserve — persistent simulation-as-a-service sweep server.
 *
 * Serves the job API (service/job_api.hh) over the embedded HTTP
 * server: clients POST sweep matrices, poll job status, and stream
 * byte-identical JSONL results; every run is cached on disk in a
 * content-addressed ResultStore so repeated what-if questions are
 * answered without simulating.  /metrics exposes queue and cache
 * counters in Prometheus text format.
 *
 *   vsnoopserve --addr 127.0.0.1:8100 --cache-dir vsnoop-cache &
 *   curl -d @matrix.json http://127.0.0.1:8100/jobs
 *   curl http://127.0.0.1:8100/jobs/1/results
 *
 * Observability: stderr carries one JSON object per log line
 * (structured access logs, job transitions, cache evictions);
 * GET /logs replays the most recent records with an optional
 * ?level= filter; /metrics includes latency histograms, build
 * info, and uptime; --trace-jobs exports every job's lifecycle
 * spans as a Perfetto-loadable Chrome trace on shutdown.
 *
 * SIGINT/SIGTERM drains in-flight runs, cancels queued jobs, and
 * exits 0 after a summary.  A second signal kills immediately.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/job_api.hh"
#include "service/job_queue.hh"
#include "service/result_store.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/slog.hh"
#include "sim/stats_server.hh"
#include "trace/job_trace.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnoopserve — persistent sweep server with a job queue and\n"
        "an on-disk content-addressed result cache\n"
        "\n"
        "usage: vsnoopserve [flags]\n"
        "\n"
        "  --addr H:P            listen address (default\n"
        "                        127.0.0.1:8100; port 0 picks a free\n"
        "                        port — the bound address is printed\n"
        "                        to stderr)\n"
        "  --cache-dir DIR       result-store directory, created if\n"
        "                        absent (default vsnoop-cache)\n"
        "  --cache-max-mb N      evict least-recently-used cached\n"
        "                        runs beyond N MB (default 512)\n"
        "  --jobs N              simulation worker threads per job\n"
        "                        (default hardware concurrency)\n"
        "  --http-threads N      HTTP connection workers (default 8)\n"
        "  --max-body-kb N       reject request bodies over N KB\n"
        "                        with 413 (default 1024)\n"
        "  --read-timeout-ms N   drop clients stalled longer than N\n"
        "                        ms mid-request (default 5000)\n"
        "  --store-max-age DUR   evict cached runs older than DUR\n"
        "                        (<N>[s|m|h|d], e.g. 7d; checked at\n"
        "                        startup and periodically; default\n"
        "                        off)\n"
        "  --trace-jobs FILE     write every job's lifecycle spans\n"
        "                        as a Chrome trace (Perfetto) to\n"
        "                        FILE on shutdown\n"
        "  --log-ring N          keep the last N log records for\n"
        "                        GET /logs (default 1024)\n"
        "  --help                this text\n"
        "\n"
        "HTTP API:\n"
        "  POST   /jobs               submit a sweep matrix (JSON)\n"
        "  GET    /jobs               list jobs\n"
        "  GET    /jobs/<id>          status + progress\n"
        "  GET    /jobs/<id>/results  stream results (JSONL,\n"
        "                             chunked, matrix order)\n"
        "  DELETE /jobs/<id>          cancel\n"
        "  GET    /metrics            Prometheus text format\n"
        "  GET    /logs               recent log records (JSONL;\n"
        "                             ?level=warn&n=100 filters)\n"
        "\n"
        "Results are byte-identical to offline vsnoopsweep output\n"
        "for the same matrix; identical submissions are served from\n"
        "the cache without executing any run.\n"
        "\n"
        "Flags accept both \"--flag value\" and \"--flag=value\".\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnoopserve: " << msg << "\n";
    std::exit(2);
}

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onSignal(int sig)
{
    g_signal = sig;
    static const char msg[] =
        "\nvsnoopserve: shutting down; draining in-flight runs"
        " (repeat the signal to kill)\n";
    ssize_t rc = write(2, msg, sizeof msg - 1);
    (void)rc;
}

void
installSignalHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        die(flag + " expects a non-negative integer, got '" + value +
            "'");
    return parsed;
}

/** "<N>[s|m|h|d]" (bare N = seconds) -> seconds. */
std::int64_t
parseDuration(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str())
        die(flag + " expects <N>[s|m|h|d], got '" + value + "'");
    std::string suffix(end);
    std::uint64_t mult = 0;
    if (suffix.empty() || suffix == "s")
        mult = 1;
    else if (suffix == "m")
        mult = 60;
    else if (suffix == "h")
        mult = 3600;
    else if (suffix == "d")
        mult = 86400;
    else
        die(flag + " expects <N>[s|m|h|d], got '" + value + "'");
    return static_cast<std::int64_t>(n * mult);
}

std::vector<std::string>
normalizeArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string addr = "127.0.0.1:8100";
    std::string cache_dir = "vsnoop-cache";
    std::uint64_t cache_max_mb = 512;
    unsigned jobs = 0;
    unsigned http_threads = 8;
    std::uint64_t max_body_kb = 1024;
    std::uint64_t read_timeout_ms = 5000;
    std::int64_t store_max_age_s = 0;
    std::string trace_jobs_path;
    std::uint64_t log_ring = 1024;

    std::vector<std::string> args = normalizeArgs(argc, argv);
    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--addr") {
            addr = next_value(i, flag);
        } else if (flag == "--cache-dir") {
            cache_dir = next_value(i, flag);
        } else if (flag == "--cache-max-mb") {
            cache_max_mb = parseUint(flag, next_value(i, flag));
        } else if (flag == "--jobs") {
            jobs = static_cast<unsigned>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--http-threads") {
            http_threads = static_cast<unsigned>(
                parseUint(flag, next_value(i, flag)));
            if (http_threads == 0)
                die("--http-threads must be at least 1");
        } else if (flag == "--max-body-kb") {
            max_body_kb = parseUint(flag, next_value(i, flag));
            if (max_body_kb == 0)
                die("--max-body-kb must be at least 1");
        } else if (flag == "--read-timeout-ms") {
            read_timeout_ms = parseUint(flag, next_value(i, flag));
            if (read_timeout_ms == 0)
                die("--read-timeout-ms must be at least 1");
        } else if (flag == "--store-max-age") {
            store_max_age_s = parseDuration(flag, next_value(i, flag));
        } else if (flag == "--trace-jobs") {
            trace_jobs_path = next_value(i, flag);
        } else if (flag == "--log-ring") {
            log_ring = parseUint(flag, next_value(i, flag));
            if (log_ring == 0)
                die("--log-ring must be at least 1");
        } else {
            die("unknown flag '" + flag + "' (try --help)");
        }
    }

    // Every log line on stderr is one JSON object (structured
    // access/job/eviction records); the plain-text banner and final
    // summary below are the only exceptions.
    quietLogging(false);
    slog().setRingCapacity(static_cast<std::size_t>(log_ring));
    slog().setJsonStderr(true);

    ResultStore store;
    store.setMaxAge(store_max_age_s);
    std::string error;
    if (!store.open(cache_dir, cache_max_mb * 1024 * 1024, &error))
        die("--cache-dir " + cache_dir + ": " + error);

    // Lifecycle spans are recorded only when they will be written
    // out — the recorder keeps every span until shutdown.
    JobTraceRecorder trace;
    JobTraceRecorder *tracePtr =
        trace_jobs_path.empty() ? nullptr : &trace;
    // Handlers reference the queue, so it must outlive the server's
    // worker threads: constructed before the server, destroyed
    // after it on every exit path.
    JobQueue queue(&store, jobs, tracePtr);

    MetricsRegistry registry;
    StatsServer server;
    server.setWorkers(http_threads);
    server.setMaxBodyBytes(max_body_kb * 1024);
    server.setReadTimeoutMs(static_cast<int>(read_timeout_ms));
    server.route("/", [] {
        HttpResponse resp;
        resp.body =
            "vsnoopserve\n"
            "  POST   /jobs               submit a sweep matrix\n"
            "  GET    /jobs               list jobs\n"
            "  GET    /jobs/<id>          status\n"
            "  GET    /jobs/<id>/results  stream results (JSONL)\n"
            "  DELETE /jobs/<id>          cancel\n"
            "  GET    /metrics            Prometheus text format\n"
            "  GET    /logs               recent log records (JSONL)\n";
        return resp;
    });
    server.route("/metrics", [&registry] {
        HttpResponse resp;
        resp.contentType = kPrometheusContentType;
        resp.body = registry.renderPrometheus();
        return resp;
    });
    registerJobRoutes(server, queue);
    server.routePrefix("GET", "/logs", [](const HttpRequest &request) {
        HttpResponse resp;
        if (request.path != "/logs") {
            resp.status = 404;
            resp.body = "not found\n";
            return resp;
        }
        LogLevel min_level = LogLevel::Debug;
        std::size_t max_count = std::size_t(-1);
        // Query is "k=v&k=v"; unknown keys are ignored, a bad
        // level or count is a client error.
        const std::string &q = request.query;
        for (std::size_t pos = 0; pos < q.size();) {
            std::size_t amp = q.find('&', pos);
            if (amp == std::string::npos)
                amp = q.size();
            std::string pair = q.substr(pos, amp - pos);
            pos = amp + 1;
            std::size_t eq = pair.find('=');
            if (eq == std::string::npos)
                continue;
            std::string key = pair.substr(0, eq);
            std::string value = pair.substr(eq + 1);
            if (key == "level") {
                std::optional<LogLevel> parsed =
                    parseLogLevel(value);
                if (!parsed) {
                    resp.status = 400;
                    resp.body = "unknown level '" + value +
                                "' (debug|info|warn|error)\n";
                    return resp;
                }
                min_level = *parsed;
            } else if (key == "n") {
                char *end = nullptr;
                std::uint64_t n =
                    std::strtoull(value.c_str(), &end, 10);
                if (end == value.c_str() || *end != '\0' || n == 0) {
                    resp.status = 400;
                    resp.body = "n expects a positive integer\n";
                    return resp;
                }
                max_count = static_cast<std::size_t>(n);
            }
        }
        resp.contentType = "application/x-ndjson";
        resp.body = slog().renderJsonl(min_level, max_count);
        return resp;
    });

    // All routes are known now; register their series, then the
    // store's and the queue's, and freeze the layout.
    store.registerMetrics(registry);
    queue.registerMetrics(registry);
    server.registerMetrics(registry);
    MetricsRegistry::Id build_info_id = registerBuildInfo(registry);
    MetricsRegistry::Id uptime_id = registry.addGauge(
        "vsnoop_uptime_seconds", "Seconds since the server started");
    registry.freeze();
    registry.set(build_info_id, 1.0);

    if (!server.start(addr, &error))
        die("--addr " + addr + ": " + error);
    std::cerr << "vsnoopserve: serving on http://" << server.address()
              << " (cache " << cache_dir << ", cap " << cache_max_mb
              << " MB, " << store.entryCount()
              << " cached runs)\n";

    installSignalHandlers();

    // Main thread doubles as the registry's single publisher.
    const auto started = std::chrono::steady_clock::now();
    std::uint64_t cycles = 0;
    while (g_signal == 0) {
        store.stageMetrics(registry);
        queue.stageMetrics(registry);
        server.stageMetrics(registry);
        registry.set(
            uptime_id,
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count());
        registry.publish();
        // Age out stale cache objects roughly once a minute.
        if (store_max_age_s > 0 && ++cycles % 240 == 0)
            store.evictExpired();
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }

    // Queue first so blocked result streams terminate, then the
    // server so workers drain, then a final summary.
    queue.shutdown();
    server.stop();

    if (!trace_jobs_path.empty()) {
        std::ofstream out(trace_jobs_path,
                          std::ios::binary | std::ios::trunc);
        if (out)
            trace.writeChromeTrace(out);
        if (!out.good())
            std::cerr << "vsnoopserve: cannot write --trace-jobs "
                      << trace_jobs_path << "\n";
    }
    std::cerr << "vsnoopserve: " << queue.jobsSubmitted()
              << " jobs submitted, " << queue.jobsCompleted()
              << " done, " << queue.jobsFailed() << " failed, "
              << queue.jobsCancelled() << " cancelled; "
              << queue.runsExecuted() << " runs executed, "
              << queue.runsFromCache() << " from cache ("
              << store.entryCount() << " cached, "
              << store.totalBytes() << " bytes)\n";
    return 0;
}
