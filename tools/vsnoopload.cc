/**
 * @file
 * vsnoopload — concurrent load generator for vsnoopserve.
 *
 * Hammers a running server with N client threads, each submitting
 * M sweep jobs drawn from a bounded pool of distinct matrices —
 * so a configurable fraction of submissions repeats an earlier
 * configuration and exercises the result cache — then polls each
 * job to completion, verifies the streamed results line count, and
 * reports end-to-end submit-to-done latency percentiles through
 * the repository's LatencyHistogram.
 *
 *   vsnoopserve --addr 127.0.0.1:8100 &
 *   vsnoopload --addr 127.0.0.1:8100 --clients 8 --submissions 4
 *
 * Exit status is non-zero when any request fails, so CI can use a
 * brief run as a pass/fail smoke of the serving path.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/sweep_wire.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "sim/stats_server.hh"
#include "system/heartbeat.hh"
#include "system/sweep.hh"
#include "workload/app_profile.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnoopload — concurrent load generator for vsnoopserve\n"
        "\n"
        "usage: vsnoopload --addr H:P [flags]\n"
        "\n"
        "  --addr H:P            server address (required)\n"
        "  --clients N           concurrent client threads\n"
        "                        (default 8)\n"
        "  --submissions N       jobs each client submits\n"
        "                        (default 4)\n"
        "  --distinct N          size of the distinct-matrix pool\n"
        "                        the clients draw from; submissions\n"
        "                        beyond the pool repeat earlier\n"
        "                        matrices and should be served from\n"
        "                        cache (default clients*submissions/2,\n"
        "                        i.e. every matrix submitted twice)\n"
        "  --apps A,B,...        app pool, one per matrix, cycled\n"
        "                        (default ferret)\n"
        "  --accesses N          accesses per vCPU per run\n"
        "                        (default 2000)\n"
        "  --seed-base N         first seed; matrix k uses seed\n"
        "                        N + k (default 1)\n"
        "  --poll-ms N           status poll interval (default 25)\n"
        "  --help                this text\n"
        "\n"
        "Flags accept both \"--flag value\" and \"--flag=value\".\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnoopload: " << msg << "\n";
    std::exit(2);
}

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        die(flag + " expects a non-negative integer, got '" + value +
            "'");
    return parsed;
}

std::vector<std::string>
splitList(const std::string &flag, const std::string &value)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        std::string item = value.substr(start, comma - start);
        if (item.empty())
            die(flag + " has an empty list element in '" + value +
                "'");
        items.push_back(std::move(item));
        start = comma + 1;
        if (comma == value.size())
            break;
    }
    if (items.empty())
        die(flag + " expects a non-empty comma-separated list");
    return items;
}

std::vector<std::string>
normalizeArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }
    return args;
}

struct ClientOutcome
{
    std::vector<std::uint64_t> latenciesMs;
    std::uint64_t failures = 0;
    std::uint64_t runsFromCache = 0;
    std::uint64_t runsExecuted = 0;
    std::vector<std::string> errors;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string addr;
    std::uint64_t clients = 8;
    std::uint64_t submissions = 4;
    std::uint64_t distinct = 0;
    std::vector<std::string> apps = {"ferret"};
    std::uint64_t accesses = 2000;
    std::uint64_t seed_base = 1;
    std::uint64_t poll_ms = 25;

    std::vector<std::string> args = normalizeArgs(argc, argv);
    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--addr") {
            addr = next_value(i, flag);
        } else if (flag == "--clients") {
            clients = parseUint(flag, next_value(i, flag));
        } else if (flag == "--submissions") {
            submissions = parseUint(flag, next_value(i, flag));
        } else if (flag == "--distinct") {
            distinct = parseUint(flag, next_value(i, flag));
        } else if (flag == "--apps") {
            apps = splitList(flag, next_value(i, flag));
        } else if (flag == "--accesses") {
            accesses = parseUint(flag, next_value(i, flag));
        } else if (flag == "--seed-base") {
            seed_base = parseUint(flag, next_value(i, flag));
        } else if (flag == "--poll-ms") {
            poll_ms = parseUint(flag, next_value(i, flag));
        } else {
            die("unknown flag '" + flag + "' (try --help)");
        }
    }
    if (addr.empty())
        die("--addr is required (try --help)");
    if (clients == 0 || submissions == 0)
        die("--clients and --submissions must be at least 1");
    for (const std::string &name : apps)
        if (tryFindApp(name) == nullptr)
            die("unknown app '" + name + "'");
    if (distinct == 0)
        distinct = std::max<std::uint64_t>(
            1, clients * submissions / 2);

    // The matrix pool: single-run matrices differing by seed (and
    // app, cycling the app list), so each is one cache key.
    std::vector<std::string> pool;
    pool.reserve(distinct);
    for (std::uint64_t k = 0; k < distinct; ++k) {
        SweepMatrix matrix;
        matrix.apps = {apps[k % apps.size()]};
        matrix.base.accessesPerVcpu = accesses;
        matrix.base.warmupAccessesPerVcpu = accesses / 4;
        matrix.seeds = {seed_base + k};
        pool.push_back(writeSweepRequestJson(
            matrix, "vsnoopload-" + std::to_string(k)));
    }

    std::vector<ClientOutcome> outcomes(clients);
    std::vector<std::thread> workers;
    workers.reserve(clients);
    auto wall_start = std::chrono::steady_clock::now();
    for (std::uint64_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            ClientOutcome &outcome = outcomes[c];
            auto failed = [&](const std::string &what) {
                ++outcome.failures;
                outcome.errors.push_back(what);
            };
            for (std::uint64_t s = 0; s < submissions; ++s) {
                const std::string &body =
                    pool[(c * submissions + s) % distinct];
                std::string error;
                std::uint64_t t0 = steadyNowMs();
                std::optional<HttpReply> reply =
                    httpRequest(addr, "POST", "/jobs", body,
                                "application/json", &error);
                if (!reply || reply->status != 200) {
                    failed("POST /jobs: " +
                           (reply ? "HTTP " +
                                        std::to_string(reply->status)
                                  : error));
                    continue;
                }
                std::optional<JsonValue> accepted =
                    parseJson(reply->body);
                if (!accepted) {
                    failed("POST /jobs: malformed response");
                    continue;
                }
                std::uint64_t id = static_cast<std::uint64_t>(
                    accepted->numberAt("job"));
                std::uint64_t runs_total =
                    static_cast<std::uint64_t>(
                        accepted->numberAt("runs_total"));

                std::string state = "queued";
                std::uint64_t cached = 0, executed = 0;
                for (;;) {
                    std::optional<HttpReply> poll = httpRequest(
                        addr, "GET",
                        "/jobs/" + std::to_string(id), "", "",
                        &error);
                    if (!poll || poll->status != 200) {
                        state = "lost";
                        break;
                    }
                    std::optional<JsonValue> status =
                        parseJson(poll->body);
                    if (!status) {
                        state = "lost";
                        break;
                    }
                    state = status->stringAt("state");
                    cached = static_cast<std::uint64_t>(
                        status->numberAt("runs_from_cache"));
                    executed = static_cast<std::uint64_t>(
                        status->numberAt("runs_executed"));
                    if (state == "done" || state == "failed" ||
                        state == "cancelled")
                        break;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(poll_ms));
                }
                if (state != "done") {
                    failed("job " + std::to_string(id) +
                           " ended in state '" + state + "'");
                    continue;
                }
                std::uint64_t t1 = steadyNowMs();

                std::optional<HttpReply> results = httpRequest(
                    addr, "GET",
                    "/jobs/" + std::to_string(id) + "/results", "",
                    "", &error);
                if (!results || results->status != 200) {
                    failed("GET results for job " +
                           std::to_string(id) + ": " +
                           (results ? "HTTP " + std::to_string(
                                                    results->status)
                                    : error));
                    continue;
                }
                std::uint64_t lines = 0;
                for (char ch : results->body)
                    if (ch == '\n')
                        ++lines;
                if (lines != runs_total) {
                    failed("job " + std::to_string(id) + ": " +
                           std::to_string(lines) + " result lines, "
                           "expected " + std::to_string(runs_total));
                    continue;
                }
                outcome.latenciesMs.push_back(t1 - t0);
                outcome.runsFromCache += cached;
                outcome.runsExecuted += executed;
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

    LatencyHistogram latency;
    std::uint64_t failures = 0, ok = 0;
    std::uint64_t cached = 0, executed = 0;
    for (const ClientOutcome &outcome : outcomes) {
        failures += outcome.failures;
        ok += outcome.latenciesMs.size();
        cached += outcome.runsFromCache;
        executed += outcome.runsExecuted;
        for (std::uint64_t ms : outcome.latenciesMs)
            latency.sample(ms);
        for (const std::string &err : outcome.errors)
            std::cerr << "vsnoopload: " << err << "\n";
    }

    std::printf("vsnoopload: %llu clients x %llu submissions "
                "(%llu distinct matrices)\n",
                static_cast<unsigned long long>(clients),
                static_cast<unsigned long long>(submissions),
                static_cast<unsigned long long>(distinct));
    std::printf("  completed %llu, failed %llu in %.2f s "
                "(%.2f jobs/s)\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failures), wall,
                wall > 0 ? static_cast<double>(ok) / wall : 0.0);
    std::printf("  runs executed %llu, served from cache %llu\n",
                static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(cached));
    if (latency.count() > 0) {
        std::printf("  submit-to-done latency ms: p50 %llu, "
                    "p90 %llu, p99 %llu, max %llu\n",
                    static_cast<unsigned long long>(
                        latency.quantile(0.50)),
                    static_cast<unsigned long long>(
                        latency.quantile(0.90)),
                    static_cast<unsigned long long>(
                        latency.quantile(0.99)),
                    static_cast<unsigned long long>(latency.max()));
    }
    return failures == 0 ? 0 : 1;
}
