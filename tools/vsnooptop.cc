/**
 * @file
 * vsnooptop — live terminal dashboard for a running simulation.
 *
 * Polls the /progress and /runs endpoints that vsnoopsim and
 * vsnoopsweep expose under --stats-addr and renders an ANSI
 * dashboard: sweep totals, per-run progress bars, filter-rate and
 * network-traffic sparklines, and watchdog state.
 *
 *   vsnoopsweep --apps coherence --stats-addr 127.0.0.1:9090 ... &
 *   vsnooptop --addr 127.0.0.1:9090
 *
 * Pointed at a vsnoopserve endpoint (which has no /progress), it
 * falls back to the job API and renders the job queue instead: one
 * row per job with state, run progress, and cache counts.  A server
 * is never "done", so that mode only exits when the endpoint goes
 * away.
 *
 * The dashboard is a pure observer: it shares nothing with the
 * simulator but the HTTP socket.  It exits 0 when the watched
 * process finishes (every run done, or the endpoint goes away after
 * at least one successful poll) and 1 when the first poll fails.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/json.hh"
#include "sim/stats_server.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnooptop — terminal dashboard for a live vsnoop run\n"
        "\n"
        "usage: vsnooptop --addr HOST:PORT [flags]\n"
        "\n"
        "Connects to the --stats-addr endpoint of a running\n"
        "vsnoopsim or vsnoopsweep and redraws a live dashboard:\n"
        "sweep progress, per-run progress bars, filter-rate and\n"
        "traffic sparklines, and no-progress watchdog state.\n"
        "Pointed at a vsnoopserve address it renders the job queue\n"
        "instead: one row per job with state, run progress, and\n"
        "cache counts.\n"
        "\n"
        "flags:\n"
        "  --addr HOST:PORT      endpoint to poll (required; the\n"
        "                        address the tool printed at start)\n"
        "  --interval MS         poll period in milliseconds\n"
        "                        (default 1000)\n"
        "  --once                print one frame without clearing\n"
        "                        the screen and exit (for scripts\n"
        "                        and CI)\n"
        "  --help                this text\n"
        "\n"
        "exit status: 0 once the watched run finishes (or the\n"
        "endpoint disappears after a successful poll), 1 when the\n"
        "first poll fails.\n"
        "\n"
        "Flags accept both \"--flag value\" and \"--flag=value\".\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnooptop: " << msg << "\n";
    std::exit(2);
}

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        die(flag + " expects a non-negative integer, got '" +
            value + "'");
    return parsed;
}

/** Expand "--flag=value" into "--flag","value". */
std::vector<std::string>
normalizeArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }
    return args;
}

/** @{ ANSI fragments (kept inline so --once output stays plain). */
const char *const kBold = "\x1b[1m";
const char *const kDim = "\x1b[2m";
const char *const kGreen = "\x1b[32m";
const char *const kYellow = "\x1b[33m";
const char *const kRed = "\x1b[31m";
const char *const kReset = "\x1b[0m";
/** @} */

/** A fixed-width progress bar, '#' for done and '.' for remaining. */
std::string
bar(double ratio, int width)
{
    if (ratio < 0.0)
        ratio = 0.0;
    if (ratio > 1.0)
        ratio = 1.0;
    int full = static_cast<int>(ratio * width + 0.5);
    std::string out = "[";
    for (int i = 0; i < width; ++i)
        out += i < full ? '#' : '.';
    out += ']';
    return out;
}

/** Render a history as a Unicode sparkline, scaled to its max. */
std::string
sparkline(const std::deque<double> &history)
{
    static const char *const kLevels[] = {
        "▁", "▂", "▃", "▄",
        "▅", "▆", "▇", "█",
    };
    double max = 0.0;
    for (double v : history)
        max = v > max ? v : max;
    std::string out;
    for (double v : history) {
        int level = max > 0.0
                        ? static_cast<int>(v / max * 7.0 + 0.5)
                        : 0;
        out += kLevels[level < 0 ? 0 : (level > 7 ? 7 : level)];
    }
    return out;
}

std::string
formatSeconds(double secs)
{
    char buf[48];
    if (secs >= 3600.0)
        std::snprintf(buf, sizeof buf, "%.0fh%02.0fm",
                      secs / 3600.0,
                      static_cast<double>(
                          static_cast<int>(secs / 60.0) % 60));
    else if (secs >= 60.0)
        std::snprintf(buf, sizeof buf, "%.0fm%02.0fs",
                      secs / 60.0,
                      static_cast<double>(
                          static_cast<int>(secs) % 60));
    else
        std::snprintf(buf, sizeof buf, "%.1fs", secs);
    return buf;
}

std::string
formatCount(double value)
{
    char buf[48];
    if (value >= 1e9)
        std::snprintf(buf, sizeof buf, "%.2fG", value / 1e9);
    else if (value >= 1e6)
        std::snprintf(buf, sizeof buf, "%.2fM", value / 1e6);
    else if (value >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", value / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
}

/** History depth of the dashboard sparklines. */
constexpr std::size_t kSparkWidth = 40;

struct DashboardState
{
    std::deque<double> filterRate;
    std::deque<double> byteHopRate;
    std::deque<double> eventRate;
    double lastByteHops = -1.0;
    std::uint64_t lastSampleMs = 0;
    /** Last /metrics scrape for the simulator-throughput line. */
    double lastEvents = -1.0;
    double lastTicks = -1.0;
    std::uint64_t lastMetricsMs = 0;

    void push(std::deque<double> &hist, double v)
    {
        hist.push_back(v);
        while (hist.size() > kSparkWidth)
            hist.pop_front();
    }
};

/**
 * Value of an unlabeled series in a Prometheus text exposition, or
 * nullopt when the series is absent (an older endpoint).
 */
std::optional<double>
scrapeSeries(const std::string &body, const std::string &name)
{
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        if (body.compare(pos, name.size(), name) == 0 &&
            pos + name.size() < eol &&
            body[pos + name.size()] == ' ')
            return std::strtod(body.c_str() + pos + name.size() + 1,
                               nullptr);
        pos = eol + 1;
    }
    return std::nullopt;
}

/** Rows shown in the job-queue frame before older jobs are elided. */
constexpr std::size_t kMaxJobRows = 20;

/** Warn/error rows of the log tail appended below the dashboard. */
constexpr std::size_t kLogTailRows = 8;

/**
 * A "recent warnings" panel built from the endpoint's GET /logs
 * ring (structured JSONL): the newest kLogTailRows warn/error
 * records.  Empty when the endpoint has no /logs (older build) or
 * nothing has gone wrong.
 */
std::string
renderLogTail(const std::string &addr)
{
    std::string error;
    std::optional<std::string> body =
        httpGet(addr, "/logs?level=warn&n=64", &error);
    if (!body || body->empty())
        return "";
    // Filter client-side too: exact-route /logs endpoints ignore
    // the query and return the whole ring.
    std::deque<std::string> rows;
    std::size_t pos = 0;
    while (pos < body->size()) {
        std::size_t eol = body->find('\n', pos);
        if (eol == std::string::npos)
            eol = body->size();
        std::string line = body->substr(pos, eol - pos);
        pos = eol + 1;
        std::optional<JsonValue> rec = parseJson(line);
        if (!rec || !rec->isObject())
            continue;
        std::string level = rec->stringAt("level");
        if (level != "warn" && level != "error")
            continue;
        char row[256];
        std::snprintf(row, sizeof row, "%s%-5s%s #%-6.0f %s\n",
                      level == "error" ? kRed : kYellow,
                      level.c_str(), kReset, rec->numberAt("seq"),
                      rec->stringAt("msg").c_str());
        rows.push_back(row);
        while (rows.size() > kLogTailRows)
            rows.pop_front();
    }
    if (rows.empty())
        return "";
    std::string panel = "\n";
    panel += kBold;
    panel += "recent warnings";
    panel += kReset;
    panel += '\n';
    for (const std::string &row : rows)
        panel += row;
    return panel;
}

/**
 * The vsnoopserve fallback: render the job queue when the endpoint
 * serves /jobs instead of /progress.  Returns nullopt when /jobs is
 * also missing or unparseable.
 */
std::optional<std::string>
renderJobsFrame(const std::string &addr)
{
    std::string error;
    std::optional<std::string> jobs_body =
        httpGet(addr, "/jobs", &error);
    if (!jobs_body)
        return std::nullopt;
    std::optional<JsonValue> doc = parseJson(*jobs_body);
    if (!doc || !doc->isObject())
        return std::nullopt;
    const JsonValue *jobs = doc->find("jobs");
    if (!jobs || !jobs->isArray())
        return std::nullopt;

    std::size_t queued = 0, running = 0, done = 0, failed = 0,
                cancelled = 0;
    for (const JsonValue &job : jobs->items()) {
        std::string job_state = job.stringAt("state");
        if (job_state == "queued")
            ++queued;
        else if (job_state == "running")
            ++running;
        else if (job_state == "done")
            ++done;
        else if (job_state == "failed")
            ++failed;
        else if (job_state == "cancelled")
            ++cancelled;
    }

    std::string frame;
    frame += kBold;
    frame += "vsnooptop";
    frame += kReset;
    frame += "  ";
    frame += addr;
    frame += "  (vsnoopserve job queue)\n\n";

    char line[256];
    std::snprintf(line, sizeof line,
                  "jobs    %zu total: %zu queued, %zu running, "
                  "%zu done, %zu failed, %zu cancelled\n\n",
                  jobs->items().size(), queued, running, done,
                  failed, cancelled);
    frame += line;

    // Newest jobs are the interesting ones; elide the old tail.
    std::size_t total = jobs->items().size();
    std::size_t first = total > kMaxJobRows ? total - kMaxJobRows : 0;
    if (first > 0) {
        std::snprintf(line, sizeof line, "%s... %zu older job(s)%s\n",
                      kDim, first, kReset);
        frame += line;
    }
    for (std::size_t i = first; i < total; ++i) {
        const JsonValue &job = jobs->items()[i];
        std::string job_state = job.stringAt("state");
        double runs_total = job.numberAt("runs_total");
        double runs_done = job.numberAt("runs_completed");
        double cached = job.numberAt("runs_from_cache");
        const char *color = kDim;
        if (job_state == "running")
            color = kYellow;
        else if (job_state == "done")
            color = kGreen;
        else if (job_state == "failed" || job_state == "cancelled")
            color = kRed;
        std::string label = job.stringAt("label");
        std::snprintf(
            line, sizeof line,
            "%s#%-5.0f %-9s %s %4.0f/%-4.0f runs, %.0f cached%s"
            "  %s\n",
            color, job.numberAt("job"), job_state.c_str(),
            bar(runs_total > 0 ? runs_done / runs_total : 0.0, 20)
                .c_str(),
            runs_done, runs_total, cached, kReset, label.c_str());
        frame += line;
        std::string job_error = job.stringAt("error");
        if (!job_error.empty()) {
            std::snprintf(line, sizeof line, "      %s%s%s\n", kRed,
                          job_error.c_str(), kReset);
            frame += line;
        }
    }
    return frame;
}

/** One rendered frame, or nullopt when a fetch/parse failed. */
std::optional<std::string>
renderFrame(const std::string &addr, DashboardState &state,
            std::uint64_t nowMs, bool *all_done)
{
    std::string error;
    std::optional<std::string> progress_body =
        httpGet(addr, "/progress", &error);
    if (!progress_body)
        return renderJobsFrame(addr);
    std::optional<std::string> runs_body =
        httpGet(addr, "/runs", &error);
    if (!runs_body)
        return std::nullopt;
    std::optional<JsonValue> progress = parseJson(*progress_body);
    std::optional<JsonValue> runs_doc = parseJson(*runs_body);
    if (!progress || !runs_doc || !progress->isObject() ||
        !runs_doc->isObject())
        return std::nullopt;

    double runs_total = progress->numberAt("runs_total");
    double runs_done = progress->numberAt("runs_done");
    double runs_running = progress->numberAt("runs_running");
    bool interrupted = false;
    if (const JsonValue *flag = progress->find("interrupted"))
        interrupted = flag->kind() == JsonValue::Kind::Bool &&
                      flag->boolean();
    *all_done = runs_total > 0 && runs_done >= runs_total;

    // Aggregate sparkline feeds: instantaneous filter rate and the
    // byte-hop delta per wall second since the previous poll.
    state.push(state.filterRate, progress->numberAt("filter_rate"));
    double byte_hops = progress->numberAt("traffic_byte_hops");
    if (state.lastByteHops >= 0.0 && nowMs > state.lastSampleMs) {
        double per_sec =
            (byte_hops - state.lastByteHops) /
            (static_cast<double>(nowMs - state.lastSampleMs) / 1000.0);
        state.push(state.byteHopRate, per_sec < 0.0 ? 0.0 : per_sec);
    }
    state.lastByteHops = byte_hops;
    state.lastSampleMs = nowMs;

    std::string frame;
    frame += kBold;
    frame += "vsnooptop";
    frame += kReset;
    frame += "  ";
    frame += addr;
    frame += "  ";
    frame += formatSeconds(progress->numberAt("elapsed_seconds"));
    frame += " elapsed";
    if (interrupted) {
        frame += "  ";
        frame += kRed;
        frame += "INTERRUPTED";
        frame += kReset;
    }
    frame += "\n\n";

    char line[256];
    std::snprintf(line, sizeof line,
                  "runs    %s %.0f/%.0f done, %.0f running",
                  bar(runs_total > 0 ? runs_done / runs_total : 0.0,
                      30)
                      .c_str(),
                  runs_done, runs_total, runs_running);
    frame += line;
    double rate = progress->numberAt("runs_per_second");
    double eta = progress->numberAt("eta_seconds");
    if (rate > 0.0) {
        std::snprintf(line, sizeof line, ", %.2f runs/s, ETA %s",
                      rate, formatSeconds(eta).c_str());
        frame += line;
    }
    frame += '\n';
    std::snprintf(line, sizeof line,
                  "access  %s / %s accesses issued\n",
                  formatCount(progress->numberAt("accesses_issued"))
                      .c_str(),
                  formatCount(progress->numberAt("accesses_target"))
                      .c_str());
    frame += line;
    frame += '\n';

    std::snprintf(line, sizeof line, "filter  %5.1f%%  %s\n",
                  100.0 * progress->numberAt("filter_rate"),
                  sparkline(state.filterRate).c_str());
    frame += line;
    std::snprintf(line, sizeof line, "traffic %sB/s  %s\n",
                  state.byteHopRate.empty()
                      ? "   ?"
                      : formatCount(state.byteHopRate.back()).c_str(),
                  sparkline(state.byteHopRate).c_str());
    frame += line;

    // Simulator throughput from successive /metrics scrapes: the
    // wall-clock deltas of vsnoop_sweep_events_total and
    // vsnoop_sweep_sim_ticks_total.  Skipped silently on endpoints
    // without the series.
    std::optional<std::string> metrics_body =
        httpGet(addr, "/metrics", &error);
    if (metrics_body) {
        std::optional<double> events =
            scrapeSeries(*metrics_body, "vsnoop_sweep_events_total");
        std::optional<double> ticks = scrapeSeries(
            *metrics_body, "vsnoop_sweep_sim_ticks_total");
        if (events && ticks) {
            if (state.lastEvents >= 0.0 &&
                nowMs > state.lastMetricsMs) {
                double secs = static_cast<double>(
                                  nowMs - state.lastMetricsMs) /
                              1000.0;
                double ev_rate = (*events - state.lastEvents) / secs;
                double cyc_rate = (*ticks - state.lastTicks) / secs;
                state.push(state.eventRate,
                           ev_rate < 0.0 ? 0.0 : ev_rate);
                std::snprintf(
                    line, sizeof line,
                    "sim     %s ev/s, %s cyc/s  %s\n",
                    formatCount(ev_rate < 0.0 ? 0.0 : ev_rate)
                        .c_str(),
                    formatCount(cyc_rate < 0.0 ? 0.0 : cyc_rate)
                        .c_str(),
                    sparkline(state.eventRate).c_str());
                frame += line;
            }
            state.lastEvents = *events;
            state.lastTicks = *ticks;
            state.lastMetricsMs = nowMs;
        }
    }
    frame += '\n';

    // Watchdog summary straight from the endpoint's stalled list.
    std::size_t stalled_count = 0;
    if (const JsonValue *watchdog = progress->find("watchdog")) {
        if (const JsonValue *stalled = watchdog->find("stalled"))
            if (stalled->isArray())
                stalled_count = stalled->items().size();
    }
    if (stalled_count > 0) {
        frame += kRed;
        std::snprintf(line, sizeof line,
                      "watchdog: %zu run(s) making no progress\n",
                      stalled_count);
        frame += line;
        frame += kReset;
    }

    if (const JsonValue *run_list = runs_doc->find("runs")) {
        if (run_list->isArray()) {
            for (const JsonValue &run : run_list->items()) {
                std::string run_state = run.stringAt("state");
                bool stalled = false;
                if (const JsonValue *flag = run.find("stalled"))
                    stalled =
                        flag->kind() == JsonValue::Kind::Bool &&
                        flag->boolean();
                const char *color = kDim;
                if (stalled)
                    color = kRed;
                else if (run_state == "running")
                    color = kYellow;
                else if (run_state == "done")
                    color = kGreen;
                std::snprintf(
                    line, sizeof line,
                    "%s%-44s %s %5.1f%% %-7s%s fr %4.1f%%\n", color,
                    run.stringAt("label").c_str(),
                    bar(run.numberAt("progress"), 20).c_str(),
                    100.0 * run.numberAt("progress"),
                    stalled ? "STALLED" : run_state.c_str(), kReset,
                    100.0 * run.numberAt("filter_rate"));
                frame += line;
            }
        }
    }
    return frame;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string addr;
    std::uint64_t interval_ms = 1000;
    bool once = false;

    std::vector<std::string> args = normalizeArgs(argc, argv);
    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--addr") {
            addr = next_value(i, flag);
        } else if (flag == "--interval") {
            interval_ms = parseUint(flag, next_value(i, flag));
            if (interval_ms == 0)
                die("--interval must be at least 1 ms");
        } else if (flag == "--once") {
            once = true;
        } else {
            die("unknown flag '" + flag + "' (try --help)");
        }
    }
    if (addr.empty())
        die("--addr HOST:PORT is required (try --help)");

    DashboardState state;
    bool connected = false;
    for (;;) {
        std::uint64_t now_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        bool all_done = false;
        std::optional<std::string> frame =
            renderFrame(addr, state, now_ms, &all_done);
        if (!frame) {
            if (!connected) {
                std::cerr << "vsnooptop: cannot fetch http://" << addr
                          << "/progress or /jobs\n";
                return 1;
            }
            // The watched process exited between polls: a normal
            // end of session, not an error.
            std::cout << "\nvsnooptop: " << addr
                      << " went away; exiting\n";
            return 0;
        }
        connected = true;
        *frame += renderLogTail(addr);
        if (once) {
            std::cout << *frame;
            return 0;
        }
        // Home + clear-to-end keeps redraws flicker-free.
        std::cout << "\x1b[H\x1b[J" << *frame << std::flush;
        if (all_done) {
            std::cout << "\nvsnooptop: all runs done\n";
            return 0;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}
