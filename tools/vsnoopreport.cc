/**
 * @file
 * vsnoopreport — turn run/sweep JSON into a self-contained HTML
 * report, and gate CI on metric regressions.
 *
 * Report mode renders, per run record: headline stat tiles, the
 * 4x4 (or WxH) per-link mesh utilization heatmap from the
 * "results.links" array, transaction-latency histograms (all /
 * first-try / retried and per FilterReason), a filter-reason
 * breakdown, the critical-path latency waterfall (per-segment
 * stacked means from "results.critpath"), the requester-VM x
 * target-VM interference heatmap from "results.interference", and
 * — when the record carries a "timeseries" key — the
 * filtered-vs-broadcast request time series.  Records produced
 * with --perf additionally get a "Simulator internals" section:
 * event-queue counters and occupancy, per-table probe-length
 * histograms with rehash/cleanup counts, pool watermarks, and the
 * mesh send-backlog and XY-leg histograms from "results.perf".
 * The output is a single HTML file with inline SVG and no external
 * assets, so it can be attached as a CI artifact and opened
 * anywhere.
 *
 *   vsnoopreport --out report.html sweep.jsonl
 *
 * Trend mode charts a bench_selfperf history (one JSONL record per
 * `bench_selfperf --append-history` invocation) as per-phase
 * runs/s, events/s, and sim-cycles/s line charts across commits,
 * so a slow drift that never trips the one-shot --diff gate is
 * still visible:
 *
 *   vsnoopreport --trend BENCH_history.jsonl --out trend.html
 *
 * Diff mode compares two result sets (JSON-lines or single-object
 * files) by run identity (app, policy, relocation, ro_policy,
 * seed) and exits non-zero when any watched metric regressed by
 * more than --threshold (relative), giving CI a perf gate.  Runs
 * that carry "results.interference" on both sides are additionally
 * gated on the off-diagonal snoop-lookup share (absolute delta
 * against the same threshold), so a change that erodes inter-VM
 * isolation fails even when aggregate lookups stay flat:
 *
 *   vsnoopreport --diff BENCH_baseline.json fresh.jsonl \
 *                --threshold 0.05
 *
 * When the baseline is a bench_selfperf output (top-level
 * "selfperf" key), diff mode instead gates host throughput:
 * phases are matched by name and only a drop in runs_per_sec or
 * events_per_sec beyond the threshold regresses — model diffs are
 * two-sided because any drift is suspect, but wall-clock rates
 * only matter in one direction:
 *
 *   vsnoopreport --diff BENCH_selfperf.json fresh.json \
 *                --threshold 0.30
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnoopreport — HTML reports and regression gating for\n"
        "vsnoopsim/vsnoopsweep JSON output\n"
        "\n"
        "report mode:\n"
        "  vsnoopreport [--out FILE] RESULTS.json [MORE.jsonl ...]\n"
        "    Render an HTML report (default report.html) from one or\n"
        "    more result files.  Files may be a single JSON object\n"
        "    (vsnoopsim --json) or JSON lines (vsnoopsweep).\n"
        "    Records from --perf runs get a \"Simulator internals\"\n"
        "    section (event-queue occupancy, probe-length\n"
        "    histograms, pool watermarks, mesh backlog).\n"
        "\n"
        "trend mode:\n"
        "  vsnoopreport --trend HISTORY.jsonl [--out FILE]\n"
        "    Chart a bench_selfperf --append-history file (default\n"
        "    trend.html): per-phase runs/s, events/s and\n"
        "    sim-cycles/s across records, labeled by commit.\n"
        "\n"
        "diff mode:\n"
        "  vsnoopreport --diff BASELINE CURRENT [--threshold F]\n"
        "    Match runs by (app, policy, relocation, ro_policy,\n"
        "    seed) and compare runtime, snoop lookups, traffic\n"
        "    byte-hops and mean miss latency.  Exits 1 when any\n"
        "    metric regressed by more than F (default 0.05 = 5%),\n"
        "    or when a baseline run is missing from CURRENT.\n"
        "    Records carrying results.interference on both sides\n"
        "    are also gated on the off-diagonal snoop-lookup share\n"
        "    (absolute delta vs F).\n"
        "    When BASELINE is a bench_selfperf output (top-level\n"
        "    \"selfperf\" key) the gate switches to host throughput:\n"
        "    phases are matched by name and only a *drop* in\n"
        "    runs_per_sec or events_per_sec beyond F fails (faster\n"
        "    never fails); a phase run-count mismatch always fails.\n"
        "\n"
        "  --help                this text\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnoopreport: " << msg << "\n";
    std::exit(2);
}

/**
 * How to fix a broken --diff input, by role.  Diff runs in CI gates
 * where "cannot open" alone sends people hunting through scripts,
 * so the message says which side is broken and how to rebuild it.
 */
std::string
repairHint(const std::string &role, const std::string &path)
{
    if (role == "baseline")
        return "; regenerate it with 'vsnoopsweep --out " + path +
               " ...' (or bench_selfperf --out) from a known-good "
               "checkout, or point --diff at an existing results "
               "file";
    if (role == "current")
        return "; rerun the sweep that produces it, e.g. "
               "'vsnoopsweep --out " + path + " ...'";
    return "";
}

std::string
readFile(const std::string &path, const std::string &role)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        die("cannot open " + (role.empty() ? "" : role + " ") + "'" +
            path + "'" + repairHint(role, path));
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/**
 * Load a result file: one JSON object per line (sweep output), or
 * a single JSON object spanning the whole file (vsnoopsim --json).
 * @p role names the file's part in a diff ("baseline", "current")
 * so errors identify the broken side; empty outside diff mode.
 */
std::vector<JsonValue>
loadRecords(const std::string &path, const std::string &role = "")
{
    std::string text = readFile(path, role);
    std::string error;
    std::string described =
        (role.empty() ? "" : role + " ") + "'" + path + "'";
    // Whole-file parse first: vsnoopsim output is one object and
    // must not be split on embedded newlines.
    if (auto whole = parseJson(text, &error)) {
        if (whole->isObject())
            return {std::move(*whole)};
        die(described + " is valid JSON but not an object" +
            repairHint(role, path));
    }
    std::vector<JsonValue> records;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
        lineno++;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        auto rec = parseJson(line, &error);
        if (!rec || !rec->isObject())
            die(described + " line " + std::to_string(lineno) + ": " +
                (rec ? "not a JSON object" : error) +
                repairHint(role, path));
        records.push_back(std::move(*rec));
    }
    if (records.empty())
        die(described + " contains no result records" +
            repairHint(role, path));
    return records;
}

/** Run identity used to match baseline and current records. */
std::string
runKey(const JsonValue &rec)
{
    std::string key = rec.stringAt("app", "?");
    key += ' ';
    key += rec.stringAt("policy", "?");
    key += ' ';
    key += rec.stringAt("relocation", "?");
    key += ' ';
    key += rec.stringAt("ro_policy", "?");
    key += " seed=";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", rec.numberAt("seed", 0));
    key += buf;
    return key;
}

double
resultNum(const JsonValue &rec, const std::string &name)
{
    const JsonValue *results = rec.find("results");
    return results ? results->numberAt(name) : 0.0;
}

std::string
fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

/** Compact magnitude formatting: 12.3k, 4.5M, ... */
std::string
human(double v)
{
    double a = std::fabs(v);
    if (a >= 1e9)
        return fmt(v / 1e9, 2) + "G";
    if (a >= 1e6)
        return fmt(v / 1e6, 2) + "M";
    if (a >= 1e4)
        return fmt(v / 1e3, 1) + "k";
    if (a == std::floor(a))
        return fmt(v, 0);
    return fmt(v, 1);
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Diff mode
// ---------------------------------------------------------------------

struct WatchedMetric
{
    const char *name;
    /** Ignore relative changes when the baseline is below this. */
    double floor;
};

/** Lower is better for all of these. */
constexpr WatchedMetric kWatched[] = {
    {"runtime", 1.0},
    {"snoop_lookups", 1.0},
    {"traffic_byte_hops", 1.0},
    {"mean_miss_latency", 1e-9},
};

/**
 * Off-diagonal snoop-lookup share from "results.interference", or a
 * negative sentinel when the record predates the interference
 * matrix (old baselines must not trip the gate).
 */
double
interferenceShare(const JsonValue &rec)
{
    const JsonValue *results = rec.find("results");
    const JsonValue *inter =
        results ? results->find("interference") : nullptr;
    if (inter == nullptr)
        return -1.0;
    return inter->numberAt("offdiag_snoop_share", -1.0);
}

// ---------------------------------------------------------------------
// Self-performance diff (BENCH_selfperf.json schema)
// ---------------------------------------------------------------------

/**
 * True when a record is a bench_selfperf output: a single object
 * with a top-level "selfperf" key.  Model-result records (run JSON,
 * sweep lines, BENCH_baseline.json) never carry that key.
 */
bool
isSelfperf(const std::vector<JsonValue> &records)
{
    return records.size() == 1 && records[0].find("selfperf") != nullptr;
}

/** Higher is better for all of these (one-sided gate on drops). */
constexpr const char *kSelfperfRates[] = {
    "runs_per_sec",
    "events_per_sec",
};

/**
 * Compare two bench_selfperf records phase-by-phase.  Throughput is
 * host wall-clock, so the gate is one-sided: only a *drop* in
 * runs/sec or events/sec beyond the threshold regresses — a faster
 * current build never fails, and absolute counts (runs, sim cycles)
 * are checked for equality instead, because the matrix is fixed and
 * a count change means the two files measured different work.
 */
int
runSelfperfDiff(const JsonValue &base, const JsonValue &cur,
                double threshold)
{
    const JsonValue *bphases = base.find("selfperf")->find("phases");
    const JsonValue *csp = cur.find("selfperf");
    const JsonValue *cphases = csp ? csp->find("phases") : nullptr;
    if (bphases == nullptr || !bphases->isArray())
        die("baseline selfperf record has no phases array");
    if (cphases == nullptr || !cphases->isArray())
        die("current file is not a bench_selfperf record "
            "(no selfperf.phases)");

    std::map<std::string, const JsonValue *> current_by_name;
    for (const JsonValue &p : cphases->items())
        current_by_name[p.stringAt("phase", "?")] = &p;

    int regressions = 0;
    int improvements = 0;
    for (const JsonValue &bp : bphases->items()) {
        std::string name = bp.stringAt("phase", "?");
        auto it = current_by_name.find(name);
        if (it == current_by_name.end()) {
            std::cout << "MISSING    phase " << name
                      << " (in baseline, not in current)\n";
            regressions++;
            continue;
        }
        const JsonValue &cp = *it->second;
        // Fixed-matrix sanity: a run-count mismatch means the two
        // sides measured different work and rates are meaningless.
        double bruns = bp.numberAt("runs", 0);
        double cruns = cp.numberAt("runs", 0);
        if (bruns != cruns) {
            std::cout << "REGRESSION phase " << name << " runs: "
                      << human(bruns) << " -> " << human(cruns)
                      << " (matrix changed; rates not comparable)\n";
            regressions++;
            continue;
        }
        for (const char *metric : kSelfperfRates) {
            double b = bp.numberAt(metric, 0);
            double c = cp.numberAt(metric, 0);
            if (b <= 0.0)
                continue;
            double rel = (c - b) / b;
            if (rel < -threshold) {
                std::cout << "REGRESSION phase " << name << " "
                          << metric << ": " << human(b) << " -> "
                          << human(c) << " (" << fmt(100.0 * rel, 1)
                          << "%)\n";
                regressions++;
            } else if (rel > threshold) {
                std::cout << "improved   phase " << name << " "
                          << metric << ": " << human(b) << " -> "
                          << human(c) << " (+" << fmt(100.0 * rel, 1)
                          << "%)\n";
                improvements++;
            }
        }
    }
    std::cout << "vsnoopreport: selfperf diff, "
              << regressions << " regression(s), " << improvements
              << " improvement(s) at threshold "
              << fmt(100.0 * threshold, 1) << "%\n";
    return regressions > 0 ? 1 : 0;
}

int
runDiff(const std::string &baseline_path, const std::string &current_path,
        double threshold)
{
    std::vector<JsonValue> baseline =
        loadRecords(baseline_path, "baseline");
    std::vector<JsonValue> current =
        loadRecords(current_path, "current");
    // bench_selfperf output gates host throughput, not model
    // results; it gets its own phase-keyed, one-sided comparison.
    if (isSelfperf(baseline)) {
        if (!isSelfperf(current))
            die("baseline is a bench_selfperf record but '" +
                current_path + "' is not");
        return runSelfperfDiff(baseline[0], current[0], threshold);
    }
    std::map<std::string, const JsonValue *> current_by_key;
    for (const JsonValue &rec : current)
        current_by_key[runKey(rec)] = &rec;

    int regressions = 0;
    int improvements = 0;
    for (const JsonValue &base : baseline) {
        std::string key = runKey(base);
        auto it = current_by_key.find(key);
        if (it == current_by_key.end()) {
            std::cout << "MISSING    " << key
                      << " (in baseline, not in current)\n";
            regressions++;
            continue;
        }
        for (const WatchedMetric &metric : kWatched) {
            double b = resultNum(base, metric.name);
            double c = resultNum(*it->second, metric.name);
            if (b < metric.floor) {
                if (c >= metric.floor && c > b)
                    std::cout << "REGRESSION " << key << " "
                              << metric.name << ": " << human(b)
                              << " -> " << human(c) << "\n";
                if (c >= metric.floor && c > b)
                    regressions++;
                continue;
            }
            double rel = (c - b) / b;
            if (rel > threshold) {
                std::cout << "REGRESSION " << key << " " << metric.name
                          << ": " << human(b) << " -> " << human(c)
                          << " (+" << fmt(100.0 * rel, 1) << "%)\n";
                regressions++;
            } else if (rel < -threshold) {
                std::cout << "improved   " << key << " " << metric.name
                          << ": " << human(b) << " -> " << human(c)
                          << " (" << fmt(100.0 * rel, 1) << "%)\n";
                improvements++;
            }
        }
        // Inter-VM isolation gate: the off-diagonal snoop-lookup
        // share is already a ratio in [0, 1], so it is compared by
        // absolute delta (a relative test would explode near the
        // well-filtered zero end).  Skipped when either side lacks
        // the matrix, so pre-interference baselines keep passing.
        double ib = interferenceShare(base);
        double ic = interferenceShare(*it->second);
        if (ib >= 0.0 && ic >= 0.0) {
            double delta = ic - ib;
            if (delta > threshold) {
                std::cout << "REGRESSION " << key
                          << " offdiag_snoop_share: " << fmt(ib, 4)
                          << " -> " << fmt(ic, 4) << " (+"
                          << fmt(delta, 4) << ")\n";
                regressions++;
            } else if (delta < -threshold) {
                std::cout << "improved   " << key
                          << " offdiag_snoop_share: " << fmt(ib, 4)
                          << " -> " << fmt(ic, 4) << " ("
                          << fmt(delta, 4) << ")\n";
                improvements++;
            }
        }
    }
    std::cout << "vsnoopreport: " << baseline.size() << " baseline run(s), "
              << regressions << " regression(s), " << improvements
              << " improvement(s) at threshold "
              << fmt(100.0 * threshold, 1) << "%\n";
    return regressions > 0 ? 1 : 0;
}

// ---------------------------------------------------------------------
// Report mode
// ---------------------------------------------------------------------

/**
 * Sequential blue ramp (light -> dark), used for link-utilization
 * magnitude.  Step 100 reads as "near zero" and recedes toward the
 * surface; step 700 is the hottest link.
 */
constexpr const char *kRamp[] = {
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
};
constexpr std::size_t kRampSteps = sizeof(kRamp) / sizeof(kRamp[0]);

const char *
rampColor(double t)
{
    t = std::clamp(t, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(
        std::lround(t * static_cast<double>(kRampSteps - 1)));
    return kRamp[idx];
}

struct LinkRec
{
    unsigned from = 0;
    unsigned to = 0;
    double value = 0.0;
    double busy = 0.0;
    double wait = 0.0;
};

/**
 * Extract per-link values from "results.links".  @p cls selects
 * one message class ("request", ...) or, when empty, the sum over
 * all classes.
 */
std::vector<LinkRec>
extractLinks(const JsonValue &rec, const std::string &cls)
{
    std::vector<LinkRec> out;
    const JsonValue *results = rec.find("results");
    const JsonValue *links = results ? results->find("links") : nullptr;
    if (links == nullptr || !links->isArray())
        return out;
    for (const JsonValue &link : links->items()) {
        LinkRec lr;
        lr.from = static_cast<unsigned>(link.numberAt("from"));
        lr.to = static_cast<unsigned>(link.numberAt("to"));
        lr.busy = link.numberAt("busy_cycles");
        lr.wait = link.numberAt("wait_cycles");
        if (const JsonValue *bh = link.find("byte_hops")) {
            if (cls.empty()) {
                for (const auto &member : bh->members())
                    if (member.second.isNumber())
                        lr.value += member.second.number();
            } else {
                lr.value = bh->numberAt(cls);
            }
        }
        out.push_back(lr);
    }
    return out;
}

/**
 * One WxH mesh heatmap as inline SVG.  Physical directed links are
 * thick strokes colored by the sequential ramp; node squares carry
 * the node id, with loopback traffic in the hover tooltip.
 */
std::string
heatmapSvg(const std::vector<LinkRec> &links, unsigned width,
           unsigned height, const std::string &title)
{
    constexpr int kCell = 86;
    constexpr int kPad = 26;
    constexpr int kNode = 34;
    constexpr int kLegendH = 40;
    int w = kPad * 2 + kCell * static_cast<int>(width - 1) + kNode;
    int h = kPad * 2 + kCell * static_cast<int>(height - 1) + kNode +
            kLegendH;

    double max_v = 0.0;
    for (const LinkRec &l : links)
        if (l.from != l.to)
            max_v = std::max(max_v, l.value);

    auto cx = [&](unsigned n) {
        return kPad + kNode / 2 + kCell * static_cast<int>(n % width);
    };
    auto cy = [&](unsigned n) {
        return kPad + kNode / 2 + kCell * static_cast<int>(n / width);
    };

    std::ostringstream svg;
    svg << "<svg class=\"heatmap\" width=\"" << w << "\" height=\"" << h
        << "\" viewBox=\"0 0 " << w << " " << h
        << "\" role=\"img\" aria-label=\"" << htmlEscape(title)
        << "\">\n";
    svg << "<text x=\"" << kPad << "\" y=\"14\" class=\"charttitle\">"
        << htmlEscape(title) << "</text>\n";

    // Links first (under the node squares).
    for (const LinkRec &l : links) {
        if (l.from == l.to)
            continue;
        int x1 = cx(l.from), y1 = cy(l.from);
        int x2 = cx(l.to), y2 = cy(l.to);
        // Parallel directed lanes: each direction of a physical
        // channel is offset to its own side so both stay visible.
        int ox = 0, oy = 0;
        if (x2 > x1)
            oy = -5;
        else if (x2 < x1)
            oy = 5;
        else if (y2 > y1)
            ox = 5;
        else
            ox = -5;
        // Trim to the node edges plus a 2px surface gap.
        int trim = kNode / 2 + 2;
        int dx = (x2 > x1) - (x2 < x1);
        int dy = (y2 > y1) - (y2 < y1);
        const char *color = (max_v > 0.0 && l.value > 0.0)
                                ? rampColor(l.value / max_v)
                                : "var(--grid)";
        svg << "<line x1=\"" << x1 + dx * trim + ox << "\" y1=\""
            << y1 + dy * trim + oy << "\" x2=\"" << x2 - dx * trim + ox
            << "\" y2=\"" << y2 - dy * trim + oy
            << "\" stroke=\"" << color
            << "\" stroke-width=\"7\"><title>" << l.from << " &#8594; "
            << l.to << ": " << human(l.value) << " byte-hops, busy "
            << human(l.busy) << " cy, waited " << human(l.wait)
            << " cy</title></line>\n";
    }

    // Node squares (loopback traffic in the tooltip).
    for (const LinkRec &l : links) {
        if (l.from != l.to)
            continue;
        int x = cx(l.from) - kNode / 2;
        int y = cy(l.from) - kNode / 2;
        svg << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\""
            << kNode << "\" height=\"" << kNode
            << "\" rx=\"4\" class=\"node\"><title>node " << l.from
            << " local delivery: " << human(l.value)
            << " byte-hops</title></rect>\n";
        svg << "<text x=\"" << cx(l.from) << "\" y=\"" << cy(l.from) + 4
            << "\" text-anchor=\"middle\">" << l.from << "</text>\n";
    }

    // Legend: the ramp with min/max annotations.
    int ly = h - kLegendH + 14;
    int lw = 13;
    for (std::size_t i = 0; i < kRampSteps; ++i) {
        svg << "<rect x=\"" << kPad + static_cast<int>(i) * lw
            << "\" y=\"" << ly << "\" width=\"" << lw
            << "\" height=\"10\" fill=\"" << kRamp[i] << "\"/>\n";
    }
    svg << "<text x=\"" << kPad << "\" y=\"" << ly + 24 << "\">0</text>\n";
    svg << "<text x=\"" << kPad + static_cast<int>(kRampSteps) * lw
        << "\" y=\"" << ly + 24 << "\" text-anchor=\"end\">"
        << human(max_v) << "</text>\n";
    svg << "</svg>\n";
    return svg.str();
}

/** Upper edge label for log2 bucket i (0, 1, 3, 7, ...). */
std::string
bucketLabel(std::size_t i)
{
    if (i == 0)
        return "0";
    return human(std::pow(2.0, static_cast<double>(i)) - 1);
}

/**
 * One latency histogram as an SVG bar chart over its populated
 * log2 buckets, with the summary line underneath the title.
 * @p unit names the bucketed quantity and @p noun the counted
 * samples, so the perf histograms (probes per lookup, entries per
 * sample) read correctly in tooltips.
 */
std::string
histogramSvg(const JsonValue &hist, const std::string &title,
             const std::string &unit = "ticks",
             const std::string &noun = "transactions")
{
    std::vector<double> buckets;
    if (const JsonValue *arr = hist.find("buckets")) {
        if (arr->isArray())
            for (const JsonValue &b : arr->items())
                buckets.push_back(b.isNumber() ? b.number() : 0.0);
    }
    double count = hist.numberAt("count");

    std::size_t first = buckets.size(), last = 0;
    double max_b = 0.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] > 0.0) {
            first = std::min(first, i);
            last = std::max(last, i);
            max_b = std::max(max_b, buckets[i]);
        }
    }

    constexpr int kW = 300, kH = 150, kPlotH = 84, kTop = 44;
    std::ostringstream svg;
    svg << "<svg class=\"hist\" width=\"" << kW << "\" height=\"" << kH
        << "\" viewBox=\"0 0 " << kW << " " << kH
        << "\" role=\"img\" aria-label=\"" << htmlEscape(title)
        << "\">\n";
    svg << "<text x=\"0\" y=\"12\" class=\"charttitle\">"
        << htmlEscape(title) << "</text>\n";
    svg << "<text x=\"0\" y=\"28\">n=" << human(count) << "  p50 "
        << human(hist.numberAt("p50")) << "  p90 "
        << human(hist.numberAt("p90")) << "  p99 "
        << human(hist.numberAt("p99")) << "</text>\n";
    if (count <= 0.0 || first > last) {
        svg << "<text x=\"0\" y=\"" << kTop + 40
            << "\" class=\"mutedtext\">no samples</text>\n";
        svg << "</svg>\n";
        return svg.str();
    }

    std::size_t n = last - first + 1;
    double bar_w =
        static_cast<double>(kW) / static_cast<double>(n);
    int baseline = kTop + kPlotH;
    svg << "<line x1=\"0\" y1=\"" << baseline << "\" x2=\"" << kW
        << "\" y2=\"" << baseline << "\" class=\"axisline\"/>\n";
    for (std::size_t i = first; i <= last; ++i) {
        double v = buckets[i];
        int bh = v > 0.0
                     ? std::max(2, static_cast<int>(
                                      std::lround(v / max_b * kPlotH)))
                     : 0;
        double x = static_cast<double>(i - first) * bar_w;
        if (bh > 0) {
            svg << "<rect x=\"" << fmt(x + 1, 1) << "\" y=\""
                << baseline - bh << "\" width=\"" << fmt(bar_w - 2, 1)
                << "\" height=\"" << bh
                << "\" rx=\"2\" class=\"bar\"><title>["
                << (i == 0 ? "0" : human(std::pow(
                                       2.0, static_cast<double>(i - 1))))
                << " .. " << bucketLabel(i) << "] " << htmlEscape(unit)
                << ": " << human(v) << " " << htmlEscape(noun)
                << "</title></rect>\n";
        }
        // Sparse tick labels: first, last, and every fourth bucket.
        if (i == first || i == last ||
            (i - first) % 4 == 0) {
            svg << "<text x=\"" << fmt(x + bar_w / 2, 1) << "\" y=\""
                << baseline + 14 << "\" text-anchor=\"middle\">"
                << bucketLabel(i) << "</text>\n";
        }
    }
    svg << "</svg>\n";
    return svg.str();
}

/**
 * Filter-reason breakdown as labeled horizontal bars (one measure,
 * so every bar wears series-1; identity is carried by the labels).
 */
std::string
reasonBarsSvg(const JsonValue &by_reason)
{
    struct Row
    {
        std::string name;
        double count = 0.0;
    };
    std::vector<Row> rows;
    double max_c = 0.0, total = 0.0;
    for (const auto &member : by_reason.members()) {
        double c = member.second.numberAt("count");
        rows.push_back({member.first, c});
        max_c = std::max(max_c, c);
        total += c;
    }
    constexpr int kW = 420, kRowH = 24, kLabelW = 130, kValueW = 96;
    int h = 20 + kRowH * static_cast<int>(rows.size());
    std::ostringstream svg;
    svg << "<svg class=\"reasons\" width=\"" << kW << "\" height=\"" << h
        << "\" viewBox=\"0 0 " << kW << " " << h
        << "\" role=\"img\" aria-label=\"transactions by filter "
           "reason\">\n";
    svg << "<text x=\"0\" y=\"12\" class=\"charttitle\">transactions "
           "by filter reason</text>\n";
    int y = 20;
    int plot_w = kW - kLabelW - kValueW;
    for (const Row &row : rows) {
        int bw = (max_c > 0.0 && row.count > 0.0)
                     ? std::max(2, static_cast<int>(std::lround(
                                       row.count / max_c * plot_w)))
                     : 0;
        svg << "<text x=\"" << kLabelW - 6 << "\" y=\"" << y + 15
            << "\" text-anchor=\"end\">" << htmlEscape(row.name)
            << "</text>\n";
        if (bw > 0) {
            svg << "<rect x=\"" << kLabelW << "\" y=\"" << y + 5
                << "\" width=\"" << bw
                << "\" height=\"12\" rx=\"2\" class=\"bar\"><title>"
                << htmlEscape(row.name) << ": " << human(row.count)
                << " transactions ("
                << fmt(total > 0.0 ? 100.0 * row.count / total : 0.0, 1)
                << "%)</title></rect>\n";
        }
        svg << "<text x=\"" << kLabelW + bw + 6 << "\" y=\"" << y + 15
            << "\">" << human(row.count) << "</text>\n";
        y += kRowH;
    }
    svg << "</svg>\n";
    return svg.str();
}

/**
 * The filtered-vs-broadcast request time series (two series, so a
 * legend is present and each line carries a categorical slot).
 */
std::string
timeseriesSvg(const JsonValue &series)
{
    const JsonValue *samples = series.find("samples");
    if (samples == nullptr || !samples->isArray() ||
        samples->items().empty())
        return "";
    std::vector<double> ticks, filtered, broadcast, lookups;
    for (const JsonValue &s : samples->items()) {
        ticks.push_back(s.numberAt("tick"));
        filtered.push_back(s.numberAt("filtered_requests"));
        broadcast.push_back(s.numberAt("broadcast_requests"));
        lookups.push_back(s.numberAt("snoop_lookups"));
    }
    bool have_split = false;
    for (std::size_t i = 0; i < ticks.size(); ++i)
        have_split = have_split || filtered[i] > 0 || broadcast[i] > 0;
    // TokenB runs have no filtered/broadcast split; chart the
    // snoop-lookup rate as a single series instead (one series, so
    // the title names it and no legend box is needed).
    const std::vector<double> &a = have_split ? filtered : lookups;
    const std::vector<double> &b = broadcast;

    constexpr int kW = 560, kH = 180, kTop = 40, kPlotH = 110;
    double max_v = 0.0;
    for (double v : a)
        max_v = std::max(max_v, v);
    if (have_split)
        for (double v : b)
            max_v = std::max(max_v, v);
    if (max_v <= 0.0)
        max_v = 1.0;
    double min_t = ticks.front(), max_t = ticks.back();
    double span_t = std::max(1.0, max_t - min_t);

    auto px = [&](double t) {
        return 10.0 + (t - min_t) / span_t * (kW - 20);
    };
    auto py = [&](double v) {
        return kTop + kPlotH - v / max_v * kPlotH;
    };
    auto polyline = [&](const std::vector<double> &ys,
                        const char *cls) {
        std::ostringstream pts;
        for (std::size_t i = 0; i < ticks.size(); ++i)
            pts << fmt(px(ticks[i]), 1) << "," << fmt(py(ys[i]), 1)
                << " ";
        return "<polyline points=\"" + pts.str() +
               "\" class=\"" + cls + "\"/>\n";
    };

    std::ostringstream svg;
    svg << "<svg class=\"timeseries\" width=\"" << kW << "\" height=\""
        << kH << "\" viewBox=\"0 0 " << kW << " " << kH
        << "\" role=\"img\" aria-label=\"request time series\">\n";
    svg << "<text x=\"10\" y=\"12\" class=\"charttitle\">"
        << (have_split ? "requests per interval"
                       : "snoop lookups per interval")
        << "</text>\n";
    if (have_split) {
        // Legend (two series on one plot).
        svg << "<rect x=\"200\" y=\"4\" width=\"10\" height=\"10\" "
               "rx=\"2\" class=\"swatch1\"/>"
               "<text x=\"214\" y=\"13\">VM-multicast (filtered)"
               "</text>\n";
        svg << "<rect x=\"360\" y=\"4\" width=\"10\" height=\"10\" "
               "rx=\"2\" class=\"swatch2\"/>"
               "<text x=\"374\" y=\"13\">broadcast</text>\n";
    }
    for (int g = 0; g <= 2; ++g) {
        int gy = kTop + kPlotH * g / 2;
        svg << "<line x1=\"10\" y1=\"" << gy << "\" x2=\"" << kW - 10
            << "\" y2=\"" << gy << "\" class=\"gridline\"/>\n";
    }
    svg << "<text x=\"10\" y=\"" << kTop - 4 << "\">" << human(max_v)
        << "</text>\n";
    svg << "<text x=\"10\" y=\"" << kTop + kPlotH + 14
        << "\">tick " << human(min_t) << "</text>\n";
    svg << "<text x=\"" << kW - 10 << "\" y=\"" << kTop + kPlotH + 14
        << "\" text-anchor=\"end\">" << human(max_t) << "</text>\n";
    svg << polyline(a, "line1");
    if (have_split)
        svg << polyline(b, "line2");
    // Hover targets on the samples of the first series.
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        svg << "<circle cx=\"" << fmt(px(ticks[i]), 1) << "\" cy=\""
            << fmt(py(a[i]), 1) << "\" r=\"6\" class=\"hit\"><title>"
            << "tick " << human(ticks[i]) << ": " << human(a[i])
            << (have_split ? " filtered, " : " lookups")
            << (have_split ? human(b[i]) + " broadcast" : std::string())
            << "</title></circle>\n";
    }
    svg << "</svg>\n";
    return svg.str();
}

/**
 * Categorical palette for the seven critical-path segments, indexed
 * in the order the "segments" object emits them (mshr_wait,
 * req_traversal, snoop_lookup, token_collect, retry_backoff,
 * persistent_escalation, data_return).
 */
constexpr const char *kSegColors[] = {
    "#8d8b84", "#2a78d6", "#eb6834", "#c9a227", "#c94f7c", "#8d6cc9",
    "#4fa05f",
};
constexpr std::size_t kNumSegColors =
    sizeof(kSegColors) / sizeof(kSegColors[0]);

/**
 * Critical-path waterfall: one stacked horizontal bar per group
 * ("all", then each populated FilterReason), segments scaled as
 * mean ticks per transaction so rows with very different counts
 * stay comparable.  Built from "results.critpath".
 */
std::string
waterfallSvg(const JsonValue &critpath)
{
    const JsonValue *segments = critpath.find("segments");
    if (segments == nullptr || !segments->isObject() ||
        segments->members().empty())
        return "";

    std::vector<std::string> seg_names;
    for (const auto &member : segments->members())
        seg_names.push_back(member.first);

    struct Row
    {
        std::string label;
        double count = 0.0;
        std::vector<double> sums;
    };
    std::vector<Row> rows;

    Row all;
    all.label = "all";
    for (const auto &member : segments->members()) {
        all.count = std::max(all.count, member.second.numberAt("count"));
        all.sums.push_back(member.second.numberAt("sum"));
    }
    if (all.count > 0.0)
        rows.push_back(std::move(all));
    if (const JsonValue *by_reason = critpath.find("by_reason")) {
        for (const auto &member : by_reason->members()) {
            double count = member.second.numberAt("count");
            if (count <= 0.0)
                continue;
            Row row;
            row.label = member.first;
            row.count = count;
            const JsonValue *sums = member.second.find("seg_sums");
            for (const std::string &name : seg_names)
                row.sums.push_back(sums ? sums->numberAt(name) : 0.0);
            rows.push_back(std::move(row));
        }
    }
    if (rows.empty())
        return "";

    double max_mean = 0.0;
    for (const Row &row : rows) {
        double total = 0.0;
        for (double s : row.sums)
            total += s;
        max_mean = std::max(max_mean, total / row.count);
    }
    if (max_mean <= 0.0)
        max_mean = 1.0;

    constexpr int kW = 640, kRowH = 26, kLabelW = 150, kValueW = 70;
    // Legend: segments four to a line above the bars.
    int legend_lines =
        static_cast<int>((seg_names.size() + 3) / 4);
    int bars_top = 22 + 16 * legend_lines + 6;
    int h = bars_top + kRowH * static_cast<int>(rows.size()) + 6;
    int plot_w = kW - kLabelW - kValueW;

    std::ostringstream svg;
    svg << "<svg class=\"waterfall\" width=\"" << kW << "\" height=\""
        << h << "\" viewBox=\"0 0 " << kW << " " << h
        << "\" role=\"img\" aria-label=\"critical-path latency "
           "waterfall\">\n";
    svg << "<text x=\"0\" y=\"12\" class=\"charttitle\">critical-path "
           "waterfall (mean ticks / transaction)</text>\n";
    for (std::size_t s = 0; s < seg_names.size(); ++s) {
        int lx = 10 + static_cast<int>(s % 4) * 156;
        int ly = 22 + static_cast<int>(s / 4) * 16;
        svg << "<rect x=\"" << lx << "\" y=\"" << ly
            << "\" width=\"10\" height=\"10\" rx=\"2\" fill=\""
            << kSegColors[s % kNumSegColors] << "\"/>"
            << "<text x=\"" << lx + 14 << "\" y=\"" << ly + 9 << "\">"
            << htmlEscape(seg_names[s]) << "</text>\n";
    }
    int y = bars_top;
    for (const Row &row : rows) {
        double total = 0.0;
        for (double s : row.sums)
            total += s;
        double mean = total / row.count;
        svg << "<text x=\"" << kLabelW - 6 << "\" y=\"" << y + 15
            << "\" text-anchor=\"end\">" << htmlEscape(row.label)
            << "</text>\n";
        double x = kLabelW;
        for (std::size_t s = 0; s < row.sums.size(); ++s) {
            double seg_mean = row.sums[s] / row.count;
            double w = seg_mean / max_mean * plot_w;
            if (w <= 0.0)
                continue;
            svg << "<rect x=\"" << fmt(x, 1) << "\" y=\"" << y + 4
                << "\" width=\"" << fmt(std::max(w, 1.0), 1)
                << "\" height=\"14\" fill=\""
                << kSegColors[s % kNumSegColors] << "\"><title>"
                << htmlEscape(row.label) << " "
                << htmlEscape(seg_names[s]) << ": "
                << fmt(seg_mean, 1) << " ticks/txn ("
                << fmt(mean > 0.0 ? 100.0 * seg_mean / mean : 0.0, 1)
                << "% of " << fmt(mean, 1) << ")</title></rect>\n";
            x += w;
        }
        svg << "<text x=\"" << fmt(x + 6, 1) << "\" y=\"" << y + 15
            << "\">" << fmt(mean, 1) << "</text>\n";
        y += kRowH;
    }
    svg << "</svg>\n";
    return svg.str();
}

/**
 * Requester-VM x target-VM interference heatmap over the
 * snoop-lookup matrix from "results.interference".  Rows are the
 * requesting VM, columns the VM whose cache tags were occupied;
 * the off-diagonal share (the isolation figure of merit) is
 * printed under the grid.
 */
std::string
interferenceSvg(const JsonValue &interference)
{
    const JsonValue *labels_arr = interference.find("rows");
    const JsonValue *matrix = interference.find("snoop_lookups");
    if (labels_arr == nullptr || !labels_arr->isArray() ||
        matrix == nullptr || !matrix->isArray())
        return "";
    std::vector<std::string> labels;
    for (const JsonValue &l : labels_arr->items())
        labels.push_back(l.isString() ? l.string() : "?");
    std::size_t dim = labels.size();
    if (dim == 0 || matrix->items().size() != dim)
        return "";

    std::vector<std::vector<double>> cells(dim);
    double max_v = 0.0, total = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
        const JsonValue &row = matrix->items()[r];
        if (!row.isArray() || row.items().size() != dim)
            return "";
        for (const JsonValue &cell : row.items()) {
            double v = cell.isNumber() ? cell.number() : 0.0;
            cells[r].push_back(v);
            max_v = std::max(max_v, v);
            total += v;
        }
    }

    constexpr int kCell = 46, kPadL = 64, kPadT = 56;
    int w = kPadL + kCell * static_cast<int>(dim) + 10;
    int h = kPadT + kCell * static_cast<int>(dim) + 38;
    std::ostringstream svg;
    svg << "<svg class=\"interheat\" width=\"" << w << "\" height=\""
        << h << "\" viewBox=\"0 0 " << w << " " << h
        << "\" role=\"img\" aria-label=\"inter-VM snoop-lookup "
           "interference\">\n";
    svg << "<text x=\"0\" y=\"12\" class=\"charttitle\">inter-VM "
           "interference (snoop lookups)</text>\n";
    svg << "<text x=\"0\" y=\"28\">row: requester, column: looked-up "
           "VM</text>\n";
    for (std::size_t c = 0; c < dim; ++c) {
        svg << "<text x=\"" << kPadL + static_cast<int>(c) * kCell +
                                  kCell / 2
            << "\" y=\"" << kPadT - 6 << "\" text-anchor=\"middle\">"
            << htmlEscape(labels[c]) << "</text>\n";
    }
    for (std::size_t r = 0; r < dim; ++r) {
        int y = kPadT + static_cast<int>(r) * kCell;
        svg << "<text x=\"" << kPadL - 6 << "\" y=\"" << y + kCell / 2 + 4
            << "\" text-anchor=\"end\">" << htmlEscape(labels[r])
            << "</text>\n";
        for (std::size_t c = 0; c < dim; ++c) {
            int x = kPadL + static_cast<int>(c) * kCell;
            double v = cells[r][c];
            const char *color = (max_v > 0.0 && v > 0.0)
                                    ? rampColor(v / max_v)
                                    : "var(--grid)";
            svg << "<rect x=\"" << x + 1 << "\" y=\"" << y + 1
                << "\" width=\"" << kCell - 2 << "\" height=\""
                << kCell - 2 << "\" rx=\"3\" fill=\"" << color
                << "\"><title>" << htmlEscape(labels[r]) << " &#8594; "
                << htmlEscape(labels[c]) << ": " << human(v)
                << " lookups ("
                << fmt(total > 0.0 ? 100.0 * v / total : 0.0, 1)
                << "%)</title></rect>\n";
            // In-cell value; dark cells flip to light text.
            svg << "<text x=\"" << x + kCell / 2 << "\" y=\""
                << y + kCell / 2 + 4 << "\" text-anchor=\"middle\""
                << (max_v > 0.0 && v / max_v > 0.55
                        ? " style=\"fill:#f5f5f3\""
                        : "")
                << ">" << human(v) << "</text>\n";
        }
    }
    svg << "<text x=\"0\" y=\"" << h - 10
        << "\">off-diagonal share of lookups: "
        << fmt(interference.numberAt("offdiag_snoop_share"), 4)
        << "</text>\n";
    svg << "</svg>\n";
    return svg.str();
}

std::string
statTile(const std::string &label, const std::string &value)
{
    return "<div class=\"tile\"><div class=\"v\">" + htmlEscape(value) +
           "</div><div class=\"l\">" + htmlEscape(label) +
           "</div></div>\n";
}

/**
 * Simulator-internals section from "results.perf" (--perf runs):
 * event-queue counters and sampled occupancy, per-table
 * probe-length histograms with rehash/cleanup/load summaries, pool
 * watermarks, and mesh backlog / XY-leg histograms.  Runs without
 * --perf lack the key entirely and skip the section.
 */
void
renderPerfSection(std::ostream &os, const JsonValue &perf)
{
    os << "<h2>Simulator internals (--perf)</h2>\n";
    if (const JsonValue *eq = perf.find("event_queue")) {
        os << "<div class=\"tiles\">\n";
        os << statTile("events scheduled",
                       human(eq->numberAt("schedules")));
        os << statTile("descheduled",
                       human(eq->numberAt("deschedules")));
        os << statTile("overflow-heap inserts",
                       human(eq->numberAt("overflow_inserts")));
        os << statTile("max wheel entries",
                       human(eq->numberAt("max_wheel_entries")));
        os << statTile("max same-tick depth",
                       human(eq->numberAt("max_bucket_depth")));
        os << statTile("event-pool high water",
                       human(eq->numberAt("pool_high_water")));
        os << statTile("pool refills",
                       human(eq->numberAt("pool_refills")));
        os << "</div>\n";
        os << "<div class=\"charts\">\n";
        if (const JsonValue *wo = eq->find("wheel_occupancy"))
            os << histogramSvg(*wo, "event-wheel occupancy (sampled)",
                               "entries", "samples");
        if (const JsonValue *oo = eq->find("overflow_occupancy"))
            os << histogramSvg(*oo,
                               "overflow-heap occupancy (sampled)",
                               "entries", "samples");
        os << "</div>\n";
    }
    if (const JsonValue *tables = perf.find("tables")) {
        os << "<div class=\"charts\">\n";
        for (const auto &member : tables->members()) {
            if (const JsonValue *pl = member.second.find("probe_length"))
                os << histogramSvg(*pl,
                                   member.first + " probe length",
                                   "probes", "lookups");
        }
        os << "</div>\n";
        os << "<p class=\"meta\">";
        bool first = true;
        for (const auto &member : tables->members()) {
            if (!first)
                os << " &middot; ";
            first = false;
            os << htmlEscape(member.first) << ": "
               << human(member.second.numberAt("growth_rehashes"))
               << " rehashes, "
               << human(member.second.numberAt("tombstone_cleanups"))
               << " cleanups, peak "
               << human(member.second.numberAt("max_entries"))
               << " entries, load "
               << fmt(member.second.numberAt("load_factor"), 3);
        }
        os << "</p>\n";
    }
    if (const JsonValue *mesh = perf.find("mesh")) {
        os << "<div class=\"charts\">\n";
        if (const JsonValue *sb = mesh->find("send_backlog"))
            os << histogramSvg(*sb, "mesh send backlog (per hop)",
                               "flits", "hops");
        if (const JsonValue *ll = mesh->find("leg_length"))
            os << histogramSvg(*ll, "XY route leg length", "hops",
                               "legs");
        os << "</div>\n";
    }
}

/**
 * Address-space section from "results.pages" (--pages runs): a
 * host-address-range snoop heatmap strip, the top-offender table
 * with per-FilterReason stacked bars, and lifecycle-transition
 * tiles.  Runs without --pages lack the key and skip the section.
 */
void
renderPagesSection(std::ostream &os, const JsonValue &pages)
{
    os << "<h2>Address space (--pages)</h2>\n";
    os << "<div class=\"tiles\">\n";
    os << statTile("snoop lookups",
                   human(pages.numberAt("total_lookups")));
    os << statTile("tracked pages", human(pages.numberAt("tracked")));
    os << statTile("folded (evicted)",
                   human(pages.numberAt("truncated_lookups")));
    if (const JsonValue *tr = pages.find("transitions")) {
        os << statTile("page maps", human(tr->numberAt("maps")));
        os << statTile("type changes",
                       human(tr->numberAt("type_changes")));
        os << statTile("COW breaks", human(tr->numberAt("cow_breaks")));
        os << statTile("remaps", human(tr->numberAt("remaps")));
    }
    os << "</div>\n";
    if (const JsonValue *census = pages.find("census")) {
        os << "<p class=\"meta\">mapped-page census:";
        for (const auto &member : census->members())
            os << " " << htmlEscape(member.first) << " "
               << human(member.second.number());
        os << "</p>\n";
    }

    const JsonValue *top = pages.find("top");
    if (top == nullptr || !top->isArray() || top->items().empty())
        return;

    // Address-range heatmap strip: tracked-page lookups bucketed
    // over the spanned host address range.
    double min_page = 0.0, max_page = 0.0;
    bool have_span = false;
    for (const JsonValue &cell : top->items()) {
        double page = cell.numberAt("page");
        if (!have_span || page < min_page)
            min_page = page;
        if (!have_span || page > max_page)
            max_page = page;
        have_span = true;
    }
    if (have_span) {
        constexpr std::size_t kBuckets = 48;
        constexpr int kBw = 12, kBh = 18, kPadL = 8, kPadT = 24;
        double span = std::max(1.0, max_page - min_page + 1.0);
        std::vector<double> buckets(kBuckets, 0.0);
        for (const JsonValue &cell : top->items()) {
            double page = cell.numberAt("page");
            std::size_t b = std::min(
                kBuckets - 1,
                static_cast<std::size_t>((page - min_page) / span *
                                         static_cast<double>(kBuckets)));
            buckets[b] += cell.numberAt("lookups");
        }
        double max_b = 0.0;
        for (double v : buckets)
            max_b = std::max(max_b, v);
        int w = kPadL + kBw * static_cast<int>(kBuckets) + 8;
        int h = kPadT + kBh + 26;
        os << "<div class=\"charts\">\n";
        os << "<svg class=\"pageheat\" width=\"" << w
           << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << " "
           << h << "\" role=\"img\" aria-label=\"host address-range "
           << "snoop heatmap\">\n";
        os << "<text x=\"0\" y=\"12\" class=\"charttitle\">snoop "
              "lookups by host address range (tracked pages)</text>\n";
        for (std::size_t b = 0; b < kBuckets; ++b) {
            double lo = min_page +
                        span * static_cast<double>(b) /
                            static_cast<double>(kBuckets);
            double hi = min_page +
                        span * static_cast<double>(b + 1) /
                            static_cast<double>(kBuckets);
            char range[64];
            std::snprintf(range, sizeof(range), "0x%llx-0x%llx",
                          static_cast<unsigned long long>(lo) << 12,
                          static_cast<unsigned long long>(hi) << 12);
            const char *color =
                (max_b > 0.0 && buckets[b] > 0.0)
                    ? rampColor(buckets[b] / max_b)
                    : "var(--grid)";
            os << "<rect x=\""
               << kPadL + static_cast<int>(b) * kBw << "\" y=\""
               << kPadT << "\" width=\"" << kBw - 1 << "\" height=\""
               << kBh << "\" fill=\"" << color << "\"><title>" << range
               << ": " << human(buckets[b])
               << " lookups</title></rect>\n";
        }
        char lo_lbl[32], hi_lbl[32];
        std::snprintf(lo_lbl, sizeof(lo_lbl), "0x%llx",
                      static_cast<unsigned long long>(min_page) << 12);
        std::snprintf(hi_lbl, sizeof(hi_lbl), "0x%llx",
                      static_cast<unsigned long long>(max_page + 1)
                          << 12);
        os << "<text x=\"" << kPadL << "\" y=\"" << kPadT + kBh + 14
           << "\">" << lo_lbl << "</text>\n";
        os << "<text x=\"" << kPadL + kBw * static_cast<int>(kBuckets)
           << "\" y=\"" << kPadT + kBh + 14
           << "\" text-anchor=\"end\">" << hi_lbl << "</text>\n";
        os << "</svg>\n";
        os << "</div>\n";
    }

    // Top-offender table: hottest pages with a per-FilterReason
    // stacked bar (colors shared with the waterfall legend).
    std::vector<std::string> reason_names;
    for (const JsonValue &cell : top->items()) {
        if (const JsonValue *by_reason = cell.find("by_reason")) {
            for (const auto &member : by_reason->members())
                reason_names.push_back(member.first);
        }
        break;
    }
    os << "<table class=\"pagetable\">\n<tr><th>page</th><th>type</th>"
          "<th>lookups</th><th>misses</th><th>cross-VM</th>"
          "<th>sharers</th><th>snoop attempts by reason</th></tr>\n";
    std::size_t shown = 0;
    for (const JsonValue &cell : top->items()) {
        if (shown++ == 20)
            break;
        char page_hex[32];
        std::snprintf(page_hex, sizeof(page_hex), "0x%llx",
                      static_cast<unsigned long long>(
                          cell.numberAt("page")) << 12);
        double sharer_mask = cell.numberAt("sharers");
        unsigned sharers = 0;
        for (unsigned long long m =
                 static_cast<unsigned long long>(sharer_mask);
             m != 0; m >>= 1)
            sharers += m & 1;
        os << "<tr><td>" << page_hex << "</td><td>"
           << htmlEscape(cell.stringAt("type")) << "</td><td>"
           << human(cell.numberAt("lookups")) << "</td><td>"
           << human(cell.numberAt("misses")) << "</td><td>"
           << human(cell.numberAt("cross_vm")) << "</td><td>"
           << sharers << "</td><td>";
        if (const JsonValue *by_reason = cell.find("by_reason")) {
            double total = 0.0;
            for (const auto &member : by_reason->members())
                total += member.second.number();
            constexpr int kBarW = 180, kBarH = 12;
            os << "<svg width=\"" << kBarW << "\" height=\"" << kBarH
               << "\" viewBox=\"0 0 " << kBarW << " " << kBarH
               << "\">";
            double x = 0.0;
            std::size_t s = 0;
            for (const auto &member : by_reason->members()) {
                double v = member.second.number();
                std::size_t color = s++;
                if (total <= 0.0 || v <= 0.0)
                    continue;
                double bw = v / total * kBarW;
                os << "<rect x=\"" << fmt(x, 1)
                   << "\" y=\"0\" width=\""
                   << fmt(std::max(bw, 1.0), 1) << "\" height=\""
                   << kBarH << "\" fill=\""
                   << kSegColors[color % kNumSegColors] << "\"><title>"
                   << htmlEscape(member.first) << ": " << human(v)
                   << " (" << fmt(100.0 * v / total, 1)
                   << "%)</title></rect>";
                x += bw;
            }
            os << "</svg>";
        }
        os << "</td></tr>\n";
    }
    os << "</table>\n";
    if (!reason_names.empty()) {
        os << "<p class=\"meta\">reason colors:";
        for (std::size_t s = 0; s < reason_names.size(); ++s)
            os << " <span style=\"color:"
               << kSegColors[s % kNumSegColors] << "\">&#9632;</span> "
               << htmlEscape(reason_names[s]);
        os << "</p>\n";
    }
}

void
renderRecord(std::ostream &os, const JsonValue &rec)
{
    const JsonValue *results = rec.find("results");
    os << "<section class=\"card\">\n";
    os << "<h2>" << htmlEscape(runKey(rec)) << "</h2>\n";

    // Headline stat tiles.
    double transactions = resultNum(rec, "transactions");
    os << "<div class=\"tiles\">\n";
    os << statTile("runtime (ticks)", human(resultNum(rec, "runtime")));
    os << statTile("transactions", human(transactions));
    os << statTile("snoops / transaction",
                   fmt(resultNum(rec, "snoops_per_transaction"), 2));
    os << statTile("traffic (byte-hops)",
                   human(resultNum(rec, "traffic_byte_hops")));
    os << statTile("mean miss latency",
                   fmt(resultNum(rec, "mean_miss_latency"), 1));
    double retries = resultNum(rec, "retries");
    os << statTile("retries", human(retries));
    os << "</div>\n";

    // Per-link heatmaps.
    unsigned width = 4, height = 4;
    if (const JsonValue *config = rec.find("config")) {
        width = static_cast<unsigned>(
            std::max(1.0, config->numberAt("mesh_width", 4)));
        height = static_cast<unsigned>(
            std::max(1.0, config->numberAt("mesh_height", 4)));
    }
    std::vector<LinkRec> request_links = extractLinks(rec, "request");
    if (!request_links.empty()) {
        os << "<div class=\"charts\">\n";
        os << heatmapSvg(request_links, width, height,
                         "request byte-hops per link");
        os << heatmapSvg(extractLinks(rec, ""), width, height,
                         "total byte-hops per link");
        os << "</div>\n";
    }

    // Latency histograms and the filter-reason breakdown.
    if (const JsonValue *latency =
            results ? results->find("latency") : nullptr) {
        os << "<div class=\"charts\">\n";
        if (const JsonValue *all = latency->find("all"))
            os << histogramSvg(*all, "miss latency, all (ticks)");
        if (const JsonValue *ft = latency->find("first_try"))
            os << histogramSvg(*ft, "first-try");
        if (const JsonValue *rt = latency->find("retried"))
            os << histogramSvg(*rt, "retried / persistent");
        os << "</div>\n";
        if (const JsonValue *by_reason = latency->find("by_reason")) {
            os << "<div class=\"charts\">\n";
            os << reasonBarsSvg(*by_reason);
            for (const auto &member : by_reason->members()) {
                if (member.second.numberAt("count") > 0.0)
                    os << histogramSvg(member.second, member.first);
            }
            os << "</div>\n";
        }
    }

    // Critical-path waterfall and the inter-VM interference
    // heatmap (records from before the critpath subsystem simply
    // lack the keys and skip both).
    {
        const JsonValue *critpath =
            results ? results->find("critpath") : nullptr;
        const JsonValue *interference =
            results ? results->find("interference") : nullptr;
        std::string waterfall =
            critpath ? waterfallSvg(*critpath) : std::string();
        std::string interheat =
            interference ? interferenceSvg(*interference)
                         : std::string();
        if (!waterfall.empty() || !interheat.empty()) {
            os << "<div class=\"charts\">\n" << waterfall << interheat
               << "</div>\n";
        }
    }

    // Time series, when the run sampled one.
    if (const JsonValue *series = rec.find("timeseries")) {
        os << "<div class=\"charts\">\n"
           << timeseriesSvg(*series) << "</div>\n";
    }

    // Simulator internals, when the run was measured with --perf.
    if (const JsonValue *perf = results ? results->find("perf") : nullptr)
        renderPerfSection(os, *perf);
    // Address-space forensics, when the run attributed with --pages.
    if (const JsonValue *pages =
            results ? results->find("pages") : nullptr)
        renderPagesSection(os, *pages);
    os << "</section>\n";
}

const char *kCss = R"css(
body { margin: 0; font-family: system-ui, -apple-system, "Segoe UI",
       sans-serif; background: var(--page); color: var(--ink); }
.viz {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
  }
}
:root[data-theme="dark"] .viz {
  color-scheme: dark;
  --surface: #1a1a19; --page: #0d0d0d;
  --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926;
}
.page { max-width: 1180px; margin: 0 auto; padding: 24px; }
h1 { font-size: 20px; font-weight: 650; }
h2 { font-size: 15px; font-weight: 650; margin: 0 0 12px; }
.meta { color: var(--ink-2); font-size: 13px; }
.card { background: var(--surface); border: 1px solid var(--border);
        border-radius: 8px; padding: 18px 22px; margin: 18px 0; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px 28px;
         margin-bottom: 14px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .l { font-size: 12px; color: var(--ink-2); }
.charts { display: flex; flex-wrap: wrap; gap: 10px 34px;
          align-items: flex-start; margin: 10px 0; }
svg text { fill: var(--ink-2); font-size: 10.5px; }
svg text.charttitle { fill: var(--ink); font-size: 12px;
                      font-weight: 600; }
svg text.mutedtext { fill: var(--muted); }
svg .node { fill: var(--surface); stroke: var(--axis); }
svg .bar { fill: var(--series-1); }
svg .axisline { stroke: var(--axis); stroke-width: 1; }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
svg .line1 { fill: none; stroke: var(--series-1); stroke-width: 2; }
svg .line2 { fill: none; stroke: var(--series-2); stroke-width: 2; }
svg .swatch1 { fill: var(--series-1); }
svg .swatch2 { fill: var(--series-2); }
svg .hit { fill: transparent; }
svg .hit:hover { fill: var(--series-1); fill-opacity: 0.25; }
table.pagetable { border-collapse: collapse; font-size: 12.5px;
                  margin: 10px 0; }
table.pagetable th { text-align: left; color: var(--ink-2);
                     font-weight: 600; }
table.pagetable th, table.pagetable td {
  padding: 3px 14px 3px 0; border-bottom: 1px solid var(--grid); }
)css";

int
runReport(const std::vector<std::string> &inputs,
          const std::string &out_path)
{
    constexpr std::size_t kMaxRecords = 12;
    std::vector<JsonValue> records;
    for (const std::string &path : inputs) {
        std::vector<JsonValue> file_records = loadRecords(path);
        for (JsonValue &rec : file_records)
            records.push_back(std::move(rec));
    }
    std::size_t total = records.size();
    if (records.size() > kMaxRecords) {
        std::cerr << "vsnoopreport: rendering the first " << kMaxRecords
                  << " of " << total << " records\n";
        records.resize(kMaxRecords);
    }

    std::ofstream os(out_path, std::ios::binary);
    if (!os)
        die("cannot open --out file '" + out_path + "'");
    os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n"
          "<meta name=\"viewport\" content=\"width=device-width, "
          "initial-scale=1\">\n"
          "<title>vsnoop run report</title>\n<style>"
       << kCss << "</style>\n</head>\n<body class=\"viz\">\n"
       << "<div class=\"page\">\n<h1>vsnoop run report</h1>\n"
       << "<p class=\"meta\">" << records.size() << " of " << total
       << " run record(s); hover any mark for exact values.</p>\n";
    for (const JsonValue &rec : records)
        renderRecord(os, rec);
    os << "</div>\n</body>\n</html>\n";
    if (!os)
        die("write to '" + out_path + "' failed");
    std::cerr << "vsnoopreport: wrote " << out_path << " ("
              << records.size() << " record(s))\n";
    return 0;
}

// ---------------------------------------------------------------------
// Trend mode (bench_selfperf --append-history output)
// ---------------------------------------------------------------------

/** Per-phase throughput rates charted across history records. */
constexpr const char *kTrendMetrics[] = {
    "runs_per_sec",
    "events_per_sec",
    "sim_cycles_per_sec",
};

/** One line on a trend chart: a phase's rate per history record. */
struct TrendSeries
{
    std::string phase;
    std::vector<double> values;
};

/**
 * Multi-series line chart over history records: one line per phase,
 * x advancing one step per record, hover labels carrying the commit
 * each record was measured at.  Phase colors reuse the segment
 * palette so the same phase wears the same color on every metric's
 * chart.
 */
std::string
trendSvg(const std::string &title,
         const std::vector<std::string> &xlabels,
         const std::vector<TrendSeries> &series)
{
    constexpr int kW = 640, kPlotH = 150;
    int legend_lines =
        static_cast<int>((series.size() + 3) / 4);
    int top = 22 + 16 * legend_lines + 6;
    int h = top + kPlotH + 26;
    std::size_t n = xlabels.size();

    double max_v = 0.0;
    for (const TrendSeries &s : series)
        for (double v : s.values)
            max_v = std::max(max_v, v);
    if (max_v <= 0.0)
        max_v = 1.0;

    auto px = [&](std::size_t i) {
        if (n <= 1)
            return static_cast<double>(kW) / 2.0;
        return 10.0 + static_cast<double>(i) /
                          static_cast<double>(n - 1) * (kW - 20);
    };
    auto py = [&](double v) {
        return static_cast<double>(top + kPlotH) - v / max_v * kPlotH;
    };

    std::ostringstream svg;
    svg << "<svg class=\"trend\" width=\"" << kW << "\" height=\"" << h
        << "\" viewBox=\"0 0 " << kW << " " << h
        << "\" role=\"img\" aria-label=\"" << htmlEscape(title)
        << "\">\n";
    svg << "<text x=\"0\" y=\"12\" class=\"charttitle\">"
        << htmlEscape(title) << "</text>\n";
    for (std::size_t s = 0; s < series.size(); ++s) {
        int lx = 10 + static_cast<int>(s % 4) * 156;
        int ly = 22 + static_cast<int>(s / 4) * 16;
        svg << "<rect x=\"" << lx << "\" y=\"" << ly
            << "\" width=\"10\" height=\"10\" rx=\"2\" fill=\""
            << kSegColors[s % kNumSegColors] << "\"/>"
            << "<text x=\"" << lx + 14 << "\" y=\"" << ly + 9 << "\">"
            << htmlEscape(series[s].phase) << "</text>\n";
    }
    for (int g = 0; g <= 2; ++g) {
        int gy = top + kPlotH * g / 2;
        svg << "<line x1=\"10\" y1=\"" << gy << "\" x2=\"" << kW - 10
            << "\" y2=\"" << gy << "\" class=\"gridline\"/>\n";
    }
    svg << "<text x=\"10\" y=\"" << top - 4 << "\">" << human(max_v)
        << "</text>\n";
    if (n > 0) {
        svg << "<text x=\"10\" y=\"" << top + kPlotH + 14 << "\">"
            << htmlEscape(xlabels.front()) << "</text>\n";
        if (n > 1)
            svg << "<text x=\"" << kW - 10 << "\" y=\""
                << top + kPlotH + 14 << "\" text-anchor=\"end\">"
                << htmlEscape(xlabels.back()) << "</text>\n";
    }
    for (std::size_t s = 0; s < series.size(); ++s) {
        const TrendSeries &ts = series[s];
        const char *color = kSegColors[s % kNumSegColors];
        std::ostringstream pts;
        for (std::size_t i = 0; i < ts.values.size() && i < n; ++i)
            pts << fmt(px(i), 1) << "," << fmt(py(ts.values[i]), 1)
                << " ";
        svg << "<polyline points=\"" << pts.str()
            << "\" fill=\"none\" stroke=\"" << color
            << "\" stroke-width=\"2\"/>\n";
        for (std::size_t i = 0; i < ts.values.size() && i < n; ++i) {
            svg << "<circle cx=\"" << fmt(px(i), 1) << "\" cy=\""
                << fmt(py(ts.values[i]), 1)
                << "\" r=\"5\" class=\"hit\"><title>"
                << htmlEscape(xlabels[i]) << " "
                << htmlEscape(ts.phase) << ": "
                << human(ts.values[i]) << "</title></circle>\n";
        }
    }
    svg << "</svg>\n";
    return svg.str();
}

/**
 * Chart a bench_selfperf history file: one card per throughput
 * metric, one line per phase (plus the matrix total), x stepping
 * through the records in file order.  A record's commit label gets
 * a trailing * when it was measured from a dirty build
 * (--allow-dirty), so suspect points are visible on the chart.
 */
int
runTrend(const std::string &path, const std::string &out_path)
{
    std::vector<JsonValue> records = loadRecords(path, "history");

    std::vector<std::string> phase_names;
    std::vector<std::string> xlabels;
    // rates[metric][phase] -> one value per record.
    std::map<std::string, std::map<std::string, std::vector<double>>>
        rates;
    auto notePhase = [&](const std::string &name) {
        if (std::find(phase_names.begin(), phase_names.end(), name) ==
            phase_names.end())
            phase_names.push_back(name);
    };
    for (std::size_t r = 0; r < records.size(); ++r) {
        const JsonValue &rec = records[r];
        const JsonValue *phases = rec.find("phases");
        if (phases == nullptr || !phases->isArray())
            die("'" + path + "' record " + std::to_string(r + 1) +
                " has no phases array; is this a bench_selfperf "
                "--append-history file?");
        const JsonValue *meta = rec.find("meta");
        std::string label =
            meta ? meta->stringAt("git", "?") : std::string("?");
        if (rec.numberAt("dirty", 0) != 0.0 &&
            label.find("-dirty") == std::string::npos)
            label += "*";
        xlabels.push_back(label);

        auto record_phase = [&](const JsonValue &p) {
            std::string name = p.stringAt("phase", "?");
            notePhase(name);
            for (const char *metric : kTrendMetrics) {
                std::vector<double> &vals = rates[metric][name];
                // Pad phases absent from earlier records so every
                // series stays index-aligned with xlabels.
                vals.resize(r, 0.0);
                vals.push_back(p.numberAt(metric, 0));
            }
        };
        for (const JsonValue &p : phases->items())
            record_phase(p);
        if (const JsonValue *total = rec.find("total"))
            record_phase(*total);
    }
    for (auto &metric : rates)
        for (auto &phase : metric.second)
            phase.second.resize(records.size(), 0.0);

    std::ofstream os(out_path, std::ios::binary);
    if (!os)
        die("cannot open --out file '" + out_path + "'");
    os << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n"
          "<meta name=\"viewport\" content=\"width=device-width, "
          "initial-scale=1\">\n"
          "<title>vsnoop selfperf trend</title>\n<style>"
       << kCss << "</style>\n</head>\n<body class=\"viz\">\n"
       << "<div class=\"page\">\n<h1>selfperf throughput trend</h1>\n"
       << "<p class=\"meta\">" << records.size() << " record(s) from "
       << htmlEscape(path)
       << "; * marks records measured from a dirty build; hover any "
          "point for exact values.</p>\n";
    for (const char *metric : kTrendMetrics) {
        std::vector<TrendSeries> series;
        for (const std::string &name : phase_names)
            series.push_back({name, rates[metric][name]});
        os << "<section class=\"card\">\n";
        os << "<h2>" << htmlEscape(metric) << "</h2>\n";
        os << "<div class=\"charts\">\n"
           << trendSvg(std::string(metric) + " per phase", xlabels,
                       series)
           << "</div>\n";
        os << "</section>\n";
    }
    os << "</div>\n</body>\n</html>\n";
    if (!os)
        die("write to '" + out_path + "' failed");
    std::cerr << "vsnoopreport: wrote " << out_path << " ("
              << records.size() << " history record(s), "
              << phase_names.size() << " phase(s))\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }

    bool diff_mode = false;
    bool trend_mode = false;
    double threshold = 0.05;
    std::string out_path;
    std::vector<std::string> inputs;

    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--diff") {
            diff_mode = true;
        } else if (flag == "--trend") {
            trend_mode = true;
        } else if (flag == "--threshold") {
            std::string value = next_value(i, flag);
            char *end = nullptr;
            threshold = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || threshold < 0.0)
                die("--threshold expects a non-negative number, got '" +
                    value + "'");
        } else if (flag == "--out") {
            out_path = next_value(i, flag);
        } else if (flag.rfind("--", 0) == 0) {
            die("unknown flag '" + flag + "' (try --help)");
        } else {
            inputs.push_back(flag);
        }
    }

    if (diff_mode && trend_mode)
        die("--diff and --trend are mutually exclusive");
    if (diff_mode) {
        if (inputs.size() != 2)
            die("--diff expects exactly two files: baseline current");
        return runDiff(inputs[0], inputs[1], threshold);
    }
    if (trend_mode) {
        if (inputs.size() != 1)
            die("--trend expects exactly one history file");
        return runTrend(inputs[0],
                        out_path.empty() ? "trend.html" : out_path);
    }
    if (inputs.empty())
        die("no input files (try --help)");
    return runReport(inputs,
                     out_path.empty() ? "report.html" : out_path);
}
