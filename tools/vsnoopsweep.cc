/**
 * @file
 * vsnoopsweep — parallel multi-configuration sweep runner.
 *
 * Expands a cross-product of sweep axes (apps x policies x
 * relocation modes x RO policies x seeds) over a shared base
 * configuration and executes every resulting run on a worker pool.
 * Output is JSON lines — one self-describing object per run (see
 * system/run_result.hh) — in deterministic matrix order:
 * byte-identical for any --jobs value.
 *
 *   vsnoopsweep --apps ferret,canneal --policies tokenb,vsnoop \
 *               --relocations base,counter --seeds 1,2 --jobs 8
 *
 * reproduces a 16-run paper-style comparison on 8 cores.  Run with
 * --help for the full flag list.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/sweep_wire.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "sim/stats_server.hh"
#include "system/heartbeat.hh"
#include "system/sweep.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnoopsweep — parallel configuration-sweep runner\n"
        "\n"
        "usage: vsnoopsweep [flags]\n"
        "\n"
        "Expands the cross-product of the sweep axes below into\n"
        "independent runs, executes them on a worker pool, and\n"
        "prints one JSON object per run (JSON lines) in a fixed\n"
        "matrix order: app-major, then policy, relocation,\n"
        "ro-policy, seed.  Output bytes do not depend on --jobs.\n"
        "\n"
        "sweep axes (comma-separated lists):\n"
        "  --apps A,B,...        application profiles (default\n"
        "                        ferret); 'coherence' expands to the\n"
        "                        paper's ten-app evaluation set\n"
        "  --policies P,...      tokenb | vsnoop | region (default\n"
        "                        vsnoop)\n"
        "  --relocations M,...   base | counter | counter-threshold |\n"
        "                        counter-flush (default counter)\n"
        "  --ro-policies P,...   broadcast | memory-direct | intra-vm |\n"
        "                        friend-vm (default broadcast)\n"
        "  --seeds S,...         RNG seeds, one run per seed\n"
        "                        (default 1)\n"
        "\n"
        "base configuration (applied to every run):\n"
        "  --accesses N          accesses per vCPU (default 20000)\n"
        "  --warmup N            warmup accesses per vCPU (default\n"
        "                        accesses/4)\n"
        "  --mesh WxH            mesh geometry (default 4x4)\n"
        "  --vms N               virtual machines (default 4)\n"
        "  --vcpus N             vCPUs per VM (default 4)\n"
        "  --l2-kb N             private L2 size in KB (default 256)\n"
        "  --l1-kb N             model private L1s of N KB\n"
        "  --ideal-network       contention-free crossbar\n"
        "  --threshold N         counter threshold (default 10)\n"
        "  --region-bytes N      region filter granularity (default\n"
        "                        1024)\n"
        "  --migration-period T  ticks between vCPU shuffles (default\n"
        "                        0 = pinned)\n"
        "\n"
        "observability:\n"
        "  --trace-dir DIR       write one Chrome trace-event JSON\n"
        "                        file per run into DIR (must exist;\n"
        "                        named <app>-<policy>-<relocation>-\n"
        "                        <ro>-s<seed>.trace.json)\n"
        "  --trace-limit N       trace ring capacity in records\n"
        "                        (default 1048576)\n"
        "  --timeseries-interval T\n"
        "                        sample the interval time series every\n"
        "                        T ticks into each run's JSON record\n"
        "                        (default 0 = off)\n"
        "\n"
        "  --profile             profile the simulator itself: print\n"
        "                        an aggregated per-phase host time\n"
        "                        breakdown (CPU time summed across\n"
        "                        workers) to stderr after the sweep\n"
        "  --perf                collect simulator-internals counters\n"
        "                        (event-queue occupancy, hash-table\n"
        "                        probe lengths, pool watermarks, mesh\n"
        "                        backlog) into each record's\n"
        "                        results.perf and, with --stats-addr,\n"
        "                        aggregated vsnoop_perf_* series on\n"
        "                        /metrics.  Off by default; output is\n"
        "                        byte-identical to a non---perf sweep\n"
        "                        when off.  Rides the wire config, so\n"
        "                        it composes with --submit.\n"
        "  --perf-sample-interval T\n"
        "                        sample perf occupancy histograms\n"
        "                        every T ticks (default 10000)\n"
        "  --pages               attribute snoop activity to host\n"
        "                        pages in every run: results.pages\n"
        "                        (bounded top-K per-page counters,\n"
        "                        lifecycle transitions, census) and,\n"
        "                        with --stats-addr, aggregated\n"
        "                        vsnoop_pages_* series on /metrics.\n"
        "                        Off by default; output is\n"
        "                        byte-identical to a non---pages\n"
        "                        sweep when off, and byte-identical\n"
        "                        across --jobs when on.  Rides the\n"
        "                        wire config, so it composes with\n"
        "                        --submit.\n"
        "  --pages-top K         heavy-hitter capacity for --pages\n"
        "                        (default 64)\n"
        "\n"
        "live monitoring (JSON output stays byte-identical):\n"
        "  --stats-addr H:P      serve live telemetry over HTTP while\n"
        "                        the sweep runs: /metrics (Prometheus\n"
        "                        text format), /progress and /runs\n"
        "                        (JSON).  Port 0 picks a free port;\n"
        "                        the bound address is printed to\n"
        "                        stderr.  Default off.\n"
        "  --heartbeat SECS      print a one-line progress summary to\n"
        "                        stderr every SECS seconds (default\n"
        "                        0 = off)\n"
        "  --stall-timeout SECS  watchdog: warn on stderr when a\n"
        "                        running simulation reports no\n"
        "                        progress for SECS seconds (default\n"
        "                        30; 0 disables)\n"
        "\n"
        "On SIGINT/SIGTERM the sweep stops dispatching new runs,\n"
        "waits for in-flight runs, writes every completed record\n"
        "plus a summary line marked \"interrupted\", and exits with\n"
        "status 128+signal.  A second signal kills immediately.\n"
        "\n"
        "remote execution:\n"
        "  --submit H:P          do not run locally: POST the matrix\n"
        "                        to a vsnoopserve instance, poll the\n"
        "                        job, and write the streamed JSONL\n"
        "                        results (byte-identical to a local\n"
        "                        run of the same matrix).  SIGINT\n"
        "                        cancels the remote job and exits\n"
        "                        130 after writing completed runs.\n"
        "\n"
        "execution:\n"
        "  --jobs N              worker threads (default hardware\n"
        "                        concurrency)\n"
        "  --out FILE            write JSON lines to FILE instead of\n"
        "                        stdout\n"
        "  --list                print the expanded matrix and exit\n"
        "                        without running\n"
        "  --help                this text\n"
        "\n"
        "Flags accept both \"--flag value\" and \"--flag=value\".\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnoopsweep: " << msg << "\n";
    std::exit(2);
}

/** Last SIGINT/SIGTERM observed; 0 while uninterrupted. */
volatile std::sig_atomic_t g_signal = 0;

extern "C" void
onSignal(int sig)
{
    g_signal = sig;
    // Async-signal-safe notice; everything else happens on the
    // normal threads once the cancel hook observes g_signal.
    static const char msg[] =
        "\nvsnoopsweep: interrupted; waiting for in-flight runs"
        " (repeat the signal to kill)\n";
    ssize_t rc = write(2, msg, sizeof msg - 1);
    (void)rc;
}

void
installSignalHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    // One-shot: a second signal gets the default (fatal) action,
    // so a hung sweep can still be killed from the keyboard.
    action.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        die(flag + " expects a non-negative integer, got '" +
            value + "'");
    return parsed;
}

std::vector<std::string>
splitList(const std::string &flag, const std::string &value)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        std::string item = value.substr(start, comma - start);
        if (item.empty())
            die(flag + " has an empty list element in '" + value + "'");
        items.push_back(std::move(item));
        start = comma + 1;
        if (comma == value.size())
            break;
    }
    if (items.empty())
        die(flag + " expects a non-empty comma-separated list");
    return items;
}

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "tokenb")
        return PolicyKind::TokenB;
    if (name == "vsnoop")
        return PolicyKind::VirtualSnoop;
    if (name == "region")
        return PolicyKind::IdealRegionFilter;
    die("unknown policy '" + name + "'; known: tokenb vsnoop region");
}

RelocationMode
parseRelocation(const std::string &name)
{
    if (name == "base")
        return RelocationMode::Base;
    if (name == "counter")
        return RelocationMode::Counter;
    if (name == "counter-threshold")
        return RelocationMode::CounterThreshold;
    if (name == "counter-flush")
        return RelocationMode::CounterFlush;
    die("unknown relocation mode '" + name +
        "'; known: base counter counter-threshold counter-flush");
}

RoPolicy
parseRoPolicy(const std::string &name)
{
    if (name == "broadcast")
        return RoPolicy::Broadcast;
    if (name == "memory-direct")
        return RoPolicy::MemoryDirect;
    if (name == "intra-vm")
        return RoPolicy::IntraVm;
    if (name == "friend-vm")
        return RoPolicy::FriendVm;
    die("unknown RO policy '" + name +
        "'; known: broadcast memory-direct intra-vm friend-vm");
}

/** Expand "--flag=value" into "--flag","value". */
std::vector<std::string>
normalizeArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }
    return args;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ' ';
        out += name;
    }
    return out;
}

/** "message" from a JSON error body, or the raw body as fallback. */
std::string
serverError(const std::string &body)
{
    if (std::optional<JsonValue> doc = parseJson(body)) {
        std::string message = doc->stringAt("error");
        if (!message.empty())
            return message;
    }
    std::string trimmed = body;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == '\r'))
        trimmed.pop_back();
    return trimmed;
}

/**
 * --submit mode: POST the matrix to a vsnoopserve instance, poll
 * the job to a terminal state (cancelling it on SIGINT), then
 * fetch and write the JSONL results — byte-identical to running
 * the same matrix locally, since both sides share collectRun().
 */
int
runSubmit(const SweepMatrix &matrix, const std::string &addr,
          const std::string &out_path)
{
    std::string error;
    std::string body = writeSweepRequestJson(matrix, "vsnoopsweep");
    // A client-chosen correlation id: the server echoes it in the
    // X-Request-Id response header, its access log, and the job's
    // status JSON, so one grep ties this submission to its whole
    // server-side lifecycle.
    char request_id[64];
    std::snprintf(
        request_id, sizeof request_id, "sweep-%ld-%llx",
        static_cast<long>(getpid()),
        static_cast<unsigned long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count()));
    std::optional<HttpReply> reply =
        httpRequest(addr, "POST", "/jobs", body, "application/json",
                    &error, 5000, request_id);
    if (!reply)
        die("--submit " + addr + ": " + error);
    if (reply->status != 200)
        die("server rejected the submission: " +
            serverError(reply->body));
    std::optional<JsonValue> accepted = parseJson(reply->body);
    if (!accepted)
        die("malformed submission response from " + addr);
    std::uint64_t id =
        static_cast<std::uint64_t>(accepted->numberAt("job"));
    std::uint64_t total =
        static_cast<std::uint64_t>(accepted->numberAt("runs_total"));
    std::cerr << "vsnoopsweep: submitted job " << id << " (" << total
              << " runs) to http://" << addr << ", request id "
              << (reply->requestId.empty() ? request_id
                                           : reply->requestId.c_str())
              << "\n";

    bool cancel_sent = false;
    std::string state = "queued";
    std::uint64_t last_reported = std::uint64_t(-1);
    for (;;) {
        if (g_signal != 0 && !cancel_sent) {
            cancel_sent = true;
            std::cerr << "vsnoopsweep: cancelling job " << id << "\n";
            httpRequest(addr, "DELETE",
                        "/jobs/" + std::to_string(id), "", "",
                        &error);
        }
        std::optional<HttpReply> poll = httpRequest(
            addr, "GET", "/jobs/" + std::to_string(id), "", "",
            &error);
        if (!poll)
            die("lost the server while polling job " +
                std::to_string(id) + ": " + error);
        if (poll->status != 200)
            die("polling job " + std::to_string(id) + ": " +
                serverError(poll->body));
        std::optional<JsonValue> status = parseJson(poll->body);
        if (!status)
            die("malformed status response from " + addr);
        state = status->stringAt("state");
        std::uint64_t completed = static_cast<std::uint64_t>(
            status->numberAt("runs_completed"));
        std::uint64_t cached = static_cast<std::uint64_t>(
            status->numberAt("runs_from_cache"));
        if (completed != last_reported) {
            last_reported = completed;
            std::cerr << "vsnoopsweep: job " << id << ": " << state
                      << " " << completed << "/" << total;
            if (cached > 0)
                std::cerr << " (" << cached << " cached)";
            std::cerr << "\n";
        }
        if (state == "done" || state == "failed" ||
            state == "cancelled")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }

    if (state == "failed")
        die("job " + std::to_string(id) + " failed on the server");

    std::optional<HttpReply> results = httpRequest(
        addr, "GET", "/jobs/" + std::to_string(id) + "/results", "",
        "", &error);
    if (!results || results->status != 200)
        die("fetching results for job " + std::to_string(id) + ": " +
            (results ? serverError(results->body) : error));

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            die("cannot open --out file '" + out_path + "'");
    }
    std::ostream &out = out_path.empty() ? std::cout : file;
    out << results->body;
    out.flush();

    std::cerr << "vsnoopsweep: job " << id << " " << state << "\n";
    if (state == "cancelled")
        return cancel_sent ? 130 : 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepMatrix matrix;
    matrix.apps = {"ferret"};
    matrix.base.accessesPerVcpu = 20000;
    bool warmup_set = false;
    bool list_only = false;
    bool want_profile = false;
    unsigned jobs = 0;
    std::string out_path;
    std::string submit_addr;
    std::string stats_addr;
    std::uint64_t heartbeat_secs = 0;
    std::uint64_t stall_secs = 30;

    std::vector<std::string> args = normalizeArgs(argc, argv);
    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--apps") {
            matrix.apps.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag))) {
                if (name == "coherence") {
                    for (const AppProfile &app : coherenceApps())
                        matrix.apps.push_back(app.name);
                } else {
                    matrix.apps.push_back(name);
                }
            }
        } else if (flag == "--policies") {
            matrix.policies.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag)))
                matrix.policies.push_back(parsePolicy(name));
        } else if (flag == "--relocations") {
            matrix.relocations.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag)))
                matrix.relocations.push_back(parseRelocation(name));
        } else if (flag == "--ro-policies") {
            matrix.roPolicies.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag)))
                matrix.roPolicies.push_back(parseRoPolicy(name));
        } else if (flag == "--seeds") {
            matrix.seeds.clear();
            for (const std::string &seed :
                 splitList(flag, next_value(i, flag)))
                matrix.seeds.push_back(parseUint(flag, seed));
        } else if (flag == "--accesses") {
            matrix.base.accessesPerVcpu =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--warmup") {
            matrix.base.warmupAccessesPerVcpu =
                parseUint(flag, next_value(i, flag));
            warmup_set = true;
        } else if (flag == "--mesh") {
            std::string value = next_value(i, flag);
            auto x = value.find('x');
            if (x == std::string::npos)
                die("--mesh expects WxH, e.g. 4x4");
            matrix.base.mesh.width = static_cast<std::uint32_t>(
                parseUint(flag, value.substr(0, x)));
            matrix.base.mesh.height = static_cast<std::uint32_t>(
                parseUint(flag, value.substr(x + 1)));
        } else if (flag == "--vms") {
            matrix.base.numVms = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--vcpus") {
            matrix.base.vcpusPerVm = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--l2-kb") {
            matrix.base.l2.sizeBytes =
                parseUint(flag, next_value(i, flag)) * 1024;
        } else if (flag == "--l1-kb") {
            matrix.base.l2.l1SizeBytes =
                parseUint(flag, next_value(i, flag)) * 1024;
        } else if (flag == "--ideal-network") {
            matrix.base.idealNetwork = true;
        } else if (flag == "--threshold") {
            matrix.base.vsnoop.counterThreshold =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--region-bytes") {
            matrix.base.regionBytes =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--migration-period") {
            matrix.base.migrationPeriod =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--trace-dir") {
            matrix.traceDir = next_value(i, flag);
        } else if (flag == "--trace-limit") {
            matrix.base.traceLimit = static_cast<std::size_t>(
                parseUint(flag, next_value(i, flag)));
            if (matrix.base.traceLimit == 0)
                die("--trace-limit must be at least 1");
        } else if (flag == "--timeseries-interval") {
            matrix.base.timeseriesInterval =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--profile") {
            want_profile = true;
        } else if (flag == "--perf") {
            matrix.base.perf = true;
        } else if (flag == "--perf-sample-interval") {
            matrix.base.perfSampleInterval =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--pages") {
            matrix.base.pages = true;
        } else if (flag == "--pages-top") {
            matrix.base.pagesTop = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
            if (matrix.base.pagesTop == 0)
                die("--pages-top must be at least 1");
        } else if (flag == "--stats-addr") {
            stats_addr = next_value(i, flag);
        } else if (flag == "--heartbeat") {
            heartbeat_secs = parseUint(flag, next_value(i, flag));
        } else if (flag == "--stall-timeout") {
            stall_secs = parseUint(flag, next_value(i, flag));
        } else if (flag == "--submit") {
            submit_addr = next_value(i, flag);
        } else if (flag == "--jobs") {
            jobs = static_cast<unsigned>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--out") {
            out_path = next_value(i, flag);
        } else if (flag == "--list") {
            list_only = true;
        } else {
            die("unknown flag '" + flag + "' (try --help)");
        }
    }
    if (!warmup_set)
        matrix.base.warmupAccessesPerVcpu =
            matrix.base.accessesPerVcpu / 4;

    // Fail on unknown app names before doing any work.
    for (const std::string &name : matrix.apps) {
        if (tryFindApp(name) == nullptr)
            die("unknown app '" + name + "'; known: " +
                joinNames(knownAppNames()));
    }

    std::vector<SweepPoint> points = matrix.expand();
    if (list_only) {
        for (const SweepPoint &p : points) {
            std::cout << p.app << " " << policyKindName(p.policy)
                      << " " << relocationModeToken(p.relocation) << " "
                      << roPolicyToken(p.roPolicy) << " seed=" << p.seed
                      << "\n";
        }
        std::cerr << "vsnoopsweep: " << points.size() << " runs\n";
        return 0;
    }

    if (!submit_addr.empty()) {
        if (!matrix.traceDir.empty())
            die("--submit cannot capture traces; drop --trace-dir");
        if (want_profile || !stats_addr.empty())
            die("--submit runs remotely; drop --profile and "
                "--stats-addr");
        installSignalHandlers();
        return runSubmit(matrix, submit_addr, out_path);
    }

    quietLogging(true);
    installSignalHandlers();

    const std::uint64_t stall_ms = stall_secs * 1000;
    SweepHeartbeat heartbeat(matrix);
    MetricsRegistry registry;
    heartbeat.registerMetrics(registry);
    // With --perf, each completed run's internals counters fold
    // into an aggregate the monitor thread exports as
    // vsnoop_perf_* series; the add happens on worker threads
    // under the exporter's own lock, never touching simulation.
    PerfExport perf_export;
    if (matrix.base.perf)
        perf_export.registerMetrics(registry);
    // Same pattern for --pages: per-run page-attribution snapshots
    // aggregate into vsnoop_pages_* series.
    PagesExport pages_export;
    if (matrix.base.pages)
        pages_export.registerMetrics(registry);
    registry.freeze();

    StatsServer server;
    if (!stats_addr.empty()) {
        registerTelemetryRoutes(server, registry, heartbeat, stall_ms);
        std::string error;
        if (!server.start(stats_addr, &error))
            die("--stats-addr " + stats_addr + ": " + error);
        std::cerr << "vsnoopsweep: listening on http://"
                  << server.address() << "\n";
    }

    // The monitor thread is the registry's single publisher; it
    // also prints the stderr heartbeat and runs the watchdog.  All
    // of it only reads heartbeat cells, so simulation threads never
    // notice the observer.
    std::atomic<bool> monitor_stop{false};
    std::mutex monitor_mutex;
    std::condition_variable monitor_cv;
    std::thread monitor([&] {
        std::vector<std::uint8_t> was_stalled(heartbeat.runCount(), 0);
        std::uint64_t next_beat = steadyNowMs() + heartbeat_secs * 1000;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(monitor_mutex);
                if (monitor_cv.wait_for(
                        lock, std::chrono::milliseconds(250),
                        [&] { return monitor_stop.load(); }))
                    break;
            }
            std::uint64_t now = steadyNowMs();
            if (matrix.base.perf)
                perf_export.stageMetrics(registry);
            if (matrix.base.pages)
                pages_export.stageMetrics(registry);
            heartbeat.publishMetrics(registry, now, stall_ms);
            if (stall_ms > 0) {
                for (std::size_t i = 0; i < heartbeat.runCount(); ++i) {
                    bool stalled = heartbeat.run(i).stalled(now, stall_ms);
                    if (stalled && !was_stalled[i]) {
                        std::cerr << "vsnoopsweep: watchdog: run "
                                  << heartbeat.info(i).label
                                  << " has made no progress for "
                                  << stall_secs << " s\n";
                    } else if (!stalled && was_stalled[i]) {
                        std::cerr << "vsnoopsweep: watchdog: run "
                                  << heartbeat.info(i).label
                                  << " is making progress again\n";
                    }
                    was_stalled[i] = stalled ? 1 : 0;
                }
            }
            if (heartbeat_secs > 0 && now >= next_beat) {
                std::cerr << "vsnoopsweep: "
                          << heartbeat.heartbeatLine(now) << "\n";
                next_beat = now + heartbeat_secs * 1000;
            }
        }
        // Final publish so a post-completion scrape sees the end
        // state (every run done, rate and ETA settled).
        if (matrix.base.perf)
            perf_export.stageMetrics(registry);
        if (matrix.base.pages)
            pages_export.stageMetrics(registry);
        heartbeat.publishMetrics(registry, steadyNowMs(), stall_ms);
    });

    auto start = std::chrono::steady_clock::now();
    HostProfiler profiler;
    SweepExecution exec = runSweepMonitored(
        matrix, jobs, want_profile ? &profiler : nullptr, &heartbeat,
        [] { return g_signal != 0; },
        [&](std::size_t, const RunResult &result) {
            if (result.results.perf.enabled)
                perf_export.add(result.results.perf);
            if (result.results.pages.enabled)
                pages_export.add(result.results.pages);
        });
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    {
        std::lock_guard<std::mutex> lock(monitor_mutex);
        monitor_stop.store(true);
    }
    monitor_cv.notify_all();
    monitor.join();

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            die("cannot open --out file '" + out_path + "'");
    }
    std::ostream &out = out_path.empty() ? std::cout : file;
    // Completed records only, in matrix order; an interrupted sweep
    // never emits a partially-built record.
    for (std::size_t i = 0; i < exec.results.size(); ++i) {
        if (exec.completed[i])
            out << exec.results[i].toJson() << "\n";
    }
    std::size_t runs_completed = exec.completedCount();
    if (exec.interrupted) {
        // Trailing summary line so consumers of a truncated file can
        // tell "interrupted" from "small sweep" without guessing.
        JsonWriter json;
        json.beginObject();
        writeBuildMeta(json);
        json.key("summary").beginObject();
        json.key("interrupted").value(true);
        json.key("signal").value(static_cast<std::uint64_t>(g_signal));
        json.key("runs_completed")
            .value(static_cast<std::uint64_t>(runs_completed));
        json.key("runs_total")
            .value(static_cast<std::uint64_t>(exec.results.size()));
        json.endObject();
        json.endObject();
        out << json.str() << "\n";
    }

    // End-of-sweep summary (stderr, so JSON output stays clean).
    // When tracing was on, the summary includes the total records
    // dropped across all runs so per-file ring truncation is never
    // silent.
    double rate = elapsed > 0.0
                      ? static_cast<double>(runs_completed) / elapsed
                      : 0.0;
    std::cerr << "vsnoopsweep: " << runs_completed;
    if (exec.interrupted)
        std::cerr << "/" << exec.results.size();
    std::cerr << " runs in " << elapsed << " s (" << rate
              << " runs/s)";
    bool traced = false;
    std::uint64_t dropped = 0;
    std::uint64_t lookups = 0, offdiag = 0;
    for (std::size_t i = 0; i < exec.results.size(); ++i) {
        if (!exec.completed[i])
            continue;
        traced = traced || exec.results[i].traceAttached;
        dropped += exec.results[i].traceRecordsDropped;
        const InterferenceSnapshot &in =
            exec.results[i].results.interference;
        lookups += in.total(in.snoopLookups);
        offdiag += in.offDiagonal(in.snoopLookups);
    }
    if (traced)
        std::cerr << ", trace records dropped: " << dropped;
    if (lookups > 0) {
        // Sweep-wide isolation figure: share of all snoop lookups
        // that landed on another VM's (or the host's) cache tags.
        char share[32];
        std::snprintf(share, sizeof(share), "%.1f",
                      100.0 * static_cast<double>(offdiag) /
                          static_cast<double>(lookups));
        std::cerr << ", cross-VM lookup share: " << share << "%";
    }
    if (exec.interrupted)
        std::cerr << " — interrupted";
    std::cerr << "\n";
    if (want_profile)
        writeProfile(std::cerr, profiler);
    if (exec.interrupted)
        return 128 + static_cast<int>(g_signal);
    return 0;
}
