/**
 * @file
 * vsnoopsweep — parallel multi-configuration sweep runner.
 *
 * Expands a cross-product of sweep axes (apps x policies x
 * relocation modes x RO policies x seeds) over a shared base
 * configuration and executes every resulting run on a worker pool.
 * Output is JSON lines — one self-describing object per run (see
 * system/run_result.hh) — in deterministic matrix order:
 * byte-identical for any --jobs value.
 *
 *   vsnoopsweep --apps ferret,canneal --policies tokenb,vsnoop \
 *               --relocations base,counter --seeds 1,2 --jobs 8
 *
 * reproduces a 16-run paper-style comparison on 8 cores.  Run with
 * --help for the full flag list.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "system/sweep.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnoopsweep — parallel configuration-sweep runner\n"
        "\n"
        "usage: vsnoopsweep [flags]\n"
        "\n"
        "Expands the cross-product of the sweep axes below into\n"
        "independent runs, executes them on a worker pool, and\n"
        "prints one JSON object per run (JSON lines) in a fixed\n"
        "matrix order: app-major, then policy, relocation,\n"
        "ro-policy, seed.  Output bytes do not depend on --jobs.\n"
        "\n"
        "sweep axes (comma-separated lists):\n"
        "  --apps A,B,...        application profiles (default\n"
        "                        ferret); 'coherence' expands to the\n"
        "                        paper's ten-app evaluation set\n"
        "  --policies P,...      tokenb | vsnoop | region (default\n"
        "                        vsnoop)\n"
        "  --relocations M,...   base | counter | counter-threshold |\n"
        "                        counter-flush (default counter)\n"
        "  --ro-policies P,...   broadcast | memory-direct | intra-vm |\n"
        "                        friend-vm (default broadcast)\n"
        "  --seeds S,...         RNG seeds, one run per seed\n"
        "                        (default 1)\n"
        "\n"
        "base configuration (applied to every run):\n"
        "  --accesses N          accesses per vCPU (default 20000)\n"
        "  --warmup N            warmup accesses per vCPU (default\n"
        "                        accesses/4)\n"
        "  --mesh WxH            mesh geometry (default 4x4)\n"
        "  --vms N               virtual machines (default 4)\n"
        "  --vcpus N             vCPUs per VM (default 4)\n"
        "  --l2-kb N             private L2 size in KB (default 256)\n"
        "  --l1-kb N             model private L1s of N KB\n"
        "  --ideal-network       contention-free crossbar\n"
        "  --threshold N         counter threshold (default 10)\n"
        "  --region-bytes N      region filter granularity (default\n"
        "                        1024)\n"
        "  --migration-period T  ticks between vCPU shuffles (default\n"
        "                        0 = pinned)\n"
        "\n"
        "observability:\n"
        "  --trace-dir DIR       write one Chrome trace-event JSON\n"
        "                        file per run into DIR (must exist;\n"
        "                        named <app>-<policy>-<relocation>-\n"
        "                        <ro>-s<seed>.trace.json)\n"
        "  --trace-limit N       trace ring capacity in records\n"
        "                        (default 1048576)\n"
        "  --timeseries-interval T\n"
        "                        sample the interval time series every\n"
        "                        T ticks into each run's JSON record\n"
        "                        (default 0 = off)\n"
        "\n"
        "  --profile             profile the simulator itself: print\n"
        "                        an aggregated per-phase host time\n"
        "                        breakdown (CPU time summed across\n"
        "                        workers) to stderr after the sweep\n"
        "\n"
        "execution:\n"
        "  --jobs N              worker threads (default hardware\n"
        "                        concurrency)\n"
        "  --out FILE            write JSON lines to FILE instead of\n"
        "                        stdout\n"
        "  --list                print the expanded matrix and exit\n"
        "                        without running\n"
        "  --help                this text\n"
        "\n"
        "Flags accept both \"--flag value\" and \"--flag=value\".\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnoopsweep: " << msg << "\n";
    std::exit(2);
}

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        die(flag + " expects a non-negative integer, got '" +
            value + "'");
    return parsed;
}

std::vector<std::string>
splitList(const std::string &flag, const std::string &value)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        std::string item = value.substr(start, comma - start);
        if (item.empty())
            die(flag + " has an empty list element in '" + value + "'");
        items.push_back(std::move(item));
        start = comma + 1;
        if (comma == value.size())
            break;
    }
    if (items.empty())
        die(flag + " expects a non-empty comma-separated list");
    return items;
}

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "tokenb")
        return PolicyKind::TokenB;
    if (name == "vsnoop")
        return PolicyKind::VirtualSnoop;
    if (name == "region")
        return PolicyKind::IdealRegionFilter;
    die("unknown policy '" + name + "'; known: tokenb vsnoop region");
}

RelocationMode
parseRelocation(const std::string &name)
{
    if (name == "base")
        return RelocationMode::Base;
    if (name == "counter")
        return RelocationMode::Counter;
    if (name == "counter-threshold")
        return RelocationMode::CounterThreshold;
    if (name == "counter-flush")
        return RelocationMode::CounterFlush;
    die("unknown relocation mode '" + name +
        "'; known: base counter counter-threshold counter-flush");
}

RoPolicy
parseRoPolicy(const std::string &name)
{
    if (name == "broadcast")
        return RoPolicy::Broadcast;
    if (name == "memory-direct")
        return RoPolicy::MemoryDirect;
    if (name == "intra-vm")
        return RoPolicy::IntraVm;
    if (name == "friend-vm")
        return RoPolicy::FriendVm;
    die("unknown RO policy '" + name +
        "'; known: broadcast memory-direct intra-vm friend-vm");
}

/** Expand "--flag=value" into "--flag","value". */
std::vector<std::string>
normalizeArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }
    return args;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ' ';
        out += name;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepMatrix matrix;
    matrix.apps = {"ferret"};
    matrix.base.accessesPerVcpu = 20000;
    bool warmup_set = false;
    bool list_only = false;
    bool want_profile = false;
    unsigned jobs = 0;
    std::string out_path;

    std::vector<std::string> args = normalizeArgs(argc, argv);
    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--apps") {
            matrix.apps.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag))) {
                if (name == "coherence") {
                    for (const AppProfile &app : coherenceApps())
                        matrix.apps.push_back(app.name);
                } else {
                    matrix.apps.push_back(name);
                }
            }
        } else if (flag == "--policies") {
            matrix.policies.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag)))
                matrix.policies.push_back(parsePolicy(name));
        } else if (flag == "--relocations") {
            matrix.relocations.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag)))
                matrix.relocations.push_back(parseRelocation(name));
        } else if (flag == "--ro-policies") {
            matrix.roPolicies.clear();
            for (const std::string &name :
                 splitList(flag, next_value(i, flag)))
                matrix.roPolicies.push_back(parseRoPolicy(name));
        } else if (flag == "--seeds") {
            matrix.seeds.clear();
            for (const std::string &seed :
                 splitList(flag, next_value(i, flag)))
                matrix.seeds.push_back(parseUint(flag, seed));
        } else if (flag == "--accesses") {
            matrix.base.accessesPerVcpu =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--warmup") {
            matrix.base.warmupAccessesPerVcpu =
                parseUint(flag, next_value(i, flag));
            warmup_set = true;
        } else if (flag == "--mesh") {
            std::string value = next_value(i, flag);
            auto x = value.find('x');
            if (x == std::string::npos)
                die("--mesh expects WxH, e.g. 4x4");
            matrix.base.mesh.width = static_cast<std::uint32_t>(
                parseUint(flag, value.substr(0, x)));
            matrix.base.mesh.height = static_cast<std::uint32_t>(
                parseUint(flag, value.substr(x + 1)));
        } else if (flag == "--vms") {
            matrix.base.numVms = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--vcpus") {
            matrix.base.vcpusPerVm = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--l2-kb") {
            matrix.base.l2.sizeBytes =
                parseUint(flag, next_value(i, flag)) * 1024;
        } else if (flag == "--l1-kb") {
            matrix.base.l2.l1SizeBytes =
                parseUint(flag, next_value(i, flag)) * 1024;
        } else if (flag == "--ideal-network") {
            matrix.base.idealNetwork = true;
        } else if (flag == "--threshold") {
            matrix.base.vsnoop.counterThreshold =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--region-bytes") {
            matrix.base.regionBytes =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--migration-period") {
            matrix.base.migrationPeriod =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--trace-dir") {
            matrix.traceDir = next_value(i, flag);
        } else if (flag == "--trace-limit") {
            matrix.base.traceLimit = static_cast<std::size_t>(
                parseUint(flag, next_value(i, flag)));
            if (matrix.base.traceLimit == 0)
                die("--trace-limit must be at least 1");
        } else if (flag == "--timeseries-interval") {
            matrix.base.timeseriesInterval =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--profile") {
            want_profile = true;
        } else if (flag == "--jobs") {
            jobs = static_cast<unsigned>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--out") {
            out_path = next_value(i, flag);
        } else if (flag == "--list") {
            list_only = true;
        } else {
            die("unknown flag '" + flag + "' (try --help)");
        }
    }
    if (!warmup_set)
        matrix.base.warmupAccessesPerVcpu =
            matrix.base.accessesPerVcpu / 4;

    // Fail on unknown app names before doing any work.
    for (const std::string &name : matrix.apps) {
        if (tryFindApp(name) == nullptr)
            die("unknown app '" + name + "'; known: " +
                joinNames(knownAppNames()));
    }

    std::vector<SweepPoint> points = matrix.expand();
    if (list_only) {
        for (const SweepPoint &p : points) {
            std::cout << p.app << " " << policyKindName(p.policy)
                      << " " << relocationModeToken(p.relocation) << " "
                      << roPolicyToken(p.roPolicy) << " seed=" << p.seed
                      << "\n";
        }
        std::cerr << "vsnoopsweep: " << points.size() << " runs\n";
        return 0;
    }

    quietLogging(true);

    auto start = std::chrono::steady_clock::now();
    HostProfiler profiler;
    std::vector<RunResult> results =
        runSweep(matrix, jobs, want_profile ? &profiler : nullptr);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            die("cannot open --out file '" + out_path + "'");
    }
    std::ostream &out = out_path.empty() ? std::cout : file;
    for (const RunResult &r : results)
        out << r.toJson() << "\n";

    // End-of-sweep summary (stderr, so JSON output stays clean).
    // When tracing was on, the summary includes the total records
    // dropped across all runs so per-file ring truncation is never
    // silent.
    double rate = elapsed > 0.0
                      ? static_cast<double>(results.size()) / elapsed
                      : 0.0;
    std::cerr << "vsnoopsweep: " << results.size() << " runs in "
              << elapsed << " s (" << rate << " runs/s)";
    bool traced = false;
    std::uint64_t dropped = 0;
    for (const RunResult &r : results) {
        traced = traced || r.traceAttached;
        dropped += r.traceRecordsDropped;
    }
    if (traced)
        std::cerr << ", trace records dropped: " << dropped;
    std::cerr << "\n";
    if (want_profile)
        writeProfile(std::cerr, profiler);
    return 0;
}
