/**
 * @file
 * vsnoopsim — command-line front end for the simulator.
 *
 * Runs one configuration end to end and prints the full result set
 * (coherence, network, policy, memory, and energy statistics).
 * Everything the SystemConfig exposes is reachable from flags, so
 * the tool doubles as the scripting interface for custom
 * experiments:
 *
 *   vsnoopsim --app canneal --policy vsnoop --relocation counter \
 *             --migration-period 50000 --accesses 20000
 *
 * Flags accept both "--flag value" and "--flag=value".  Run with
 * --help for the full flag list.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "sim/stats_server.hh"
#include "sim/table.hh"
#include "system/energy.hh"
#include "system/heartbeat.hh"
#include "system/run_result.hh"
#include "system/sim_system.hh"
#include "system/sweep.hh"
#include "trace/trace.hh"

using namespace vsnoop;

namespace
{

void
usage()
{
    std::cout <<
        "vsnoopsim — virtual snooping simulator\n"
        "\n"
        "usage: vsnoopsim [flags]\n"
        "\n"
        "workload:\n"
        "  --app NAME            application profile (default ferret);\n"
        "                        one of: cholesky fft lu ocean radix\n"
        "                        blackscholes canneal dedup ferret\n"
        "                        specjbb, plus the scheduler-study set\n"
        "  --accesses N          accesses per vCPU (default 20000)\n"
        "  --warmup N            warmup accesses per vCPU (default\n"
        "                        accesses/4)\n"
        "  --seed N              RNG seed (default 1)\n"
        "\n"
        "system:\n"
        "  --mesh WxH            mesh geometry (default 4x4)\n"
        "  --vms N               virtual machines (default 4)\n"
        "  --vcpus N             vCPUs per VM (default 4)\n"
        "  --l2-kb N             private L2 size in KB (default 256)\n"
        "  --l1-kb N             model private L1s of N KB (default\n"
        "                        off; generators emit post-L1 streams)\n"
        "  --ideal-network       use a contention-free crossbar\n"
        "\n"
        "policy:\n"
        "  --policy P            tokenb | vsnoop | region (default\n"
        "                        vsnoop)\n"
        "  --relocation M        base | counter | counter-threshold |\n"
        "                        counter-flush (default counter)\n"
        "  --ro-policy P         broadcast | memory-direct | intra-vm |\n"
        "                        friend-vm (default broadcast)\n"
        "  --threshold N         counter threshold (default 10)\n"
        "  --region-bytes N      region filter granularity (default\n"
        "                        1024)\n"
        "\n"
        "relocation:\n"
        "  --migration-period T  ticks between vCPU shuffles (default\n"
        "                        0 = pinned)\n"
        "\n"
        "observability:\n"
        "  --trace FILE          capture the coherence transaction\n"
        "                        trace and export it as a Chrome\n"
        "                        trace-event JSON file (load in\n"
        "                        Perfetto / chrome://tracing)\n"
        "  --trace-limit N       trace ring capacity in records\n"
        "                        (default 1048576; oldest records are\n"
        "                        dropped when full)\n"
        "  --timeseries-interval T\n"
        "                        sample the interval time series every\n"
        "                        T ticks into the JSON result and the\n"
        "                        trace's counter track (default 0 =\n"
        "                        off)\n"
        "\n"
        "  --profile             profile the simulator itself: print\n"
        "                        a per-phase host time breakdown and\n"
        "                        events/s to stderr after the run\n"
        "  --perf                collect simulator-internals counters\n"
        "                        (event-queue occupancy, hash-table\n"
        "                        probe lengths, pool watermarks, mesh\n"
        "                        backlog) into results.perf of the\n"
        "                        JSON record; deterministic, off by\n"
        "                        default, and the record is\n"
        "                        byte-identical to a non---perf run\n"
        "                        when off\n"
        "  --perf-sample-interval T\n"
        "                        sample perf occupancy histograms\n"
        "                        every T ticks (default 10000; a\n"
        "                        nonzero --timeseries-interval takes\n"
        "                        precedence for the shared sampling\n"
        "                        chain)\n"
        "  --pages               attribute snoop activity to host\n"
        "                        pages: per-page lookup/miss/cross-VM\n"
        "                        counters in a bounded top-K table,\n"
        "                        sharing-lifecycle transition counts,\n"
        "                        and a mapped-page census, emitted as\n"
        "                        results.pages; the top-K lookup total\n"
        "                        plus the truncated remainder equals\n"
        "                        snoop_lookups exactly\n"
        "  --pages-top K         heavy-hitter capacity for --pages\n"
        "                        (default 64)\n"
        "  --watch-page ADDR     watch one host page (byte address,\n"
        "                        decimal or 0x-hex; repeatable):\n"
        "                        transaction trace records are kept\n"
        "                        only for watched pages, and page\n"
        "                        lifecycle events are traced; implies\n"
        "                        trace capture\n"
        "  --stats-addr H:P      serve live telemetry over HTTP while\n"
        "                        the run executes: /metrics\n"
        "                        (Prometheus text format, including\n"
        "                        the full simulator stat set),\n"
        "                        /progress and /runs (JSON).  Port 0\n"
        "                        picks a free port; the bound address\n"
        "                        is printed to stderr.  Default off;\n"
        "                        results are byte-identical either\n"
        "                        way.\n"
        "\n"
        "output:\n"
        "  --energy              include the energy estimate\n"
        "  --json                print one JSON object (the full\n"
        "                        result record, energy included)\n"
        "                        instead of the text tables\n"
        "  --help                this text\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "vsnoopsim: " << msg << "\n";
    std::exit(2);
}

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        die(flag + " expects a non-negative integer, got '" +
            value + "'");
    return parsed;
}

/** Expand "--flag=value" into "--flag","value". */
std::vector<std::string>
normalizeArgs(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::size_t eq;
        if (arg.rfind("--", 0) == 0 &&
            (eq = arg.find('=')) != std::string::npos) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(std::move(arg));
        }
    }
    return args;
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ' ';
        out += name;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = "ferret";
    SystemConfig cfg;
    cfg.accessesPerVcpu = 20000;
    bool warmup_set = false;
    bool want_energy = false;
    bool want_json = false;
    bool want_profile = false;
    std::string stats_addr;

    std::vector<std::string> args = normalizeArgs(argc, argv);
    auto next_value = [&](std::size_t &i, const std::string &flag) {
        if (i + 1 >= args.size())
            die(flag + " requires a value");
        return args[++i];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            usage();
            return 0;
        } else if (flag == "--app") {
            app_name = next_value(i, flag);
        } else if (flag == "--accesses") {
            cfg.accessesPerVcpu = parseUint(flag, next_value(i, flag));
        } else if (flag == "--warmup") {
            cfg.warmupAccessesPerVcpu =
                parseUint(flag, next_value(i, flag));
            warmup_set = true;
        } else if (flag == "--seed") {
            cfg.seed = parseUint(flag, next_value(i, flag));
        } else if (flag == "--mesh") {
            std::string value = next_value(i, flag);
            auto x = value.find('x');
            if (x == std::string::npos)
                die("--mesh expects WxH, e.g. 4x4");
            cfg.mesh.width = static_cast<std::uint32_t>(
                parseUint(flag, value.substr(0, x)));
            cfg.mesh.height = static_cast<std::uint32_t>(
                parseUint(flag, value.substr(x + 1)));
        } else if (flag == "--vms") {
            cfg.numVms = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--vcpus") {
            cfg.vcpusPerVm = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
        } else if (flag == "--l2-kb") {
            cfg.l2.sizeBytes =
                parseUint(flag, next_value(i, flag)) * 1024;
        } else if (flag == "--l1-kb") {
            cfg.l2.l1SizeBytes =
                parseUint(flag, next_value(i, flag)) * 1024;
        } else if (flag == "--ideal-network") {
            cfg.idealNetwork = true;
        } else if (flag == "--policy") {
            std::string value = next_value(i, flag);
            if (value == "tokenb")
                cfg.policy = PolicyKind::TokenB;
            else if (value == "vsnoop")
                cfg.policy = PolicyKind::VirtualSnoop;
            else if (value == "region")
                cfg.policy = PolicyKind::IdealRegionFilter;
            else
                die("unknown --policy '" + value +
                    "'; known: tokenb vsnoop region");
        } else if (flag == "--relocation") {
            std::string value = next_value(i, flag);
            if (value == "base")
                cfg.vsnoop.relocation = RelocationMode::Base;
            else if (value == "counter")
                cfg.vsnoop.relocation = RelocationMode::Counter;
            else if (value == "counter-threshold")
                cfg.vsnoop.relocation = RelocationMode::CounterThreshold;
            else if (value == "counter-flush")
                cfg.vsnoop.relocation = RelocationMode::CounterFlush;
            else
                die("unknown --relocation '" + value +
                    "'; known: base counter counter-threshold "
                    "counter-flush");
        } else if (flag == "--ro-policy") {
            std::string value = next_value(i, flag);
            if (value == "broadcast")
                cfg.vsnoop.roPolicy = RoPolicy::Broadcast;
            else if (value == "memory-direct")
                cfg.vsnoop.roPolicy = RoPolicy::MemoryDirect;
            else if (value == "intra-vm")
                cfg.vsnoop.roPolicy = RoPolicy::IntraVm;
            else if (value == "friend-vm")
                cfg.vsnoop.roPolicy = RoPolicy::FriendVm;
            else
                die("unknown --ro-policy '" + value +
                    "'; known: broadcast memory-direct intra-vm "
                    "friend-vm");
        } else if (flag == "--threshold") {
            cfg.vsnoop.counterThreshold =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--region-bytes") {
            cfg.regionBytes = parseUint(flag, next_value(i, flag));
        } else if (flag == "--migration-period") {
            cfg.migrationPeriod = parseUint(flag, next_value(i, flag));
        } else if (flag == "--trace") {
            cfg.tracePath = next_value(i, flag);
        } else if (flag == "--trace-limit") {
            cfg.traceLimit = static_cast<std::size_t>(
                parseUint(flag, next_value(i, flag)));
            if (cfg.traceLimit == 0)
                die("--trace-limit must be at least 1");
        } else if (flag == "--timeseries-interval") {
            cfg.timeseriesInterval =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--profile") {
            want_profile = true;
        } else if (flag == "--perf") {
            cfg.perf = true;
        } else if (flag == "--perf-sample-interval") {
            cfg.perfSampleInterval =
                parseUint(flag, next_value(i, flag));
        } else if (flag == "--pages") {
            cfg.pages = true;
        } else if (flag == "--pages-top") {
            cfg.pagesTop = static_cast<std::uint32_t>(
                parseUint(flag, next_value(i, flag)));
            if (cfg.pagesTop == 0)
                die("--pages-top must be at least 1");
        } else if (flag == "--watch-page") {
            // Byte address, decimal or 0x-hex; stored as a host page
            // number.
            std::string value = next_value(i, flag);
            char *end = nullptr;
            std::uint64_t addr =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                die("--watch-page expects an address, got '" +
                    value + "'");
            cfg.watchPages.push_back(addr >> kPageShift);
        } else if (flag == "--stats-addr") {
            stats_addr = next_value(i, flag);
        } else if (flag == "--energy") {
            want_energy = true;
        } else if (flag == "--json") {
            want_json = true;
        } else {
            die("unknown flag '" + flag + "' (try --help)");
        }
    }
    if (!warmup_set)
        cfg.warmupAccessesPerVcpu = cfg.accessesPerVcpu / 4;

    const AppProfile *app = tryFindApp(app_name);
    if (app == nullptr)
        die("unknown --app '" + app_name + "'; known: " +
            joinNames(knownAppNames()));

    quietLogging(true);

    // One shared execution path: collectRun() runs the system,
    // gathers the result record, and exports the Chrome trace when
    // --trace is set.  The --stats-addr path builds the system
    // itself so it can attach the live-telemetry observers, then
    // assembles the record through the same collectResults(), so
    // the output bytes are identical either way.
    HostProfiler profiler;
    RunResult run;
    if (stats_addr.empty()) {
        run = collectRun(cfg, *app, want_profile ? &profiler : nullptr);
    } else {
        // Single-run telemetry: a one-point sweep matrix gives the
        // heartbeat exactly one cell, and the full simulator stat
        // set rides along as vsnoop_sim_* series.
        SweepMatrix matrix;
        matrix.apps = {app->name};
        matrix.policies = {cfg.policy};
        matrix.relocations = {cfg.vsnoop.relocation};
        matrix.roPolicies = {cfg.vsnoop.roPolicy};
        matrix.seeds = {cfg.seed};
        matrix.base = cfg;

        const std::uint64_t stall_ms = 30000;
        SweepHeartbeat heartbeat(matrix);
        MetricsRegistry registry;
        heartbeat.registerMetrics(registry);

        SimSystem system(cfg, *app);
        if (want_profile)
            system.setProfiler(&profiler);
        StatSet stats;
        system.registerStats(stats);
        StatSetExport stats_export(stats, registry, "vsnoop_sim_");
        TraceSink *trace = system.trace();
        if (trace != nullptr)
            trace->registerMetrics(registry, "vsnoop_sim_");
        registry.freeze();

        StatsServer server;
        registerTelemetryRoutes(server, registry, heartbeat, stall_ms);
        std::string error;
        if (!server.start(stats_addr, &error))
            die("--stats-addr " + stats_addr + ": " + error);
        std::cerr << "vsnoopsim: listening on http://"
                  << server.address() << "\n";

        // The simulating thread is the registry's single publisher:
        // publication is throttled by wall clock, which only gates
        // visibility — never simulation — so determinism holds.
        RunProgress &cell = heartbeat.run(0);
        heartbeat.markLaunched(steadyNowMs());
        cell.start(steadyNowMs());
        std::uint64_t last_publish = 0;
        system.setProgressCallback(
            [&](const ProgressSample &sample) {
                std::uint64_t now = steadyNowMs();
                cell.update(sample, now);
                if (!sample.finished && now - last_publish < 100)
                    return;
                last_publish = now;
                stats_export.update();
                if (trace != nullptr)
                    trace->stageMetrics(registry);
                heartbeat.publishMetrics(registry, now, stall_ms);
            });
        system.run();
        cell.finish(steadyNowMs());
        stats_export.update();
        if (trace != nullptr)
            trace->stageMetrics(registry);
        heartbeat.publishMetrics(registry, steadyNowMs(), stall_ms);

        run = collectResults(system, app->name);
        server.stop();
    }

    if (!cfg.tracePath.empty())
        std::cerr << "vsnoopsim: trace written to " << cfg.tracePath
                  << "\n";
    // Wall-clock profiles are nondeterministic, so they go to
    // stderr and never into the JSON record.
    if (want_profile)
        writeProfile(std::cerr, profiler);

    if (want_json) {
        // The structured record covers everything the text tables
        // print (energy included), so the machine-readable path
        // shares the sweep runner's serialization.
        std::cout << run.toJson() << "\n";
        return 0;
    }

    const SystemResults &r = run.results;

    std::cout << "vsnoopsim: " << app->name << " on "
              << cfg.mesh.width << "x" << cfg.mesh.height << " mesh, "
              << cfg.numVms << " VMs x " << cfg.vcpusPerVm
              << " vCPUs\n\n";

    TextTable table({"metric", "value"});
    table.row().cell("runtime (ticks)").cell(r.runtime);
    table.row().cell("accesses").cell(r.totalAccesses);
    table.row().cell("L2 misses (transactions)").cell(r.transactions);
    table.row().cell("snoop lookups").cell(r.snoopLookups);
    table.row()
        .cell("snoop lookups / transaction")
        .cell(static_cast<double>(r.snoopLookups) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, r.transactions)),
              2);
    table.row().cell("traffic (byte-hops)").cell(r.trafficByteHops);
    table.row().cell("mean miss latency (ticks)")
        .cell(r.meanMissLatency, 1);
    table.row().cell("retries").cell(r.retries);
    table.row().cell("persistent requests").cell(r.persistentRequests);
    table.row().cell("dirty writebacks").cell(r.dirtyWritebacks);
    table.row().cell("migrations").cell(r.migrations);
    table.row().cell("vCPU map adds / removals")
        .cell(std::to_string(r.mapAdds) + " / " +
              std::to_string(r.mapRemovals));
    table.print();

    std::cout << "\nL2 misses by access category:\n";
    TextTable cats({"category", "misses", "share %"});
    for (std::size_t c = 0; c < kNumAccessCategories; ++c) {
        if (r.missesByCategory[c] == 0)
            continue;
        cats.row()
            .cell(accessCategoryName(static_cast<AccessCategory>(c)))
            .cell(r.missesByCategory[c])
            .cell(100.0 * static_cast<double>(r.missesByCategory[c]) /
                      static_cast<double>(
                          std::max<std::uint64_t>(1, r.totalMisses)),
                  1);
    }
    cats.print();

    if (r.critpath.enabled && r.critpath.segments[0].count() > 0) {
        std::cout << "\nCritical-path breakdown (mean ticks / "
                     "transaction):\n";
        double txns =
            static_cast<double>(r.critpath.segments[0].count());
        TextTable crit({"segment", "mean", "share %"});
        double total = 0.0;
        for (std::size_t s = 0; s < kNumCritSegments; ++s)
            total += static_cast<double>(r.critpath.segments[s].sum());
        for (std::size_t s = 0; s < kNumCritSegments; ++s) {
            double sum =
                static_cast<double>(r.critpath.segments[s].sum());
            if (sum == 0.0)
                continue;
            crit.row()
                .cell(critSegmentName(static_cast<CritSegment>(s)))
                .cell(sum / txns, 1)
                .cell(100.0 * sum / std::max(1.0, total), 1);
        }
        crit.print();
    }
    if (r.interference.enabled &&
        r.interference.total(r.interference.snoopLookups) > 0) {
        char share[32];
        std::snprintf(share, sizeof(share), "%.1f",
                      100.0 * r.interference.offDiagLookupShare());
        std::cout << "\nInter-VM interference: " << share
                  << "% of snoop lookups hit another VM's (or the "
                     "host's) cache tags\n";
    }

    if (r.perf.enabled) {
        const PerfMon &p = r.perf;
        std::cout << "\nSimulator internals (--perf):\n";
        TextTable perf({"counter", "value"});
        perf.row().cell("events scheduled")
            .cell(p.eventQueue.schedules);
        perf.row().cell("events descheduled")
            .cell(p.eventQueue.deschedules);
        perf.row().cell("wheel inserts").cell(p.eventQueue.wheelInserts);
        perf.row().cell("overflow-heap inserts")
            .cell(p.eventQueue.overflowInserts);
        perf.row().cell("max wheel entries")
            .cell(p.eventQueue.maxWheelEntries);
        perf.row().cell("max overflow entries")
            .cell(p.eventQueue.maxOverflowEntries);
        perf.row().cell("max same-tick bucket depth")
            .cell(p.eventQueue.maxBucketDepth);
        perf.row().cell("event pool high water")
            .cell(p.eventQueue.poolHighWater);
        perf.row().cell("event pool refills / reuses")
            .cell(std::to_string(p.eventQueue.poolRefills) + " / " +
                  std::to_string(p.eventQueue.poolReuses));
        perf.print();

        std::cout << "\nHash tables (--perf):\n";
        TextTable tables({"table", "mean probe", "p99 probe",
                          "rehashes", "cleanups", "load"});
        auto table_row = [&](const char *name,
                             const FlatTablePerf &t) {
            tables.row()
                .cell(name)
                .cell(t.probeLength.mean(), 2)
                .cell(t.probeLength.quantile(0.99))
                .cell(t.growthRehashes)
                .cell(t.tombstoneCleanups)
                .cell(t.loadFactor(), 3);
        };
        table_row("mshrs", p.mshrs);
        table_row("inflight", p.inflight);
        table_row("memory ledger", p.memoryLedger);
        tables.print();

        if (p.mesh.sendBacklog.count() > 0) {
            std::cout << "\nMesh (--perf): mean send backlog "
                      << formatFixed(p.mesh.sendBacklog.mean(), 2)
                      << " cycles (p99 "
                      << p.mesh.sendBacklog.quantile(0.99)
                      << "), mean XY leg "
                      << formatFixed(p.mesh.legLength.mean(), 2)
                      << " hops\n";
        }
    }

    if (r.pages.enabled) {
        const PagesSnapshot &pg = r.pages;
        std::cout << "\nAddress space (--pages): "
                  << pg.totalLookups << " snoop lookups over "
                  << pg.cells.size() << " tracked pages";
        if (pg.truncatedLookups > 0)
            std::cout << " (+" << pg.truncatedLookups
                      << " folded from " << pg.truncatedPages
                      << " evicted pages)";
        std::cout << "\nMapped-page census:";
        for (std::size_t t = 0; t < kNumPageTypes; ++t)
            std::cout << " " << pageTypeName(static_cast<PageType>(t))
                      << "=" << pg.censusByType[t];
        std::cout << "\nLifecycle: " << pg.mapEvents << " maps, "
                  << pg.unmapEvents << " unmaps, " << pg.typeChanges
                  << " type changes, " << pg.cowBreaks
                  << " COW breaks, " << pg.remaps << " remaps\n";
        TextTable pages({"page", "type", "lookups", "misses",
                         "cross-VM", "filtered %", "sharers"});
        std::size_t shown = 0;
        for (const PageCell &cell : pg.cells) {
            if (shown++ == 10)
                break;
            std::uint64_t decisions = cell.filtered + cell.broadcast;
            std::uint32_t sharers = 0;
            for (std::uint32_t m = cell.sharerMask; m != 0; m >>= 1)
                sharers += m & 1;
            char page_hex[32];
            std::snprintf(page_hex, sizeof(page_hex), "0x%llx",
                          static_cast<unsigned long long>(
                              cell.pageNum << kPageShift));
            pages.row()
                .cell(page_hex)
                .cell(pageTypeName(cell.lastType))
                .cell(cell.lookups)
                .cell(cell.misses)
                .cell(cell.crossVm)
                .cell(decisions > 0
                          ? 100.0 * static_cast<double>(cell.filtered) /
                                static_cast<double>(decisions)
                          : 0.0,
                      1)
                .cell(static_cast<std::uint64_t>(sharers));
        }
        pages.print();
    }

    if (want_energy) {
        const EnergyBreakdown &e = run.energy;
        std::cout << "\nEnergy estimate:\n";
        TextTable energy({"component", "uJ", "share %"});
        auto row = [&](const char *name, double pj) {
            energy.row().cell(name).cell(pj / 1e6, 2).cell(
                100.0 * pj / e.totalPj(), 1);
        };
        row("snoop tag lookups", e.snoopTagPj);
        row("network", e.networkPj);
        row("DRAM", e.dramPj);
        row("L2 data arrays", e.l2DataPj);
        energy.row().cell("total").cell(e.totalPj() / 1e6, 2).cell(
            "100.0");
        energy.print();
    }

    return 0;
}
