/**
 * @file
 * Figure 3: the effect of pinning vCPUs to physical cores, in
 * undercommitted (two 4-vCPU VMs on 8 cores) and overcommitted
 * (four 4-vCPU VMs on 8 cores) systems.
 *
 * Paper shape: undercommitted, "no migration" (pinned) is at least
 * as fast as "full migration"; overcommitted, full migration is
 * clearly faster because pinning strands runnable vCPUs behind
 * blocked siblings while other cores idle.
 *
 * Values are execution times normalized to the no-migration policy
 * (= 100), averaged over several seeds.
 */

#include "bench_util.hh"

#include "virt/sched_sim.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

double
meanMakespan(const SchedProfile &profile, std::uint32_t vms, bool pinned)
{
    double sum = 0.0;
    constexpr int kSeeds = 3;
    for (int seed = 1; seed <= kSeeds; ++seed) {
        SchedConfig cfg;
        cfg.numCores = 8;
        cfg.pinned = pinned;
        cfg.seed = static_cast<std::uint64_t>(seed);
        // The paper's host shares an 8 MB L3 per socket, so the
        // cold-cache window after a migration is short.
        cfg.migrationColdMs = 0.3;
        cfg.coldSpeed = 0.6;
        SchedulerSim sim(cfg, profile, vms, 4);
        sum += sim.run().makespanMs;
    }
    return sum / kSeeds;
}

} // namespace

int
main()
{
    quietLogging(true);
    banner("Figure 3", "pinned (no migration) vs full migration, "
                       "normalized execution time (no-migration = 100)");

    TextTable table({"app", "undercommit: full migr.",
                     "overcommit: full migr."});
    double under_sum = 0.0, over_sum = 0.0;
    int n = 0;
    for (const AppProfile &app : schedulerApps()) {
        double under_pin = meanMakespan(app.sched, 2, true);
        double under_mig = meanMakespan(app.sched, 2, false);
        double over_pin = meanMakespan(app.sched, 4, true);
        double over_mig = meanMakespan(app.sched, 4, false);
        double under = 100.0 * under_mig / under_pin;
        double over = 100.0 * over_mig / over_pin;
        under_sum += under;
        over_sum += over;
        n++;
        table.row().cell(app.name).cell(under, 1).cell(over, 1);
    }
    table.row()
        .cell("average")
        .cell(under_sum / n, 1)
        .cell(over_sum / n, 1);
    table.print();
    std::cout << "\nShape check: undercommitted full-migration >= ~100 "
                 "(pinning wins or ties);\novercommitted full-migration "
                 "< 100 (migration wins).\n";
    return 0;
}
