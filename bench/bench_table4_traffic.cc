/**
 * @file
 * Table IV: network traffic reduction of virtual snooping with
 * ideally pinned VMs, relative to broadcast TokenB.
 *
 * Traffic is the total data moved through the mesh in byte-hops
 * (requests, token/ack responses, data transfers, writebacks and
 * vCPU-map synchronization).
 *
 * Paper shape: 62.8 - 65.0% reduction across the ten applications,
 * average 63.7%.  Our absolute percentages depend on the scaled
 * system's miss mix, but every application should see a large
 * (tens of percent) reduction and the spread across applications
 * should be narrow.
 */

#include "bench_util.hh"

#include <map>

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

const std::map<std::string, double> kPaper = {
    {"cholesky", 63.79}, {"fft", 63.20},       {"lu", 64.27},
    {"ocean", 63.74},    {"radix", 63.39},     {"blackscholes", 64.22},
    {"canneal", 63.35},  {"dedup", 64.97},     {"ferret", 63.05},
    {"specjbb", 62.79},
};

} // namespace

int
main()
{
    quietLogging(true);
    banner("Table IV",
           "network traffic reduction with ideally pinned VMs (%)");

    // The cross-VM columns report the off-diagonal snoop-lookup
    // share (results.interference): the fraction of lookups each
    // policy spent occupying a foreign VM's cache tags.  Traffic
    // reduction and isolation move together — filtered requests are
    // exactly the ones that would have crossed a VM boundary.
    TextTable table({"app", "TokenB byte-hops", "vsnoop byte-hops",
                     "reduction %", "paper %", "cross-VM % TokenB",
                     "cross-VM % vsnoop"});
    double sum = 0;
    double share_base_sum = 0, share_vs_sum = 0;
    int n = 0;
    for (const AppProfile &paper_app : coherenceApps()) {
        AppProfile app = sectionVApp(paper_app);
        SystemConfig base_cfg = benchConfig(8000);
        base_cfg.policy = PolicyKind::TokenB;
        SystemResults base = runSystem(base_cfg, app);

        SystemConfig vs_cfg = benchConfig(8000);
        vs_cfg.policy = PolicyKind::VirtualSnoop;
        SystemResults vs = runSystem(vs_cfg, app);

        double reduction =
            100.0 * (1.0 - static_cast<double>(vs.trafficByteHops) /
                               static_cast<double>(base.trafficByteHops));
        sum += reduction;
        share_base_sum += offDiagPct(base);
        share_vs_sum += offDiagPct(vs);
        n++;
        table.row()
            .cell(paper_app.name)
            .cell(base.trafficByteHops)
            .cell(vs.trafficByteHops)
            .cell(reduction, 2)
            .cell(kPaper.at(paper_app.name), 2)
            .cell(offDiagPct(base), 1)
            .cell(offDiagPct(vs), 1);
    }
    table.row()
        .cell("average")
        .cell("")
        .cell("")
        .cell(sum / n, 2)
        .cell("63.68")
        .cell(share_base_sum / n, 1)
        .cell(share_vs_sum / n, 1);
    table.print();
    return 0;
}
