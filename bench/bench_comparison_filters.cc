/**
 * @file
 * Extension: virtual snooping vs an idealized region-based filter
 * (the RegionScout / CGCT / INCF family the paper's Section VII
 * compares against qualitatively).
 *
 * The region filter here is an oracle — perfect instantaneous
 * knowledge of region sharers, zero tables, zero false positives —
 * so it upper-bounds what any real region filter can achieve.
 * Virtual snooping's argument is that the VM boundary captures most
 * of the private-data filtering opportunity with two PTE bits and a
 * per-core register; this bench puts a number on that claim.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

SystemResults
runPolicy(PolicyKind policy, const AppProfile &app,
          std::uint64_t region_bytes = 1024)
{
    SystemConfig cfg = benchConfig(6000);
    cfg.policy = policy;
    cfg.regionBytes = region_bytes;
    return runSystem(cfg, app);
}

} // namespace

int
main()
{
    quietLogging(true);
    banner("Comparison: filter families",
           "snoop lookups per transaction (broadcast = 16, "
           "pinned-VM ideal = 4)");

    TextTable table({"app", "TokenB", "region 256B", "region 1KB",
                     "region 4KB", "virtual snooping"});
    // Same five policies again, scored on inter-VM isolation: the
    // share of snoop lookups that occupied a *foreign* VM's cache
    // tags (off-diagonal of results.interference).
    TextTable isolation({"app", "TokenB", "region 256B", "region 1KB",
                         "region 4KB", "virtual snooping"});
    double sums[5] = {};
    double share_sums[5] = {};
    int n = 0;
    for (const AppProfile &app : coherenceApps()) {
        SystemResults rs[5] = {
            runPolicy(PolicyKind::TokenB, app),
            runPolicy(PolicyKind::IdealRegionFilter, app, 256),
            runPolicy(PolicyKind::IdealRegionFilter, app, 1024),
            runPolicy(PolicyKind::IdealRegionFilter, app, 4096),
            runPolicy(PolicyKind::VirtualSnoop, app),
        };
        auto &row = table.row().cell(app.name);
        auto &iso_row = isolation.row().cell(app.name);
        for (int i = 0; i < 5; ++i) {
            sums[i] += snoopsPerTxn(rs[i]);
            share_sums[i] += offDiagPct(rs[i]);
            row.cell(snoopsPerTxn(rs[i]), 2);
            iso_row.cell(offDiagPct(rs[i]), 1);
        }
        n++;
    }
    auto &avg = table.row().cell("average");
    auto &iso_avg = isolation.row().cell("average");
    for (int i = 0; i < 5; ++i) {
        avg.cell(sums[i] / n, 2);
        iso_avg.cell(share_sums[i] / n, 1);
    }
    table.print();
    std::cout << "\nCross-VM lookup share (% of snoop lookups on a "
                 "foreign VM's tags):\n";
    isolation.print();
    std::cout
        << "\nThe oracle region filter beats virtual snooping on pure "
           "filtering (it sees\nexact sharers), but needs per-region "
           "tracking state that grows with memory;\nvirtual snooping "
           "approaches it using only the existing VM boundary\n"
           "(Section VII of the paper).\n";
    return 0;
}
