/**
 * @file
 * Extension: virtual snooping vs an idealized region-based filter
 * (the RegionScout / CGCT / INCF family the paper's Section VII
 * compares against qualitatively).
 *
 * The region filter here is an oracle — perfect instantaneous
 * knowledge of region sharers, zero tables, zero false positives —
 * so it upper-bounds what any real region filter can achieve.
 * Virtual snooping's argument is that the VM boundary captures most
 * of the private-data filtering opportunity with two PTE bits and a
 * per-core register; this bench puts a number on that claim.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

double
snoopCost(PolicyKind policy, const AppProfile &app,
          std::uint64_t region_bytes = 1024)
{
    SystemConfig cfg = benchConfig(6000);
    cfg.policy = policy;
    cfg.regionBytes = region_bytes;
    SystemResults r = runSystem(cfg, app);
    return snoopsPerTxn(r);
}

} // namespace

int
main()
{
    quietLogging(true);
    banner("Comparison: filter families",
           "snoop lookups per transaction (broadcast = 16, "
           "pinned-VM ideal = 4)");

    TextTable table({"app", "TokenB", "region 256B", "region 1KB",
                     "region 4KB", "virtual snooping"});
    double sums[5] = {};
    int n = 0;
    for (const AppProfile &app : coherenceApps()) {
        double vals[5] = {
            snoopCost(PolicyKind::TokenB, app),
            snoopCost(PolicyKind::IdealRegionFilter, app, 256),
            snoopCost(PolicyKind::IdealRegionFilter, app, 1024),
            snoopCost(PolicyKind::IdealRegionFilter, app, 4096),
            snoopCost(PolicyKind::VirtualSnoop, app),
        };
        for (int i = 0; i < 5; ++i)
            sums[i] += vals[i];
        n++;
        table.row()
            .cell(app.name)
            .cell(vals[0], 2)
            .cell(vals[1], 2)
            .cell(vals[2], 2)
            .cell(vals[3], 2)
            .cell(vals[4], 2);
    }
    table.row()
        .cell("average")
        .cell(sums[0] / n, 2)
        .cell(sums[1] / n, 2)
        .cell(sums[2] / n, 2)
        .cell(sums[3] / n, 2)
        .cell(sums[4] / n, 2);
    table.print();
    std::cout
        << "\nThe oracle region filter beats virtual snooping on pure "
           "filtering (it sees\nexact sharers), but needs per-region "
           "tracking state that grows with memory;\nvirtual snooping "
           "approaches it using only the existing VM boundary\n"
           "(Section VII of the paper).\n";
    return 0;
}
