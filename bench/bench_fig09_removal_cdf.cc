/**
 * @file
 * Figure 9: cumulative distribution of the core-removal period
 * after a vCPU relocation under the counter mechanism (5 paper-ms
 * shuffle period).
 *
 * The removal period runs from the moment a vCPU leaves a core
 * (with data still cached there) to the eviction of the VM's last
 * private line from that cache.
 *
 * Paper shape: most removals complete within ~10 ms; radix and
 * ferret show occasional long tails; blackscholes' counters never
 * reach zero (its working set is too small for the new tenant to
 * evict), so it contributes no removals at all.
 */

#include "migration_bench.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 9", "CDF of core-removal period after relocation "
                       "(counter mechanism, 5 paper-ms shuffles)");

    const double quantiles[] = {0.25, 0.5, 0.75, 0.9, 0.99};
    TextTable table({"app", "removals", "p25 (ms)", "p50 (ms)",
                     "p75 (ms)", "p90 (ms)", "p99 (ms)"});
    for (const AppProfile &paper_app : coherenceApps()) {
        AppProfile app = scaleWorkingSet(sectionVApp(paper_app), 8);
        SystemConfig cfg = migBenchConfig(20000);
        cfg.policy = PolicyKind::VirtualSnoop;
        cfg.vsnoop.relocation = RelocationMode::Counter;
        // One shuffle relocates two vCPUs (Section V-C).
        cfg.migrationPeriod = 2 * migPaperMs(5.0);
        SimSystem sys(cfg, app);
        sys.run();
        const Histogram &hist =
            sys.vsnoopPolicy()->removalPeriodTicks;

        table.row().cell(paper_app.name).cell(hist.count());
        for (double q : quantiles) {
            if (hist.count() == 0) {
                table.cell("-");
            } else {
                table.cell(hist.quantile(q) /
                               static_cast<double>(kMigTicksPerPaperMs),
                           2);
            }
        }
    }
    table.print();
    std::cout << "\nblackscholes' small working set keeps its counters "
                 "above zero, so no cores\nare ever removed (matches "
                 "Section V-C).\n";
    return 0;
}
