/**
 * @file
 * Extension: scheduler-coupled relocation (the paper's future work,
 * Section VIII — "make hypervisors aware of the migration costs").
 *
 * Instead of the random cross-VM shuffles of Section V-C, this
 * bench records real credit-scheduler placement traces (4 VMs x 4
 * vCPUs on 16 cores, full migration, per-application blocking
 * behaviour) and replays them into the coherence simulation.  The
 * scheduler's actual relocation pattern — bursty, wake-driven,
 * sometimes leaving vCPUs descheduled — is what the vCPU maps must
 * survive.
 */

#include "migration_bench.hh"

#include "virt/sched_sim.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Scheduler-coupled relocation",
           "normalized snoops under real credit-scheduler traces "
           "(ideal filtered level: 25%)");

    TextTable table({"app", "sched relocs", "vsnoop-base %",
                     "counter %", "counter-flush %"});
    double sums[3] = {};
    int n = 0;
    for (const AppProfile &paper_app : coherenceApps()) {
        // Record this application's scheduler behaviour on the
        // 16-core chip.
        SchedConfig sched_cfg;
        sched_cfg.numCores = 16;
        sched_cfg.recordTrace = true;
        sched_cfg.seed = 11;
        SchedProfile profile = paper_app.sched;
        if (profile.workMsPerVcpu > 600.0)
            profile.workMsPerVcpu = 600.0;
        SchedulerSim sched(sched_cfg, profile, 4, 4);
        SchedResult sched_result = sched.run();
        auto trace =
            std::make_shared<const std::vector<PlacementEvent>>(
                sched_result.trace);

        AppProfile app = scaleWorkingSet(sectionVApp(paper_app), 8);
        auto normalized = [&](RelocationMode mode) {
            SystemConfig cfg = migBenchConfig(20000);
            cfg.policy = PolicyKind::VirtualSnoop;
            cfg.vsnoop.relocation = mode;
            cfg.placementTrace = trace;
            // Map scheduler milliseconds onto the migration bench's
            // scaled clock.
            cfg.traceTicksPerMs =
                static_cast<double>(kMigTicksPerPaperMs);
            SystemResults r = runSystem(cfg, app);
            return 100.0 * static_cast<double>(r.snoopLookups) /
                   (16.0 * static_cast<double>(r.transactions));
        };

        double base = normalized(RelocationMode::Base);
        double counter = normalized(RelocationMode::Counter);
        double flush = normalized(RelocationMode::CounterFlush);
        sums[0] += base;
        sums[1] += counter;
        sums[2] += flush;
        n++;
        table.row()
            .cell(paper_app.name)
            .cell(sched_result.migrations)
            .cell(base, 1)
            .cell(counter, 1)
            .cell(flush, 1);
    }
    table.row()
        .cell("average")
        .cell("")
        .cell(sums[0] / n, 1)
        .cell(sums[1] / n, 1)
        .cell(sums[2] / n, 1);
    table.print();
    std::cout
        << "\nReal scheduler traces are gentler than the synthetic "
           "worst-case shuffles\n(wake placement often reuses recent "
           "cores), so the counter mechanism holds\ncloser to the "
           "ideal than in Figures 7/8.\n";
    return 0;
}
