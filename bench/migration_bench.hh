/**
 * @file
 * Shared driver for the Figure 7/8 migration experiments: total
 * snoops under virtual snooping with periodic cross-VM vCPU
 * shuffles, normalized to the TokenB broadcast baseline, for the
 * three relocation mechanisms.
 *
 * Two methodology notes, both matching Section V-C:
 *
 *  - The paper's "a vCPU is relocated every P ms" counts single
 *    vCPU relocations; one shuffle exchanges two vCPUs, so shuffles
 *    fire every 2P (the paper: "for the 5ms configuration, two
 *    vCPUs ... are exchanged every 10ms").
 *
 *  - The TokenB baseline is not re-simulated: under broadcast every
 *    transaction induces exactly numCores snoop lookups (the
 *    requester's own tag check plus numCores-1 deliveries), so the
 *    baseline is 16 * transactions.  Retries are so rare under
 *    TokenB that the analytic baseline matches a measured one to
 *    well under a percent, at half the bench cost.
 */

#ifndef VSNOOP_BENCH_MIGRATION_BENCH_HH_
#define VSNOOP_BENCH_MIGRATION_BENCH_HH_

#include <vector>

#include "bench_util.hh"

namespace vsnoop::bench
{

/** Normalized-snoop results for one application at one period. */
struct MigrationPoint
{
    double base = 0.0;
    double counter = 0.0;
    double counterThreshold = 0.0;
};

/**
 * Run one application through the three virtual snooping relocation
 * modes at the given per-vCPU relocation period.
 */
/**
 * Migration-experiment time scale.  The relocation results depend
 * on the ratio of the migration period to the L2 turnover time.
 * The paper's 4096-line L2 at one miss per few hundred 1 GHz
 * cycles turns over in roughly 1-2 ms.  The migration benches use
 * a 16 KB (256-line) L2 with working sets scaled down 8x, which
 * turns over in roughly 40k ticks -- so 32,000 ticks map to one
 * paper millisecond here, keeping every period in the same regime
 * as the paper's sweep.
 */
constexpr Tick kMigTicksPerPaperMs = 32'000;

/** Convert paper milliseconds to ticks on the migration scale. */
inline Tick
migPaperMs(double ms)
{
    return static_cast<Tick>(ms *
                             static_cast<double>(kMigTicksPerPaperMs));
}

/** The migration benches' scaled-down system configuration. */
inline SystemConfig
migBenchConfig(std::uint64_t accesses)
{
    SystemConfig cfg = benchConfig(accesses);
    cfg.l2.sizeBytes = 16 * 1024;
    return cfg;
}

inline MigrationPoint
runMigrationPoint(const AppProfile &app, Tick relocation_period,
                  std::uint64_t accesses)
{
    auto normalized = [&](RelocationMode mode) {
        SystemConfig cfg = migBenchConfig(accesses);
        cfg.policy = PolicyKind::VirtualSnoop;
        cfg.vsnoop.relocation = mode;
        // One shuffle relocates two vCPUs.
        cfg.migrationPeriod = 2 * relocation_period;
        SystemResults r = runSystem(cfg, app);
        double baseline = 16.0 * static_cast<double>(r.transactions);
        return 100.0 * static_cast<double>(r.snoopLookups) / baseline;
    };

    MigrationPoint point;
    point.base = normalized(RelocationMode::Base);
    point.counter = normalized(RelocationMode::Counter);
    point.counterThreshold = normalized(RelocationMode::CounterThreshold);
    return point;
}

/** Print one period's table for every coherence application. */
inline void
printMigrationTable(double period_paper_ms, std::uint64_t accesses)
{
    std::cout << "-- relocation period: " << period_paper_ms
              << " paper-ms (ideal filtered level: 25%) --\n\n";
    TextTable table({"app", "vsnoop-base %", "counter %",
                     "counter-threshold %"});
    double sums[3] = {};
    int n = 0;
    for (const AppProfile &paper_app : coherenceApps()) {
        AppProfile app = scaleWorkingSet(sectionVApp(paper_app), 8);
        MigrationPoint p = runMigrationPoint(
            app, migPaperMs(period_paper_ms), accesses);
        sums[0] += p.base;
        sums[1] += p.counter;
        sums[2] += p.counterThreshold;
        n++;
        table.row()
            .cell(paper_app.name)
            .cell(p.base, 1)
            .cell(p.counter, 1)
            .cell(p.counterThreshold, 1);
    }
    table.row()
        .cell("average")
        .cell(sums[0] / n, 1)
        .cell(sums[1] / n, 1)
        .cell(sums[2] / n, 1);
    table.print();
    std::cout << "\n";
}

} // namespace vsnoop::bench

#endif // VSNOOP_BENCH_MIGRATION_BENCH_HH_
