/**
 * @file
 * Shared helpers for the experiment-reproduction benchmarks.
 *
 * Time scaling: the paper simulates seconds of 1 GHz execution on
 * 256 KB L2s.  To keep every experiment runnable in seconds on one
 * host core, the benches scale the system down and express
 * relocation-scale times in *paper milliseconds*:
 *
 *   - L2 capacity: 128 KB (2048 lines) instead of 256 KB (4096),
 *   - 1 paper-ms == 20,000 ticks instead of 1,000,000.
 *
 * The dimensionless ratio the relocation results depend on -- the
 * migration period over the cache drain time -- is preserved: a
 * 2048-line L2 drains in 1-10 paper-ms worth of ticks at typical
 * miss rates, the regime of the paper's 4096-line L2 at 1 GHz,
 * where most core removals complete within ~10 ms (Figure 9).
 * EXPERIMENTS.md discusses the calibration.
 *
 * Set VSNOOP_BENCH_SCALE=<float> to lengthen runs (more accesses
 * per vCPU) for tighter statistics.
 */

#ifndef VSNOOP_BENCH_BENCH_UTIL_HH_
#define VSNOOP_BENCH_BENCH_UTIL_HH_

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/table.hh"
#include "system/sim_system.hh"
#include "system/sweep.hh"

namespace vsnoop::bench
{

/** Ticks per paper millisecond (see file comment). */
constexpr Tick kTicksPerPaperMs = 20'000;

/** Convert paper milliseconds to ticks. */
inline Tick
paperMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kTicksPerPaperMs));
}

/** Run-length multiplier from VSNOOP_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    const char *env = std::getenv("VSNOOP_BENCH_SCALE");
    if (env == nullptr)
        return 1.0;
    double scale = std::atof(env);
    return scale > 0.0 ? scale : 1.0;
}

/** A bench-standard system configuration. */
inline SystemConfig
benchConfig(std::uint64_t accesses_per_vcpu = 8000)
{
    SystemConfig cfg;
    cfg.l2.sizeBytes = 128 * 1024;
    cfg.accessesPerVcpu = static_cast<std::uint64_t>(
        static_cast<double>(accesses_per_vcpu) * benchScale());
    // Warm the caches before measuring, so the miss mix reflects
    // steady state rather than cold-start fills.
    cfg.warmupAccessesPerVcpu = cfg.accessesPerVcpu / 3;
    return cfg;
}

/**
 * Strip content-shared and hypervisor traffic from a profile, for
 * the Section V experiments (Tables IV, Figures 6-9): the paper's
 * Virtual-GEMS runs have no hypervisor and no content sharing, so
 * every transaction there targets VM-private pages.
 */
inline AppProfile
sectionVApp(const AppProfile &app)
{
    AppProfile p = app;
    p.contentFraction = 0.0;
    p.hypervisorFraction = 0.0;
    return p;
}

/**
 * Scale a profile's working-set regions down by an integer factor
 * (used together with a proportionally smaller L2, preserving the
 * working-set-to-cache ratio that drives miss rates and
 * residence-counter drain behaviour).
 */
inline AppProfile
scaleWorkingSet(const AppProfile &app, std::uint64_t factor)
{
    AppProfile p = app;
    auto shrink = [factor](std::uint64_t pages) {
        return std::max<std::uint64_t>(1, pages / factor);
    };
    p.privatePagesPerVcpu = shrink(p.privatePagesPerVcpu);
    p.contentPages = shrink(p.contentPages);
    p.vmSharedPages = shrink(p.vmSharedPages);
    return p;
}

/** Build, run, and collect results for one configuration. */
inline SystemResults
runSystem(const SystemConfig &cfg, const AppProfile &app)
{
    SimSystem sys(cfg, app);
    sys.run();
    return sys.results();
}

/** A (configuration, application) pair awaiting execution. */
using BenchRun = std::pair<SystemConfig, AppProfile>;

/**
 * Run a batch of independent configurations on the sweep runner's
 * worker pool (one SimSystem per thread; see system/sweep.hh) and
 * return results in input order.  Results are identical to calling
 * runSystem() serially — benches collect first, then print, so
 * tables stay deterministic.
 *
 * @param jobs Worker threads; 0 = hardware concurrency.
 */
inline std::vector<SystemResults>
runSystems(const std::vector<BenchRun> &runs, unsigned jobs = 0)
{
    std::vector<SystemResults> results(runs.size());
    runIndexed(runs.size(), jobs, [&](std::size_t i) {
        results[i] = runSystem(runs[i].first, runs[i].second);
    });
    return results;
}

/** Snoop lookups per coherence transaction. */
inline double
snoopsPerTxn(const SystemResults &r)
{
    if (r.transactions == 0)
        return 0.0;
    return static_cast<double>(r.snoopLookups) /
           static_cast<double>(r.transactions);
}

/**
 * Cross-VM interference: percentage of snoop lookups that landed on
 * another VM's (or the host's) cache tags — the off-diagonal of
 * results.interference.snoop_lookups.  The isolation figure of
 * merit: broadcast spends ~(N-1)/N of its lookups on foreign tags,
 * a perfect filter 0%.
 */
inline double
offDiagPct(const SystemResults &r)
{
    return 100.0 * r.interference.offDiagLookupShare();
}

/** Print the standard bench banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::cout << "\n=== " << id << ": " << what << " ===\n";
    std::cout << "(shape reproduction; absolute numbers differ from the"
                 " paper's testbed)\n\n";
}

} // namespace vsnoop::bench

#endif // VSNOOP_BENCH_BENCH_UTIL_HH_
