/**
 * @file
 * Table I: average vCPU relocation periods (ms) under the credit
 * scheduler with full migration, undercommitted (2 VMs x 4 vCPUs on
 * 8 cores) and overcommitted (4 VMs x 4 vCPUs).
 *
 * Paper shape: periods span three orders of magnitude across
 * applications (blackscholes 2880 ms ... dedup 10.8 ms
 * undercommitted); overcommitted periods are much shorter (dedup
 * down to 0.1 ms); compute-bound apps (blackscholes, swaptions,
 * freqmine) migrate rarely in both regimes.
 */

#include "bench_util.hh"

#include <map>

#include "virt/sched_sim.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

/** Paper's Table I values (ms). */
const std::map<std::string, std::pair<double, double>> kPaper = {
    {"blackscholes", {2880.6, 91.3}}, {"bodytrack", {26.1, 1.2}},
    {"canneal", {28.4, 3.4}},         {"dedup", {10.8, 0.1}},
    {"facesim", {30.0, 1.2}},         {"ferret", {375.9, 31.5}},
    {"fluidanimate", {46.6, 7.9}},    {"freqmine", {1968.0, 2064.4}},
    {"raytrace", {528.8, 23.6}},      {"streamcluster", {36.2, 1.3}},
    {"swaptions", {2203.1, 80.3}},    {"vips", {18.3, 0.7}},
    {"x264", {29.2, 8.2}},
};

double
relocationPeriod(const SchedProfile &profile, std::uint32_t vms)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    cfg.pinned = false;
    cfg.seed = 7;
    SchedProfile p = profile;
    // Long enough runs that even rare relocations are observed.
    p.workMsPerVcpu = 8000.0;
    SchedulerSim sim(cfg, p, vms, 4);
    return sim.run().avgRelocationPeriodMs;
}

} // namespace

int
main()
{
    quietLogging(true);
    banner("Table I", "average VM relocation periods (milliseconds)");

    TextTable table({"app", "undercommit (sim)", "paper",
                     "overcommit (sim)", "paper"});
    double u_sum = 0, o_sum = 0;
    int n = 0;
    for (const AppProfile &app : schedulerApps()) {
        double under = relocationPeriod(app.sched, 2);
        double over = relocationPeriod(app.sched, 4);
        auto paper = kPaper.at(app.name);
        u_sum += under;
        o_sum += over;
        n++;
        table.row()
            .cell(app.name)
            .cell(under, 1)
            .cell(paper.first, 1)
            .cell(over, 1)
            .cell(paper.second, 1);
    }
    table.row()
        .cell("average")
        .cell(u_sum / n, 1)
        .cell("629.4")
        .cell(o_sum / n, 1)
        .cell("178.1");
    table.print();
    return 0;
}
