/**
 * @file
 * Figure 8: total snoops (normalized to TokenB = 100) with vCPU
 * relocation every 0.5 / 0.1 paper-ms, for vsnoop-base, counter,
 * and counter-threshold.
 *
 * Paper shape: with very aggressive migration, vsnoop-base loses
 * nearly all filtering (~96% of TokenB snoops at 0.1 ms), the
 * counter mechanism still removes obsolete cores and keeps roughly
 * half the reduction (~55%), and counter-threshold improves on the
 * counter slightly.
 */

#include "migration_bench.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 8",
           "normalized snoops with 0.5 / 0.1 paper-ms relocation");
    printMigrationTable(0.5, 20000);
    printMigrationTable(0.1, 20000);
    return 0;
}
