/**
 * @file
 * Figure 10: expected snoops under the content-shared page
 * optimizations — vsnoop-broadcast (unoptimized), memory-direct,
 * intra-VM and friend-VM — normalized to TokenB (= 100).
 *
 * Paper shape: the optimizations matter for the content-heavy
 * applications (fft, blackscholes, canneal, specjbb); memory-direct
 * has the fewest snoops (often below the ideal 25%), and all three
 * optimizations beat vsnoop-broadcast.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 10", "normalized snoops for content-shared page "
                        "policies (TokenB = 100, ideal filtered = 25)");

    TextTable table({"app", "vsnoop-broadcast", "memory-direct",
                     "intra-VM", "friend-VM"});
    double sums[4] = {};
    int n = 0;
    for (const AppProfile &app : coherenceApps()) {
        if (app.name == "dedup")
            continue; // Figure 10 covers the Table V applications
        SystemConfig base_cfg = benchConfig(10000);
        base_cfg.policy = PolicyKind::TokenB;
        SystemResults base = runSystem(base_cfg, app);

        auto normalized = [&](RoPolicy ro) {
            SystemConfig cfg = benchConfig(10000);
            cfg.policy = PolicyKind::VirtualSnoop;
            cfg.vsnoop.roPolicy = ro;
            SystemResults r = runSystem(cfg, app);
            return 100.0 * static_cast<double>(r.snoopLookups) /
                   static_cast<double>(base.snoopLookups);
        };

        double vals[4] = {normalized(RoPolicy::Broadcast),
                          normalized(RoPolicy::MemoryDirect),
                          normalized(RoPolicy::IntraVm),
                          normalized(RoPolicy::FriendVm)};
        for (int i = 0; i < 4; ++i)
            sums[i] += vals[i];
        n++;
        table.row()
            .cell(app.name)
            .cell(vals[0], 1)
            .cell(vals[1], 1)
            .cell(vals[2], 1)
            .cell(vals[3], 1);
    }
    table.row()
        .cell("average")
        .cell(sums[0] / n, 1)
        .cell(sums[1] / n, 1)
        .cell(sums[2] / n, 1)
        .cell(sums[3] / n, 1);
    table.print();
    return 0;
}
