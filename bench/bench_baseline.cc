/**
 * @file
 * Pinned performance-baseline matrix: the canonical producer of
 * BENCH_baseline.json.
 *
 * Runs a fixed, seed-pinned cross of apps x policies on the
 * bench-standard configuration and emits one run record per line
 * (the same JSON schema as `vsnoopsweep --out`), so the committed
 * baseline and the CI regeneration are the same code path:
 *
 *   bench_baseline > BENCH_baseline.json          # refresh
 *   bench_baseline > fresh.jsonl                  # in CI, then
 *   vsnoopreport --diff BENCH_baseline.json fresh.jsonl
 *
 * Unlike the other benches, this one deliberately ignores
 * VSNOOP_BENCH_SCALE: the baseline is only comparable to itself if
 * every regeneration runs the identical matrix.
 */

#include <iostream>

#include "system/run_result.hh"
#include "system/sweep.hh"

using namespace vsnoop;

int
main()
{
    SweepMatrix matrix;
    matrix.apps = {"ferret", "canneal", "fft"};
    matrix.policies = {PolicyKind::TokenB, PolicyKind::VirtualSnoop};
    matrix.seeds = {1};
    matrix.base.accessesPerVcpu = 4000;
    matrix.base.warmupAccessesPerVcpu = 1000;
    matrix.base.l2.sizeBytes = 128 * 1024;

    for (const RunResult &result : runSweep(matrix))
        std::cout << result.toJson() << "\n";
    return 0;
}
