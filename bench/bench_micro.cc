/**
 * @file
 * Component micro-benchmarks (google-benchmark): raw simulator
 * throughput of the event queue, the cache tag store, the mesh
 * router model, the RNG, and end-to-end coherence transactions.
 * These guard the simulator's own performance, which bounds how
 * long the experiment benches take.
 */

#include <benchmark/benchmark.h>

#include "coherence/policy.hh"
#include "coherence/system.hh"
#include "mem/cache.hh"
#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace vsnoop
{

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    class Nop : public Event
    {
      public:
        void process() override {}
    } nop;
    for (auto _ : state) {
        eq.schedule(nop, eq.now() + 1);
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueLambdaChurn(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleFnIn(1, [] {});
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueLambdaChurn);

void
BM_CacheLookupHit(benchmark::State &state)
{
    Cache cache(256 * 1024, 8);
    for (std::uint64_t i = 0; i < 64; ++i) {
        HostAddr addr(i * 64);
        CacheLine &slot = cache.victimFor(addr);
        cache.install(slot, addr, 0, PageType::VmPrivate, 1, false,
                      false);
    }
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.find(HostAddr((i % 64) * 64)));
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void
BM_CacheLookupMiss(benchmark::State &state)
{
    Cache cache(256 * 1024, 8);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.find(HostAddr(i * 64)));
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupMiss);

void
BM_MeshSend(benchmark::State &state)
{
    Mesh mesh{MeshConfig{}};
    std::uint64_t i = 0;
    Tick now = 0;
    for (auto _ : state) {
        now = mesh.send(static_cast<NodeId>(i % 16),
                        static_cast<NodeId>((i * 7 + 3) % 16), 72,
                        MsgClass::Data, now);
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshSend);

void
BM_RngZipf(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.zipf(512, 0.6));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngZipf);

void
BM_CoherenceReadMissRoundTrip(benchmark::State &state)
{
    EventQueue eq;
    Mesh mesh{MeshConfig{}};
    TokenBPolicy policy(16);
    ProtocolConfig pcfg;
    CacheGeometry geom;
    geom.sizeBytes = 1 * 1024 * 1024; // avoid evictions
    CoherenceSystem system(eq, mesh, policy, pcfg, geom, 4);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        MemAccess access;
        access.addr = HostAddr(addr);
        access.vm = 0;
        addr += 64;
        bool done = false;
        system.access(static_cast<CoreId>(addr / 64 % 16), access,
                      [&](Tick, DataSource, bool) { done = true; });
        eq.run(10000);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoherenceReadMissRoundTrip);

} // namespace

} // namespace vsnoop

BENCHMARK_MAIN();
