/**
 * @file
 * Simulator self-performance benchmark: the canonical producer of
 * BENCH_selfperf.json.
 *
 * Where bench_baseline pins the *model* outputs (runtime, snoop
 * lookups, traffic) so CI can detect simulation regressions, this
 * bench pins the *host* throughput of the simulator itself: how
 * many runs, simulated cycles, and simulation events per second of
 * wall clock the hot path sustains on a fixed matrix.  It exists
 * to drive (and then guard) hot-path optimization work — see
 * ROADMAP item "raw simulator speed".
 *
 * Four phases stress the distinct hot paths:
 *
 *  - tokenb-broadcast: every miss broadcasts, maximizing snoop
 *    fan-out, message traffic and mesh link accounting;
 *  - vsnoop-counter: filtered multicast over vCPU maps — the
 *    SnoopTargets decision and residence-counter bookkeeping;
 *  - vsnoop-migration: vCPU relocation churn — map maintenance,
 *    retries, and counter-threshold removal on top of coherence;
 *  - ro-intra-vm: content-shared pages under the intra-VM RO
 *    policy — provider designation and memory token bundles.
 *
 * Output is one JSON object ({"selfperf": {...}, "meta": {...}}):
 *
 *   bench_selfperf > BENCH_selfperf.json             # refresh
 *   bench_selfperf > fresh.json                      # in CI, then
 *   vsnoopreport --diff BENCH_selfperf.json fresh.json
 *
 * vsnoopreport --diff recognizes the schema and applies a
 * one-sided gate: a phase whose runs/sec or events/sec dropped by
 * more than the threshold fails.  Because wall-clock throughput is
 * host-dependent, CI gates a fresh measurement against a planted
 * regression of itself rather than against the committed file; the
 * committed BENCH_selfperf.json documents the reference host's
 * numbers (see EXPERIMENTS.md) and is only parse-checked in CI.
 *
 * Like bench_baseline, this deliberately ignores
 * VSNOOP_BENCH_SCALE: the matrix must be identical across
 * regenerations to be comparable.
 *
 * Perf-as-time-series: --append-history FILE appends one
 * provenance-stamped JSONL record (git describe, compiler, wall
 * timestamp, per-phase rates) per invocation, building the history
 * that vsnoopreport --trend charts.  A binary configured from a
 * dirty checkout refuses to append (its numbers would be pinned to
 * no commit) unless --allow-dirty explicitly marks the record.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/profiler.hh"
#include "sim/version.hh"
#include "system/run_result.hh"
#include "system/sweep.hh"

using namespace vsnoop;

namespace
{

/** One phase's matrix and its measured throughput. */
struct PhaseResult
{
    std::string name;
    std::uint64_t runs = 0;
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;
    std::uint64_t events = 0;
};

/** Run @p matrix serially and measure wall-clock throughput. */
PhaseResult
runPhase(const std::string &name, const SweepMatrix &matrix)
{
    HostProfiler profiler;
    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> results = runSweep(matrix, /*jobs=*/1,
                                              &profiler);
    auto stop = std::chrono::steady_clock::now();

    PhaseResult phase;
    phase.name = name;
    phase.runs = results.size();
    phase.wallSeconds =
        std::chrono::duration<double>(stop - start).count();
    // Simulated cycles cover the measurement window of every run
    // (warmup excluded, matching results.runtime in run JSON).
    for (const RunResult &r : results)
        phase.simCycles += r.results.runtime;
    phase.events = profiler.events();
    return phase;
}

/** Per-second rate, 0 when no time elapsed (keeps JSON finite). */
double
rate(std::uint64_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

void
writePhase(JsonWriter &json, const PhaseResult &p)
{
    json.beginObject();
    json.key("phase").value(p.name);
    json.key("runs").value(p.runs);
    json.key("wall_seconds").value(p.wallSeconds);
    json.key("runs_per_sec").value(rate(p.runs, p.wallSeconds));
    json.key("sim_cycles").value(p.simCycles);
    json.key("sim_cycles_per_sec").value(rate(p.simCycles, p.wallSeconds));
    json.key("events").value(p.events);
    json.key("events_per_sec").value(rate(p.events, p.wallSeconds));
    json.endObject();
}

/** One history record: provenance + per-phase rates, one line. */
std::string
historyRecord(const std::vector<PhaseResult> &phases,
              const PhaseResult &total, bool dirty)
{
    auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    JsonWriter json;
    json.beginObject();
    json.key("timestamp_ms").value(now_ms);
    writeBuildMeta(json);
    json.key("dirty").value(dirty);
    json.key("phases").beginArray();
    for (const PhaseResult &p : phases)
        writePhase(json, p);
    json.endArray();
    json.key("total");
    writePhase(json, total);
    json.endObject();
    return json.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string history_path;
    bool allow_dirty = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        std::size_t eq = arg.find('=');
        if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        }
        if (arg == "--append-history") {
            if (value.empty()) {
                if (i + 1 >= argc) {
                    std::cerr << "bench_selfperf: --append-history "
                                 "requires a file path\n";
                    return 2;
                }
                value = argv[++i];
            }
            history_path = value;
        } else if (arg == "--allow-dirty") {
            allow_dirty = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout <<
                "bench_selfperf — simulator self-performance "
                "benchmark\n"
                "\n"
                "usage: bench_selfperf [--append-history FILE "
                "[--allow-dirty]]\n"
                "\n"
                "Writes the BENCH_selfperf.json record to stdout.\n"
                "  --append-history FILE  also append one JSONL\n"
                "                         history record (for\n"
                "                         vsnoopreport --trend);\n"
                "                         refused from a -dirty\n"
                "                         build unless --allow-dirty\n"
                "  --allow-dirty          append anyway, with\n"
                "                         \"dirty\": true in the\n"
                "                         record\n";
            return 0;
        } else {
            std::cerr << "bench_selfperf: unknown flag '" << arg
                      << "' (try --help)\n";
            return 2;
        }
    }

    bool dirty =
        std::string(gitDescribe()).find("-dirty") != std::string::npos;
    if (dirty) {
        std::cerr
            << "bench_selfperf: WARNING: built from a dirty checkout "
               "(" << gitDescribe() << ");\n"
            << "bench_selfperf: WARNING: these numbers are pinned to "
               "no commit — do not archive them\n";
    }
    if (!history_path.empty() && dirty && !allow_dirty) {
        std::cerr << "bench_selfperf: refusing --append-history from "
                     "a dirty build; commit first or pass "
                     "--allow-dirty\n";
        return 2;
    }

    // The shared base: the bench-standard scaled-down system (see
    // bench_util.hh), sized so the full matrix finishes in tens of
    // seconds even on the slowest CI host.
    SweepMatrix base;
    base.base.accessesPerVcpu = 6000;
    base.base.warmupAccessesPerVcpu = 1500;
    base.base.l2.sizeBytes = 128 * 1024;

    std::vector<PhaseResult> phases;

    {
        SweepMatrix m = base;
        m.apps = {"ferret", "canneal"};
        m.policies = {PolicyKind::TokenB};
        m.seeds = {1, 2};
        phases.push_back(runPhase("tokenb-broadcast", m));
    }
    {
        SweepMatrix m = base;
        m.apps = {"ferret", "canneal"};
        m.policies = {PolicyKind::VirtualSnoop};
        m.relocations = {RelocationMode::Counter};
        m.seeds = {1, 2};
        phases.push_back(runPhase("vsnoop-counter", m));
    }
    {
        SweepMatrix m = base;
        m.apps = {"ferret"};
        m.policies = {PolicyKind::VirtualSnoop};
        m.relocations = {RelocationMode::CounterThreshold};
        m.seeds = {1, 2};
        m.base.migrationPeriod = 20000;
        phases.push_back(runPhase("vsnoop-migration", m));
    }
    {
        SweepMatrix m = base;
        m.apps = {"fft"};
        m.policies = {PolicyKind::VirtualSnoop};
        m.roPolicies = {RoPolicy::IntraVm};
        m.seeds = {1, 2};
        phases.push_back(runPhase("ro-intra-vm", m));
    }

    PhaseResult total;
    total.name = "total";
    for (const PhaseResult &p : phases) {
        total.runs += p.runs;
        total.wallSeconds += p.wallSeconds;
        total.simCycles += p.simCycles;
        total.events += p.events;
    }

    JsonWriter json;
    json.beginObject();
    json.key("selfperf").beginObject();
    json.key("phases").beginArray();
    for (const PhaseResult &p : phases)
        writePhase(json, p);
    json.endArray();
    json.key("total");
    writePhase(json, total);
    json.endObject();
    writeBuildMeta(json);
    // Flagged only when set, so a clean regeneration's bytes match
    // the historical schema exactly.
    if (dirty)
        json.key("dirty").value(true);
    json.endObject();
    std::cout << json.str() << "\n";

    if (!history_path.empty()) {
        std::ofstream history(history_path, std::ios::app);
        if (!history) {
            std::cerr << "bench_selfperf: cannot open history file '"
                      << history_path << "'\n";
            return 2;
        }
        history << historyRecord(phases, total, dirty) << "\n";
        if (!history.flush()) {
            std::cerr << "bench_selfperf: write to '" << history_path
                      << "' failed\n";
            return 2;
        }
        std::cerr << "bench_selfperf: appended history record ("
                  << gitDescribe() << ") to " << history_path << "\n";
    }

    // Human-readable summary on stderr so redirecting stdout to
    // BENCH_selfperf.json still shows the headline number.
    std::cerr << "bench_selfperf: " << total.runs << " runs in "
              << total.wallSeconds << " s ("
              << rate(total.runs, total.wallSeconds) << " runs/s, "
              << rate(total.events, total.wallSeconds) / 1e6
              << " M events/s)\n";
    return 0;
}
