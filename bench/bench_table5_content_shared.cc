/**
 * @file
 * Table V: percentages of accesses and L2 misses that touch
 * content-shared pages, with four VMs running the same application
 * under ideal content-based page sharing.
 *
 * Paper values (access% / L2-miss%): cholesky 1.45/2.66,
 * fft 5.43/30.64, lu 0.43/8.87, ocean 0.40/0.83, radix 20.47/0.96,
 * blackscholes 46.16/41.10, canneal 25.16/51.49, ferret 3.64/5.13,
 * SPECjbb 9.48/37.74; averages 12.51/19.94.
 */

#include "bench_util.hh"

#include <map>

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

const std::map<std::string, std::pair<double, double>> kPaper = {
    {"cholesky", {1.45, 2.66}},      {"fft", {5.43, 30.64}},
    {"lu", {0.43, 8.87}},            {"ocean", {0.40, 0.83}},
    {"radix", {20.47, 0.96}},        {"blackscholes", {46.16, 41.10}},
    {"canneal", {25.16, 51.49}},     {"ferret", {3.64, 5.13}},
    {"specjbb", {9.48, 37.74}},
};

} // namespace

int
main()
{
    quietLogging(true);
    banner("Table V", "accesses and L2 misses on content-shared pages");

    TextTable table({"app", "access % (sim)", "paper", "L2 miss % (sim)",
                     "paper"});
    double a_sum = 0, m_sum = 0;
    int n = 0;
    for (const AppProfile &app : coherenceApps()) {
        if (!kPaper.contains(app.name))
            continue; // dedup is not part of Table V
        SystemConfig cfg = benchConfig(10000);
        cfg.policy = PolicyKind::TokenB; // measurement run
        SystemResults r = runSystem(cfg, app);

        auto content =
            static_cast<std::size_t>(AccessCategory::ContentShared);
        double access_pct = 100.0 *
                            static_cast<double>(
                                r.accessesByCategory[content]) /
                            static_cast<double>(r.totalAccesses);
        double miss_pct =
            r.totalMisses == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(r.missesByCategory[content]) /
                      static_cast<double>(r.totalMisses);
        auto paper = kPaper.at(app.name);
        a_sum += access_pct;
        m_sum += miss_pct;
        n++;
        table.row()
            .cell(app.name)
            .cell(access_pct, 2)
            .cell(paper.first, 2)
            .cell(miss_pct, 2)
            .cell(paper.second, 2);
    }
    table.row()
        .cell("average")
        .cell(a_sum / n, 2)
        .cell("12.51")
        .cell(m_sum / n, 2)
        .cell("19.94");
    table.print();
    return 0;
}
