/**
 * @file
 * Ablation: modelling the private L1s explicitly.
 *
 * The default methodology feeds the L2s a post-L1 stream (the
 * generators' calibrated rates).  This ablation turns the real L1
 * level on and drives it with the same stream, showing how an L1
 * filters L2 activity without changing coherence behaviour: snoops
 * are still counted at the L2 (the coherence point — the inclusive
 * L1 never needs snooping), so the filtering comparison is
 * unaffected while L2 pressure and mean access latency drop.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Ablation: explicit L1 level",
           "L1 size vs L2 activity and snoop filtering");

    AppProfile app = findApp("specjbb");
    TextTable table({"L1 size", "policy", "L1 hit %", "L2 activity",
                     "transactions", "snoops/txn", "runtime"});

    for (std::uint64_t l1_kb : {0ull, 16ull, 32ull}) {
        for (PolicyKind policy :
             {PolicyKind::TokenB, PolicyKind::VirtualSnoop}) {
            SystemConfig cfg = benchConfig(8000);
            cfg.policy = policy;
            cfg.l2.l1SizeBytes = l1_kb * 1024;
            SimSystem sys(cfg, app);
            sys.run();
            SystemResults r = sys.results();

            std::uint64_t l1_hits = 0;
            for (CoreId c = 0; c < 16; ++c)
                l1_hits +=
                    sys.coherence().controller(c).l1Hits.value();
            std::uint64_t l2_activity =
                sys.coherence().stats.l2Hits.value() + r.transactions;

            table.row()
                .cell(l1_kb == 0 ? "off" : std::to_string(l1_kb) + " KB")
                .cell(policy == PolicyKind::TokenB ? "TokenB"
                                                   : "vsnoop")
                .cell(r.totalAccesses == 0
                          ? 0.0
                          : 100.0 * static_cast<double>(l1_hits) /
                                static_cast<double>(r.totalAccesses),
                      1)
                .cell(l2_activity)
                .cell(r.transactions)
                .cell(snoopsPerTxn(r), 2)
                .cell(r.runtime);
        }
    }
    table.print();
    std::cout << "\nThe snoops-per-transaction column is unchanged by "
                 "the L1: filtering happens\nat the coherence point, "
                 "so the Section V results are L1-independent.\n";
    return 0;
}
