/**
 * @file
 * Ablation: topology sensitivity — the 4x4 mesh versus an
 * idealized contention-free crossbar.
 *
 * Virtual snooping's snoop-count reduction is topology-independent;
 * its latency and traffic benefits depend on the network.  This
 * bench separates the two effects.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Ablation: network",
           "4x4 mesh vs ideal crossbar, TokenB vs virtual snooping");

    AppProfile app = findApp("canneal");
    TextTable table({"network", "policy", "runtime", "snoops/txn",
                     "mean miss latency", "traffic byte-hops"});

    for (bool ideal : {false, true}) {
        for (PolicyKind policy :
             {PolicyKind::TokenB, PolicyKind::VirtualSnoop}) {
            SystemConfig cfg = benchConfig(8000);
            cfg.idealNetwork = ideal;
            cfg.policy = policy;
            SystemResults r = runSystem(cfg, app);
            table.row()
                .cell(ideal ? "crossbar" : "mesh")
                .cell(policy == PolicyKind::TokenB ? "TokenB"
                                                   : "vsnoop")
                .cell(r.runtime)
                .cell(snoopsPerTxn(r), 2)
                .cell(r.meanMissLatency, 1)
                .cell(r.trafficByteHops);
        }
    }
    table.print();
    return 0;
}
