/**
 * @file
 * Ablation: the counter-threshold removal bound (Section IV-B; the
 * paper uses 10 and reports only a small gain over the plain
 * counter — this bench quantifies the trade-off).
 *
 * Larger thresholds remove cores from vCPU maps earlier (fewer
 * snoops) but strand more tokens, forcing broadcast retries.
 */

#include "migration_bench.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Ablation: counter threshold",
           "removal bound vs snoops and retry overhead "
           "(0.25 paper-ms shuffles)");

    AppProfile app = scaleWorkingSet(sectionVApp(findApp("ferret")), 8);


    TextTable table({"mechanism", "norm. snoops %", "map removals",
                     "retries", "persistent", "writebacks",
                     "mean miss latency"});

    auto run_mode = [&](const std::string &label, RelocationMode mode,
                        std::uint64_t threshold) {
        SystemConfig cfg = migBenchConfig(16000);
        cfg.policy = PolicyKind::VirtualSnoop;
        cfg.migrationPeriod = 2 * migPaperMs(0.25);
        cfg.vsnoop.relocation = mode;
        cfg.vsnoop.counterThreshold = threshold;
        SystemResults r = runSystem(cfg, app);
        table.row()
            .cell(label)
            .cell(100.0 * static_cast<double>(r.snoopLookups) /
                      (16.0 * static_cast<double>(r.transactions)),
                  1)
            .cell(r.mapRemovals)
            .cell(r.retries)
            .cell(r.persistentRequests)
            .cell(r.dirtyWritebacks)
            .cell(r.meanMissLatency, 1);
    };

    run_mode("counter (exact)", RelocationMode::Counter, 0);
    for (std::uint64_t threshold : {2ull, 10ull, 50ull, 200ull}) {
        run_mode("threshold " + std::to_string(threshold),
                 RelocationMode::CounterThreshold, threshold);
    }
    // The paper's discussed-but-unevaluated alternative: flush the
    // VM's remaining lines instead of stranding their tokens.
    run_mode("flush @ 50", RelocationMode::CounterFlush, 50);
    run_mode("flush @ 200", RelocationMode::CounterFlush, 200);
    table.print();
    return 0;
}
