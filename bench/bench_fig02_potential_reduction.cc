/**
 * @file
 * Figure 2: potential snoop reduction with varying hypervisor miss
 * ratios, for 2 / 4 / 8 / 16 VMs (4 vCPUs each, one physical core
 * per vCPU).
 *
 * The figure is analytic in the paper: per transaction a broadcast
 * snoops all n cores, a filtered request snoops only the VM's 4,
 * and a hypervisor-share h of transactions must broadcast:
 *
 *   reduction(n, h) = (1 - h) * (1 - 4 / n)
 *
 * Paper shape: >93% reduction at 16 VMs with no hypervisor misses;
 * 84-89% with 5-10% hypervisor misses.  The bench also validates
 * the analytic curve with a real simulation at the 4-VM / 16-core
 * point.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 2",
           "potential snoop reduction vs. #VMs and hypervisor share");

    const double ratios[] = {0.0, 0.05, 0.10, 0.20, 0.30, 0.40};
    TextTable table({"#VMs", "cores", "ideal %", "5% hv", "10% hv",
                     "20% hv", "30% hv", "40% hv"});
    for (std::uint32_t vms : {2u, 4u, 8u, 16u}) {
        std::uint32_t cores = vms * 4;
        table.row()
            .cell(std::to_string(vms))
            .cell(std::to_string(cores));
        for (double h : ratios) {
            double reduction =
                (1.0 - h) * (1.0 - 4.0 / static_cast<double>(cores));
            table.cell(100.0 * reduction, 1);
        }
    }
    table.print();

    // Simulated validation: sweep the hypervisor access fraction at
    // 16 cores and the system size at zero hypervisor share, and
    // compare measured snoop reductions against the analytic curve
    // for the measured broadcast share.
    std::cout << "\nSimulated validation:\n\n";
    TextTable val({"config", "hv access frac",
                   "measured broadcast share %", "measured reduction %",
                   "analytic %"});

    auto validate = [&](std::uint32_t mesh_w, std::uint32_t mesh_h,
                        std::uint32_t vms, double hv_frac,
                        std::uint64_t accesses) {
        AppProfile app = findApp("ferret");
        app.hypervisorFraction = hv_frac;
        app.contentFraction = 0.0; // isolate the hypervisor effect
        std::uint32_t cores = mesh_w * mesh_h;

        auto configure = [&](PolicyKind policy) {
            SystemConfig cfg = benchConfig(accesses);
            cfg.mesh.width = mesh_w;
            cfg.mesh.height = mesh_h;
            cfg.numVms = vms;
            cfg.policy = policy;
            return cfg;
        };
        SystemResults base = runSystem(configure(PolicyKind::TokenB),
                                       app);
        SystemResults vs =
            runSystem(configure(PolicyKind::VirtualSnoop), app);

        double reduction = 1.0 - static_cast<double>(vs.snoopLookups) /
                                     static_cast<double>(
                                         base.snoopLookups);
        // Broadcast share of transactions: hypervisor + domain0
        // misses must broadcast.
        double h =
            static_cast<double>(
                vs.missesByCategory[static_cast<std::size_t>(
                    AccessCategory::Hypervisor)] +
                vs.missesByCategory[static_cast<std::size_t>(
                    AccessCategory::Domain0)]) /
            static_cast<double>(vs.totalMisses);
        double analytic =
            (1.0 - h) * (1.0 - 4.0 / static_cast<double>(cores));
        val.row()
            .cell(std::to_string(vms) + " VMs / " +
                  std::to_string(cores) + " cores")
            .cell(formatFixed(hv_frac, 3))
            .cell(100.0 * h, 1)
            .cell(100.0 * reduction, 1)
            .cell(100.0 * analytic, 1);
    };

    for (double hv_frac : {0.0, 0.01, 0.03})
        validate(4, 4, 4, hv_frac, 5000);
    // System-size scaling (the paper's Section VIII argument: the
    // smaller the per-VM share of the chip, the bigger the win).
    validate(8, 4, 8, 0.0, 2500);
    validate(8, 8, 16, 0.0, 1200);
    val.print();
    return 0;
}
