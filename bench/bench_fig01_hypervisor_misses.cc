/**
 * @file
 * Figure 1: decomposition of L2 misses into hypervisor (Xen),
 * domain0, and guest-VM misses.
 *
 * Paper setup: two VMs running the same application on a dual
 * quad-core Xen host, measured with oprofile.  Here: two 4-vCPU VMs
 * on an 8-core (4x2 mesh) simulated system; the workload model
 * injects hypervisor-trap and domain0-ring accesses at the
 * profile's calibrated rate, and the bench reports what fraction of
 * L2 misses each source produced.
 *
 * Paper shape: PARSEC apps < 5% combined Xen+dom0 share except
 * dedup (11%), freqmine (8%), raytrace (7%); OLTP 15%; SPECweb 19%.
 */

#include "bench_util.hh"

#include <map>

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

/** Paper's approximate Xen+dom0 miss shares (percent). */
const std::map<std::string, double> kPaperShare = {
    {"blackscholes", 2.0}, {"bodytrack", 3.0},  {"canneal", 3.0},
    {"dedup", 11.0},       {"facesim", 3.0},    {"ferret", 4.0},
    {"fluidanimate", 3.0}, {"freqmine", 8.0},   {"raytrace", 7.0},
    {"streamcluster", 4.0}, {"swaptions", 2.0}, {"vips", 4.0},
    {"x264", 4.0},         {"OLTP", 15.0},      {"SPECweb", 19.0},
};

} // namespace

int
main()
{
    quietLogging(true);
    banner("Figure 1",
           "L2 miss decomposition: Xen / domain0 / guest VMs");

    TextTable table({"app", "Xen %", "dom0 %", "guest %",
                     "Xen+dom0 %", "paper ~%"});

    for (const AppProfile &app : hypervisorStudyApps()) {
        SystemConfig cfg = benchConfig(6000);
        cfg.mesh.width = 4;
        cfg.mesh.height = 2; // the paper's 8-core host
        cfg.numVms = 2;
        cfg.policy = PolicyKind::TokenB; // measurement, not filtering

        SystemResults r = runSystem(cfg, app);
        auto pct = [&](AccessCategory c) {
            if (r.totalMisses == 0)
                return 0.0;
            return 100.0 *
                   static_cast<double>(r.missesByCategory[
                       static_cast<std::size_t>(c)]) /
                   static_cast<double>(r.totalMisses);
        };
        double xen = pct(AccessCategory::Hypervisor);
        double dom0 = pct(AccessCategory::Domain0);
        double paper = 0.0;
        auto it = kPaperShare.find(app.name);
        if (it != kPaperShare.end())
            paper = it->second;

        table.row()
            .cell(app.name)
            .cell(xen)
            .cell(dom0)
            .cell(100.0 - xen - dom0)
            .cell(xen + dom0)
            .cell(paper, 0);
    }
    table.print();
    return 0;
}
