/**
 * @file
 * Ablation: direct inter-VM communication intensity (Section II-B's
 * third sharing source).
 *
 * Channel pages are RW-shared between VM pairs, so every miss on
 * them must broadcast.  Sweeping the channel access fraction shows
 * virtual snooping's sensitivity to shared-memory inter-VM
 * networking — the same (1-h)(1-4/n) law as the hypervisor share in
 * Figure 2, with h now the channel + hypervisor broadcast share.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Ablation: inter-VM channels",
           "snoop reduction vs channel access fraction");

    TextTable table({"channel access frac", "broadcast miss share %",
                     "measured reduction %", "analytic %"});
    for (double fraction : {0.0, 0.01, 0.03, 0.08, 0.15}) {
        AppProfile app = sectionVApp(findApp("ferret"));
        app.channelFraction = fraction;

        SystemConfig base_cfg = benchConfig(6000);
        base_cfg.policy = PolicyKind::TokenB;
        SystemResults base = runSystem(base_cfg, app);

        SystemConfig vs_cfg = benchConfig(6000);
        vs_cfg.policy = PolicyKind::VirtualSnoop;
        SystemResults vs = runSystem(vs_cfg, app);

        double reduction =
            100.0 * (1.0 - static_cast<double>(vs.snoopLookups) /
                               static_cast<double>(base.snoopLookups));
        double h =
            static_cast<double>(
                vs.missesByCategory[static_cast<std::size_t>(
                    AccessCategory::Channel)] +
                vs.missesByCategory[static_cast<std::size_t>(
                    AccessCategory::Hypervisor)] +
                vs.missesByCategory[static_cast<std::size_t>(
                    AccessCategory::Domain0)]) /
            static_cast<double>(vs.totalMisses);
        double analytic = 100.0 * (1.0 - h) * (1.0 - 4.0 / 16.0);
        table.row()
            .cell(formatFixed(fraction, 2))
            .cell(100.0 * h, 1)
            .cell(reduction, 1)
            .cell(analytic, 1);
    }
    table.print();
    std::cout << "\nHeavy shared-memory inter-VM networking erodes the "
                 "filter exactly like\nhypervisor sharing; the paper's "
                 "isolation assumption is the whole game.\n";
    return 0;
}
