/**
 * @file
 * Table VI: where the data for L2 misses on content-shared pages
 * actually comes from, for the four content-heavy applications.
 *
 * The paper decomposes potential data holders; we measure the
 * realized data source per policy:
 *  - "cache: all"      — under broadcast, the fraction of RO-shared
 *                        misses served by any cache;
 *  - "cache: intra-VM" — under the intra-VM policy, served by a
 *                        same-VM cache;
 *  - "cache: friend-VM"— under the friend-VM policy, served by the
 *                        friend VM's caches (on top of intra-VM);
 *  - "memory"          — under broadcast, served by memory.
 *
 * Paper shape (fft / blacksch. / canneal / specjbb): caches could
 * serve 47-64% of content-shared misses; intra-VM alone captures
 * only 0.1-27%; adding the friend VM captures another 21-28%;
 * memory serves the rest (37-53%).
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

struct Decomposition
{
    double intra = 0.0;
    double friendly = 0.0;
    double other = 0.0;
    double memory = 0.0;
};

Decomposition
measure(const AppProfile &app, RoPolicy ro)
{
    SystemConfig cfg = benchConfig(10000);
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.roPolicy = ro;
    SystemResults r = runSystem(cfg, app);

    double total = 0.0;
    for (std::size_t i = 0; i < kNumDataSources; ++i)
        total += static_cast<double>(r.roDataFrom[i]);
    Decomposition d;
    if (total == 0.0)
        return d;
    auto pct = [&](DataSource s) {
        return 100.0 *
               static_cast<double>(
                   r.roDataFrom[static_cast<std::size_t>(s)]) /
               total;
    };
    d.intra = pct(DataSource::CacheIntraVm);
    d.friendly = pct(DataSource::CacheFriendVm);
    d.other = pct(DataSource::CacheOtherVm);
    d.memory = pct(DataSource::Memory);
    return d;
}

} // namespace

int
main()
{
    quietLogging(true);
    banner("Table VI",
           "data holders for content-shared L2 misses (%)");

    const char *apps[] = {"fft", "blackscholes", "canneal", "specjbb"};
    TextTable table({"holder", "fft", "blacksch.", "canneal",
                     "specjbb"});

    Decomposition bcast[4], intra[4], friendly[4];
    for (int i = 0; i < 4; ++i) {
        const AppProfile &app = findApp(apps[i]);
        bcast[i] = measure(app, RoPolicy::Broadcast);
        intra[i] = measure(app, RoPolicy::IntraVm);
        friendly[i] = measure(app, RoPolicy::FriendVm);
    }

    table.row().cell("cache: all (broadcast)");
    for (auto &d : bcast)
        table.cell(d.intra + d.friendly + d.other, 1);
    table.row().cell("cache: intra-VM policy");
    for (auto &d : intra)
        table.cell(d.intra, 1);
    table.row().cell("cache: friend-VM policy");
    for (auto &d : friendly)
        table.cell(d.intra + d.friendly, 1);
    table.row().cell("memory (broadcast)");
    for (auto &d : bcast)
        table.cell(d.memory, 1);
    table.print();

    std::cout << "\nPaper reference (fft / blacksch. / canneal / "
                 "specjbb):\n"
                 "  cache: all       47.3 / 53.2 / 63.9 / 54.3\n"
                 "  cache: intra-VM   0.1 /  6.9 / 26.9 / 14.8\n"
                 "  cache: friend-VM 24.4 / 27.7 / 21.0 / 21.5 "
                 "(incremental)\n"
                 "  memory           52.7 / 46.8 / 37.1 / 45.7\n";
    return 0;
}
