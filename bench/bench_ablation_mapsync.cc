/**
 * @file
 * Ablation: vCPU-map synchronization cost.  The paper argues the
 * hypervisor's map-register updates are negligible because
 * relocation is so much rarer than coherence transactions; this
 * bench measures the control-message share of total traffic across
 * shuffle periods.
 */

#include "migration_bench.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Ablation: vCPU-map sync",
           "map-update control traffic share vs migration period");

    AppProfile app = scaleWorkingSet(sectionVApp(findApp("ferret")), 8);
    TextTable table({"period (paper-ms)", "migrations", "map updates",
                     "control byte-hops", "total byte-hops",
                     "control share %"});
    for (double period : {5.0, 1.0, 0.25, 0.05}) {
        SystemConfig cfg = migBenchConfig(12000);
        cfg.policy = PolicyKind::VirtualSnoop;
        cfg.migrationPeriod = 2 * migPaperMs(period);
        SimSystem sys(cfg, app);
        sys.run();
        SystemResults r = sys.results();
        auto control = sys.network()
                           .stats()
                           .byteHops[static_cast<std::size_t>(
                               MsgClass::Control)]
                           .value();
        table.row()
            .cell(formatFixed(period, 2))
            .cell(r.migrations)
            .cell(r.mapAdds + r.mapRemovals)
            .cell(control)
            .cell(r.trafficByteHops)
            .cell(100.0 * static_cast<double>(control) /
                      static_cast<double>(r.trafficByteHops),
                  3);
    }
    table.print();
    return 0;
}
