/**
 * @file
 * Extension: the energy estimate behind the paper's motivation.
 *
 * The paper argues the first benefit of snoop filtering is power:
 * fewer snoop-induced tag lookups and fewer request messages.  This
 * bench runs TokenB and virtual snooping with pinned VMs and
 * reports the activity-model energy breakdown, separating the
 * filterable components (snoop tags, network) from the ones
 * filtering cannot touch (DRAM, data arrays).
 */

#include "bench_util.hh"

#include "system/energy.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

namespace
{

EnergyBreakdown
runEnergy(PolicyKind policy, const AppProfile &app)
{
    SystemConfig cfg = benchConfig(8000);
    cfg.policy = policy;
    SimSystem system(cfg, app);
    system.run();
    return computeEnergy(system);
}

} // namespace

int
main()
{
    quietLogging(true);
    banner("Energy", "snoop-filtering energy savings "
                     "(activity model, pinned VMs)");

    TextTable table({"app", "tag energy saved %", "network saved %",
                     "total saved %", "tag share of TokenB %"});
    double sums[4] = {};
    int n = 0;
    for (const AppProfile &paper_app : coherenceApps()) {
        AppProfile app = sectionVApp(paper_app);
        EnergyBreakdown base = runEnergy(PolicyKind::TokenB, app);
        EnergyBreakdown vs = runEnergy(PolicyKind::VirtualSnoop, app);

        double vals[4] = {
            100.0 * (1.0 - vs.snoopTagPj / base.snoopTagPj),
            100.0 * (1.0 - vs.networkPj / base.networkPj),
            100.0 * (1.0 - vs.totalPj() / base.totalPj()),
            100.0 * base.snoopTagPj / base.totalPj(),
        };
        for (int i = 0; i < 4; ++i)
            sums[i] += vals[i];
        n++;
        table.row()
            .cell(paper_app.name)
            .cell(vals[0], 1)
            .cell(vals[1], 1)
            .cell(vals[2], 1)
            .cell(vals[3], 1);
    }
    table.row()
        .cell("average")
        .cell(sums[0] / n, 1)
        .cell(sums[1] / n, 1)
        .cell(sums[2] / n, 1)
        .cell(sums[3] / n, 1);
    table.print();
    std::cout
        << "\nSnoop-tag energy falls by the snoop-reduction factor "
           "(~75% with pinned VMs);\nthe total saving depends on how "
           "much of the budget the filterable components\nrepresent "
           "— the paper's point that filtering frees power budget "
           "rather than\ndirectly buying speed.\n";
    return 0;
}
