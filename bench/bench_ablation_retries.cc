/**
 * @file
 * Ablation: the persistent-request fallback threshold (how many
 * transient attempts before escalating).
 *
 * Fewer transient attempts escalate quickly — more persistent
 * broadcasts but bounded worst-case latency; more attempts keep
 * traffic low at the cost of longer conflict resolution.  Run on a
 * write-heavy sharing workload to generate conflicts.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Ablation: transient retries",
           "maxTransientAttempts vs retries / persistent escalations");

    AppProfile app = findApp("specjbb");
    // Stress the conflict paths: lots of true sharing and writes.
    app.vmSharedFraction = 0.25;
    app.vmSharedPages = 4;
    app.writeFraction = 0.5;
    app.hypervisorFraction = 0.05;

    TextTable table({"maxTransientAttempts", "retries", "persistent",
                     "mean miss latency", "snoops/txn"});
    for (std::uint32_t attempts : {2u, 3u, 4u, 6u}) {
        SystemConfig cfg = benchConfig(6000);
        cfg.policy = PolicyKind::VirtualSnoop;
        cfg.protocol.maxTransientAttempts = attempts;
        SystemResults r = runSystem(cfg, app);
        table.row()
            .cell(std::to_string(attempts))
            .cell(r.retries)
            .cell(r.persistentRequests)
            .cell(r.meanMissLatency, 1)
            .cell(snoopsPerTxn(r), 2);
    }
    table.print();
    return 0;
}
