/**
 * @file
 * Figure 7: total snoops (normalized to TokenB = 100) with vCPU
 * relocation every 5 / 2.5 paper-ms, for vsnoop-base, counter, and
 * counter-threshold.
 *
 * Paper shape: at these relatively slow migration rates the counter
 * mechanism stays close to the ideal 25% (it removes old cores as
 * soon as their data drains), while vsnoop-base degrades as maps
 * accumulate cores.
 */

#include "migration_bench.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 7",
           "normalized snoops with 5 / 2.5 paper-ms relocation");
    printMigrationTable(5.0, 40000);
    printMigrationTable(2.5, 40000);
    return 0;
}
