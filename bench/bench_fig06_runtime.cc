/**
 * @file
 * Figure 6: execution time of virtual snooping with ideally pinned
 * VMs, normalized to the TokenB broadcast baseline (= 100).
 *
 * Paper shape: modest improvements, 0.2 - 9.1% faster, average
 * 3.8%, because the configuration does not saturate network
 * bandwidth — the snoop reduction mainly saves tag-lookup power
 * and message bandwidth, which only partly shows as latency.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 6",
           "execution time normalized to TokenB (lower is better)");

    TextTable table({"app", "TokenB runtime", "vsnoop runtime",
                     "normalized %", "paper norm. %"});
    // Paper: reductions of 0.2-9.1% => normalized 90.9-99.8.
    double sum = 0;
    int n = 0;
    for (const AppProfile &paper_app : coherenceApps()) {
        AppProfile app = sectionVApp(paper_app);
        SystemConfig base_cfg = benchConfig(8000);
        base_cfg.policy = PolicyKind::TokenB;
        SystemResults base = runSystem(base_cfg, app);

        SystemConfig vs_cfg = benchConfig(8000);
        vs_cfg.policy = PolicyKind::VirtualSnoop;
        SystemResults vs = runSystem(vs_cfg, app);

        double normalized = 100.0 * static_cast<double>(vs.runtime) /
                            static_cast<double>(base.runtime);
        sum += normalized;
        n++;
        table.row()
            .cell(paper_app.name)
            .cell(base.runtime)
            .cell(vs.runtime)
            .cell(normalized, 1)
            .cell("90.9-99.8");
    }
    table.row()
        .cell("average")
        .cell("")
        .cell("")
        .cell(sum / n, 1)
        .cell("96.2");
    table.print();
    return 0;
}
