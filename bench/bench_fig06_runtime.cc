/**
 * @file
 * Figure 6: execution time of virtual snooping with ideally pinned
 * VMs, normalized to the TokenB broadcast baseline (= 100).
 *
 * Paper shape: modest improvements, 0.2 - 9.1% faster, average
 * 3.8%, because the configuration does not saturate network
 * bandwidth — the snoop reduction mainly saves tag-lookup power
 * and message bandwidth, which only partly shows as latency.
 */

#include "bench_util.hh"

using namespace vsnoop;
using namespace vsnoop::bench;

int
main()
{
    quietLogging(true);
    banner("Figure 6",
           "execution time normalized to TokenB (lower is better)");

    TextTable table({"app", "TokenB runtime", "vsnoop runtime",
                     "normalized %", "paper norm. %"});
    // Paper: reductions of 0.2-9.1% => normalized 90.9-99.8.
    // The 20 runs (10 apps x 2 policies) are independent, so they
    // execute on the shared worker pool; results come back in
    // input order, keeping the table deterministic.
    std::vector<BenchRun> runs;
    for (const AppProfile &paper_app : coherenceApps()) {
        AppProfile app = sectionVApp(paper_app);
        SystemConfig base_cfg = benchConfig(8000);
        base_cfg.policy = PolicyKind::TokenB;
        runs.emplace_back(base_cfg, app);

        SystemConfig vs_cfg = benchConfig(8000);
        vs_cfg.policy = PolicyKind::VirtualSnoop;
        runs.emplace_back(vs_cfg, app);
    }
    std::vector<SystemResults> results = runSystems(runs);

    double sum = 0;
    int n = 0;
    for (const AppProfile &paper_app : coherenceApps()) {
        const SystemResults &base =
            results[static_cast<std::size_t>(n) * 2];
        const SystemResults &vs =
            results[static_cast<std::size_t>(n) * 2 + 1];
        double normalized = 100.0 * static_cast<double>(vs.runtime) /
                            static_cast<double>(base.runtime);
        sum += normalized;
        n++;
        table.row()
            .cell(paper_app.name)
            .cell(base.runtime)
            .cell(vs.runtime)
            .cell(normalized, 1)
            .cell("90.9-99.8");
    }
    table.row()
        .cell("average")
        .cell("")
        .cell("")
        .cell(sum / n, 1)
        .cell("96.2");
    table.print();
    return 0;
}
