/**
 * @file
 * Unit tests for CoreSet (the vCPU map register value type).
 */

#include <gtest/gtest.h>

#include "sim/core_set.hh"

namespace vsnoop::test
{

TEST(CoreSet, StartsEmpty)
{
    CoreSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_FALSE(s.contains(0));
}

TEST(CoreSet, AddRemoveContains)
{
    CoreSet s;
    s.add(3);
    s.add(7);
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(7));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(s.count(), 2u);
    s.remove(3);
    EXPECT_FALSE(s.contains(3));
    s.remove(3); // idempotent
    EXPECT_EQ(s.count(), 1u);
}

TEST(CoreSet, FirstN)
{
    CoreSet s = CoreSet::firstN(4);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_TRUE(s.contains(0));
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(CoreSet::firstN(64).count(), 64u);
    EXPECT_EQ(CoreSet::firstN(0).count(), 0u);
}

TEST(CoreSet, SetAlgebra)
{
    CoreSet a = CoreSet::fromMask(0b1100);
    CoreSet b = CoreSet::fromMask(0b1010);
    EXPECT_EQ((a | b).mask(), 0b1110u);
    EXPECT_EQ((a & b).mask(), 0b1000u);
    EXPECT_EQ(a.minus(b).mask(), 0b0100u);
    a |= b;
    EXPECT_EQ(a.mask(), 0b1110u);
}

TEST(CoreSet, FirstAndForEachOrder)
{
    CoreSet s = CoreSet::fromMask(0b101000);
    EXPECT_EQ(s.first(), 3);
    std::vector<CoreId> order;
    s.forEach([&](CoreId c) { order.push_back(c); });
    EXPECT_EQ(order, (std::vector<CoreId>{3, 5}));
}

TEST(CoreSet, SingleAndToString)
{
    CoreSet s = CoreSet::single(9);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.toString(), "{9}");
    s.add(1);
    EXPECT_EQ(s.toString(), "{1,9}");
    EXPECT_EQ(CoreSet{}.toString(), "{}");
}

TEST(CoreSet, EqualityIsValueBased)
{
    EXPECT_EQ(CoreSet::fromMask(5), CoreSet::fromMask(5));
    EXPECT_NE(CoreSet::fromMask(5), CoreSet::fromMask(4));
}

TEST(CoreSetDeath, OutOfRangePanics)
{
    CoreSet s;
    EXPECT_DEATH(s.add(64), "out of range");
    EXPECT_DEATH(s.contains(200), "out of range");
}

} // namespace vsnoop::test
