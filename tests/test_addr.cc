/**
 * @file
 * Unit tests for address types and geometry helpers.
 */

#include <gtest/gtest.h>

#include "mem/addr.hh"

namespace vsnoop::test
{

TEST(Addr, GeometryConstantsAreConsistent)
{
    EXPECT_EQ(kLineBytes, 64u);
    EXPECT_EQ(kPageBytes, 4096u);
    EXPECT_EQ(kLinesPerPage, 64u);
    EXPECT_EQ(1u << kLineShift, kLineBytes);
    EXPECT_EQ(1u << kPageShift, kPageBytes);
}

TEST(Addr, AlignmentHelpers)
{
    HostAddr a(0x12345);
    EXPECT_EQ(a.lineAligned().raw(), 0x12340u);
    EXPECT_EQ(a.pageAligned().raw(), 0x12000u);
    EXPECT_EQ(a.pageNum(), 0x12u);
    EXPECT_EQ(a.lineNum(), 0x12345u >> 6);
    EXPECT_EQ(a.pageOffset(), 0x345u);
    EXPECT_EQ(a.lineInPage(), 0x345u >> 6);
}

TEST(Addr, MakeAddrComposes)
{
    GuestAddr g = makeGuestAddr(7, 0x123);
    EXPECT_EQ(g.pageNum(), 7u);
    EXPECT_EQ(g.pageOffset(), 0x123u);
    HostAddr h = makeHostAddr(9);
    EXPECT_EQ(h.raw(), 9u << kPageShift);
}

TEST(Addr, ComparisonAndHash)
{
    HostAddr a(100), b(100), c(200);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_LT(a, c);
    EXPECT_EQ(std::hash<HostAddr>{}(a), std::hash<HostAddr>{}(b));
}

TEST(Addr, PageTypeNames)
{
    EXPECT_STREQ(pageTypeName(PageType::VmPrivate), "VM-private");
    EXPECT_STREQ(pageTypeName(PageType::RwShared), "RW-shared");
    EXPECT_STREQ(pageTypeName(PageType::RoShared), "RO-shared");
}

} // namespace vsnoop::test
