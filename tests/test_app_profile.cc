/**
 * @file
 * Unit tests for the application profile catalogs.
 */

#include <gtest/gtest.h>

#include "workload/app_profile.hh"

namespace vsnoop::test
{

TEST(AppProfile, CoherenceCatalogMatchesPaperTableIII)
{
    const auto &apps = coherenceApps();
    ASSERT_EQ(apps.size(), 10u);
    std::vector<std::string> expected = {
        "cholesky", "fft",     "lu",     "ocean",  "radix",
        "blackscholes", "canneal", "dedup", "ferret", "specjbb"};
    for (const auto &name : expected) {
        bool found = false;
        for (const auto &app : apps)
            found |= app.name == name;
        EXPECT_TRUE(found) << name;
    }
}

TEST(AppProfile, SchedulerCatalogHasThirteenParsecApps)
{
    EXPECT_EQ(schedulerApps().size(), 13u);
}

TEST(AppProfile, HypervisorCatalogAddsServerWorkloads)
{
    const auto &apps = hypervisorStudyApps();
    EXPECT_EQ(apps.size(), 15u);
    EXPECT_EQ(apps[13].name, "OLTP");
    EXPECT_EQ(apps[14].name, "SPECweb");
    // Server workloads have the highest hypervisor involvement
    // (Figure 1: OLTP 15%, SPECweb 19% of L2 misses).
    for (std::size_t i = 0; i < 13; ++i) {
        EXPECT_LT(apps[i].hypervisorFraction,
                  apps[14].hypervisorFraction)
            << apps[i].name;
    }
}

TEST(AppProfile, ContentFractionsMatchTableV)
{
    // Spot-check the Table V access-percentage calibration.
    EXPECT_NEAR(findApp("blackscholes").contentFraction, 0.4616, 1e-9);
    EXPECT_NEAR(findApp("radix").contentFraction, 0.2047, 1e-9);
    EXPECT_NEAR(findApp("canneal").contentFraction, 0.2516, 1e-9);
    EXPECT_NEAR(findApp("lu").contentFraction, 0.0043, 1e-9);
}

TEST(AppProfile, BlackscholesHasSmallWorkingSet)
{
    // Section V-C: blackscholes' residence counters never reach
    // zero because its working set is far below the L2 capacity
    // (64 pages).
    const AppProfile &bs = findApp("blackscholes");
    EXPECT_LT(bs.privatePagesPerVcpu + bs.contentPages, 40u);
}

TEST(AppProfile, SchedCalibrationOrdersRelocationRates)
{
    // Table I: dedup relocates most often, blackscholes least.
    const AppProfile &dedup = findApp("dedup");
    const AppProfile &bs = findApp("blackscholes");
    EXPECT_LT(dedup.sched.meanRunMs, bs.sched.meanRunMs);
}

TEST(AppProfile, AllProfilesAreSane)
{
    for (const auto *catalog :
         {&coherenceApps(), &schedulerApps(), &hypervisorStudyApps()}) {
        for (const auto &app : *catalog) {
            EXPECT_FALSE(app.name.empty());
            EXPECT_GT(app.privatePagesPerVcpu, 0u);
            EXPECT_GE(app.contentFraction, 0.0);
            EXPECT_LE(app.contentFraction + app.vmSharedFraction +
                          app.hypervisorFraction,
                      1.0)
                << app.name;
            EXPECT_GT(app.meanAccessGap, 0.0);
            EXPECT_GT(app.sched.meanRunMs, 0.0);
            EXPECT_GT(app.sched.workMsPerVcpu, 0.0);
        }
    }
}

TEST(AppProfileDeath, UnknownAppIsFatal)
{
    EXPECT_DEATH(findApp("no-such-app"), "unknown application");
}

} // namespace vsnoop::test
