/**
 * @file
 * Tests for the parallel sweep runner: deterministic matrix
 * expansion, the worker pool, and — the load-bearing property —
 * byte-identical JSON output regardless of the worker count.
 */

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "system/sweep.hh"

namespace vsnoop::test
{

TEST(SweepMatrix, ExpandsInDeterministicOrder)
{
    SweepMatrix m;
    m.apps = {"ferret", "canneal"};
    m.policies = {PolicyKind::TokenB, PolicyKind::VirtualSnoop};
    m.seeds = {1, 2};
    auto points = m.expand();
    ASSERT_EQ(points.size(), 8u);
    EXPECT_EQ(m.runCount(), 8u);
    // App-major, then policy, then seed.
    EXPECT_EQ(points[0].app, "ferret");
    EXPECT_EQ(points[0].policy, PolicyKind::TokenB);
    EXPECT_EQ(points[0].seed, 1u);
    EXPECT_EQ(points[1].seed, 2u);
    EXPECT_EQ(points[2].policy, PolicyKind::VirtualSnoop);
    EXPECT_EQ(points[4].app, "canneal");
    EXPECT_EQ(points[7].app, "canneal");
    EXPECT_EQ(points[7].policy, PolicyKind::VirtualSnoop);
    EXPECT_EQ(points[7].seed, 2u);
}

TEST(SweepMatrix, ConfigForAppliesPointOverrides)
{
    SweepMatrix m;
    m.base.numVms = 2;
    m.base.vcpusPerVm = 2;
    SweepPoint p;
    p.policy = PolicyKind::TokenB;
    p.relocation = RelocationMode::CounterThreshold;
    p.roPolicy = RoPolicy::IntraVm;
    p.seed = 42;
    SystemConfig cfg = m.configFor(p);
    EXPECT_EQ(cfg.policy, PolicyKind::TokenB);
    EXPECT_EQ(cfg.vsnoop.relocation, RelocationMode::CounterThreshold);
    EXPECT_EQ(cfg.vsnoop.roPolicy, RoPolicy::IntraVm);
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_EQ(cfg.numVms, 2u);
}

TEST(SweepMatrix, EmptyAxisAsserts)
{
    SweepMatrix m;
    m.apps = {};
    EXPECT_DEATH(m.expand(), "at least one value");
}

TEST(RunIndexed, InvokesEveryIndexExactlyOnce)
{
    constexpr std::size_t kCount = 100;
    std::vector<std::atomic<int>> hits(kCount);
    runIndexed(kCount, 7, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(RunIndexed, ZeroCountIsANoOp)
{
    bool called = false;
    runIndexed(0, 4, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

namespace
{

/** A small but real 8-run matrix (2 apps x 2 policies x 2 seeds). */
SweepMatrix
smallMatrix()
{
    SweepMatrix m;
    m.apps = {"ferret", "blackscholes"};
    m.policies = {PolicyKind::TokenB, PolicyKind::VirtualSnoop};
    m.seeds = {1, 2};
    m.base.mesh.width = 2;
    m.base.mesh.height = 2;
    m.base.numVms = 2;
    m.base.vcpusPerVm = 2;
    m.base.l2.sizeBytes = 32 * 1024;
    m.base.accessesPerVcpu = 400;
    m.base.warmupAccessesPerVcpu = 100;
    return m;
}

std::vector<std::string>
jsonLines(const std::vector<RunResult> &results)
{
    std::vector<std::string> lines;
    lines.reserve(results.size());
    for (const RunResult &r : results)
        lines.push_back(r.toJson());
    return lines;
}

} // namespace

TEST(RunSweep, ParallelOutputMatchesSerialByteForByte)
{
    SweepMatrix m = smallMatrix();
    auto serial = jsonLines(runSweep(m, 1));
    auto parallel = jsonLines(runSweep(m, 4));
    ASSERT_EQ(serial.size(), 8u);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "run " << i;
}

TEST(RunSweep, PerfOffLeavesJsonFreeOfPerfKeysAtAnyJobCount)
{
    // The core observability contract: with --perf off the output
    // carries no perf keys at all, and stays byte-identical across
    // worker counts (i.e. perfmon is invisible, not just zeroed).
    SweepMatrix m = smallMatrix();
    auto serial = jsonLines(runSweep(m, 1));
    auto parallel = jsonLines(runSweep(m, 4));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "run " << i;
        EXPECT_EQ(serial[i].find("\"perf\""), std::string::npos)
            << "run " << i;
    }
}

TEST(RunSweep, PerfOnIsDeterministicAndCountsAreLive)
{
    SweepMatrix m = smallMatrix();
    m.base.perf = true;
    auto serial = jsonLines(runSweep(m, 1));
    auto parallel = jsonLines(runSweep(m, 4));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "run " << i;

    // Every run carries the block with live event-queue and table
    // counters: a coherence run cannot complete without scheduling
    // events or probing the MSHR table.
    for (const std::string &line : serial) {
        ASSERT_NE(line.find("\"perf\":{"), std::string::npos);
        std::size_t eq = line.find("\"event_queue\":{");
        ASSERT_NE(eq, std::string::npos);
        EXPECT_EQ(line.find("\"schedules\":0,", eq), std::string::npos);
        EXPECT_NE(line.find("\"tables\":{\"mshrs\":{"),
                  std::string::npos);
        EXPECT_NE(line.find("\"mesh\":{"), std::string::npos);
    }
}

TEST(RunSweep, RecordsCarryTheirPointIdentity)
{
    SweepMatrix m = smallMatrix();
    auto results = runSweep(m, 4);
    auto points = m.expand();
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].app, points[i].app);
        EXPECT_EQ(results[i].config.policy, points[i].policy);
        EXPECT_EQ(results[i].config.seed, points[i].seed);
        EXPECT_GT(results[i].results.totalAccesses, 0u);
        // The JSON line is non-empty, parseable-looking output.
        std::string json = results[i].toJson();
        EXPECT_EQ(json.front(), '{');
        EXPECT_EQ(json.back(), '}');
        EXPECT_NE(json.find("\"app\":\"" + points[i].app + "\""),
                  std::string::npos);
    }
}

} // namespace vsnoop::test
