/**
 * @file
 * Tests for the tracing & time-series subsystem: the TraceSink ring
 * buffer, lifecycle records emitted by a real simulation, the
 * interval sampler, the Chrome trace exporter, and — the
 * load-bearing property — byte-identical trace and time-series
 * output for the same seed regardless of the sweep worker count.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "system/sweep.hh"
#include "trace/chrome_trace.hh"
#include "trace/timeseries.hh"
#include "trace/trace.hh"

namespace vsnoop::test
{

namespace
{

TraceRecord
recordAt(Tick tick)
{
    TraceRecord r;
    r.tick = tick;
    r.kind = TraceEventKind::RequestIssue;
    return r;
}

/** A small traced configuration exercising migration + filtering. */
SystemConfig
tracedConfig()
{
    SystemConfig cfg;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    cfg.numVms = 2;
    cfg.vcpusPerVm = 2;
    cfg.l2.sizeBytes = 32 * 1024;
    cfg.accessesPerVcpu = 800;
    cfg.warmupAccessesPerVcpu = 200;
    cfg.migrationPeriod = 20000;
    cfg.captureTrace = true;
    cfg.timeseriesInterval = 10000;
    return cfg;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

TEST(TraceSink, RetainsEverythingBelowCapacity)
{
    TraceSink sink(8);
    for (Tick t = 0; t < 5; ++t)
        sink.record(recordAt(t));
    EXPECT_EQ(sink.size(), 5u);
    EXPECT_EQ(sink.recorded(), 5u);
    EXPECT_EQ(sink.dropped(), 0u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(sink.at(i).tick, static_cast<Tick>(i));
}

TEST(TraceSink, RingOverwritesOldestAndStaysChronological)
{
    TraceSink sink(4);
    for (Tick t = 0; t < 10; ++t)
        sink.record(recordAt(t));
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    // Oldest-first iteration over the retained tail: 6,7,8,9.
    std::vector<Tick> ticks;
    sink.forEach([&](const TraceRecord &r) { ticks.push_back(r.tick); });
    EXPECT_EQ(ticks, (std::vector<Tick>{6, 7, 8, 9}));
}

TEST(TraceSink, ClearKeepsCapacity)
{
    TraceSink sink(4);
    for (Tick t = 0; t < 6; ++t)
        sink.record(recordAt(t));
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.capacity(), 4u);
    sink.record(recordAt(42));
    EXPECT_EQ(sink.at(0).tick, 42u);
}

TEST(TraceNames, CoverEveryEnumerator)
{
    for (std::size_t k = 0; k < kNumTraceEventKinds; ++k)
        EXPECT_STRNE(traceEventKindName(static_cast<TraceEventKind>(k)),
                     "");
    for (std::size_t r = 0; r < kNumFilterReasons; ++r)
        EXPECT_STRNE(filterReasonName(static_cast<FilterReason>(r)), "");
    for (std::size_t d = 0; d < kNumDataSources; ++d)
        EXPECT_STRNE(dataSourceName(static_cast<DataSource>(d)), "");
    for (std::size_t c = 0; c < kNumMsgClasses; ++c)
        EXPECT_STRNE(msgClassName(static_cast<MsgClass>(c)), "");
}

TEST(IntervalSampler, DeltasAndFinalPartialSample)
{
    EventQueue eq;
    std::uint64_t counter = 0;
    IntervalSampler sampler(eq, 100, [&](TimeSeriesSample &s) {
        s.transactions = counter;
    });
    sampler.start();
    // Bump the counter by 10 at ticks 40,90,...,240 — off the
    // sample ticks, so tie-break order cannot blur the deltas.
    for (int step = 0; step < 5; ++step)
        eq.scheduleFnIn(40 + 50 * step, [&counter] { counter += 10; });
    eq.runUntil(250);
    sampler.stop();
    const TimeSeries &series = sampler.series();
    ASSERT_TRUE(series.enabled());
    EXPECT_EQ(series.interval, 100u);
    // Samples at 100, 200 plus the final partial one at 250.
    ASSERT_EQ(series.samples.size(), 3u);
    EXPECT_EQ(series.samples[0].tick, 100u);
    EXPECT_EQ(series.samples[0].transactions, 20u);
    EXPECT_EQ(series.samples[1].tick, 200u);
    EXPECT_EQ(series.samples[1].transactions, 20u);
    EXPECT_EQ(series.samples[2].tick, 250u);
    EXPECT_EQ(series.samples[2].transactions, 10u);
}

TEST(IntervalSampler, ResetSeriesRebaselines)
{
    EventQueue eq;
    std::uint64_t counter = 0;
    IntervalSampler sampler(eq, 100, [&](TimeSeriesSample &s) {
        s.transactions = counter;
    });
    sampler.start();
    counter = 1000;
    eq.runUntil(150);
    sampler.resetSeries(); // warmup boundary: discard, re-baseline
    counter = 1007;
    eq.runUntil(250);
    sampler.stop();
    // The pre-reset sample at tick 100 is discarded; what remains
    // is the already-armed sample at 200 and the final one at 250.
    const TimeSeries &series = sampler.series();
    ASSERT_EQ(series.samples.size(), 2u);
    // Only the post-reset delta is visible, not the 1000 jump.
    EXPECT_EQ(series.samples[0].transactions, 7u);
    EXPECT_EQ(series.samples[1].transactions, 0u);
}

TEST(TracedRun, LifecycleRecordsAreConsistent)
{
    SystemConfig cfg = tracedConfig();
    SimSystem system(cfg, findApp("ferret"));
    system.run();
    const TraceSink *sink = system.trace();
    ASSERT_NE(sink, nullptr);
    ASSERT_GT(sink->size(), 0u);

    std::uint64_t issues = 0, decisions = 0, completions = 0;
    Tick last_issue = 0;
    sink->forEach([&](const TraceRecord &r) {
        switch (r.kind) {
          case TraceEventKind::RequestIssue:
            // Issue records carry the current tick, so they are
            // non-decreasing.  (Completion records are stamped with
            // their future completion tick and may interleave.)
            EXPECT_GE(r.tick, last_issue);
            last_issue = r.tick;
            issues++;
            break;
          case TraceEventKind::FilterDecision:
            decisions++;
            // The vsnoop policy always attributes its decision.
            EXPECT_NE(r.reason, FilterReason::Baseline);
            // A broadcast decision covers every other core.
            if (r.broadcast) {
                EXPECT_EQ(CoreSet::fromMask(r.targets).count() + 1,
                          cfg.numCores());
            }
            break;
          case TraceEventKind::Completion:
            completions++;
            EXPECT_GT(r.value, 0u) << "zero-latency completion";
            break;
          default:
            break;
        }
    });
    // Nothing was dropped at this size, so the lifecycle is whole:
    // every transaction has one issue, >= 1 decision, one completion.
    EXPECT_EQ(sink->dropped(), 0u);
    EXPECT_EQ(issues, completions);
    EXPECT_GE(decisions, issues);
}

TEST(TracedRun, TimeSeriesCoversMeasurementPhase)
{
    SystemConfig cfg = tracedConfig();
    SimSystem system(cfg, findApp("ferret"));
    system.run();
    SystemResults r = system.results();
    ASSERT_TRUE(r.series.enabled());
    ASSERT_GT(r.series.samples.size(), 1u);
    std::uint64_t txn_sum = 0;
    for (const TimeSeriesSample &s : r.series.samples) {
        txn_sum += s.transactions;
        ASSERT_EQ(s.residencePerCore.size(), cfg.numCores());
    }
    // Interval deltas sum back to the end-of-run aggregate.
    EXPECT_EQ(txn_sum, r.transactions);
}

TEST(TracedRun, DisabledTracingLeavesNoSink)
{
    SystemConfig cfg = tracedConfig();
    cfg.captureTrace = false;
    cfg.timeseriesInterval = 0;
    SimSystem system(cfg, findApp("ferret"));
    system.run();
    EXPECT_EQ(system.trace(), nullptr);
    EXPECT_FALSE(system.results().series.enabled());
}

TEST(ChromeTrace, ExportsWellFormedEventArray)
{
    SystemConfig cfg = tracedConfig();
    SimSystem system(cfg, findApp("ferret"));
    system.run();
    SystemResults r = system.results();

    std::ostringstream os;
    ChromeTraceMeta meta;
    meta.numCores = cfg.numCores();
    meta.numVms = cfg.numVms;
    writeChromeTrace(os, *system.trace(), &r.series, meta);
    std::string trace = os.str();

    // Structural sanity: the JsonWriter guarantees validity; check
    // the Chrome-trace schema essentials are present.
    EXPECT_EQ(trace.front(), '{');
    EXPECT_EQ(trace.back(), '}');
    EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(trace.find("\"records_dropped\""), std::string::npos);
    // Filter decisions survive into slice args.
    EXPECT_NE(trace.find("\"decision\""), std::string::npos);
    EXPECT_NE(trace.find("\"reason\""), std::string::npos);
}

TEST(ChromeTrace, ClosesAndCountsUnmatchedSpans)
{
    // Transactions whose Completion never arrived (in flight at run
    // end, or rotated out of the ring) must still be emitted —
    // capped at the last recorded tick and marked unclosed — and
    // counted in otherData.
    TraceSink sink(16);
    TraceRecord issue = recordAt(100);
    issue.core = 3;
    issue.line = 0x40;
    sink.record(issue);

    TraceRecord done = recordAt(250);
    done.core = 1;
    done.line = 0x80;
    sink.record(done);
    TraceRecord completion;
    completion.kind = TraceEventKind::Completion;
    completion.tick = 400;
    completion.core = 1;
    completion.line = 0x80;
    sink.record(completion);

    std::ostringstream os;
    ChromeTraceMeta meta;
    meta.numCores = 4;
    meta.numVms = 2;
    writeChromeTrace(os, sink, nullptr, meta);
    std::string trace = os.str();

    EXPECT_NE(trace.find("\"unclosed\":true"), std::string::npos);
    EXPECT_NE(trace.find("\"unclosed_transactions\":1"),
              std::string::npos);
    // The unclosed span is capped at the last recorded tick:
    // 400 - 100 = 300.
    EXPECT_NE(trace.find("\"dur\":300"), std::string::npos);
}

TEST(ChromeTrace, NoUnmatchedSpansCountsZero)
{
    TraceSink sink(16);
    TraceRecord issue = recordAt(10);
    issue.core = 0;
    issue.line = 0x40;
    sink.record(issue);
    TraceRecord completion;
    completion.kind = TraceEventKind::Completion;
    completion.tick = 60;
    completion.core = 0;
    completion.line = 0x40;
    sink.record(completion);

    std::ostringstream os;
    ChromeTraceMeta meta;
    meta.numCores = 1;
    meta.numVms = 1;
    writeChromeTrace(os, sink, nullptr, meta);
    EXPECT_NE(os.str().find("\"unclosed_transactions\":0"),
              std::string::npos);
    EXPECT_EQ(os.str().find("\"unclosed\":true"), std::string::npos);
}

namespace
{

/** Sweep matrix with tracing + time series on every run. */
SweepMatrix
tracedMatrix(const std::string &trace_dir)
{
    SweepMatrix m;
    m.apps = {"ferret", "blackscholes"};
    m.policies = {PolicyKind::TokenB, PolicyKind::VirtualSnoop};
    m.seeds = {1, 2};
    m.base = tracedConfig();
    m.traceDir = trace_dir;
    return m;
}

std::vector<std::string>
jsonLines(const std::vector<RunResult> &results)
{
    std::vector<std::string> lines;
    lines.reserve(results.size());
    for (const RunResult &r : results)
        lines.push_back(r.toJson());
    return lines;
}

} // namespace

TEST(TraceDeterminism, SeriesAndTraceBytesIdenticalAcrossJobs)
{
    std::string dir1 = testing::TempDir() + "vsnoop_traces_j1";
    std::string dir4 = testing::TempDir() + "vsnoop_traces_j4";
    for (const std::string &d : {dir1, dir4}) {
        std::string cmd = "mkdir -p " + d;
        ASSERT_EQ(std::system(cmd.c_str()), 0);
    }

    SweepMatrix m1 = tracedMatrix(dir1);
    SweepMatrix m4 = tracedMatrix(dir4);
    auto serial = jsonLines(runSweep(m1, 1));
    auto parallel = jsonLines(runSweep(m4, 4));
    ASSERT_EQ(serial.size(), 8u);
    ASSERT_EQ(parallel.size(), serial.size());

    // JSON-lines output (including the embedded time series) is
    // byte-identical for any worker count...
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]) << "run " << i;
        EXPECT_NE(serial[i].find("\"timeseries\""), std::string::npos);
    }

    // ...and so is every per-run Chrome trace file.
    for (const SweepPoint &p : m1.expand()) {
        std::string name = SweepMatrix::traceFileName(p);
        std::string t1 = slurp(dir1 + "/" + name);
        std::string t4 = slurp(dir4 + "/" + name);
        ASSERT_FALSE(t1.empty()) << name;
        EXPECT_EQ(t1, t4) << name;
    }
}

TEST(TraceNames, FilterReasonNamesRoundTripExhaustively)
{
    // Every FilterReason value must produce a distinct, non-empty
    // name, and the name must map back to exactly the value that
    // produced it.  JSON consumers (run records, the report tool,
    // the pagemon by_reason breakdown) key on these strings, so a
    // renamed or aliased reason is a silent data-corruption bug.
    std::map<std::string, FilterReason> by_name;
    for (std::size_t i = 0; i < kNumFilterReasons; ++i) {
        auto reason = static_cast<FilterReason>(i);
        const char *name = filterReasonName(reason);
        ASSERT_NE(name, nullptr);
        ASSERT_STRNE(name, "");
        auto [it, inserted] = by_name.emplace(name, reason);
        EXPECT_TRUE(inserted)
            << "duplicate reason name '" << name << "'";
    }
    EXPECT_EQ(by_name.size(), kNumFilterReasons);
    for (const auto &[name, reason] : by_name)
        EXPECT_STREQ(filterReasonName(reason), name.c_str());
}

TEST(TraceNames, TraceEventKindNamesAreExhaustiveAndDistinct)
{
    std::map<std::string, TraceEventKind> by_name;
    for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
        auto kind = static_cast<TraceEventKind>(i);
        const char *name = traceEventKindName(kind);
        ASSERT_NE(name, nullptr);
        ASSERT_STRNE(name, "");
        auto [it, inserted] = by_name.emplace(name, kind);
        EXPECT_TRUE(inserted)
            << "duplicate trace-kind name '" << name << "'";
    }
    EXPECT_EQ(by_name.size(), kNumTraceEventKinds);
    // The page-lifecycle block must stay contiguous: the Chrome
    // exporter and the host-track gate test kind ranges.
    EXPECT_EQ(static_cast<std::size_t>(TraceEventKind::PageRemap) -
                  static_cast<std::size_t>(TraceEventKind::PageMap),
              4u);
}

} // namespace vsnoop::test
