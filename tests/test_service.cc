/**
 * @file
 * Service-layer tests: the content-addressed ResultStore, the
 * JobQueue state machine (including cache-served resubmission and
 * cooperative cancellation), and an end-to-end HTTP check that the
 * job API streams bytes identical to an offline sweep of the same
 * matrix.
 */

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/job_api.hh"
#include "service/job_queue.hh"
#include "service/result_store.hh"
#include "service/sweep_wire.hh"
#include "sim/json.hh"
#include "sim/metrics.hh"
#include "sim/slog.hh"
#include "sim/stats_server.hh"
#include "system/sweep.hh"
#include "trace/job_trace.hh"

namespace vsnoop::test
{
namespace
{

namespace fs = std::filesystem;

/** A fresh, empty store directory per test. */
fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
                   ("vsnoop_service_" + name);
    fs::remove_all(dir);
    return dir;
}

/** A fast 2-run matrix (1 app x 2 seeds) for queue tests. */
SweepMatrix
tinyMatrix()
{
    SweepMatrix m;
    m.apps = {"ferret"};
    m.seeds = {1, 2};
    m.base.mesh.width = 2;
    m.base.mesh.height = 2;
    m.base.numVms = 2;
    m.base.vcpusPerVm = 2;
    m.base.l2.sizeBytes = 32 * 1024;
    m.base.accessesPerVcpu = 400;
    m.base.warmupAccessesPerVcpu = 100;
    return m;
}

/** Poll @p queue until @p id reaches a terminal state. */
JobStatus
awaitTerminal(JobQueue &queue, std::uint64_t id)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(120);
    for (;;) {
        std::optional<JobStatus> status = queue.status(id);
        EXPECT_TRUE(status.has_value());
        if (!status || jobStateTerminal(status->state))
            return status ? *status : JobStatus{};
        if (std::chrono::steady_clock::now() > deadline) {
            ADD_FAILURE() << "job " << id << " never finished";
            return *status;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

// ---------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------

TEST(ResultStore, RoundTripsRecordsAndCountsHitsAndMisses)
{
    fs::path dir = freshDir("roundtrip");
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 1 << 20, &error)) << error;

    EXPECT_FALSE(store.get("no-such-key").has_value());
    EXPECT_EQ(store.misses(), 1u);

    store.put("key-a", "{\"run\":\"a\"}");
    store.put("key-b", "{\"run\":\"b\"}");
    EXPECT_EQ(store.insertions(), 2u);
    EXPECT_EQ(store.entryCount(), 2u);

    std::optional<std::string> got = store.get("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "{\"run\":\"a\"}");
    got = store.get("key-b");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "{\"run\":\"b\"}");
    EXPECT_EQ(store.hits(), 2u);
    EXPECT_EQ(store.misses(), 1u);
    fs::remove_all(dir);
}

TEST(ResultStore, EvictsLeastRecentlyUsedBeyondTheByteCap)
{
    fs::path dir = freshDir("evict");
    // Each entry is key + '\n' + record + '\n' = 2+1+28+1 = 32
    // bytes; a 70-byte cap holds two entries, not three.
    const std::string record(28, 'r');
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 70, &error)) << error;

    store.put("k1", record);
    store.put("k2", record);
    EXPECT_EQ(store.entryCount(), 2u);
    EXPECT_EQ(store.evictions(), 0u);

    // Touch k1 so k2 becomes least recently used, then overflow.
    EXPECT_TRUE(store.get("k1").has_value());
    store.put("k3", record);

    EXPECT_EQ(store.evictions(), 1u);
    EXPECT_EQ(store.entryCount(), 2u);
    EXPECT_FALSE(store.get("k2").has_value());
    EXPECT_TRUE(store.get("k1").has_value());
    EXPECT_TRUE(store.get("k3").has_value());
    fs::remove_all(dir);
}

TEST(ResultStore, NeverEvictsTheEntryJustInserted)
{
    fs::path dir = freshDir("keep_newest");
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 16, &error)) << error;

    // One entry alone exceeds the cap; it must survive anyway.
    store.put("big", std::string(64, 'x'));
    EXPECT_EQ(store.entryCount(), 1u);
    EXPECT_TRUE(store.get("big").has_value());
    fs::remove_all(dir);
}

TEST(ResultStore, DropsCorruptedEntriesAndHealsByReinsertion)
{
    fs::path dir = freshDir("corrupt");
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 1 << 20, &error)) << error;

    store.put("key-c", "{\"run\":\"c\"}");

    // Tamper: rewrite the object so its key line no longer matches.
    fs::path object = dir / "objects" / contentHash("key-c");
    {
        std::ofstream os(object, std::ios::binary | std::ios::trunc);
        os << "some-other-key\n{\"run\":\"evil\"}\n";
    }

    EXPECT_FALSE(store.get("key-c").has_value());
    EXPECT_EQ(store.corruptDropped(), 1u);
    EXPECT_EQ(store.entryCount(), 0u);
    EXPECT_FALSE(fs::exists(object));

    store.put("key-c", "{\"run\":\"c\"}");
    std::optional<std::string> got = store.get("key-c");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "{\"run\":\"c\"}");
    fs::remove_all(dir);
}

TEST(ResultStore, ReopenRecoversEntriesFromDisk)
{
    fs::path dir = freshDir("reopen");
    std::string error;
    {
        ResultStore store;
        ASSERT_TRUE(store.open(dir.string(), 1 << 20, &error))
            << error;
        store.put("key-a", "{\"run\":\"a\"}");
        store.put("key-b", "{\"run\":\"b\"}");
    }

    ResultStore reopened;
    ASSERT_TRUE(reopened.open(dir.string(), 1 << 20, &error)) << error;
    EXPECT_EQ(reopened.entryCount(), 2u);
    std::optional<std::string> got = reopened.get("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "{\"run\":\"a\"}");

    // Even without the index (recency hints), objects are adopted.
    fs::remove(dir / "index");
    ResultStore adopted;
    ASSERT_TRUE(adopted.open(dir.string(), 1 << 20, &error)) << error;
    EXPECT_EQ(adopted.entryCount(), 2u);
    got = adopted.get("key-b");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "{\"run\":\"b\"}");
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------

TEST(JobQueue, RunsAJobThroughTheStateMachine)
{
    JobQueue queue(nullptr, 2);
    std::string error;
    SweepMatrix m = tinyMatrix();
    std::uint64_t id = queue.submit(m, "smoke", &error);
    ASSERT_NE(id, 0u) << error;

    JobStatus status = awaitTerminal(queue, id);
    EXPECT_EQ(status.state, JobState::Done);
    EXPECT_EQ(status.runsTotal, 2u);
    EXPECT_EQ(status.runsCompleted, 2u);
    EXPECT_EQ(status.runsExecuted, 2u);
    EXPECT_EQ(status.runsFromCache, 0u);
    EXPECT_EQ(status.label, "smoke");
    EXPECT_GE(status.submittedMs, 0);
    EXPECT_GE(status.startedMs, status.submittedMs);
    EXPECT_GE(status.finishedMs, status.startedMs);
    EXPECT_EQ(queue.jobsCompleted(), 1u);

    // Streamed lines are the offline sweep's bytes, matrix order.
    std::vector<std::string> lines;
    EXPECT_TRUE(queue.streamResults(id, [&](const std::string &line) {
        lines.push_back(line);
        return true;
    }));
    std::vector<RunResult> offline = runSweep(m, 1);
    ASSERT_EQ(lines.size(), offline.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
        EXPECT_EQ(lines[i], offline[i].toJson()) << "run " << i;

    EXPECT_EQ(queue.list().size(), 1u);
    EXPECT_FALSE(queue.status(id + 1).has_value());
    EXPECT_FALSE(queue.streamResults(id + 1,
                                     [](const std::string &) {
                                         return true;
                                     }));
}

TEST(JobQueue, RejectsInvalidSubmissions)
{
    JobQueue queue(nullptr, 1);
    std::string error;

    SweepMatrix no_apps = tinyMatrix();
    no_apps.apps.clear();
    EXPECT_EQ(queue.submit(no_apps, "", &error), 0u);
    EXPECT_FALSE(error.empty());

    SweepMatrix unknown = tinyMatrix();
    unknown.apps = {"no-such-app"};
    error.clear();
    EXPECT_EQ(queue.submit(unknown, "", &error), 0u);
    EXPECT_NE(error.find("no-such-app"), std::string::npos) << error;

    EXPECT_EQ(queue.jobsSubmitted(), 0u);
}

TEST(JobQueue, CancelsQueuedJobsBeforeTheyStart)
{
    // One dispatcher, one worker: the second job stays queued while
    // the first (deliberately long) one runs.
    JobQueue queue(nullptr, 1);
    std::string error;
    SweepMatrix slow = tinyMatrix();
    slow.seeds = {1, 2, 3, 4};
    slow.base.accessesPerVcpu = 30000;
    slow.base.warmupAccessesPerVcpu = 1000;
    std::uint64_t first = queue.submit(slow, "long", &error);
    ASSERT_NE(first, 0u) << error;
    std::uint64_t second = queue.submit(tinyMatrix(), "victim", &error);
    ASSERT_NE(second, 0u) << error;

    EXPECT_TRUE(queue.cancel(second));
    std::optional<JobStatus> status = queue.status(second);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Cancelled);
    EXPECT_EQ(status->runsCompleted, 0u);
    EXPECT_EQ(status->startedMs, -1);

    // Terminal jobs cannot be cancelled again; unknown ids never.
    EXPECT_FALSE(queue.cancel(second));
    EXPECT_FALSE(queue.cancel(second + 100));

    EXPECT_TRUE(queue.cancel(first));
    JobStatus done = awaitTerminal(queue, first);
    EXPECT_EQ(done.state, JobState::Cancelled);
    EXPECT_EQ(queue.jobsCancelled(), 2u);
}

TEST(JobQueue, CancelMidSweepKeepsFinishedRunsAndSkipsTheRest)
{
    JobQueue queue(nullptr, 1);
    std::string error;
    SweepMatrix m = tinyMatrix();
    m.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    m.base.accessesPerVcpu = 30000;
    m.base.warmupAccessesPerVcpu = 1000;
    std::uint64_t id = queue.submit(m, "", &error);
    ASSERT_NE(id, 0u) << error;

    // Wait for the first run to land, then cancel: in-flight runs
    // finish, undispatched ones never start.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(120);
    for (;;) {
        std::optional<JobStatus> status = queue.status(id);
        ASSERT_TRUE(status.has_value());
        if (status->runsCompleted >= 1)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "first run never completed";
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(queue.cancel(id));

    JobStatus status = awaitTerminal(queue, id);
    EXPECT_EQ(status.state, JobState::Cancelled);
    EXPECT_TRUE(status.cancelRequested);
    EXPECT_GE(status.runsCompleted, 1u);
    EXPECT_LT(status.runsCompleted, status.runsTotal);

    // The stream yields exactly the finished runs, then ends.
    std::size_t streamed = 0;
    EXPECT_TRUE(queue.streamResults(id, [&](const std::string &) {
        ++streamed;
        return true;
    }));
    EXPECT_EQ(streamed, status.runsCompleted);
}

TEST(JobQueue, ResubmissionIsServedEntirelyFromTheCache)
{
    fs::path dir = freshDir("queue_cache");
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 1 << 20, &error)) << error;

    JobQueue queue(&store, 2);
    SweepMatrix m = tinyMatrix();
    std::uint64_t first = queue.submit(m, "", &error);
    ASSERT_NE(first, 0u) << error;
    JobStatus cold = awaitTerminal(queue, first);
    EXPECT_EQ(cold.state, JobState::Done);
    EXPECT_EQ(cold.runsExecuted, 2u);
    EXPECT_EQ(cold.runsFromCache, 0u);

    std::uint64_t second = queue.submit(m, "", &error);
    ASSERT_NE(second, 0u) << error;
    JobStatus warm = awaitTerminal(queue, second);
    EXPECT_EQ(warm.state, JobState::Done);
    EXPECT_EQ(warm.runsExecuted, 0u);
    EXPECT_EQ(warm.runsFromCache, 2u);
    EXPECT_GE(store.hits(), 2u);

    // Cached bytes are the executed bytes.
    std::vector<std::string> first_lines, second_lines;
    queue.streamResults(first, [&](const std::string &line) {
        first_lines.push_back(line);
        return true;
    });
    queue.streamResults(second, [&](const std::string &line) {
        second_lines.push_back(line);
        return true;
    });
    EXPECT_EQ(first_lines, second_lines);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------
// End-to-end over HTTP
// ---------------------------------------------------------------

TEST(JobApi, StreamedResultsAreByteIdenticalToOfflineSweep)
{
    // The ISSUE acceptance criterion: a 16-run matrix submitted
    // over HTTP streams exactly the bytes offline vsnoopsweep
    // produces, and resubmission executes zero new runs.
    SweepMatrix m = tinyMatrix();
    m.apps = {"ferret", "blackscholes"};
    m.policies = {PolicyKind::TokenB, PolicyKind::VirtualSnoop};
    m.relocations = {RelocationMode::Base, RelocationMode::Counter};
    m.seeds = {1, 2};
    m.base.accessesPerVcpu = 200;
    m.base.warmupAccessesPerVcpu = 50;
    ASSERT_EQ(m.runCount(), 16u);

    std::string offline;
    for (const RunResult &r : runSweep(m, 4))
        offline += r.toJson() + "\n";

    fs::path dir = freshDir("e2e");
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 1 << 20, &error)) << error;
    JobQueue queue(&store, 2);
    StatsServer server;
    registerJobRoutes(server, queue);
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    auto submit_and_fetch = [&](std::uint64_t *cached,
                                std::uint64_t *executed) {
        std::optional<HttpReply> reply = httpRequest(
            server.address(), "POST", "/jobs",
            writeSweepRequestJson(m, "e2e"), "application/json",
            &error);
        EXPECT_TRUE(reply.has_value()) << error;
        if (!reply)
            return std::string();
        EXPECT_EQ(reply->status, 200) << reply->body;
        std::optional<JsonValue> accepted = parseJson(reply->body);
        EXPECT_TRUE(accepted.has_value());
        if (!accepted)
            return std::string();
        EXPECT_EQ(accepted->numberAt("runs_total"), 16.0);
        std::string id = std::to_string(
            static_cast<std::uint64_t>(accepted->numberAt("job")));

        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(120);
        for (;;) {
            std::optional<std::string> body =
                httpGet(server.address(), "/jobs/" + id, &error);
            EXPECT_TRUE(body.has_value()) << error;
            if (!body)
                return std::string();
            std::optional<JsonValue> status = parseJson(*body);
            EXPECT_TRUE(status.has_value());
            if (!status)
                return std::string();
            std::string state = status->stringAt("state");
            if (state == "done") {
                *cached = static_cast<std::uint64_t>(
                    status->numberAt("runs_from_cache"));
                *executed = static_cast<std::uint64_t>(
                    status->numberAt("runs_executed"));
                break;
            }
            EXPECT_NE(state, "failed") << *body;
            EXPECT_NE(state, "cancelled") << *body;
            if (std::chrono::steady_clock::now() > deadline) {
                ADD_FAILURE() << "job " << id << " never finished";
                return std::string();
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        std::optional<std::string> results = httpGet(
            server.address(), "/jobs/" + id + "/results", &error);
        EXPECT_TRUE(results.has_value()) << error;
        return results ? *results : std::string();
    };

    std::uint64_t cached = 0, executed = 0;
    std::string first = submit_and_fetch(&cached, &executed);
    EXPECT_EQ(first, offline);
    EXPECT_EQ(executed, 16u);
    EXPECT_EQ(cached, 0u);

    std::string second = submit_and_fetch(&cached, &executed);
    EXPECT_EQ(second, offline);
    EXPECT_EQ(executed, 0u);
    EXPECT_EQ(cached, 16u);

    queue.shutdown();
    server.stop();
    fs::remove_all(dir);
}

TEST(JobApi, RejectsMalformedSubmissionsWithActionableErrors)
{
    JobQueue queue(nullptr, 1);
    StatsServer server;
    registerJobRoutes(server, queue);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::optional<HttpReply> reply = httpRequest(
        server.address(), "POST", "/jobs", "not json",
        "application/json", &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 400);
    EXPECT_NE(reply->body.find("invalid JSON"), std::string::npos)
        << reply->body;

    reply = httpRequest(server.address(), "POST", "/jobs",
                        "{\"apps\":[\"ferret\"],"
                        "\"config\":{\"acceses\":1}}",
                        "application/json", &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 400);
    EXPECT_NE(reply->body.find("acceses"), std::string::npos)
        << reply->body;

    reply = httpRequest(server.address(), "GET", "/jobs/999", "", "",
                        &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 404);

    queue.shutdown();
    server.stop();
}

// ---------------------------------------------------------------
// Observability: age GC, lifecycle spans, request-id threading
// ---------------------------------------------------------------

TEST(ResultStore, AgeGcEvictsOldObjectsAndCountsThem)
{
    fs::path dir = freshDir("age_gc");
    ResultStore store;
    store.setMaxAge(3600);
    std::string error;
    ASSERT_TRUE(store.open(dir.string(), 1 << 20, &error)) << error;

    store.put("fresh", "{\"run\":\"f\"}");
    store.put("stale", "{\"run\":\"s\"}");
    // Nothing is over an hour old yet.
    EXPECT_EQ(store.evictExpired(), 0u);

    // Backdate the stale object two hours.
    fs::path object = dir / "objects" / contentHash("stale");
    fs::last_write_time(object, fs::last_write_time(object) -
                                    std::chrono::hours(2));

    EXPECT_EQ(store.evictExpired(), 1u);
    EXPECT_EQ(store.expired(), 1u);
    EXPECT_EQ(store.entryCount(), 1u);
    EXPECT_FALSE(store.get("stale").has_value());
    EXPECT_TRUE(store.get("fresh").has_value());
    EXPECT_FALSE(fs::exists(object));

    // open() applies the cutoff too: backdate the survivor and
    // reopen — the entry must not be adopted.
    fs::path fresh_object = dir / "objects" / contentHash("fresh");
    fs::last_write_time(fresh_object,
                        fs::last_write_time(fresh_object) -
                            std::chrono::hours(2));
    ResultStore reopened;
    reopened.setMaxAge(3600);
    ASSERT_TRUE(reopened.open(dir.string(), 1 << 20, &error))
        << error;
    EXPECT_EQ(reopened.entryCount(), 0u);
    EXPECT_EQ(reopened.expired(), 1u);

    // maxAge 0 (the default) disables age GC entirely.
    ResultStore unaged;
    ASSERT_TRUE(unaged.open(dir.string(), 1 << 20, &error)) << error;
    EXPECT_EQ(unaged.evictExpired(), 0u);
    fs::remove_all(dir);
}

TEST(JobQueue, LifecycleSpansTileSubmitToDone)
{
    JobTraceRecorder trace;
    JobQueue queue(nullptr, 2, &trace);
    std::string error;
    std::uint64_t id =
        queue.submit(tinyMatrix(), "spans", &error, "span-req-1");
    ASSERT_NE(id, 0u) << error;
    JobStatus status = awaitTerminal(queue, id);
    EXPECT_EQ(status.state, JobState::Done);
    EXPECT_EQ(status.requestId, "span-req-1");

    const JobSpan *queue_wait = nullptr;
    const JobSpan *execute = nullptr;
    std::size_t runs = 0;
    std::vector<JobSpan> spans = trace.spans();
    for (const JobSpan &span : spans) {
        if (span.job != id)
            continue;
        EXPECT_EQ(span.requestId, "span-req-1") << span.name;
        if (span.name == "queue-wait")
            queue_wait = &span;
        else if (span.name == "execute")
            execute = &span;
        else if (span.name == "run") {
            ++runs;
            EXPECT_GE(span.slot, 0);
        }
    }
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(execute, nullptr);
    EXPECT_EQ(runs, 2u);

    // The two job-level spans tile [submitted, finished] exactly,
    // so their durations sum to the job's submit-to-done latency.
    EXPECT_EQ(queue_wait->beginMs, status.submittedMs);
    EXPECT_EQ(queue_wait->endMs, status.startedMs);
    EXPECT_EQ(execute->beginMs, status.startedMs);
    EXPECT_EQ(execute->endMs, status.finishedMs);
    EXPECT_EQ((queue_wait->endMs - queue_wait->beginMs) +
                  (execute->endMs - execute->beginMs),
              status.finishedMs - status.submittedMs);

    // Every uncached slot left a cache-miss instant.
    std::size_t misses = 0;
    for (const JobInstant &instant : trace.instants())
        if (instant.job == id && instant.name == "cache-miss")
            ++misses;
    EXPECT_EQ(misses, 2u);

    // The Chrome-trace export is one JSON document with an event
    // per span/instant plus per-track metadata.
    std::ostringstream out;
    trace.writeChromeTrace(out);
    std::optional<JsonValue> doc = parseJson(out.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GE(events->items().size(),
              spans.size() + trace.instants().size());
}

TEST(JobQueue, QueueWaitHistogramReconcilesWithSubmissions)
{
    MetricsRegistry registry;
    JobQueue queue(nullptr, 2);
    queue.registerMetrics(registry);
    registry.freeze();

    std::string error;
    std::uint64_t first =
        queue.submit(tinyMatrix(), "one", &error);
    ASSERT_NE(first, 0u) << error;
    awaitTerminal(queue, first);
    std::uint64_t second =
        queue.submit(tinyMatrix(), "two", &error);
    ASSERT_NE(second, 0u) << error;
    awaitTerminal(queue, second);

    queue.stageMetrics(registry);
    registry.publish();
    std::string text = registry.renderPrometheus();
    // Every submitted job left Queued exactly once, and every
    // executed run was timed: the histogram counts reconcile with
    // the job counters.
    EXPECT_NE(text.find("vsnoop_job_queue_wait_ms_count 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_job_run_execute_ms_count 4\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_jobs_submitted_total 2\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_job_runs_executed_total 4\n"),
              std::string::npos)
        << text;
}

TEST(JobApi, RequestIdsThreadFromSubmissionToStatus)
{
    JobQueue queue(nullptr, 2);
    StatsServer server;
    registerJobRoutes(server, queue);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::string body =
        writeSweepRequestJson(tinyMatrix(), "rid-e2e");
    std::optional<HttpReply> reply =
        httpRequest(server.address(), "POST", "/jobs", body,
                    "application/json", &error, 5000, "client-rid-7");
    ASSERT_TRUE(reply.has_value()) << error;
    ASSERT_EQ(reply->status, 200) << reply->body;
    // Echoed on the wire and in the acceptance body.
    EXPECT_EQ(reply->requestId, "client-rid-7");
    std::optional<JsonValue> accepted = parseJson(reply->body);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->stringAt("request_id"), "client-rid-7");
    std::uint64_t id =
        static_cast<std::uint64_t>(accepted->numberAt("job"));

    // The id sticks to the job for its whole life: the status JSON
    // reports the submitting request's id on every later poll.
    awaitTerminal(queue, id);
    reply = httpRequest(server.address(), "GET",
                        "/jobs/" + std::to_string(id), "", "",
                        &error);
    ASSERT_TRUE(reply.has_value()) << error;
    ASSERT_EQ(reply->status, 200);
    std::optional<JsonValue> status = parseJson(reply->body);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->stringAt("request_id"), "client-rid-7");
    // The poll itself got its own server-generated id.
    EXPECT_FALSE(reply->requestId.empty());
    EXPECT_NE(reply->requestId, "client-rid-7");

    // The submission left a correlatable structured log record.
    bool logged = false;
    for (const LogRecord &r : slog().tail())
        if (r.json.find("\"msg\":\"job_submitted\"") !=
                std::string::npos &&
            r.json.find("\"request_id\":\"client-rid-7\"") !=
                std::string::npos)
            logged = true;
    EXPECT_TRUE(logged);

    queue.shutdown();
    server.stop();
}

} // namespace
} // namespace vsnoop::test
