/**
 * @file
 * Unit tests for the memory-side token ledger.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace vsnoop::test
{

namespace
{
const HostAddr kLine(0x4000);
} // namespace

TEST(MainMemory, DefaultStateHoldsEverything)
{
    MainMemory mem(16, 4, 80);
    MemLineState st = mem.state(kLine);
    EXPECT_EQ(st.tokens, 16u);
    EXPECT_TRUE(st.owner);
    EXPECT_EQ(mem.ledgerSize(), 0u);
}

TEST(MainMemory, TakePlainTokensKeepsOwner)
{
    MainMemory mem(16, 4, 80);
    MemLineState taken = mem.takeTokens(kLine, 3, false);
    EXPECT_EQ(taken.tokens, 3u);
    EXPECT_FALSE(taken.owner);
    MemLineState st = mem.state(kLine);
    EXPECT_EQ(st.tokens, 13u);
    EXPECT_TRUE(st.owner);
    EXPECT_EQ(mem.ledgerSize(), 1u);
}

TEST(MainMemory, TakeAllIncludesOwnerWhenAllowed)
{
    MainMemory mem(16, 4, 80);
    MemLineState taken = mem.takeTokens(kLine, 16, true);
    EXPECT_EQ(taken.tokens, 16u);
    EXPECT_TRUE(taken.owner);
    MemLineState st = mem.state(kLine);
    EXPECT_EQ(st.tokens, 0u);
    EXPECT_FALSE(st.owner);
}

TEST(MainMemory, OwnerWithheldWithoutPermission)
{
    MainMemory mem(16, 4, 80);
    MemLineState taken = mem.takeTokens(kLine, 16, false);
    EXPECT_EQ(taken.tokens, 15u);
    EXPECT_FALSE(taken.owner);
    EXPECT_TRUE(mem.state(kLine).owner);
}

TEST(MainMemory, TakeFromEmptyYieldsNothing)
{
    MainMemory mem(16, 4, 80);
    mem.takeTokens(kLine, 16, true);
    MemLineState taken = mem.takeTokens(kLine, 1, true);
    EXPECT_EQ(taken.tokens, 0u);
    EXPECT_FALSE(taken.owner);
}

TEST(MainMemory, ReturnRestoresDefaultAndErasesLedger)
{
    MainMemory mem(16, 4, 80);
    MemLineState taken = mem.takeTokens(kLine, 16, true);
    EXPECT_EQ(mem.ledgerSize(), 1u);
    mem.returnTokens(kLine, taken.tokens, taken.owner);
    EXPECT_EQ(mem.ledgerSize(), 0u);
    MemLineState st = mem.state(kLine);
    EXPECT_EQ(st.tokens, 16u);
    EXPECT_TRUE(st.owner);
}

TEST(MainMemory, PartialReturns)
{
    MainMemory mem(16, 4, 80);
    mem.takeTokens(kLine, 10, false);
    mem.returnTokens(kLine, 4, false);
    EXPECT_EQ(mem.state(kLine).tokens, 10u);
    mem.returnTokens(kLine, 6, false);
    EXPECT_EQ(mem.ledgerSize(), 0u);
}

TEST(MainMemory, CanProvideDataRules)
{
    MainMemory mem(16, 4, 80);
    EXPECT_TRUE(mem.canProvideData(kLine, false));
    mem.takeTokens(kLine, 16, true); // owner gone
    EXPECT_FALSE(mem.canProvideData(kLine, false));
    // RO-shared lines are clean by construction: always providable.
    EXPECT_TRUE(mem.canProvideData(kLine, true));
}

TEST(MainMemory, ControllerInterleavesByLine)
{
    MainMemory mem(16, 4, 80);
    EXPECT_EQ(mem.controllerFor(HostAddr(0 * 64)), 0u);
    EXPECT_EQ(mem.controllerFor(HostAddr(1 * 64)), 1u);
    EXPECT_EQ(mem.controllerFor(HostAddr(5 * 64)), 1u);
    EXPECT_EQ(mem.controllerFor(HostAddr(7 * 64)), 3u);
}

TEST(MainMemory, ForEachLedgerLineVisitsDeviations)
{
    MainMemory mem(16, 4, 80);
    mem.takeTokens(HostAddr(0x1000), 1, false);
    mem.takeTokens(HostAddr(0x2000), 2, false);
    int seen = 0;
    mem.forEachLedgerLine([&](std::uint64_t) { seen++; });
    EXPECT_EQ(seen, 2);
}

TEST(MainMemoryDeath, OverflowPanics)
{
    MainMemory mem(16, 4, 80);
    EXPECT_DEATH(mem.returnTokens(kLine, 1, false), "overflow");
}

TEST(MainMemoryDeath, DuplicateOwnerPanics)
{
    MainMemory mem(16, 4, 80);
    mem.takeTokens(kLine, 2, false);
    EXPECT_DEATH(mem.returnTokens(kLine, 1, true), "owner");
}

} // namespace vsnoop::test
