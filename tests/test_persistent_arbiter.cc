/**
 * @file
 * Persistent-request arbitration: grants are FIFO per line,
 * starvation resolves, and completed transactions hand grants back
 * even when queued behind others.
 */

#include <gtest/gtest.h>

#include "coherence_harness.hh"

namespace vsnoop::test
{

namespace
{
constexpr std::uint64_t kAddr = 0xA0000;
} // namespace

TEST(PersistentArbiter, AllStarvedWritersEventuallyWin)
{
    // Nobody is snooped transiently, so every writer must go
    // persistent; the arbiter serializes them.
    auto policy = std::make_unique<StaticPolicy>(CoreSet{}, false);
    CoherenceHarness h(std::move(policy));

    std::vector<std::shared_ptr<CoherenceHarness::Outcome>> outcomes;
    for (CoreId c = 0; c < 8; ++c)
        outcomes.push_back(h.issue(c, kAddr, true));
    h.drain(50'000'000);
    for (const auto &o : outcomes)
        EXPECT_TRUE(o->fired);
    EXPECT_GE(h.system->stats.persistentRequests.value(), 8u);
}

TEST(PersistentArbiter, GrantsAreOrderedPerLine)
{
    // Two independent lines starve simultaneously: grants on one
    // line never block the other.
    auto policy = std::make_unique<StaticPolicy>(CoreSet{}, false);
    CoherenceHarness h(std::move(policy));
    auto a = h.issue(0, kAddr, true);
    auto b = h.issue(1, kAddr + 64, true);
    h.drain(20'000'000);
    EXPECT_TRUE(a->fired);
    EXPECT_TRUE(b->fired);
}

TEST(PersistentArbiter, PersistentReadGetsDataAndToken)
{
    auto policy = std::make_unique<StaticPolicy>(CoreSet{}, false);
    CoherenceHarness h(std::move(policy));
    auto outcome = h.access(3, kAddr, false);
    EXPECT_TRUE(outcome.fired);
    const CacheLine *line = h.line(3, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_GE(line->tokens, 1u);
}

TEST(PersistentArbiter, PersistentSnoopDrainsCompetingMshr)
{
    // Core 0 collects partial tokens transiently (policy reaches
    // memory only); core 1 escalates to persistent and must pull
    // the tokens parked in core 0's MSHR.
    auto policy = std::make_unique<StaticPolicy>(CoreSet{}, true);
    CoherenceHarness h(std::move(policy));
    // Prime: some tokens live in caches out of the policy's reach.
    // Give core 5 a shared copy via a direct snoopable setup: write
    // from core 5 using a one-off broadcast-capable policy is not
    // available, so instead rely on memory: core 0 reads (gets
    // tokens from memory), then core 1 writes.  Core 1's write can
    // see memory (policy) but core 0 only via persistent broadcast.
    auto r0 = h.issue(0, kAddr, false);
    h.drain();
    EXPECT_TRUE(r0->fired);
    auto w1 = h.issue(1, kAddr, true);
    h.drain(20'000'000);
    EXPECT_TRUE(w1->fired);
    const CacheLine *line = h.line(1, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, 16u);
    EXPECT_EQ(h.line(0, kAddr), nullptr);
}

TEST(PersistentArbiter, HeavyContentionConvergesWithinBoundedEvents)
{
    auto policy = std::make_unique<StaticPolicy>(CoreSet{}, false);
    CoherenceHarness h(std::move(policy));
    for (int round = 0; round < 3; ++round) {
        std::vector<std::shared_ptr<CoherenceHarness::Outcome>> batch;
        for (CoreId c = 0; c < 16; ++c)
            batch.push_back(h.issue(c, kAddr, true));
        h.drain(100'000'000);
        for (const auto &o : batch)
            ASSERT_TRUE(o->fired) << "round " << round;
    }
}

} // namespace vsnoop::test
