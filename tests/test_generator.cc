/**
 * @file
 * Unit tests for the synthetic access generator.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workload/generator.hh"

namespace vsnoop::test
{

namespace
{

AppProfile
testProfile()
{
    AppProfile p;
    p.name = "testapp";
    p.privatePagesPerVcpu = 32;
    p.privateSkew = 0.5;
    p.vmSharedPages = 8;
    p.vmSharedFraction = 0.10;
    p.contentPages = 16;
    p.contentFraction = 0.20;
    p.hypervisorFraction = 0.05;
    p.writeFraction = 0.3;
    p.contentWriteFraction = 0.01;
    p.meanAccessGap = 10.0;
    return p;
}

} // namespace

TEST(Generator, CategoryFractionsConverge)
{
    Hypervisor hv;
    VmId vm = hv.createVm(4);
    AppProfile profile = testProfile();
    VcpuWorkload w(hv, vm, 0, profile, 42);
    constexpr int draws = 60000;
    for (int i = 0; i < draws; ++i)
        w.next();

    auto frac = [&](AccessCategory c) {
        return static_cast<double>(
                   w.accessesByCategory[static_cast<std::size_t>(c)]
                       .value()) /
               draws;
    };
    EXPECT_NEAR(frac(AccessCategory::ContentShared), 0.20, 0.02);
    EXPECT_NEAR(frac(AccessCategory::VmShared), 0.10, 0.02);
    EXPECT_NEAR(frac(AccessCategory::Hypervisor) +
                    frac(AccessCategory::Domain0),
                0.05, 0.01);
    EXPECT_NEAR(frac(AccessCategory::Private), 0.65, 0.03);
}

TEST(Generator, PageTypesMatchCategories)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    AppProfile profile = testProfile();
    profile.contentWriteFraction = 0.0; // keep sharing intact
    declareContentPages(hv, a, profile);
    declareContentPages(hv, b, profile);
    hv.runContentScan();

    VcpuWorkload w(hv, a, 0, profile, 7);
    for (int i = 0; i < 20000; ++i) {
        VcpuWorkload::Step s = w.next();
        switch (s.category) {
          case AccessCategory::Private:
            EXPECT_EQ(s.access.pageType, PageType::VmPrivate);
            break;
          case AccessCategory::VmShared:
            EXPECT_EQ(s.access.pageType, PageType::VmPrivate);
            break;
          case AccessCategory::ContentShared:
            EXPECT_EQ(s.access.pageType, PageType::RoShared);
            EXPECT_FALSE(s.access.isWrite);
            break;
          case AccessCategory::Hypervisor:
          case AccessCategory::Domain0:
            EXPECT_EQ(s.access.pageType, PageType::RwShared);
            break;
        }
        EXPECT_EQ(s.access.vm, a);
        EXPECT_GE(s.gap, 1u);
    }
}

TEST(Generator, ContentPagesAreSharedAcrossVms)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    AppProfile profile = testProfile();
    profile.contentFraction = 1.0; // content accesses only
    profile.hypervisorFraction = 0.0;
    profile.vmSharedFraction = 0.0;
    profile.contentWriteFraction = 0.0;
    declareContentPages(hv, a, profile);
    declareContentPages(hv, b, profile);
    hv.runContentScan();

    VcpuWorkload wa(hv, a, 0, profile, 1);
    VcpuWorkload wb(hv, b, 0, profile, 2);
    std::set<std::uint64_t> pages_a, pages_b;
    for (int i = 0; i < 5000; ++i) {
        pages_a.insert(wa.next().access.addr.pageNum());
        pages_b.insert(wb.next().access.addr.pageNum());
    }
    // Deduplicated: both VMs touch the same host pages.
    EXPECT_EQ(pages_a, pages_b);
}

TEST(Generator, PrivateRegionsAreDisjointAcrossVcpus)
{
    Hypervisor hv;
    VmId vm = hv.createVm(2);
    AppProfile profile = testProfile();
    profile.contentFraction = 0.0;
    profile.hypervisorFraction = 0.0;
    profile.vmSharedFraction = 0.0;
    VcpuWorkload w0(hv, vm, 0, profile, 1);
    VcpuWorkload w1(hv, vm, 1, profile, 2);
    std::set<std::uint64_t> p0, p1;
    for (int i = 0; i < 4000; ++i) {
        p0.insert(w0.next().access.addr.pageNum());
        p1.insert(w1.next().access.addr.pageNum());
    }
    for (std::uint64_t page : p0)
        EXPECT_FALSE(p1.contains(page));
}

TEST(Generator, ContentWritesBreakSharing)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    AppProfile profile = testProfile();
    profile.contentFraction = 1.0;
    profile.hypervisorFraction = 0.0;
    profile.vmSharedFraction = 0.0;
    profile.contentWriteFraction = 0.05;
    declareContentPages(hv, a, profile);
    declareContentPages(hv, b, profile);
    hv.runContentScan();

    VcpuWorkload w(hv, a, 0, profile, 3);
    bool saw_cow = false;
    for (int i = 0; i < 4000 && !saw_cow; ++i)
        saw_cow = w.next().cowBroke;
    EXPECT_TRUE(saw_cow);
    EXPECT_GT(w.cowBreaks.value(), 0u);
    EXPECT_GT(hv.cowBreaks.value(), 0u);
}

TEST(Generator, DeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        Hypervisor hv;
        VmId vm = hv.createVm(1);
        VcpuWorkload w(hv, vm, 0, testProfile(), seed);
        std::vector<std::uint64_t> addrs;
        for (int i = 0; i < 200; ++i)
            addrs.push_back(w.next().access.addr.raw());
        return addrs;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Generator, GapsAverageNearProfileMean)
{
    Hypervisor hv;
    VmId vm = hv.createVm(1);
    AppProfile profile = testProfile();
    profile.meanAccessGap = 20.0;
    VcpuWorkload w(hv, vm, 0, profile, 11);
    double sum = 0;
    constexpr int draws = 30000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(w.next().gap);
    EXPECT_NEAR(sum / draws, 20.0, 2.0);
}

} // namespace vsnoop::test
