/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/perfmon.hh"

namespace vsnoop::test
{

namespace
{

class RecordingEvent : public Event
{
  public:
    explicit RecordingEvent(std::vector<int> &log, int id)
        : log_(log), id_(id)
    {
    }

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // namespace

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(a, 30);
    eq.schedule(b, 10);
    eq.schedule(c, 20);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(a, 5);
    eq.schedule(b, 5);
    eq.schedule(c, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.schedule(b, 6);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.schedule(b, 10);
    eq.schedule(a, 20); // move a after b
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.schedule(b, 50);
    std::uint64_t n = eq.runUntil(10);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LambdaEventsFire)
{
    EventQueue eq;
    int hits = 0;
    eq.scheduleFn(7, [&] { hits++; });
    eq.scheduleFnIn(3, [&] { hits += 10; });
    eq.run();
    EXPECT_EQ(hits, 11);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleFnIn(10, chain);
    };
    eq.scheduleFn(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunLimitBoundsDispatch)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> forever = [&] {
        count++;
        eq.scheduleFnIn(1, forever);
    };
    eq.scheduleFn(0, forever);
    std::uint64_t n = eq.run(100);
    EXPECT_EQ(n, 100u);
    EXPECT_EQ(count, 100);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, EmptyReflectsLiveEvents)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    std::vector<int> log;
    RecordingEvent b(log, 2);
    eq.schedule(b, 1);
    EXPECT_FALSE(eq.empty());
    eq.deschedule(b);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ManyOwnedCallbacksAreReaped)
{
    EventQueue eq;
    std::uint64_t hits = 0;
    for (int i = 0; i < 5000; ++i)
        eq.scheduleFn(static_cast<Tick>(i), [&] { hits++; });
    eq.run();
    EXPECT_EQ(hits, 5000u);
}

TEST(EventQueue, DescheduleThenRescheduleInvalidatesStaleEntry)
{
    // The stale calendar-queue entry left by the deschedule carries
    // an old token; only the re-scheduled entry may fire, exactly
    // once, at the new time.
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.deschedule(a);
    eq.schedule(a, 15);
    eq.schedule(b, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, RescheduleAcrossWheelAndOverflow)
{
    // Move an event from the near-future wheel to the far-future
    // overflow heap and back; each stale entry must be skipped.
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 10);       // wheel
    eq.schedule(a, 100000);   // overflow
    eq.schedule(a, 20);       // wheel again
    eq.schedule(b, 15);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FarFuturePendingCallbacksArePreserved)
{
    // Callbacks scheduled far beyond the wheel window (overflow
    // heap) must survive arbitrarily many near-term dispatches and
    // window slides, and still fire in order.
    EventQueue eq;
    std::vector<int> log;
    eq.scheduleFn(500000, [&] { log.push_back(91); });
    eq.scheduleFn(400000, [&] { log.push_back(90); });
    int near = 0;
    for (int i = 0; i < 2000; ++i)
        eq.scheduleFn(static_cast<Tick>(i * 10), [&] { near++; });
    std::uint64_t n = eq.runUntil(300000);
    EXPECT_EQ(n, 2000u);
    EXPECT_EQ(near, 2000);
    EXPECT_TRUE(log.empty());
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{90, 91}));
    EXPECT_EQ(eq.now(), 500000u);
}

TEST(EventQueue, RunUntilExactTickBoundaryIsInclusive)
{
    // An event at exactly the runUntil bound dispatches in that
    // call, and the clock lands on the bound, not past it.
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 10);
    eq.schedule(b, 11);
    std::uint64_t n = eq.runUntil(10);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(b.scheduled());
    // A second runUntil at the same bound is a no-op.
    EXPECT_EQ(eq.runUntil(10), 0u);
    EXPECT_EQ(eq.now(), 10u);
    eq.runUntil(11);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SameTickFifoSurvivesWheelWrap)
{
    // Two same-tick events scheduled one full wheel span apart in
    // wall progress: FIFO order among them must still hold after
    // the bucket index wraps.
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.runUntil(5000); // advance past one wheel span (4096)
    eq.schedule(a, 5100);
    eq.schedule(b, 5100);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, PerfCountsWheelAndOverflowAcrossWrap)
{
    EventQueue eq;
    EventQueuePerf perf;
    eq.setPerf(&perf);
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3), d(log, 4);
    eq.schedule(a, 10);
    eq.schedule(b, 10);     // same tick: bucket depth 2
    eq.schedule(c, 100000); // beyond the wheel span: overflow heap
    eq.schedule(d, 100010); // also overflow; lands within c's window
    EXPECT_EQ(perf.schedules, 4u);
    EXPECT_EQ(perf.overflowInserts, 2u);
    EXPECT_EQ(perf.maxOverflowEntries, 2u);
    EXPECT_GE(perf.maxBucketDepth, 2u);
    EXPECT_GE(perf.maxWheelEntries, 2u);
    std::uint64_t wheel_before = perf.wheelInserts;
    EXPECT_GE(wheel_before, 2u);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
    // When c dispatches the clock lands within kWheelSize of d, so
    // advanceTo migrates d from the overflow heap into the wheel.
    // That migration is wheel pressure and must count too.
    EXPECT_EQ(perf.wheelInserts, wheel_before + 1);
}

TEST(EventQueue, PerfCountsDeschedulesAndPoolChurn)
{
    EventQueue eq;
    EventQueuePerf perf;
    eq.setPerf(&perf);
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.schedule(a, 5);
    eq.deschedule(a);
    EXPECT_EQ(perf.deschedules, 1u);
    // Descheduling an unscheduled event is a no-op, not a count.
    eq.deschedule(a);
    EXPECT_EQ(perf.deschedules, 1u);

    int hits = 0;
    eq.scheduleFn(10, [&] { hits++; });
    EXPECT_EQ(perf.poolRefills, 1u);
    EXPECT_EQ(perf.poolHighWater, 1u);
    EXPECT_EQ(perf.poolReuses, 0u);
    eq.run();
    // The freed slot is reused: high water stays at one.
    eq.scheduleFn(20, [&] { hits++; });
    EXPECT_EQ(perf.poolReuses, 1u);
    EXPECT_EQ(perf.poolRefills, 1u);
    EXPECT_EQ(perf.poolHighWater, 1u);
    eq.run();
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, PerfDetachStopsCounting)
{
    EventQueue eq;
    EventQueuePerf perf;
    eq.setPerf(&perf);
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.schedule(a, 5);
    EXPECT_EQ(perf.schedules, 1u);
    eq.setPerf(nullptr);
    eq.schedule(a, 7);
    eq.run();
    EXPECT_EQ(perf.schedules, 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.scheduleFn(100, [] {});
    eq.run();
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_DEATH(eq.schedule(a, 50), "past");
}

} // namespace vsnoop::test
