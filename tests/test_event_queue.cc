/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace vsnoop::test
{

namespace
{

class RecordingEvent : public Event
{
  public:
    explicit RecordingEvent(std::vector<int> &log, int id)
        : log_(log), id_(id)
    {
    }

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // namespace

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(a, 30);
    eq.schedule(b, 10);
    eq.schedule(c, 20);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 3, 1}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(a, 5);
    eq.schedule(b, 5);
    eq.schedule(c, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.schedule(b, 6);
    eq.deschedule(a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.schedule(b, 10);
    eq.schedule(a, 20); // move a after b
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(a, 5);
    eq.schedule(b, 50);
    std::uint64_t n = eq.runUntil(10);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LambdaEventsFire)
{
    EventQueue eq;
    int hits = 0;
    eq.scheduleFn(7, [&] { hits++; });
    eq.scheduleFnIn(3, [&] { hits += 10; });
    eq.run();
    EXPECT_EQ(hits, 11);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleFnIn(10, chain);
    };
    eq.scheduleFn(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunLimitBoundsDispatch)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> forever = [&] {
        count++;
        eq.scheduleFnIn(1, forever);
    };
    eq.scheduleFn(0, forever);
    std::uint64_t n = eq.run(100);
    EXPECT_EQ(n, 100u);
    EXPECT_EQ(count, 100);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueue, EmptyReflectsLiveEvents)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    std::vector<int> log;
    RecordingEvent b(log, 2);
    eq.schedule(b, 1);
    EXPECT_FALSE(eq.empty());
    eq.deschedule(b);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ManyOwnedCallbacksAreReaped)
{
    EventQueue eq;
    std::uint64_t hits = 0;
    for (int i = 0; i < 5000; ++i)
        eq.scheduleFn(static_cast<Tick>(i), [&] { hits++; });
    eq.run();
    EXPECT_EQ(hits, 5000u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.scheduleFn(100, [] {});
    eq.run();
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_DEATH(eq.schedule(a, 50), "past");
}

} // namespace vsnoop::test
