/**
 * @file
 * Property-based sweeps (parameterized gtest): the system-level
 * invariants must hold across the cross product of policies,
 * relocation modes, RO policies and migration periods.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "system/sim_system.hh"

namespace vsnoop::test
{

namespace
{

SystemConfig
sweepConfig()
{
    SystemConfig cfg;
    cfg.accessesPerVcpu = 1200;
    cfg.l2.sizeBytes = 16 * 1024;
    cfg.invariantCheckPeriod = 100000;
    return cfg;
}

} // namespace

/**
 * Sweep: relocation mode x RO policy x migration period.  Every
 * combination must complete all accesses, conserve tokens (checked
 * periodically inside run()), and never exceed broadcast cost.
 */
class PolicySweep
    : public ::testing::TestWithParam<
          std::tuple<RelocationMode, RoPolicy, Tick>>
{
};

TEST_P(PolicySweep, CompletesAndStaysUnderBroadcastCost)
{
    auto [relocation, ro, period] = GetParam();
    SystemConfig cfg = sweepConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.relocation = relocation;
    cfg.vsnoop.roPolicy = ro;
    cfg.migrationPeriod = period;

    AppProfile app = findApp("canneal");
    SimSystem sys(cfg, app);
    sys.run();
    SystemResults r = sys.results();

    EXPECT_EQ(r.totalAccesses,
              static_cast<std::uint64_t>(16) * cfg.accessesPerVcpu);
    EXPECT_GT(r.transactions, 0u);
    // Snoop lookups can never exceed what TokenB would have done,
    // plus the retry overhead.
    double per_txn = static_cast<double>(r.snoopLookups) /
                     static_cast<double>(r.transactions);
    EXPECT_LE(per_txn, 16.5);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicySweep,
    ::testing::Combine(
        ::testing::Values(RelocationMode::Base, RelocationMode::Counter,
                          RelocationMode::CounterThreshold,
                          RelocationMode::CounterFlush),
        ::testing::Values(RoPolicy::Broadcast, RoPolicy::MemoryDirect,
                          RoPolicy::IntraVm, RoPolicy::FriendVm),
        ::testing::Values(Tick{0}, kTicksPerMs / 4)),
    [](const auto &info) {
        std::string name = relocationModeName(std::get<0>(info.param));
        name += "_";
        name += roPolicyName(std::get<1>(info.param));
        name += std::get<2>(info.param) == 0 ? "_pinned" : "_migrating";
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

/**
 * Sweep over applications: every catalog profile must drive the
 * full stack to completion with invariants held.
 */
class AppSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppSweep, RunsCleanlyUnderVirtualSnooping)
{
    SystemConfig cfg = sweepConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.migrationPeriod = kTicksPerMs / 2;
    SimSystem sys(cfg, findApp(GetParam()));
    sys.run();
    EXPECT_EQ(sys.results().totalAccesses,
              static_cast<std::uint64_t>(16) * cfg.accessesPerVcpu);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, AppSweep,
    ::testing::Values("cholesky", "fft", "lu", "ocean", "radix",
                      "blackscholes", "canneal", "dedup", "ferret",
                      "specjbb"));

/**
 * Filtering monotonicity: for any app, virtual snooping with pinned
 * VMs must never produce more snoop lookups than TokenB.
 */
class FilterMonotonicity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FilterMonotonicity, VsnoopNeverExceedsBroadcast)
{
    AppProfile app = findApp(GetParam());
    SystemConfig cfg = sweepConfig();

    cfg.policy = PolicyKind::TokenB;
    SimSystem base(cfg, app);
    base.run();

    cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem vs(cfg, app);
    vs.run();

    EXPECT_LT(vs.results().snoopLookups, base.results().snoopLookups);
    EXPECT_LT(vs.results().trafficByteHops,
              base.results().trafficByteHops);
}

INSTANTIATE_TEST_SUITE_P(Apps, FilterMonotonicity,
                         ::testing::Values("fft", "radix", "specjbb",
                                           "blackscholes"));

/**
 * Seed stability: the full stack is bit-deterministic per seed.
 */
class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, DifferentSeedsStillConserveAndComplete)
{
    SystemConfig cfg = sweepConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.relocation = RelocationMode::CounterThreshold;
    cfg.migrationPeriod = kTicksPerMs / 10;
    cfg.seed = GetParam();
    SimSystem sys(cfg, findApp("ferret"));
    sys.run();
    EXPECT_EQ(sys.results().totalAccesses,
              static_cast<std::uint64_t>(16) * cfg.accessesPerVcpu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99999));

} // namespace vsnoop::test
