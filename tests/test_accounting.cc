/**
 * @file
 * Cross-cutting accounting consistency: hits + misses equal
 * accesses, warmup resets behave, category counts add up, and the
 * runtime metric covers only the measurement phase.
 */

#include <gtest/gtest.h>

#include "system/sim_system.hh"

namespace vsnoop::test
{

namespace
{

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.accessesPerVcpu = 2000;
    cfg.l2.sizeBytes = 32 * 1024;
    return cfg;
}

} // namespace

TEST(Accounting, AccessCategoriesSumToTotal)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("ferret"));
    sys.run();
    SystemResults r = sys.results();
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kNumAccessCategories; ++c)
        sum += r.accessesByCategory[c];
    EXPECT_EQ(sum, r.totalAccesses);
}

TEST(Accounting, MissCategoriesSumToTotalMisses)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("canneal"));
    sys.run();
    SystemResults r = sys.results();
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kNumAccessCategories; ++c)
        sum += r.missesByCategory[c];
    EXPECT_EQ(sum, r.totalMisses);
    EXPECT_LE(r.totalMisses, r.totalAccesses);
}

TEST(Accounting, TransactionsMatchDriverMisses)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("fft"));
    sys.run();
    SystemResults r = sys.results();
    // Every driver-observed miss is a coherence transaction and
    // vice versa.
    EXPECT_EQ(r.transactions, r.totalMisses);
}

TEST(Accounting, DataSourcesSumToTransactions)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("specjbb"));
    sys.run();
    SystemResults r = sys.results();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumDataSources; ++i)
        sum += r.dataFrom[i];
    EXPECT_EQ(sum, r.transactions);
}

TEST(Accounting, WarmupResetsStatistics)
{
    SystemConfig cfg = baseConfig();
    cfg.warmupAccessesPerVcpu = 1000;
    SimSystem sys(cfg, findApp("ferret"));
    sys.run();
    SystemResults r = sys.results();
    // Only measurement-phase accesses are reported.
    EXPECT_EQ(r.totalAccesses,
              static_cast<std::uint64_t>(16) * cfg.accessesPerVcpu);
    EXPECT_GT(r.runtime, 0u);
}

TEST(Accounting, WarmupLowersColdMissShare)
{
    // blackscholes fits in a 256 KB L2: after warmup its miss
    // ratio should collapse compared to a cold run.
    AppProfile app = findApp("blackscholes");
    SystemConfig cold = baseConfig();
    cold.l2.sizeBytes = 256 * 1024;
    SimSystem cold_sys(cold, app);
    cold_sys.run();

    SystemConfig warm = cold;
    warm.warmupAccessesPerVcpu = 6000;
    SimSystem warm_sys(warm, app);
    warm_sys.run();

    double cold_ratio =
        static_cast<double>(cold_sys.results().totalMisses) /
        static_cast<double>(cold_sys.results().totalAccesses);
    double warm_ratio =
        static_cast<double>(warm_sys.results().totalMisses) /
        static_cast<double>(warm_sys.results().totalAccesses);
    EXPECT_LT(warm_ratio, cold_ratio * 0.5);
}

TEST(Accounting, WarmupRuntimeExcludesWarmupPhase)
{
    AppProfile app = findApp("ferret");
    SystemConfig no_warm = baseConfig();
    SimSystem a(no_warm, app);
    a.run();

    SystemConfig with_warm = baseConfig();
    with_warm.warmupAccessesPerVcpu = 2000;
    SimSystem b(with_warm, app);
    b.run();

    // Despite doing 2x the total work, the reported runtime covers
    // just the measurement phase and should be comparable.
    EXPECT_LT(b.results().runtime, a.results().runtime * 3 / 2);
}

TEST(Accounting, HitsPlusMissesEqualAccesses)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("lu"));
    sys.run();
    const CoherenceStats &cs = sys.coherence().stats;
    SystemResults r = sys.results();
    EXPECT_EQ(cs.l2Hits.value() + cs.transactions.value(),
              r.totalAccesses);
}

TEST(Accounting, SnoopDeliveriesMatchControllerReceipts)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("radix"));
    sys.run();
    std::uint64_t received = 0;
    for (CoreId c = 0; c < 16; ++c)
        received += sys.coherence().controller(c).snoopsReceived.value();
    EXPECT_EQ(received, sys.coherence().stats.snoopsDelivered.value());
}

TEST(Accounting, PeriodicContentScanKeepsRunning)
{
    SystemConfig cfg = baseConfig();
    cfg.contentScanPeriod = 50000;
    AppProfile app = findApp("canneal");
    app.contentWriteFraction = 0.001; // generate COW churn
    SimSystem sys(cfg, app);
    sys.run();
    // The run completes and sharing remains active.
    EXPECT_EQ(sys.results().totalAccesses,
              static_cast<std::uint64_t>(16) * cfg.accessesPerVcpu);
    EXPECT_GT(sys.hypervisor().cowBreaks.value(), 0u);
}

TEST(Accounting, LinkLedgerConservesTrafficByteHops)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("ferret"));
    sys.run();
    SystemResults r = sys.results();
    // The per-link ledger (including loopback pseudo-links) must sum
    // to the aggregate Table IV traffic metric exactly.
    ASSERT_FALSE(r.links.empty());
    std::uint64_t per_link = 0;
    for (const LinkStat &l : r.links)
        per_link += l.totalByteHops();
    EXPECT_EQ(per_link, r.trafficByteHops);
}

TEST(Accounting, LatencyHistogramsPartitionTransactions)
{
    SystemConfig cfg = baseConfig();
    SimSystem sys(cfg, findApp("canneal"));
    sys.run();
    SystemResults r = sys.results();
    // Every completed transaction is sampled exactly once into the
    // aggregate histogram, once into first-try xor retried, and once
    // into its filter-reason bucket.
    EXPECT_EQ(r.latency.count(), r.transactions);
    EXPECT_EQ(r.latencyFirstTry.count() + r.latencyRetried.count(),
              r.latency.count());
    std::uint64_t by_reason = 0;
    for (std::size_t i = 0; i < kNumFilterReasons; ++i)
        by_reason += r.latencyByReason[i].count();
    EXPECT_EQ(by_reason, r.latency.count());
    EXPECT_EQ(r.latency.sum(),
              r.latencyFirstTry.sum() + r.latencyRetried.sum());
    EXPECT_GT(r.latency.max(), 0u);
}

namespace
{

/** Fraction of non-loopback Request byte-hops on intra-VM-row links. */
double
intraRowRequestShare(const SystemResults &r)
{
    auto req = static_cast<std::size_t>(MsgClass::Request);
    std::uint64_t intra = 0, cross = 0;
    for (const LinkStat &l : r.links) {
        if (l.from == l.to)
            continue;
        (l.from / 4 == l.to / 4 ? intra : cross) += l.byteHops[req];
    }
    std::uint64_t total = intra + cross;
    return total ? static_cast<double>(intra) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace

TEST(Accounting, VsnoopConcentratesRequestTrafficInsideVmRows)
{
    // Default placement pins VM k to mesh row k, so VirtualSnoop's
    // intra-VM multicast should keep Request traffic inside rows
    // while TokenB's broadcast spreads it evenly (the paper's
    // spatial-filtering effect, visible per link).
    SystemConfig cfg = baseConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem vsnoop(cfg, findApp("ferret"));
    vsnoop.run();
    double vsnoop_share = intraRowRequestShare(vsnoop.results());

    cfg.policy = PolicyKind::TokenB;
    SimSystem tokenb(cfg, findApp("ferret"));
    tokenb.run();
    double tokenb_share = intraRowRequestShare(tokenb.results());

    // Measured ~0.77 vs ~0.50; assert with slack.
    EXPECT_GT(vsnoop_share, tokenb_share + 0.1);
    EXPECT_GT(vsnoop_share, 0.6);
    EXPECT_LT(tokenb_share, 0.6);
}

} // namespace vsnoop::test
