/**
 * @file
 * Unit tests for the set-associative tag store.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace vsnoop::test
{

namespace
{

class CountingObserver : public CacheObserver
{
  public:
    void
    onLineInserted(VmId vm, PageType type) override
    {
        inserts++;
        lastVm = vm;
        lastType = type;
    }

    void
    onLineRemoved(VmId vm, PageType type) override
    {
        removes++;
        lastVm = vm;
        lastType = type;
    }

    int inserts = 0;
    int removes = 0;
    VmId lastVm = kInvalidVm;
    PageType lastType = PageType::VmPrivate;
};

CacheLine &
fill(Cache &cache, std::uint64_t addr, VmId vm = 0,
     PageType type = PageType::VmPrivate, std::uint32_t tokens = 1,
     bool owner = false, bool dirty = false)
{
    CacheLine &victim = cache.victimFor(HostAddr(addr));
    if (victim.valid)
        cache.remove(victim);
    return cache.install(victim, HostAddr(addr), vm, type, tokens, owner,
                         dirty);
}

} // namespace

TEST(Cache, GeometryDerivation)
{
    Cache cache(16 * 1024, 4);
    EXPECT_EQ(cache.capacityLines(), 256u);
    EXPECT_EQ(cache.numWays(), 4u);
    EXPECT_EQ(cache.numSets(), 64u);
}

TEST(Cache, InstallAndFind)
{
    Cache cache(4 * 1024, 4);
    fill(cache, 0x1000, 3, PageType::RwShared, 5, true, true);
    CacheLine *line = cache.find(HostAddr(0x1010)); // same line
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->addr.raw(), 0x1000u);
    EXPECT_EQ(line->vm, 3);
    EXPECT_EQ(line->tokens, 5u);
    EXPECT_TRUE(line->owner);
    EXPECT_TRUE(line->dirty);
    EXPECT_EQ(cache.find(HostAddr(0x2000)), nullptr);
}

TEST(Cache, VictimPrefersInvalidWays)
{
    Cache cache(4 * 1024, 4);
    fill(cache, 0x0);
    CacheLine &victim = cache.victimFor(HostAddr(0x0));
    EXPECT_FALSE(victim.valid);
}

TEST(Cache, LruEvictsOldest)
{
    Cache cache(1024, 2); // 8 sets, 2 ways
    std::uint64_t set_stride = 8 * 64;
    fill(cache, 0 * set_stride);
    fill(cache, 1 * set_stride);
    // Touch the first line so the second becomes LRU.
    cache.touch(*cache.find(HostAddr(0)));
    CacheLine &victim = cache.victimFor(HostAddr(2 * set_stride));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr.raw(), 1 * set_stride);
}

TEST(Cache, PinnedLinesAreNotVictims)
{
    Cache cache(1024, 2);
    std::uint64_t set_stride = 8 * 64;
    CacheLine &a = fill(cache, 0 * set_stride);
    fill(cache, 1 * set_stride);
    a.pinned = true;
    cache.touch(*cache.find(HostAddr(1 * set_stride)));
    // a is older but pinned; the victim must be the other way.
    CacheLine &victim = cache.victimFor(HostAddr(2 * set_stride));
    EXPECT_EQ(victim.addr.raw(), 1 * set_stride);
}

TEST(Cache, RemoveClearsState)
{
    Cache cache(1024, 2);
    CacheLine &line = fill(cache, 0x40, 2, PageType::RoShared, 3, true,
                           true);
    line.providerVms = 0x4;
    line.pinned = true;
    cache.remove(line);
    EXPECT_FALSE(line.valid);
    EXPECT_EQ(line.tokens, 0u);
    EXPECT_FALSE(line.owner);
    EXPECT_FALSE(line.dirty);
    EXPECT_FALSE(line.pinned);
    EXPECT_EQ(line.providerVms, 0u);
    EXPECT_EQ(cache.find(HostAddr(0x40)), nullptr);
}

TEST(Cache, ObserverSeesInsertsAndRemoves)
{
    Cache cache(1024, 2);
    CountingObserver obs;
    cache.setObserver(&obs);
    CacheLine &line = fill(cache, 0x80, 5, PageType::VmPrivate);
    EXPECT_EQ(obs.inserts, 1);
    EXPECT_EQ(obs.lastVm, 5);
    cache.remove(line);
    EXPECT_EQ(obs.removes, 1);
}

TEST(Cache, LinesForVmCounts)
{
    Cache cache(4 * 1024, 4);
    fill(cache, 0x000, 1);
    fill(cache, 0x040, 1);
    fill(cache, 0x080, 2);
    EXPECT_EQ(cache.linesForVm(1), 2u);
    EXPECT_EQ(cache.linesForVm(2), 1u);
    EXPECT_EQ(cache.linesForVm(3), 0u);
    EXPECT_EQ(cache.validLines(), 3u);
}

TEST(Cache, ForEachAndCollect)
{
    Cache cache(4 * 1024, 4);
    fill(cache, 0x000, 1);
    fill(cache, 0x040, 2);
    int seen = 0;
    cache.forEachLine([&](const CacheLine &) { seen++; });
    EXPECT_EQ(seen, 2);
    auto vm2 = cache.collectLines(
        [](const CacheLine &l) { return l.vm == 2; });
    ASSERT_EQ(vm2.size(), 1u);
    EXPECT_EQ(vm2[0]->addr.raw(), 0x40u);
}

TEST(Cache, RandomPolicySelectsUnpinned)
{
    Cache cache(1024, 2, ReplacementPolicy::Random);
    std::uint64_t set_stride = 8 * 64;
    CacheLine &a = fill(cache, 0 * set_stride);
    fill(cache, 1 * set_stride);
    a.pinned = true;
    for (int i = 0; i < 20; ++i) {
        CacheLine &victim = cache.victimFor(HostAddr(2 * set_stride));
        EXPECT_FALSE(victim.pinned);
    }
}

TEST(CacheDeath, InstallRequiresTokens)
{
    Cache cache(1024, 2);
    CacheLine &victim = cache.victimFor(HostAddr(0));
    EXPECT_DEATH(cache.install(victim, HostAddr(0), 0,
                               PageType::VmPrivate, 0, false, false),
                 "token");
}

TEST(CacheDeath, InstallIntoOccupiedSlotPanics)
{
    Cache cache(1024, 2);
    CacheLine &line = fill(cache, 0x40);
    EXPECT_DEATH(cache.install(line, HostAddr(0x80), 0,
                               PageType::VmPrivate, 1, false, false),
                 "occupied");
}

} // namespace vsnoop::test
