/**
 * @file
 * Unit tests for the per-VM page table.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "virt/page_table.hh"

namespace vsnoop::test
{

TEST(PageTable, LookupMissIsNullopt)
{
    PageTable pt;
    EXPECT_FALSE(pt.lookup(42).has_value());
    EXPECT_EQ(pt.size(), 0u);
}

TEST(PageTable, MapAndLookup)
{
    PageTable pt;
    pt.map(42, 1000, PageType::VmPrivate);
    auto entry = pt.lookup(42);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->hostPage, 1000u);
    EXPECT_EQ(entry->type, PageType::VmPrivate);
}

TEST(PageTable, RemapReplaces)
{
    PageTable pt;
    pt.map(42, 1000, PageType::VmPrivate);
    pt.map(42, 2000, PageType::RoShared);
    auto entry = pt.lookup(42);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->hostPage, 2000u);
    EXPECT_EQ(entry->type, PageType::RoShared);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, SetTypeKeepsHostPage)
{
    PageTable pt;
    pt.map(7, 500, PageType::VmPrivate);
    pt.setType(7, PageType::RoShared);
    auto entry = pt.lookup(7);
    EXPECT_EQ(entry->hostPage, 500u);
    EXPECT_EQ(entry->type, PageType::RoShared);
}

TEST(PageTable, UnmapRemoves)
{
    PageTable pt;
    pt.map(7, 500, PageType::VmPrivate);
    pt.unmap(7);
    EXPECT_FALSE(pt.lookup(7).has_value());
}

TEST(PageTable, GenerationBumpsOnEveryMutation)
{
    PageTable pt;
    std::uint64_t g0 = pt.generation();
    pt.map(1, 10, PageType::VmPrivate);
    std::uint64_t g1 = pt.generation();
    EXPECT_GT(g1, g0);
    pt.setType(1, PageType::RwShared);
    std::uint64_t g2 = pt.generation();
    EXPECT_GT(g2, g1);
    pt.unmap(1);
    EXPECT_GT(pt.generation(), g2);
}

TEST(PageTable, ForEachVisitsAll)
{
    PageTable pt;
    pt.map(1, 10, PageType::VmPrivate);
    pt.map(2, 20, PageType::RoShared);
    int count = 0;
    std::uint64_t host_sum = 0;
    pt.forEach([&](std::uint64_t, const PageTableEntry &e) {
        count++;
        host_sum += e.hostPage;
    });
    EXPECT_EQ(count, 2);
    EXPECT_EQ(host_sum, 30u);
}

TEST(PageTable, ForEachEmitsAscendingGuestPageOrder)
{
    // Insertion order deliberately scrambled; emission must sort.
    PageTable pt;
    const std::uint64_t keys[] = {900, 3, 512, 77, 1, 4096};
    for (std::uint64_t k : keys)
        pt.map(k, k * 10, PageType::VmPrivate);
    std::vector<std::uint64_t> seen;
    pt.forEach([&](std::uint64_t guest, const PageTableEntry &e) {
        EXPECT_EQ(e.hostPage, guest * 10);
        seen.push_back(guest);
    });
    std::vector<std::uint64_t> sorted = seen;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(seen, sorted);
    EXPECT_EQ(seen.size(), 6u);
}

TEST(PageTable, ForEachOrderIndependentOfTableHistory)
{
    // Two tables with identical final mappings but different
    // capacities and probe layouts (one grown through hundreds of
    // inserts and unmaps, one built directly) must emit the same
    // sequence: consumers (the pagemon census, lifecycle replays)
    // rely on iteration being a function of the mapping alone.
    PageTable grown;
    for (std::uint64_t k = 0; k < 400; ++k)
        grown.map(k, k + 1, PageType::VmPrivate);
    for (std::uint64_t k = 0; k < 400; ++k) {
        if (k % 7 != 0)
            grown.unmap(k);
    }
    PageTable direct;
    for (std::uint64_t k = 0; k < 400; k += 7)
        direct.map(k, k + 1, PageType::VmPrivate);

    std::vector<std::uint64_t> from_grown, from_direct;
    grown.forEach([&](std::uint64_t guest, const PageTableEntry &) {
        from_grown.push_back(guest);
    });
    direct.forEach([&](std::uint64_t guest, const PageTableEntry &) {
        from_direct.push_back(guest);
    });
    EXPECT_EQ(from_grown, from_direct);
    ASSERT_FALSE(from_grown.empty());
    EXPECT_TRUE(std::is_sorted(from_grown.begin(), from_grown.end()));
}

TEST(PageTableDeath, SetTypeOnUnmappedPanics)
{
    PageTable pt;
    EXPECT_DEATH(pt.setType(3, PageType::RoShared), "unmapped");
}

} // namespace vsnoop::test
