/**
 * @file
 * Unit tests for the per-VM page table.
 */

#include <gtest/gtest.h>

#include "virt/page_table.hh"

namespace vsnoop::test
{

TEST(PageTable, LookupMissIsNullopt)
{
    PageTable pt;
    EXPECT_FALSE(pt.lookup(42).has_value());
    EXPECT_EQ(pt.size(), 0u);
}

TEST(PageTable, MapAndLookup)
{
    PageTable pt;
    pt.map(42, 1000, PageType::VmPrivate);
    auto entry = pt.lookup(42);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->hostPage, 1000u);
    EXPECT_EQ(entry->type, PageType::VmPrivate);
}

TEST(PageTable, RemapReplaces)
{
    PageTable pt;
    pt.map(42, 1000, PageType::VmPrivate);
    pt.map(42, 2000, PageType::RoShared);
    auto entry = pt.lookup(42);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->hostPage, 2000u);
    EXPECT_EQ(entry->type, PageType::RoShared);
    EXPECT_EQ(pt.size(), 1u);
}

TEST(PageTable, SetTypeKeepsHostPage)
{
    PageTable pt;
    pt.map(7, 500, PageType::VmPrivate);
    pt.setType(7, PageType::RoShared);
    auto entry = pt.lookup(7);
    EXPECT_EQ(entry->hostPage, 500u);
    EXPECT_EQ(entry->type, PageType::RoShared);
}

TEST(PageTable, UnmapRemoves)
{
    PageTable pt;
    pt.map(7, 500, PageType::VmPrivate);
    pt.unmap(7);
    EXPECT_FALSE(pt.lookup(7).has_value());
}

TEST(PageTable, GenerationBumpsOnEveryMutation)
{
    PageTable pt;
    std::uint64_t g0 = pt.generation();
    pt.map(1, 10, PageType::VmPrivate);
    std::uint64_t g1 = pt.generation();
    EXPECT_GT(g1, g0);
    pt.setType(1, PageType::RwShared);
    std::uint64_t g2 = pt.generation();
    EXPECT_GT(g2, g1);
    pt.unmap(1);
    EXPECT_GT(pt.generation(), g2);
}

TEST(PageTable, ForEachVisitsAll)
{
    PageTable pt;
    pt.map(1, 10, PageType::VmPrivate);
    pt.map(2, 20, PageType::RoShared);
    int count = 0;
    std::uint64_t host_sum = 0;
    pt.forEach([&](std::uint64_t, const PageTableEntry &e) {
        count++;
        host_sum += e.hostPage;
    });
    EXPECT_EQ(count, 2);
    EXPECT_EQ(host_sum, 30u);
}

TEST(PageTableDeath, SetTypeOnUnmappedPanics)
{
    PageTable pt;
    EXPECT_DEATH(pt.setType(3, PageType::RoShared), "unmapped");
}

} // namespace vsnoop::test
