/**
 * @file
 * Unit tests for the credit-scheduler simulation (the Figure 3 /
 * Table I substrate).
 */

#include <gtest/gtest.h>

#include "virt/sched_sim.hh"

namespace vsnoop::test
{

namespace
{

SchedProfile
computeBound()
{
    SchedProfile p;
    p.meanRunMs = 1000.0;
    p.meanBlockMs = 5.0;
    p.dom0WakeupsPerSec = 1.0;
    p.wakeMigrateProb = 0.8;
    p.workMsPerVcpu = 500.0;
    return p;
}

SchedProfile
pipelineApp()
{
    SchedProfile p;
    p.meanRunMs = 10.0;
    p.meanBlockMs = 3.0;
    p.dom0WakeupsPerSec = 30.0;
    p.wakeMigrateProb = 0.8;
    p.workMsPerVcpu = 500.0;
    return p;
}

} // namespace

TEST(SchedulerSim, CompletesAndReportsFinishTimes)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    SchedulerSim sim(cfg, computeBound(), 2, 4);
    SchedResult r = sim.run();
    EXPECT_FALSE(r.timedOut);
    ASSERT_EQ(r.vmFinishMs.size(), 2u);
    for (double f : r.vmFinishMs)
        EXPECT_GT(f, 0.0);
    EXPECT_GE(r.makespanMs, r.vmFinishMs[0]);
}

TEST(SchedulerSim, UndercommittedFinishesNearWorkTime)
{
    // 8 vCPUs on 8 cores, compute-bound: completion should be close
    // to the pure work time (500 ms) plus blocking overhead.
    SchedConfig cfg;
    cfg.numCores = 8;
    SchedulerSim sim(cfg, computeBound(), 2, 4);
    SchedResult r = sim.run();
    EXPECT_LT(r.makespanMs, 900.0);
    EXPECT_GE(r.makespanMs, 500.0);
}

TEST(SchedulerSim, OvercommitTakesProportionallyLonger)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    SchedulerSim under(cfg, computeBound(), 2, 4);
    SchedulerSim over(cfg, computeBound(), 4, 4);
    double t_under = under.run().makespanMs;
    double t_over = over.run().makespanMs;
    // Twice the vCPUs on the same cores: roughly twice the time.
    EXPECT_GT(t_over, 1.5 * t_under);
}

TEST(SchedulerSim, PinnedWinsWhenUndercommitted)
{
    // Figure 3(a): with one core per vCPU, pinning avoids cold
    // caches and is at least as fast as full migration.  Single
    // runs are noisy (exponential phase draws), so compare means
    // over several seeds.
    SchedProfile app = pipelineApp();
    double sum_pinned = 0, sum_migr = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SchedConfig cfg;
        cfg.numCores = 8;
        cfg.seed = seed;
        cfg.migrationColdMs = 3.0;
        cfg.coldSpeed = 0.4;
        cfg.pinned = true;
        sum_pinned += SchedulerSim(cfg, app, 2, 4).run().makespanMs;
        cfg.pinned = false;
        sum_migr += SchedulerSim(cfg, app, 2, 4).run().makespanMs;
    }
    EXPECT_LE(sum_pinned, sum_migr * 1.02);
}

TEST(SchedulerSim, MigrationWinsWhenOvercommitted)
{
    // Figure 3(b): with 16 vCPUs on 8 cores, pinning strands
    // runnable vCPUs behind blocked ones while other cores idle.
    SchedConfig pinned_cfg;
    pinned_cfg.numCores = 8;
    pinned_cfg.pinned = true;
    SchedConfig migrate_cfg = pinned_cfg;
    migrate_cfg.pinned = false;

    SchedProfile app = pipelineApp();
    double t_pinned = SchedulerSim(pinned_cfg, app, 4, 4).run().makespanMs;
    double t_migr =
        SchedulerSim(migrate_cfg, app, 4, 4).run().makespanMs;
    EXPECT_LT(t_migr, t_pinned);
}

TEST(SchedulerSim, OvercommitMigratesMoreOften)
{
    // Table I: overcommitted relocation periods are much shorter.
    SchedConfig cfg;
    cfg.numCores = 8;
    SchedProfile app = pipelineApp();
    SchedResult under = SchedulerSim(cfg, app, 2, 4).run();
    SchedResult over = SchedulerSim(cfg, app, 4, 4).run();
    EXPECT_GT(under.avgRelocationPeriodMs, over.avgRelocationPeriodMs);
}

TEST(SchedulerSim, ComputeBoundMigratesRarely)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    SchedResult compute = SchedulerSim(cfg, computeBound(), 2, 4).run();
    SchedResult pipeline = SchedulerSim(cfg, pipelineApp(), 2, 4).run();
    EXPECT_GT(compute.avgRelocationPeriodMs,
              5.0 * pipeline.avgRelocationPeriodMs);
}

TEST(SchedulerSim, PinnedModeNeverMigrates)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    cfg.pinned = true;
    SchedResult r = SchedulerSim(cfg, pipelineApp(), 2, 4).run();
    EXPECT_EQ(r.migrations, 0u);
}

TEST(SchedulerSim, DeterministicPerSeed)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    double a = SchedulerSim(cfg, pipelineApp(), 2, 4).run().makespanMs;
    double b = SchedulerSim(cfg, pipelineApp(), 2, 4).run().makespanMs;
    EXPECT_DOUBLE_EQ(a, b);
    cfg.seed = 77;
    double c = SchedulerSim(cfg, pipelineApp(), 2, 4).run().makespanMs;
    EXPECT_NE(a, c);
}

TEST(SchedulerSim, UtilizationIsSane)
{
    SchedConfig cfg;
    cfg.numCores = 8;
    SchedResult r = SchedulerSim(cfg, computeBound(), 4, 4).run();
    EXPECT_GT(r.coreUtilization, 0.5);
    EXPECT_LE(r.coreUtilization, 1.0);
}

TEST(SchedulerSim, TimeoutPathReported)
{
    SchedConfig cfg;
    cfg.numCores = 1;
    cfg.maxSimMs = 50.0;
    SchedProfile p = computeBound();
    p.workMsPerVcpu = 100000.0;
    SchedResult r = SchedulerSim(cfg, p, 1, 1).run();
    EXPECT_TRUE(r.timedOut);
}

} // namespace vsnoop::test
