/**
 * @file
 * End-to-end tests for the content-shared (RO-shared) request
 * policies of Section VI-B: broadcast, memory-direct, intra-VM and
 * friend-VM.
 */

#include <gtest/gtest.h>

#include "vsnoop_harness.hh"

namespace vsnoop::test
{

namespace
{
constexpr std::uint64_t kRoLine = 0x700000;
} // namespace

TEST(RoPolicies, MemoryDirectAlwaysFetchesFromMemory)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::MemoryDirect;
    VsnoopHarness h(cfg);
    // Prime a copy in VM0.
    h.access(0, kRoLine, false, 0, PageType::RoShared);
    auto before = h.system->stats.snoopsDelivered.value();
    // A read from the same VM still goes memory-direct: no core
    // snoops at all.
    auto outcome = h.access(1, kRoLine, false, 0, PageType::RoShared);
    EXPECT_EQ(outcome.source, DataSource::Memory);
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), before);
}

TEST(RoPolicies, IntraVmServesCacheToCache)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::IntraVm;
    VsnoopHarness h(cfg);
    h.access(0, kRoLine, false, 0, PageType::RoShared);
    auto outcome = h.access(1, kRoLine, false, 0, PageType::RoShared);
    EXPECT_EQ(outcome.source, DataSource::CacheIntraVm);
}

TEST(RoPolicies, IntraVmDoesNotSeeOtherVmsCopies)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::IntraVm;
    VsnoopHarness h(cfg);
    // VM2 (cores 8-11) holds a copy.
    h.access(8, kRoLine, false, 2, PageType::RoShared);
    // VM0 reads: its snoops stay within VM0's map, so the data can
    // only come from memory.
    auto outcome = h.access(0, kRoLine, false, 0, PageType::RoShared);
    EXPECT_EQ(outcome.source, DataSource::Memory);
}

TEST(RoPolicies, FriendVmFindsFriendCopy)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::FriendVm;
    VsnoopHarness h(cfg);
    // VM1 (friend of VM0, cores 4-7) holds the only cached copy.
    h.access(4, kRoLine, false, 1, PageType::RoShared);
    auto outcome = h.access(0, kRoLine, false, 0, PageType::RoShared);
    EXPECT_EQ(outcome.source, DataSource::CacheFriendVm);
}

TEST(RoPolicies, FriendVmMissesNonFriendCopies)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::FriendVm;
    VsnoopHarness h(cfg);
    // VM2 is not VM0's friend.
    h.access(8, kRoLine, false, 2, PageType::RoShared);
    auto outcome = h.access(0, kRoLine, false, 0, PageType::RoShared);
    EXPECT_EQ(outcome.source, DataSource::Memory);
}

TEST(RoPolicies, SnoopCostOrdering)
{
    // memory-direct < intra-VM < friend-VM < broadcast, in snoop
    // lookups for the same access pattern (Figure 10's ordering,
    // modulo broadcast).
    auto run = [](RoPolicy ro) {
        VsnoopConfig cfg;
        cfg.roPolicy = ro;
        VsnoopHarness h(cfg);
        for (CoreId c = 0; c < 16; ++c) {
            h.access(c, kRoLine + (c / 4) * 0 /* same line */, false,
                     static_cast<VmId>(c / 4), PageType::RoShared);
        }
        return h.system->stats.snoopLookups.value();
    };
    auto direct = run(RoPolicy::MemoryDirect);
    auto intra = run(RoPolicy::IntraVm);
    auto friendly = run(RoPolicy::FriendVm);
    auto bcast = run(RoPolicy::Broadcast);
    EXPECT_LT(direct, intra);
    EXPECT_LT(intra, friendly);
    EXPECT_LT(friendly, bcast);
}

TEST(RoPolicies, ProviderChainWithinVm)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::IntraVm;
    VsnoopHarness h(cfg);
    // All four VM0 cores read the line in turn: the first becomes
    // the provider; later readers hit cache-to-cache while the
    // provider's token bundle lasts.
    h.access(0, kRoLine, false, 0, PageType::RoShared);
    auto second = h.access(1, kRoLine, false, 0, PageType::RoShared);
    auto third = h.access(2, kRoLine, false, 0, PageType::RoShared);
    EXPECT_EQ(second.source, DataSource::CacheIntraVm);
    EXPECT_EQ(third.source, DataSource::CacheIntraVm);

    const CacheLine *provider = h.line(0, kRoLine);
    ASSERT_NE(provider, nullptr);
    EXPECT_TRUE(provider->providerVms & 1u);
}

TEST(RoPolicies, TokenBundleExhaustionFallsBackToMemory)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::IntraVm;
    VsnoopHarness h(cfg);
    // Provider takes a 4-token bundle; two intra-VM readers drain
    // it to 2, then 1; the fourth reader finds no sparable token at
    // the provider and completes via memory.
    h.access(0, kRoLine, false, 0, PageType::RoShared);
    h.access(1, kRoLine, false, 0, PageType::RoShared);
    h.access(2, kRoLine, false, 0, PageType::RoShared);
    auto fourth = h.access(3, kRoLine, false, 0, PageType::RoShared);
    EXPECT_TRUE(fourth.fired);
    // All four cores of VM0 now hold the line.
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_NE(h.line(c, kRoLine), nullptr);
}

TEST(RoPolicies, EveryVmGetsItsOwnProvider)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::IntraVm;
    VsnoopHarness h(cfg);
    for (VmId vm = 0; vm < 4; ++vm)
        h.access(static_cast<CoreId>(vm * 4), kRoLine, false, vm,
                 PageType::RoShared);
    for (VmId vm = 0; vm < 4; ++vm) {
        const CacheLine *line =
            h.line(static_cast<CoreId>(vm * 4), kRoLine);
        ASSERT_NE(line, nullptr) << "vm " << vm;
        EXPECT_TRUE(line->providerVms & (1u << vm)) << "vm " << vm;
    }
}

TEST(RoPolicies, MemoryDirectRecoversWhenMemoryHasNoTokens)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::MemoryDirect;
    VsnoopHarness h(cfg);
    for (VmId vm = 0; vm < 4; ++vm)
        h.access(static_cast<CoreId>(vm * 4), kRoLine, false, vm,
                 PageType::RoShared);
    // Memory may be out of tokens now; the next reader must still
    // complete (via the attempt-2 broadcast fallback).
    auto outcome = h.access(1, kRoLine, false, 0, PageType::RoShared);
    EXPECT_TRUE(outcome.fired);
}

} // namespace vsnoop::test
