/**
 * @file
 * Unit tests for the idealized region filter comparison baseline.
 */

#include <gtest/gtest.h>

#include "coherence/region_filter.hh"
#include "coherence_harness.hh"

namespace vsnoop::test
{

namespace
{

/** Harness with the region oracle attached. */
class RegionHarness : public CoherenceHarness
{
  public:
    explicit RegionHarness(std::uint64_t region_bytes = 1024)
        : CoherenceHarness(std::make_unique<IdealRegionFilterPolicy>(
              16, region_bytes))
    {
        regionPolicy().attach(*system);
    }

    IdealRegionFilterPolicy &
    regionPolicy()
    {
        return static_cast<IdealRegionFilterPolicy &>(*policy_);
    }
};

} // namespace

TEST(RegionFilter, UncachedRegionGoesMemoryDirect)
{
    RegionHarness h;
    auto before = h.system->stats.snoopsDelivered.value();
    auto outcome = h.access(0, 0x500000, false, 0);
    EXPECT_TRUE(outcome.fired);
    EXPECT_EQ(outcome.source, DataSource::Memory);
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), before);
    EXPECT_EQ(h.regionPolicy().memoryDirect.value(), 1u);
}

TEST(RegionFilter, CachedRegionMulticastsToExactSharers)
{
    RegionHarness h;
    h.access(5, 0x500000, true, 1); // core 5 holds the region
    auto before = h.system->stats.snoopsDelivered.value();
    auto outcome = h.access(0, 0x500000, false, 0);
    EXPECT_TRUE(outcome.fired);
    EXPECT_EQ(outcome.source, DataSource::CacheOtherVm);
    // Exactly one snoop: the oracle knew core 5 was the only sharer.
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), before + 1);
    EXPECT_EQ(h.regionPolicy().exactMulticast.value(), 1u);
}

TEST(RegionFilter, RegionGranularityCapturesNeighbours)
{
    RegionHarness h(1024); // 16-line regions
    // Core 5 caches one line; a request for a DIFFERENT line in the
    // same 1 KB region must still snoop core 5 (region-level
    // conservatism), even though the line itself is uncached.
    h.access(5, 0x500000, false, 1);
    auto before = h.system->stats.snoopsDelivered.value();
    h.access(0, 0x500040, false, 0); // same region, next line
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), before + 1);
}

TEST(RegionFilter, SmallRegionsDoNotCrossRegionBoundary)
{
    RegionHarness h(64); // line-sized regions: exact line tracking
    h.access(5, 0x500000, false, 1);
    auto before = h.system->stats.snoopsDelivered.value();
    h.access(0, 0x500040, false, 0); // different region now
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), before);
}

TEST(RegionFilter, WriteCollectsAllTokensViaExactSet)
{
    RegionHarness h;
    h.access(3, 0x500000, false, 1);
    h.access(7, 0x500000, false, 2);
    auto outcome = h.access(0, 0x500000, true, 0);
    EXPECT_TRUE(outcome.fired);
    const CacheLine *line = h.line(0, 0x500000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, 16u);
    EXPECT_EQ(h.line(3, 0x500000), nullptr);
    EXPECT_EQ(h.line(7, 0x500000), nullptr);
}

TEST(RegionFilter, FiltersFarBelowBroadcast)
{
    RegionHarness h;
    // Sixteen cores touch disjoint regions: every miss should be
    // memory-direct after the first.
    for (CoreId c = 0; c < 16; ++c) {
        for (int i = 0; i < 4; ++i) {
            h.access(c, 0x600000 + c * 0x10000 + i * 64ull, false,
                     static_cast<VmId>(c / 4));
        }
    }
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), 0u);
    EXPECT_EQ(h.regionPolicy().memoryDirect.value(), 64u);
}

TEST(RegionFilterDeath, MisalignedRegionPanics)
{
    EXPECT_DEATH(IdealRegionFilterPolicy(16, 100), "whole number");
}

} // namespace vsnoop::test
