/**
 * @file
 * Unit tests for the 2D mesh and the ideal crossbar.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace vsnoop::test
{

namespace
{
MeshConfig
defaultConfig()
{
    return MeshConfig{}; // 4x4, 16B links, 4-cycle routers
}
} // namespace

TEST(Mesh, HopCountIsManhattan)
{
    Mesh mesh(defaultConfig());
    EXPECT_EQ(mesh.hopCount(0, 0), 0u);
    EXPECT_EQ(mesh.hopCount(0, 3), 3u);   // same row
    EXPECT_EQ(mesh.hopCount(0, 12), 3u);  // same column
    EXPECT_EQ(mesh.hopCount(0, 15), 6u);  // corner to corner
    EXPECT_EQ(mesh.hopCount(5, 10), 2u);
    EXPECT_EQ(mesh.hopCount(10, 5), 2u);
}

TEST(Mesh, UnloadedLatencyFormula)
{
    Mesh mesh(defaultConfig());
    // 1 hop, 1 flit: pipeline(4) + link(1) = 5.
    EXPECT_EQ(mesh.unloadedLatency(0, 1, 8), 5u);
    // 1 hop, data message 72B = 5 flits: + 4 extra link cycles.
    EXPECT_EQ(mesh.unloadedLatency(0, 1, 72), 9u);
    // 6 hops, 1 flit.
    EXPECT_EQ(mesh.unloadedLatency(0, 15, 8), 30u);
    // Local delivery.
    EXPECT_EQ(mesh.unloadedLatency(3, 3, 72), 1u);
}

TEST(Mesh, SendMatchesUnloadedLatencyWhenIdle)
{
    Mesh mesh(defaultConfig());
    Tick arrive = mesh.send(0, 15, 72, MsgClass::Data, 100);
    EXPECT_EQ(arrive, 100 + mesh.unloadedLatency(0, 15, 72));
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    Mesh mesh(defaultConfig());
    Tick first = mesh.send(0, 1, 72, MsgClass::Data, 0);
    Tick second = mesh.send(0, 1, 72, MsgClass::Data, 0);
    EXPECT_GT(second, first);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    Mesh mesh(defaultConfig());
    Tick a = mesh.send(0, 1, 72, MsgClass::Data, 0);
    Tick b = mesh.send(14, 15, 72, MsgClass::Data, 0);
    EXPECT_EQ(a, mesh.unloadedLatency(0, 1, 72));
    EXPECT_EQ(b, mesh.unloadedLatency(14, 15, 72));
}

TEST(Mesh, TrafficAccountingCountsLinkOccupancy)
{
    Mesh mesh(defaultConfig());
    mesh.send(0, 3, 8, MsgClass::Request, 0);   // 3 hops, 1 flit
    mesh.send(0, 0, 8, MsgClass::Request, 0);   // local: 1 hop min
    mesh.send(0, 15, 72, MsgClass::Data, 0);    // 6 hops, 5 flits
    const NetworkStats &stats = mesh.stats();
    auto req = static_cast<std::size_t>(MsgClass::Request);
    auto dat = static_cast<std::size_t>(MsgClass::Data);
    EXPECT_EQ(stats.messages[req].value(), 2u);
    EXPECT_EQ(stats.bytes[req].value(), 16u);
    // Occupancy: flits (1) * link width (16) * hops.
    EXPECT_EQ(stats.byteHops[req].value(), 16u * 3 + 16u * 1);
    EXPECT_EQ(stats.byteHops[dat].value(), 5u * 16 * 6);
    EXPECT_EQ(stats.totalMessages(), 3u);
    EXPECT_EQ(stats.totalByteHops(), 16u * 4 + 5u * 16 * 6);
}

TEST(Mesh, ResetStatsClears)
{
    Mesh mesh(defaultConfig());
    mesh.send(0, 1, 8, MsgClass::Request, 0);
    mesh.resetStats();
    EXPECT_EQ(mesh.stats().totalMessages(), 0u);
}

TEST(Mesh, NonSquareGeometry)
{
    MeshConfig cfg;
    cfg.width = 8;
    cfg.height = 2;
    Mesh mesh(cfg);
    EXPECT_EQ(mesh.numNodes(), 16u);
    EXPECT_EQ(mesh.hopCount(0, 15), 8u); // 7 east + 1 north
}

TEST(MeshDeath, NodeOutOfRangePanics)
{
    Mesh mesh(defaultConfig());
    EXPECT_DEATH(mesh.send(0, 99, 8, MsgClass::Request, 0),
                 "out of range");
}

TEST(IdealCrossbar, FixedLatencyAnyPair)
{
    IdealCrossbar xbar(16, 8);
    EXPECT_EQ(xbar.send(0, 15, 8, MsgClass::Request, 10), 18u);
    EXPECT_EQ(xbar.send(3, 4, 8, MsgClass::Request, 10), 18u);
    // Multi-flit serialization still counts.
    EXPECT_EQ(xbar.send(0, 1, 72, MsgClass::Data, 0), 8u + 4);
}

TEST(IdealCrossbar, TrafficIsSingleHop)
{
    IdealCrossbar xbar(16, 8);
    xbar.send(0, 15, 72, MsgClass::Data, 0);
    auto dat = static_cast<std::size_t>(MsgClass::Data);
    EXPECT_EQ(xbar.stats().byteHops[dat].value(), 5u * 16);
}

} // namespace vsnoop::test
