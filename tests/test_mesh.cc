/**
 * @file
 * Unit tests for the 2D mesh and the ideal crossbar.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace vsnoop::test
{

namespace
{
MeshConfig
defaultConfig()
{
    return MeshConfig{}; // 4x4, 16B links, 4-cycle routers
}
} // namespace

TEST(Mesh, HopCountIsManhattan)
{
    Mesh mesh(defaultConfig());
    EXPECT_EQ(mesh.hopCount(0, 0), 0u);
    EXPECT_EQ(mesh.hopCount(0, 3), 3u);   // same row
    EXPECT_EQ(mesh.hopCount(0, 12), 3u);  // same column
    EXPECT_EQ(mesh.hopCount(0, 15), 6u);  // corner to corner
    EXPECT_EQ(mesh.hopCount(5, 10), 2u);
    EXPECT_EQ(mesh.hopCount(10, 5), 2u);
}

TEST(Mesh, UnloadedLatencyFormula)
{
    Mesh mesh(defaultConfig());
    // 1 hop, 1 flit: pipeline(4) + link(1) = 5.
    EXPECT_EQ(mesh.unloadedLatency(0, 1, 8), 5u);
    // 1 hop, data message 72B = 5 flits: + 4 extra link cycles.
    EXPECT_EQ(mesh.unloadedLatency(0, 1, 72), 9u);
    // 6 hops, 1 flit.
    EXPECT_EQ(mesh.unloadedLatency(0, 15, 8), 30u);
    // Local delivery.
    EXPECT_EQ(mesh.unloadedLatency(3, 3, 72), 1u);
}

TEST(Mesh, SendMatchesUnloadedLatencyWhenIdle)
{
    Mesh mesh(defaultConfig());
    Tick arrive = mesh.send(0, 15, 72, MsgClass::Data, 100);
    EXPECT_EQ(arrive, 100 + mesh.unloadedLatency(0, 15, 72));
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    Mesh mesh(defaultConfig());
    Tick first = mesh.send(0, 1, 72, MsgClass::Data, 0);
    Tick second = mesh.send(0, 1, 72, MsgClass::Data, 0);
    EXPECT_GT(second, first);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    Mesh mesh(defaultConfig());
    Tick a = mesh.send(0, 1, 72, MsgClass::Data, 0);
    Tick b = mesh.send(14, 15, 72, MsgClass::Data, 0);
    EXPECT_EQ(a, mesh.unloadedLatency(0, 1, 72));
    EXPECT_EQ(b, mesh.unloadedLatency(14, 15, 72));
}

TEST(Mesh, TrafficAccountingCountsLinkOccupancy)
{
    Mesh mesh(defaultConfig());
    mesh.send(0, 3, 8, MsgClass::Request, 0);   // 3 hops, 1 flit
    mesh.send(0, 0, 8, MsgClass::Request, 0);   // local: 1 hop min
    mesh.send(0, 15, 72, MsgClass::Data, 0);    // 6 hops, 5 flits
    const NetworkStats &stats = mesh.stats();
    auto req = static_cast<std::size_t>(MsgClass::Request);
    auto dat = static_cast<std::size_t>(MsgClass::Data);
    EXPECT_EQ(stats.messages[req].value(), 2u);
    EXPECT_EQ(stats.bytes[req].value(), 16u);
    // Occupancy: flits (1) * link width (16) * hops.
    EXPECT_EQ(stats.byteHops[req].value(), 16u * 3 + 16u * 1);
    EXPECT_EQ(stats.byteHops[dat].value(), 5u * 16 * 6);
    EXPECT_EQ(stats.totalMessages(), 3u);
    EXPECT_EQ(stats.totalByteHops(), 16u * 4 + 5u * 16 * 6);
}

TEST(Mesh, PerClassByteHopsOnKnownRoutes)
{
    Mesh mesh(defaultConfig()); // 4x4, 16B links
    // One message per class on a known route; each class must
    // accumulate hop-weighted occupancy independently.
    mesh.send(0, 3, 8, MsgClass::Request, 0);    // 3 hops, 1 flit
    mesh.send(15, 12, 8, MsgClass::Response, 0); // 3 hops, 1 flit
    mesh.send(0, 15, 72, MsgClass::Data, 0);     // 6 hops, 5 flits
    // The Control lane carries vCPU-map synchronization: an 8-byte
    // update 0 -> 5 (2 hops) and a 20-byte payload 5 -> 5 (local
    // delivery, charged min 1 hop, 2 flits).
    mesh.send(0, 5, 8, MsgClass::Control, 0);
    mesh.send(5, 5, 20, MsgClass::Control, 0);

    const NetworkStats &stats = mesh.stats();
    auto cls = [](MsgClass c) { return static_cast<std::size_t>(c); };
    EXPECT_EQ(stats.byteHops[cls(MsgClass::Request)].value(),
              1u * 16 * 3);
    EXPECT_EQ(stats.byteHops[cls(MsgClass::Response)].value(),
              1u * 16 * 3);
    EXPECT_EQ(stats.byteHops[cls(MsgClass::Data)].value(),
              5u * 16 * 6);
    EXPECT_EQ(stats.byteHops[cls(MsgClass::Control)].value(),
              1u * 16 * 2 + 2u * 16 * 1);
    // Raw byte counts are hop-independent.
    EXPECT_EQ(stats.bytes[cls(MsgClass::Control)].value(), 28u);
    EXPECT_EQ(stats.messages[cls(MsgClass::Control)].value(), 2u);
    EXPECT_EQ(stats.totalByteHops(),
              16u * 3 + 16u * 3 + 5u * 16 * 6 + 16u * 2 + 2u * 16);
}

TEST(Mesh, ControlLaneSharesLinksWithOtherClasses)
{
    Mesh mesh(defaultConfig());
    // Control traffic is not a separate physical network: a control
    // message must contend for the same link as a data message.
    Tick data = mesh.send(0, 1, 72, MsgClass::Data, 0);
    Tick control = mesh.send(0, 1, 8, MsgClass::Control, 0);
    EXPECT_GT(control, mesh.unloadedLatency(0, 1, 8));
    EXPECT_GT(control, 0u);
    EXPECT_GT(data, 0u);
}

TEST(Mesh, ResetStatsClears)
{
    Mesh mesh(defaultConfig());
    mesh.send(0, 1, 8, MsgClass::Request, 0);
    mesh.resetStats();
    EXPECT_EQ(mesh.stats().totalMessages(), 0u);
}

TEST(Mesh, NonSquareGeometry)
{
    MeshConfig cfg;
    cfg.width = 8;
    cfg.height = 2;
    Mesh mesh(cfg);
    EXPECT_EQ(mesh.numNodes(), 16u);
    EXPECT_EQ(mesh.hopCount(0, 15), 8u); // 7 east + 1 north
}

TEST(MeshDeath, NodeOutOfRangePanics)
{
    Mesh mesh(defaultConfig());
    EXPECT_DEATH(mesh.send(0, 99, 8, MsgClass::Request, 0),
                 "out of range");
}

TEST(IdealCrossbar, FixedLatencyAnyPair)
{
    IdealCrossbar xbar(16, 8);
    EXPECT_EQ(xbar.send(0, 15, 8, MsgClass::Request, 10), 18u);
    EXPECT_EQ(xbar.send(3, 4, 8, MsgClass::Request, 10), 18u);
    // Multi-flit serialization still counts.
    EXPECT_EQ(xbar.send(0, 1, 72, MsgClass::Data, 0), 8u + 4);
}

TEST(IdealCrossbar, TrafficIsSingleHop)
{
    IdealCrossbar xbar(16, 8);
    xbar.send(0, 15, 72, MsgClass::Data, 0);
    auto dat = static_cast<std::size_t>(MsgClass::Data);
    EXPECT_EQ(xbar.stats().byteHops[dat].value(), 5u * 16);
}

namespace
{
const LinkStat *
findLink(const std::vector<LinkStat> &links, NodeId from, NodeId to)
{
    for (const LinkStat &l : links)
        if (l.from == from && l.to == to)
            return &l;
    return nullptr;
}
} // namespace

TEST(MeshLinkStats, GeometryOfFourByFour)
{
    Mesh mesh(defaultConfig());
    std::vector<LinkStat> links = mesh.linkStats();
    // 4x4: 2*4*3 horizontal + 2*4*3 vertical directed links plus one
    // loopback pseudo-link per node.
    EXPECT_EQ(links.size(), 48u + 16u);
    std::size_t loopbacks = 0;
    for (const LinkStat &l : links) {
        EXPECT_LT(l.from, 16u);
        EXPECT_LT(l.to, 16u);
        if (l.from == l.to)
            loopbacks++;
        else
            EXPECT_EQ(mesh.hopCount(l.from, l.to), 1u);
    }
    EXPECT_EQ(loopbacks, 16u);
}

TEST(MeshLinkStats, PerLinkSumsConserveAggregateByteHops)
{
    Mesh mesh(defaultConfig());
    // A mix of classes, routes, and local deliveries; the per-link
    // ledger (including loopback pseudo-links) must sum to the
    // aggregate byte-hop counters exactly, per message class.
    mesh.send(0, 3, 8, MsgClass::Request, 0);
    mesh.send(5, 5, 8, MsgClass::Request, 0);
    mesh.send(15, 0, 72, MsgClass::Data, 0);
    mesh.send(2, 14, 8, MsgClass::Response, 10);
    mesh.send(7, 7, 20, MsgClass::Control, 10);
    mesh.send(1, 13, 8, MsgClass::Control, 20);
    mesh.send(12, 15, 72, MsgClass::Data, 20);

    std::vector<LinkStat> links = mesh.linkStats();
    for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
        std::uint64_t per_link = 0;
        for (const LinkStat &l : links)
            per_link += l.byteHops[c];
        EXPECT_EQ(per_link, mesh.stats().byteHops[c].value())
            << "class " << c;
    }
}

TEST(MeshLinkStats, LoopbacksCarryBytesButNoCycles)
{
    Mesh mesh(defaultConfig());
    mesh.send(5, 5, 20, MsgClass::Control, 0); // 2 flits
    std::vector<LinkStat> links = mesh.linkStats();
    const LinkStat *loop = findLink(links, 5, 5);
    ASSERT_NE(loop, nullptr);
    auto ctl = static_cast<std::size_t>(MsgClass::Control);
    EXPECT_EQ(loop->byteHops[ctl], 2u * 16);
    // Local delivery bypasses the network, so the pseudo-link never
    // accumulates occupancy or backlog.
    EXPECT_EQ(loop->busyCycles, 0u);
    EXPECT_EQ(loop->waitCycles, 0u);
}

TEST(MeshLinkStats, BusyAndWaitCyclesOnContendedLink)
{
    Mesh mesh(defaultConfig()); // pipeline 4, link latency 1
    // Two 5-flit messages over the same single link.  Each occupies
    // the link for 5 cycles; the second head is ready at tick 4 but
    // the link is busy until tick 9, so it logs 5 wait cycles.
    mesh.send(0, 1, 72, MsgClass::Data, 0);
    mesh.send(0, 1, 72, MsgClass::Data, 0);
    const LinkStat *east = findLink(mesh.linkStats(), 0, 1);
    ASSERT_NE(east, nullptr);
    EXPECT_EQ(east->busyCycles, 10u);
    EXPECT_EQ(east->waitCycles, 5u);
    EXPECT_EQ(east->totalByteHops(), 2u * 5 * 16);
    // The reverse direction is a distinct link and stays idle.
    const LinkStat *west = findLink(mesh.linkStats(), 1, 0);
    ASSERT_NE(west, nullptr);
    EXPECT_EQ(west->totalByteHops(), 0u);
    EXPECT_EQ(west->busyCycles, 0u);
}

TEST(MeshLinkStats, ResetStatsClearsLinkLedger)
{
    Mesh mesh(defaultConfig());
    mesh.send(0, 15, 72, MsgClass::Data, 0);
    mesh.send(3, 3, 8, MsgClass::Request, 0);
    mesh.resetStats();
    for (const LinkStat &l : mesh.linkStats()) {
        EXPECT_EQ(l.totalByteHops(), 0u);
        EXPECT_EQ(l.busyCycles, 0u);
        EXPECT_EQ(l.waitCycles, 0u);
    }
}

TEST(IdealCrossbar, HasNoPerLinkStats)
{
    IdealCrossbar xbar(16, 8);
    xbar.send(0, 15, 72, MsgClass::Data, 0);
    EXPECT_TRUE(xbar.linkStats().empty());
}

} // namespace vsnoop::test
