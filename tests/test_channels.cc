/**
 * @file
 * Unit tests for direct inter-VM communication channels (the third
 * sharing source of Section II-B).
 */

#include <gtest/gtest.h>

#include <set>

#include "system/sim_system.hh"
#include "virt/hypervisor.hh"
#include "workload/generator.hh"

namespace vsnoop::test
{

TEST(Channels, SymmetricAndStable)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    Translation ab = hv.channelAddr(a, b, 0);
    Translation ba = hv.channelAddr(b, a, 0);
    EXPECT_EQ(ab.addr.pageNum(), ba.addr.pageNum());
    EXPECT_EQ(ab.type, PageType::RwShared);
    // Different page index, different host page.
    EXPECT_NE(hv.channelAddr(a, b, 1).addr.pageNum(),
              ab.addr.pageNum());
}

TEST(Channels, DistinctPairsGetDistinctPages)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    VmId c = hv.createVm(1);
    EXPECT_NE(hv.channelAddr(a, b, 0).addr.pageNum(),
              hv.channelAddr(a, c, 0).addr.pageNum());
    EXPECT_NE(hv.channelAddr(a, b, 0).addr.pageNum(),
              hv.channelAddr(b, c, 0).addr.pageNum());
}

TEST(ChannelsDeath, SelfChannelPanics)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    EXPECT_DEATH(hv.channelAddr(a, a, 0), "distinct");
}

TEST(Channels, GeneratorEmitsChannelAccesses)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    hv.createVm(1);
    AppProfile profile = findApp("ferret");
    profile.channelFraction = 0.2;
    VcpuWorkload w(hv, a, 0, profile, 9);
    int channel_accesses = 0;
    for (int i = 0; i < 20000; ++i) {
        VcpuWorkload::Step s = w.next();
        if (s.category == AccessCategory::Channel) {
            channel_accesses++;
            EXPECT_EQ(s.access.pageType, PageType::RwShared);
        }
    }
    EXPECT_NEAR(channel_accesses / 20000.0, 0.2, 0.02);
}

TEST(Channels, PartnersShareTheSamePages)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    AppProfile profile = findApp("ferret");
    profile.channelFraction = 1.0;
    profile.hypervisorFraction = 0.0;
    profile.contentFraction = 0.0;
    profile.vmSharedFraction = 0.0;
    VcpuWorkload wa(hv, a, 0, profile, 1);
    VcpuWorkload wb(hv, b, 0, profile, 2);
    std::set<std::uint64_t> pages_a, pages_b;
    for (int i = 0; i < 2000; ++i) {
        pages_a.insert(wa.next().access.addr.pageNum());
        pages_b.insert(wb.next().access.addr.pageNum());
    }
    EXPECT_EQ(pages_a, pages_b);
}

TEST(Channels, SingleVmDisablesChannels)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    AppProfile profile = findApp("ferret");
    profile.channelFraction = 0.5;
    VcpuWorkload w(hv, a, 0, profile, 3);
    for (int i = 0; i < 2000; ++i)
        EXPECT_NE(w.next().category, AccessCategory::Channel);
}

TEST(Channels, ChannelMissesBroadcastUnderVsnoop)
{
    AppProfile app = findApp("ferret");
    app.channelFraction = 0.1;
    app.contentFraction = 0.0;
    app.hypervisorFraction = 0.0;

    SystemConfig cfg;
    cfg.accessesPerVcpu = 3000;
    cfg.l2.sizeBytes = 32 * 1024;
    cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem sys(cfg, app);
    sys.run();
    SystemResults r = sys.results();

    auto channel =
        static_cast<std::size_t>(AccessCategory::Channel);
    EXPECT_GT(r.accessesByCategory[channel], 0u);
    // Channel misses force broadcasts.
    ASSERT_NE(sys.vsnoopPolicy(), nullptr);
    EXPECT_GT(sys.vsnoopPolicy()->broadcastRequests.value(), 0u);
}

} // namespace vsnoop::test
