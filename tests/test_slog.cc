/**
 * @file
 * StructuredLog tests: record shape, seq accounting, level
 * filtering, ring overflow, and writer concurrency.
 */

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/slog.hh"

namespace vsnoop
{
namespace
{

TEST(StructuredLog, RecordsCarryGapFreeSeqAndParseAsJson)
{
    StructuredLog log;
    log.log(LogLevel::Info, "first",
            {LogField("path", "/jobs"), LogField("status", 200),
             LogField("bytes", std::uint64_t(4113)),
             LogField("ratio", 0.5), LogField("cached", true)});
    log.log(LogLevel::Warn, "second");

    std::vector<LogRecord> records = log.tail();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].seq, 1u);
    EXPECT_EQ(records[1].seq, 2u);
    EXPECT_EQ(log.recorded(), 2u);
    EXPECT_EQ(log.overflowed(), 0u);

    std::optional<JsonValue> doc = parseJson(records[0].json);
    ASSERT_TRUE(doc.has_value()) << records[0].json;
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->numberAt("seq"), 1.0);
    EXPECT_GT(doc->numberAt("ts_ms"), 0.0);
    EXPECT_EQ(doc->stringAt("level"), "info");
    EXPECT_EQ(doc->stringAt("msg"), "first");
    EXPECT_EQ(doc->stringAt("path"), "/jobs");
    EXPECT_EQ(doc->numberAt("status"), 200.0);
    EXPECT_EQ(doc->numberAt("bytes"), 4113.0);
    EXPECT_EQ(doc->numberAt("ratio"), 0.5);
    const JsonValue *cached = doc->find("cached");
    ASSERT_NE(cached, nullptr);
    EXPECT_TRUE(cached->kind() == JsonValue::Kind::Bool &&
                cached->boolean());

    doc = parseJson(records[1].json);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->stringAt("level"), "warn");
}

TEST(StructuredLog, TailFiltersByLevelAndBoundsCount)
{
    StructuredLog log;
    log.log(LogLevel::Debug, "d");
    log.log(LogLevel::Info, "i");
    log.log(LogLevel::Warn, "w");
    log.log(LogLevel::Error, "e");
    log.log(LogLevel::Warn, "w2");

    std::vector<LogRecord> warnings = log.tail(LogLevel::Warn);
    ASSERT_EQ(warnings.size(), 3u);
    EXPECT_EQ(warnings[0].level, LogLevel::Warn);
    EXPECT_EQ(warnings[1].level, LogLevel::Error);
    EXPECT_EQ(warnings[2].level, LogLevel::Warn);

    // maxCount keeps the NEWEST matches, still oldest-first.
    std::vector<LogRecord> newest = log.tail(LogLevel::Warn, 2);
    ASSERT_EQ(newest.size(), 2u);
    EXPECT_EQ(newest[0].seq, 4u);
    EXPECT_EQ(newest[1].seq, 5u);

    std::string jsonl = log.renderJsonl(LogLevel::Error);
    EXPECT_NE(jsonl.find("\"msg\":\"e\""), std::string::npos);
    EXPECT_EQ(jsonl.find("\"msg\":\"w\""), std::string::npos);
    EXPECT_EQ(jsonl.back(), '\n');
}

TEST(StructuredLog, RingOverflowDisplacesOldest)
{
    StructuredLog log(4);
    EXPECT_EQ(log.ringCapacity(), 4u);
    for (int i = 0; i < 10; ++i)
        log.log(LogLevel::Info, "m" + std::to_string(i));

    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.overflowed(), 6u);
    std::vector<LogRecord> records = log.tail();
    ASSERT_EQ(records.size(), 4u);
    // The ring holds the newest 4; seq stays gap-free across the
    // displaced prefix.
    EXPECT_EQ(records.front().seq, 7u);
    EXPECT_EQ(records.back().seq, 10u);
}

TEST(StructuredLog, ShrinkingTheRingDisplacesAndCounts)
{
    StructuredLog log;
    for (int i = 0; i < 5; ++i)
        log.log(LogLevel::Info, "m");
    log.setRingCapacity(2);
    EXPECT_EQ(log.ringCapacity(), 2u);
    EXPECT_EQ(log.overflowed(), 3u);
    std::vector<LogRecord> records = log.tail();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records.front().seq, 4u);
    EXPECT_EQ(records.back().seq, 5u);

    // Capacity 0 clamps to 1: the latest record is always kept.
    log.setRingCapacity(0);
    EXPECT_EQ(log.ringCapacity(), 1u);
    ASSERT_EQ(log.tail().size(), 1u);
    EXPECT_EQ(log.tail()[0].seq, 5u);
}

TEST(StructuredLog, ConcurrentWritersProduceUniqueSeqsAndValidJson)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    StructuredLog log(kThreads * kPerThread);

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&log, t] {
            for (int i = 0; i < kPerThread; ++i)
                log.log(LogLevel::Info, "w",
                        {LogField("thread", t), LogField("i", i)});
        });
    }
    for (std::thread &w : writers)
        w.join();

    EXPECT_EQ(log.recorded(),
              std::uint64_t(kThreads) * kPerThread);
    std::vector<LogRecord> records = log.tail();
    ASSERT_EQ(records.size(), std::size_t(kThreads) * kPerThread);
    std::set<std::uint64_t> seqs;
    for (const LogRecord &r : records) {
        seqs.insert(r.seq);
        // Rendering under the logger's mutex means no record can
        // interleave with another: every line parses on its own.
        EXPECT_TRUE(parseJson(r.json).has_value()) << r.json;
    }
    EXPECT_EQ(seqs.size(), records.size());
}

TEST(StructuredLog, LevelTokensRoundTrip)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("banana"), std::nullopt);
}

TEST(StructuredLog, GlobalLoggerCapturesLegacyWarnBanners)
{
    std::uint64_t before = slog().recorded();
    bool was_quiet = loggingQuiet();
    quietLogging(true); // keep test output clean
    vsnoop_warn("structured capture probe ", 7);
    quietLogging(was_quiet);
    ASSERT_GT(slog().recorded(), before);
    std::vector<LogRecord> records = slog().tail(LogLevel::Warn);
    ASSERT_FALSE(records.empty());
    bool found = false;
    for (const LogRecord &r : records)
        if (r.json.find("structured capture probe 7") !=
            std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace vsnoop
