/**
 * @file
 * Races and stress tests for the token protocol: concurrent
 * conflicting transactions must all complete, token conservation
 * must hold at every step, and starvation must be resolved by the
 * persistent-request arbiter.
 */

#include <gtest/gtest.h>

#include "coherence_harness.hh"
#include "sim/rng.hh"

namespace vsnoop::test
{

namespace
{
constexpr std::uint64_t kAddr = 0x80000;
constexpr std::uint32_t kAllTokens = 16;
} // namespace

TEST(CoherenceRaces, TwoConcurrentWritersBothComplete)
{
    CoherenceHarness h;
    auto a = h.issue(0, kAddr, true);
    auto b = h.issue(15, kAddr, true);
    h.drain();
    EXPECT_TRUE(a->fired);
    EXPECT_TRUE(b->fired);

    // Exactly one core ends with the line in M.
    const CacheLine *l0 = h.line(0, kAddr);
    const CacheLine *l15 = h.line(15, kAddr);
    int modified = 0;
    for (const CacheLine *l : {l0, l15}) {
        if (l != nullptr && l->tokens == kAllTokens && l->owner)
            modified++;
    }
    EXPECT_EQ(modified, 1);
}

TEST(CoherenceRaces, ManyConcurrentWritersSameLine)
{
    CoherenceHarness h;
    std::vector<std::shared_ptr<CoherenceHarness::Outcome>> outcomes;
    for (CoreId c = 0; c < 16; ++c)
        outcomes.push_back(h.issue(c, kAddr, true));
    h.drain(10'000'000);
    for (const auto &o : outcomes)
        EXPECT_TRUE(o->fired);
}

TEST(CoherenceRaces, ReadersRaceWriter)
{
    CoherenceHarness h;
    auto w = h.issue(0, kAddr, true);
    std::vector<std::shared_ptr<CoherenceHarness::Outcome>> readers;
    for (CoreId c = 1; c < 8; ++c)
        readers.push_back(h.issue(c, kAddr, false));
    h.drain(10'000'000);
    EXPECT_TRUE(w->fired);
    for (const auto &r : readers)
        EXPECT_TRUE(r->fired);
}

TEST(CoherenceRaces, UpgradeRacesRemoteWrite)
{
    CoherenceHarness h;
    h.access(0, kAddr, false); // core 0 holds S
    auto up = h.issue(0, kAddr, true);
    auto wr = h.issue(9, kAddr, true);
    h.drain(10'000'000);
    EXPECT_TRUE(up->fired);
    EXPECT_TRUE(wr->fired);
}

TEST(CoherenceRaces, UpgradeRacesManyReaders)
{
    CoherenceHarness h;
    for (CoreId c = 0; c < 4; ++c)
        h.access(c, kAddr, false);
    auto up = h.issue(2, kAddr, true);
    std::vector<std::shared_ptr<CoherenceHarness::Outcome>> readers;
    for (CoreId c = 8; c < 12; ++c)
        readers.push_back(h.issue(c, kAddr, false));
    h.drain(10'000'000);
    EXPECT_TRUE(up->fired);
    for (const auto &r : readers)
        EXPECT_TRUE(r->fired);
}

/**
 * Randomized stress: cores issue random reads/writes over a small
 * address pool, one outstanding access per core per round, with
 * token conservation checked after each drain.  Parameterized over
 * RNG seeds to cover different interleavings.
 */
class RandomStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomStress, ConservationHoldsUnderRandomTraffic)
{
    CoherenceHarness h;
    Rng rng(GetParam());
    // Pool of eight lines within one page.
    std::vector<std::uint64_t> pool;
    for (int i = 0; i < 8; ++i)
        pool.push_back(0x200000 + i * 64);

    for (int round = 0; round < 60; ++round) {
        std::vector<std::shared_ptr<CoherenceHarness::Outcome>> pending;
        for (CoreId c = 0; c < 16; ++c) {
            if (!rng.chance(0.7))
                continue;
            std::uint64_t addr = pool[rng.below(
                static_cast<std::uint32_t>(pool.size()))];
            bool write = rng.chance(0.4);
            // One outstanding access per (core, line), as the
            // blocking core model guarantees.
            if (h.system->controller(c).hasMshr(HostAddr(addr)))
                continue;
            pending.push_back(h.issue(c, addr, write,
                                      static_cast<VmId>(c / 4)));
        }
        h.drain(20'000'000);
        for (const auto &o : pending)
            ASSERT_TRUE(o->fired) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStress,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(CoherenceRaces, RepeatedTotalConflictResolves)
{
    // Create heavy conflict so some responses arrive after their
    // transaction completed via the persistent path; bounced tokens
    // must land back at memory without violating conservation
    // (checked inside drain()).
    CoherenceHarness h;
    for (int round = 0; round < 10; ++round) {
        std::vector<std::shared_ptr<CoherenceHarness::Outcome>> pending;
        for (CoreId c = 0; c < 16; ++c)
            pending.push_back(h.issue(c, kAddr, true));
        h.drain(20'000'000);
        for (const auto &o : pending)
            ASSERT_TRUE(o->fired) << "round " << round;
    }
}

TEST(CoherenceRaces, ConflictOnDifferentLinesIsIndependent)
{
    CoherenceHarness h;
    std::vector<std::shared_ptr<CoherenceHarness::Outcome>> pending;
    for (CoreId c = 0; c < 16; ++c)
        pending.push_back(h.issue(c, 0x300000 + c * 64ull, true));
    h.drain();
    for (const auto &o : pending)
        EXPECT_TRUE(o->fired);
    // No conflicts: nobody should have escalated to persistent.
    EXPECT_EQ(h.system->stats.persistentRequests.value(), 0u);
}

} // namespace vsnoop::test
