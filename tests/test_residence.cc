/**
 * @file
 * Unit tests for the per-VM cache residence counters.
 */

#include <gtest/gtest.h>

#include "mem/residence.hh"

namespace vsnoop::test
{

TEST(Residence, CountsPrivateLinesOnly)
{
    ResidenceCounters rc(4);
    rc.onLineInserted(1, PageType::VmPrivate);
    rc.onLineInserted(1, PageType::VmPrivate);
    rc.onLineInserted(1, PageType::RwShared);
    rc.onLineInserted(1, PageType::RoShared);
    EXPECT_EQ(rc.count(1), 2u);
    EXPECT_EQ(rc.count(0), 0u);
}

TEST(Residence, DecrementOnRemove)
{
    ResidenceCounters rc(4);
    rc.onLineInserted(2, PageType::VmPrivate);
    rc.onLineRemoved(2, PageType::VmPrivate);
    EXPECT_TRUE(rc.empty(2));
    // Non-private removals don't touch the counter.
    rc.onLineInserted(2, PageType::VmPrivate);
    rc.onLineRemoved(2, PageType::RoShared);
    EXPECT_EQ(rc.count(2), 1u);
}

TEST(Residence, CallbackFiresOnEveryChange)
{
    ResidenceCounters rc(4);
    std::vector<std::pair<VmId, std::uint64_t>> log;
    rc.setCallback([&](VmId vm, std::uint64_t count) {
        log.emplace_back(vm, count);
    });
    rc.onLineInserted(3, PageType::VmPrivate);
    rc.onLineInserted(3, PageType::VmPrivate);
    rc.onLineRemoved(3, PageType::VmPrivate);
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], (std::pair<VmId, std::uint64_t>{3, 1}));
    EXPECT_EQ(log[1], (std::pair<VmId, std::uint64_t>{3, 2}));
    EXPECT_EQ(log[2], (std::pair<VmId, std::uint64_t>{3, 1}));
}

TEST(Residence, HypervisorLinesAreIgnored)
{
    ResidenceCounters rc(4);
    rc.onLineInserted(kInvalidVm, PageType::VmPrivate);
    for (VmId vm = 0; vm < 4; ++vm)
        EXPECT_EQ(rc.count(vm), 0u);
    EXPECT_EQ(rc.count(kInvalidVm), 0u);
}

TEST(ResidenceDeath, UnderflowPanics)
{
    ResidenceCounters rc(4);
    EXPECT_DEATH(rc.onLineRemoved(0, PageType::VmPrivate), "underflow");
}

} // namespace vsnoop::test
