/**
 * @file
 * Unit tests for the deterministic JSON writer.
 */

#include <limits>

#include <gtest/gtest.h>

#include "sim/json.hh"

namespace vsnoop::test
{

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("ctl\x01") + "x"), "ctl\\u0001x");
}

TEST(Json, BuildsNestedDocument)
{
    JsonWriter json;
    json.beginObject();
    json.key("name").value("run");
    json.key("count").value(std::uint64_t{3});
    json.key("ok").value(true);
    json.key("inner").beginObject();
    json.key("ratio").value(0.5);
    json.endObject();
    json.key("list").beginArray();
    json.value(1).value(2).value(3);
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\"name\":\"run\",\"count\":3,\"ok\":true,"
              "\"inner\":{\"ratio\":0.5},\"list\":[1,2,3]}");
}

TEST(Json, DoublesRoundTripShortest)
{
    JsonWriter json;
    json.beginArray();
    json.value(0.1);
    json.value(1.0);
    json.value(1e300);
    json.value(-2.5);
    json.endArray();
    EXPECT_EQ(json.str(), "[0.1,1,1e+300,-2.5]");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    JsonWriter json;
    json.beginArray();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.endArray();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, EmptyContainers)
{
    JsonWriter obj;
    obj.beginObject().endObject();
    EXPECT_EQ(obj.str(), "{}");
    JsonWriter arr;
    arr.beginArray().endArray();
    EXPECT_EQ(arr.str(), "[]");
}

TEST(Json, MisuseAsserts)
{
    EXPECT_DEATH(
        {
            JsonWriter json;
            json.beginObject();
            json.value(1); // member without a key
        },
        "needs a key");
    EXPECT_DEATH(
        {
            JsonWriter json;
            json.beginObject();
            json.str(); // unclosed container
        },
        "unclosed");
    EXPECT_DEATH(
        {
            JsonWriter json;
            json.beginArray();
            json.key("k"); // keys are object-only
        },
        "inside an object");
}

} // namespace vsnoop::test
