/**
 * @file
 * Unit tests for the deterministic JSON writer and the parser.
 */

#include <limits>

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "sim/stats.hh"

namespace vsnoop::test
{

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("ctl\x01") + "x"), "ctl\\u0001x");
}

TEST(Json, BuildsNestedDocument)
{
    JsonWriter json;
    json.beginObject();
    json.key("name").value("run");
    json.key("count").value(std::uint64_t{3});
    json.key("ok").value(true);
    json.key("inner").beginObject();
    json.key("ratio").value(0.5);
    json.endObject();
    json.key("list").beginArray();
    json.value(1).value(2).value(3);
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\"name\":\"run\",\"count\":3,\"ok\":true,"
              "\"inner\":{\"ratio\":0.5},\"list\":[1,2,3]}");
}

TEST(Json, DoublesRoundTripShortest)
{
    JsonWriter json;
    json.beginArray();
    json.value(0.1);
    json.value(1.0);
    json.value(1e300);
    json.value(-2.5);
    json.endArray();
    EXPECT_EQ(json.str(), "[0.1,1,1e+300,-2.5]");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    JsonWriter json;
    json.beginArray();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.endArray();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, EmptyContainers)
{
    JsonWriter obj;
    obj.beginObject().endObject();
    EXPECT_EQ(obj.str(), "{}");
    JsonWriter arr;
    arr.beginArray().endArray();
    EXPECT_EQ(arr.str(), "[]");
}

TEST(Json, MisuseAsserts)
{
    EXPECT_DEATH(
        {
            JsonWriter json;
            json.beginObject();
            json.value(1); // member without a key
        },
        "needs a key");
    EXPECT_DEATH(
        {
            JsonWriter json;
            json.beginObject();
            json.str(); // unclosed container
        },
        "unclosed");
    EXPECT_DEATH(
        {
            JsonWriter json;
            json.beginArray();
            json.key("k"); // keys are object-only
        },
        "inside an object");
}

TEST(JsonParser, ParsesScalarsAndContainers)
{
    auto v = parseJson(
        R"({"name":"run","count":3,"ok":true,"none":null,)"
        R"("inner":{"ratio":0.5},"list":[1,2,3]})");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());
    EXPECT_EQ(v->stringAt("name"), "run");
    EXPECT_EQ(v->numberAt("count"), 3.0);
    ASSERT_NE(v->find("ok"), nullptr);
    EXPECT_TRUE(v->find("ok")->boolean());
    EXPECT_TRUE(v->find("none")->isNull());
    const JsonValue *inner = v->find("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_DOUBLE_EQ(inner->numberAt("ratio"), 0.5);
    const JsonValue *list = v->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->items().size(), 3u);
    EXPECT_EQ(list->items()[1].number(), 2.0);
}

TEST(JsonParser, PreservesMemberOrder)
{
    auto v = parseJson(R"({"z":1,"a":2,"m":3})");
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->members().size(), 3u);
    EXPECT_EQ(v->members()[0].first, "z");
    EXPECT_EQ(v->members()[1].first, "a");
    EXPECT_EQ(v->members()[2].first, "m");
}

TEST(JsonParser, HandlesEscapesAndNumbers)
{
    auto v = parseJson(
        R"(["a\"b\\c", "tab\there", "A", -2.5, 1e+300, 0.1])");
    ASSERT_TRUE(v.has_value());
    const auto &items = v->items();
    ASSERT_EQ(items.size(), 6u);
    EXPECT_EQ(items[0].string(), "a\"b\\c");
    EXPECT_EQ(items[1].string(), "tab\there");
    EXPECT_EQ(items[2].string(), "A");
    EXPECT_DOUBLE_EQ(items[3].number(), -2.5);
    EXPECT_DOUBLE_EQ(items[4].number(), 1e300);
    EXPECT_DOUBLE_EQ(items[5].number(), 0.1);
}

TEST(JsonParser, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseJson("{\"open\":1", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("[1,2,]").has_value());
    EXPECT_FALSE(parseJson("").has_value());
    // Trailing garbage after a complete value is an error, so
    // concatenated documents can't be silently half-read.
    EXPECT_FALSE(parseJson("{} {}").has_value());
    EXPECT_FALSE(parseJson("nulll").has_value());
}

TEST(JsonParser, MissingLookupsFallBack)
{
    auto v = parseJson(R"({"present":7})");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("absent"), nullptr);
    EXPECT_EQ(v->numberAt("absent", -1.0), -1.0);
    EXPECT_EQ(v->stringAt("absent", "fallback"), "fallback");
    EXPECT_EQ(v->numberAt("present"), 7.0);
}

TEST(JsonParser, HistogramJsonRoundTrips)
{
    // The writer side of the observability pipeline must be readable
    // by the parser side (vsnoopreport) without loss.
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(5);
    for (int i = 0; i < 10; ++i)
        h.sample(1000);
    JsonWriter json;
    h.writeJson(json);
    auto v = parseJson(json.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->numberAt("count"), 110.0);
    EXPECT_EQ(v->numberAt("sum"), 100.0 * 5 + 10 * 1000);
    EXPECT_EQ(v->numberAt("min"), 5.0);
    EXPECT_EQ(v->numberAt("max"), 1000.0);
    EXPECT_DOUBLE_EQ(v->numberAt("mean"), h.mean());
    EXPECT_EQ(v->numberAt("p50"), double(h.quantile(0.5)));
    EXPECT_EQ(v->numberAt("p99"), double(h.quantile(0.99)));
    const JsonValue *buckets = v->find("buckets");
    ASSERT_NE(buckets, nullptr);
    // Trimmed after the last populated bucket (index 10).
    ASSERT_EQ(buckets->items().size(), 11u);
    EXPECT_EQ(buckets->items()[3].number(), 100.0);
    EXPECT_EQ(buckets->items()[10].number(), 10.0);
    // An empty histogram round-trips to an empty bucket list.
    LatencyHistogram empty;
    JsonWriter ejson;
    empty.writeJson(ejson);
    auto ev = parseJson(ejson.str());
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->numberAt("count"), 0.0);
    ASSERT_NE(ev->find("buckets"), nullptr);
    EXPECT_TRUE(ev->find("buckets")->items().empty());
}

} // namespace vsnoop::test
