/**
 * @file
 * StatsServer tests: ephemeral-port binding, request routing, and
 * the bundled HTTP client, over a real loopback socket.
 */

#include <csignal>
#include <string>
#include <sys/time.h>

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/stats_server.hh"

namespace vsnoop
{
namespace
{

TEST(StatsServer, ServesRoutesOnAnEphemeralPort)
{
    StatsServer server;
    server.route("/hello", [] {
        HttpResponse resp;
        resp.body = "hi\n";
        return resp;
    });
    server.route("/metrics", [] {
        HttpResponse resp;
        resp.contentType = kPrometheusContentType;
        resp.body = "# HELP x X.\n# TYPE x gauge\nx 1\n";
        return resp;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;
    EXPECT_NE(server.port(), 0);
    EXPECT_EQ(server.address(),
              "127.0.0.1:" + std::to_string(server.port()));

    std::optional<std::string> body =
        httpGet(server.address(), "/hello", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "hi\n");

    body = httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "# HELP x X.\n# TYPE x gauge\nx 1\n");
    EXPECT_GE(server.requestsServed(), 2u);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(StatsServer, UnknownPathIs404)
{
    StatsServer server;
    server.route("/only", [] { return HttpResponse{}; });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::optional<std::string> body =
        httpGet(server.address(), "/missing", &error);
    EXPECT_FALSE(body.has_value());
    EXPECT_NE(error.find("404"), std::string::npos) << error;
}

TEST(StatsServer, StartRejectsBadAddresses)
{
    StatsServer server;
    std::string error;
    EXPECT_FALSE(server.start("no-port-here", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(server.running());
}

TEST(StatsServer, ClientReportsConnectFailure)
{
    // A port we just bound and closed again is very likely free;
    // either way 127.0.0.1:1 is reserved and closed in practice.
    std::string error;
    std::optional<std::string> body =
        httpGet("127.0.0.1:1", "/x", &error, 500);
    EXPECT_FALSE(body.has_value());
    EXPECT_FALSE(error.empty());
}

TEST(StatsServer, RequestsSurviveSignalInterruption)
{
    // A run under a profiler or with an interval timer gets its
    // blocking socket calls interrupted with EINTR.  Install a
    // no-op SIGALRM handler WITHOUT SA_RESTART and fire it every
    // few milliseconds while a deliberately slow request is in
    // flight: recv/send on both sides must retry, not fail.
    StatsServer server;
    server.route("/slow", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        HttpResponse resp;
        resp.body = "slow-ok\n";
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    struct sigaction sa{};
    struct sigaction old{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: syscalls return EINTR
    ASSERT_EQ(sigaction(SIGALRM, &sa, &old), 0);
    itimerval ticker{};
    ticker.it_interval.tv_usec = 5000;
    ticker.it_value.tv_usec = 5000;
    ASSERT_EQ(setitimer(ITIMER_REAL, &ticker, nullptr), 0);

    std::optional<std::string> body =
        httpGet(server.address(), "/slow", &error);

    itimerval off{};
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &old, nullptr);

    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "slow-ok\n");
    server.stop();
}

TEST(StatsServer, ServesALiveRegistrySnapshot)
{
    MetricsRegistry registry;
    MetricsRegistry::Id id = registry.addGauge("live", "Live.");
    registry.freeze();

    StatsServer server;
    server.route("/metrics", [&registry] {
        HttpResponse resp;
        resp.contentType = kPrometheusContentType;
        resp.body = registry.renderPrometheus();
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    registry.set(id, 42.0);
    registry.publish();
    std::optional<std::string> body =
        httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_NE(body->find("live 42\n"), std::string::npos) << *body;

    registry.set(id, 43.0);
    registry.publish();
    body = httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_NE(body->find("live 43\n"), std::string::npos) << *body;
}

} // namespace
} // namespace vsnoop
