/**
 * @file
 * StatsServer tests: ephemeral-port binding, request routing, and
 * the bundled HTTP client, over a real loopback socket.
 */

#include <csignal>
#include <cstring>
#include <string>
#include <sys/time.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/slog.hh"
#include "sim/stats_server.hh"

namespace vsnoop
{
namespace
{

TEST(StatsServer, ServesRoutesOnAnEphemeralPort)
{
    StatsServer server;
    server.route("/hello", [] {
        HttpResponse resp;
        resp.body = "hi\n";
        return resp;
    });
    server.route("/metrics", [] {
        HttpResponse resp;
        resp.contentType = kPrometheusContentType;
        resp.body = "# HELP x X.\n# TYPE x gauge\nx 1\n";
        return resp;
    });

    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;
    EXPECT_NE(server.port(), 0);
    EXPECT_EQ(server.address(),
              "127.0.0.1:" + std::to_string(server.port()));

    std::optional<std::string> body =
        httpGet(server.address(), "/hello", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "hi\n");

    body = httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "# HELP x X.\n# TYPE x gauge\nx 1\n");
    EXPECT_GE(server.requestsServed(), 2u);

    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(StatsServer, UnknownPathIs404)
{
    StatsServer server;
    server.route("/only", [] { return HttpResponse{}; });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::optional<std::string> body =
        httpGet(server.address(), "/missing", &error);
    EXPECT_FALSE(body.has_value());
    EXPECT_NE(error.find("404"), std::string::npos) << error;
}

TEST(StatsServer, StartRejectsBadAddresses)
{
    StatsServer server;
    std::string error;
    EXPECT_FALSE(server.start("no-port-here", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(server.running());
}

TEST(StatsServer, ClientReportsConnectFailure)
{
    // A port we just bound and closed again is very likely free;
    // either way 127.0.0.1:1 is reserved and closed in practice.
    std::string error;
    std::optional<std::string> body =
        httpGet("127.0.0.1:1", "/x", &error, 500);
    EXPECT_FALSE(body.has_value());
    EXPECT_FALSE(error.empty());
}

TEST(StatsServer, RequestsSurviveSignalInterruption)
{
    // A run under a profiler or with an interval timer gets its
    // blocking socket calls interrupted with EINTR.  Install a
    // no-op SIGALRM handler WITHOUT SA_RESTART and fire it every
    // few milliseconds while a deliberately slow request is in
    // flight: recv/send on both sides must retry, not fail.
    StatsServer server;
    server.route("/slow", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        HttpResponse resp;
        resp.body = "slow-ok\n";
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    struct sigaction sa{};
    struct sigaction old{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: syscalls return EINTR
    ASSERT_EQ(sigaction(SIGALRM, &sa, &old), 0);
    itimerval ticker{};
    ticker.it_interval.tv_usec = 5000;
    ticker.it_value.tv_usec = 5000;
    ASSERT_EQ(setitimer(ITIMER_REAL, &ticker, nullptr), 0);

    std::optional<std::string> body =
        httpGet(server.address(), "/slow", &error);

    itimerval off{};
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &old, nullptr);

    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "slow-ok\n");
    server.stop();
}

/**
 * Send raw bytes to the server and return everything it replies
 * (headers included), for tests that need to speak broken HTTP the
 * well-formed client cannot produce.
 */
std::string
rawExchange(std::uint16_t port, const std::string &bytes,
            bool half_close = true)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port);
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sin),
                        sizeof sin),
              0);
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    if (half_close)
        ::shutdown(fd, SHUT_WR);
    std::string reply;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

TEST(StatsServer, PrefixRoutesReceiveMethodPathAndBody)
{
    StatsServer server;
    server.routePrefix("POST", "/echo", [](const HttpRequest &req) {
        HttpResponse resp;
        resp.body = req.method + " " + req.path + " " + req.body;
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::optional<HttpReply> reply =
        httpRequest(server.address(), "POST", "/echo/deep/path",
                    "payload", "text/plain", &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 200);
    EXPECT_EQ(reply->body, "POST /echo/deep/path payload");

    // The prefix is registered for POST only: a GET of the same
    // path is a method mismatch, not an unknown route.
    reply = httpRequest(server.address(), "GET", "/echo/deep/path",
                        "", "", &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 405);
}

TEST(StatsServer, OversizedBodiesAreRejectedWith413)
{
    StatsServer server;
    server.routePrefix("POST", "/sink", [](const HttpRequest &) {
        return HttpResponse{};
    });
    server.setMaxBodyBytes(100);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::optional<HttpReply> reply =
        httpRequest(server.address(), "POST", "/sink",
                    std::string(1000, 'x'), "text/plain", &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 413);
    EXPECT_FALSE(reply->body.empty());

    // The small-body path still works afterwards.
    reply = httpRequest(server.address(), "POST", "/sink", "ok",
                        "text/plain", &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->status, 200);
}

TEST(StatsServer, MalformedRequestLinesAre400)
{
    StatsServer server;
    server.route("/fine", [] { return HttpResponse{}; });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::string reply =
        rawExchange(server.port(), "GARBAGE\r\n\r\n");
    EXPECT_NE(reply.find("400"), std::string::npos) << reply;

    reply = rawExchange(server.port(),
                        "GET /fine HTTP/1.1\r\n"
                        "Content-Length: banana\r\n\r\n");
    EXPECT_NE(reply.find("400"), std::string::npos) << reply;

    // Well-formed requests still succeed on the same server.
    std::optional<std::string> body =
        httpGet(server.address(), "/fine", &error);
    EXPECT_TRUE(body.has_value()) << error;
}

TEST(StatsServer, StreamingResponsesArriveChunkedAndDecode)
{
    StatsServer server;
    server.routePrefix("GET", "/stream", [](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "application/x-ndjson";
        resp.stream = [](const ChunkWriter &write) {
            write("line-1\n");
            write("line-2\n");
            write("line-3\n");
        };
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    // The raw wire must carry chunked framing...
    std::string raw = rawExchange(server.port(),
                                  "GET /stream HTTP/1.1\r\n\r\n");
    EXPECT_NE(raw.find("Transfer-Encoding: chunked"),
              std::string::npos)
        << raw;

    // ...and the bundled client must reassemble the payload.
    std::optional<std::string> body =
        httpGet(server.address(), "/stream", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "line-1\nline-2\nline-3\n");
}

TEST(StatsServer, StalledClientsAreDroppedNotWedged)
{
    StatsServer server;
    server.route("/ok", [] {
        HttpResponse resp;
        resp.body = "ok\n";
        return resp;
    });
    server.setReadTimeoutMs(100);
    server.setWorkers(1);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    // Half a request, then silence: the read timeout must free the
    // (single) worker instead of wedging it forever.
    std::string reply = rawExchange(
        server.port(), "GET /ok HTTP/1.1\r\nX-Half: ", false);
    EXPECT_NE(reply.find("408"), std::string::npos) << reply;

    std::optional<std::string> body =
        httpGet(server.address(), "/ok", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "ok\n");
}

TEST(StatsServer, ResponsesEchoOrGenerateRequestIds)
{
    StatsServer server;
    server.route("/hello", [] {
        HttpResponse resp;
        resp.body = "hi\n";
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    // A client-supplied id is echoed verbatim...
    std::optional<HttpReply> reply =
        httpRequest(server.address(), "GET", "/hello", "", "",
                    &error, 5000, "my-id-123");
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(reply->requestId, "my-id-123");

    // ...and a request without one gets a server-generated id.
    reply = httpRequest(server.address(), "GET", "/hello", "", "",
                        &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_FALSE(reply->requestId.empty());
    EXPECT_EQ(reply->requestId[0], 'r');

    // The header is on the raw wire too, error responses included.
    std::string raw = rawExchange(server.port(),
                                  "GET /hello HTTP/1.1\r\n"
                                  "X-Request-Id: wire-id\r\n\r\n");
    EXPECT_NE(raw.find("X-Request-Id: wire-id"), std::string::npos)
        << raw;
    raw = rawExchange(server.port(), "GARBAGE\r\n\r\n");
    EXPECT_NE(raw.find("X-Request-Id: "), std::string::npos) << raw;
}

/** http_access records logged past @p sinceSeq with @p status. */
std::size_t
accessLogCount(std::uint64_t sinceSeq, int status)
{
    std::size_t matches = 0;
    std::string needle =
        "\"status\":" + std::to_string(status) + ",";
    for (const LogRecord &r : slog().tail()) {
        if (r.seq <= sinceSeq)
            continue;
        if (r.json.find("\"msg\":\"http_access\"") ==
            std::string::npos)
            continue;
        if (r.json.find(needle) != std::string::npos)
            ++matches;
    }
    return matches;
}

TEST(StatsServer, ClientErrorsAreCountedAndAccessLogged)
{
    StatsServer server;
    server.routePrefix("POST", "/sink", [](const HttpRequest &) {
        return HttpResponse{};
    });
    server.setMaxBodyBytes(64);
    server.setReadTimeoutMs(100);
    MetricsRegistry registry;
    server.registerMetrics(registry);
    registry.freeze();
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::uint64_t seq0 = slog().recorded();
    std::string raw = rawExchange(server.port(), "GARBAGE\r\n\r\n");
    EXPECT_NE(raw.find("400"), std::string::npos);
    raw = rawExchange(server.port(),
                      "POST /sink HTTP/1.1\r\nContent-Length: "
                      "1000\r\n\r\n" + std::string(1000, 'x'));
    EXPECT_NE(raw.find("413"), std::string::npos);
    raw = rawExchange(server.port(), "GET /sink HTTP/1.1\r\nX: ",
                      false);
    EXPECT_NE(raw.find("408"), std::string::npos);

    EXPECT_EQ(server.clientErrors(400), 1u);
    EXPECT_EQ(server.clientErrors(413), 1u);
    EXPECT_EQ(server.clientErrors(408), 1u);

    // Every rejected request still produced one access-log record.
    EXPECT_EQ(accessLogCount(seq0, 400), 1u);
    EXPECT_EQ(accessLogCount(seq0, 413), 1u);
    EXPECT_EQ(accessLogCount(seq0, 408), 1u);

    server.stageMetrics(registry);
    registry.publish();
    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find(
                  "vsnoop_http_responses_total{code=\"400\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find(
                  "vsnoop_http_responses_total{code=\"408\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find(
                  "vsnoop_http_responses_total{code=\"413\"} 1\n"),
              std::string::npos)
        << text;
}

TEST(StatsServer, PerRouteLatencyHistogramsCountRequests)
{
    StatsServer server;
    server.route("/hello", [] {
        HttpResponse resp;
        resp.body = "hi\n";
        return resp;
    });
    MetricsRegistry registry;
    server.registerMetrics(registry);
    registry.freeze();
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            httpGet(server.address(), "/hello", &error).has_value())
            << error;
    // A 404 never reaches a handler: it lands in the "other"
    // bucket, not a route's.
    httpGet(server.address(), "/missing", &error);

    server.stageMetrics(registry);
    registry.publish();
    std::string text = registry.renderPrometheus();
    EXPECT_NE(
        text.find("vsnoop_http_request_duration_us_count"
                  "{route=\"GET /hello\"} 3\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_http_request_duration_us_count"
                        "{route=\"other\"} 1\n"),
              std::string::npos)
        << text;
    // _count reconciles with the request counter.
    EXPECT_NE(text.find("vsnoop_http_requests_total 4\n"),
              std::string::npos)
        << text;
}

TEST(StatsServer, ServesALiveRegistrySnapshot)
{
    MetricsRegistry registry;
    MetricsRegistry::Id id = registry.addGauge("live", "Live.");
    registry.freeze();

    StatsServer server;
    server.route("/metrics", [&registry] {
        HttpResponse resp;
        resp.contentType = kPrometheusContentType;
        resp.body = registry.renderPrometheus();
        return resp;
    });
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    registry.set(id, 42.0);
    registry.publish();
    std::optional<std::string> body =
        httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_NE(body->find("live 42\n"), std::string::npos) << *body;

    registry.set(id, 43.0);
    registry.publish();
    body = httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_NE(body->find("live 43\n"), std::string::npos) << *body;
}

} // namespace
} // namespace vsnoop
