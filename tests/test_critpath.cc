/**
 * @file
 * Critical-path attribution and inter-VM interference accounting
 * (trace/critpath.hh): accountant unit behaviour, the end-to-end
 * conservation invariant, matrix reconciliation against the
 * coherence counters, the isolation A/B the paper argues for, and
 * the JSON surface the report tooling consumes.
 */

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "system/run_result.hh"
#include "system/sim_system.hh"
#include "trace/critpath.hh"

namespace vsnoop::test
{

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.accessesPerVcpu = 3000;
    cfg.l2.sizeBytes = 32 * 1024; // keep runs quick
    cfg.invariantCheckPeriod = 200000;
    return cfg;
}

AppProfile
quickApp()
{
    AppProfile p = findApp("ferret");
    p.privatePagesPerVcpu = 96;
    return p;
}

/** Sum one segment's total across all byReason cells. */
std::uint64_t
segmentSum(const CritPathSnapshot &cp, std::size_t seg)
{
    std::uint64_t sum = 0;
    for (std::size_t r = 0; r < kNumFilterReasons; ++r)
        sum += cp.byReason[seg][r].sum;
    return sum;
}

} // namespace

// ---------------------------------------------------------------------
// Accountant unit behaviour
// ---------------------------------------------------------------------

TEST(CritPathAccountant, MatrixIndexingAndHostRow)
{
    CritPathAccountant acct(4, 3);
    EXPECT_EQ(acct.dim(), 5u);

    // Cores 0..3 run VMs 0..3; core 4 is idle (no vCPU).
    acct.setCoreVmResolver([](CoreId core) {
        return core < 4 ? static_cast<VmId>(core) : kInvalidVm;
    });

    acct.snoopLookupLocal(2);     // diagonal [2][2]
    acct.snoopLookupRemote(1, 3); // [1][3]
    acct.snoopLookupRemote(1, 4); // idle core -> host column [1][4]
    // Hypervisor requester -> host row.
    acct.snoopLookupRemote(kInvalidVm, 0); // [4][0]

    EXPECT_EQ(acct.lookupAt(2, 2), 1u);
    EXPECT_EQ(acct.lookupAt(1, 3), 1u);
    EXPECT_EQ(acct.lookupAt(1, 4), 1u);
    EXPECT_EQ(acct.lookupAt(4, 0), 1u);
    EXPECT_EQ(acct.lookupsTotal.value(), 4u);
    EXPECT_EQ(acct.lookupsOffDiag.value(), 3u);

    InterferenceSnapshot in = acct.interferenceSnapshot();
    ASSERT_TRUE(in.enabled);
    EXPECT_EQ(in.dim, 5u);
    EXPECT_EQ(in.total(in.snoopLookups), 4u);
    EXPECT_EQ(in.offDiagonal(in.snoopLookups), 3u);
    EXPECT_DOUBLE_EQ(in.offDiagLookupShare(), 0.75);
    // Every lookup occupies the configured tag-port cycles.
    EXPECT_EQ(in.total(in.tagBusyCycles), 4u * 3u);
}

TEST(CritPathAccountant, BytesDeliveredAndReset)
{
    CritPathAccountant acct(2, 3);
    acct.bytesDelivered(0, 0, 64); // intra-VM
    acct.bytesDelivered(0, 1, 64); // cross-VM
    EXPECT_EQ(acct.bytesTotal.value(), 128u);
    EXPECT_EQ(acct.bytesOffDiag.value(), 64u);

    std::uint64_t seg[kNumCritSegments] = {};
    seg[0] = 10;
    seg[6] = 5;
    acct.recordTransaction(seg, 15, FilterReason::Baseline, 0);
    EXPECT_EQ(acct.transactions.value(), 1u);

    acct.resetStats();
    EXPECT_EQ(acct.transactions.value(), 0u);
    EXPECT_EQ(acct.bytesTotal.value(), 0u);
    EXPECT_EQ(acct.lookupsTotal.value(), 0u);
    InterferenceSnapshot in = acct.interferenceSnapshot();
    EXPECT_EQ(in.total(in.snoopLookups), 0u);
    EXPECT_EQ(in.total(in.bytesDelivered), 0u);
    CritPathSnapshot cp = acct.critSnapshot();
    for (std::size_t s = 0; s < kNumCritSegments; ++s)
        EXPECT_EQ(cp.segments[s].count(), 0u);
}

TEST(CritPathAccountant, RecordTransactionSplitsByReasonAndVm)
{
    CritPathAccountant acct(2, 3);
    std::uint64_t seg[kNumCritSegments] = {};
    seg[static_cast<std::size_t>(CritSegment::ReqTraversal)] = 7;
    seg[static_cast<std::size_t>(CritSegment::DataReturn)] = 3;
    acct.recordTransaction(seg, 10, FilterReason::VmPrivate, 1);
    acct.recordTransaction(seg, 10, FilterReason::VmPrivate, kInvalidVm);

    CritPathSnapshot cp = acct.critSnapshot();
    ASSERT_TRUE(cp.enabled);
    std::size_t req =
        static_cast<std::size_t>(CritSegment::ReqTraversal);
    std::size_t reason =
        static_cast<std::size_t>(FilterReason::VmPrivate);
    EXPECT_EQ(cp.byReason[req][reason].count, 2u);
    EXPECT_EQ(cp.byReason[req][reason].sum, 14u);
    ASSERT_EQ(cp.vmRows, 3u);
    EXPECT_EQ(cp.vmCell(req, 1).sum, 7u);
    // The hypervisor transaction lands in the host row.
    EXPECT_EQ(cp.vmCell(req, 2).sum, 7u);
    EXPECT_EQ(cp.segments[req].count(), 2u);
    EXPECT_EQ(cp.segments[req].sum(), 14u);
}

// ---------------------------------------------------------------------
// End-to-end invariants
// ---------------------------------------------------------------------

TEST(CritPathSystem, SegmentsConserveLatencyUnderRelocation)
{
    // The hardest configuration for the decomposition: virtual
    // snooping with live vCPU relocation and warmup reset, so
    // retries, persistent escalations and map maintenance all
    // occur, and in-flight transactions cross the reset boundary.
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.migrationPeriod = 30000;
    cfg.warmupAccessesPerVcpu = 500;
    SimSystem sys(cfg, quickApp());
    sys.run();
    SystemResults r = sys.results();

    ASSERT_TRUE(r.critpath.enabled);
    ASSERT_GT(r.latency.count(), 0u);

    // Every transaction contributes one sample to every segment
    // histogram (zeros included), and the segment sums telescope to
    // the end-to-end latency total — exact, not approximate.
    std::uint64_t seg_total = 0;
    for (std::size_t s = 0; s < kNumCritSegments; ++s) {
        EXPECT_EQ(r.critpath.segments[s].count(), r.latency.count())
            << critSegmentName(static_cast<CritSegment>(s));
        seg_total += r.critpath.segments[s].sum();
        // The per-reason split of each segment re-sums to the
        // segment histogram.
        EXPECT_EQ(segmentSum(r.critpath, s),
                  r.critpath.segments[s].sum())
            << critSegmentName(static_cast<CritSegment>(s));
    }
    EXPECT_EQ(seg_total, r.latency.sum());

    // Relocation forces retry/persistent activity; the decomposition
    // must attribute some of it.
    EXPECT_GT(r.retries, 0u);
    std::size_t retry =
        static_cast<std::size_t>(CritSegment::RetryBackoff);
    EXPECT_GT(r.critpath.segments[retry].sum(), 0u);
}

TEST(CritPathSystem, InterferenceMatrixMatchesSnoopLookups)
{
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.warmupAccessesPerVcpu = 500;
    SimSystem sys(cfg, quickApp());
    sys.run();
    SystemResults r = sys.results();

    ASSERT_TRUE(r.interference.enabled);
    const InterferenceSnapshot &in = r.interference;
    EXPECT_EQ(in.dim, cfg.numVms + 1);
    // Lookups are charged to the matrix at the same points the
    // coherence counter increments (and both reset at the warmup
    // boundary), so the totals agree exactly.
    EXPECT_EQ(in.total(in.snoopLookups), r.snoopLookups);
    // Row sums cover the total: every lookup has exactly one
    // requesting row.
    std::uint64_t row_sum = 0;
    for (std::uint32_t req = 0; req < in.dim; ++req)
        for (std::uint32_t tgt = 0; tgt < in.dim; ++tgt)
            row_sum += in.at(in.snoopLookups, req, tgt);
    EXPECT_EQ(row_sum, r.snoopLookups);
    EXPECT_EQ(in.total(in.tagBusyCycles),
              r.snoopLookups * cfg.protocol.tagLookupCycles);
}

TEST(CritPathSystem, VirtualSnoopingCutsOffDiagonalShare)
{
    // The isolation claim, measured directly: under broadcast, a
    // pinned 4-VM/16-core system spends ~12/16 of its lookups on
    // foreign tags; virtual snooping confines lookups to the
    // requester's own VM except for content/hypervisor sharing.
    AppProfile app = quickApp();
    app.hypervisorFraction = 0.0;

    SystemConfig base_cfg = smallConfig();
    base_cfg.policy = PolicyKind::TokenB;
    SimSystem base(base_cfg, app);
    base.run();

    SystemConfig vs_cfg = smallConfig();
    vs_cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem vs(vs_cfg, app);
    vs.run();

    double base_share =
        base.results().interference.offDiagLookupShare();
    double vs_share = vs.results().interference.offDiagLookupShare();
    EXPECT_NEAR(base_share, 0.75, 0.05);
    EXPECT_LT(vs_share, 0.5 * base_share);
}

// ---------------------------------------------------------------------
// JSON surface
// ---------------------------------------------------------------------

TEST(CritPathSystem, RunJsonCarriesCritpathAndInterference)
{
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    RunResult run = collectRun(cfg, quickApp());

    std::string error;
    auto parsed = parseJson(run.toJson(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    const JsonValue *results = parsed->find("results");
    ASSERT_NE(results, nullptr);

    const JsonValue *critpath = results->find("critpath");
    ASSERT_NE(critpath, nullptr);
    const JsonValue *segments = critpath->find("segments");
    ASSERT_NE(segments, nullptr);
    EXPECT_EQ(segments->members().size(), kNumCritSegments);
    // Conservation must survive the serialization round trip.
    double seg_total = 0.0;
    for (const auto &member : segments->members()) {
        EXPECT_EQ(member.second.numberAt("count"),
                  static_cast<double>(run.results.latency.count()));
        seg_total += member.second.numberAt("sum");
    }
    const JsonValue *latency = results->find("latency");
    ASSERT_NE(latency, nullptr);
    const JsonValue *all = latency->find("all");
    ASSERT_NE(all, nullptr);
    EXPECT_EQ(seg_total, all->numberAt("sum"));

    const JsonValue *interference = results->find("interference");
    ASSERT_NE(interference, nullptr);
    const JsonValue *rows = interference->find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_TRUE(rows->isArray());
    EXPECT_EQ(rows->items().size(), cfg.numVms + 1);
    EXPECT_EQ(rows->items().back().string(), "host");
    const JsonValue *matrix = interference->find("snoop_lookups");
    ASSERT_NE(matrix, nullptr);
    ASSERT_TRUE(matrix->isArray());
    ASSERT_EQ(matrix->items().size(), cfg.numVms + 1);
    double matrix_total = 0.0;
    for (const JsonValue &row : matrix->items()) {
        ASSERT_EQ(row.items().size(), cfg.numVms + 1);
        for (const JsonValue &cell : row.items())
            matrix_total += cell.number();
    }
    EXPECT_EQ(matrix_total,
              static_cast<double>(run.results.snoopLookups));
    double share = interference->numberAt("offdiag_snoop_share", -1.0);
    EXPECT_GE(share, 0.0);
    EXPECT_LE(share, 1.0);
}

} // namespace vsnoop::test
