/**
 * @file
 * Unit tests for the text table renderer.
 */

#include <gtest/gtest.h>

#include "sim/table.hh"

namespace vsnoop::test
{

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"app", "value"});
    t.row().cell("fft").cell(1.5);
    t.row().cell("blackscholes").cell(23.25);
    std::string out = t.render();
    EXPECT_NE(out.find("app"), std::string::npos);
    EXPECT_NE(out.find("blackscholes"), std::string::npos);
    EXPECT_NE(out.find("23.25"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, AddRowChecksWidth)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTable, CellOverflowPanics)
{
    TextTable t({"a"});
    t.row().cell("x");
    EXPECT_DEATH(t.cell("y"), "too many cells");
}

TEST(TextTable, IntegerCells)
{
    TextTable t({"n"});
    t.row().cell(std::uint64_t{42});
    EXPECT_NE(t.render().find("42"), std::string::npos);
}

TEST(Format, FixedAndPercent)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatPercent(0.638, 1), "63.8");
    EXPECT_EQ(formatPercent(1.0, 0), "100");
}

} // namespace vsnoop::test
