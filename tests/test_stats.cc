/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace vsnoop::test
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 16u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, MomentsAreCorrect)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.stddev(), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(1.0, 10);
    h.sample(0.5);
    h.sample(1.5);
    h.sample(1.6);
    h.sample(25.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketHits(0), 1u);
    EXPECT_EQ(h.bucketHits(1), 2u);
    EXPECT_EQ(h.overflowHits(), 1u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket)
{
    Histogram h(1.0, 4);
    h.sample(-3.0);
    EXPECT_EQ(h.bucketHits(0), 1u);
}

TEST(Histogram, CdfIsMonotone)
{
    Histogram h(1.0, 10);
    for (double v : {0.5, 1.5, 2.5, 3.5, 8.5})
        h.sample(v);
    double prev = 0.0;
    for (double x = 1.0; x <= 10.0; x += 1.0) {
        double c = h.cdfAt(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(10.0), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(2.0), 0.4);
}

TEST(Histogram, QuantileFindsBucketEdge)
{
    Histogram h(2.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(static_cast<double>(i)); // buckets 0..4
    EXPECT_DOUBLE_EQ(h.quantile(0.2), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileInOverflow)
{
    Histogram h(1.0, 2);
    h.sample(100.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Histogram, CdfPointsSkipLeadingEmpties)
{
    Histogram h(1.0, 10);
    h.sample(5.5);
    h.sample(6.5);
    auto points = h.cdfPoints();
    ASSERT_FALSE(points.empty());
    EXPECT_DOUBLE_EQ(points.front().first, 6.0);
    EXPECT_DOUBLE_EQ(points.front().second, 0.5);
    EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Histogram, EmptyCdf)
{
    Histogram h(1.0, 4);
    EXPECT_EQ(h.cdfAt(2.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_TRUE(h.cdfPoints().empty());
}

TEST(StatSet, DumpsSortedNames)
{
    StatSet set;
    Counter b, a;
    a.inc(3);
    b.inc(7);
    set.add("zeta", b);
    set.add("alpha", a);
    std::string dump = set.dump();
    EXPECT_NE(dump.find("alpha 3"), std::string::npos);
    EXPECT_NE(dump.find("zeta 7"), std::string::npos);
    EXPECT_LT(dump.find("alpha"), dump.find("zeta"));
}

TEST(StatSet, IncludesDistributions)
{
    StatSet set;
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    set.add("lat", d);
    std::string dump = set.dump();
    EXPECT_NE(dump.find("lat.mean 3"), std::string::npos);
    EXPECT_NE(dump.find("lat.count 2"), std::string::npos);
}

} // namespace vsnoop::test
