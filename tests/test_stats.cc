/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace vsnoop::test
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 16u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, MomentsAreCorrect)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-9);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.stddev(), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.variance(), 0.0);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(Distribution, VarianceSurvivesLargeOffset)
{
    // The sum-of-squares formula catastrophically cancels here:
    // sumSq ~ 1e24 while the true variance is 2/3, far below the
    // resolution of doubles near 1e24.  Welford's update keeps
    // full precision.  Samples like these are exactly what a
    // latency distribution sees late in a long run, when tick
    // timestamps are large.
    Distribution d;
    const double offset = 1e12;
    for (double v : {offset + 1.0, offset + 2.0, offset + 3.0})
        d.sample(v);
    EXPECT_NEAR(d.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(d.variance(), 2.0 / 3.0, 1e-6);
    EXPECT_NEAR(d.stddev(), std::sqrt(2.0 / 3.0), 1e-6);
    EXPECT_DOUBLE_EQ(d.min(), offset + 1.0);
    EXPECT_DOUBLE_EQ(d.max(), offset + 3.0);
}

TEST(Distribution, VarianceMatchesTwoPassOnManySamples)
{
    Distribution d;
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) {
        double v = 5e9 + static_cast<double>(i % 7);
        d.sample(v);
        sum += v;
    }
    double mean = sum / 1000.0;
    double m2 = 0.0;
    for (int i = 0; i < 1000; ++i) {
        double v = 5e9 + static_cast<double>(i % 7);
        m2 += (v - mean) * (v - mean);
    }
    EXPECT_NEAR(d.variance(), m2 / 1000.0, 1e-6);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(1.0, 10);
    h.sample(0.5);
    h.sample(1.5);
    h.sample(1.6);
    h.sample(25.0); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketHits(0), 1u);
    EXPECT_EQ(h.bucketHits(1), 2u);
    EXPECT_EQ(h.overflowHits(), 1u);
}

TEST(Histogram, NegativeSamplesAreAnAccountingBug)
{
    // Sampled quantities (ticks, counts) are non-negative by
    // construction; silently clamping a negative sample into
    // bucket 0 would hide the upstream error.
    Histogram h(1.0, 4);
    EXPECT_DEATH(h.sample(-3.0), "negative histogram sample");
}

TEST(Histogram, CdfIsMonotone)
{
    Histogram h(1.0, 10);
    for (double v : {0.5, 1.5, 2.5, 3.5, 8.5})
        h.sample(v);
    double prev = 0.0;
    for (double x = 1.0; x <= 10.0; x += 1.0) {
        double c = h.cdfAt(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(10.0), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(2.0), 0.4);
}

TEST(Histogram, QuantileFindsBucketEdge)
{
    Histogram h(2.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(static_cast<double>(i)); // buckets 0..4
    EXPECT_DOUBLE_EQ(h.quantile(0.2), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileZeroIsSmallestPopulatedEdge)
{
    // quantile(0) used to satisfy "acc >= ceil(0) = 0" at bucket 0
    // even when that bucket was empty, reporting the first bucket
    // edge instead of the minimum's bucket.
    Histogram h(1.0, 10);
    h.sample(5.5);
    h.sample(7.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 6.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(Histogram, QuantileInOverflowIsDistinguishable)
{
    // A quantile that lies in the overflow bucket reports
    // +infinity; a legitimate top-edge result stays finite, so the
    // two cases cannot be confused.
    Histogram h(1.0, 2);
    h.sample(1.5); // top regular bucket
    h.sample(100.0); // overflow
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    EXPECT_TRUE(std::isinf(h.quantile(1.0)));
}

TEST(Histogram, QuantileRejectsOutOfRange)
{
    Histogram h(1.0, 2);
    h.sample(0.5);
    EXPECT_DEATH(h.quantile(-0.1), "outside");
    EXPECT_DEATH(h.quantile(1.5), "outside");
}

TEST(Histogram, CdfPointsSkipLeadingEmpties)
{
    Histogram h(1.0, 10);
    h.sample(5.5);
    h.sample(6.5);
    auto points = h.cdfPoints();
    ASSERT_FALSE(points.empty());
    EXPECT_DOUBLE_EQ(points.front().first, 6.0);
    EXPECT_DOUBLE_EQ(points.front().second, 0.5);
    EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(Histogram, EmptyCdf)
{
    Histogram h(1.0, 4);
    EXPECT_EQ(h.cdfAt(2.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_TRUE(h.cdfPoints().empty());
}

TEST(StatSet, DumpsSortedNames)
{
    StatSet set;
    Counter b, a;
    a.inc(3);
    b.inc(7);
    set.add("zeta", b);
    set.add("alpha", a);
    std::string dump = set.dump();
    EXPECT_NE(dump.find("alpha 3"), std::string::npos);
    EXPECT_NE(dump.find("zeta 7"), std::string::npos);
    EXPECT_LT(dump.find("alpha"), dump.find("zeta"));
}

TEST(StatSet, IncludesDistributions)
{
    StatSet set;
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    set.add("lat", d);
    std::string dump = set.dump();
    EXPECT_NE(dump.find("lat.mean 3"), std::string::npos);
    EXPECT_NE(dump.find("lat.count 2"), std::string::npos);
}

TEST(StatSet, DumpsFullDistributionSummary)
{
    StatSet set;
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    set.add("lat", d);
    std::string dump = set.dump();
    EXPECT_NE(dump.find("lat.min 2"), std::string::npos);
    EXPECT_NE(dump.find("lat.max 4"), std::string::npos);
    EXPECT_NE(dump.find("lat.stddev 1"), std::string::npos);
}

TEST(StatSet, DuplicateNamesAssert)
{
    StatSet set;
    Counter a, b;
    Distribution d;
    set.add("snoops", a);
    EXPECT_DEATH(set.add("snoops", b), "duplicate stat name");
    // A distribution may not shadow a counter either.
    EXPECT_DEATH(set.add("snoops", d), "duplicate stat name");
    set.add("latency", d);
    EXPECT_DEATH(set.add("latency", a), "duplicate stat name");
}

TEST(StatSet, DumpJsonIsStructured)
{
    StatSet set;
    Counter c;
    c.inc(7);
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    set.add("snoops", c);
    set.add("lat", d);
    EXPECT_EQ(set.dumpJson(),
              "{\"snoops\":7,"
              "\"lat\":{\"count\":2,\"mean\":3,\"stddev\":1,"
              "\"min\":2,\"max\":4}}");
}

TEST(LatencyHistogram, BucketBoundariesAreLog2)
{
    // Bucket 0 holds only zero; bucket i >= 1 holds the values with
    // exactly i significant bits: [2^(i-1), 2^i - 1].
    EXPECT_EQ(LatencyHistogram::bucketFor(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketFor(1), 1u);
    EXPECT_EQ(LatencyHistogram::bucketFor(2), 2u);
    EXPECT_EQ(LatencyHistogram::bucketFor(3), 2u);
    EXPECT_EQ(LatencyHistogram::bucketFor(4), 3u);
    EXPECT_EQ(LatencyHistogram::bucketFor(7), 3u);
    EXPECT_EQ(LatencyHistogram::bucketFor(8), 4u);
    EXPECT_EQ(LatencyHistogram::bucketFor(1023), 10u);
    EXPECT_EQ(LatencyHistogram::bucketFor(1024), 11u);
    for (std::size_t i = 1; i < LatencyHistogram::kNumBuckets - 1; ++i) {
        std::uint64_t lo = LatencyHistogram::bucketLowerEdge(i);
        std::uint64_t hi = LatencyHistogram::bucketUpperEdge(i);
        EXPECT_EQ(LatencyHistogram::bucketFor(lo), i);
        EXPECT_EQ(LatencyHistogram::bucketFor(hi), i);
        EXPECT_EQ(hi + 1, LatencyHistogram::bucketLowerEdge(i + 1));
    }
    // Values past the last finite boundary clamp into the overflow
    // bucket rather than indexing out of range.
    EXPECT_EQ(LatencyHistogram::bucketFor(std::uint64_t{1} << 45),
              LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogram, MomentsTrackSamples)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    h.sample(10);
    h.sample(30);
    h.sample(20);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(LatencyHistogram, QuantilesAnswerFromBucketEdges)
{
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(5); // bucket 3: [4, 7]
    for (int i = 0; i < 10; ++i)
        h.sample(1000); // bucket 10: [512, 1023]
    // The median rank lands in bucket 3; the histogram answers with
    // that bucket's inclusive upper edge.
    EXPECT_EQ(h.quantile(0.5), 7u);
    // Rank 109 of 110 lands in the top populated bucket, whose edge
    // (1023) is clamped to the observed maximum.
    EXPECT_EQ(h.quantile(0.99), 1000u);
    EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(LatencyHistogram, QuantileOfUniformValueIsExact)
{
    // Every sample identical: edge clamping must recover the exact
    // value at every quantile, not the bucket boundary.
    LatencyHistogram h;
    for (int i = 0; i < 7; ++i)
        h.sample(227);
    EXPECT_EQ(h.quantile(0.5), 227u);
    EXPECT_EQ(h.quantile(0.99), 227u);
    EXPECT_EQ(h.quantile(0.0), 227u);
}

TEST(LatencyHistogram, OverflowBucketClampsToObservedRange)
{
    LatencyHistogram h;
    h.sample(std::uint64_t{1} << 45);
    EXPECT_EQ(h.bucketHits(LatencyHistogram::kNumBuckets - 1), 1u);
    EXPECT_EQ(h.quantile(0.5), std::uint64_t{1} << 45);
}

} // namespace vsnoop::test
