/**
 * @file
 * Unit tests for the optional inclusive write-through L1 level.
 */

#include <gtest/gtest.h>

#include "coherence_harness.hh"
#include "system/sim_system.hh"

namespace vsnoop::test
{

TEST(L1, ReadsHitAfterFill)
{
    CoherenceHarness h(nullptr, 16 * 1024, 4, 4 * 1024);
    auto miss = h.access(0, 0x1000, false);
    EXPECT_TRUE(miss.wasMiss);
    // Second read hits the L1, not even the L2.
    auto before_l2_hits = h.system->stats.l2Hits.value();
    auto hit = h.access(0, 0x1000, false);
    EXPECT_FALSE(hit.wasMiss);
    EXPECT_EQ(h.system->stats.l2Hits.value(), before_l2_hits);
    EXPECT_EQ(h.system->controller(0).l1Hits.value(), 1u);
    // And it is faster than an L2 hit (latency 2 vs 10).
    EXPECT_LE(hit.doneAt - h.eq.now(), 2u);
}

TEST(L1, WritesGoThroughToL2)
{
    CoherenceHarness h(nullptr, 16 * 1024, 4, 4 * 1024);
    h.access(0, 0x1000, true);
    // A write after the fill still charges the L2 (write-through).
    auto before = h.system->stats.l2Hits.value();
    h.access(0, 0x1000, true);
    EXPECT_EQ(h.system->stats.l2Hits.value(), before + 1);
}

TEST(L1, RemoteWriteInvalidatesL1Copy)
{
    CoherenceHarness h(nullptr, 16 * 1024, 4, 4 * 1024);
    h.access(0, 0x1000, false); // core 0 caches in L1+L2
    h.access(1, 0x1000, true);  // remote write invalidates both

    EXPECT_EQ(h.line(0, 0x1000), nullptr);
    EXPECT_EQ(h.system->controller(0).l1().find(HostAddr(0x1000)),
              nullptr)
        << "inclusion: the L1 copy must die with the L2 line";
    // The next read at core 0 misses again.
    auto again = h.access(0, 0x1000, false);
    EXPECT_TRUE(again.wasMiss);
}

TEST(L1, L2EvictionMaintainsInclusion)
{
    // 16 KB 4-way L2 has 64 sets; five same-set lines force an
    // eviction whose L1 copy must also be dropped.
    CoherenceHarness h(nullptr, 16 * 1024, 4, 16 * 1024);
    std::uint64_t stride = 64 * 64;
    for (int i = 0; i < 5; ++i)
        h.access(0, 0x100000 + i * stride, false);
    EXPECT_GT(h.system->controller(0).cache().evictions.value(), 0u);
    // Whatever left the L2 must not linger in the L1.
    h.system->controller(0).l1().forEachLine(
        [&](const CacheLine &l1_line) {
            EXPECT_NE(h.line(0, l1_line.addr.raw()), nullptr)
                << "L1 line " << l1_line.addr.raw()
                << " has no L2 backing";
        });
}

TEST(L1, TokenConservationUnaffected)
{
    CoherenceHarness h(nullptr, 16 * 1024, 4, 4 * 1024);
    for (CoreId c = 0; c < 16; ++c) {
        h.access(c, 0x2000, false);
        h.access(c, 0x2000, false); // L1 hit round
    }
    h.access(3, 0x2000, true);
    h.drain(); // includes checkInvariants()
}

TEST(L1, EndToEndReducesL2Pressure)
{
    // The generators spread accesses over whole pages, so per-line
    // reuse is diluted; a 32 KB L1 still absorbs a solid slice of
    // the hottest lines (empirically ~25% for specjbb).
    AppProfile app = findApp("specjbb");
    auto run = [&](std::uint64_t l1_bytes, std::uint64_t &l1_hits) {
        SystemConfig cfg;
        cfg.accessesPerVcpu = 3000;
        cfg.l2.sizeBytes = 128 * 1024;
        cfg.l2.l1SizeBytes = l1_bytes;
        SimSystem sys(cfg, app);
        sys.run();
        l1_hits = 0;
        for (CoreId c = 0; c < 16; ++c)
            l1_hits += sys.coherence().controller(c).l1Hits.value();
        return sys.coherence().stats.l2Hits.value() +
               sys.coherence().stats.transactions.value();
    };
    std::uint64_t hits_without = 0, hits_with = 0;
    std::uint64_t without = run(0, hits_without);
    std::uint64_t with = run(32 * 1024, hits_with);
    EXPECT_EQ(hits_without, 0u);
    EXPECT_GT(hits_with, 48000u / 10); // >10% of accesses
    EXPECT_EQ(with + hits_with, without)
        << "every access is either an L1 hit or reaches the L2";
    EXPECT_LT(with, without * 85 / 100);
}

} // namespace vsnoop::test
