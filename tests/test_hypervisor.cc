/**
 * @file
 * Unit tests for the hypervisor: allocation, translation,
 * hypervisor-shared regions, content-based sharing and COW.
 */

#include <gtest/gtest.h>

#include <vector>

#include "virt/hypervisor.hh"
#include "virt/page_event.hh"

namespace vsnoop::test
{

/** Records every lifecycle event the hypervisor emits. */
struct RecordingListener : public PageEventListener
{
    std::vector<PageEvent> events;
    void onPageEvent(const PageEvent &event) override
    {
        events.push_back(event);
    }
    std::size_t
    count(PageEventKind kind) const
    {
        std::size_t n = 0;
        for (const PageEvent &e : events)
            if (e.kind == kind)
                n++;
        return n;
    }
};

TEST(Hypervisor, CreateVmsAssignsSequentialIds)
{
    Hypervisor hv;
    EXPECT_EQ(hv.createVm(4), 0);
    EXPECT_EQ(hv.createVm(2), 1);
    EXPECT_EQ(hv.numVms(), 2u);
    EXPECT_EQ(hv.numVcpus(0), 4u);
    EXPECT_EQ(hv.numVcpus(1), 2u);
}

TEST(Hypervisor, FirstTouchAllocatesPrivatePage)
{
    Hypervisor hv;
    VmId vm = hv.createVm(1);
    Translation t = hv.translateData(vm, makeGuestAddr(100, 0x40), false);
    EXPECT_EQ(t.type, PageType::VmPrivate);
    EXPECT_EQ(t.addr.pageOffset(), 0x40u);
    EXPECT_EQ(hv.pagesAllocated.value(), 1u);

    // Second touch reuses the mapping.
    Translation t2 = hv.translateData(vm, makeGuestAddr(100, 0x80), true);
    EXPECT_EQ(t2.addr.pageNum(), t.addr.pageNum());
    EXPECT_EQ(hv.pagesAllocated.value(), 1u);
}

TEST(Hypervisor, DistinctVmsGetDistinctHostPages)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    Translation ta = hv.translateData(a, makeGuestAddr(5), false);
    Translation tb = hv.translateData(b, makeGuestAddr(5), false);
    EXPECT_NE(ta.addr.pageNum(), tb.addr.pageNum());
}

TEST(Hypervisor, HypervisorRegionIsRwShared)
{
    Hypervisor hv;
    Translation t = hv.hypervisorAddr(3, 0x100);
    EXPECT_EQ(t.type, PageType::RwShared);
    // Stable across calls.
    EXPECT_EQ(hv.hypervisorAddr(3).addr.pageNum(), t.addr.pageNum());
    // Different pages differ.
    EXPECT_NE(hv.hypervisorAddr(4).addr.pageNum(), t.addr.pageNum());
}

TEST(Hypervisor, VmSharedPagesAreStablePerVm)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    Translation ta = hv.vmSharedAddr(a, 0);
    Translation tb = hv.vmSharedAddr(b, 0);
    EXPECT_EQ(ta.type, PageType::RwShared);
    EXPECT_NE(ta.addr.pageNum(), tb.addr.pageNum());
    EXPECT_EQ(hv.vmSharedAddr(a, 0).addr.pageNum(), ta.addr.pageNum());
}

TEST(Hypervisor, ContentScanMergesIdenticalPages)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    // Both VMs touch their page first (distinct host pages).
    Translation ta = hv.translateData(a, makeGuestAddr(10), false);
    Translation tb = hv.translateData(b, makeGuestAddr(10), false);
    EXPECT_NE(ta.addr.pageNum(), tb.addr.pageNum());

    hv.declareContent(a, 10, 777);
    hv.declareContent(b, 10, 777);
    std::uint64_t merged = hv.runContentScan();
    EXPECT_GE(merged, 1u);

    Translation ta2 = hv.translateData(a, makeGuestAddr(10), false);
    Translation tb2 = hv.translateData(b, makeGuestAddr(10), false);
    EXPECT_EQ(ta2.addr.pageNum(), tb2.addr.pageNum());
    EXPECT_EQ(ta2.type, PageType::RoShared);
    EXPECT_EQ(tb2.type, PageType::RoShared);
}

TEST(Hypervisor, UniqueContentIsNotShared)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    hv.translateData(a, makeGuestAddr(10), false);
    hv.declareContent(a, 10, 999); // nobody else has class 999
    hv.runContentScan();
    Translation t = hv.translateData(a, makeGuestAddr(10), false);
    EXPECT_EQ(t.type, PageType::VmPrivate);
}

TEST(Hypervisor, UntouchedDeclaredPagesMapToCanonical)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    hv.declareContent(a, 20, 55);
    hv.declareContent(b, 20, 55);
    hv.runContentScan();
    Translation ta = hv.translateData(a, makeGuestAddr(20), false);
    Translation tb = hv.translateData(b, makeGuestAddr(20), false);
    EXPECT_EQ(ta.addr.pageNum(), tb.addr.pageNum());
    EXPECT_EQ(ta.type, PageType::RoShared);
}

TEST(Hypervisor, CowBreaksSharingForWriterOnly)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    hv.declareContent(a, 10, 777);
    hv.declareContent(b, 10, 777);
    hv.runContentScan();

    Translation tw = hv.translateData(a, makeGuestAddr(10, 0x8), true);
    EXPECT_TRUE(tw.cowBroke);
    EXPECT_EQ(tw.type, PageType::VmPrivate);
    EXPECT_EQ(hv.cowBreaks.value(), 1u);

    // The writer now has a private copy; the reader still shares.
    Translation ta = hv.translateData(a, makeGuestAddr(10), false);
    Translation tb = hv.translateData(b, makeGuestAddr(10), false);
    EXPECT_EQ(ta.type, PageType::VmPrivate);
    EXPECT_EQ(tb.type, PageType::RoShared);
    EXPECT_NE(ta.addr.pageNum(), tb.addr.pageNum());

    // A second write by the same VM is a plain private write.
    Translation tw2 = hv.translateData(a, makeGuestAddr(10), true);
    EXPECT_FALSE(tw2.cowBroke);
}

TEST(Hypervisor, RescanAfterCowDoesNotResurrectWriter)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    hv.declareContent(a, 10, 777);
    hv.declareContent(b, 10, 777);
    hv.runContentScan();
    hv.translateData(a, makeGuestAddr(10), true); // COW
    hv.runContentScan();
    // The writer's copy diverged: it must stay private.
    EXPECT_EQ(hv.translateData(a, makeGuestAddr(10), false).type,
              PageType::VmPrivate);
    EXPECT_EQ(hv.translateData(b, makeGuestAddr(10), false).type,
              PageType::RoShared);
}

TEST(Hypervisor, MappingGenerationAdvances)
{
    Hypervisor hv;
    VmId a = hv.createVm(1);
    std::uint64_t g0 = hv.mappingGeneration();
    hv.translateData(a, makeGuestAddr(1), false);
    EXPECT_GT(hv.mappingGeneration(), g0);
}

TEST(Hypervisor, ThreeWaySharing)
{
    Hypervisor hv;
    VmId vms[3];
    for (auto &vm : vms)
        vm = hv.createVm(1);
    for (VmId vm : vms) {
        hv.translateData(vm, makeGuestAddr(4), false);
        hv.declareContent(vm, 4, 42);
    }
    EXPECT_EQ(hv.runContentScan(), 2u); // two pages freed
    std::uint64_t canonical =
        hv.translateData(vms[0], makeGuestAddr(4), false).addr.pageNum();
    for (VmId vm : vms) {
        EXPECT_EQ(hv.translateData(vm, makeGuestAddr(4), false)
                      .addr.pageNum(),
                  canonical);
    }
    EXPECT_EQ(hv.pagesDeduplicated.value(), 2u);
}

TEST(Hypervisor, FirstTouchEmitsOneMapEvent)
{
    Hypervisor hv;
    RecordingListener listener;
    hv.setPageListener(&listener);
    VmId a = hv.createVm(1);
    hv.translateData(a, makeGuestAddr(10), false);
    hv.translateData(a, makeGuestAddr(10), true); // reuse: no event
    ASSERT_EQ(listener.events.size(), 1u);
    const PageEvent &e = listener.events[0];
    EXPECT_EQ(e.kind, PageEventKind::Map);
    EXPECT_EQ(e.vm, a);
    EXPECT_EQ(e.guestPage, 10u);
    EXPECT_EQ(e.type, PageType::VmPrivate);
}

TEST(Hypervisor, CowBreakEmitsExactlyOneLifecycleRecord)
{
    Hypervisor hv;
    RecordingListener listener;
    hv.setPageListener(&listener);
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    hv.translateData(a, makeGuestAddr(10), false);
    hv.translateData(b, makeGuestAddr(10), false);
    hv.declareContent(a, 10, 777);
    hv.declareContent(b, 10, 777);
    hv.runContentScan();
    std::uint64_t shared_page =
        hv.translateData(b, makeGuestAddr(10), false).addr.pageNum();

    listener.events.clear();
    Translation tw = hv.translateData(a, makeGuestAddr(10, 0x8), true);
    ASSERT_TRUE(tw.cowBroke);
    ASSERT_EQ(listener.events.size(), 1u);
    const PageEvent &e = listener.events[0];
    EXPECT_EQ(e.kind, PageEventKind::CowBreak);
    EXPECT_EQ(e.vm, a);
    EXPECT_EQ(e.guestPage, 10u);
    // The record carries both sides of the break: the writer's new
    // private page and the shared page it diverged from.
    EXPECT_EQ(e.hostPage, tw.addr.pageNum());
    EXPECT_EQ(e.prevHostPage, shared_page);
    EXPECT_EQ(e.type, PageType::VmPrivate);
    EXPECT_EQ(e.prevType, PageType::RoShared);

    // A later private write emits nothing further.
    listener.events.clear();
    hv.translateData(a, makeGuestAddr(10), true);
    EXPECT_TRUE(listener.events.empty());
}

TEST(Hypervisor, ContentMergeEmitsExactlyOneRemapRecord)
{
    Hypervisor hv;
    RecordingListener listener;
    hv.setPageListener(&listener);
    VmId a = hv.createVm(1);
    VmId b = hv.createVm(1);
    std::uint64_t own_a =
        hv.translateData(a, makeGuestAddr(10), false).addr.pageNum();
    std::uint64_t own_b =
        hv.translateData(b, makeGuestAddr(10), false).addr.pageNum();
    hv.declareContent(a, 10, 777);
    hv.declareContent(b, 10, 777);

    listener.events.clear();
    EXPECT_EQ(hv.runContentScan(), 1u);
    // One VM keeps its page as the canonical copy (a type change);
    // exactly one relocation remap moves the other VM's mapping.
    EXPECT_EQ(listener.count(PageEventKind::Remap), 1u);
    EXPECT_EQ(listener.count(PageEventKind::TypeChange), 1u);
    EXPECT_EQ(listener.events.size(), 2u);
    for (const PageEvent &e : listener.events) {
        if (e.kind != PageEventKind::Remap)
            continue;
        EXPECT_EQ(e.prevHostPage, e.vm == a ? own_a : own_b);
        EXPECT_EQ(e.type, PageType::RoShared);
        EXPECT_EQ(e.prevType, PageType::VmPrivate);
    }

    // A rescan with nothing new to merge is silent.
    listener.events.clear();
    hv.runContentScan();
    EXPECT_TRUE(listener.events.empty());
}

TEST(HypervisorDeath, BadVmPanics)
{
    Hypervisor hv;
    EXPECT_DEATH(hv.translateData(5, makeGuestAddr(1), false), "bad VM");
}

} // namespace vsnoop::test
