/**
 * @file
 * Unit tests for the host self-profiler.
 *
 * Wall-clock durations are nondeterministic, so these tests assert
 * structural properties — conservation of the profiled interval
 * across phases, stack discipline, merge arithmetic — rather than
 * absolute times.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/profiler.hh"

namespace vsnoop::test
{

namespace
{
/** Burn a little CPU so phase intervals are nonzero-ish. */
volatile std::uint64_t busy_sink = 0;
void
spin()
{
    for (int i = 0; i < 10000; ++i)
        busy_sink = busy_sink + static_cast<std::uint64_t>(i);
}
} // namespace

TEST(HostProfiler, StartsIdleAndEmpty)
{
    HostProfiler p;
    EXPECT_FALSE(p.running());
    EXPECT_EQ(p.totalNanos(), 0u);
    EXPECT_EQ(p.events(), 0u);
    EXPECT_EQ(p.eventsPerSecond(), 0.0);
}

TEST(HostProfiler, PhaseNanosSumToTotal)
{
    HostProfiler p;
    p.begin();
    EXPECT_TRUE(p.running());
    {
        ProfileScope gen(&p, HostProfiler::Phase::Generate);
        spin();
    }
    {
        ProfileScope coh(&p, HostProfiler::Phase::Coherence);
        spin();
        // Nested network send inside coherence work: exclusive
        // attribution charges the inner interval to Network only.
        ProfileScope net(&p, HostProfiler::Phase::Network);
        spin();
    }
    p.end(1234);
    EXPECT_FALSE(p.running());
    EXPECT_EQ(p.events(), 1234u);
    std::uint64_t sum = 0;
    sum += p.phaseNanos(HostProfiler::Phase::Generate);
    sum += p.phaseNanos(HostProfiler::Phase::Coherence);
    sum += p.phaseNanos(HostProfiler::Phase::Network);
    sum += p.phaseNanos(HostProfiler::Phase::Drain);
    sum += p.phaseNanos(HostProfiler::Phase::Other);
    EXPECT_EQ(sum, p.totalNanos());
    EXPECT_GT(p.totalNanos(), 0u);
    EXPECT_GT(p.eventsPerSecond(), 0.0);
    EXPECT_EQ(p.phaseNanos(HostProfiler::Phase::Drain), 0u);
}

TEST(HostProfiler, NullScopeIsANoOp)
{
    // The zero-cost-when-off contract: guards on a null profiler
    // must not touch any profiler state (there is none to touch).
    ProfileScope scope(nullptr, HostProfiler::Phase::Coherence);
    ProfileScope nested(nullptr, HostProfiler::Phase::Network);
    SUCCEED();
}

TEST(HostProfiler, MergeAddsTotalsAndEvents)
{
    HostProfiler a;
    a.begin();
    {
        ProfileScope gen(&a, HostProfiler::Phase::Generate);
        spin();
    }
    a.end(100);

    HostProfiler b;
    b.begin();
    {
        ProfileScope net(&b, HostProfiler::Phase::Network);
        spin();
    }
    b.end(50);

    std::uint64_t a_total = a.totalNanos();
    std::uint64_t b_total = b.totalNanos();
    std::uint64_t b_net = b.phaseNanos(HostProfiler::Phase::Network);
    a.merge(b);
    EXPECT_EQ(a.totalNanos(), a_total + b_total);
    EXPECT_EQ(a.events(), 150u);
    EXPECT_EQ(a.phaseNanos(HostProfiler::Phase::Network), b_net);
}

TEST(HostProfiler, ReentrantBeginAccumulates)
{
    // begin()/end() may bracket several runs; totals accumulate.
    HostProfiler p;
    p.begin();
    p.end(10);
    std::uint64_t first = p.totalNanos();
    p.begin();
    spin();
    p.end(5);
    EXPECT_GE(p.totalNanos(), first);
    EXPECT_EQ(p.events(), 15u);
}

TEST(HostProfiler, EnteredPhaseKeepsVisibleShareHoweverShort)
{
    // A drain scope that does almost nothing: its raw-tick share of
    // the interval truncates to 0 ns, which used to hide the phase
    // from --profile output entirely.  An entered phase must keep a
    // visible (>= 1 ns) share, and conservation must still hold.
    HostProfiler p;
    p.begin();
    {
        ProfileScope coh(&p, HostProfiler::Phase::Coherence);
        spin();
        ProfileScope drain(&p, HostProfiler::Phase::Drain);
    }
    p.end(1);
    EXPECT_GT(p.phaseNanos(HostProfiler::Phase::Drain), 0u);
    std::uint64_t sum = 0;
    sum += p.phaseNanos(HostProfiler::Phase::Generate);
    sum += p.phaseNanos(HostProfiler::Phase::Coherence);
    sum += p.phaseNanos(HostProfiler::Phase::Network);
    sum += p.phaseNanos(HostProfiler::Phase::Drain);
    sum += p.phaseNanos(HostProfiler::Phase::Other);
    EXPECT_EQ(sum, p.totalNanos());
}

TEST(HostProfiler, PhaseNamesAreStable)
{
    EXPECT_STREQ(profilePhaseName(HostProfiler::Phase::Generate),
                 "generate");
    EXPECT_STREQ(profilePhaseName(HostProfiler::Phase::Coherence),
                 "coherence");
    EXPECT_STREQ(profilePhaseName(HostProfiler::Phase::Network),
                 "network");
    EXPECT_STREQ(profilePhaseName(HostProfiler::Phase::Drain), "drain");
    EXPECT_STREQ(profilePhaseName(HostProfiler::Phase::Other), "other");
}

TEST(HostProfiler, WriteProfileMentionsEveryPhase)
{
    HostProfiler p;
    p.begin();
    {
        ProfileScope coh(&p, HostProfiler::Phase::Coherence);
        spin();
    }
    p.end(42);
    std::ostringstream os;
    writeProfile(os, p);
    std::string text = os.str();
    EXPECT_NE(text.find("host profile"), std::string::npos);
    EXPECT_NE(text.find("coherence"), std::string::npos);
    EXPECT_NE(text.find("generate"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(HostProfilerDeath, UnbalancedUseAsserts)
{
    EXPECT_DEATH(
        {
            HostProfiler p;
            p.end(0); // end without begin
        },
        "");
    EXPECT_DEATH(
        {
            HostProfiler p;
            p.begin();
            p.exit(); // exit would pop the implicit Other frame
        },
        "");
}

} // namespace vsnoop::test
