/**
 * @file
 * Unit tests for the vCPU-to-core mapping and the shuffle migrator.
 */

#include <gtest/gtest.h>

#include "virt/vcpu_map.hh"

namespace vsnoop::test
{

namespace
{

class LoggingListener : public VcpuMappingListener
{
  public:
    struct Entry
    {
        bool placed;
        VCpuId vcpu;
        VmId vm;
        CoreId core;
    };

    void
    onVcpuPlaced(VCpuId vcpu, VmId vm, CoreId core) override
    {
        log.push_back({true, vcpu, vm, core});
    }

    void
    onVcpuRemoved(VCpuId vcpu, VmId vm, CoreId core) override
    {
        log.push_back({false, vcpu, vm, core});
    }

    std::vector<Entry> log;
};

} // namespace

TEST(VcpuMapping, PlaceAndQuery)
{
    VcpuMapping map(8);
    VCpuId v0 = map.addVcpu(0);
    VCpuId v1 = map.addVcpu(1);
    map.place(v0, 3);
    map.place(v1, 5);
    EXPECT_EQ(map.coreOf(v0), 3);
    EXPECT_EQ(map.vcpuAt(3), v0);
    EXPECT_EQ(map.vmAt(3), 0);
    EXPECT_EQ(map.vmAt(5), 1);
    EXPECT_EQ(map.vmAt(0), kInvalidVm);
    EXPECT_EQ(map.vcpuAt(0), kInvalidVCpu);
}

TEST(VcpuMapping, RemoveFreesCore)
{
    VcpuMapping map(4);
    VCpuId v = map.addVcpu(0);
    map.place(v, 2);
    map.removeFromCore(v);
    EXPECT_EQ(map.coreOf(v), kInvalidCore);
    EXPECT_EQ(map.vcpuAt(2), kInvalidVCpu);
    map.removeFromCore(v); // no-op
}

TEST(VcpuMapping, SwapExchangesCores)
{
    VcpuMapping map(4);
    VCpuId a = map.addVcpu(0);
    VCpuId b = map.addVcpu(1);
    map.place(a, 0);
    map.place(b, 3);
    map.swap(a, b);
    EXPECT_EQ(map.coreOf(a), 3);
    EXPECT_EQ(map.coreOf(b), 0);
}

TEST(VcpuMapping, CoresRunningVm)
{
    VcpuMapping map(8);
    VCpuId a = map.addVcpu(2);
    VCpuId b = map.addVcpu(2);
    VCpuId c = map.addVcpu(1);
    map.place(a, 1);
    map.place(b, 6);
    map.place(c, 2);
    CoreSet set = map.coresRunning(2);
    EXPECT_EQ(set.count(), 2u);
    EXPECT_TRUE(set.contains(1));
    EXPECT_TRUE(set.contains(6));
    EXPECT_FALSE(set.contains(2));
}

TEST(VcpuMapping, ListenersSeePlacementChanges)
{
    VcpuMapping map(4);
    LoggingListener listener;
    map.addListener(&listener);
    VCpuId v = map.addVcpu(1);
    map.place(v, 2);
    map.removeFromCore(v);
    ASSERT_EQ(listener.log.size(), 2u);
    EXPECT_TRUE(listener.log[0].placed);
    EXPECT_EQ(listener.log[0].core, 2);
    EXPECT_EQ(listener.log[0].vm, 1);
    EXPECT_FALSE(listener.log[1].placed);
}

TEST(VcpuMapping, SwapNotifiesInRemoveThenPlaceOrder)
{
    VcpuMapping map(4);
    LoggingListener listener;
    VCpuId a = map.addVcpu(0);
    VCpuId b = map.addVcpu(1);
    map.place(a, 0);
    map.place(b, 1);
    map.addListener(&listener);
    map.swap(a, b);
    ASSERT_EQ(listener.log.size(), 4u);
    EXPECT_FALSE(listener.log[0].placed);
    EXPECT_FALSE(listener.log[1].placed);
    EXPECT_TRUE(listener.log[2].placed);
    EXPECT_TRUE(listener.log[3].placed);
}

TEST(VcpuMappingDeath, DoublePlacementPanics)
{
    VcpuMapping map(4);
    VCpuId a = map.addVcpu(0);
    VCpuId b = map.addVcpu(0);
    map.place(a, 1);
    EXPECT_DEATH(map.place(a, 2), "already placed");
    EXPECT_DEATH(map.place(b, 1), "occupied");
}

TEST(ShuffleMigrator, SwapsAcrossVmBoundariesOnly)
{
    EventQueue eq;
    VcpuMapping map(8);
    // Two VMs with four vCPUs each, identity-placed.
    for (VmId vm = 0; vm < 2; ++vm) {
        for (int i = 0; i < 4; ++i) {
            VCpuId v = map.addVcpu(vm);
            map.place(v, static_cast<CoreId>(vm * 4 + i));
        }
    }
    ShuffleMigrator migrator(eq, map, 1000, 42);
    migrator.start();
    eq.runUntil(10500);
    EXPECT_EQ(migrator.migrations.value(), 10u);
    // Every vCPU remains placed, on a unique core.
    CoreSet seen;
    for (VCpuId v = 0; v < 8; ++v) {
        CoreId c = map.coreOf(v);
        ASSERT_NE(c, kInvalidCore);
        EXPECT_FALSE(seen.contains(c));
        seen.add(c);
    }
    migrator.stop();
    EXPECT_TRUE(eq.empty());
}

TEST(ShuffleMigrator, SingleVmNeverSwaps)
{
    EventQueue eq;
    VcpuMapping map(4);
    for (int i = 0; i < 4; ++i) {
        VCpuId v = map.addVcpu(0);
        map.place(v, static_cast<CoreId>(i));
    }
    ShuffleMigrator migrator(eq, map, 100, 7);
    migrator.start();
    eq.runUntil(2000);
    EXPECT_EQ(migrator.migrations.value(), 0u);
    migrator.stop();
}

TEST(ShuffleMigrator, DeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        EventQueue eq;
        VcpuMapping map(8);
        for (VmId vm = 0; vm < 2; ++vm) {
            for (int i = 0; i < 4; ++i) {
                VCpuId v = map.addVcpu(vm);
                map.place(v, static_cast<CoreId>(vm * 4 + i));
            }
        }
        ShuffleMigrator migrator(eq, map, 500, seed);
        migrator.start();
        eq.runUntil(20000);
        std::vector<CoreId> cores;
        for (VCpuId v = 0; v < 8; ++v)
            cores.push_back(map.coreOf(v));
        migrator.stop();
        return cores;
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10));
}

} // namespace vsnoop::test
