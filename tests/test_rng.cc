/**
 * @file
 * Unit tests for the deterministic PCG32 generator and its draw
 * helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace vsnoop::test
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123, 7), b(123, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentStreamsDiverge)
{
    Rng a(123, 1), b(123, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next32() == b.next32())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(9, 4);
    std::uint32_t first = a.next32();
    a.next32();
    a.reseed(9, 4);
    EXPECT_EQ(a.next32(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    constexpr std::uint32_t buckets = 8;
    constexpr int draws = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i)
        counts[rng.below(buckets)]++;
    for (std::uint32_t b = 0; b < buckets; ++b) {
        EXPECT_NEAR(counts[b], draws / buckets, draws / buckets * 0.1);
    }
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        std::uint32_t v = rng.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(4);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(6);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(8);
    double p = 0.05;
    double sum = 0;
    constexpr int draws = 50000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean failures before success = (1-p)/p = 19.
    EXPECT_NEAR(sum / draws, (1 - p) / p, 1.0);
}

TEST(Rng, GeometricDegenerateProbabilities)
{
    Rng rng(9);
    EXPECT_EQ(rng.geometric(1.0), 0u);
    EXPECT_EQ(rng.geometric(1.5), 0u);
    EXPECT_GT(rng.geometric(0.0), 1'000'000'000ull);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(10);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.zipf(50, 0.8), 50u);
}

TEST(Rng, ZipfSkewConcentratesMass)
{
    Rng rng(12);
    constexpr int draws = 40000;
    int low_uniform = 0, low_skewed = 0;
    for (int i = 0; i < draws; ++i) {
        if (rng.zipf(100, 0.0) < 10)
            low_uniform++;
        if (rng.zipf(100, 1.2) < 10)
            low_skewed++;
    }
    // Uniform puts ~10% in the first decile; a skew of 1.2 puts far
    // more.
    EXPECT_NEAR(low_uniform / static_cast<double>(draws), 0.1, 0.02);
    EXPECT_GT(low_skewed / static_cast<double>(draws), 0.4);
}

TEST(Rng, ZipfSingleton)
{
    Rng rng(13);
    EXPECT_EQ(rng.zipf(1, 2.0), 0u);
}

} // namespace vsnoop::test
