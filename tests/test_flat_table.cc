/**
 * @file
 * Unit tests for the open-addressed FlatMap used by the protocol's
 * hot-path tables (MSHRs, in-flight tokens, the memory ledger).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "sim/flat_table.hh"

namespace vsnoop::test
{

TEST(FlatMap, InsertFindErase)
{
    FlatMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    auto [slot, inserted] = map.emplace(42, 7);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7);

    // Re-inserting an existing key leaves the value untouched.
    auto [again, fresh] = map.emplace(42, 99);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(again, slot);
    EXPECT_EQ(*map.find(42), 7);

    map.erase(42);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_TRUE(map.empty());
}

TEST(FlatMap, GetOrInsertDefaultConstructs)
{
    FlatMap<std::uint64_t> map;
    map.getOrInsert(5) += 10;
    map.getOrInsert(5) += 10;
    EXPECT_EQ(map.getOrInsert(5), 20u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GrowsPastReservationAndKeepsEntries)
{
    FlatMap<std::uint64_t> map;
    map.reserve(8);
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.getOrInsert(k * 0x10001) = k;
    EXPECT_EQ(map.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(map.find(k * 0x10001), nullptr);
        EXPECT_EQ(*map.find(k * 0x10001), k);
    }
}

TEST(FlatMap, TombstoneChurnDoesNotLoseEntries)
{
    // The MSHR usage pattern: a small live set with heavy
    // insert/erase churn.  Erased slots become tombstones; the
    // periodic in-place rehash must preserve the live entries.
    FlatMap<std::uint64_t> map;
    map.reserve(16);
    for (std::uint64_t round = 0; round < 2000; ++round) {
        map.getOrInsert(round) = round;
        ASSERT_NE(map.find(round), nullptr);
        if (round >= 4)
            map.erase(round - 4);
        ASSERT_EQ(map.size(), std::min<std::uint64_t>(round + 1, 4));
    }
    for (std::uint64_t k = 1996; k < 2000; ++k)
        EXPECT_NE(map.find(k), nullptr);
    EXPECT_EQ(map.find(0), nullptr);
}

TEST(FlatMap, ForEachVisitsEveryLiveEntryOnce)
{
    FlatMap<std::uint64_t> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.getOrInsert(k) = k * 3;
    for (std::uint64_t k = 0; k < 100; k += 2)
        map.erase(k);

    std::map<std::uint64_t, std::uint64_t> seen;
    map.forEach([&](std::uint64_t key, const std::uint64_t &value) {
        EXPECT_TRUE(seen.emplace(key, value).second);
    });
    EXPECT_EQ(seen.size(), 50u);
    for (const auto &[key, value] : seen) {
        EXPECT_EQ(key % 2, 1u);
        EXPECT_EQ(value, key * 3);
    }
}

TEST(FlatMap, EraseMissingKeyIsNoOp)
{
    FlatMap<int> map;
    map.getOrInsert(1) = 1;
    map.erase(2);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.contains(1));
    EXPECT_FALSE(map.contains(2));
}

TEST(FlatMap, PerfRecordsProbeLengthsUnderTombstoneChurn)
{
    // MSHR-style churn with the perf hook attached: every lookup
    // and insert probe must land in the histogram, and the
    // tombstone re-packs it provokes must be classified as
    // cleanups, not growth.
    FlatMap<std::uint64_t> map;
    FlatTablePerf perf;
    map.setPerf(&perf);
    map.reserve(16);
    for (std::uint64_t round = 0; round < 2000; ++round) {
        map.getOrInsert(round) = round;
        ASSERT_NE(map.find(round), nullptr);
        if (round >= 4)
            map.erase(round - 4);
    }
    // One probe per getOrInsert, find, and erase-hit at minimum.
    EXPECT_GE(perf.probeLength.count(), 3u * 1996u);
    // Every probe touches at least the home slot.
    EXPECT_GE(perf.probeLength.min(), 1u);
    // A live set of 4 in a 32-slot table never doubles: any rehash
    // this workload triggered must be a tombstone cleanup.
    EXPECT_EQ(perf.growthRehashes, 0u);
    EXPECT_GT(perf.tombstoneCleanups, 0u);
    EXPECT_EQ(perf.maxEntries, 5u);
}

TEST(FlatMap, PerfClassifiesGrowthRehashes)
{
    FlatMap<std::uint64_t> map;
    FlatTablePerf perf;
    map.setPerf(&perf);
    map.reserve(8);
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.getOrInsert(k * 0x10001) = k;
    // 1000 monotone inserts from 16 slots force doublings and no
    // tombstone pressure at all.
    EXPECT_GT(perf.growthRehashes, 0u);
    EXPECT_EQ(perf.tombstoneCleanups, 0u);
    EXPECT_EQ(perf.maxEntries, 1000u);
    EXPECT_GT(perf.probeLength.count(), 0u);
}

TEST(FlatMap, PerfDetachStopsRecording)
{
    FlatMap<std::uint64_t> map;
    FlatTablePerf perf;
    map.setPerf(&perf);
    map.getOrInsert(1) = 1;
    std::uint64_t recorded = perf.probeLength.count();
    EXPECT_GT(recorded, 0u);
    map.setPerf(nullptr);
    map.getOrInsert(2) = 2;
    map.find(1);
    EXPECT_EQ(perf.probeLength.count(), recorded);
}

} // namespace vsnoop::test
