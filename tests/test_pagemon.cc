/**
 * @file
 * Page-level snoop forensics (trace/pagemon.hh): the evict-to-
 * remainder heavy-hitter's mass identity, snapshot determinism, the
 * end-to-end reconciliation of per-page lookup totals against the
 * coherence counter and the interference matrix (warmup reset
 * included), lifecycle counting, watch-page trace filtering, and the
 * JSON surface.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "system/run_result.hh"
#include "system/sim_system.hh"
#include "trace/pagemon.hh"
#include "trace/trace.hh"

namespace vsnoop::test
{

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.accessesPerVcpu = 3000;
    cfg.l2.sizeBytes = 32 * 1024; // keep runs quick
    cfg.invariantCheckPeriod = 200000;
    return cfg;
}

AppProfile
quickApp()
{
    AppProfile p = findApp("ferret");
    p.privatePagesPerVcpu = 96;
    return p;
}

HostAddr
pageAddr(std::uint64_t page)
{
    return HostAddr(page << kPageShift);
}

/** Tracked + truncated lookups of a snapshot. */
std::uint64_t
snapshotMass(const PagesSnapshot &pg)
{
    std::uint64_t sum = pg.truncatedLookups;
    for (const PageCell &cell : pg.cells)
        sum += cell.lookups;
    return sum;
}

} // namespace

// ---------------------------------------------------------------------
// Heavy-hitter unit behaviour
// ---------------------------------------------------------------------

TEST(PageMon, ChargesAndSnapshotsSorted)
{
    PageMon pm(2, 8);
    pm.miss(pageAddr(5), 0);
    pm.miss(pageAddr(5), 1);
    pm.miss(pageAddr(5), 0);
    pm.miss(pageAddr(9), 1);

    PagesSnapshot pg = pm.snapshot();
    ASSERT_EQ(pg.cells.size(), 2u);
    // Sorted: lookups descending, page number ascending.
    EXPECT_EQ(pg.cells[0].pageNum, 5u);
    EXPECT_EQ(pg.cells[0].lookups, 3u);
    EXPECT_EQ(pg.cells[0].misses, 3u);
    EXPECT_EQ(pg.cells[1].pageNum, 9u);
    EXPECT_EQ(pg.cells[1].lookups, 1u);
    EXPECT_EQ(pg.totalLookups, 4u);
    EXPECT_EQ(pg.truncatedLookups, 0u);
    // byVm rows: per requesting VM, host row last.
    ASSERT_EQ(pg.vmRows, 3u);
    EXPECT_EQ(pg.cells[0].byVm[0], 2u);
    EXPECT_EQ(pg.cells[0].byVm[1], 1u);
    EXPECT_EQ(pg.cells[0].byVm[2], 0u);
}

TEST(PageMon, EvictionFoldsWholeCellIntoRemainder)
{
    PageMon pm(1, 2);
    pm.miss(pageAddr(10), 0);
    pm.miss(pageAddr(10), 0);
    pm.miss(pageAddr(10), 0);
    pm.miss(pageAddr(20), 0);
    pm.miss(pageAddr(20), 0);
    // Table full; page 30 evicts the minimum cell (20, 2 lookups)
    // and starts fresh — no count inheritance.
    pm.miss(pageAddr(30), 0);

    PagesSnapshot pg = pm.snapshot();
    ASSERT_EQ(pg.cells.size(), 2u);
    EXPECT_EQ(pg.cells[0].pageNum, 10u);
    EXPECT_EQ(pg.cells[0].lookups, 3u);
    EXPECT_EQ(pg.cells[1].pageNum, 30u);
    EXPECT_EQ(pg.cells[1].lookups, 1u);
    EXPECT_EQ(pg.truncatedLookups, 2u);
    EXPECT_EQ(pg.truncatedPages, 1u);
    // The identity the JSON reconciliation rests on.
    EXPECT_EQ(pg.totalLookups, 6u);
    EXPECT_EQ(snapshotMass(pg), pg.totalLookups);
}

TEST(PageMon, EvictionTieBreaksOnHighestPageNumber)
{
    PageMon pm(1, 2);
    pm.miss(pageAddr(100), 0);
    pm.miss(pageAddr(200), 0);
    // Both cells hold one lookup; the higher page number (200) is
    // evicted so the choice is deterministic.
    pm.miss(pageAddr(300), 0);

    PagesSnapshot pg = pm.snapshot();
    std::vector<std::uint64_t> pages;
    for (const PageCell &cell : pg.cells)
        pages.push_back(cell.pageNum);
    EXPECT_EQ(pages, (std::vector<std::uint64_t>{100, 300}));
    EXPECT_EQ(pg.truncatedLookups, 1u);
    EXPECT_EQ(snapshotMass(pg), pg.totalLookups);
}

TEST(PageMon, ResetStatsDropsAttributionButKeepsWatches)
{
    PageMon pm(1, 4);
    pm.addWatch(7);
    pm.miss(pageAddr(7), 0);
    pm.onPageEvent({PageEventKind::CowBreak, 0, 1, 2, 3,
                    PageType::VmPrivate, PageType::RoShared});
    pm.resetStats();

    PagesSnapshot pg = pm.snapshot();
    EXPECT_TRUE(pg.cells.empty());
    EXPECT_EQ(pg.totalLookups, 0u);
    EXPECT_EQ(pg.cowBreaks, 0u);
    EXPECT_TRUE(pm.watchActive());
    EXPECT_TRUE(pm.watches(pageAddr(7)));
    EXPECT_FALSE(pm.watches(pageAddr(8)));
}

TEST(PageMon, LifecycleEventsCountAndAnnotateTrackedCells)
{
    PageMon pm(2, 4);
    pm.miss(pageAddr(50), 0);
    pm.onPageEvent({PageEventKind::Map, 0, 5, 50, 0,
                    PageType::VmPrivate, PageType::VmPrivate});
    pm.onPageEvent({PageEventKind::TypeChange, 1, 5, 50, 50,
                    PageType::RoShared, PageType::VmPrivate});
    // Events for untracked pages count globally but allocate no cell.
    pm.onPageEvent({PageEventKind::Unmap, 0, 9, 99, 0,
                    PageType::VmPrivate, PageType::VmPrivate});

    PagesSnapshot pg = pm.snapshot();
    EXPECT_EQ(pg.mapEvents, 1u);
    EXPECT_EQ(pg.typeChanges, 1u);
    EXPECT_EQ(pg.unmapEvents, 1u);
    ASSERT_EQ(pg.cells.size(), 1u);
    EXPECT_EQ(pg.cells[0].sharerMask, 0b11u);
    EXPECT_EQ(pg.cells[0].lastType, PageType::RoShared);
}

// ---------------------------------------------------------------------
// End-to-end reconciliation
// ---------------------------------------------------------------------

TEST(PageMonSystem, TotalsReconcileWithSnoopLookupsUnderWarmup)
{
    // The load-bearing identity: charged at exactly the two sites
    // that increment stats.snoopLookups and reset with them at the
    // warmup boundary, so the page attribution, the coherence
    // counter, and the interference matrix agree exactly.
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.warmupAccessesPerVcpu = 500;
    cfg.migrationPeriod = 30000;
    cfg.pages = true;
    cfg.pagesTop = 32;
    SimSystem sys(cfg, quickApp());
    sys.run();
    SystemResults r = sys.results();

    ASSERT_TRUE(r.pages.enabled);
    EXPECT_EQ(r.pages.topK, 32u);
    EXPECT_GT(r.pages.totalLookups, 0u);
    EXPECT_EQ(snapshotMass(r.pages), r.pages.totalLookups);
    EXPECT_EQ(r.pages.totalLookups, r.snoopLookups);
    ASSERT_TRUE(r.interference.enabled);
    EXPECT_EQ(r.pages.totalLookups,
              r.interference.total(r.interference.snoopLookups));

    // Per-cell breakdowns re-sum to the cell's lookups charge.
    for (const PageCell &cell : r.pages.cells) {
        std::uint64_t by_vm = 0;
        for (std::uint64_t v : cell.byVm)
            by_vm += v;
        EXPECT_EQ(by_vm, cell.lookups) << "page " << cell.pageNum;
    }

    // A bounded table on a working set larger than K must have
    // folded something, and the census sees the app's pages.
    EXPECT_LE(r.pages.cells.size(), 32u);
    std::uint64_t census = 0;
    for (std::size_t t = 0; t < kNumPageTypes; ++t)
        census += r.pages.censusByType[t];
    EXPECT_GT(census, 0u);
}

TEST(PageMonSystem, DisabledMonitorLeavesResultsEmpty)
{
    SystemConfig cfg = smallConfig();
    SimSystem sys(cfg, quickApp());
    sys.run();
    SystemResults r = sys.results();
    EXPECT_FALSE(r.pages.enabled);
    EXPECT_TRUE(r.pages.cells.empty());
}

TEST(PageMonSystem, WatchPageFiltersTransactionTrace)
{
    // Two identical runs, one watching a single hot page: the
    // watched run's sink must contain only transaction records for
    // that page (plus lifecycle/map records, which are unfiltered).
    SystemConfig base = smallConfig();
    base.captureTrace = true;
    SimSystem plain(base, quickApp());
    plain.run();
    const TraceSink *all = plain.trace();
    ASSERT_NE(all, nullptr);
    ASSERT_GT(all->size(), 0u);

    // Pick the hottest page from a pages run so the watch matches
    // real traffic.
    SystemConfig probe_cfg = smallConfig();
    probe_cfg.pages = true;
    SimSystem probe(probe_cfg, quickApp());
    probe.run();
    ASSERT_FALSE(probe.results().pages.cells.empty());
    std::uint64_t hot = probe.results().pages.cells[0].pageNum;

    SystemConfig cfg = smallConfig();
    cfg.watchPages.push_back(hot);
    SimSystem sys(cfg, quickApp());
    sys.run();
    const TraceSink *sink = sys.trace();
    ASSERT_NE(sink, nullptr);

    std::size_t tx_records = 0;
    sink->forEach([&](const TraceRecord &rec) {
        switch (rec.kind) {
          case TraceEventKind::RequestIssue:
          case TraceEventKind::FilterDecision:
          case TraceEventKind::Retry:
          case TraceEventKind::PersistentEscalation:
          case TraceEventKind::TokenCollect:
          case TraceEventKind::Completion:
            tx_records++;
            EXPECT_EQ(rec.line >> (kPageShift - kLineShift), hot);
            break;
          default:
            break;
        }
    });
    // The watched page is hot, so transactions were recorded — but
    // far fewer than the unfiltered run retained.
    EXPECT_GT(tx_records, 0u);
    EXPECT_LT(tx_records, all->size());
}

// ---------------------------------------------------------------------
// JSON surface
// ---------------------------------------------------------------------

TEST(PageMonSystem, RunJsonCarriesPagesBlock)
{
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.pages = true;
    cfg.pagesTop = 16;
    RunResult run = collectRun(cfg, quickApp());

    std::optional<JsonValue> doc = parseJson(run.toJson());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *config = doc->find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->numberAt("pages_top"), 16.0);

    const JsonValue *results = doc->find("results");
    ASSERT_NE(results, nullptr);
    const JsonValue *pages = results->find("pages");
    ASSERT_NE(pages, nullptr);
    EXPECT_EQ(pages->numberAt("top_k"), 16.0);

    // The emitted top array reconciles with snoop_lookups.
    const JsonValue *top = pages->find("top");
    ASSERT_NE(top, nullptr);
    double sum = pages->numberAt("truncated_lookups");
    for (const JsonValue &cell : top->items())
        sum += cell.numberAt("lookups");
    EXPECT_EQ(sum, results->numberAt("snoop_lookups"));
    EXPECT_EQ(sum, pages->numberAt("total_lookups"));

    // Cells arrive sorted for byte-stable output.
    double prev = -1.0;
    bool first = true;
    for (const JsonValue &cell : top->items()) {
        double lookups = cell.numberAt("lookups");
        if (!first) {
            EXPECT_LE(lookups, prev);
        }
        prev = lookups;
        first = false;
    }
}

TEST(PageMonSystem, PagesOffJsonHasNoPagesKeys)
{
    SystemConfig cfg = smallConfig();
    RunResult run = collectRun(cfg, quickApp());
    std::string json = run.toJson();
    EXPECT_EQ(json.find("\"pages\""), std::string::npos);
    EXPECT_EQ(json.find("\"watch_pages\""), std::string::npos);
}

} // namespace vsnoop::test
