/**
 * @file
 * MetricsRegistry tests: registration rules, the Prometheus text
 * exposition output, and seqlock snapshot consistency under a
 * concurrent reader.
 */

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace vsnoop
{
namespace
{

TEST(MetricsRegistry, ValuesRoundTripThroughStaging)
{
    MetricsRegistry registry;
    MetricsRegistry::Id a = registry.addCounter("a_total", "A.");
    MetricsRegistry::Id b = registry.addGauge("b", "B.");
    registry.freeze();

    registry.set(a, 41.0);
    registry.set(b, -2.5);
    EXPECT_EQ(registry.value(a), 41.0);
    EXPECT_EQ(registry.value(b), -2.5);

    // Staged values are invisible to snapshots until publish().
    MetricsRegistry::Snapshot before = registry.snapshot();
    EXPECT_EQ(before.sequence, 0u);
    EXPECT_EQ(before.values[a], 0.0);

    registry.publish();
    MetricsRegistry::Snapshot after = registry.snapshot();
    EXPECT_EQ(after.sequence, 2u);
    EXPECT_EQ(after.values[a], 41.0);
    EXPECT_EQ(after.values[b], -2.5);
    EXPECT_EQ(registry.publishes(), 1u);
}

TEST(MetricsRegistry, PrometheusExpositionGolden)
{
    MetricsRegistry registry;
    MetricsRegistry::Id total = registry.addCounter(
        "vsnoop_requests_total", "Requests seen.");
    MetricsRegistry::Id ok = registry.addCounter(
        "vsnoop_by_code_total", "Requests by code.",
        {{"code", "200"}});
    MetricsRegistry::Id bad = registry.addCounter(
        "vsnoop_by_code_total", "Requests by code.",
        {{"code", "404"}});
    MetricsRegistry::Id temp = registry.addGauge(
        "vsnoop_temperature", "A gauge with an escaped label.",
        {{"path", "a\\b\"c\nd"}});
    registry.freeze();

    registry.set(total, 7.0);
    registry.set(ok, 6.0);
    registry.set(bad, 1.0);
    registry.set(temp, 0.5);
    registry.publish();

    EXPECT_EQ(registry.renderPrometheus(),
              "# HELP vsnoop_requests_total Requests seen.\n"
              "# TYPE vsnoop_requests_total counter\n"
              "vsnoop_requests_total 7\n"
              "# HELP vsnoop_by_code_total Requests by code.\n"
              "# TYPE vsnoop_by_code_total counter\n"
              "vsnoop_by_code_total{code=\"200\"} 6\n"
              "vsnoop_by_code_total{code=\"404\"} 1\n"
              "# HELP vsnoop_temperature A gauge with an escaped "
              "label.\n"
              "# TYPE vsnoop_temperature gauge\n"
              "vsnoop_temperature{path=\"a\\\\b\\\"c\\nd\"} 0.5\n");
}

TEST(MetricsRegistry, ExpositionBeforeFirstPublishIsAllZero)
{
    MetricsRegistry registry;
    registry.addGauge("vsnoop_zero", "Never published.");
    registry.freeze();
    EXPECT_EQ(registry.renderPrometheus(),
              "# HELP vsnoop_zero Never published.\n"
              "# TYPE vsnoop_zero gauge\n"
              "vsnoop_zero 0\n");
}

TEST(MetricsRegistry, SpecialValuesUsePrometheusSpellings)
{
    MetricsRegistry registry;
    MetricsRegistry::Id inf = registry.addGauge("vsnoop_inf", "Inf.");
    MetricsRegistry::Id ninf =
        registry.addGauge("vsnoop_ninf", "NInf.");
    MetricsRegistry::Id nan = registry.addGauge("vsnoop_nan", "NaN.");
    registry.freeze();
    registry.set(inf, std::numeric_limits<double>::infinity());
    registry.set(ninf, -std::numeric_limits<double>::infinity());
    registry.set(nan, std::numeric_limits<double>::quiet_NaN());
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("vsnoop_inf +Inf\n"), std::string::npos);
    EXPECT_NE(text.find("vsnoop_ninf -Inf\n"), std::string::npos);
    EXPECT_NE(text.find("vsnoop_nan NaN\n"), std::string::npos);
}

/**
 * Seqlock consistency: the publisher keeps the invariant b == 2*a
 * in every published generation; a concurrent reader must never
 * observe a snapshot that mixes generations.
 */
TEST(MetricsRegistry, SnapshotsAreConsistentUnderConcurrentReader)
{
    MetricsRegistry registry;
    MetricsRegistry::Id a = registry.addGauge("a", "Half.");
    MetricsRegistry::Id b = registry.addGauge("b", "Double.");
    registry.freeze();

    constexpr int kMinGenerations = 20000;
    constexpr std::uint64_t kMinReads = 2000;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> reads{0};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            MetricsRegistry::Snapshot snap = registry.snapshot();
            if (snap.values[b] != 2.0 * snap.values[a])
                torn.fetch_add(1);
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });
    // Publish until the reader has overlapped with enough
    // generations to make a torn read likely if seqlocking were
    // broken; the floor alone could finish before the reader runs.
    int generations = 0;
    while (generations < kMinGenerations ||
           reads.load(std::memory_order_relaxed) < kMinReads) {
        ++generations;
        registry.set(a, static_cast<double>(generations));
        registry.set(b, 2.0 * static_cast<double>(generations));
        registry.publish();
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GE(reads.load(), kMinReads);
    EXPECT_EQ(registry.publishes(),
              static_cast<std::uint64_t>(generations));

    MetricsRegistry::Snapshot final_snap = registry.snapshot();
    EXPECT_EQ(final_snap.values[a], generations);
    EXPECT_EQ(final_snap.values[b], 2.0 * generations);
    EXPECT_EQ(final_snap.sequence,
              2u * static_cast<std::uint64_t>(generations));
}

TEST(TraceSinkMetrics, ExportsRecordedDroppedAndRetained)
{
    TraceSink sink(2);
    MetricsRegistry registry;
    sink.registerMetrics(registry, "vsnoop_sim_");
    registry.freeze();

    TraceRecord r;
    for (int i = 0; i < 3; ++i)
        sink.record(r);
    sink.stageMetrics(registry);
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(
        text.find("vsnoop_sim_trace_records_recorded_total 3\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_sim_trace_records_dropped_total 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_sim_trace_records_retained 2\n"),
              std::string::npos)
        << text;
}

TEST(TraceSinkMetrics, StagingWithoutRegistrationIsANoOp)
{
    TraceSink sink(4);
    MetricsRegistry registry;
    registry.addGauge("vsnoop_unrelated", "Untouched.");
    registry.freeze();
    sink.stageMetrics(registry);
    registry.publish();
    EXPECT_NE(registry.renderPrometheus().find("vsnoop_unrelated 0\n"),
              std::string::npos);
}

/**
 * Split @p text into the cumulative _bucket counts of @p name, in
 * exposition order, plus its _sum and _count lines.
 */
void
parseHistogram(const std::string &text, const std::string &name,
               std::vector<double> *bucketCounts, double *sum,
               double *count)
{
    bucketCounts->clear();
    *sum = -1.0;
    *count = -1.0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind(name + "_bucket{", 0) == 0) {
            std::size_t space = line.rfind(' ');
            ASSERT_NE(space, std::string::npos);
            bucketCounts->push_back(
                std::stod(line.substr(space + 1)));
        } else if (line.rfind(name + "_sum ", 0) == 0) {
            *sum = std::stod(line.substr(name.size() + 5));
        } else if (line.rfind(name + "_count ", 0) == 0) {
            *count = std::stod(line.substr(name.size() + 7));
        }
    }
}

TEST(MetricsRegistry, HistogramExpositionIsCumulativeAndConsistent)
{
    MetricsRegistry registry;
    MetricsRegistry::Id id = registry.addHistogram(
        "vsnoop_test_latency_us", "Test latencies.");
    registry.freeze();
    EXPECT_EQ(registry.slotCount(id),
              LatencyHistogram::kNumBuckets + 2);

    LatencyHistogram hist;
    hist.sample(0.0);
    hist.sample(1.0);
    hist.sample(100.0);
    hist.sample(1e18); // lands in the clamping top bucket
    registry.setHistogram(id, hist);
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("# TYPE vsnoop_test_latency_us histogram"),
              std::string::npos)
        << text;

    std::vector<double> buckets;
    double sum = 0.0, count = 0.0;
    parseHistogram(text, "vsnoop_test_latency_us", &buckets, &sum,
                   &count);
    // Finite buckets plus the +Inf bucket.
    ASSERT_EQ(buckets.size(), LatencyHistogram::kNumBuckets);
    // Cumulative counts never decrease, and +Inf equals _count.
    for (std::size_t i = 1; i < buckets.size(); ++i)
        EXPECT_GE(buckets[i], buckets[i - 1]) << i;
    EXPECT_EQ(buckets.back(), 4.0);
    EXPECT_EQ(count, 4.0);
    EXPECT_EQ(sum, hist.sum());
    // The clamped sample is only in +Inf, not any finite bucket.
    EXPECT_EQ(buckets[buckets.size() - 2], 3.0);
}

TEST(MetricsRegistry, HistogramSnapshotsAreConsistentUnderWriter)
{
    // One thread samples and stages/publishes (the single-publisher
    // contract); a reader renders concurrently and checks every
    // snapshot for internal consistency: monotone buckets, +Inf ==
    // _count, and _sum exactly the sum of a prefix of the sampled
    // values (every published snapshot is some consistent prefix).
    MetricsRegistry registry;
    MetricsRegistry::Id id = registry.addHistogram(
        "vsnoop_test_hist", "Concurrency probe.");
    registry.freeze();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            std::string text = registry.renderPrometheus();
            std::vector<double> buckets;
            double sum = 0.0, count = 0.0;
            parseHistogram(text, "vsnoop_test_hist", &buckets, &sum,
                           &count);
            if (buckets.empty())
                continue;
            for (std::size_t i = 1; i < buckets.size(); ++i)
                if (buckets[i] < buckets[i - 1])
                    ++torn;
            if (buckets.back() != count)
                ++torn;
            // Every sample below is 3.0, so _sum must be 3*_count.
            if (sum != 3.0 * count)
                ++torn;
        }
    });

    LatencyHistogram hist;
    for (int i = 0; i < 2000; ++i) {
        hist.sample(3.0);
        registry.setHistogram(id, hist);
        registry.publish();
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0u);
    std::string text = registry.renderPrometheus();
    std::vector<double> buckets;
    double sum = 0.0, count = 0.0;
    parseHistogram(text, "vsnoop_test_hist", &buckets, &sum, &count);
    EXPECT_EQ(count, 2000.0);
    EXPECT_EQ(sum, 6000.0);
}

TEST(MetricsRegistry, HistogramsCoexistWithScalarSeries)
{
    // Histograms occupy a slot range; scalar series registered
    // around one must keep reading their own values.
    MetricsRegistry registry;
    MetricsRegistry::Id before =
        registry.addCounter("vsnoop_test_before_total", "Before.");
    MetricsRegistry::Id hist_id =
        registry.addHistogram("vsnoop_test_mid", "Middle.");
    MetricsRegistry::Id after =
        registry.addGauge("vsnoop_test_after", "After.");
    registry.freeze();

    EXPECT_EQ(registry.slotBase(after),
              registry.slotBase(hist_id) +
                  LatencyHistogram::kNumBuckets + 2);

    LatencyHistogram hist;
    hist.sample(5.0);
    registry.set(before, 7.0);
    registry.setHistogram(hist_id, hist);
    registry.set(after, 9.0);
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("vsnoop_test_before_total 7\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_test_after 9\n"), std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_test_mid_count 1\n"),
              std::string::npos)
        << text;
}

TEST(MetricsRegistry, BuildInfoGaugeCarriesProvenanceLabels)
{
    MetricsRegistry registry;
    MetricsRegistry::Id id = registerBuildInfo(registry);
    registry.freeze();
    registry.set(id, 1.0);
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("vsnoop_build_info{"), std::string::npos)
        << text;
    EXPECT_NE(text.find("version="), std::string::npos) << text;
    EXPECT_NE(text.find("compiler="), std::string::npos) << text;
    EXPECT_NE(text.find("} 1\n"), std::string::npos) << text;
}

} // namespace
} // namespace vsnoop
