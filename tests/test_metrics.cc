/**
 * @file
 * MetricsRegistry tests: registration rules, the Prometheus text
 * exposition output, and seqlock snapshot consistency under a
 * concurrent reader.
 */

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "trace/trace.hh"

namespace vsnoop
{
namespace
{

TEST(MetricsRegistry, ValuesRoundTripThroughStaging)
{
    MetricsRegistry registry;
    MetricsRegistry::Id a = registry.addCounter("a_total", "A.");
    MetricsRegistry::Id b = registry.addGauge("b", "B.");
    registry.freeze();

    registry.set(a, 41.0);
    registry.set(b, -2.5);
    EXPECT_EQ(registry.value(a), 41.0);
    EXPECT_EQ(registry.value(b), -2.5);

    // Staged values are invisible to snapshots until publish().
    MetricsRegistry::Snapshot before = registry.snapshot();
    EXPECT_EQ(before.sequence, 0u);
    EXPECT_EQ(before.values[a], 0.0);

    registry.publish();
    MetricsRegistry::Snapshot after = registry.snapshot();
    EXPECT_EQ(after.sequence, 2u);
    EXPECT_EQ(after.values[a], 41.0);
    EXPECT_EQ(after.values[b], -2.5);
    EXPECT_EQ(registry.publishes(), 1u);
}

TEST(MetricsRegistry, PrometheusExpositionGolden)
{
    MetricsRegistry registry;
    MetricsRegistry::Id total = registry.addCounter(
        "vsnoop_requests_total", "Requests seen.");
    MetricsRegistry::Id ok = registry.addCounter(
        "vsnoop_by_code_total", "Requests by code.",
        {{"code", "200"}});
    MetricsRegistry::Id bad = registry.addCounter(
        "vsnoop_by_code_total", "Requests by code.",
        {{"code", "404"}});
    MetricsRegistry::Id temp = registry.addGauge(
        "vsnoop_temperature", "A gauge with an escaped label.",
        {{"path", "a\\b\"c\nd"}});
    registry.freeze();

    registry.set(total, 7.0);
    registry.set(ok, 6.0);
    registry.set(bad, 1.0);
    registry.set(temp, 0.5);
    registry.publish();

    EXPECT_EQ(registry.renderPrometheus(),
              "# HELP vsnoop_requests_total Requests seen.\n"
              "# TYPE vsnoop_requests_total counter\n"
              "vsnoop_requests_total 7\n"
              "# HELP vsnoop_by_code_total Requests by code.\n"
              "# TYPE vsnoop_by_code_total counter\n"
              "vsnoop_by_code_total{code=\"200\"} 6\n"
              "vsnoop_by_code_total{code=\"404\"} 1\n"
              "# HELP vsnoop_temperature A gauge with an escaped "
              "label.\n"
              "# TYPE vsnoop_temperature gauge\n"
              "vsnoop_temperature{path=\"a\\\\b\\\"c\\nd\"} 0.5\n");
}

TEST(MetricsRegistry, ExpositionBeforeFirstPublishIsAllZero)
{
    MetricsRegistry registry;
    registry.addGauge("vsnoop_zero", "Never published.");
    registry.freeze();
    EXPECT_EQ(registry.renderPrometheus(),
              "# HELP vsnoop_zero Never published.\n"
              "# TYPE vsnoop_zero gauge\n"
              "vsnoop_zero 0\n");
}

TEST(MetricsRegistry, SpecialValuesUsePrometheusSpellings)
{
    MetricsRegistry registry;
    MetricsRegistry::Id inf = registry.addGauge("vsnoop_inf", "Inf.");
    MetricsRegistry::Id ninf =
        registry.addGauge("vsnoop_ninf", "NInf.");
    MetricsRegistry::Id nan = registry.addGauge("vsnoop_nan", "NaN.");
    registry.freeze();
    registry.set(inf, std::numeric_limits<double>::infinity());
    registry.set(ninf, -std::numeric_limits<double>::infinity());
    registry.set(nan, std::numeric_limits<double>::quiet_NaN());
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("vsnoop_inf +Inf\n"), std::string::npos);
    EXPECT_NE(text.find("vsnoop_ninf -Inf\n"), std::string::npos);
    EXPECT_NE(text.find("vsnoop_nan NaN\n"), std::string::npos);
}

/**
 * Seqlock consistency: the publisher keeps the invariant b == 2*a
 * in every published generation; a concurrent reader must never
 * observe a snapshot that mixes generations.
 */
TEST(MetricsRegistry, SnapshotsAreConsistentUnderConcurrentReader)
{
    MetricsRegistry registry;
    MetricsRegistry::Id a = registry.addGauge("a", "Half.");
    MetricsRegistry::Id b = registry.addGauge("b", "Double.");
    registry.freeze();

    constexpr int kMinGenerations = 20000;
    constexpr std::uint64_t kMinReads = 2000;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> reads{0};

    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            MetricsRegistry::Snapshot snap = registry.snapshot();
            if (snap.values[b] != 2.0 * snap.values[a])
                torn.fetch_add(1);
            reads.fetch_add(1, std::memory_order_relaxed);
        }
    });
    // Publish until the reader has overlapped with enough
    // generations to make a torn read likely if seqlocking were
    // broken; the floor alone could finish before the reader runs.
    int generations = 0;
    while (generations < kMinGenerations ||
           reads.load(std::memory_order_relaxed) < kMinReads) {
        ++generations;
        registry.set(a, static_cast<double>(generations));
        registry.set(b, 2.0 * static_cast<double>(generations));
        registry.publish();
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GE(reads.load(), kMinReads);
    EXPECT_EQ(registry.publishes(),
              static_cast<std::uint64_t>(generations));

    MetricsRegistry::Snapshot final_snap = registry.snapshot();
    EXPECT_EQ(final_snap.values[a], generations);
    EXPECT_EQ(final_snap.values[b], 2.0 * generations);
    EXPECT_EQ(final_snap.sequence,
              2u * static_cast<std::uint64_t>(generations));
}

TEST(TraceSinkMetrics, ExportsRecordedDroppedAndRetained)
{
    TraceSink sink(2);
    MetricsRegistry registry;
    sink.registerMetrics(registry, "vsnoop_sim_");
    registry.freeze();

    TraceRecord r;
    for (int i = 0; i < 3; ++i)
        sink.record(r);
    sink.stageMetrics(registry);
    registry.publish();

    std::string text = registry.renderPrometheus();
    EXPECT_NE(
        text.find("vsnoop_sim_trace_records_recorded_total 3\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_sim_trace_records_dropped_total 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_sim_trace_records_retained 2\n"),
              std::string::npos)
        << text;
}

TEST(TraceSinkMetrics, StagingWithoutRegistrationIsANoOp)
{
    TraceSink sink(4);
    MetricsRegistry registry;
    registry.addGauge("vsnoop_unrelated", "Untouched.");
    registry.freeze();
    sink.stageMetrics(registry);
    registry.publish();
    EXPECT_NE(registry.renderPrometheus().find("vsnoop_unrelated 0\n"),
              std::string::npos);
}

} // namespace
} // namespace vsnoop
