/**
 * @file
 * Test harness for the virtual snooping policy: a 16-core system
 * with four 4-vCPU VMs, the VirtualSnoopPolicy attached, and a
 * vCPU mapping whose changes drive the vCPU map registers.
 */

#ifndef VSNOOP_TESTS_VSNOOP_HARNESS_HH_
#define VSNOOP_TESTS_VSNOOP_HARNESS_HH_

#include <memory>

#include <gtest/gtest.h>

#include "coherence/system.hh"
#include "core/vsnoop.hh"
#include "noc/mesh.hh"
#include "virt/vcpu_map.hh"

namespace vsnoop::test
{

class VsnoopHarness
{
  public:
    struct Outcome
    {
        bool fired = false;
        Tick doneAt = 0;
        DataSource source = DataSource::Memory;
        bool wasMiss = false;
    };

    explicit VsnoopHarness(VsnoopConfig cfg = {},
                           std::uint64_t l2_bytes = 16 * 1024,
                           bool place = true)
        : mesh(MeshConfig{}), policy(16, 4, cfg), mapping(16)
    {
        CacheGeometry geom;
        geom.sizeBytes = l2_bytes;
        geom.ways = 4;
        ProtocolConfig pcfg;
        pcfg.numCores = 16;
        system = std::make_unique<CoherenceSystem>(eq, mesh, policy,
                                                   pcfg, geom, 4);
        policy.attach(*system);
        mapping.addListener(&policy);
        for (VmId vm = 0; vm + 1 < 4; vm += 2) {
            system->setFriend(vm, vm + 1);
            system->setFriend(vm + 1, vm);
            policy.setFriend(vm, vm + 1);
            policy.setFriend(vm + 1, vm);
        }
        for (VmId vm = 0; vm < 4; ++vm) {
            for (int i = 0; i < 4; ++i) {
                VCpuId v = mapping.addVcpu(vm);
                if (place)
                    mapping.place(v, static_cast<CoreId>(vm * 4 + i));
            }
        }
    }

    std::shared_ptr<Outcome>
    issue(CoreId core, std::uint64_t addr, bool write, VmId vm,
          PageType type = PageType::VmPrivate)
    {
        auto outcome = std::make_shared<Outcome>();
        MemAccess access;
        access.addr = HostAddr(addr);
        access.isWrite = write;
        access.vm = vm;
        access.pageType = type;
        system->access(core, access,
                       [outcome](Tick done, DataSource src, bool miss) {
                           outcome->fired = true;
                           outcome->doneAt = done;
                           outcome->source = src;
                           outcome->wasMiss = miss;
                       });
        return outcome;
    }

    void
    drain(std::uint64_t limit = 5'000'000)
    {
        eq.run(limit);
        system->checkInvariants();
    }

    Outcome
    access(CoreId core, std::uint64_t addr, bool write, VmId vm,
           PageType type = PageType::VmPrivate)
    {
        auto outcome = issue(core, addr, write, vm, type);
        drain();
        EXPECT_TRUE(outcome->fired)
            << "access to " << addr << " from core " << core
            << " never completed";
        return *outcome;
    }

    const CacheLine *
    line(CoreId core, std::uint64_t addr)
    {
        return system->controller(core).cache().find(HostAddr(addr));
    }

    EventQueue eq;
    Mesh mesh;
    VirtualSnoopPolicy policy;
    VcpuMapping mapping;
    std::unique_ptr<CoherenceSystem> system;
};

} // namespace vsnoop::test

#endif // VSNOOP_TESTS_VSNOOP_HARNESS_HH_
