/**
 * @file
 * End-to-end tests for relocation support (Section IV-B): residence
 * counters shrinking vCPU maps, the counter-threshold speculation
 * with safe-retry recovery, and the Figure 9 removal-period
 * measurement.
 */

#include <gtest/gtest.h>

#include "vsnoop_harness.hh"

namespace vsnoop::test
{

namespace
{

/** Fill @p n distinct private lines of @p vm from @p core. */
void
fillLines(VsnoopHarness &h, CoreId core, VmId vm, std::uint64_t base,
          int n)
{
    for (int i = 0; i < n; ++i)
        h.access(core, base + static_cast<std::uint64_t>(i) * 64, false,
                 vm);
}

} // namespace

TEST(Relocation, OldCoreStaysInMapWhileDataRemains)
{
    VsnoopHarness h;
    fillLines(h, 0, 0, 0x100000, 8);
    EXPECT_EQ(h.system->controller(0).residence().count(0), 8u);

    h.mapping.swap(0, 8); // vCPU 0 (VM0) <-> vCPU 8 (VM2)
    CoreSet map0 = h.policy.vcpuMap(0);
    EXPECT_TRUE(map0.contains(0)) << "old core still has VM0 data";
    EXPECT_EQ(map0.count(), 5u);
}

TEST(Relocation, CounterRemovesCoreWhenDataDrains)
{
    VsnoopHarness h;
    // The 16 KB, 4-way L2 has 64 sets.  Put VM0's data in one set.
    std::uint64_t set_stride = 64 * 64;
    fillLines(h, 0, 0, 0x100000, 4); // 4 lines, set 0... sequential
    // Use conflicting addresses so VM2 can evict them: same sets.
    h.mapping.swap(0, 8);
    ASSERT_TRUE(h.policy.vcpuMap(0).contains(0));

    // VM2 (vCPU 8) now runs on core 0 and touches enough lines in
    // the same sets to evict all of VM0's lines.
    for (int way = 0; way < 4; ++way) {
        for (int set = 0; set < 4; ++set) {
            std::uint64_t addr = 0x900000 +
                                 static_cast<std::uint64_t>(way) *
                                     set_stride +
                                 static_cast<std::uint64_t>(set) * 64;
            h.access(0, addr, false, 2);
        }
    }
    EXPECT_EQ(h.system->controller(0).residence().count(0), 0u);
    EXPECT_FALSE(h.policy.vcpuMap(0).contains(0))
        << "counter reached zero; the core must leave the map";
    EXPECT_GE(h.policy.mapRemovals.value(), 1u);
}

TEST(Relocation, RemovalPeriodIsSampledForFigure9)
{
    VsnoopHarness h;
    fillLines(h, 0, 0, 0x100000, 4);
    h.mapping.swap(0, 8);
    std::uint64_t set_stride = 64 * 64;
    for (int way = 0; way < 4; ++way) {
        for (int set = 0; set < 4; ++set) {
            h.access(0,
                     0x900000 +
                         static_cast<std::uint64_t>(way) * set_stride +
                         static_cast<std::uint64_t>(set) * 64,
                     false, 2);
        }
    }
    EXPECT_EQ(h.policy.removalPeriodTicks.count(), 1u);
}

TEST(Relocation, ReturningVcpuCancelsPendingRemoval)
{
    VsnoopHarness h;
    fillLines(h, 0, 0, 0x100000, 4);
    h.mapping.swap(0, 8);
    // VM0 returns to core 0 before the data drains.
    h.mapping.swap(0, 8);
    EXPECT_TRUE(h.policy.vcpuMap(0).contains(0));
    EXPECT_EQ(h.policy.removalPeriodTicks.count(), 0u);
}

TEST(Relocation, CounterThresholdRemovesEarly)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::CounterThreshold;
    cfg.counterThreshold = 10;
    VsnoopHarness h(cfg);
    fillLines(h, 0, 0, 0x100000, 4); // 4 < threshold 10
    h.mapping.swap(0, 8);
    // Below the threshold: removed immediately on departure, even
    // though lines (and tokens) remain on core 0.
    EXPECT_FALSE(h.policy.vcpuMap(0).contains(0));
    EXPECT_GT(h.system->controller(0).residence().count(0), 0u);
}

TEST(Relocation, CounterThresholdStrandedTokensRecoveredByRetry)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::CounterThreshold;
    cfg.counterThreshold = 10;
    cfg.broadcastAttempt = 3;
    VsnoopHarness h(cfg);
    std::uint64_t addr = 0x100000;
    h.access(0, addr, false, 0); // VM0 line cached on core 0
    h.mapping.swap(0, 8);
    ASSERT_FALSE(h.policy.vcpuMap(0).contains(0));

    // VM0 (now on core 8) writes the line.  The filtered attempts
    // miss the token stranded on core 0; the broadcast fallback
    // must find it.
    auto outcome = h.access(8, addr, true, 0);
    EXPECT_TRUE(outcome.fired);
    EXPECT_GT(h.system->stats.retries.value(), 0u);
    const CacheLine *line = h.line(8, addr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, 16u);
    EXPECT_EQ(h.line(0, addr), nullptr);
}

TEST(Relocation, CounterModeWaitsForFullDrain)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::Counter;
    VsnoopHarness h(cfg);
    fillLines(h, 0, 0, 0x100000, 4);
    h.mapping.swap(0, 8);
    // Data still present: strict counter mode must keep the core.
    EXPECT_TRUE(h.policy.vcpuMap(0).contains(0));
}

TEST(Relocation, LongMigrationChainCoversManyCores)
{
    // vsnoop-base: a VM that visits many cores accumulates them all
    // (the paper's motivation for the counter mechanism).
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::Base;
    VsnoopHarness h(cfg);
    fillLines(h, 0, 0, 0x100000, 2);
    h.mapping.swap(0, 4);  // VM0 vCPU0 <-> VM1 vCPU0
    fillLines(h, 4, 0, 0x110000, 2);
    h.mapping.swap(0, 8);  // now with VM2's first vCPU
    fillLines(h, 8, 0, 0x120000, 2);
    CoreSet map0 = h.policy.vcpuMap(0);
    EXPECT_TRUE(map0.contains(0));
    EXPECT_TRUE(map0.contains(4));
    EXPECT_TRUE(map0.contains(8));
    EXPECT_GE(map0.count(), 6u);
}

TEST(Relocation, CounterFlushEvictsAndRemovesImmediately)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::CounterFlush;
    cfg.counterThreshold = 10;
    VsnoopHarness h(cfg);
    // Mix of clean and dirty private lines below the threshold.
    h.access(0, 0x100000, false, 0);
    h.access(0, 0x100040, true, 0);
    h.access(0, 0x100080, true, 0);
    ASSERT_EQ(h.system->controller(0).residence().count(0), 3u);

    h.mapping.swap(0, 8);
    h.drain();

    // The flush drained the counter and removed the core at once.
    EXPECT_EQ(h.system->controller(0).residence().count(0), 0u);
    EXPECT_FALSE(h.policy.vcpuMap(0).contains(0));
    EXPECT_EQ(h.policy.selectiveFlushes.value(), 1u);
    EXPECT_EQ(h.policy.flushedLines.value(), 3u);
    // Dirty data went home.
    EXPECT_GE(h.system->stats.dirtyWritebacks.value(), 2u);
    EXPECT_EQ(h.line(0, 0x100000), nullptr);
    EXPECT_EQ(h.line(0, 0x100040), nullptr);

    // No tokens were stranded: a write from the new location
    // completes without broadcast retries.
    auto outcome = h.access(8, 0x100040, true, 0);
    EXPECT_TRUE(outcome.fired);
    EXPECT_EQ(h.system->stats.retries.value(), 0u);
}

TEST(Relocation, CounterFlushRespectsThreshold)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::CounterFlush;
    cfg.counterThreshold = 4;
    VsnoopHarness h(cfg);
    fillLines(h, 0, 0, 0x100000, 8); // 8 >= threshold: no flush
    h.mapping.swap(0, 8);
    EXPECT_TRUE(h.policy.vcpuMap(0).contains(0));
    EXPECT_EQ(h.policy.selectiveFlushes.value(), 0u);
    EXPECT_EQ(h.system->controller(0).residence().count(0), 8u);
}

TEST(Relocation, CounterFlushLeavesOtherVmsAlone)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::CounterFlush;
    cfg.counterThreshold = 10;
    VsnoopHarness h(cfg);
    // Two VMs' worth of data on adjacent cores; only VM0's lines at
    // core 0 may be flushed.
    h.access(0, 0x100000, false, 0);
    h.access(4, 0x200000, false, 1);
    h.mapping.swap(0, 8);
    h.drain();
    EXPECT_EQ(h.line(0, 0x100000), nullptr);
    EXPECT_NE(h.line(4, 0x200000), nullptr);
    EXPECT_EQ(h.system->controller(4).residence().count(1), 1u);
}

TEST(Relocation, MapSyncTrafficIsCharged)
{
    VsnoopHarness h;
    auto before = h.mesh.stats()
                      .messages[static_cast<std::size_t>(
                          MsgClass::Control)]
                      .value();
    fillLines(h, 0, 0, 0x100000, 2);
    h.mapping.swap(0, 8);
    auto after = h.mesh.stats()
                     .messages[static_cast<std::size_t>(
                         MsgClass::Control)]
                     .value();
    EXPECT_GT(after, before);
}

} // namespace vsnoop::test
