/**
 * @file
 * Integration tests for the assembled SimSystem: the paper's
 * headline behaviours must emerge end-to-end.
 */

#include <gtest/gtest.h>

#include "system/sim_system.hh"

namespace vsnoop::test
{

namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.accessesPerVcpu = 3000;
    cfg.l2.sizeBytes = 32 * 1024; // keep runs quick
    cfg.invariantCheckPeriod = 200000;
    return cfg;
}

AppProfile
quickApp()
{
    AppProfile p = findApp("ferret");
    p.privatePagesPerVcpu = 96;
    return p;
}

} // namespace

TEST(SimSystem, TokenBRunsToCompletion)
{
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::TokenB;
    SimSystem sys(cfg, quickApp());
    sys.run();
    SystemResults r = sys.results();
    EXPECT_EQ(r.totalAccesses, 16u * cfg.accessesPerVcpu);
    EXPECT_GT(r.transactions, 0u);
    EXPECT_GT(r.runtime, 0u);
}

TEST(SimSystem, PinnedVirtualSnoopingReduces75PercentOfSnoops)
{
    // Section V-B: with 4 VMs pinned on 16 cores and no hypervisor
    // activity, snoop reduction is exactly 75% (a VM snoops 4 of 16
    // cores).  Our workloads include a little RW-shared traffic, so
    // allow a band around the ideal.
    AppProfile app = quickApp();
    app.hypervisorFraction = 0.0; // ideal configuration

    SystemConfig base_cfg = smallConfig();
    base_cfg.policy = PolicyKind::TokenB;
    SimSystem base(base_cfg, app);
    base.run();

    SystemConfig vs_cfg = smallConfig();
    vs_cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem vs(vs_cfg, app);
    vs.run();

    double base_per_txn =
        static_cast<double>(base.results().snoopLookups) /
        static_cast<double>(base.results().transactions);
    double vs_per_txn =
        static_cast<double>(vs.results().snoopLookups) /
        static_cast<double>(vs.results().transactions);
    EXPECT_NEAR(base_per_txn, 16.0, 0.5);
    // Content-shared pages broadcast under the default RoPolicy,
    // so the ratio sits a bit above the ideal 4/16.
    EXPECT_LT(vs_per_txn / base_per_txn, 0.40);
    EXPECT_GT(vs_per_txn / base_per_txn, 0.20);
}

TEST(SimSystem, VirtualSnoopingReducesTraffic)
{
    AppProfile app = quickApp();
    SystemConfig base_cfg = smallConfig();
    base_cfg.policy = PolicyKind::TokenB;
    SimSystem base(base_cfg, app);
    base.run();

    SystemConfig vs_cfg = smallConfig();
    vs_cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem vs(vs_cfg, app);
    vs.run();

    EXPECT_LT(vs.results().trafficByteHops,
              base.results().trafficByteHops);
}

TEST(SimSystem, MigrationErodesBaseModeFiltering)
{
    AppProfile app = quickApp();
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.relocation = RelocationMode::Base;
    cfg.accessesPerVcpu = 8000;
    // An aggressive shuffle period, small relative to the run
    // length so dozens of relocations occur.
    cfg.migrationPeriod = 5000;
    SimSystem migrating(cfg, app);
    migrating.run();

    SystemConfig pinned_cfg = cfg;
    pinned_cfg.migrationPeriod = 0;
    SimSystem pinned(pinned_cfg, app);
    pinned.run();

    double migr_ratio =
        static_cast<double>(migrating.results().snoopLookups) /
        static_cast<double>(migrating.results().transactions);
    double pin_ratio =
        static_cast<double>(pinned.results().snoopLookups) /
        static_cast<double>(pinned.results().transactions);
    // Figure 8: with frequent migration, vsnoop-base degenerates
    // toward broadcast.
    EXPECT_GT(migr_ratio, pin_ratio * 1.5);
    EXPECT_GT(migrating.results().migrations, 0u);
}

TEST(SimSystem, CounterModeBeatsBaseUnderMigration)
{
    AppProfile app = quickApp();
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.accessesPerVcpu = 8000;
    cfg.migrationPeriod = 20000; // fast enough for many relocations

    cfg.vsnoop.relocation = RelocationMode::Base;
    SimSystem base_mode(cfg, app);
    base_mode.run();

    cfg.vsnoop.relocation = RelocationMode::Counter;
    SimSystem counter_mode(cfg, app);
    counter_mode.run();

    double base_ratio =
        static_cast<double>(base_mode.results().snoopLookups) /
        static_cast<double>(base_mode.results().transactions);
    double counter_ratio =
        static_cast<double>(counter_mode.results().snoopLookups) /
        static_cast<double>(counter_mode.results().transactions);
    EXPECT_LT(counter_ratio, base_ratio);
    EXPECT_GT(counter_mode.results().mapRemovals, 0u);
}

TEST(SimSystem, HypervisorTrafficIsBroadcastEvenUnderVsnoop)
{
    AppProfile app = quickApp();
    app.hypervisorFraction = 0.05;
    SystemConfig cfg = smallConfig();
    cfg.policy = PolicyKind::VirtualSnoop;
    SimSystem sys(cfg, app);
    sys.run();
    ASSERT_NE(sys.vsnoopPolicy(), nullptr);
    EXPECT_GT(sys.vsnoopPolicy()->broadcastRequests.value(), 0u);
    EXPECT_GT(sys.vsnoopPolicy()->filteredRequests.value(), 0u);
}

TEST(SimSystem, ContentScanMakesPagesRoShared)
{
    AppProfile app = findApp("blackscholes");
    SystemConfig cfg = smallConfig();
    cfg.accessesPerVcpu = 1500;
    SimSystem sys(cfg, app);
    sys.run();
    SystemResults r = sys.results();
    auto content = static_cast<std::size_t>(
        AccessCategory::ContentShared);
    EXPECT_GT(r.accessesByCategory[content], 0u);
    // The ideal scan runs before first touch, so nothing needed
    // merging — but every declared page must be RO-shared and all
    // VMs must map the same canonical host pages.
    auto entry0 = sys.hypervisor().pageTable(0).lookup(kContentBase);
    auto entry1 = sys.hypervisor().pageTable(1).lookup(kContentBase);
    ASSERT_TRUE(entry0.has_value());
    ASSERT_TRUE(entry1.has_value());
    EXPECT_EQ(entry0->type, PageType::RoShared);
    EXPECT_EQ(entry0->hostPage, entry1->hostPage);
}

TEST(SimSystem, ResultsAreDeterministicPerSeed)
{
    AppProfile app = quickApp();
    SystemConfig cfg = smallConfig();
    cfg.accessesPerVcpu = 1000;
    SimSystem a(cfg, app);
    a.run();
    SimSystem b(cfg, app);
    b.run();
    EXPECT_EQ(a.results().runtime, b.results().runtime);
    EXPECT_EQ(a.results().snoopLookups, b.results().snoopLookups);
    EXPECT_EQ(a.results().trafficByteHops, b.results().trafficByteHops);
}

TEST(SimSystem, MixedAppsPerVm)
{
    SystemConfig cfg = smallConfig();
    cfg.accessesPerVcpu = 1000;
    std::vector<AppProfile> apps = {findApp("fft"), findApp("lu"),
                                    findApp("radix"),
                                    findApp("cholesky")};
    SimSystem sys(cfg, apps);
    sys.run();
    EXPECT_EQ(sys.results().totalAccesses, 16000u);
}

TEST(SimSystemDeath, OvercommitIsRejected)
{
    SystemConfig cfg = smallConfig();
    cfg.numVms = 8; // 32 vCPUs > 16 cores
    EXPECT_DEATH(SimSystem(cfg, findApp("fft")), "overcommitted");
}

} // namespace vsnoop::test
