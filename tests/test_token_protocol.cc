/**
 * @file
 * Unit tests for the MOESI token-coherence protocol: basic
 * transactions, token movement, MOESI state equivalents, upgrades,
 * evictions, RO-shared token bundles and the persistent fallback.
 */

#include <gtest/gtest.h>

#include "coherence_harness.hh"

namespace vsnoop::test
{

namespace
{
constexpr std::uint64_t kAddr = 0x40000;
constexpr std::uint32_t kAllTokens = 16;
} // namespace

TEST(TokenProtocol, ReadMissFillsFromMemory)
{
    CoherenceHarness h;
    auto outcome = h.access(0, kAddr, false);
    EXPECT_TRUE(outcome.wasMiss);
    EXPECT_EQ(outcome.source, DataSource::Memory);

    const CacheLine *line = h.line(0, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->valid);
    EXPECT_GE(line->tokens, 1u);
    EXPECT_FALSE(line->dirty);

    MemLineState mem = h.system->memory().state(HostAddr(kAddr));
    EXPECT_EQ(mem.tokens + line->tokens, kAllTokens);
}

TEST(TokenProtocol, ReadHitAfterFill)
{
    CoherenceHarness h;
    h.access(0, kAddr, false);
    auto hit = h.access(0, kAddr, false);
    EXPECT_FALSE(hit.wasMiss);
    EXPECT_EQ(h.system->stats.l2Hits.value(), 1u);
}

TEST(TokenProtocol, WriteMissCollectsAllTokens)
{
    CoherenceHarness h;
    auto outcome = h.access(3, kAddr, true);
    EXPECT_TRUE(outcome.wasMiss);

    const CacheLine *line = h.line(3, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, kAllTokens);
    EXPECT_TRUE(line->owner);
    EXPECT_TRUE(line->dirty);

    MemLineState mem = h.system->memory().state(HostAddr(kAddr));
    EXPECT_EQ(mem.tokens, 0u);
    EXPECT_FALSE(mem.owner);
}

TEST(TokenProtocol, ReadAfterRemoteWriteIsCacheToCache)
{
    CoherenceHarness h;
    h.access(0, kAddr, true);
    auto outcome = h.access(1, kAddr, false, /*vm=*/0);
    EXPECT_EQ(outcome.source, DataSource::CacheIntraVm);

    // The writer keeps ownership (MOESI O state) and the dirty data.
    const CacheLine *owner_line = h.line(0, kAddr);
    ASSERT_NE(owner_line, nullptr);
    EXPECT_TRUE(owner_line->owner);
    EXPECT_TRUE(owner_line->dirty);
    EXPECT_EQ(owner_line->tokens, kAllTokens - 1);

    const CacheLine *reader_line = h.line(1, kAddr);
    ASSERT_NE(reader_line, nullptr);
    EXPECT_FALSE(reader_line->owner);
    EXPECT_EQ(reader_line->tokens, 1u);
}

TEST(TokenProtocol, WriteInvalidatesRemoteCopies)
{
    CoherenceHarness h;
    h.access(0, kAddr, false);
    h.access(1, kAddr, false);
    h.access(2, kAddr, true);

    EXPECT_EQ(h.line(0, kAddr), nullptr);
    EXPECT_EQ(h.line(1, kAddr), nullptr);
    const CacheLine *line = h.line(2, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, kAllTokens);
    EXPECT_TRUE(line->dirty);
}

TEST(TokenProtocol, DirtyDataMigratesThroughWriters)
{
    CoherenceHarness h;
    h.access(0, kAddr, true);
    h.access(1, kAddr, true);
    // Core 1 now owns the only (dirty) copy; a reader must get the
    // data from that cache, not from stale memory.
    auto outcome = h.access(2, kAddr, false);
    EXPECT_EQ(outcome.source, DataSource::CacheIntraVm);
}

TEST(TokenProtocol, UpgradeFromSharedToModified)
{
    CoherenceHarness h;
    h.access(0, kAddr, false);
    h.access(1, kAddr, false);
    auto outcome = h.access(0, kAddr, true);
    EXPECT_TRUE(outcome.wasMiss); // upgrade is a coherence transaction

    const CacheLine *line = h.line(0, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, kAllTokens);
    EXPECT_TRUE(line->owner);
    EXPECT_TRUE(line->dirty);
    EXPECT_FALSE(line->pinned);
    EXPECT_EQ(h.line(1, kAddr), nullptr);
}

TEST(TokenProtocol, OwnerWithLastTokenTransfersOwnership)
{
    CoherenceHarness h;
    h.access(0, kAddr, true); // core 0: M with 16 tokens
    // 14 other cores read, draining core 0 down to one token.
    for (CoreId c = 1; c <= 14; ++c)
        h.access(c, kAddr, false);
    const CacheLine *line0 = h.line(0, kAddr);
    ASSERT_NE(line0, nullptr);
    EXPECT_EQ(line0->tokens, 2u);

    h.access(15, kAddr, false);
    line0 = h.line(0, kAddr);
    ASSERT_NE(line0, nullptr);
    EXPECT_EQ(line0->tokens, 1u);
    EXPECT_TRUE(line0->owner);

    // One more read: the owner token itself must transfer, and the
    // dirty data responsibility moves with it.
    CoherenceHarness::Outcome last = h.access(15, kAddr + 64, false);
    (void)last;
    // Evict nothing yet; instead have core 1 drop its copy and read
    // again so the owner (core 0, one token) must hand over
    // ownership.
    // Simpler: a direct read when the owner has exactly one token.
    // Core 0 currently has 1 token + owner.  Invalidate core 1's
    // copy via a write from core 1, which pulls everything.
    h.access(1, kAddr, true);
    const CacheLine *line1 = h.line(1, kAddr);
    ASSERT_NE(line1, nullptr);
    EXPECT_EQ(line1->tokens, kAllTokens);
    EXPECT_TRUE(line1->owner);
    EXPECT_EQ(h.line(0, kAddr), nullptr);
}

TEST(TokenProtocol, EvictionReturnsTokensToMemory)
{
    // 16 KB, 4-way cache: 64 sets.  Lines 64 sets apart collide.
    CoherenceHarness h;
    std::uint64_t base = 0x100000;
    std::uint64_t stride = 64ull * 64; // one set apart per 64 lines
    for (int i = 0; i < 6; ++i)
        h.access(0, base + i * stride, true);

    EXPECT_GT(h.system->controller(0).cache().evictions.value(), 0u);
    EXPECT_GT(h.system->stats.dirtyWritebacks.value(), 0u);

    // At least the first two lines must have been evicted; their
    // tokens live at memory again.
    MemLineState mem = h.system->memory().state(HostAddr(base));
    EXPECT_EQ(mem.tokens, kAllTokens);
    EXPECT_TRUE(mem.owner);

    // And a re-read gets clean data from memory (the writeback
    // must have carried the dirty data home).
    auto outcome = h.access(1, base, false);
    EXPECT_EQ(outcome.source, DataSource::Memory);
}

TEST(TokenProtocol, CleanEvictionIsSilentOnData)
{
    CoherenceHarness h;
    std::uint64_t base = 0x100000;
    std::uint64_t stride = 64ull * 64;
    for (int i = 0; i < 6; ++i)
        h.access(0, base + i * stride, false);
    EXPECT_GT(h.system->controller(0).cache().evictions.value(), 0u);
    EXPECT_EQ(h.system->stats.dirtyWritebacks.value(), 0u);
}

TEST(TokenProtocol, PersistentRequestRescuesFilteredOwner)
{
    // A policy that snoops nobody and not even memory: transient
    // attempts all fail, and only the persistent broadcast (which
    // ignores the policy) can find the owner.
    auto policy = std::make_unique<StaticPolicy>(CoreSet{}, false);
    CoherenceHarness h(std::move(policy));

    auto outcome = h.access(0, kAddr, true);
    EXPECT_TRUE(outcome.fired);
    EXPECT_GT(h.system->stats.persistentRequests.value(), 0u);
    EXPECT_GT(h.system->stats.retries.value(), 0u);

    const CacheLine *line = h.line(0, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, kAllTokens);
}

TEST(TokenProtocol, RoSharedReadGetsTokenBundleAndProvidership)
{
    CoherenceHarness h;
    auto outcome =
        h.access(0, kAddr, false, /*vm=*/2, PageType::RoShared);
    EXPECT_EQ(outcome.source, DataSource::Memory);

    const CacheLine *line = h.line(0, kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->tokens, 4u); // roTokenBundle default
    EXPECT_TRUE(line->providerVms & (1u << 2));
}

TEST(TokenProtocol, RoSharedProviderServesIntraVmReads)
{
    CoherenceHarness h;
    h.access(0, kAddr, false, /*vm=*/0, PageType::RoShared);
    auto outcome =
        h.access(1, kAddr, false, /*vm=*/0, PageType::RoShared);
    // The mesh neighbour responds faster than the memory
    // controller, so data arrives cache-to-cache.
    EXPECT_EQ(outcome.source, DataSource::CacheIntraVm);
}

TEST(TokenProtocol, RoSharedWritePanics)
{
    CoherenceHarness h;
    EXPECT_DEATH(h.access(0, kAddr, true, 0, PageType::RoShared),
                 "RO-shared");
}

TEST(TokenProtocol, RwSharedBehavesLikeNormalCoherence)
{
    CoherenceHarness h;
    h.access(0, kAddr, true, 0, PageType::RwShared);
    h.access(1, kAddr, false, 1, PageType::RwShared);
    auto line0 = h.line(0, kAddr);
    auto line1 = h.line(1, kAddr);
    ASSERT_NE(line0, nullptr);
    ASSERT_NE(line1, nullptr);
    EXPECT_EQ(line0->tokens + line1->tokens, kAllTokens);
}

TEST(TokenProtocol, SnoopAccountingMatchesBroadcast)
{
    CoherenceHarness h;
    h.access(0, kAddr, false);
    // One transaction: 15 remote deliveries + 1 self lookup.
    EXPECT_EQ(h.system->stats.transactions.value(), 1u);
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), 15u);
    EXPECT_EQ(h.system->stats.snoopLookups.value(), 16u);
    EXPECT_EQ(h.system->stats.memorySnoops.value(), 1u);
}

TEST(TokenProtocol, MissLatencyIsPlausible)
{
    CoherenceHarness h;
    auto memory_read = h.access(0, kAddr, false);
    // Miss latency must include at least the DRAM latency.
    EXPECT_GE(memory_read.doneAt, 80u);
    auto c2c = h.access(1, kAddr + 4096, false);
    (void)c2c;
    h.access(5, kAddr + 4096, false);
    // Cache-to-cache transfers beat another memory round trip from
    // an adjacent node.
    double mean = h.system->stats.missLatency.mean();
    EXPECT_GT(mean, 0.0);
}

TEST(TokenProtocol, DataSourceClassification)
{
    CoherenceHarness h;
    h.system->setFriend(0, 1);
    h.system->setFriend(1, 0);

    h.access(0, kAddr, true, /*vm=*/1); // writer in VM 1
    auto friendly = h.access(1, kAddr, false, /*vm=*/0);
    EXPECT_EQ(friendly.source, DataSource::CacheFriendVm);

    auto other = h.access(2, kAddr, false, /*vm=*/3);
    EXPECT_EQ(other.source, DataSource::CacheOtherVm);
}

} // namespace vsnoop::test
