/**
 * @file
 * Unit tests for destination-set selection and vCPU map register
 * maintenance in VirtualSnoopPolicy.
 */

#include <gtest/gtest.h>

#include "vsnoop_harness.hh"

namespace vsnoop::test
{

namespace
{

MemAccess
makeAccess(std::uint64_t addr, bool write, VmId vm, PageType type)
{
    MemAccess a;
    a.addr = HostAddr(addr);
    a.isWrite = write;
    a.vm = vm;
    a.pageType = type;
    return a;
}

} // namespace

TEST(VsnoopPolicy, InitialMapsMatchPlacement)
{
    VsnoopHarness h;
    for (VmId vm = 0; vm < 4; ++vm) {
        CoreSet map = h.policy.vcpuMap(vm);
        EXPECT_EQ(map.count(), 4u) << "vm " << vm;
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(map.contains(static_cast<CoreId>(vm * 4 + i)));
    }
    EXPECT_EQ(h.policy.mapAdds.value(), 16u);
}

TEST(VsnoopPolicy, PrivatePagesMulticastWithinMap)
{
    VsnoopHarness h;
    SnoopTargets t = h.policy.targets(
        1, makeAccess(0x1000, false, 0, PageType::VmPrivate), 1);
    EXPECT_EQ(t.cores.count(), 3u); // the map minus the requester
    EXPECT_TRUE(t.cores.contains(0));
    EXPECT_TRUE(t.cores.contains(2));
    EXPECT_TRUE(t.cores.contains(3));
    EXPECT_TRUE(t.memory);
    EXPECT_EQ(h.policy.filteredRequests.value(), 1u);
}

TEST(VsnoopPolicy, RwSharedBroadcasts)
{
    VsnoopHarness h;
    SnoopTargets t = h.policy.targets(
        1, makeAccess(0x1000, true, 0, PageType::RwShared), 1);
    EXPECT_EQ(t.cores.count(), 15u);
    EXPECT_FALSE(t.cores.contains(1));
    EXPECT_EQ(h.policy.broadcastRequests.value(), 1u);
}

TEST(VsnoopPolicy, HypervisorAccessBroadcasts)
{
    VsnoopHarness h;
    SnoopTargets t = h.policy.targets(
        5, makeAccess(0x1000, false, kInvalidVm, PageType::VmPrivate), 1);
    EXPECT_EQ(t.cores.count(), 15u);
}

TEST(VsnoopPolicy, CounterThresholdBroadcastsOnLateAttempts)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::CounterThreshold;
    cfg.broadcastAttempt = 3;
    VsnoopHarness h(cfg);
    MemAccess a = makeAccess(0x1000, true, 0, PageType::VmPrivate);
    EXPECT_EQ(h.policy.targets(0, a, 1).cores.count(), 3u);
    EXPECT_EQ(h.policy.targets(0, a, 2).cores.count(), 3u);
    EXPECT_EQ(h.policy.targets(0, a, 3).cores.count(), 15u);
}

TEST(VsnoopPolicy, RoBroadcastPolicy)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::Broadcast;
    VsnoopHarness h(cfg);
    SnoopTargets t = h.policy.targets(
        0, makeAccess(0x1000, false, 0, PageType::RoShared), 1);
    EXPECT_EQ(t.cores.count(), 15u);
}

TEST(VsnoopPolicy, RoMemoryDirectPolicy)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::MemoryDirect;
    VsnoopHarness h(cfg);
    MemAccess a = makeAccess(0x1000, false, 0, PageType::RoShared);
    SnoopTargets t = h.policy.targets(0, a, 1);
    EXPECT_TRUE(t.cores.empty());
    EXPECT_TRUE(t.memory);
    EXPECT_EQ(h.policy.memoryDirectRequests.value(), 1u);
    // Attempt 2 falls back to broadcast (memory had no token).
    EXPECT_EQ(h.policy.targets(0, a, 2).cores.count(), 15u);
}

TEST(VsnoopPolicy, RoIntraVmPolicy)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::IntraVm;
    VsnoopHarness h(cfg);
    SnoopTargets t = h.policy.targets(
        4, makeAccess(0x1000, false, 1, PageType::RoShared), 1);
    EXPECT_EQ(t.cores.count(), 3u);
    EXPECT_TRUE(t.cores.contains(5));
    EXPECT_EQ(t.providerMask, 1u << 1);
}

TEST(VsnoopPolicy, RoFriendVmPolicyUnionsMaps)
{
    VsnoopConfig cfg;
    cfg.roPolicy = RoPolicy::FriendVm;
    VsnoopHarness h(cfg);
    // VM 0's friend is VM 1 (cores 4-7).
    SnoopTargets t = h.policy.targets(
        0, makeAccess(0x1000, false, 0, PageType::RoShared), 1);
    EXPECT_EQ(t.cores.count(), 7u); // 3 own + 4 friend
    EXPECT_TRUE(t.cores.contains(4));
    EXPECT_TRUE(t.cores.contains(7));
    EXPECT_EQ(t.providerMask, (1u << 0) | (1u << 1));
}

TEST(VsnoopPolicy, MigrationGrowsMap)
{
    VsnoopHarness h;
    // VM0 caches a line on core 0 so the old core cannot be
    // dropped, then a VM0 vCPU swaps with a VM2 vCPU.
    h.access(0, 0x100000, false, 0);
    h.mapping.swap(0, 8);
    CoreSet map0 = h.policy.vcpuMap(0);
    // VM0 now runs on cores {8,1,2,3} but core 0 still holds its
    // data: the map keeps the old core.
    EXPECT_TRUE(map0.contains(8));
    EXPECT_TRUE(map0.contains(0));
    EXPECT_EQ(map0.count(), 5u);
}

TEST(VsnoopPolicy, BaseModeNeverShrinks)
{
    VsnoopConfig cfg;
    cfg.relocation = RelocationMode::Base;
    VsnoopHarness h(cfg);
    h.mapping.swap(0, 8);
    h.mapping.swap(0, 12);
    EXPECT_EQ(h.policy.mapRemovals.value(), 0u);
    EXPECT_GE(h.policy.vcpuMap(0).count(), 5u);
}

TEST(VsnoopPolicy, CleanCoreIsRemovedImmediatelyOnDeparture)
{
    VsnoopHarness h;
    // Core 0 has no cached lines for VM 0 (no accesses yet): when
    // the vCPU leaves, the counter is already zero and the core
    // drops out of the map at once.
    h.mapping.swap(0, 8);
    // After the swap both sides re-place; VM0's map should have
    // dropped core 0 (count was zero) but gained core 8.
    CoreSet map0 = h.policy.vcpuMap(0);
    EXPECT_FALSE(map0.contains(0));
    EXPECT_TRUE(map0.contains(8));
    EXPECT_EQ(map0.count(), 4u);
    EXPECT_GE(h.policy.mapRemovals.value(), 1u);
}

TEST(VsnoopPolicy, RunningSetTracksPlacementOnly)
{
    VsnoopHarness h;
    h.mapping.swap(0, 8);
    CoreSet running = h.policy.runningSet(0);
    EXPECT_TRUE(running.contains(8));
    EXPECT_FALSE(running.contains(0));
    EXPECT_EQ(running.count(), 4u);
}

TEST(VsnoopPolicy, FilteredRequestsActuallyReduceSnoops)
{
    VsnoopHarness h;
    h.access(0, 0x100000, false, 0);
    // 3 remote deliveries + 1 self lookup.
    EXPECT_EQ(h.system->stats.snoopsDelivered.value(), 3u);
    EXPECT_EQ(h.system->stats.snoopLookups.value(), 4u);
}

TEST(VsnoopPolicy, NamesAreStable)
{
    EXPECT_STREQ(relocationModeName(RelocationMode::Base),
                 "vsnoop-base");
    EXPECT_STREQ(relocationModeName(RelocationMode::Counter), "counter");
    EXPECT_STREQ(relocationModeName(RelocationMode::CounterThreshold),
                 "counter-threshold");
    EXPECT_STREQ(roPolicyName(RoPolicy::MemoryDirect), "memory-direct");
    EXPECT_STREQ(roPolicyName(RoPolicy::IntraVm), "intra-VM");
    EXPECT_STREQ(roPolicyName(RoPolicy::FriendVm), "friend-VM");
}

} // namespace vsnoop::test
