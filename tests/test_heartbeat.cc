/**
 * @file
 * Sweep heartbeat tests: the per-run progress cell state machine,
 * the watchdog, sweep-level aggregates and their JSON/Prometheus
 * renderings, the monitored sweep runner (including cancellation),
 * and — the load-bearing property — that observation never changes
 * run output.
 */

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "sim/metrics.hh"
#include "sim/stats_server.hh"
#include "system/heartbeat.hh"
#include "system/sweep.hh"

namespace vsnoop::test
{
namespace
{

/** A small but real 4-run matrix (2 apps x 2 seeds). */
SweepMatrix
smallMatrix()
{
    SweepMatrix m;
    m.apps = {"ferret", "blackscholes"};
    m.seeds = {1, 2};
    m.base.mesh.width = 2;
    m.base.mesh.height = 2;
    m.base.numVms = 2;
    m.base.vcpusPerVm = 2;
    m.base.l2.sizeBytes = 32 * 1024;
    m.base.accessesPerVcpu = 400;
    m.base.warmupAccessesPerVcpu = 100;
    return m;
}

ProgressSample
sampleAt(std::uint64_t issued)
{
    ProgressSample s;
    s.tick = issued * 10;
    s.accessesIssued = issued;
    s.accessesTarget = 2000;
    s.transactions = issued / 4;
    s.snoopLookups = issued / 2;
    s.filteredRequests = issued / 8;
    s.broadcastRequests = issued / 8;
    s.trafficByteHops = issued * 64;
    s.eventsProcessed = issued * 3;
    return s;
}

} // namespace

TEST(RunProgress, WalksThePendingRunningDoneLifecycle)
{
    RunProgress cell;
    EXPECT_EQ(cell.state(), RunState::Pending);
    EXPECT_EQ(cell.progressRatio(), 0.0);

    cell.start(1000);
    EXPECT_EQ(cell.state(), RunState::Running);
    EXPECT_EQ(cell.startedMs(), 1000u);

    cell.update(sampleAt(500), 1500);
    EXPECT_EQ(cell.accessesIssued(), 500u);
    EXPECT_EQ(cell.accessesTarget(), 2000u);
    EXPECT_EQ(cell.progressRatio(), 0.25);
    EXPECT_EQ(cell.filterRate(), 0.5);
    EXPECT_EQ(cell.lastUpdateMs(), 1500u);

    cell.finish(2000);
    EXPECT_EQ(cell.state(), RunState::Done);
    EXPECT_EQ(cell.finishedMs(), 2000u);
}

TEST(RunProgress, ZeroTargetOnlyCompletesWhenDone)
{
    RunProgress cell;
    EXPECT_EQ(cell.progressRatio(), 0.0);
    cell.start(0);
    EXPECT_EQ(cell.progressRatio(), 0.0);
    cell.finish(1);
    EXPECT_EQ(cell.progressRatio(), 1.0);
}

TEST(RunProgress, WatchdogFlagsOnlySilentRunningCells)
{
    RunProgress cell;
    // Pending cells are never stalled, however old.
    EXPECT_FALSE(cell.stalled(1000000, 100));

    cell.start(1000);
    cell.update(sampleAt(10), 1000);
    EXPECT_FALSE(cell.stalled(1050, 100));
    EXPECT_TRUE(cell.stalled(1101, 100));

    // A fresh update clears the flag; stallMs == 0 disables.
    cell.update(sampleAt(20), 1200);
    EXPECT_FALSE(cell.stalled(1250, 100));
    EXPECT_FALSE(cell.stalled(99999, 0));

    // Done cells are never stalled.
    cell.finish(1300);
    EXPECT_FALSE(cell.stalled(99999, 100));
}

TEST(SweepHeartbeat, PresetsTargetsAndLabelsFromTheMatrix)
{
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    ASSERT_EQ(hb.runCount(), 4u);
    // (400 + 100 warmup) x 2 VMs x 2 vCPUs.
    EXPECT_EQ(hb.run(0).accessesTarget(), 2000u);
    EXPECT_EQ(hb.info(0).label, "ferret/vsnoop/counter/broadcast/s1");
    EXPECT_EQ(hb.info(3).label,
              "blackscholes/vsnoop/counter/broadcast/s2");
    EXPECT_EQ(hb.runsDone(), 0u);
    EXPECT_EQ(hb.runsRunning(), 0u);
}

TEST(SweepHeartbeat, AggregatesRateAndEta)
{
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    // (A zero launch time means "not launched", so fake wall time
    // starts at 1000 here.)
    hb.markLaunched(1000);

    // Two runs done in 10 s, one halfway, one pending:
    // rate = 0.2 runs/s, remaining = 1.5 runs -> ETA 7.5 s.
    hb.run(0).start(1000);
    hb.run(0).finish(5000);
    hb.run(1).start(1000);
    hb.run(1).finish(10000);
    hb.run(2).start(5000);
    hb.run(2).update(sampleAt(1000), 10500);

    EXPECT_EQ(hb.runsDone(), 2u);
    EXPECT_EQ(hb.runsRunning(), 1u);
    EXPECT_DOUBLE_EQ(hb.runsPerSecond(11000), 0.2);
    EXPECT_DOUBLE_EQ(hb.etaSeconds(11000), 7.5);
    EXPECT_TRUE(hb.stalledRuns(11000, 1000).empty());
    EXPECT_EQ(hb.stalledRuns(12000, 1000),
              std::vector<std::size_t>{2});
}

TEST(SweepHeartbeat, ProgressJsonParsesAndAggregates)
{
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    hb.markLaunched(1000);
    hb.run(0).start(1000);
    hb.run(0).update(sampleAt(800), 1500);
    hb.run(1).start(1000);
    hb.run(1).update(sampleAt(200), 1500);

    std::string error;
    std::optional<JsonValue> doc =
        parseJson(hb.progressJson(3000, 30000), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->numberAt("runs_total"), 4.0);
    EXPECT_EQ(doc->numberAt("runs_done"), 0.0);
    EXPECT_EQ(doc->numberAt("runs_running"), 2.0);
    EXPECT_EQ(doc->numberAt("runs_pending"), 2.0);
    EXPECT_EQ(doc->numberAt("accesses_issued"), 1000.0);
    // Targets count all four cells, preset before any run starts.
    EXPECT_EQ(doc->numberAt("accesses_target"), 8000.0);
    EXPECT_EQ(doc->numberAt("filter_rate"), 0.5);
    EXPECT_EQ(doc->numberAt("elapsed_seconds"), 2.0);
    const JsonValue *watchdog = doc->find("watchdog");
    ASSERT_NE(watchdog, nullptr);
    EXPECT_EQ(watchdog->numberAt("stall_timeout_ms"), 30000.0);
}

TEST(SweepHeartbeat, RunsJsonListsEveryCellWithIdentity)
{
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    hb.run(2).start(100);
    hb.run(2).update(sampleAt(500), 200);

    std::string error;
    std::optional<JsonValue> doc =
        parseJson(hb.runsJson(300, 30000), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue *runs = doc->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_TRUE(runs->isArray());
    ASSERT_EQ(runs->items().size(), 4u);
    const JsonValue &running = runs->items()[2];
    EXPECT_EQ(running.stringAt("app"), "blackscholes");
    EXPECT_EQ(running.stringAt("state"), "running");
    EXPECT_EQ(running.numberAt("accesses_issued"), 500.0);
    EXPECT_EQ(running.numberAt("progress"), 0.25);
    EXPECT_EQ(runs->items()[0].stringAt("state"), "pending");
}

TEST(SweepHeartbeat, PublishesMetricsWithRunLabels)
{
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    MetricsRegistry registry;
    hb.registerMetrics(registry);
    registry.freeze();

    hb.markLaunched(0);
    hb.run(0).start(0);
    hb.run(0).update(sampleAt(1000), 100);
    hb.publishMetrics(registry, 1000, 30000);

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("vsnoop_sweep_runs_total 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("vsnoop_sweep_runs_running 1\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("vsnoop_run_progress_ratio{run=\"0\","
                  "app=\"ferret\",policy=\"vsnoop\","
                  "relocation=\"counter\",ro_policy=\"broadcast\","
                  "seed=\"1\"} 0.5\n"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE vsnoop_run_accesses_total counter\n"),
              std::string::npos);
}

TEST(SweepHeartbeat, PublishesEventAndTickThroughputSeries)
{
    // vsnooptop derives events/s and sim-cycles/s from successive
    // scrapes of these two counters; they must aggregate every
    // cell's latest sample.
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    MetricsRegistry registry;
    hb.registerMetrics(registry);
    registry.freeze();

    hb.markLaunched(0);
    hb.run(0).start(0);
    hb.run(0).update(sampleAt(1000), 100); // 3000 events, tick 10000
    hb.run(1).start(0);
    hb.run(1).update(sampleAt(200), 100); // 600 events, tick 2000
    EXPECT_EQ(hb.run(0).eventsProcessed(), 3000u);
    hb.publishMetrics(registry, 1000, 30000);

    std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("vsnoop_sweep_events_total 3600\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_sweep_sim_ticks_total 12000\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("vsnoop_run_events_total{run=\"0\","),
              std::string::npos)
        << text;
}

TEST(RunIndexed, CancelStopsDispatchingNewIndices)
{
    std::atomic<int> invoked{0};
    std::atomic<bool> stop{false};
    runIndexed(
        100, 4,
        [&](std::size_t) {
            if (invoked.fetch_add(1) + 1 >= 8)
                stop.store(true);
        },
        [&] { return stop.load(); });
    int count = invoked.load();
    EXPECT_GE(count, 8);
    // In-flight work finishes but the bulk of the list is skipped.
    EXPECT_LT(count, 100);
}

TEST(RunSweepMonitored, ObservationDoesNotChangeRunBytes)
{
    SweepMatrix m = smallMatrix();
    std::vector<RunResult> plain = runSweep(m, 2);

    SweepHeartbeat hb(m);
    SweepExecution monitored = runSweepMonitored(m, 2, nullptr, &hb);
    EXPECT_FALSE(monitored.interrupted);
    ASSERT_EQ(monitored.results.size(), plain.size());
    EXPECT_EQ(monitored.completedCount(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        ASSERT_TRUE(monitored.completed[i]);
        EXPECT_EQ(monitored.results[i].toJson(), plain[i].toJson())
            << "run " << i;
    }
    // Every heartbeat cell saw the full lifecycle.
    for (std::size_t i = 0; i < hb.runCount(); ++i) {
        EXPECT_EQ(hb.run(i).state(), RunState::Done);
        EXPECT_EQ(hb.run(i).accessesIssued(),
                  hb.run(i).accessesTarget());
    }
    EXPECT_EQ(hb.runsDone(), hb.runCount());
}

TEST(RunSweepMonitored, CancelledSweepMarksOnlyCompletedSlots)
{
    SweepMatrix m = smallMatrix();
    // Cancel immediately: nothing dispatches, nothing completes.
    SweepHeartbeat hb(m);
    SweepExecution exec = runSweepMonitored(m, 2, nullptr, &hb,
                                            [] { return true; });
    EXPECT_TRUE(exec.interrupted);
    EXPECT_TRUE(hb.interrupted());
    EXPECT_EQ(exec.completedCount(), 0u);
    ASSERT_EQ(exec.results.size(), 4u);
    for (std::uint8_t c : exec.completed)
        EXPECT_EQ(c, 0);
}

TEST(TelemetryRoutes, ServeMetricsProgressAndRuns)
{
    SweepMatrix m = smallMatrix();
    SweepHeartbeat hb(m);
    MetricsRegistry registry;
    hb.registerMetrics(registry);
    registry.freeze();
    hb.markLaunched(steadyNowMs());
    hb.publishMetrics(registry, steadyNowMs(), 30000);

    StatsServer server;
    registerTelemetryRoutes(server, registry, hb, 30000);
    std::string error;
    ASSERT_TRUE(server.start("127.0.0.1:0", &error)) << error;

    std::optional<std::string> body =
        httpGet(server.address(), "/metrics", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_NE(body->find("vsnoop_sweep_runs_total 4\n"),
              std::string::npos);

    body = httpGet(server.address(), "/progress", &error);
    ASSERT_TRUE(body.has_value()) << error;
    std::optional<JsonValue> doc = parseJson(*body, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->numberAt("runs_total"), 4.0);

    body = httpGet(server.address(), "/runs", &error);
    ASSERT_TRUE(body.has_value()) << error;
    doc = parseJson(*body, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_NE(doc->find("runs"), nullptr);
    EXPECT_EQ(doc->find("runs")->items().size(), 4u);

    body = httpGet(server.address(), "/", &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_NE(body->find("/metrics"), std::string::npos);
}

} // namespace vsnoop::test
