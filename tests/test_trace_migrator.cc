/**
 * @file
 * Unit and integration tests for the scheduler-trace replay (the
 * scheduler/coherence coupling).
 */

#include <gtest/gtest.h>

#include "system/sim_system.hh"
#include "virt/sched_sim.hh"
#include "virt/vcpu_map.hh"

namespace vsnoop::test
{

TEST(TraceMigrator, ReplaysPlacementsAtScaledTimes)
{
    EventQueue eq;
    VcpuMapping map(4);
    map.addVcpu(0);
    map.addVcpu(0);
    std::vector<PlacementEvent> trace = {
        {0.0, 0, 1},  // vCPU0 -> core 1 immediately
        {1.0, 1, 2},  // vCPU1 -> core 2 at 1 ms
        {2.0, 0, kInvalidCore}, // vCPU0 descheduled
        {3.0, 0, 3},  // vCPU0 -> core 3
    };
    TraceMigrator migrator(eq, map, trace, /*ticks_per_ms=*/1000.0);
    migrator.start();

    EXPECT_EQ(map.coreOf(0), 1);
    EXPECT_EQ(map.coreOf(1), kInvalidCore);

    eq.runUntil(1000);
    EXPECT_EQ(map.coreOf(1), 2);

    eq.runUntil(2000);
    EXPECT_EQ(map.coreOf(0), kInvalidCore);

    eq.runUntil(3000);
    EXPECT_EQ(map.coreOf(0), 3);
    EXPECT_TRUE(migrator.finished());
    EXPECT_EQ(migrator.migrations.value(), 1u); // core 1 -> core 3
    EXPECT_EQ(migrator.placements.value(), 3u);
}

TEST(TraceMigrator, TraceEndReplacesStrandedVcpus)
{
    EventQueue eq;
    VcpuMapping map(4);
    map.addVcpu(0);
    std::vector<PlacementEvent> trace = {
        {0.0, 0, 1},
        {1.0, 0, kInvalidCore}, // recording ends with it parked
    };
    TraceMigrator migrator(eq, map, trace, 1000.0);
    migrator.start();
    eq.runUntil(2000);
    EXPECT_TRUE(migrator.finished());
    // Re-placed (on its previous core) so the system can progress.
    EXPECT_EQ(map.coreOf(0), 1);
}

TEST(TraceMigrator, SchedulerTraceDrivesCoherenceRun)
{
    // Record a real credit-scheduler trace (4 VMs x 4 vCPUs on 16
    // cores, full migration) and replay it under virtual snooping.
    SchedConfig sched_cfg;
    sched_cfg.numCores = 16;
    sched_cfg.recordTrace = true;
    sched_cfg.seed = 3;
    SchedProfile profile;
    profile.meanRunMs = 8.0;
    profile.meanBlockMs = 2.0;
    profile.workMsPerVcpu = 200.0;
    SchedulerSim sched(sched_cfg, profile, 4, 4);
    SchedResult sched_result = sched.run();
    ASSERT_FALSE(sched_result.trace.empty());

    SystemConfig cfg;
    cfg.accessesPerVcpu = 3000;
    cfg.l2.sizeBytes = 32 * 1024;
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.invariantCheckPeriod = 200000;
    cfg.placementTrace =
        std::make_shared<const std::vector<PlacementEvent>>(
            sched_result.trace);
    cfg.traceTicksPerMs = 2000.0; // compress: the run is short

    SimSystem sys(cfg, findApp("ferret"));
    sys.run();
    SystemResults r = sys.results();
    EXPECT_EQ(r.totalAccesses,
              static_cast<std::uint64_t>(16) * cfg.accessesPerVcpu);
    EXPECT_GT(r.migrations, 0u);
    // Relocation happened, so the maps must have churned.
    EXPECT_GT(r.mapAdds, 16u);
}

TEST(TraceMigrator, CounterModeStillPrunesUnderRealTrace)
{
    SchedConfig sched_cfg;
    sched_cfg.numCores = 16;
    sched_cfg.recordTrace = true;
    sched_cfg.seed = 5;
    SchedProfile profile;
    profile.meanRunMs = 5.0;
    profile.meanBlockMs = 2.0;
    profile.workMsPerVcpu = 300.0;
    SchedulerSim sched(sched_cfg, profile, 4, 4);
    auto trace = std::make_shared<const std::vector<PlacementEvent>>(
        sched.run().trace);

    auto run = [&](RelocationMode mode) {
        SystemConfig cfg;
        cfg.accessesPerVcpu = 4000;
        cfg.l2.sizeBytes = 16 * 1024;
        cfg.policy = PolicyKind::VirtualSnoop;
        cfg.vsnoop.relocation = mode;
        cfg.placementTrace = trace;
        cfg.traceTicksPerMs = 1000.0;
        SimSystem sys(cfg, findApp("ferret"));
        sys.run();
        SystemResults r = sys.results();
        return static_cast<double>(r.snoopLookups) /
               static_cast<double>(r.transactions);
    };

    double base = run(RelocationMode::Base);
    double counter = run(RelocationMode::Counter);
    EXPECT_LT(counter, base);
}

} // namespace vsnoop::test
