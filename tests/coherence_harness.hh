/**
 * @file
 * Shared test harness for exercising the token-coherence engine
 * directly, without workloads or the hypervisor.
 */

#ifndef VSNOOP_TESTS_COHERENCE_HARNESS_HH_
#define VSNOOP_TESTS_COHERENCE_HARNESS_HH_

#include <memory>

#include <gtest/gtest.h>

#include "coherence/policy.hh"
#include "coherence/system.hh"
#include "noc/mesh.hh"

namespace vsnoop::test
{

/**
 * A 16-core token-coherence system over a 4x4 mesh with small L2s
 * (so eviction paths are easy to reach) and a pluggable policy.
 */
class CoherenceHarness
{
  public:
    struct Outcome
    {
        bool fired = false;
        Tick doneAt = 0;
        DataSource source = DataSource::Memory;
        bool wasMiss = false;
    };

    explicit CoherenceHarness(
        std::unique_ptr<SnoopTargetPolicy> policy = nullptr,
        std::uint64_t l2_bytes = 16 * 1024, std::uint32_t l2_ways = 4,
        std::uint64_t l1_bytes = 0)
        : mesh(MeshConfig{}),
          policy_(policy ? std::move(policy)
                         : std::make_unique<TokenBPolicy>(16))
    {
        CacheGeometry geom;
        geom.sizeBytes = l2_bytes;
        geom.ways = l2_ways;
        geom.l1SizeBytes = l1_bytes;
        ProtocolConfig cfg;
        cfg.numCores = 16;
        system = std::make_unique<CoherenceSystem>(eq, mesh, *policy_,
                                                   cfg, geom, 8);
    }

    /** Issue an access without waiting. */
    std::shared_ptr<Outcome>
    issue(CoreId core, std::uint64_t addr, bool write, VmId vm = 0,
          PageType type = PageType::VmPrivate)
    {
        auto outcome = std::make_shared<Outcome>();
        MemAccess access;
        access.addr = HostAddr(addr);
        access.isWrite = write;
        access.vm = vm;
        access.pageType = type;
        system->access(core, access,
                       [outcome](Tick done, DataSource src, bool miss) {
                           outcome->fired = true;
                           outcome->doneAt = done;
                           outcome->source = src;
                           outcome->wasMiss = miss;
                       });
        return outcome;
    }

    /** Run the queue dry (bounded) and verify token conservation. */
    void
    drain(std::uint64_t limit = 2'000'000)
    {
        eq.run(limit);
        system->checkInvariants();
    }

    /** Issue and complete one access; asserts completion. */
    Outcome
    access(CoreId core, std::uint64_t addr, bool write, VmId vm = 0,
           PageType type = PageType::VmPrivate)
    {
        auto outcome = issue(core, addr, write, vm, type);
        drain();
        EXPECT_TRUE(outcome->fired)
            << "access to " << addr << " from core " << core
            << " never completed";
        return *outcome;
    }

    const CacheLine *
    line(CoreId core, std::uint64_t addr)
    {
        return system->controller(core).cache().find(HostAddr(addr));
    }

    EventQueue eq;
    Mesh mesh;
    std::unique_ptr<SnoopTargetPolicy> policy_;
    std::unique_ptr<CoherenceSystem> system;
};

} // namespace vsnoop::test

#endif // VSNOOP_TESTS_COHERENCE_HARNESS_HH_
