/**
 * @file
 * Unit tests for the activity-count energy model.
 */

#include <gtest/gtest.h>

#include "system/energy.hh"

namespace vsnoop::test
{

TEST(Energy, ArithmeticMatchesCounts)
{
    SystemResults r;
    r.snoopLookups = 1000;
    r.trafficByteHops = 1600; // 100 flit-hops at 16 B links
    r.totalAccesses = 5000;
    r.totalMisses = 500;
    r.transactions = 500;

    EnergyParams p;
    p.tagLookupPj = 10.0;
    p.flitHopPj = 5.0;
    p.dramAccessPj = 1000.0;
    p.l2DataPj = 20.0;
    p.linkBytes = 16.0;

    EnergyBreakdown e = computeEnergy(r, 300, 50, p);
    EXPECT_DOUBLE_EQ(e.snoopTagPj, 1000 * 10.0);
    EXPECT_DOUBLE_EQ(e.networkPj, 100 * 5.0);
    EXPECT_DOUBLE_EQ(e.dramPj, 350 * 1000.0);
    // Hits (4500) plus fills (500) touch the data array.
    EXPECT_DOUBLE_EQ(e.l2DataPj, 5000 * 20.0);
    EXPECT_DOUBLE_EQ(e.totalPj(),
                     e.snoopTagPj + e.networkPj + e.dramPj + e.l2DataPj);
}

TEST(Energy, ZeroRunIsZeroEnergy)
{
    SystemResults r;
    EnergyBreakdown e = computeEnergy(r, 0, 0);
    EXPECT_DOUBLE_EQ(e.totalPj(), 0.0);
}

TEST(Energy, FilteringSavesTagEnergyEndToEnd)
{
    AppProfile app = findApp("ferret");
    app.contentFraction = 0.0;
    app.hypervisorFraction = 0.0;

    auto run = [&](PolicyKind policy) {
        SystemConfig cfg;
        cfg.accessesPerVcpu = 3000;
        cfg.l2.sizeBytes = 32 * 1024;
        cfg.policy = policy;
        SimSystem system(cfg, app);
        system.run();
        return computeEnergy(system);
    };

    EnergyBreakdown base = run(PolicyKind::TokenB);
    EnergyBreakdown vs = run(PolicyKind::VirtualSnoop);

    // Tag energy falls by roughly the snoop-reduction factor (75%
    // ideal with pinned VMs).
    EXPECT_LT(vs.snoopTagPj, base.snoopTagPj * 0.35);
    // DRAM energy is not filterable and should be comparable.
    EXPECT_NEAR(vs.dramPj / base.dramPj, 1.0, 0.1);
    EXPECT_LT(vs.totalPj(), base.totalPj());
}

} // namespace vsnoop::test
