/**
 * @file
 * Relocation deep-dive: sweep the vCPU relocation period and watch
 * the three map-maintenance mechanisms (Section IV-B) defend the
 * snoop filter — including the Figure 9 removal-period
 * distribution for the counter mechanism.
 */

#include <iostream>

#include "sim/table.hh"
#include "system/sim_system.hh"

using namespace vsnoop;

namespace
{

struct Point
{
    double snoopsPerTxn = 0.0;
    std::uint64_t removals = 0;
    double removalP50 = 0.0;
    double removalP90 = 0.0;
};

Point
run(RelocationMode mode, Tick period, const AppProfile &app)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.relocation = mode;
    cfg.migrationPeriod = period;
    cfg.l2.sizeBytes = 16 * 1024;
    cfg.accessesPerVcpu = 20000;
    cfg.warmupAccessesPerVcpu = 4000;

    SimSystem system(cfg, app);
    system.run();
    SystemResults r = system.results();
    Point p;
    p.snoopsPerTxn = static_cast<double>(r.snoopLookups) /
                     static_cast<double>(r.transactions);
    const Histogram &hist = system.vsnoopPolicy()->removalPeriodTicks;
    p.removals = hist.count();
    p.removalP50 = hist.quantile(0.5);
    p.removalP90 = hist.quantile(0.9);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "ferret";
    AppProfile app = findApp(app_name);

    std::cout << "Migration study: " << app.name
              << " on a 16 KB-L2 system (fast cache turnover), "
                 "sweeping the shuffle period.\n"
                 "Snoops per transaction: broadcast costs 16, the "
                 "pinned ideal costs 4.\n\n";

    TextTable table({"shuffle period (ticks)", "vsnoop-base",
                     "counter", "counter-threshold",
                     "counter removals", "removal p50 (ticks)",
                     "removal p90 (ticks)"});
    for (Tick period : {Tick{200000}, Tick{50000}, Tick{12000},
                        Tick{3000}}) {
        Point base = run(RelocationMode::Base, period, app);
        Point counter = run(RelocationMode::Counter, period, app);
        Point threshold =
            run(RelocationMode::CounterThreshold, period, app);
        table.row()
            .cell(std::to_string(period))
            .cell(base.snoopsPerTxn, 2)
            .cell(counter.snoopsPerTxn, 2)
            .cell(threshold.snoopsPerTxn, 2)
            .cell(counter.removals)
            .cell(counter.removalP50, 0)
            .cell(counter.removalP90, 0);
    }
    table.print();

    std::cout << "\nvsnoop-base saturates toward 16 as relocation "
                 "accelerates; the counter\nmechanisms keep pruning "
                 "the maps (Figures 7/8 of the paper).\n";
    return 0;
}
