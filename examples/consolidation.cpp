/**
 * @file
 * Server-consolidation scenario: four *different* applications, one
 * per VM, share a 16-core chip while the hypervisor's load
 * balancing shuffles vCPUs across VM boundaries — the situation the
 * paper's Sections III-V argue virtual snooping must survive.
 *
 * The example runs the consolidated system under the three
 * relocation mechanisms and shows how each VM's snoop domain
 * (vCPU map) behaves, per-VM traffic categories, and what the
 * residence counters recover.
 */

#include <iostream>

#include "sim/table.hh"
#include "system/sim_system.hh"

using namespace vsnoop;

namespace
{

/** A consolidated rack slice: web, analytics, dedup and compute. */
std::vector<AppProfile>
consolidatedApps()
{
    return {findApp("specjbb"), findApp("canneal"), findApp("dedup"),
            findApp("blackscholes")};
}

void
runMode(RelocationMode mode)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.relocation = mode;
    cfg.accessesPerVcpu = 15000;
    cfg.warmupAccessesPerVcpu = 4000;
    cfg.migrationPeriod = 25000; // aggressive load balancing

    SimSystem system(cfg, consolidatedApps());
    system.run();
    SystemResults r = system.results();

    std::cout << "-- relocation mode: " << relocationModeName(mode)
              << " --\n";
    TextTable table({"metric", "value"});
    table.row().cell("migrations").cell(r.migrations);
    table.row().cell("vCPU map additions").cell(r.mapAdds);
    table.row().cell("vCPU map removals").cell(r.mapRemovals);
    table.row()
        .cell("snoop lookups per transaction")
        .cell(static_cast<double>(r.snoopLookups) /
                  static_cast<double>(r.transactions),
              2);
    table.row()
        .cell("broadcast share of requests")
        .cell(formatPercent(
                  static_cast<double>(
                      system.vsnoopPolicy()->broadcastRequests.value()) /
                  static_cast<double>(r.transactions)) +
              "%");
    table.print();

    // Final snoop-domain sizes per VM.
    TextTable domains({"VM", "app", "running on", "vCPU map"});
    for (VmId vm = 0; vm < 4; ++vm) {
        domains.row()
            .cell("VM" + std::to_string(vm))
            .cell(consolidatedApps()[vm].name)
            .cell(system.vsnoopPolicy()->runningSet(vm).toString())
            .cell(system.vsnoopPolicy()->vcpuMap(vm).toString());
    }
    domains.print();
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Consolidation study: specjbb + canneal + dedup + "
                 "blackscholes on 16 cores,\nwith cross-VM vCPU "
                 "shuffles every 25k ticks.\n\n";
    runMode(RelocationMode::Base);
    runMode(RelocationMode::Counter);
    runMode(RelocationMode::CounterThreshold);
    std::cout << "Note how vsnoop-base's maps only ever grow, while "
                 "the counter mechanisms\nprune cores as residence "
                 "counters drain (Section IV-B of the paper).\n";
    return 0;
}
