/**
 * @file
 * Content-based page sharing walkthrough (Section VI of the paper):
 * four VMs run the same application; the hypervisor deduplicates
 * identical pages; the example compares the four RO-shared request
 * policies and shows where read data actually comes from, plus the
 * copy-on-write machinery in action.
 */

#include <iostream>

#include "sim/table.hh"
#include "system/sim_system.hh"

using namespace vsnoop;

namespace
{

void
policyRow(TextTable &table, RoPolicy ro, const AppProfile &app)
{
    SystemConfig cfg;
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.roPolicy = ro;
    cfg.accessesPerVcpu = 15000;
    cfg.warmupAccessesPerVcpu = 4000;

    SimSystem system(cfg, app);
    system.run();
    SystemResults r = system.results();

    std::uint64_t ro_total = 0;
    for (std::size_t i = 0; i < kNumDataSources; ++i)
        ro_total += r.roDataFrom[i];
    auto pct = [&](DataSource s) {
        if (ro_total == 0)
            return std::string("-");
        return formatPercent(
            static_cast<double>(
                r.roDataFrom[static_cast<std::size_t>(s)]) /
            static_cast<double>(ro_total));
    };

    table.row()
        .cell(roPolicyName(ro))
        .cell(static_cast<double>(r.snoopLookups) /
                  static_cast<double>(r.transactions),
              2)
        .cell(r.meanRoMissLatency, 1)
        .cell(pct(DataSource::CacheIntraVm))
        .cell(pct(DataSource::CacheFriendVm))
        .cell(pct(DataSource::CacheOtherVm))
        .cell(pct(DataSource::Memory));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "canneal";
    AppProfile app = findApp(app_name);
    // Give COW something to do in the demo.
    app.contentWriteFraction = 0.0002;

    std::cout << "Content-based sharing study: 4 VMs x " << app.name
              << ", ideal page deduplication.\n\n";

    TextTable table({"RO policy", "snoops/txn", "RO miss latency",
                     "data: intra-VM", "friend-VM", "other VM",
                     "memory"});
    policyRow(table, RoPolicy::Broadcast, app);
    policyRow(table, RoPolicy::MemoryDirect, app);
    policyRow(table, RoPolicy::IntraVm, app);
    policyRow(table, RoPolicy::FriendVm, app);
    table.print();

    // Show the dedup/COW accounting from one of the runs.
    SystemConfig cfg;
    cfg.policy = PolicyKind::VirtualSnoop;
    cfg.vsnoop.roPolicy = RoPolicy::IntraVm;
    cfg.accessesPerVcpu = 15000;
    SimSystem system(cfg, app);
    system.run();
    const Hypervisor &hv = system.hypervisor();
    std::cout << "\nHypervisor page accounting: allocated "
              << hv.pagesAllocated.value() << ", deduplicated "
              << hv.pagesDeduplicated.value() << ", COW breaks "
              << hv.cowBreaks.value() << ".\n";
    std::cout << "memory-direct snoops least but forfeits "
                 "cache-to-cache transfers;\nfriend-VM recovers them "
                 "at a modest snoop cost (Table VI of the paper).\n";
    return 0;
}
