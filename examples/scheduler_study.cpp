/**
 * @file
 * Credit-scheduler playground (Section III of the paper): compare
 * pinned and load-balanced scheduling for one application, under-
 * and overcommitted, and report the relocation statistics that
 * motivate virtual snooping's counter mechanism.
 */

#include <iostream>

#include "sim/table.hh"
#include "sim/logging.hh"
#include "virt/sched_sim.hh"
#include "workload/app_profile.hh"

using namespace vsnoop;

namespace
{

void
study(const AppProfile &app, std::uint32_t vms, const char *label)
{
    std::cout << "-- " << label << ": " << vms << " VMs x 4 vCPUs on 8 "
              << "cores --\n";
    TextTable table({"policy", "makespan (ms)", "core utilization",
                     "migrations", "avg relocation period (ms)"});
    for (bool pinned : {true, false}) {
        SchedConfig cfg;
        cfg.numCores = 8;
        cfg.pinned = pinned;
        cfg.migrationColdMs = 0.3;
        cfg.coldSpeed = 0.6;
        SchedulerSim sim(cfg, app.sched, vms, 4);
        SchedResult r = sim.run();
        table.row()
            .cell(pinned ? "no migration (pinned)" : "full migration")
            .cell(r.makespanMs, 1)
            .cell(formatPercent(r.coreUtilization) + "%")
            .cell(r.migrations)
            .cell(r.avgRelocationPeriodMs, 1);
    }
    table.print();
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "bodytrack";
    const AppProfile &app = findApp(app_name);

    std::cout << "Credit-scheduler study for " << app.name
              << " (Xen-style: 30 ms slices, credit accounting, "
                 "idle-core stealing,\nBOOST wake preemption, "
                 "domain0 displacement).\n\n";
    study(app, 2, "undercommitted");
    study(app, 4, "overcommitted");
    std::cout << "Pinning wins when every vCPU has a core (cache "
                 "affinity); load balancing wins\nwhen cores are "
                 "contended (Figure 3 of the paper).  The relocation "
                 "periods feed\nthe coherence-level migration "
                 "experiments.\n";
    return 0;
}
