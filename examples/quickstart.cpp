/**
 * @file
 * Quickstart: build the paper's 16-core system (four 4-vCPU VMs
 * over a 4x4 mesh with Token Coherence), run the same application
 * in every VM under both TokenB and virtual snooping, and print
 * what the filter saved.
 *
 *   ./quickstart [app-name]     (default: ferret)
 */

#include <iostream>
#include <string>

#include "sim/table.hh"
#include "system/sim_system.hh"

using namespace vsnoop;

namespace
{

SystemResults
runWith(PolicyKind policy, const AppProfile &app)
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.accessesPerVcpu = 20000;
    cfg.warmupAccessesPerVcpu = 5000;
    SimSystem system(cfg, app);
    system.run();
    return system.results();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "ferret";
    const AppProfile &app = findApp(app_name);

    std::cout << "Virtual snooping quickstart: 16 cores, 4 VMs x 4 "
                 "vCPUs, app = "
              << app.name << "\n\n";

    SystemResults base = runWith(PolicyKind::TokenB, app);
    SystemResults vsnoop = runWith(PolicyKind::VirtualSnoop, app);

    TextTable table({"metric", "TokenB", "virtual snooping", "ratio"});
    auto ratio = [](double a, double b) {
        return b > 0 ? formatFixed(a / b, 3) : std::string("-");
    };
    table.row()
        .cell("coherence transactions")
        .cell(base.transactions)
        .cell(vsnoop.transactions)
        .cell(ratio(static_cast<double>(vsnoop.transactions),
                    static_cast<double>(base.transactions)));
    table.row()
        .cell("snoop lookups")
        .cell(base.snoopLookups)
        .cell(vsnoop.snoopLookups)
        .cell(ratio(static_cast<double>(vsnoop.snoopLookups),
                    static_cast<double>(base.snoopLookups)));
    table.row()
        .cell("network traffic (byte-hops)")
        .cell(base.trafficByteHops)
        .cell(vsnoop.trafficByteHops)
        .cell(ratio(static_cast<double>(vsnoop.trafficByteHops),
                    static_cast<double>(base.trafficByteHops)));
    table.row()
        .cell("runtime (ticks)")
        .cell(base.runtime)
        .cell(vsnoop.runtime)
        .cell(ratio(static_cast<double>(vsnoop.runtime),
                    static_cast<double>(base.runtime)));
    table.row()
        .cell("mean miss latency (ticks)")
        .cell(base.meanMissLatency, 1)
        .cell(vsnoop.meanMissLatency, 1)
        .cell(ratio(vsnoop.meanMissLatency, base.meanMissLatency));
    table.print();

    double reduction =
        100.0 * (1.0 - static_cast<double>(vsnoop.snoopLookups) /
                           static_cast<double>(base.snoopLookups));
    std::cout << "\nVirtual snooping filtered "
              << formatFixed(reduction, 1)
              << "% of snoop lookups (ideal for 4-core VMs on 16 "
                 "cores: 75%).\n";
    return 0;
}
