file(REMOVE_RECURSE
  "CMakeFiles/vsnoopsim.dir/vsnoopsim.cc.o"
  "CMakeFiles/vsnoopsim.dir/vsnoopsim.cc.o.d"
  "vsnoopsim"
  "vsnoopsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoopsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
