# Empty compiler generated dependencies file for vsnoopsim.
# This may be replaced when dependencies are built.
