# Empty compiler generated dependencies file for vsnoopreport.
# This may be replaced when dependencies are built.
