# Empty dependencies file for vsnoopreport.
# This may be replaced when dependencies are built.
