file(REMOVE_RECURSE
  "CMakeFiles/vsnoopreport.dir/vsnoopreport.cc.o"
  "CMakeFiles/vsnoopreport.dir/vsnoopreport.cc.o.d"
  "vsnoopreport"
  "vsnoopreport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoopreport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
