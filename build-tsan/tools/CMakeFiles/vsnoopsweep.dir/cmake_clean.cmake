file(REMOVE_RECURSE
  "CMakeFiles/vsnoopsweep.dir/vsnoopsweep.cc.o"
  "CMakeFiles/vsnoopsweep.dir/vsnoopsweep.cc.o.d"
  "vsnoopsweep"
  "vsnoopsweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoopsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
