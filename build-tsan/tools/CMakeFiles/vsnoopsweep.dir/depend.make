# Empty dependencies file for vsnoopsweep.
# This may be replaced when dependencies are built.
