file(REMOVE_RECURSE
  "CMakeFiles/vsnooptop.dir/vsnooptop.cc.o"
  "CMakeFiles/vsnooptop.dir/vsnooptop.cc.o.d"
  "vsnooptop"
  "vsnooptop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnooptop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
