# Empty dependencies file for vsnooptop.
# This may be replaced when dependencies are built.
