# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vsnoopsim_help "/root/repo/build-tsan/tools/vsnoopsim" "--help")
set_tests_properties(vsnoopsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vsnoopsweep_help "/root/repo/build-tsan/tools/vsnoopsweep" "--help")
set_tests_properties(vsnoopsweep_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vsnoopreport_help "/root/repo/build-tsan/tools/vsnoopreport" "--help")
set_tests_properties(vsnoopreport_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(vsnooptop_help "/root/repo/build-tsan/tools/vsnooptop" "--help")
set_tests_properties(vsnooptop_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
