file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_relocation_period.dir/bench_table1_relocation_period.cc.o"
  "CMakeFiles/bench_table1_relocation_period.dir/bench_table1_relocation_period.cc.o.d"
  "bench_table1_relocation_period"
  "bench_table1_relocation_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_relocation_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
