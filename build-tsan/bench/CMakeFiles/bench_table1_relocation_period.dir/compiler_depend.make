# Empty compiler generated dependencies file for bench_table1_relocation_period.
# This may be replaced when dependencies are built.
