file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_content_shared.dir/bench_table5_content_shared.cc.o"
  "CMakeFiles/bench_table5_content_shared.dir/bench_table5_content_shared.cc.o.d"
  "bench_table5_content_shared"
  "bench_table5_content_shared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_content_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
