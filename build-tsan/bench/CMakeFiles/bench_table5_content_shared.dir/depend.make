# Empty dependencies file for bench_table5_content_shared.
# This may be replaced when dependencies are built.
