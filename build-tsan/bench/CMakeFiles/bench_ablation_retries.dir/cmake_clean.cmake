file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_retries.dir/bench_ablation_retries.cc.o"
  "CMakeFiles/bench_ablation_retries.dir/bench_ablation_retries.cc.o.d"
  "bench_ablation_retries"
  "bench_ablation_retries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
