# Empty compiler generated dependencies file for bench_ablation_retries.
# This may be replaced when dependencies are built.
