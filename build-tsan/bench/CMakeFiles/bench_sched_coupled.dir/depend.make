# Empty dependencies file for bench_sched_coupled.
# This may be replaced when dependencies are built.
