file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_coupled.dir/bench_sched_coupled.cc.o"
  "CMakeFiles/bench_sched_coupled.dir/bench_sched_coupled.cc.o.d"
  "bench_sched_coupled"
  "bench_sched_coupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_coupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
