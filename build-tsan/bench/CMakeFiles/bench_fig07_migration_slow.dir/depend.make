# Empty dependencies file for bench_fig07_migration_slow.
# This may be replaced when dependencies are built.
