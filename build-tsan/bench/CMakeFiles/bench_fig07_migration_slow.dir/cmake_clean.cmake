file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_migration_slow.dir/bench_fig07_migration_slow.cc.o"
  "CMakeFiles/bench_fig07_migration_slow.dir/bench_fig07_migration_slow.cc.o.d"
  "bench_fig07_migration_slow"
  "bench_fig07_migration_slow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_migration_slow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
