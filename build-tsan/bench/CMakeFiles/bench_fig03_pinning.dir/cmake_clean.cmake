file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_pinning.dir/bench_fig03_pinning.cc.o"
  "CMakeFiles/bench_fig03_pinning.dir/bench_fig03_pinning.cc.o.d"
  "bench_fig03_pinning"
  "bench_fig03_pinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_pinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
