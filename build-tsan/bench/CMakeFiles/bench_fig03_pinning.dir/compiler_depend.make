# Empty compiler generated dependencies file for bench_fig03_pinning.
# This may be replaced when dependencies are built.
