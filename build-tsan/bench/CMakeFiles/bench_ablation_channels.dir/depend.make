# Empty dependencies file for bench_ablation_channels.
# This may be replaced when dependencies are built.
