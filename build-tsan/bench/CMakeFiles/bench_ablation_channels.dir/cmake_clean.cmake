file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_channels.dir/bench_ablation_channels.cc.o"
  "CMakeFiles/bench_ablation_channels.dir/bench_ablation_channels.cc.o.d"
  "bench_ablation_channels"
  "bench_ablation_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
