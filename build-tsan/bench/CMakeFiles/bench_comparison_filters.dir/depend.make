# Empty dependencies file for bench_comparison_filters.
# This may be replaced when dependencies are built.
