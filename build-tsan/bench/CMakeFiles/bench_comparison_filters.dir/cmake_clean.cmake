file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_filters.dir/bench_comparison_filters.cc.o"
  "CMakeFiles/bench_comparison_filters.dir/bench_comparison_filters.cc.o.d"
  "bench_comparison_filters"
  "bench_comparison_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
