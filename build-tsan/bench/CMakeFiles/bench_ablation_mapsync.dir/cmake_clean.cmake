file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mapsync.dir/bench_ablation_mapsync.cc.o"
  "CMakeFiles/bench_ablation_mapsync.dir/bench_ablation_mapsync.cc.o.d"
  "bench_ablation_mapsync"
  "bench_ablation_mapsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mapsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
