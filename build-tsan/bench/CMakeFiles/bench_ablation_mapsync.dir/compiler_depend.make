# Empty compiler generated dependencies file for bench_ablation_mapsync.
# This may be replaced when dependencies are built.
