# Empty compiler generated dependencies file for bench_fig02_potential_reduction.
# This may be replaced when dependencies are built.
