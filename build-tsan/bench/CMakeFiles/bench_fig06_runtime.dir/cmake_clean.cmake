file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_runtime.dir/bench_fig06_runtime.cc.o"
  "CMakeFiles/bench_fig06_runtime.dir/bench_fig06_runtime.cc.o.d"
  "bench_fig06_runtime"
  "bench_fig06_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
