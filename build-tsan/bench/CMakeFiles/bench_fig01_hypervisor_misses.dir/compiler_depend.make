# Empty compiler generated dependencies file for bench_fig01_hypervisor_misses.
# This may be replaced when dependencies are built.
