file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_hypervisor_misses.dir/bench_fig01_hypervisor_misses.cc.o"
  "CMakeFiles/bench_fig01_hypervisor_misses.dir/bench_fig01_hypervisor_misses.cc.o.d"
  "bench_fig01_hypervisor_misses"
  "bench_fig01_hypervisor_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_hypervisor_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
