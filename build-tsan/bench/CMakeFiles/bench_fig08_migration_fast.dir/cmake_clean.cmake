file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_migration_fast.dir/bench_fig08_migration_fast.cc.o"
  "CMakeFiles/bench_fig08_migration_fast.dir/bench_fig08_migration_fast.cc.o.d"
  "bench_fig08_migration_fast"
  "bench_fig08_migration_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_migration_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
