# Empty compiler generated dependencies file for bench_fig08_migration_fast.
# This may be replaced when dependencies are built.
