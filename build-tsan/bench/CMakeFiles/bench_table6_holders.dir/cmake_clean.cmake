file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_holders.dir/bench_table6_holders.cc.o"
  "CMakeFiles/bench_table6_holders.dir/bench_table6_holders.cc.o.d"
  "bench_table6_holders"
  "bench_table6_holders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_holders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
