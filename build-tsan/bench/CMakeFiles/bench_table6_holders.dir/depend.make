# Empty dependencies file for bench_table6_holders.
# This may be replaced when dependencies are built.
