file(REMOVE_RECURSE
  "CMakeFiles/test_vsnoop.dir/test_relocation.cc.o"
  "CMakeFiles/test_vsnoop.dir/test_relocation.cc.o.d"
  "CMakeFiles/test_vsnoop.dir/test_ro_policies.cc.o"
  "CMakeFiles/test_vsnoop.dir/test_ro_policies.cc.o.d"
  "CMakeFiles/test_vsnoop.dir/test_vsnoop_policy.cc.o"
  "CMakeFiles/test_vsnoop.dir/test_vsnoop_policy.cc.o.d"
  "test_vsnoop"
  "test_vsnoop.pdb"
  "test_vsnoop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsnoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
