# Empty dependencies file for test_vsnoop.
# This may be replaced when dependencies are built.
