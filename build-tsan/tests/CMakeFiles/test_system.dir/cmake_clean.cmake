file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/test_accounting.cc.o"
  "CMakeFiles/test_system.dir/test_accounting.cc.o.d"
  "CMakeFiles/test_system.dir/test_channels.cc.o"
  "CMakeFiles/test_system.dir/test_channels.cc.o.d"
  "CMakeFiles/test_system.dir/test_energy.cc.o"
  "CMakeFiles/test_system.dir/test_energy.cc.o.d"
  "CMakeFiles/test_system.dir/test_properties.cc.o"
  "CMakeFiles/test_system.dir/test_properties.cc.o.d"
  "CMakeFiles/test_system.dir/test_sim_system.cc.o"
  "CMakeFiles/test_system.dir/test_sim_system.cc.o.d"
  "CMakeFiles/test_system.dir/test_sweep.cc.o"
  "CMakeFiles/test_system.dir/test_sweep.cc.o.d"
  "CMakeFiles/test_system.dir/test_trace.cc.o"
  "CMakeFiles/test_system.dir/test_trace.cc.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
