file(REMOVE_RECURSE
  "CMakeFiles/test_virt.dir/test_hypervisor.cc.o"
  "CMakeFiles/test_virt.dir/test_hypervisor.cc.o.d"
  "CMakeFiles/test_virt.dir/test_page_table.cc.o"
  "CMakeFiles/test_virt.dir/test_page_table.cc.o.d"
  "CMakeFiles/test_virt.dir/test_sched_sim.cc.o"
  "CMakeFiles/test_virt.dir/test_sched_sim.cc.o.d"
  "CMakeFiles/test_virt.dir/test_trace_migrator.cc.o"
  "CMakeFiles/test_virt.dir/test_trace_migrator.cc.o.d"
  "CMakeFiles/test_virt.dir/test_vcpu_map.cc.o"
  "CMakeFiles/test_virt.dir/test_vcpu_map.cc.o.d"
  "test_virt"
  "test_virt.pdb"
  "test_virt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
