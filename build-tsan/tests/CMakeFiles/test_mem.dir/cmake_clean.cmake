file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/test_addr.cc.o"
  "CMakeFiles/test_mem.dir/test_addr.cc.o.d"
  "CMakeFiles/test_mem.dir/test_cache.cc.o"
  "CMakeFiles/test_mem.dir/test_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/test_main_memory.cc.o"
  "CMakeFiles/test_mem.dir/test_main_memory.cc.o.d"
  "CMakeFiles/test_mem.dir/test_residence.cc.o"
  "CMakeFiles/test_mem.dir/test_residence.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
