file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_core_set.cc.o"
  "CMakeFiles/test_sim.dir/test_core_set.cc.o.d"
  "CMakeFiles/test_sim.dir/test_event_queue.cc.o"
  "CMakeFiles/test_sim.dir/test_event_queue.cc.o.d"
  "CMakeFiles/test_sim.dir/test_json.cc.o"
  "CMakeFiles/test_sim.dir/test_json.cc.o.d"
  "CMakeFiles/test_sim.dir/test_profiler.cc.o"
  "CMakeFiles/test_sim.dir/test_profiler.cc.o.d"
  "CMakeFiles/test_sim.dir/test_rng.cc.o"
  "CMakeFiles/test_sim.dir/test_rng.cc.o.d"
  "CMakeFiles/test_sim.dir/test_stats.cc.o"
  "CMakeFiles/test_sim.dir/test_stats.cc.o.d"
  "CMakeFiles/test_sim.dir/test_table.cc.o"
  "CMakeFiles/test_sim.dir/test_table.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
