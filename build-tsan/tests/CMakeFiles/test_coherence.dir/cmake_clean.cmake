file(REMOVE_RECURSE
  "CMakeFiles/test_coherence.dir/test_coherence_races.cc.o"
  "CMakeFiles/test_coherence.dir/test_coherence_races.cc.o.d"
  "CMakeFiles/test_coherence.dir/test_l1.cc.o"
  "CMakeFiles/test_coherence.dir/test_l1.cc.o.d"
  "CMakeFiles/test_coherence.dir/test_persistent_arbiter.cc.o"
  "CMakeFiles/test_coherence.dir/test_persistent_arbiter.cc.o.d"
  "CMakeFiles/test_coherence.dir/test_region_filter.cc.o"
  "CMakeFiles/test_coherence.dir/test_region_filter.cc.o.d"
  "CMakeFiles/test_coherence.dir/test_token_protocol.cc.o"
  "CMakeFiles/test_coherence.dir/test_token_protocol.cc.o.d"
  "test_coherence"
  "test_coherence.pdb"
  "test_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
