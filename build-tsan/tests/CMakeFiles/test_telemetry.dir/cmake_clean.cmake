file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry.dir/test_heartbeat.cc.o"
  "CMakeFiles/test_telemetry.dir/test_heartbeat.cc.o.d"
  "CMakeFiles/test_telemetry.dir/test_metrics.cc.o"
  "CMakeFiles/test_telemetry.dir/test_metrics.cc.o.d"
  "CMakeFiles/test_telemetry.dir/test_stats_server.cc.o"
  "CMakeFiles/test_telemetry.dir/test_stats_server.cc.o.d"
  "test_telemetry"
  "test_telemetry.pdb"
  "test_telemetry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
