
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_heartbeat.cc" "tests/CMakeFiles/test_telemetry.dir/test_heartbeat.cc.o" "gcc" "tests/CMakeFiles/test_telemetry.dir/test_heartbeat.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/test_telemetry.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/test_telemetry.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_stats_server.cc" "tests/CMakeFiles/test_telemetry.dir/test_stats_server.cc.o" "gcc" "tests/CMakeFiles/test_telemetry.dir/test_stats_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/system/CMakeFiles/vsnoop_system.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/vsnoop_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/vsnoop_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coherence/CMakeFiles/vsnoop_coherence.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/vsnoop_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/vsnoop_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/virt/CMakeFiles/vsnoop_virt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/vsnoop_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vsnoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
