# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mem[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_noc[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_virt[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_coherence[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_vsnoop[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workload[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_system[1]_include.cmake")
