file(REMOVE_RECURSE
  "libvsnoop_workload.a"
)
