# Empty dependencies file for vsnoop_workload.
# This may be replaced when dependencies are built.
