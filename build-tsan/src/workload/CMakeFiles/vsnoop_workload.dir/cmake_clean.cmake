file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_workload.dir/app_profile.cc.o"
  "CMakeFiles/vsnoop_workload.dir/app_profile.cc.o.d"
  "CMakeFiles/vsnoop_workload.dir/generator.cc.o"
  "CMakeFiles/vsnoop_workload.dir/generator.cc.o.d"
  "libvsnoop_workload.a"
  "libvsnoop_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
