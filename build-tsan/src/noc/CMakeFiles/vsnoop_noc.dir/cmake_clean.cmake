file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_noc.dir/mesh.cc.o"
  "CMakeFiles/vsnoop_noc.dir/mesh.cc.o.d"
  "libvsnoop_noc.a"
  "libvsnoop_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
