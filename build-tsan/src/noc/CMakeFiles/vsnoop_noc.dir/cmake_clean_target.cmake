file(REMOVE_RECURSE
  "libvsnoop_noc.a"
)
