# Empty dependencies file for vsnoop_noc.
# This may be replaced when dependencies are built.
