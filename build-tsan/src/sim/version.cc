// Configured by src/sim/CMakeLists.txt — do not edit the generated
// copy; change version.cc.in instead.

#include "sim/version.hh"

namespace vsnoop
{

const char *
toolVersion()
{
    return "0.4.0";
}

const char *
gitDescribe()
{
    return "fb0dd8d-dirty";
}

const char *
compilerId()
{
    return "GNU 12.2.0";
}

const char *
buildType()
{
    return "RelWithDebInfo";
}

} // namespace vsnoop
