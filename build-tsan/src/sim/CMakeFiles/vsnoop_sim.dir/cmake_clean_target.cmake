file(REMOVE_RECURSE
  "libvsnoop_sim.a"
)
