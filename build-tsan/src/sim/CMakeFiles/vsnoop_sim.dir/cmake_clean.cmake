file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_sim.dir/event_queue.cc.o"
  "CMakeFiles/vsnoop_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/json.cc.o"
  "CMakeFiles/vsnoop_sim.dir/json.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/logging.cc.o"
  "CMakeFiles/vsnoop_sim.dir/logging.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/metrics.cc.o"
  "CMakeFiles/vsnoop_sim.dir/metrics.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/profiler.cc.o"
  "CMakeFiles/vsnoop_sim.dir/profiler.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/rng.cc.o"
  "CMakeFiles/vsnoop_sim.dir/rng.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/stats.cc.o"
  "CMakeFiles/vsnoop_sim.dir/stats.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/stats_server.cc.o"
  "CMakeFiles/vsnoop_sim.dir/stats_server.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/table.cc.o"
  "CMakeFiles/vsnoop_sim.dir/table.cc.o.d"
  "CMakeFiles/vsnoop_sim.dir/version.cc.o"
  "CMakeFiles/vsnoop_sim.dir/version.cc.o.d"
  "libvsnoop_sim.a"
  "libvsnoop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
