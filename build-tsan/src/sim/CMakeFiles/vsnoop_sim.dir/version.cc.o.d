src/sim/CMakeFiles/vsnoop_sim.dir/version.cc.o: \
 /root/repo/build-tsan/src/sim/version.cc /usr/include/stdc-predef.h \
 /root/repo/src/sim/version.hh
