# Empty dependencies file for vsnoop_sim.
# This may be replaced when dependencies are built.
