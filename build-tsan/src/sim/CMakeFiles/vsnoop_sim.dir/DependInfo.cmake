
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/json.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/json.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/json.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/logging.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/logging.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/profiler.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/profiler.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/profiler.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/stats_server.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/stats_server.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/stats_server.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/table.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/table.cc.o.d"
  "/root/repo/build-tsan/src/sim/version.cc" "src/sim/CMakeFiles/vsnoop_sim.dir/version.cc.o" "gcc" "src/sim/CMakeFiles/vsnoop_sim.dir/version.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
