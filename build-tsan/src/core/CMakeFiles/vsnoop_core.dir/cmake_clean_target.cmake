file(REMOVE_RECURSE
  "libvsnoop_core.a"
)
