file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_core.dir/vsnoop.cc.o"
  "CMakeFiles/vsnoop_core.dir/vsnoop.cc.o.d"
  "libvsnoop_core.a"
  "libvsnoop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
