# Empty dependencies file for vsnoop_core.
# This may be replaced when dependencies are built.
