file(REMOVE_RECURSE
  "libvsnoop_trace.a"
)
