# Empty dependencies file for vsnoop_trace.
# This may be replaced when dependencies are built.
