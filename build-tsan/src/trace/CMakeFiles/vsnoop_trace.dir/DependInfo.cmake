
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chrome_trace.cc" "src/trace/CMakeFiles/vsnoop_trace.dir/chrome_trace.cc.o" "gcc" "src/trace/CMakeFiles/vsnoop_trace.dir/chrome_trace.cc.o.d"
  "/root/repo/src/trace/timeseries.cc" "src/trace/CMakeFiles/vsnoop_trace.dir/timeseries.cc.o" "gcc" "src/trace/CMakeFiles/vsnoop_trace.dir/timeseries.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/vsnoop_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/vsnoop_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mem/CMakeFiles/vsnoop_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/vsnoop_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vsnoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
