file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_trace.dir/chrome_trace.cc.o"
  "CMakeFiles/vsnoop_trace.dir/chrome_trace.cc.o.d"
  "CMakeFiles/vsnoop_trace.dir/timeseries.cc.o"
  "CMakeFiles/vsnoop_trace.dir/timeseries.cc.o.d"
  "CMakeFiles/vsnoop_trace.dir/trace.cc.o"
  "CMakeFiles/vsnoop_trace.dir/trace.cc.o.d"
  "libvsnoop_trace.a"
  "libvsnoop_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
