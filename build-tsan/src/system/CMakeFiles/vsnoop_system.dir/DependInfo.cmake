
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/system/driver.cc" "src/system/CMakeFiles/vsnoop_system.dir/driver.cc.o" "gcc" "src/system/CMakeFiles/vsnoop_system.dir/driver.cc.o.d"
  "/root/repo/src/system/energy.cc" "src/system/CMakeFiles/vsnoop_system.dir/energy.cc.o" "gcc" "src/system/CMakeFiles/vsnoop_system.dir/energy.cc.o.d"
  "/root/repo/src/system/heartbeat.cc" "src/system/CMakeFiles/vsnoop_system.dir/heartbeat.cc.o" "gcc" "src/system/CMakeFiles/vsnoop_system.dir/heartbeat.cc.o.d"
  "/root/repo/src/system/run_result.cc" "src/system/CMakeFiles/vsnoop_system.dir/run_result.cc.o" "gcc" "src/system/CMakeFiles/vsnoop_system.dir/run_result.cc.o.d"
  "/root/repo/src/system/sim_system.cc" "src/system/CMakeFiles/vsnoop_system.dir/sim_system.cc.o" "gcc" "src/system/CMakeFiles/vsnoop_system.dir/sim_system.cc.o.d"
  "/root/repo/src/system/sweep.cc" "src/system/CMakeFiles/vsnoop_system.dir/sweep.cc.o" "gcc" "src/system/CMakeFiles/vsnoop_system.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/vsnoop_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/vsnoop_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/coherence/CMakeFiles/vsnoop_coherence.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/vsnoop_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/noc/CMakeFiles/vsnoop_noc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/virt/CMakeFiles/vsnoop_virt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mem/CMakeFiles/vsnoop_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vsnoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
