file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_system.dir/driver.cc.o"
  "CMakeFiles/vsnoop_system.dir/driver.cc.o.d"
  "CMakeFiles/vsnoop_system.dir/energy.cc.o"
  "CMakeFiles/vsnoop_system.dir/energy.cc.o.d"
  "CMakeFiles/vsnoop_system.dir/heartbeat.cc.o"
  "CMakeFiles/vsnoop_system.dir/heartbeat.cc.o.d"
  "CMakeFiles/vsnoop_system.dir/run_result.cc.o"
  "CMakeFiles/vsnoop_system.dir/run_result.cc.o.d"
  "CMakeFiles/vsnoop_system.dir/sim_system.cc.o"
  "CMakeFiles/vsnoop_system.dir/sim_system.cc.o.d"
  "CMakeFiles/vsnoop_system.dir/sweep.cc.o"
  "CMakeFiles/vsnoop_system.dir/sweep.cc.o.d"
  "libvsnoop_system.a"
  "libvsnoop_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
