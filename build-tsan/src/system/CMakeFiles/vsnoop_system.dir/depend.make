# Empty dependencies file for vsnoop_system.
# This may be replaced when dependencies are built.
