file(REMOVE_RECURSE
  "libvsnoop_system.a"
)
