
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/hypervisor.cc" "src/virt/CMakeFiles/vsnoop_virt.dir/hypervisor.cc.o" "gcc" "src/virt/CMakeFiles/vsnoop_virt.dir/hypervisor.cc.o.d"
  "/root/repo/src/virt/page_table.cc" "src/virt/CMakeFiles/vsnoop_virt.dir/page_table.cc.o" "gcc" "src/virt/CMakeFiles/vsnoop_virt.dir/page_table.cc.o.d"
  "/root/repo/src/virt/sched_sim.cc" "src/virt/CMakeFiles/vsnoop_virt.dir/sched_sim.cc.o" "gcc" "src/virt/CMakeFiles/vsnoop_virt.dir/sched_sim.cc.o.d"
  "/root/repo/src/virt/vcpu_map.cc" "src/virt/CMakeFiles/vsnoop_virt.dir/vcpu_map.cc.o" "gcc" "src/virt/CMakeFiles/vsnoop_virt.dir/vcpu_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mem/CMakeFiles/vsnoop_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/vsnoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
