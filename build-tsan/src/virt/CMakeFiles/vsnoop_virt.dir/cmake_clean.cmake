file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_virt.dir/hypervisor.cc.o"
  "CMakeFiles/vsnoop_virt.dir/hypervisor.cc.o.d"
  "CMakeFiles/vsnoop_virt.dir/page_table.cc.o"
  "CMakeFiles/vsnoop_virt.dir/page_table.cc.o.d"
  "CMakeFiles/vsnoop_virt.dir/sched_sim.cc.o"
  "CMakeFiles/vsnoop_virt.dir/sched_sim.cc.o.d"
  "CMakeFiles/vsnoop_virt.dir/vcpu_map.cc.o"
  "CMakeFiles/vsnoop_virt.dir/vcpu_map.cc.o.d"
  "libvsnoop_virt.a"
  "libvsnoop_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
