file(REMOVE_RECURSE
  "libvsnoop_virt.a"
)
