# Empty dependencies file for vsnoop_virt.
# This may be replaced when dependencies are built.
