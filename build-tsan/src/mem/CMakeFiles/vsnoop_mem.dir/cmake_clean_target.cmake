file(REMOVE_RECURSE
  "libvsnoop_mem.a"
)
