file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_mem.dir/addr.cc.o"
  "CMakeFiles/vsnoop_mem.dir/addr.cc.o.d"
  "CMakeFiles/vsnoop_mem.dir/cache.cc.o"
  "CMakeFiles/vsnoop_mem.dir/cache.cc.o.d"
  "CMakeFiles/vsnoop_mem.dir/main_memory.cc.o"
  "CMakeFiles/vsnoop_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/vsnoop_mem.dir/residence.cc.o"
  "CMakeFiles/vsnoop_mem.dir/residence.cc.o.d"
  "libvsnoop_mem.a"
  "libvsnoop_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
