# Empty dependencies file for vsnoop_mem.
# This may be replaced when dependencies are built.
