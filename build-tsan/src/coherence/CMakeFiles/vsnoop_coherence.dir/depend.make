# Empty dependencies file for vsnoop_coherence.
# This may be replaced when dependencies are built.
