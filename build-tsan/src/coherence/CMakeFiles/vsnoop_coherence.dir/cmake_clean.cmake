file(REMOVE_RECURSE
  "CMakeFiles/vsnoop_coherence.dir/controller.cc.o"
  "CMakeFiles/vsnoop_coherence.dir/controller.cc.o.d"
  "CMakeFiles/vsnoop_coherence.dir/region_filter.cc.o"
  "CMakeFiles/vsnoop_coherence.dir/region_filter.cc.o.d"
  "CMakeFiles/vsnoop_coherence.dir/system.cc.o"
  "CMakeFiles/vsnoop_coherence.dir/system.cc.o.d"
  "libvsnoop_coherence.a"
  "libvsnoop_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsnoop_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
