file(REMOVE_RECURSE
  "libvsnoop_coherence.a"
)
