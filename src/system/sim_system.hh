/**
 * @file
 * Top-level system builder: wires cores, caches, the mesh, token
 * coherence, the hypervisor, workloads and the snoop policy into a
 * runnable simulation.
 *
 * The defaults reproduce the paper's configuration (Tables II/III):
 * 16 in-order cores with private 256 KB L2s over a 4x4 mesh, Token
 * Coherence, four VMs with four vCPUs each, the same application in
 * every VM.
 *
 * Concurrency contract — "one SimSystem per thread": a SimSystem
 * and every component it owns (event queue, caches, network,
 * policies, drivers, stats) are confined to the thread that built
 * it; none of them are internally synchronized.  Distinct
 * SimSystem instances share no mutable state — the only globals
 * they touch are the logging quiet flag (atomic, see
 * sim/logging.hh) and the const application catalogs
 * (thread-safe-initialized function statics) — so any number of
 * systems may be built and run concurrently on distinct threads.
 * The sweep runner (system/sweep.hh) relies on exactly this.
 */

#ifndef VSNOOP_SYSTEM_SIM_SYSTEM_HH_
#define VSNOOP_SYSTEM_SIM_SYSTEM_HH_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coherence/region_filter.hh"
#include "coherence/system.hh"
#include "core/vsnoop.hh"
#include "noc/mesh.hh"
#include "system/driver.hh"
#include "trace/critpath.hh"
#include "trace/pagemon.hh"
#include "trace/timeseries.hh"
#include "trace/trace.hh"
#include "virt/hypervisor.hh"
#include "virt/vcpu_map.hh"
#include "workload/app_profile.hh"
#include "workload/generator.hh"

namespace vsnoop
{

/** Which snoop destination-set policy to instantiate. */
enum class PolicyKind : std::uint8_t
{
    /** Broadcast TokenB baseline. */
    TokenB,
    /** Virtual snooping (the paper's proposal). */
    VirtualSnoop,
    /** Idealized region filter (RegionScout/CGCT upper bound). */
    IdealRegionFilter,
};

/**
 * Full-system configuration.
 */
struct SystemConfig
{
    std::uint32_t numVms = 4;
    std::uint32_t vcpusPerVm = 4;
    /** Mesh geometry; numCores = width * height. */
    MeshConfig mesh;
    /** Use an ideal crossbar instead of the mesh (ablation). */
    bool idealNetwork = false;
    Tick crossbarLatency = 8;
    ProtocolConfig protocol;
    CacheGeometry l2;
    PolicyKind policy = PolicyKind::VirtualSnoop;
    VsnoopConfig vsnoop;
    /** Region granularity for the ideal region filter. */
    std::uint64_t regionBytes = 1024;
    HypervisorConfig hypervisor;
    /** vCPU shuffle period in ticks; 0 pins VMs (no relocation). */
    Tick migrationPeriod = 0;
    /**
     * Optional credit-scheduler placement trace to replay instead
     * of random shuffles (overrides migrationPeriod and the default
     * one-to-one placement).  Record one with
     * SchedConfig::recordTrace.
     */
    std::shared_ptr<const std::vector<PlacementEvent>> placementTrace;
    /** Trace time scale: simulation ticks per trace millisecond. */
    double traceTicksPerMs = 20000.0;
    /** Accesses each vCPU performs in the measurement phase. */
    std::uint64_t accessesPerVcpu = 50000;
    /**
     * Warmup accesses per vCPU before statistics are reset; keeps
     * cold misses out of the measured miss mix (the paper's runs
     * are long enough that cold misses are negligible).
     */
    std::uint64_t warmupAccessesPerVcpu = 0;
    /** Run the ideal content scan before measurement. */
    bool contentScan = true;
    /** Re-run the content scan after this many ticks (0 = never);
     *  models the hypervisor's periodic hashing. */
    Tick contentScanPeriod = 0;
    /** Check token conservation every N dispatched events
     *  (0 = never); used by integration tests. */
    std::uint64_t invariantCheckPeriod = 0;
    /**
     * @{ Observability (src/trace).  captureTrace attaches an
     * in-memory TraceSink of up to traceLimit records; tracePath
     * additionally makes collectRun() export it as a Chrome trace
     * (and implies capture).  timeseriesInterval > 0 samples the
     * interval time series every N ticks into results.
     */
    bool captureTrace = false;
    std::size_t traceLimit = 1u << 20;
    std::string tracePath;
    Tick timeseriesInterval = 0;
    /** @} */
    /**
     * @{ Simulator-internals perfmon (sim/perfmon.hh).  perf
     * attaches counter blocks to the event queue, the protocol
     * FlatMaps and the mesh, and emits a results.perf block; off by
     * default so run JSON stays byte-identical.  Occupancy
     * histograms sample every perfSampleInterval ticks (or at
     * timeseriesInterval when a time series is also on, so the two
     * samplers share one event chain).
     */
    bool perf = false;
    Tick perfSampleInterval = 10000;
    /** @} */
    /**
     * @{ Page-level snoop forensics (trace/pagemon.hh).  pages
     * attaches a PageMon charging per-host-page attribution at the
     * snoopLookups sites and emits a results.pages block; off by
     * default so run JSON stays byte-identical.  pagesTop bounds the
     * heavy-hitter table.  watchPages promotes transactions touching
     * the listed host pages to full lifecycle tracing (implies a
     * trace sink, and filters transaction records to those pages).
     */
    bool pages = false;
    std::uint32_t pagesTop = 64;
    std::vector<std::uint64_t> watchPages;
    /** @} */
    std::uint64_t seed = 1;

    std::uint32_t numCores() const { return mesh.width * mesh.height; }
};

/**
 * Aggregated results of one run.
 */
struct SystemResults
{
    /** Tick at which the last vCPU finished its quota. */
    Tick runtime = 0;
    /** Coherence transactions (L2 misses + upgrades). */
    std::uint64_t transactions = 0;
    /** Snoop lookups induced (the Figures 7/8 metric). */
    std::uint64_t snoopLookups = 0;
    /** Total network traffic in byte-hops (the Table IV metric). */
    std::uint64_t trafficByteHops = 0;
    /** Transient retries and persistent escalations. */
    std::uint64_t retries = 0;
    std::uint64_t persistentRequests = 0;
    /** Evictions that wrote dirty data back to memory. */
    std::uint64_t dirtyWritebacks = 0;
    /** Completed-transaction data sources (all / RO-only). */
    std::uint64_t dataFrom[kNumDataSources] = {};
    std::uint64_t roDataFrom[kNumDataSources] = {};
    /** Accesses and misses by generated category (summed). */
    std::uint64_t accessesByCategory[kNumAccessCategories] = {};
    std::uint64_t missesByCategory[kNumAccessCategories] = {};
    std::uint64_t totalAccesses = 0;
    std::uint64_t totalMisses = 0;
    /** Mean transaction latency (ticks). */
    double meanMissLatency = 0.0;
    /** Mean RO-shared transaction latency (ticks). */
    double meanRoMissLatency = 0.0;
    /** @{ Log2-bucketed transaction-latency histograms (ticks). */
    LatencyHistogram latency;
    LatencyHistogram latencyByReason[kNumFilterReasons];
    LatencyHistogram latencyFirstTry;
    LatencyHistogram latencyRetried;
    /** @} */
    /** Per-link traffic (empty for the ideal crossbar). */
    std::vector<LinkStat> links;
    /** vCPU map maintenance (VirtualSnoop only). */
    std::uint64_t mapAdds = 0;
    std::uint64_t mapRemovals = 0;
    std::uint64_t migrations = 0;
    /** Interval time series (empty unless timeseriesInterval > 0). */
    TimeSeries series;
    /** @{ Critical-path attribution (always on; trace/critpath.hh):
     *  per-segment latency decomposition and the requester-VM x
     *  target-VM interference matrices. */
    CritPathSnapshot critpath;
    InterferenceSnapshot interference;
    /** @} */
    /** Simulator-internals counters (perf.enabled iff --perf). */
    PerfMon perf;
    /** Per-page attribution (pages.enabled iff --pages). */
    PagesSnapshot pages;
};

/**
 * One live-progress observation, reported from inside run().
 *
 * Samples are taken at the simulation loop's slice boundaries (and
 * once at start and end), so the callback sees monotonically
 * advancing ticks and counts.  Reporting only reads statistics —
 * it never touches the RNG or the event queue — so attaching a
 * callback cannot change simulation results.
 */
struct ProgressSample
{
    Tick tick = 0;
    /** Accesses completed across all vCPUs (warmup included). */
    std::uint64_t accessesIssued = 0;
    /** Total access quota across all vCPUs (warmup included). */
    std::uint64_t accessesTarget = 0;
    std::uint64_t transactions = 0;
    std::uint64_t snoopLookups = 0;
    /** @{ VirtualSnoop only; zero under other policies. */
    std::uint64_t filteredRequests = 0;
    std::uint64_t broadcastRequests = 0;
    /** @} */
    std::uint64_t trafficByteHops = 0;
    /** Events dispatched by the simulation kernel so far. */
    std::uint64_t eventsProcessed = 0;
    /** True for the final sample, after the drain. */
    bool finished = false;
};

/** Live-progress observer; invoked on the simulating thread. */
using ProgressFn = std::function<void(const ProgressSample &)>;

class StatSet;

/**
 * The assembled simulation.
 */
class SimSystem
{
  public:
    /**
     * Build a system running @p app in every VM (the paper's
     * methodology: N instances of the same application).
     */
    SimSystem(const SystemConfig &config, const AppProfile &app);

    /** Build a system with one profile per VM. */
    SimSystem(const SystemConfig &config,
              const std::vector<AppProfile> &apps);

    /** Run until every vCPU reaches its access quota. */
    void run();

    /** Collected results (valid after run()). */
    SystemResults results() const;

    /** @{ Component access for tests and detailed benches. */
    EventQueue &eventQueue() { return eq_; }
    CoherenceSystem &coherence() { return *coherence_; }
    Hypervisor &hypervisor() { return hypervisor_; }
    VcpuMapping &mapping() { return mapping_; }
    Network &network() { return *network_; }
    /** Null when the TokenB policy is active. */
    VirtualSnoopPolicy *vsnoopPolicy() { return vsnoopPolicy_; }
    /** Null unless captureTrace / tracePath requested a sink. */
    TraceSink *trace() { return trace_.get(); }
    const TraceSink *trace() const { return trace_.get(); }
    /** The always-attached critical-path accountant. */
    CritPathAccountant &critpath() { return *critpath_; }
    const CritPathAccountant &critpath() const { return *critpath_; }
    /** Null unless pages / watchPages requested a monitor. */
    PageMon *pagemon() { return pagemon_.get(); }
    const PageMon *pagemon() const { return pagemon_.get(); }
    /**
     * Attach a host self-profiler (sim/profiler.hh) before run().
     * The caller owns it and must keep it alive for the run; run()
     * brackets the simulation with begin()/end() and the
     * instrumented components charge their phases to it.
     */
    void setProfiler(HostProfiler *profiler);
    /**
     * Attach a live-progress observer before run(); invoked on the
     * simulating thread once at start, at every execution slice,
     * and once (with finished = true) after the drain.  Empty
     * detaches.  Observation is read-only, so results and run JSON
     * are byte-identical with or without a callback.
     */
    void setProgressCallback(ProgressFn fn) { progress_ = std::move(fn); }
    /**
     * Register the system's statistics (coherence counters and
     * latency distributions, policy filter counters, memory
     * activity) with a StatSet for uniform dumping or live metrics
     * export (StatSetExport).  The set borrows references; it must
     * not outlive this system.
     */
    void registerStats(StatSet &set) const;
    const SystemConfig &config() const { return config_; }
    VcpuDriver &driver(VCpuId vcpu) { return *drivers_.at(vcpu); }
    std::size_t numDrivers() const { return drivers_.size(); }
    /** @} */

  private:
    void build(const std::vector<AppProfile> &apps);

    /** Arm the next periodic content scan. */
    void scheduleContentScan();

    /** Zero every statistic at the warmup boundary. */
    void resetAllStats();

    /** Invoke the progress callback with a fresh sample. */
    void reportProgress(bool finished);

    SystemConfig config_;
    EventQueue eq_;
    std::unique_ptr<Network> network_;
    std::unique_ptr<SnoopTargetPolicy> policy_;
    VirtualSnoopPolicy *vsnoopPolicy_ = nullptr;
    std::unique_ptr<CoherenceSystem> coherence_;
    Hypervisor hypervisor_;
    VcpuMapping mapping_;
    std::vector<std::unique_ptr<VcpuDriver>> drivers_;
    std::unique_ptr<ShuffleMigrator> migrator_;
    std::unique_ptr<TraceMigrator> traceMigrator_;
    std::unique_ptr<TraceSink> trace_;
    std::unique_ptr<CritPathAccountant> critpath_;
    std::unique_ptr<PageMon> pagemon_;
    std::unique_ptr<IntervalSampler> sampler_;
    std::unique_ptr<PerfMon> perfmon_;
    /** The mesh when !idealNetwork (perf hooks); else nullptr. */
    Mesh *mesh_ = nullptr;
    HostProfiler *profiler_ = nullptr;
    ProgressFn progress_;
    /** Stops auxiliary event chains (periodic scans) at run end. */
    bool stopAux_ = false;
    /** Tick at which warmup ended and measurement began. */
    Tick warmupEnd_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_SYSTEM_SIM_SYSTEM_HH_
