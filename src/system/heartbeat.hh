/**
 * @file
 * Sweep heartbeat: shared live-progress state for a set of runs.
 *
 * A running sweep is a pool of worker threads, each executing one
 * SimSystem at a time.  The heartbeat gives every run a lock-free
 * progress cell (RunProgress, all relaxed atomics) that its worker
 * updates from the SimSystem progress callback; monitor threads —
 * the stats server's handlers, the stderr heartbeat printer, the
 * watchdog — read the cells without ever blocking a worker.
 * Nothing here feeds back into simulation state, so run JSON stays
 * byte-identical whether or not anyone is watching.
 *
 * On top of the cells the heartbeat derives the sweep-level view:
 * runs completed / running, throughput, ETA, and the
 * no-forward-progress watchdog (a run is stalled when it is
 * Running but its cell has not advanced for stallMs of wall time —
 * a deadlocked worker, a pathological configuration, or a starved
 * host).  The same view renders three ways: Prometheus series
 * (registerMetrics()/publishMetrics() onto sim/metrics.hh), the
 * /progress and /runs JSON endpoints, and one-line stderr
 * summaries.
 */

#ifndef VSNOOP_SYSTEM_HEARTBEAT_HH_
#define VSNOOP_SYSTEM_HEARTBEAT_HH_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "system/sweep.hh"

namespace vsnoop
{

class StatsServer;

/** Wall-clock milliseconds on the monotonic steady clock. */
std::uint64_t steadyNowMs();

/** Lifecycle of one run inside a sweep. */
enum class RunState : std::uint8_t
{
    Pending,
    Running,
    Done,
};

/** Token for a RunState ("pending", "running", "done"). */
const char *runStateName(RunState state);

/**
 * One run's live-progress cell.  The owning worker writes (start /
 * update / finish); any thread may read.  All fields are relaxed
 * atomics: readers want a recent view, not a synchronized one, and
 * the seqlock'd metrics snapshot provides cross-metric consistency
 * where it matters.
 */
class RunProgress
{
  public:
    RunProgress() = default;

    /** @{ Worker side. */
    void start(std::uint64_t nowMs);
    void update(const ProgressSample &sample, std::uint64_t nowMs);
    void finish(std::uint64_t nowMs);
    /** @} */

    /** @{ Reader side (relaxed loads). */
    RunState state() const;
    std::uint64_t tick() const { return load(tick_); }
    std::uint64_t accessesIssued() const { return load(issued_); }
    std::uint64_t accessesTarget() const { return load(target_); }
    std::uint64_t transactions() const { return load(transactions_); }
    std::uint64_t snoopLookups() const { return load(snoopLookups_); }
    std::uint64_t filteredRequests() const { return load(filtered_); }
    std::uint64_t broadcastRequests() const { return load(broadcast_); }
    std::uint64_t trafficByteHops() const { return load(byteHops_); }
    std::uint64_t eventsProcessed() const { return load(events_); }
    std::uint64_t startedMs() const { return load(startedMs_); }
    std::uint64_t finishedMs() const { return load(finishedMs_); }
    std::uint64_t lastUpdateMs() const { return load(lastUpdateMs_); }

    /** Completed / target accesses in [0, 1]. */
    double progressRatio() const;

    /** Filtered / (filtered + broadcast) requests; 0 when neither. */
    double filterRate() const;

    /**
     * True when the run is Running but its cell has not been
     * written for more than @p stallMs of wall time.
     */
    bool stalled(std::uint64_t nowMs, std::uint64_t stallMs) const;
    /** @} */

    /** Pre-set the access target so pending runs render totals. */
    void presetTarget(std::uint64_t target);

  private:
    static std::uint64_t load(const std::atomic<std::uint64_t> &v)
    {
        return v.load(std::memory_order_relaxed);
    }

    std::atomic<std::uint8_t> state_{
        static_cast<std::uint8_t>(RunState::Pending)};
    std::atomic<std::uint64_t> tick_{0};
    std::atomic<std::uint64_t> issued_{0};
    std::atomic<std::uint64_t> target_{0};
    std::atomic<std::uint64_t> transactions_{0};
    std::atomic<std::uint64_t> snoopLookups_{0};
    std::atomic<std::uint64_t> filtered_{0};
    std::atomic<std::uint64_t> broadcast_{0};
    std::atomic<std::uint64_t> byteHops_{0};
    std::atomic<std::uint64_t> events_{0};
    std::atomic<std::uint64_t> startedMs_{0};
    std::atomic<std::uint64_t> finishedMs_{0};
    std::atomic<std::uint64_t> lastUpdateMs_{0};
};

/**
 * Live-progress state for one sweep (or a single run: a one-point
 * matrix).  Constructed before workers launch; cells and identity
 * strings are immutable in count and layout afterwards, so readers
 * index freely.
 */
class SweepHeartbeat
{
  public:
    /** Identity of one run, precomputed for labels and JSON. */
    struct RunInfo
    {
        std::string app;
        std::string policy;
        std::string relocation;
        std::string roPolicy;
        std::uint64_t seed = 1;
        /** "app/policy/relocation/ro/s<seed>" display label. */
        std::string label;
    };

    /** One cell per point of the expanded matrix. */
    explicit SweepHeartbeat(const SweepMatrix &matrix);

    std::size_t runCount() const { return runs_.size(); }
    RunProgress &run(std::size_t i) { return runs_.at(i); }
    const RunProgress &run(std::size_t i) const { return runs_.at(i); }
    const RunInfo &info(std::size_t i) const { return info_.at(i); }

    /** Stamp the sweep launch time (throughput / ETA baseline). */
    void markLaunched(std::uint64_t nowMs);
    std::uint64_t launchedMs() const
    {
        return launchedMs_.load(std::memory_order_relaxed);
    }

    /** Flag the sweep as interrupted (SIGINT/SIGTERM observed). */
    void markInterrupted();
    bool interrupted() const
    {
        return interrupted_.load(std::memory_order_relaxed);
    }

    /** @{ Sweep-level aggregates (reader side). */
    std::size_t runsDone() const;
    std::size_t runsRunning() const;
    double runsPerSecond(std::uint64_t nowMs) const;
    /** Seconds to finish at the current rate; 0 while unknowable. */
    double etaSeconds(std::uint64_t nowMs) const;
    /** Indices of runs failing the no-forward-progress watchdog. */
    std::vector<std::size_t> stalledRuns(std::uint64_t nowMs,
                                         std::uint64_t stallMs) const;
    /** @} */

    /**
     * Register the sweep's Prometheus series (sweep aggregates
     * plus per-run series labeled {run, app, policy, relocation,
     * ro_policy, seed}).  Call once, before registry.freeze().
     */
    void registerMetrics(MetricsRegistry &registry);

    /**
     * Stage current values into the registry and publish a
     * snapshot.  Must be called from the registry's single
     * publisher thread; requires a prior registerMetrics().
     */
    void publishMetrics(MetricsRegistry &registry, std::uint64_t nowMs,
                        std::uint64_t stallMs) const;

    /** The /progress endpoint body (sweep-level view + watchdog). */
    std::string progressJson(std::uint64_t nowMs,
                             std::uint64_t stallMs) const;

    /** The /runs endpoint body (per-run state array). */
    std::string runsJson(std::uint64_t nowMs,
                         std::uint64_t stallMs) const;

    /** One-line stderr heartbeat summary (no trailing newline). */
    std::string heartbeatLine(std::uint64_t nowMs) const;

  private:
    std::vector<RunProgress> runs_;
    std::vector<RunInfo> info_;
    std::atomic<std::uint64_t> launchedMs_{0};
    std::atomic<bool> interrupted_{false};

    /** @{ Registry ids (valid after registerMetrics()). */
    struct SweepIds
    {
        MetricsRegistry::Id runsTotal = 0;
        MetricsRegistry::Id runsCompleted = 0;
        MetricsRegistry::Id runsRunning = 0;
        MetricsRegistry::Id runsPerSecond = 0;
        MetricsRegistry::Id etaSeconds = 0;
        MetricsRegistry::Id elapsedSeconds = 0;
        MetricsRegistry::Id stalledRuns = 0;
        MetricsRegistry::Id interrupted = 0;
        MetricsRegistry::Id eventsTotal = 0;
        MetricsRegistry::Id simTicksTotal = 0;
    };
    struct RunIds
    {
        MetricsRegistry::Id state = 0;
        MetricsRegistry::Id progressRatio = 0;
        MetricsRegistry::Id accesses = 0;
        MetricsRegistry::Id transactions = 0;
        MetricsRegistry::Id snoopLookups = 0;
        MetricsRegistry::Id filterRate = 0;
        MetricsRegistry::Id byteHops = 0;
        MetricsRegistry::Id tick = 0;
        MetricsRegistry::Id events = 0;
    };
    SweepIds sweepIds_;
    std::vector<RunIds> runIds_;
    bool metricsRegistered_ = false;
    /** @} */
};

/**
 * Wire the standard telemetry routes onto a stats server:
 *   /metrics  — Prometheus exposition of @p registry's snapshot
 *   /progress — heartbeat.progressJson()
 *   /runs     — heartbeat.runsJson()
 *   /         — a plain-text endpoint index
 * The handlers capture references: both objects must outlive the
 * server's serving window (stop the server first).
 */
void registerTelemetryRoutes(StatsServer &server,
                             const MetricsRegistry &registry,
                             const SweepHeartbeat &heartbeat,
                             std::uint64_t stallMs);

} // namespace vsnoop

#endif // VSNOOP_SYSTEM_HEARTBEAT_HH_
