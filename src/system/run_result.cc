#include "system/run_result.hh"

#include <algorithm>
#include <fstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/version.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"

namespace vsnoop
{

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::TokenB: return "tokenb";
      case PolicyKind::VirtualSnoop: return "vsnoop";
      case PolicyKind::IdealRegionFilter: return "region";
    }
    vsnoop_panic("unknown PolicyKind ", static_cast<int>(kind));
}

const char *
relocationModeToken(RelocationMode mode)
{
    switch (mode) {
      case RelocationMode::Base: return "base";
      case RelocationMode::Counter: return "counter";
      case RelocationMode::CounterThreshold: return "counter-threshold";
      case RelocationMode::CounterFlush: return "counter-flush";
    }
    vsnoop_panic("unknown RelocationMode ", static_cast<int>(mode));
}

const char *
roPolicyToken(RoPolicy policy)
{
    switch (policy) {
      case RoPolicy::Broadcast: return "broadcast";
      case RoPolicy::MemoryDirect: return "memory-direct";
      case RoPolicy::IntraVm: return "intra-vm";
      case RoPolicy::FriendVm: return "friend-vm";
    }
    vsnoop_panic("unknown RoPolicy ", static_cast<int>(policy));
}

void
writeBuildMeta(JsonWriter &json)
{
    json.key("meta").beginObject();
    json.key("tool").value("vsnoop");
    json.key("version").value(toolVersion());
    json.key("git").value(gitDescribe());
    json.key("compiler").value(compilerId());
    json.key("build_type").value(buildType());
    json.endObject();
}

void
RunResult::writeJson(JsonWriter &json) const
{
    json.beginObject();
    writeBuildMeta(json);
    json.key("app").value(app);
    json.key("policy").value(policyKindName(config.policy));
    json.key("relocation")
        .value(relocationModeToken(config.vsnoop.relocation));
    json.key("ro_policy").value(roPolicyToken(config.vsnoop.roPolicy));
    json.key("seed").value(config.seed);

    json.key("config").beginObject();
    json.key("mesh_width").value(config.mesh.width);
    json.key("mesh_height").value(config.mesh.height);
    json.key("ideal_network").value(config.idealNetwork);
    json.key("vms").value(config.numVms);
    json.key("vcpus_per_vm").value(config.vcpusPerVm);
    json.key("l2_bytes").value(config.l2.sizeBytes);
    json.key("l1_bytes").value(config.l2.l1SizeBytes);
    json.key("accesses_per_vcpu").value(config.accessesPerVcpu);
    json.key("warmup_accesses_per_vcpu")
        .value(config.warmupAccessesPerVcpu);
    json.key("migration_period").value(config.migrationPeriod);
    json.key("counter_threshold").value(config.vsnoop.counterThreshold);
    json.key("region_bytes").value(config.regionBytes);
    // The rest of the resolved configuration, so archived records
    // are reproducible without consulting source defaults.
    json.key("crossbar_latency").value(config.crossbarLatency);
    json.key("link_bytes").value(config.mesh.linkBytes);
    json.key("router_pipeline").value(config.mesh.routerPipeline);
    json.key("link_latency").value(config.mesh.linkLatency);
    json.key("l1_latency").value(config.protocol.l1Latency);
    json.key("l2_latency").value(config.protocol.l2Latency);
    json.key("mem_latency").value(config.protocol.memLatency);
    json.key("retry_window").value(config.protocol.retryWindow);
    json.key("max_transient_attempts")
        .value(config.protocol.maxTransientAttempts);
    json.key("persistent_window").value(config.protocol.persistentWindow);
    json.key("broadcast_attempt").value(config.vsnoop.broadcastAttempt);
    json.key("map_sync_bytes").value(config.vsnoop.mapSyncBytes);
    json.key("ro_token_bundle").value(config.vsnoop.roTokenBundle);
    json.key("content_scan").value(config.contentScan);
    json.key("content_scan_period").value(config.contentScanPeriod);
    json.key("timeseries_interval").value(config.timeseriesInterval);
    json.key("tag_lookup_cycles").value(config.protocol.tagLookupCycles);
    // Emitted only when on, so perf-off records keep their exact
    // historical bytes (the sweep byte-identity contract).
    if (config.perf) {
        json.key("perf").value(true);
        json.key("perf_sample_interval").value(config.perfSampleInterval);
    }
    if (config.pages) {
        json.key("pages").value(true);
        json.key("pages_top").value(config.pagesTop);
    }
    if (!config.watchPages.empty()) {
        json.key("watch_pages").beginArray();
        for (std::uint64_t page : config.watchPages)
            json.value(page);
        json.endArray();
    }
    json.endObject();

    const SystemResults &r = results;
    json.key("results").beginObject();
    json.key("runtime").value(r.runtime);
    json.key("accesses").value(r.totalAccesses);
    json.key("misses").value(r.totalMisses);
    json.key("transactions").value(r.transactions);
    json.key("snoop_lookups").value(r.snoopLookups);
    json.key("snoops_per_transaction")
        .value(static_cast<double>(r.snoopLookups) /
               static_cast<double>(
                   std::max<std::uint64_t>(1, r.transactions)));
    json.key("traffic_byte_hops").value(r.trafficByteHops);
    json.key("mean_miss_latency").value(r.meanMissLatency);
    json.key("mean_ro_miss_latency").value(r.meanRoMissLatency);
    json.key("retries").value(r.retries);
    json.key("persistent_requests").value(r.persistentRequests);
    json.key("dirty_writebacks").value(r.dirtyWritebacks);
    json.key("migrations").value(r.migrations);
    json.key("map_adds").value(r.mapAdds);
    json.key("map_removals").value(r.mapRemovals);
    json.key("data_from").beginObject();
    for (std::size_t i = 0; i < kNumDataSources; ++i)
        json.key(dataSourceName(static_cast<DataSource>(i)))
            .value(r.dataFrom[i]);
    json.endObject();
    json.key("ro_data_from").beginObject();
    for (std::size_t i = 0; i < kNumDataSources; ++i)
        json.key(dataSourceName(static_cast<DataSource>(i)))
            .value(r.roDataFrom[i]);
    json.endObject();
    json.key("accesses_by_category").beginObject();
    for (std::size_t c = 0; c < kNumAccessCategories; ++c)
        json.key(accessCategoryName(static_cast<AccessCategory>(c)))
            .value(r.accessesByCategory[c]);
    json.endObject();
    json.key("misses_by_category").beginObject();
    for (std::size_t c = 0; c < kNumAccessCategories; ++c)
        json.key(accessCategoryName(static_cast<AccessCategory>(c)))
            .value(r.missesByCategory[c]);
    json.endObject();
    json.key("latency").beginObject();
    json.key("all");
    r.latency.writeJson(json);
    json.key("first_try");
    r.latencyFirstTry.writeJson(json);
    json.key("retried");
    r.latencyRetried.writeJson(json);
    json.key("by_reason").beginObject();
    for (std::size_t i = 0; i < kNumFilterReasons; ++i) {
        json.key(filterReasonName(static_cast<FilterReason>(i)));
        r.latencyByReason[i].writeJson(json);
    }
    json.endObject();
    json.endObject();
    if (r.critpath.enabled) {
        const CritPathSnapshot &cp = r.critpath;
        json.key("critpath").beginObject();
        json.key("segments").beginObject();
        for (std::size_t s = 0; s < kNumCritSegments; ++s) {
            json.key(critSegmentName(static_cast<CritSegment>(s)));
            cp.segments[s].writeJson(json);
        }
        json.endObject();
        // Per-reason and per-VM splits stay compact: the count is
        // the group's transactions, seg_sums its total ticks per
        // segment (mean = sum / count).
        json.key("by_reason").beginObject();
        for (std::size_t i = 0; i < kNumFilterReasons; ++i) {
            json.key(filterReasonName(static_cast<FilterReason>(i)))
                .beginObject();
            json.key("count").value(cp.byReason[0][i].count);
            json.key("seg_sums").beginObject();
            for (std::size_t s = 0; s < kNumCritSegments; ++s)
                json.key(critSegmentName(static_cast<CritSegment>(s)))
                    .value(cp.byReason[s][i].sum);
            json.endObject();
            json.endObject();
        }
        json.endObject();
        json.key("by_vm").beginObject();
        for (std::uint32_t row = 0; row < cp.vmRows; ++row) {
            json.key(vmRowLabel(row, cp.vmRows)).beginObject();
            json.key("count").value(cp.vmCell(0, row).count);
            json.key("seg_sums").beginObject();
            for (std::size_t s = 0; s < kNumCritSegments; ++s)
                json.key(critSegmentName(static_cast<CritSegment>(s)))
                    .value(cp.vmCell(s, row).sum);
            json.endObject();
            json.endObject();
        }
        json.endObject();
        json.key("noc_wait_cycles").beginObject();
        for (std::size_t c = 0; c < kNumMsgClasses; ++c)
            json.key(msgClassName(static_cast<MsgClass>(c)))
                .value(cp.nocWaitCycles[c]);
        json.endObject();
        json.endObject();
    }
    if (r.interference.enabled) {
        const InterferenceSnapshot &in = r.interference;
        auto matrix = [&](const char *name,
                          const std::vector<std::uint64_t> &m) {
            json.key(name).beginArray();
            for (std::uint32_t row = 0; row < in.dim; ++row) {
                json.beginArray();
                for (std::uint32_t col = 0; col < in.dim; ++col)
                    json.value(in.at(m, row, col));
                json.endArray();
            }
            json.endArray();
        };
        json.key("interference").beginObject();
        json.key("rows").beginArray();
        for (std::uint32_t row = 0; row < in.dim; ++row)
            json.value(vmRowLabel(row, in.dim));
        json.endArray();
        matrix("snoop_lookups", in.snoopLookups);
        matrix("tag_busy_cycles", in.tagBusyCycles);
        matrix("bytes_delivered", in.bytesDelivered);
        json.key("offdiag_snoop_share").value(in.offDiagLookupShare());
        json.endObject();
    }
    if (!r.links.empty()) {
        json.key("links").beginArray();
        for (const LinkStat &link : r.links) {
            json.beginObject();
            json.key("from").value(link.from);
            json.key("to").value(link.to);
            json.key("byte_hops").beginObject();
            for (std::size_t c = 0; c < kNumMsgClasses; ++c)
                json.key(msgClassName(static_cast<MsgClass>(c)))
                    .value(link.byteHops[c]);
            json.endObject();
            json.key("busy_cycles").value(link.busyCycles);
            json.key("wait_cycles").value(link.waitCycles);
            json.endObject();
        }
        json.endArray();
    }
    if (r.perf.enabled) {
        json.key("perf");
        r.perf.writeJson(json);
    }
    if (r.pages.enabled) {
        const PagesSnapshot &pg = r.pages;
        json.key("pages").beginObject();
        json.key("top_k").value(pg.topK);
        json.key("tracked").value(pg.cells.size());
        json.key("total_lookups").value(pg.totalLookups);
        json.key("truncated_lookups").value(pg.truncatedLookups);
        json.key("truncated_pages").value(pg.truncatedPages);
        json.key("census").beginObject();
        for (std::size_t t = 0; t < kNumPageTypes; ++t)
            json.key(pageTypeName(static_cast<PageType>(t)))
                .value(pg.censusByType[t]);
        json.endObject();
        json.key("transitions").beginObject();
        json.key("maps").value(pg.mapEvents);
        json.key("unmaps").value(pg.unmapEvents);
        json.key("type_changes").value(pg.typeChanges);
        json.key("cow_breaks").value(pg.cowBreaks);
        json.key("remaps").value(pg.remaps);
        json.endObject();
        // Cells arrive pre-sorted (lookups desc, page asc) from
        // PageMon::snapshot(), so this array is byte-identical
        // across --jobs values.
        json.key("top").beginArray();
        for (const PageCell &cell : pg.cells) {
            json.beginObject();
            json.key("page").value(cell.pageNum);
            json.key("lookups").value(cell.lookups);
            json.key("misses").value(cell.misses);
            json.key("cross_vm").value(cell.crossVm);
            json.key("filtered").value(cell.filtered);
            json.key("broadcast").value(cell.broadcast);
            json.key("sharers").value(cell.sharerMask);
            json.key("type").value(pageTypeName(cell.lastType));
            json.key("by_reason").beginObject();
            for (std::size_t i = 0; i < kNumFilterReasons; ++i)
                json.key(filterReasonName(static_cast<FilterReason>(i)))
                    .value(cell.byReason[i]);
            json.endObject();
            json.key("by_vm").beginObject();
            for (std::uint32_t row = 0; row < pg.vmRows; ++row)
                json.key(vmRowLabel(row, pg.vmRows))
                    .value(cell.byVm[row]);
            json.endObject();
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();

    if (r.series.enabled()) {
        json.key("timeseries");
        r.series.writeJson(json);
    }

    json.key("memory").beginObject();
    json.key("reads").value(memoryReads);
    json.key("writebacks").value(memoryWritebacks);
    json.endObject();

    json.key("energy").beginObject();
    json.key("snoop_tag_pj").value(energy.snoopTagPj);
    json.key("network_pj").value(energy.networkPj);
    json.key("dram_pj").value(energy.dramPj);
    json.key("l2_data_pj").value(energy.l2DataPj);
    json.key("total_pj").value(energy.totalPj());
    json.endObject();

    if (traceAttached) {
        json.key("trace").beginObject();
        json.key("records_recorded").value(traceRecordsRecorded);
        json.key("records_dropped").value(traceRecordsDropped);
        json.endObject();
    }

    json.endObject();
}

std::string
RunResult::toJson() const
{
    JsonWriter json;
    writeJson(json);
    return json.str();
}

RunResult
collectResults(SimSystem &system, const std::string &appName)
{
    const SystemConfig &config = system.config();
    RunResult out;
    out.app = appName;
    out.config = config;
    out.results = system.results();
    if (const TraceSink *sink = system.trace()) {
        out.traceAttached = true;
        out.traceRecordsRecorded = sink->recorded();
        out.traceRecordsDropped = sink->dropped();
    }
    const MainMemory &memory = system.coherence().memory();
    out.memoryReads = memory.reads.value();
    out.memoryWritebacks = memory.writebacks.value();
    out.energy = computeEnergy(out.results, out.memoryReads,
                               out.memoryWritebacks);

    if (!config.tracePath.empty()) {
        const TraceSink *sink = system.trace();
        vsnoop_assert(sink != nullptr,
                      "tracePath set but no sink was attached");
        std::ofstream os(config.tracePath);
        if (!os) {
            vsnoop_fatal("cannot open trace file ", config.tracePath);
        }
        ChromeTraceMeta meta;
        meta.numCores = config.numCores();
        meta.numVms = config.numVms;
        writeChromeTrace(os, *sink,
                         out.results.series.enabled()
                             ? &out.results.series
                             : nullptr,
                         meta);
    }
    return out;
}

RunResult
collectRun(const SystemConfig &config, const AppProfile &app,
           HostProfiler *profiler, ProgressFn progress)
{
    SimSystem system(config, app);
    if (profiler != nullptr)
        system.setProfiler(profiler);
    if (progress)
        system.setProgressCallback(std::move(progress));
    system.run();
    return collectResults(system, app.name);
}

} // namespace vsnoop
