/**
 * @file
 * The in-order core driver: issues one vCPU's access stream into
 * the coherence system.
 *
 * Each vCPU is an event chain: generate an access, issue it from
 * whatever physical core the vCPU currently occupies, block until
 * the access completes (in-order, blocking cores as in Table II),
 * then continue after the generated think gap.  Migration changes
 * the issuing core between accesses, exactly like a vCPU being
 * rescheduled.
 */

#ifndef VSNOOP_SYSTEM_DRIVER_HH_
#define VSNOOP_SYSTEM_DRIVER_HH_

#include <functional>

#include "coherence/system.hh"
#include "sim/event_queue.hh"
#include "virt/vcpu_map.hh"
#include "workload/generator.hh"

namespace vsnoop
{

/**
 * Drives one vCPU's workload to a fixed access quota.
 */
class VcpuDriver : public Event
{
  public:
    /**
     * @param eq Event queue.
     * @param system Coherence system to issue into.
     * @param mapping vCPU placement (queried on every access).
     * @param vcpu This driver's vCPU id.
     * @param workload Access generator (moved in).
     * @param quota Number of accesses to perform.
     * @param warmup Accesses after which this driver zeroes its own
     *        statistics (so per-driver counters cover exactly the
     *        measurement phase).
     */
    VcpuDriver(EventQueue &eq, CoherenceSystem &system,
               VcpuMapping &mapping, VCpuId vcpu, VcpuWorkload workload,
               std::uint64_t quota, std::uint64_t warmup = 0);

    /** Schedule the first access. */
    void start();

    /** True once the quota has been reached. */
    bool done() const { return issued_ >= quota_; }

    /** Tick at which the quota was reached (kMaxTick if running). */
    Tick finishedAt() const { return finishedAt_; }

    /** Accesses completed so far. */
    std::uint64_t issued() const { return issued_; }

    VcpuWorkload &workload() { return workload_; }
    const VcpuWorkload &workload() const { return workload_; }

    void process() override;

    /** Zero the driver's and its workload's statistics. */
    void resetStats();

    /**
     * Attach a host self-profiler; workload generation is charged
     * to the Generate phase.  Null detaches (the default).
     */
    void setProfiler(HostProfiler *profiler) { profiler_ = profiler; }

    /** @{ Completion statistics. */
    /** L2 misses by generated access category (Fig 1, Table V). */
    Counter missesByCategory[kNumAccessCategories];
    Counter totalMisses;
    /** Sum of per-access completion latencies (ticks). */
    Counter latencySum;
    /** @} */

  private:
    EventQueue &eq_;
    CoherenceSystem &system_;
    VcpuMapping &mapping_;
    VCpuId vcpu_;
    VcpuWorkload workload_;
    std::uint64_t quota_;
    std::uint64_t warmup_;
    std::uint64_t issued_ = 0;
    Tick finishedAt_ = kMaxTick;
    HostProfiler *profiler_ = nullptr;
};

} // namespace vsnoop

#endif // VSNOOP_SYSTEM_DRIVER_HH_
