#include "system/energy.hh"

namespace vsnoop
{

EnergyBreakdown
computeEnergy(const SystemResults &results, std::uint64_t memory_reads,
              std::uint64_t memory_writebacks, const EnergyParams &params)
{
    EnergyBreakdown e;
    // Every snoop lookup is one remote (or local) tag-array probe.
    e.snoopTagPj =
        static_cast<double>(results.snoopLookups) * params.tagLookupPj;
    // Byte-hops are already link-occupancy (flits * width * hops).
    e.networkPj = static_cast<double>(results.trafficByteHops) /
                  params.linkBytes * params.flitHopPj;
    e.dramPj = static_cast<double>(memory_reads + memory_writebacks) *
               params.dramAccessPj;
    // Cache data-array activity: every access either hits a local
    // data array (L1 or L2) or triggers a fill; both are charged
    // the same per-event constant.  (When L1s are modelled, their
    // cheaper arrays are conservatively charged at the L2 rate.)
    e.l2DataPj = static_cast<double>(results.totalAccesses -
                                     results.totalMisses +
                                     results.transactions) *
                 params.l2DataPj;
    return e;
}

EnergyBreakdown
computeEnergy(SimSystem &system, const EnergyParams &params)
{
    const MainMemory &memory = system.coherence().memory();
    return computeEnergy(system.results(), memory.reads.value(),
                         memory.writebacks.value(), params);
}

} // namespace vsnoop
