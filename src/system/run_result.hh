/**
 * @file
 * Machine-readable results for one simulation run.
 *
 * RunResult bundles everything a finished SimSystem can report —
 * coherence, network, policy, memory, and energy statistics plus
 * the identifying configuration — and serializes it as one JSON
 * object (one line per run in sweep output), so benches and
 * external tooling consume structured data instead of scraping
 * text tables.
 *
 * The encoding is deterministic (see sim/json.hh): two runs with
 * identical configurations and seeds serialize to identical bytes
 * regardless of which thread executed them.
 */

#ifndef VSNOOP_SYSTEM_RUN_RESULT_HH_
#define VSNOOP_SYSTEM_RUN_RESULT_HH_

#include <string>

#include "system/energy.hh"
#include "system/sim_system.hh"

namespace vsnoop
{

class JsonWriter;

/** Human-readable name of a PolicyKind ("tokenb", "vsnoop", ...). */
const char *policyKindName(PolicyKind kind);

/**
 * @{ Machine tokens for the JSON schema: identical to the CLI flag
 * values ("base", "counter-threshold", "intra-vm", ...), unlike
 * the mixed-case display names in core/vsnoop.hh, so sweep output
 * round-trips into sweep flags.
 */
const char *relocationModeToken(RelocationMode mode);
const char *roPolicyToken(RoPolicy policy);
/** @} */

/**
 * One run's complete, self-describing result record.
 */
struct RunResult
{
    /** Application profile name. */
    std::string app;
    /** The configuration the run executed. */
    SystemConfig config;
    /** Aggregated simulation results. */
    SystemResults results;
    /** DRAM activity (for the energy model and Table IV). */
    std::uint64_t memoryReads = 0;
    std::uint64_t memoryWritebacks = 0;
    /** Energy estimate derived from the counts above. */
    EnergyBreakdown energy;
    /** @{ Trace-sink accounting (valid when a sink was attached). */
    bool traceAttached = false;
    std::uint64_t traceRecordsRecorded = 0;
    std::uint64_t traceRecordsDropped = 0;
    /** @} */

    /** Serialize as a single JSON object (no trailing newline). */
    std::string toJson() const;

    /** Append this record to an open JsonWriter. */
    void writeJson(JsonWriter &json) const;
};

/**
 * Append the build-provenance meta block ({tool, version, git,
 * compiler, build_type}; see sim/version.hh) as the member "meta"
 * of the currently open object.  Shared between every run record
 * and the sweep interruption summary so archived JSON files are
 * self-describing.
 */
void writeBuildMeta(JsonWriter &json);

/**
 * Assemble a RunResult from an already-run system (and export the
 * Chrome trace when the config set a tracePath).  Split out of
 * collectRun() for callers that need to wire observers — live
 * stats export, progress callbacks — onto the SimSystem before
 * run(); using the same assembler guarantees their JSON is
 * byte-identical to an unobserved run.
 */
RunResult collectResults(SimSystem &system, const std::string &appName);

/**
 * Run one configuration to completion and collect a RunResult.
 * Builds the SimSystem on the calling thread; safe to invoke
 * concurrently from many threads (one system per call).
 *
 * A non-null @p profiler is attached to the system for the run
 * (see sim/profiler.hh); its wall-clock totals stay out of the
 * RunResult so the JSON remains deterministic.  A non-empty
 * @p progress observer is attached the same way (sim_system.hh);
 * it is invoked on this thread during the run.
 */
RunResult collectRun(const SystemConfig &config, const AppProfile &app,
                     HostProfiler *profiler = nullptr,
                     ProgressFn progress = {});

} // namespace vsnoop

#endif // VSNOOP_SYSTEM_RUN_RESULT_HH_
