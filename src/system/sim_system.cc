#include "system/sim_system.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"

namespace vsnoop
{

SimSystem::SimSystem(const SystemConfig &config, const AppProfile &app)
    : SimSystem(config,
                std::vector<AppProfile>(config.numVms, app))
{
}

SimSystem::SimSystem(const SystemConfig &config,
                     const std::vector<AppProfile> &apps)
    : config_(config), hypervisor_(config.hypervisor),
      mapping_(config.numCores())
{
    build(apps);
}

void
SimSystem::build(const std::vector<AppProfile> &apps)
{
    vsnoop_assert(apps.size() == config_.numVms,
                  "need one application profile per VM");
    std::uint32_t cores = config_.numCores();
    std::uint32_t vcpus = config_.numVms * config_.vcpusPerVm;
    vsnoop_assert(vcpus <= cores,
                  "the simulator does not model overcommitted coherence "
                  "runs (", vcpus, " vCPUs > ", cores, " cores); see the "
                  "scheduler simulation for overcommitted studies");

    if (config_.idealNetwork) {
        network_ = std::make_unique<IdealCrossbar>(
            cores, config_.crossbarLatency, config_.mesh.linkBytes);
    } else {
        auto mesh = std::make_unique<Mesh>(config_.mesh);
        mesh_ = mesh.get();
        network_ = std::move(mesh);
    }

    ProtocolConfig protocol = config_.protocol;
    protocol.numCores = cores;

    IdealRegionFilterPolicy *region_policy = nullptr;
    if (config_.policy == PolicyKind::VirtualSnoop) {
        auto policy = std::make_unique<VirtualSnoopPolicy>(
            cores, config_.numVms, config_.vsnoop);
        vsnoopPolicy_ = policy.get();
        policy_ = std::move(policy);
    } else if (config_.policy == PolicyKind::IdealRegionFilter) {
        auto policy = std::make_unique<IdealRegionFilterPolicy>(
            cores, config_.regionBytes);
        region_policy = policy.get();
        policy_ = std::move(policy);
    } else {
        policy_ = std::make_unique<TokenBPolicy>(cores);
    }

    coherence_ = std::make_unique<CoherenceSystem>(
        eq_, *network_, *policy_, protocol, config_.l2, config_.numVms);

    if (vsnoopPolicy_ != nullptr) {
        vsnoopPolicy_->attach(*coherence_);
        mapping_.addListener(vsnoopPolicy_);
    }
    if (region_policy != nullptr)
        region_policy->attach(*coherence_);

    // Friend pairing: VM 2k <-> VM 2k+1.  Used by the friend-VM
    // policy and by Table VI data-source classification.
    for (VmId vm = 0; vm + 1u < config_.numVms; vm += 2) {
        coherence_->setFriend(vm, vm + 1);
        coherence_->setFriend(vm + 1, vm);
        if (vsnoopPolicy_ != nullptr) {
            vsnoopPolicy_->setFriend(vm, vm + 1);
            vsnoopPolicy_->setFriend(vm + 1, vm);
        }
    }

    // Watch-page runs get their trace sink before the guest VMs so
    // the watched pages' build-time lifecycle records (first-touch
    // maps, the initial content scan's merges) are captured.  Plain
    // --trace runs keep the sink attachment below, after the build,
    // so their record stream (and run JSON) is unchanged.
    if (!config_.watchPages.empty()) {
        trace_ = std::make_unique<TraceSink>(
            std::max<std::size_t>(1, config_.traceLimit));
        coherence_->setTrace(trace_.get());
    }

    // Page-level forensics: the monitor observes the hypervisor's
    // lifecycle events from the very first mapping, charges per-page
    // lookups at the coherence layer's snoopLookups sites, and
    // filters transaction tracing down to watched pages.
    if (config_.pages || !config_.watchPages.empty()) {
        pagemon_ = std::make_unique<PageMon>(
            config_.numVms,
            std::max<std::uint32_t>(1, config_.pagesTop));
        pagemon_->setClock(&eq_);
        pagemon_->setCoreVmTable(mapping_.vmAtTable());
        pagemon_->setTrace(trace_.get());
        for (std::uint64_t page : config_.watchPages)
            pagemon_->addWatch(page);
        hypervisor_.setPageListener(pagemon_.get());
        coherence_->setPagemon(pagemon_.get());
        if (vsnoopPolicy_ != nullptr)
            vsnoopPolicy_->setPagemon(pagemon_.get());
    }

    // Guest VMs, content declarations and the ideal dedup scan.
    for (VmId vm = 0; vm < config_.numVms; ++vm) {
        VmId id = hypervisor_.createVm(config_.vcpusPerVm);
        vsnoop_assert(id == vm, "unexpected VM id");
        declareContentPages(hypervisor_, vm, apps[vm]);
    }
    if (config_.contentScan)
        hypervisor_.runContentScan();
    if (config_.contentScanPeriod > 0)
        scheduleContentScan();

    // vCPUs, initial one-to-one placement (VM k on the contiguous
    // quad of cores starting at k * vcpusPerVm), workloads, drivers.
    // When a scheduler trace drives the placement, the trace's own
    // events establish the mapping instead.
    bool default_placement = config_.placementTrace == nullptr;
    for (VmId vm = 0; vm < config_.numVms; ++vm) {
        for (std::uint32_t i = 0; i < config_.vcpusPerVm; ++i) {
            VCpuId vcpu = mapping_.addVcpu(vm);
            if (default_placement) {
                mapping_.place(vcpu, static_cast<CoreId>(
                                         vm * config_.vcpusPerVm + i));
            }
            VcpuWorkload workload(hypervisor_, vm, i, apps[vm],
                                  config_.seed);
            drivers_.push_back(std::make_unique<VcpuDriver>(
                eq_, *coherence_, mapping_, vcpu, std::move(workload),
                config_.warmupAccessesPerVcpu + config_.accessesPerVcpu,
                config_.warmupAccessesPerVcpu));
        }
    }

    if (config_.placementTrace != nullptr) {
        traceMigrator_ = std::make_unique<TraceMigrator>(
            eq_, mapping_, *config_.placementTrace,
            config_.traceTicksPerMs);
    } else if (config_.migrationPeriod > 0) {
        migrator_ = std::make_unique<ShuffleMigrator>(
            eq_, mapping_, config_.migrationPeriod, config_.seed);
    }

    if ((config_.captureTrace || !config_.tracePath.empty()) &&
        trace_ == nullptr) {
        trace_ = std::make_unique<TraceSink>(
            std::max<std::size_t>(1, config_.traceLimit));
        coherence_->setTrace(trace_.get());
        // Lifecycle records start flowing from here (measurement
        // setup is done); build-time events were still counted in
        // the monitor's transition totals.
        if (pagemon_ != nullptr)
            pagemon_->setTrace(trace_.get());
    }

    // Critical-path attribution is always on: the hooks are a few
    // additions per transaction, and the attribution (unlike a
    // bounded trace ring) must cover every transaction for the
    // conservation and reconciliation invariants to be exact.
    critpath_ = std::make_unique<CritPathAccountant>(
        config_.numVms, protocol.tagLookupCycles);
    critpath_->setCoreVmTable(mapping_.vmAtTable());
    coherence_->setCritPath(critpath_.get());

    // Simulator-internals counters: one block per system, attached
    // branch-on-null to the event queue, the protocol tables and
    // the mesh.  Deliberately not reset at the warmup boundary —
    // perfmon measures the simulator's data structures, whose
    // warmup behavior (pool growth, table rehashes) is exactly what
    // a tuner needs to see.
    if (config_.perf) {
        perfmon_ = std::make_unique<PerfMon>();
        perfmon_->enabled = true;
        eq_.setPerf(&perfmon_->eventQueue);
        coherence_->setPerf(perfmon_.get());
        if (mesh_ != nullptr)
            mesh_->setPerf(&perfmon_->mesh);
    }

    bool perf_sampling = perfmon_ != nullptr &&
                         config_.perfSampleInterval > 0;
    if (config_.timeseriesInterval > 0 || perf_sampling) {
        // One shared sampling chain: the time-series interval wins
        // when both are on, so enabling perf never changes the
        // series a run already emits.
        Tick interval = config_.timeseriesInterval > 0
                            ? config_.timeseriesInterval
                            : config_.perfSampleInterval;
        sampler_ = std::make_unique<IntervalSampler>(
            eq_, interval,
            [this, cores](TimeSeriesSample &s) {
                const CoherenceStats &cs = coherence_->stats;
                s.transactions = cs.transactions.value();
                s.snoopLookups = cs.snoopLookups.value();
                s.snoopsDelivered = cs.snoopsDelivered.value();
                s.retries = cs.retries.value();
                s.persistentRequests = cs.persistentRequests.value();
                if (vsnoopPolicy_ != nullptr) {
                    s.filteredRequests =
                        vsnoopPolicy_->filteredRequests.value();
                    s.broadcastRequests =
                        vsnoopPolicy_->broadcastRequests.value();
                }
                const NetworkStats &ns = network_->stats();
                for (std::size_t c = 0; c < kNumMsgClasses; ++c)
                    s.byteHops[c] = ns.byteHops[c].value();
                s.residencePerCore.assign(cores, 0);
                for (CoreId c = 0; c < cores; ++c) {
                    const ResidenceCounters &res =
                        coherence_->controller(c).residence();
                    for (VmId vm = 0; vm < config_.numVms; ++vm)
                        s.residencePerCore[c] += res.count(vm);
                }
                if (perfmon_ != nullptr) {
                    EventQueuePerf &eqp = perfmon_->eventQueue;
                    eqp.wheelOccupancy.sample(eq_.wheelEntries());
                    eqp.overflowOccupancy.sample(eq_.overflowEntries());
                    coherence_->samplePerfOccupancy(*perfmon_);
                }
            });
    }
}

void
SimSystem::setProfiler(HostProfiler *profiler)
{
    profiler_ = profiler;
    coherence_->setProfiler(profiler);
    // Protocol work is attributed at the event loop, one scope per
    // runUntil() slice: per-message scopes cost two clock reads per
    // event and dominated the profiler's own overhead.  Workload
    // generation still opens its nested Generate scope per batch.
    eq_.setDispatchProfile(profiler, HostProfiler::Phase::Coherence);
    for (auto &driver : drivers_)
        driver->setProfiler(profiler);
}

void
SimSystem::registerStats(StatSet &set) const
{
    const CoherenceStats &cs = coherence_->stats;
    set.add("coherence.transactions", cs.transactions);
    set.add("coherence.read_transactions", cs.readTransactions);
    set.add("coherence.write_transactions", cs.writeTransactions);
    set.add("coherence.l2_hits", cs.l2Hits);
    set.add("coherence.snoop_lookups", cs.snoopLookups);
    set.add("coherence.snoops_delivered", cs.snoopsDelivered);
    set.add("coherence.memory_snoops", cs.memorySnoops);
    set.add("coherence.retries", cs.retries);
    set.add("coherence.persistent_requests", cs.persistentRequests);
    set.add("coherence.dirty_writebacks", cs.dirtyWritebacks);
    set.add("coherence.bounced_responses", cs.bouncedResponses);
    set.add("coherence.miss_latency", cs.missLatency);
    set.add("coherence.ro_miss_latency", cs.roMissLatency);
    const MainMemory &memory = coherence_->memory();
    set.add("memory.reads", memory.reads);
    set.add("memory.writebacks", memory.writebacks);
    const CritPathAccountant &cp = *critpath_;
    set.add("critpath.transactions", cp.transactions);
    for (std::size_t s = 0; s < kNumCritSegments; ++s) {
        set.add(std::string("critpath.seg_") +
                    critSegmentName(static_cast<CritSegment>(s)),
                cp.segTotal[s]);
    }
    set.add("interference.snoop_lookups", cp.lookupsTotal);
    set.add("interference.snoop_lookups_offdiag", cp.lookupsOffDiag);
    set.add("interference.bytes_delivered", cp.bytesTotal);
    set.add("interference.bytes_delivered_offdiag", cp.bytesOffDiag);
    if (vsnoopPolicy_ != nullptr) {
        set.add("vsnoop.filtered_requests",
                vsnoopPolicy_->filteredRequests);
        set.add("vsnoop.broadcast_requests",
                vsnoopPolicy_->broadcastRequests);
        set.add("vsnoop.map_adds", vsnoopPolicy_->mapAdds);
        set.add("vsnoop.map_removals", vsnoopPolicy_->mapRemovals);
    }
    if (pagemon_ != nullptr) {
        set.add("pages.lookups", pagemon_->lookupsCharged);
        set.add("pages.cross_vm_lookups", pagemon_->crossVmLookups);
        set.add("pages.truncated_lookups", pagemon_->truncatedLookups);
        set.add("pages.cow_breaks",
                pagemon_->eventsByKind[static_cast<std::size_t>(
                    PageEventKind::CowBreak)]);
        set.add("pages.remaps",
                pagemon_->eventsByKind[static_cast<std::size_t>(
                    PageEventKind::Remap)]);
    }
}

void
SimSystem::reportProgress(bool finished)
{
    if (!progress_)
        return;
    ProgressSample s;
    s.tick = eq_.now();
    for (const auto &driver : drivers_)
        s.accessesIssued += driver->issued();
    s.accessesTarget =
        static_cast<std::uint64_t>(drivers_.size()) *
        (config_.warmupAccessesPerVcpu + config_.accessesPerVcpu);
    const CoherenceStats &cs = coherence_->stats;
    s.transactions = cs.transactions.value();
    s.snoopLookups = cs.snoopLookups.value();
    if (vsnoopPolicy_ != nullptr) {
        s.filteredRequests = vsnoopPolicy_->filteredRequests.value();
        s.broadcastRequests = vsnoopPolicy_->broadcastRequests.value();
    }
    s.trafficByteHops = network_->stats().totalByteHops();
    s.eventsProcessed = eq_.eventsProcessed();
    s.finished = finished;
    progress_(s);
}

void
SimSystem::scheduleContentScan()
{
    // Periodic re-scan: models the hypervisor's continuous page
    // hashing, re-merging pages whose content classes are declared
    // anew after a COW divergence.
    eq_.scheduleFnIn(config_.contentScanPeriod, [this] {
        if (stopAux_)
            return;
        hypervisor_.runContentScan();
        scheduleContentScan();
    });
}

void
SimSystem::resetAllStats()
{
    // Drivers reset themselves at their own warmup boundary (so
    // per-driver counters cover exactly the measurement quota);
    // this resets only the global collectors.
    coherence_->resetStats();
    network_->resetStats();
    if (vsnoopPolicy_ != nullptr)
        vsnoopPolicy_->resetStats();
    if (migrator_)
        migrator_->migrations.reset();
    if (traceMigrator_)
        traceMigrator_->migrations.reset();
}

void
SimSystem::run()
{
    if (profiler_)
        profiler_->begin();
    for (auto &driver : drivers_)
        driver->start();
    if (migrator_)
        migrator_->start();
    if (traceMigrator_)
        traceMigrator_->start();
    if (sampler_)
        sampler_->start();
    reportProgress(false);

    auto all_done = [this] {
        return std::all_of(drivers_.begin(), drivers_.end(),
                           [](const auto &d) { return d->done(); });
    };

    if (config_.warmupAccessesPerVcpu > 0) {
        auto warmed = [this] {
            return std::all_of(drivers_.begin(), drivers_.end(),
                               [this](const auto &d) {
                                   return d->issued() >=
                                          config_.warmupAccessesPerVcpu;
                               });
        };
        while (!warmed() && !all_done()) {
            vsnoop_assert(!eq_.empty(),
                          "event queue drained during warmup");
            eq_.runUntil(eq_.now() + 10000);
            reportProgress(false);
        }
        resetAllStats();
        // Re-baseline the time series so it covers the measurement
        // phase only (the snapshot counters just dropped to zero).
        if (sampler_)
            sampler_->resetSeries();
        warmupEnd_ = eq_.now();
    }

    std::uint64_t last_check = 0;
    while (!all_done()) {
        vsnoop_assert(!eq_.empty(),
                      "event queue drained before the drivers finished");
        // Advance in bounded slices of simulated time so completion
        // is detected promptly; a count-based chunk would keep
        // dispatching the self-rescheduling migrator long after the
        // drivers finish.
        eq_.runUntil(eq_.now() + 10000);
        reportProgress(false);
        if (config_.invariantCheckPeriod > 0 &&
            eq_.eventsProcessed() - last_check >=
                config_.invariantCheckPeriod) {
            last_check = eq_.eventsProcessed();
            coherence_->checkInvariants();
        }
    }

    stopAux_ = true;
    if (migrator_)
        migrator_->stop();
    if (traceMigrator_)
        traceMigrator_->stop();
    // Stop sampling before the drain: the sampler's self-scheduling
    // event chain would otherwise keep the queue occupied for the
    // whole drain budget, one sample per interval.  stop() captures
    // end-of-run state (e.g. drained residence counters) in a final
    // partial sample; the post-stop drain only settles straggler
    // token responses, which never install or evict lines.
    if (sampler_)
        sampler_->stop();
    // Drain any still-queued responses so tokens settle (keeps the
    // final invariant check meaningful).
    {
        ProfileScope drain(profiler_, HostProfiler::Phase::Drain);
        eq_.run(1000000);
    }
    if (config_.invariantCheckPeriod > 0)
        coherence_->checkInvariants();
    if (profiler_)
        profiler_->end(eq_.eventsProcessed());
    reportProgress(true);
}

SystemResults
SimSystem::results() const
{
    SystemResults r;
    const CoherenceStats &cs = coherence_->stats;
    r.transactions = cs.transactions.value();
    r.snoopLookups = cs.snoopLookups.value();
    r.retries = cs.retries.value();
    r.persistentRequests = cs.persistentRequests.value();
    r.dirtyWritebacks = cs.dirtyWritebacks.value();
    r.trafficByteHops = network_->stats().totalByteHops();
    r.meanMissLatency = cs.missLatency.mean();
    r.meanRoMissLatency = cs.roMissLatency.mean();
    r.latency = cs.latency;
    for (std::size_t i = 0; i < kNumFilterReasons; ++i)
        r.latencyByReason[i] = cs.latencyByReason[i];
    r.latencyFirstTry = cs.latencyFirstTry;
    r.latencyRetried = cs.latencyRetried;
    r.links = network_->linkStats();
    for (std::size_t i = 0; i < kNumDataSources; ++i) {
        r.dataFrom[i] = cs.dataFrom[i].value();
        r.roDataFrom[i] = cs.roDataFrom[i].value();
    }
    Tick finish = 0;
    for (const auto &driver : drivers_) {
        finish = std::max(finish, driver->finishedAt());
        r.totalMisses += driver->totalMisses.value();
        const VcpuWorkload &w = driver->workload();
        r.totalAccesses += w.totalAccesses.value();
        for (std::size_t c = 0; c < kNumAccessCategories; ++c) {
            r.accessesByCategory[c] +=
                w.accessesByCategory[c].value();
            r.missesByCategory[c] +=
                driver->missesByCategory[c].value();
        }
    }
    // Runtime covers the measurement phase only.
    r.runtime = finish > warmupEnd_ ? finish - warmupEnd_ : finish;
    if (vsnoopPolicy_ != nullptr) {
        r.mapAdds = vsnoopPolicy_->mapAdds.value();
        r.mapRemovals = vsnoopPolicy_->mapRemovals.value();
    }
    if (migrator_)
        r.migrations = migrator_->migrations.value();
    if (traceMigrator_)
        r.migrations = traceMigrator_->migrations.value();
    // The sampler may exist for perf-only occupancy sampling; the
    // time series is emitted only when explicitly requested.
    if (sampler_ && config_.timeseriesInterval > 0)
        r.series = sampler_->series();
    r.critpath = critpath_->critSnapshot();
    r.interference = critpath_->interferenceSnapshot();
    if (pagemon_ != nullptr && config_.pages) {
        r.pages = pagemon_->snapshot();
        // Page-type census: distinct mapped host pages by current
        // sharing type, read off the hypervisor's tables.  Counting
        // is order-independent, so the unordered walk is fine.
        std::unordered_map<std::uint64_t, PageType> host_type;
        for (VmId vm = 0; vm < config_.numVms; ++vm) {
            hypervisor_.pageTable(vm).forEach(
                [&host_type](std::uint64_t,
                             const PageTableEntry &entry) {
                    host_type[entry.hostPage] = entry.type;
                });
        }
        for (const auto &[page, type] : host_type)
            r.pages.censusByType[static_cast<std::size_t>(type)]++;
        // Tracked cells created after the last lifecycle event on
        // their page (e.g. post-warmup re-allocation) would otherwise
        // report the default type; the live tables are authoritative
        // for pages still mapped.
        for (PageCell &cell : r.pages.cells) {
            auto it = host_type.find(cell.pageNum);
            if (it != host_type.end())
                cell.lastType = it->second;
        }
    }
    if (perfmon_ != nullptr) {
        r.perf = *perfmon_;
        r.perf.eventQueue.poolHighWater = std::max(
            r.perf.eventQueue.poolHighWater, eq_.poolSlots());
        coherence_->capturePerfSizes(r.perf);
    }
    return r;
}

} // namespace vsnoop
