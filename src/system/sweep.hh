/**
 * @file
 * Multi-configuration sweep execution.
 *
 * The evaluation workload of this repository — like the source
 * paper's Figures 6-10 (3 policies x 4 relocation modes x 4 RO
 * policies x ~10 apps) — is embarrassingly parallel: many
 * independent single-threaded SimSystem runs.  This layer expands
 * a cross-product of configuration axes into a deterministic run
 * list and executes it on a worker pool.
 *
 * Concurrency contract ("one SimSystem per thread"): each run
 * builds, executes, and destroys its own SimSystem entirely on one
 * worker thread; SimSystem instances share no mutable state (see
 * system/sim_system.hh).  Results are stored into pre-sized slots
 * indexed by the run's position in the expanded matrix, so output
 * order — and, with per-run seeds, output bytes — are identical
 * for any worker count.
 */

#ifndef VSNOOP_SYSTEM_SWEEP_HH_
#define VSNOOP_SYSTEM_SWEEP_HH_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "system/run_result.hh"
#include "system/sim_system.hh"

namespace vsnoop
{

/**
 * One point of the sweep cross-product.
 */
struct SweepPoint
{
    std::string app;
    PolicyKind policy = PolicyKind::VirtualSnoop;
    RelocationMode relocation = RelocationMode::Counter;
    RoPolicy roPolicy = RoPolicy::Broadcast;
    std::uint64_t seed = 1;
};

/**
 * A sweep: configuration axes crossed over a base configuration.
 *
 * Every axis must be non-empty; expand() emits apps-major,
 * seeds-minor order (app, policy, relocation, ro_policy, seed),
 * matching the nesting of the paper's figure sweeps.
 */
struct SweepMatrix
{
    std::vector<std::string> apps;
    std::vector<PolicyKind> policies = {PolicyKind::VirtualSnoop};
    std::vector<RelocationMode> relocations = {RelocationMode::Counter};
    std::vector<RoPolicy> roPolicies = {RoPolicy::Broadcast};
    std::vector<std::uint64_t> seeds = {1};
    /** Template configuration; each point overrides the policy
     *  fields and the seed. */
    SystemConfig base;
    /**
     * When non-empty, every run writes a Chrome trace to
     * `<traceDir>/<app>-<policy>-<relocation>-<ro>-s<seed>.trace.json`
     * (see traceFileName()).  The directory must exist.  Trace
     * files are per-run, so parallel workers never share one and
     * sweep stdout stays byte-identical for any job count.
     */
    std::string traceDir;

    std::size_t runCount() const;

    /** The cross-product in deterministic order. */
    std::vector<SweepPoint> expand() const;

    /** The base configuration specialized to one point. */
    SystemConfig configFor(const SweepPoint &point) const;

    /** Trace file name (without directory) for one point. */
    static std::string traceFileName(const SweepPoint &point);
};

/**
 * Invoke fn(0..count-1), spread over up to @p jobs worker threads.
 *
 * The generic worker pool under runSweep(), exposed so benches can
 * parallelize their own run lists.  fn must be safe to call
 * concurrently for distinct indices; each index is invoked exactly
 * once.  jobs == 0 selects hardware concurrency.  Any vsnoop_fatal
 * / vsnoop_panic inside fn terminates the process as in serial
 * code.
 *
 * A non-empty @p cancel is polled before each dispatch; once it
 * returns true, no further indices are started (indices already
 * running finish normally, so every index is invoked exactly once
 * or not at all — never partially).
 */
void runIndexed(std::size_t count, unsigned jobs,
                const std::function<void(std::size_t)> &fn,
                const std::function<bool()> &cancel = {});

/**
 * Execute every point of the matrix and return results in
 * expand() order.  Looks profiles up with findApp() (fatal on an
 * unknown name) before spawning workers.
 *
 * A non-null @p profile accumulates every worker's host-profiler
 * totals (merged under a lock at run end), so the aggregate is CPU
 * time summed across workers and events-per-second is per-worker
 * throughput.
 */
std::vector<RunResult> runSweep(const SweepMatrix &matrix,
                                unsigned jobs = 0,
                                HostProfiler *profile = nullptr);

class SweepHeartbeat;

/**
 * Outcome of a monitored (and possibly cancelled) sweep.  results
 * is always runCount() slots in expand() order, but when the sweep
 * was cancelled only slots with completed[i] != 0 hold a run —
 * consumers must filter on the mask before touching a slot.
 */
struct SweepExecution
{
    std::vector<RunResult> results;
    /** completed[i] != 0 iff results[i] holds a finished run. */
    std::vector<std::uint8_t> completed;
    /** True when @p cancel stopped dispatch before the last run. */
    bool interrupted = false;

    std::size_t completedCount() const;
};

/**
 * runSweep() with live observation and cooperative cancellation.
 *
 * A non-null @p heartbeat (constructed from the same matrix; the
 * cell count must match) receives per-run lifecycle transitions and
 * progress samples: each worker calls start() on its cell, feeds it
 * from the SimSystem progress callback, and finish()es it — all on
 * the worker thread, so monitor threads read live cells without
 * ever blocking simulation.  A non-empty @p cancel stops dispatch
 * as in runIndexed(); in-flight runs still complete and are marked
 * in the mask.
 *
 * Observation is read-only with respect to simulation state: for a
 * given matrix and seeds, each completed RunResult is byte-for-byte
 * identical with or without a heartbeat, at any job count.
 *
 * A non-empty @p onRunDone is invoked on the worker thread for each
 * completed run, after its result slot is filled, with the run's
 * index and result.  It may be called concurrently for distinct
 * indices and must synchronize any shared state it touches (the
 * perfmon aggregator does so under its own lock).
 */
SweepExecution runSweepMonitored(
    const SweepMatrix &matrix, unsigned jobs = 0,
    HostProfiler *profile = nullptr,
    SweepHeartbeat *heartbeat = nullptr,
    const std::function<bool()> &cancel = {},
    const std::function<void(std::size_t, const RunResult &)>
        &onRunDone = {});

} // namespace vsnoop

#endif // VSNOOP_SYSTEM_SWEEP_HH_
