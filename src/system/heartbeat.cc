#include "system/heartbeat.hh"

#include <chrono>
#include <cstdio>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/slog.hh"
#include "sim/stats_server.hh"
#include "system/run_result.hh"

namespace vsnoop
{

std::uint64_t
steadyNowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char *
runStateName(RunState state)
{
    switch (state) {
      case RunState::Pending: return "pending";
      case RunState::Running: return "running";
      case RunState::Done: return "done";
    }
    vsnoop_panic("unknown RunState ", static_cast<int>(state));
}

void
RunProgress::start(std::uint64_t nowMs)
{
    startedMs_.store(nowMs, std::memory_order_relaxed);
    lastUpdateMs_.store(nowMs, std::memory_order_relaxed);
    state_.store(static_cast<std::uint8_t>(RunState::Running),
                 std::memory_order_relaxed);
}

void
RunProgress::update(const ProgressSample &sample, std::uint64_t nowMs)
{
    tick_.store(sample.tick, std::memory_order_relaxed);
    issued_.store(sample.accessesIssued, std::memory_order_relaxed);
    target_.store(sample.accessesTarget, std::memory_order_relaxed);
    transactions_.store(sample.transactions, std::memory_order_relaxed);
    snoopLookups_.store(sample.snoopLookups, std::memory_order_relaxed);
    filtered_.store(sample.filteredRequests, std::memory_order_relaxed);
    broadcast_.store(sample.broadcastRequests,
                     std::memory_order_relaxed);
    byteHops_.store(sample.trafficByteHops, std::memory_order_relaxed);
    events_.store(sample.eventsProcessed, std::memory_order_relaxed);
    lastUpdateMs_.store(nowMs, std::memory_order_relaxed);
}

void
RunProgress::finish(std::uint64_t nowMs)
{
    finishedMs_.store(nowMs, std::memory_order_relaxed);
    lastUpdateMs_.store(nowMs, std::memory_order_relaxed);
    state_.store(static_cast<std::uint8_t>(RunState::Done),
                 std::memory_order_relaxed);
}

RunState
RunProgress::state() const
{
    return static_cast<RunState>(
        state_.load(std::memory_order_relaxed));
}

double
RunProgress::progressRatio() const
{
    std::uint64_t target = accessesTarget();
    if (target == 0)
        return state() == RunState::Done ? 1.0 : 0.0;
    double ratio = static_cast<double>(accessesIssued()) /
                   static_cast<double>(target);
    return ratio > 1.0 ? 1.0 : ratio;
}

double
RunProgress::filterRate() const
{
    std::uint64_t filtered = filteredRequests();
    std::uint64_t total = filtered + broadcastRequests();
    return total == 0 ? 0.0
                      : static_cast<double>(filtered) /
                            static_cast<double>(total);
}

bool
RunProgress::stalled(std::uint64_t nowMs, std::uint64_t stallMs) const
{
    if (stallMs == 0 || state() != RunState::Running)
        return false;
    std::uint64_t last = lastUpdateMs();
    return nowMs > last && nowMs - last > stallMs;
}

void
RunProgress::presetTarget(std::uint64_t target)
{
    target_.store(target, std::memory_order_relaxed);
}

SweepHeartbeat::SweepHeartbeat(const SweepMatrix &matrix)
{
    std::vector<SweepPoint> points = matrix.expand();
    runs_ = std::vector<RunProgress>(points.size());
    info_.reserve(points.size());
    std::uint64_t target =
        static_cast<std::uint64_t>(matrix.base.numVms) *
        matrix.base.vcpusPerVm *
        (matrix.base.warmupAccessesPerVcpu +
         matrix.base.accessesPerVcpu);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        RunInfo info;
        info.app = p.app;
        info.policy = policyKindName(p.policy);
        info.relocation = relocationModeToken(p.relocation);
        info.roPolicy = roPolicyToken(p.roPolicy);
        info.seed = p.seed;
        info.label = info.app + "/" + info.policy + "/" +
                     info.relocation + "/" + info.roPolicy + "/s" +
                     std::to_string(p.seed);
        info_.push_back(std::move(info));
        runs_[i].presetTarget(target);
    }
}

void
SweepHeartbeat::markLaunched(std::uint64_t nowMs)
{
    launchedMs_.store(nowMs, std::memory_order_relaxed);
}

void
SweepHeartbeat::markInterrupted()
{
    interrupted_.store(true, std::memory_order_relaxed);
}

std::size_t
SweepHeartbeat::runsDone() const
{
    std::size_t done = 0;
    for (const RunProgress &run : runs_)
        done += run.state() == RunState::Done;
    return done;
}

std::size_t
SweepHeartbeat::runsRunning() const
{
    std::size_t running = 0;
    for (const RunProgress &run : runs_)
        running += run.state() == RunState::Running;
    return running;
}

double
SweepHeartbeat::runsPerSecond(std::uint64_t nowMs) const
{
    std::uint64_t launched = launchedMs();
    if (launched == 0 || nowMs <= launched)
        return 0.0;
    double elapsed =
        static_cast<double>(nowMs - launched) / 1000.0;
    return static_cast<double>(runsDone()) / elapsed;
}

double
SweepHeartbeat::etaSeconds(std::uint64_t nowMs) const
{
    double rate = runsPerSecond(nowMs);
    if (rate <= 0.0)
        return 0.0;
    // Credit partial progress of the in-flight runs so the ETA
    // converges instead of jumping at run boundaries.
    double remaining = 0.0;
    for (const RunProgress &run : runs_) {
        if (run.state() == RunState::Pending)
            remaining += 1.0;
        else if (run.state() == RunState::Running)
            remaining += 1.0 - run.progressRatio();
    }
    return remaining / rate;
}

std::vector<std::size_t>
SweepHeartbeat::stalledRuns(std::uint64_t nowMs,
                            std::uint64_t stallMs) const
{
    std::vector<std::size_t> stalled;
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        if (runs_[i].stalled(nowMs, stallMs))
            stalled.push_back(i);
    }
    return stalled;
}

void
SweepHeartbeat::registerMetrics(MetricsRegistry &registry)
{
    vsnoop_assert(!metricsRegistered_,
                  "heartbeat metrics registered twice");
    metricsRegistered_ = true;

    sweepIds_.runsTotal = registry.addGauge(
        "vsnoop_sweep_runs_total", "Runs in the sweep matrix.");
    sweepIds_.runsCompleted = registry.addGauge(
        "vsnoop_sweep_runs_completed", "Runs finished so far.");
    sweepIds_.runsRunning = registry.addGauge(
        "vsnoop_sweep_runs_running", "Runs currently executing.");
    sweepIds_.runsPerSecond = registry.addGauge(
        "vsnoop_sweep_runs_per_second",
        "Completed-run throughput since launch.");
    sweepIds_.etaSeconds = registry.addGauge(
        "vsnoop_sweep_eta_seconds",
        "Estimated seconds until the sweep completes.");
    sweepIds_.elapsedSeconds = registry.addGauge(
        "vsnoop_sweep_elapsed_seconds",
        "Wall seconds since the sweep launched.");
    sweepIds_.stalledRuns = registry.addGauge(
        "vsnoop_sweep_stalled_runs",
        "Runs flagged by the no-forward-progress watchdog.");
    sweepIds_.interrupted = registry.addGauge(
        "vsnoop_sweep_interrupted",
        "1 after SIGINT/SIGTERM stopped dispatch, else 0.");
    sweepIds_.eventsTotal = registry.addCounter(
        "vsnoop_sweep_events_total",
        "Simulator events processed across all runs.");
    sweepIds_.simTicksTotal = registry.addCounter(
        "vsnoop_sweep_sim_ticks_total",
        "Simulated ticks advanced across all runs.");

    runIds_.resize(runs_.size());
    auto labelsFor = [this](std::size_t i) {
        const RunInfo &info = info_[i];
        return std::vector<MetricLabel>{
            {"run", std::to_string(i)},
            {"app", info.app},
            {"policy", info.policy},
            {"relocation", info.relocation},
            {"ro_policy", info.roPolicy},
            {"seed", std::to_string(info.seed)},
        };
    };
    // Register family-by-family (not run-by-run): series of one
    // family must be contiguous for the exposition format.
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].state = registry.addGauge(
            "vsnoop_run_state",
            "Run lifecycle: 0 pending, 1 running, 2 done.",
            labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].progressRatio = registry.addGauge(
            "vsnoop_run_progress_ratio",
            "Completed fraction of the run's access quota.",
            labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].accesses = registry.addCounter(
            "vsnoop_run_accesses_total",
            "Accesses completed by the run's vCPUs.", labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].transactions = registry.addCounter(
            "vsnoop_run_transactions_total",
            "Coherence transactions issued by the run.",
            labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].snoopLookups = registry.addCounter(
            "vsnoop_run_snoop_lookups_total",
            "Snoop tag lookups induced by the run.", labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].filterRate = registry.addGauge(
            "vsnoop_run_filter_rate",
            "Fraction of snoop requests the vCPU map filtered.",
            labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].byteHops = registry.addCounter(
            "vsnoop_run_traffic_byte_hops_total",
            "Network traffic in byte-hops.", labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].tick = registry.addGauge(
            "vsnoop_run_sim_tick", "Current simulated tick.",
            labelsFor(i));
    for (std::size_t i = 0; i < runs_.size(); ++i)
        runIds_[i].events = registry.addCounter(
            "vsnoop_run_events_total",
            "Simulator events processed by the run.", labelsFor(i));
}

void
SweepHeartbeat::publishMetrics(MetricsRegistry &registry,
                               std::uint64_t nowMs,
                               std::uint64_t stallMs) const
{
    vsnoop_assert(metricsRegistered_,
                  "publishMetrics() without registerMetrics()");
    registry.set(sweepIds_.runsTotal,
                 static_cast<double>(runs_.size()));
    registry.set(sweepIds_.runsCompleted,
                 static_cast<double>(runsDone()));
    registry.set(sweepIds_.runsRunning,
                 static_cast<double>(runsRunning()));
    registry.set(sweepIds_.runsPerSecond, runsPerSecond(nowMs));
    registry.set(sweepIds_.etaSeconds, etaSeconds(nowMs));
    std::uint64_t launched = launchedMs();
    registry.set(sweepIds_.elapsedSeconds,
                 launched > 0 && nowMs > launched
                     ? static_cast<double>(nowMs - launched) / 1000.0
                     : 0.0);
    registry.set(sweepIds_.stalledRuns,
                 static_cast<double>(stalledRuns(nowMs, stallMs).size()));
    registry.set(sweepIds_.interrupted, interrupted() ? 1.0 : 0.0);
    std::uint64_t events_total = 0;
    std::uint64_t ticks_total = 0;
    for (const RunProgress &run : runs_) {
        events_total += run.eventsProcessed();
        ticks_total += run.tick();
    }
    registry.set(sweepIds_.eventsTotal,
                 static_cast<double>(events_total));
    registry.set(sweepIds_.simTicksTotal,
                 static_cast<double>(ticks_total));

    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const RunProgress &run = runs_[i];
        const RunIds &ids = runIds_[i];
        registry.set(ids.state,
                     static_cast<double>(
                         static_cast<std::uint8_t>(run.state())));
        registry.set(ids.progressRatio, run.progressRatio());
        registry.set(ids.accesses,
                     static_cast<double>(run.accessesIssued()));
        registry.set(ids.transactions,
                     static_cast<double>(run.transactions()));
        registry.set(ids.snoopLookups,
                     static_cast<double>(run.snoopLookups()));
        registry.set(ids.filterRate, run.filterRate());
        registry.set(ids.byteHops,
                     static_cast<double>(run.trafficByteHops()));
        registry.set(ids.tick, static_cast<double>(run.tick()));
        registry.set(ids.events,
                     static_cast<double>(run.eventsProcessed()));
    }
    registry.publish();
}

std::string
SweepHeartbeat::progressJson(std::uint64_t nowMs,
                             std::uint64_t stallMs) const
{
    std::uint64_t issued = 0;
    std::uint64_t target = 0;
    std::uint64_t filtered = 0;
    std::uint64_t broadcast = 0;
    std::uint64_t byte_hops = 0;
    for (const RunProgress &run : runs_) {
        issued += run.accessesIssued();
        target += run.accessesTarget();
        filtered += run.filteredRequests();
        broadcast += run.broadcastRequests();
        byte_hops += run.trafficByteHops();
    }
    std::uint64_t launched = launchedMs();
    double elapsed = launched > 0 && nowMs > launched
                         ? static_cast<double>(nowMs - launched) / 1000.0
                         : 0.0;

    JsonWriter json;
    json.beginObject();
    json.key("runs_total").value(static_cast<std::uint64_t>(
        runs_.size()));
    json.key("runs_done").value(static_cast<std::uint64_t>(
        runsDone()));
    json.key("runs_running").value(static_cast<std::uint64_t>(
        runsRunning()));
    json.key("runs_pending").value(static_cast<std::uint64_t>(
        runs_.size() - runsDone() - runsRunning()));
    json.key("interrupted").value(interrupted());
    json.key("elapsed_seconds").value(elapsed);
    json.key("runs_per_second").value(runsPerSecond(nowMs));
    json.key("eta_seconds").value(etaSeconds(nowMs));
    json.key("accesses_issued").value(issued);
    json.key("accesses_target").value(target);
    std::uint64_t requests = filtered + broadcast;
    json.key("filter_rate")
        .value(requests == 0 ? 0.0
                             : static_cast<double>(filtered) /
                                   static_cast<double>(requests));
    json.key("traffic_byte_hops").value(byte_hops);
    json.key("watchdog").beginObject();
    json.key("stall_timeout_ms").value(stallMs);
    json.key("stalled").beginArray();
    for (std::size_t i : stalledRuns(nowMs, stallMs)) {
        json.beginObject();
        json.key("run").value(static_cast<std::uint64_t>(i));
        json.key("label").value(info_[i].label);
        json.key("seconds_since_update")
            .value(static_cast<double>(nowMs -
                                       runs_[i].lastUpdateMs()) /
                   1000.0);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    json.endObject();
    return json.str();
}

std::string
SweepHeartbeat::runsJson(std::uint64_t nowMs,
                         std::uint64_t stallMs) const
{
    JsonWriter json;
    json.beginObject();
    json.key("runs").beginArray();
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        const RunProgress &run = runs_[i];
        const RunInfo &info = info_[i];
        json.beginObject();
        json.key("run").value(static_cast<std::uint64_t>(i));
        json.key("label").value(info.label);
        json.key("app").value(info.app);
        json.key("policy").value(info.policy);
        json.key("relocation").value(info.relocation);
        json.key("ro_policy").value(info.roPolicy);
        json.key("seed").value(info.seed);
        json.key("state").value(runStateName(run.state()));
        json.key("stalled").value(run.stalled(nowMs, stallMs));
        json.key("accesses_issued").value(run.accessesIssued());
        json.key("accesses_target").value(run.accessesTarget());
        json.key("progress").value(run.progressRatio());
        json.key("tick").value(run.tick());
        json.key("transactions").value(run.transactions());
        json.key("snoop_lookups").value(run.snoopLookups());
        json.key("filter_rate").value(run.filterRate());
        json.key("traffic_byte_hops").value(run.trafficByteHops());
        std::uint64_t started = run.startedMs();
        std::uint64_t until = run.state() == RunState::Done
                                  ? run.finishedMs()
                                  : nowMs;
        json.key("elapsed_seconds")
            .value(started > 0 && until > started
                       ? static_cast<double>(until - started) / 1000.0
                       : 0.0);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::string
SweepHeartbeat::heartbeatLine(std::uint64_t nowMs) const
{
    char buf[64];
    std::string line = "heartbeat: ";
    line += std::to_string(runsDone());
    line += '/';
    line += std::to_string(runs_.size());
    line += " done, ";
    line += std::to_string(runsRunning());
    line += " running, ";
    std::snprintf(buf, sizeof buf, "%.2f runs/s",
                  runsPerSecond(nowMs));
    line += buf;
    double eta = etaSeconds(nowMs);
    if (eta > 0.0) {
        std::snprintf(buf, sizeof buf, ", ETA %.1f s", eta);
        line += buf;
    }
    return line;
}

void
registerTelemetryRoutes(StatsServer &server,
                        const MetricsRegistry &registry,
                        const SweepHeartbeat &heartbeat,
                        std::uint64_t stallMs)
{
    server.route("/metrics", [&registry] {
        HttpResponse resp;
        resp.contentType = kPrometheusContentType;
        resp.body = registry.renderPrometheus();
        return resp;
    });
    server.route("/progress", [&heartbeat, stallMs] {
        HttpResponse resp;
        resp.contentType = "application/json";
        resp.body =
            heartbeat.progressJson(steadyNowMs(), stallMs) + "\n";
        return resp;
    });
    server.route("/runs", [&heartbeat, stallMs] {
        HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = heartbeat.runsJson(steadyNowMs(), stallMs) + "\n";
        return resp;
    });
    server.route("/logs", [] {
        HttpResponse resp;
        resp.contentType = "application/x-ndjson";
        resp.body = slog().renderJsonl(LogLevel::Debug,
                                       std::size_t(-1));
        return resp;
    });
    server.route("/", [] {
        HttpResponse resp;
        resp.body = "vsnoop live telemetry\n"
                    "  /metrics  Prometheus text exposition\n"
                    "  /progress sweep-level progress JSON\n"
                    "  /runs     per-run progress JSON\n"
                    "  /logs     recent log records (JSONL)\n";
        return resp;
    });
}

} // namespace vsnoop
