#include "system/sweep.hh"

#include <atomic>
#include <mutex>
#include <thread>

#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "system/heartbeat.hh"

namespace vsnoop
{

std::size_t
SweepMatrix::runCount() const
{
    return apps.size() * policies.size() * relocations.size() *
           roPolicies.size() * seeds.size();
}

std::vector<SweepPoint>
SweepMatrix::expand() const
{
    vsnoop_assert(!apps.empty() && !policies.empty() &&
                      !relocations.empty() && !roPolicies.empty() &&
                      !seeds.empty(),
                  "every sweep axis needs at least one value");
    std::vector<SweepPoint> points;
    points.reserve(runCount());
    for (const std::string &app : apps)
        for (PolicyKind policy : policies)
            for (RelocationMode relocation : relocations)
                for (RoPolicy ro : roPolicies)
                    for (std::uint64_t seed : seeds)
                        points.push_back(
                            {app, policy, relocation, ro, seed});
    return points;
}

SystemConfig
SweepMatrix::configFor(const SweepPoint &point) const
{
    SystemConfig cfg = base;
    cfg.policy = point.policy;
    cfg.vsnoop.relocation = point.relocation;
    cfg.vsnoop.roPolicy = point.roPolicy;
    cfg.seed = point.seed;
    if (!traceDir.empty())
        cfg.tracePath = traceDir + "/" + traceFileName(point);
    return cfg;
}

std::string
SweepMatrix::traceFileName(const SweepPoint &point)
{
    std::string name = point.app;
    name += '-';
    name += policyKindName(point.policy);
    name += '-';
    name += relocationModeToken(point.relocation);
    name += '-';
    name += roPolicyToken(point.roPolicy);
    name += "-s";
    name += std::to_string(point.seed);
    name += ".trace.json";
    return name;
}

void
runIndexed(std::size_t count, unsigned jobs,
           const std::function<void(std::size_t)> &fn,
           const std::function<bool()> &cancel)
{
    if (count == 0)
        return;
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, count));
    if (jobs == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            if (cancel && cancel())
                return;
            fn(i);
        }
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1);
             i < count;
             i = next.fetch_add(1)) {
            if (cancel && cancel()) {
                // Drain the dispatch counter so sibling workers
                // stop promptly too.
                next.store(count, std::memory_order_relaxed);
                return;
            }
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

std::vector<RunResult>
runSweep(const SweepMatrix &matrix, unsigned jobs, HostProfiler *profile)
{
    SweepExecution exec = runSweepMonitored(matrix, jobs, profile);
    return std::move(exec.results);
}

std::size_t
SweepExecution::completedCount() const
{
    std::size_t n = 0;
    for (std::uint8_t c : completed)
        n += c != 0;
    return n;
}

SweepExecution
runSweepMonitored(const SweepMatrix &matrix, unsigned jobs,
                  HostProfiler *profile, SweepHeartbeat *heartbeat,
                  const std::function<bool()> &cancel,
                  const std::function<void(std::size_t, const RunResult &)>
                      &onRunDone)
{
    std::vector<SweepPoint> points = matrix.expand();
    vsnoop_assert(heartbeat == nullptr ||
                      heartbeat->runCount() == points.size(),
                  "heartbeat cell count does not match the matrix");
    // Resolve profiles up front: findApp() is fatal on a bad name,
    // and failing before the pool spins up gives a clean error.
    std::vector<const AppProfile *> profiles;
    profiles.reserve(points.size());
    for (const SweepPoint &p : points)
        profiles.push_back(&findApp(p.app));

    SweepExecution exec;
    exec.results.resize(points.size());
    exec.completed.assign(points.size(), 0);
    std::mutex profile_mutex;
    if (heartbeat != nullptr)
        heartbeat->markLaunched(steadyNowMs());
    runIndexed(points.size(), jobs, [&](std::size_t i) {
        ProgressFn progress;
        if (heartbeat != nullptr) {
            RunProgress &cell = heartbeat->run(i);
            cell.start(steadyNowMs());
            progress = [&cell](const ProgressSample &sample) {
                cell.update(sample, steadyNowMs());
            };
        }
        if (profile == nullptr) {
            exec.results[i] =
                collectRun(matrix.configFor(points[i]), *profiles[i],
                           nullptr, std::move(progress));
        } else {
            // Each run profiles into a worker-local collector; only
            // the end-of-run merge takes the lock, so profiling adds
            // no cross-thread traffic to the hot path.
            HostProfiler local;
            exec.results[i] =
                collectRun(matrix.configFor(points[i]), *profiles[i],
                           &local, std::move(progress));
            std::lock_guard<std::mutex> lock(profile_mutex);
            profile->merge(local);
        }
        if (onRunDone)
            onRunDone(i, exec.results[i]);
        if (heartbeat != nullptr)
            heartbeat->run(i).finish(steadyNowMs());
        exec.completed[i] = 1;
    }, cancel);
    exec.interrupted = cancel && cancel();
    if (exec.interrupted && heartbeat != nullptr)
        heartbeat->markInterrupted();
    return exec;
}

} // namespace vsnoop
