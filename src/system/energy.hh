/**
 * @file
 * Snoop-energy model.
 *
 * The paper's first-order motivation is power: "the first goal of
 * snoop filtering is to reduce the power consumption for snoop tag
 * lookups and snoop message transfers" (Section V-B, citing
 * Moshovos et al.'s JETTY).  This model turns the simulator's event
 * counts into an energy estimate so the benches can report the
 * quantity the paper argues about but does not measure.
 *
 * The model is an activity-count model: every counted event is
 * charged a fixed per-event energy.  Default constants are
 * CACTI-flavoured relative magnitudes for a ~45 nm node (the
 * paper's era); they are knobs, not gospel — what matters for the
 * reproduction is the *relative* energy of filtered vs broadcast
 * runs, which is dominated by event counts.
 */

#ifndef VSNOOP_SYSTEM_ENERGY_HH_
#define VSNOOP_SYSTEM_ENERGY_HH_

#include "system/sim_system.hh"

namespace vsnoop
{

/**
 * Per-event energy constants, in picojoules.
 */
struct EnergyParams
{
    /** One snoop tag lookup in a remote L2 (or the requester's). */
    double tagLookupPj = 12.0;
    /** One flit traversing one link (wires + router switching). */
    double flitHopPj = 6.0;
    /** One DRAM data access (read or writeback). */
    double dramAccessPj = 2200.0;
    /** One L2 data-array access (hit, fill, or provide). */
    double l2DataPj = 40.0;
    /** Link width used to convert byte-hops to flit-hops. */
    double linkBytes = 16.0;
};

/**
 * An energy estimate decomposed by source.
 */
struct EnergyBreakdown
{
    double snoopTagPj = 0.0;
    double networkPj = 0.0;
    double dramPj = 0.0;
    double l2DataPj = 0.0;

    double
    totalPj() const
    {
        return snoopTagPj + networkPj + dramPj + l2DataPj;
    }
};

/**
 * Compute the energy breakdown for a finished run.
 *
 * @param results The run's results (event counts).
 * @param memory_reads DRAM data reads (MainMemory::reads).
 * @param memory_writebacks DRAM writebacks.
 * @param params Energy constants.
 */
EnergyBreakdown computeEnergy(const SystemResults &results,
                              std::uint64_t memory_reads,
                              std::uint64_t memory_writebacks,
                              const EnergyParams &params = {});

/** Convenience overload pulling the memory counters from a system. */
EnergyBreakdown computeEnergy(SimSystem &system,
                              const EnergyParams &params = {});

} // namespace vsnoop

#endif // VSNOOP_SYSTEM_ENERGY_HH_
