#include "system/driver.hh"

#include "sim/logging.hh"
#include "sim/profiler.hh"

namespace vsnoop
{

VcpuDriver::VcpuDriver(EventQueue &eq, CoherenceSystem &system,
                       VcpuMapping &mapping, VCpuId vcpu,
                       VcpuWorkload workload, std::uint64_t quota,
                       std::uint64_t warmup)
    : eq_(eq), system_(system), mapping_(mapping), vcpu_(vcpu),
      workload_(std::move(workload)), quota_(quota), warmup_(warmup)
{
    vsnoop_assert(warmup < quota || quota == 0,
                  "warmup must leave room for measurement");
}

void
VcpuDriver::resetStats()
{
    for (auto &counter : missesByCategory)
        counter.reset();
    totalMisses.reset();
    latencySum.reset();
    workload_.resetStats();
}

void
VcpuDriver::start()
{
    vsnoop_assert(quota_ > 0, "driver quota must be positive");
    eq_.scheduleIn(*this, 1);
}

void
VcpuDriver::process()
{
    if (done())
        return;
    CoreId core = mapping_.coreOf(vcpu_);
    if (core == kInvalidCore) {
        // Descheduled: poll again shortly.  (Coherence experiments
        // keep every vCPU placed; this path exists for scheduler
        // integrations where vCPUs can wait.)
        eq_.scheduleIn(*this, 1000);
        return;
    }
    VcpuWorkload::Step step = [this] {
        ProfileScope scope(profiler_, HostProfiler::Phase::Generate);
        return workload_.next();
    }();
    Tick issue_time = eq_.now();
    auto category = step.category;
    Tick gap = step.gap;
    system_.access(core, step.access,
                   [this, issue_time, category, gap](
                       Tick done_at, DataSource source, bool was_miss) {
                       (void)source;
                       if (was_miss) {
                           totalMisses.inc();
                           missesByCategory[static_cast<std::size_t>(
                                                category)]
                               .inc();
                       }
                       latencySum.inc(done_at - issue_time);
                       issued_++;
                       if (warmup_ > 0 && issued_ == warmup_) {
                           // Own warmup boundary: this driver's
                           // statistics now cover exactly the
                           // measurement accesses.
                           resetStats();
                       }
                       if (done()) {
                           finishedAt_ = done_at;
                           return;
                       }
                       Tick next = done_at + gap;
                       if (next <= eq_.now())
                           next = eq_.now() + 1;
                       eq_.schedule(*this, next);
                   });
}

} // namespace vsnoop
