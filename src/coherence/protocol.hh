/**
 * @file
 * Token-coherence protocol types shared by the controller and the
 * coherence system.
 *
 * The protocol follows Martin et al.'s Token Coherence (ISCA 2003)
 * with a MOESI flavour, the baseline the paper builds on
 * (Table II):
 *
 *  - every line has a fixed number of tokens T (one per core); one
 *    of them is the distinguished owner token;
 *  - a cache may hold data iff it holds at least one token;
 *  - a read (GETS) completes once the requester holds data and at
 *    least one token;
 *  - a write (GETX) completes once the requester holds data and all
 *    T tokens;
 *  - transient requests may fail (tokens may be elsewhere or in
 *    flight); after a bounded number of retries the requester falls
 *    back to an arbitrated persistent request that is guaranteed to
 *    make progress.
 *
 * MOESI states map onto token state as: M = owner + all tokens +
 * dirty, E = owner + all tokens + clean, O = owner + some tokens,
 * S = tokens without owner, I = no tokens.
 *
 * Read-only extension for content-shared pages (Section VI-B of the
 * paper): RO-shared lines are clean by construction, so memory may
 * always provide their data, and memory hands out small token
 * bundles so that a per-VM provider copy can serve later intra-VM
 * reads cache-to-cache without violating token counting.
 */

#ifndef VSNOOP_COHERENCE_PROTOCOL_HH_
#define VSNOOP_COHERENCE_PROTOCOL_HH_

#include <cstdint>

#include "mem/addr.hh"
#include "sim/core_set.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * A memory access presented to the coherence layer.  The page
 * sharing type travels with the access, mirroring the paper's TLB
 * extension that exposes the page-table sharing bits on every
 * coherence transaction.
 */
struct MemAccess
{
    HostAddr addr{0};
    bool isWrite = false;
    /** Requesting VM (kInvalidVm for hypervisor accesses). */
    VmId vm = kInvalidVm;
    PageType pageType = PageType::VmPrivate;
};

/**
 * Snoop request kinds.
 */
enum class SnoopKind : std::uint8_t
{
    /** Transient read: wants data and one token. */
    GetS,
    /** Transient write/upgrade: wants data and all tokens. */
    GetX,
};

/**
 * A snoop request as delivered to a remote cache controller or a
 * memory controller.
 */
struct SnoopMsg
{
    SnoopKind kind = SnoopKind::GetS;
    /** Line-aligned target address. */
    HostAddr line{0};
    CoreId requester = kInvalidCore;
    VmId requesterVm = kInvalidVm;
    PageType pageType = PageType::VmPrivate;
    /** Persistent-mode request: holders must surrender everything. */
    bool persistent = false;
    /**
     * Provider-match mask for RO-shared reads: a cache responds to
     * a non-owner RO-shared GetS only if it is the designated
     * provider for one of the VMs in this mask (requester VM, plus
     * the friend VM under the friend-VM policy).
     */
    std::uint32_t providerMask = 0;
    /**
     * Tokens memory should grant on an RO-shared read.  Policies
     * that rely on per-VM provider copies request a bundle (so the
     * provider can re-gift tokens cache-to-cache); memory-direct
     * requests exactly one so that up to numCores sharers never
     * exhaust memory's token pool.
     */
    std::uint32_t roBundle = 1;
};

/**
 * A token/data response returning to a requester (or tokens
 * bouncing back to memory).
 */
struct ResponseMsg
{
    HostAddr line{0};
    /** Tokens carried, including the owner token when owner set. */
    std::uint32_t tokens = 0;
    bool owner = false;
    /** Carries the line's data. */
    bool hasData = false;
    /** Data differs from memory (only meaningful with owner). */
    bool dirty = false;
    /**
     * Requester should become the RO-shared provider for its VM
     * (set by memory responses and by provider-transferring
     * caches).
     */
    bool makeProvider = false;
    /** Data origin for Table VI accounting. */
    CoreId sourceCore = kInvalidCore;
    /** VM owning the responding cache line (data-source class). */
    VmId sourceVm = kInvalidVm;
    /** True when the response came from a memory controller. */
    bool fromMemory = false;
    /**
     * @{ Critical-path stamps (trace/critpath.hh): the tick the
     * snoop reached the responder and the tick the response left
     * it.  Stamped centrally in CoherenceSystem::sendResponseToCore;
     * no protocol effect.
     */
    Tick reqArrive = 0;
    Tick depart = 0;
    /** @} */
};

/**
 * Why a snoop-target policy chose the destination set it did.
 * Carried on SnoopTargets so the tracing layer can attribute every
 * broadcast-vs-multicast decision without re-deriving policy state
 * (see trace/trace.hh).
 */
enum class FilterReason : std::uint8_t
{
    /** Non-filtering policy (TokenB baseline, test policies). */
    Baseline,
    /** Hypervisor access or RW-shared page: must broadcast. */
    HypervisorShared,
    /** VM-private page: multicast within the requester's vCPU map. */
    VmPrivate,
    /** RO-shared (content-shared) page, per the active RoPolicy. */
    RoShared,
    /** A filtered request fell back to broadcast on a late retry. */
    RetryFallback,
    /** Persistent-mode request: unconditional broadcast. */
    Persistent,
};

/** Number of FilterReason values. */
constexpr std::size_t kNumFilterReasons = 6;

/**
 * Destination set chosen by a snoop-target policy for one request
 * attempt.
 */
struct SnoopTargets
{
    /** Remote cores to snoop (the requester itself is excluded). */
    CoreSet cores;
    /** Snoop the line's memory controller as well. */
    bool memory = true;
    /** Provider-match mask forwarded into the snoop message. */
    std::uint32_t providerMask = 0;
    /** RO-shared token bundle hint forwarded to memory. */
    std::uint32_t roBundle = 4;
    /** Policy attribution for tracing (no protocol effect). */
    FilterReason reason = FilterReason::Baseline;
};

/**
 * Protocol tuning knobs.
 */
struct ProtocolConfig
{
    /** Cores in the system (also tokens per line). */
    std::uint32_t numCores = 16;
    /** L1 hit latency in ticks (Table II; used when L1s are
     *  modelled). */
    Tick l1Latency = 2;
    /** L2 hit latency in ticks (Table II). */
    Tick l2Latency = 10;
    /** DRAM access latency in ticks. */
    Tick memLatency = 80;
    /** Memory-controller latency for token-only (no data) replies. */
    Tick memTokenLatency = 6;
    /** Ticks a transient attempt waits before retrying. */
    Tick retryWindow = 400;
    /** Transient attempts before falling back to persistent mode. */
    std::uint32_t maxTransientAttempts = 4;
    /** Re-broadcast window for persistent requests. */
    Tick persistentWindow = 600;
    /** Token bundle memory grants on RO-shared reads. */
    std::uint32_t roTokenBundle = 4;
    /** Request/ack/control message payload bytes. */
    std::uint32_t controlBytes = 8;
    /** Data message bytes (64B line + 8B header). */
    std::uint32_t dataBytes = 72;
    /**
     * Tag-port cycles one snoop lookup occupies, charged to the
     * inter-VM interference matrix (trace/critpath.hh).  Pure
     * accounting — snoop responses stay in-tick; the timing model
     * is unchanged.
     */
    Tick tagLookupCycles = 3;
};

/**
 * Cache geometry for the private L2s.
 */
struct CacheGeometry
{
    /** Capacity in bytes (Table II: 256 KB). */
    std::uint64_t sizeBytes = 256 * 1024;
    /** Associativity (Table II: 8-way). */
    std::uint32_t ways = 8;
    /**
     * Private L1 capacity in bytes; 0 disables L1 modelling (the
     * workload generators then emit post-L1 streams directly, the
     * default methodology).  When enabled, the L1 is inclusive in
     * the L2 and write-through: the L2 remains the sole coherence
     * point and snoops probe L2 tags only.
     */
    std::uint64_t l1SizeBytes = 0;
    /** L1 associativity (Table II: 4-way). */
    std::uint32_t l1Ways = 4;
};


/** Data-source classes for Table VI accounting. */
enum class DataSource : std::uint8_t
{
    /** Supplied by a cache belonging to the requesting VM. */
    CacheIntraVm,
    /** Supplied by a cache of the requester's friend VM. */
    CacheFriendVm,
    /** Supplied by a cache of some other VM. */
    CacheOtherVm,
    /** Supplied by main memory. */
    Memory,
};

/** Number of DataSource values. */
constexpr std::size_t kNumDataSources = 4;

} // namespace vsnoop

#endif // VSNOOP_COHERENCE_PROTOCOL_HH_
