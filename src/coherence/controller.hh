/**
 * @file
 * Per-core token-coherence cache controller.
 *
 * Each core owns a private L2 (the coherence point, Table II) and a
 * controller that turns demand accesses into token-coherence
 * transactions: it multicasts transient snoop requests to the
 * destination set chosen by the active SnoopTargetPolicy, collects
 * token/data responses in an MSHR, retries with (policy-driven)
 * wider destination sets on timeout, and escalates to an arbitrated
 * persistent request when transient attempts keep failing.
 *
 * See protocol.hh for the token rules the controller enforces.
 */

#ifndef VSNOOP_COHERENCE_CONTROLLER_HH_
#define VSNOOP_COHERENCE_CONTROLLER_HH_

#include <optional>

#include "coherence/protocol.hh"
#include "mem/cache.hh"
#include "mem/residence.hh"
#include "sim/flat_table.hh"
#include "sim/small_fn.hh"
#include "sim/stats.hh"
#include "trace/critpath.hh"

namespace vsnoop
{

class CoherenceSystem;

/**
 * Completion callback: invoked when the access is globally
 * performed.
 *
 * @param done_at Tick at which the data is usable by the core.
 * @param source Where the data came from (DataSource::CacheIntraVm
 *        for plain L2 hits).
 * @param was_miss True when the access missed in the private L2 and
 *        required a coherence transaction.
 */
using AccessCallback =
    SmallFn<void(Tick done_at, DataSource source, bool was_miss)>;

/**
 * The per-core controller.
 */
class CoherenceController
{
  public:
    /**
     * @param system Owning coherence system (message fabric).
     * @param core This controller's core id.
     * @param geometry Private cache geometry (L2 mandatory, L1
     *        optional).
     * @param num_vms VMs tracked by the residence counters.
     */
    CoherenceController(CoherenceSystem &system, CoreId core,
                        const CacheGeometry &geometry,
                        std::size_t num_vms);

    CoherenceController(const CoherenceController &) = delete;
    CoherenceController &operator=(const CoherenceController &) = delete;

    CoreId core() const { return core_; }
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }
    /** True when an L1 is modelled in front of the L2. */
    bool hasL1() const { return l1_.has_value(); }
    /** The L1 tag store; only valid when hasL1(). */
    Cache &l1() { return *l1_; }
    ResidenceCounters &residence() { return residence_; }
    const ResidenceCounters &residence() const { return residence_; }

    /**
     * Issue a demand access at the current tick.  At most one
     * outstanding transaction per line is supported (the in-order
     * core model blocks on misses, so this never triggers).
     */
    void access(const MemAccess &access, AccessCallback callback);

    /** Deliver a snoop request (called by the system at arrival). */
    void handleSnoop(const SnoopMsg &msg);

    /** Deliver a token/data response (at arrival). */
    void handleResponse(const ResponseMsg &msg);

    /** The persistent arbiter granted this core's pending request. */
    void persistentGranted(HostAddr line);

    /** True when a transaction for @p line is outstanding. */
    bool hasMshr(HostAddr line) const;

    /** Number of outstanding transactions. */
    std::size_t mshrCount() const { return mshrs_.size(); }

    /** Allocated MSHR table slots. */
    std::size_t mshrCapacity() const { return mshrs_.capacity(); }

    /**
     * Attach an internals counter block to the MSHR table
     * (sim/perfmon.hh); nullptr detaches.  All controllers of one
     * system share a single block, so it aggregates the chip's MSHR
     * probe behavior.
     */
    void setMshrPerf(FlatTablePerf *perf) { mshrs_.setPerf(perf); }

    /**
     * Sum of tokens (and owner count) currently parked in full-miss
     * MSHRs, for the system-wide conservation check.
     */
    void sumMshrTokens(HostAddr line, std::uint32_t &tokens,
                       std::uint32_t &owners) const;

    /** Append the line numbers of all outstanding MSHRs. */
    void collectMshrLines(std::vector<std::uint64_t> &out) const;

    /**
     * Evict every VM-private line belonging to @p vm (the paper's
     * "selective flush" alternative, Section IV-B): tokens (and
     * dirty data) return to memory, the residence counter drains to
     * zero, and the core becomes removable from the VM's map.
     * Lines pinned under an outstanding upgrade are skipped.
     *
     * @return Number of lines flushed.
     */
    std::uint64_t flushVmPrivateLines(VmId vm);

    /** @{ Per-controller statistics. */
    /** Remote snoop requests looked up in this cache. */
    Counter snoopsReceived;
    /** Snoops that found (and acted on) a matching line. */
    Counter snoopHits;
    /** Demand accesses absorbed by the L1 (when modelled). */
    Counter l1Hits;
    /** @} */

  private:
    /** In-flight transaction state. */
    struct Mshr
    {
        MemAccess access;
        AccessCallback callback;
        SnoopKind kind = SnoopKind::GetS;
        /** Upgrade: the line is still cached (and pinned). */
        bool upgrade = false;
        std::uint32_t attempt = 1;
        bool persistent = false;
        /** Filter decision of the first transient attempt. */
        FilterReason reason = FilterReason::Baseline;
        bool waitingGrant = false;
        /** Tokens collected (full-miss mode only). */
        std::uint32_t tokens = 0;
        bool owner = false;
        bool haveData = false;
        bool dirtyData = false;
        bool makeProvider = false;
        DataSource dataSource = DataSource::Memory;
        Tick issued = 0;
        /** Generation for ignoring stale timeout events. */
        std::uint64_t timeoutGen = 0;
        /**
         * @{ Critical-path cursor (trace/critpath.hh): every tick
         * of [issued, completion] is charged to exactly one segment
         * as the cursor sweeps forward, so the segments sum to the
         * end-to-end latency by construction.
         */
        Tick segMark = 0;
        std::uint64_t seg[kNumCritSegments] = {};
        /** @} */

        /** Charge [segMark, up_to) to @p segment, advancing the
         *  cursor; no-op when the cursor is already past @p up_to. */
        void
        charge(Tick up_to, CritSegment segment)
        {
            if (up_to > segMark) {
                seg[static_cast<std::size_t>(segment)] +=
                    up_to - segMark;
                segMark = up_to;
            }
        }
    };

    /** Multicast the current attempt's snoops and arm the timer. */
    void issueAttempt(Mshr &mshr);

    /** Timer fired for the given generation. */
    void onTimeout(std::uint64_t line_num, std::uint64_t gen);

    /** Test for and perform completion. */
    void tryComplete(Mshr &mshr);

    /** Install a completed full-miss line, evicting a victim. */
    void installLine(Mshr &mshr);

    /** Evict @p victim, returning its tokens (and data) to memory. */
    void evict(CacheLine &victim);

    /** Respond to a snoop from the cached line @p line. */
    void respondFromLine(const SnoopMsg &msg, CacheLine &line);

    /**
     * Remove an L2 line, preserving L1 inclusion (the L1 copy, if
     * any, is invalidated first).  All L2 removals go through here.
     */
    void removeL2(CacheLine &line);

    /** Install/refresh the L1 copy after an L2 hit or fill. */
    void fillL1(HostAddr line_addr, VmId vm, PageType type);

    CoherenceSystem &system_;
    CoreId core_;
    Cache cache_;
    /** Optional inclusive write-through L1 in front of the L2. */
    std::optional<Cache> l1_;
    ResidenceCounters residence_;
    FlatMap<Mshr> mshrs_;
};

} // namespace vsnoop

#endif // VSNOOP_COHERENCE_CONTROLLER_HH_
