#include "coherence/controller.hh"

#include <algorithm>

#include "coherence/system.hh"
#include "sim/logging.hh"
#include "trace/pagemon.hh"
#include "trace/trace.hh"

namespace vsnoop
{

namespace
{

/** Trace record pre-filled with one transaction's identity. */
TraceRecord
traceBase(TraceEventKind kind, Tick tick, CoreId core,
          const MemAccess &access, SnoopKind snoop_kind)
{
    TraceRecord r;
    r.kind = kind;
    r.tick = tick;
    r.core = core;
    r.vm = access.vm;
    r.pageType = access.pageType;
    r.snoopKind = snoop_kind;
    r.line = access.addr.lineAligned().lineNum();
    return r;
}

} // namespace

CoherenceController::CoherenceController(CoherenceSystem &system,
                                         CoreId core,
                                         const CacheGeometry &geometry,
                                         std::size_t num_vms)
    : system_(system), core_(core),
      cache_(geometry.sizeBytes, geometry.ways), residence_(num_vms)
{
    cache_.setObserver(&residence_);
    // In-order cores block on misses, so the MSHR table stays tiny.
    // The reservation is deliberately larger than the live set:
    // every completed transaction leaves a tombstone, and the table
    // rehashes in place once tombstones reach the load bound, so
    // extra headroom amortizes that cleanup over more transactions.
    mshrs_.reserve(128);
    if (geometry.l1SizeBytes > 0)
        l1_.emplace(geometry.l1SizeBytes, geometry.l1Ways);
}

void
CoherenceController::removeL2(CacheLine &line)
{
    // Inclusion: the L1 may never hold a line the L2 does not.
    if (l1_) {
        CacheLine *l1_line = l1_->find(line.addr);
        if (l1_line != nullptr)
            l1_->remove(*l1_line);
    }
    cache_.remove(line);
}

void
CoherenceController::fillL1(HostAddr line_addr, VmId vm, PageType type)
{
    if (!l1_)
        return;
    CacheLine *existing = l1_->find(line_addr);
    if (existing != nullptr) {
        l1_->touch(*existing);
        return;
    }
    CacheLine &victim = l1_->victimFor(line_addr);
    // Write-through L1: victims are always clean; drop silently.
    if (victim.valid)
        l1_->remove(victim);
    l1_->install(victim, line_addr, vm, type, /*tokens=*/1,
                 /*owner=*/false, /*dirty=*/false);
}

bool
CoherenceController::hasMshr(HostAddr line) const
{
    return mshrs_.contains(line.lineAligned().lineNum());
}

void
CoherenceController::sumMshrTokens(HostAddr line, std::uint32_t &tokens,
                                   std::uint32_t &owners) const
{
    const Mshr *mshr = mshrs_.find(line.lineAligned().lineNum());
    if (mshr == nullptr || mshr->upgrade)
        return;
    tokens += mshr->tokens;
    if (mshr->owner)
        owners += 1;
}

void
CoherenceController::collectMshrLines(std::vector<std::uint64_t> &out) const
{
    mshrs_.forEach([&out](std::uint64_t line_num, const Mshr &) {
        out.push_back(line_num);
    });
}

std::uint64_t
CoherenceController::flushVmPrivateLines(VmId vm)
{
    std::vector<CacheLine *> lines =
        cache_.collectLines([vm](const CacheLine &line) {
            return line.vm == vm &&
                   line.pageType == PageType::VmPrivate &&
                   !line.pinned;
        });
    for (CacheLine *line : lines)
        evict(*line);
    return lines.size();
}

void
CoherenceController::access(const MemAccess &access,
                            AccessCallback callback)
{
    const ProtocolConfig &cfg = system_.config();
    EventQueue &eq = system_.eventQueue();
    HostAddr line_addr = access.addr.lineAligned();

    vsnoop_assert(!(access.isWrite && access.pageType == PageType::RoShared),
                  "write to an RO-shared page reached coherence; the "
                  "hypervisor must break content sharing (COW) first");
    vsnoop_assert(!hasMshr(line_addr),
                  "second outstanding access to line ", line_addr.raw(),
                  " from core ", core_);

    // Optional L1 in front of the L2 (write-through: writes always
    // proceed to the L2, which owns coherence permissions).
    if (l1_ && !access.isWrite) {
        CacheLine *l1_line = l1_->find(line_addr);
        if (l1_line != nullptr) {
            l1_->touch(*l1_line);
            l1_->hits.inc();
            l1Hits.inc();
            callback(eq.now() + cfg.l1Latency, DataSource::CacheIntraVm,
                     false);
            return;
        }
        l1_->misses.inc();
    }

    CacheLine *line = cache_.find(line_addr);
    bool hit = false;
    if (line != nullptr) {
        if (!access.isWrite) {
            hit = true;
        } else {
            // A write hit needs write permission: owner plus every
            // token (M/E).  Anything less is an upgrade miss.
            hit = line->owner &&
                  line->tokens == system_.memory().tokensPerLine();
        }
    }

    if (hit) {
        cache_.touch(*line);
        if (access.isWrite)
            line->dirty = true;
        cache_.hits.inc();
        system_.stats.l2Hits.inc();
        fillL1(line_addr, access.vm, access.pageType);
        Tick done = eq.now() + cfg.l2Latency;
        callback(done, DataSource::CacheIntraVm, false);
        return;
    }

    cache_.misses.inc();
    system_.stats.transactions.inc();
    if (access.isWrite)
        system_.stats.writeTransactions.inc();
    else
        system_.stats.readTransactions.inc();
    // The requester's own (missing) tag lookup counts as one snoop
    // lookup, so that a broadcast over n cores costs n lookups
    // total, matching the paper's normalization.
    system_.stats.snoopLookups.inc();
    if (CritPathAccountant *cp = system_.critpath())
        cp->snoopLookupLocal(access.vm);
    // The page monitor charges at the same two sites as the
    // interference matrix (here and at remote delivery) so its
    // per-page lookup sum reconciles with both.
    if (PageMon *pm = system_.pagemon())
        pm->miss(line_addr, access.vm);

    Mshr mshr;
    mshr.access = access;
    mshr.access.addr = line_addr;
    mshr.callback = std::move(callback);
    mshr.kind = access.isWrite ? SnoopKind::GetX : SnoopKind::GetS;
    mshr.issued = eq.now();
    mshr.segMark = eq.now();
    if (line != nullptr) {
        // Upgrade: keep the tokens in the cache line and pin it so
        // it cannot be chosen as an eviction victim while the
        // transaction is outstanding.
        vsnoop_assert(access.isWrite, "read miss with a valid line");
        mshr.upgrade = true;
        mshr.haveData = true;
        line->pinned = true;
        cache_.touch(*line);
    }
    if (TraceSink *t = system_.traceFor(mshr.access.addr)) {
        t->record(traceBase(TraceEventKind::RequestIssue, eq.now(),
                            core_, mshr.access, mshr.kind));
    }
    auto [slot, inserted] =
        mshrs_.emplace(line_addr.lineNum(), std::move(mshr));
    vsnoop_assert(inserted, "duplicate MSHR");
    issueAttempt(*slot);
}

void
CoherenceController::issueAttempt(Mshr &mshr)
{
    const ProtocolConfig &cfg = system_.config();
    EventQueue &eq = system_.eventQueue();
    HostAddr line_addr = mshr.access.addr;

    // Everything since the cursor last advanced was spent getting
    // to this (re-)issue: grant waits and persistent re-broadcast
    // windows under persistent mode, dead transient-window tails on
    // retries, issue-side queueing on the first attempt (zero in
    // the current model, kept for schema completeness).
    mshr.charge(eq.now(),
                mshr.persistent ? CritSegment::PersistentEscalation
                : mshr.attempt > 1 ? CritSegment::RetryBackoff
                                   : CritSegment::MshrWait);

    SnoopTargets targets;
    if (mshr.persistent) {
        // Persistent requests are the forward-progress guarantee:
        // they bypass any filtering policy and reach every possible
        // token holder.
        targets.cores = CoreSet::firstN(cfg.numCores);
        targets.memory = true;
        targets.providerMask = ~std::uint32_t{0};
        targets.roBundle = 1;
        targets.reason = FilterReason::Persistent;
    } else {
        targets = system_.policy().targets(core_, mshr.access,
                                           mshr.attempt);
    }
    targets.cores.remove(core_);
    // Latency histograms attribute the whole transaction to the
    // filter class the policy chose up front, not to a later
    // retry's widened set.
    if (!mshr.persistent && mshr.attempt == 1)
        mshr.reason = targets.reason;

    // Per-page reason attribution covers every attempt (persistent
    // re-broadcasts included), mirroring the FilterDecision record.
    if (PageMon *pm = system_.pagemon())
        pm->filterReasonCharge(line_addr, targets.reason);

    if (TraceSink *t = system_.traceFor(mshr.access.addr)) {
        TraceRecord r = traceBase(TraceEventKind::FilterDecision,
                                  eq.now(), core_, mshr.access,
                                  mshr.kind);
        r.reason = targets.reason;
        r.targets = targets.cores.mask();
        r.memory = targets.memory;
        r.broadcast = targets.cores.count() + 1 >= cfg.numCores;
        r.attempt = static_cast<std::uint8_t>(
            std::min<std::uint32_t>(mshr.attempt, 255));
        r.persistent = mshr.persistent;
        t->record(r);
    }

    SnoopMsg msg;
    msg.kind = mshr.kind;
    msg.line = line_addr;
    msg.requester = core_;
    msg.requesterVm = mshr.access.vm;
    msg.pageType = mshr.access.pageType;
    msg.persistent = mshr.persistent;
    msg.providerMask = targets.providerMask;
    msg.roBundle = targets.roBundle;

    system_.sendSnoops(core_, msg, targets);

    // Arm (or re-arm) the retry timer.  Stale timers are ignored
    // via the generation counter.
    std::uint64_t gen = ++mshr.timeoutGen;
    std::uint64_t line_num = line_addr.lineNum();
    Tick window = mshr.persistent ? cfg.persistentWindow : cfg.retryWindow;
    eq.scheduleFnIn(window, [this, line_num, gen] {
        onTimeout(line_num, gen);
    });
}

void
CoherenceController::onTimeout(std::uint64_t line_num, std::uint64_t gen)
{
    Mshr *found = mshrs_.find(line_num);
    if (found == nullptr || found->timeoutGen != gen)
        return; // completed or re-armed since
    Mshr &mshr = *found;
    const ProtocolConfig &cfg = system_.config();

    if (mshr.waitingGrant)
        return; // parked at the persistent arbiter

    if (mshr.persistent) {
        // Tokens may still be converging on memory; re-broadcast.
        issueAttempt(mshr);
        return;
    }

    system_.stats.retries.inc();
    mshr.attempt++;
    if (mshr.attempt > cfg.maxTransientAttempts) {
        // Escalate: wait for the arbiter, then broadcast
        // persistent requests until the tokens arrive.  The failed
        // window's tail is retry time; everything from here to the
        // first persistent issue is escalation time.
        mshr.charge(system_.eventQueue().now(),
                    CritSegment::RetryBackoff);
        mshr.waitingGrant = true;
        system_.stats.persistentRequests.inc();
        if (TraceSink *t = system_.traceFor(mshr.access.addr)) {
            TraceRecord r =
                traceBase(TraceEventKind::PersistentEscalation,
                          system_.eventQueue().now(), core_,
                          mshr.access, mshr.kind);
            r.attempt = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(mshr.attempt, 255));
            r.persistent = true;
            t->record(r);
        }
        system_.requestPersistent(mshr.access.addr, core_);
        return;
    }
    if (TraceSink *t = system_.traceFor(mshr.access.addr)) {
        TraceRecord r = traceBase(TraceEventKind::Retry,
                                  system_.eventQueue().now(), core_,
                                  mshr.access, mshr.kind);
        r.attempt = static_cast<std::uint8_t>(
            std::min<std::uint32_t>(mshr.attempt, 255));
        t->record(r);
    }
    issueAttempt(mshr);
}

void
CoherenceController::persistentGranted(HostAddr line)
{
    Mshr *found = mshrs_.find(line.lineAligned().lineNum());
    if (found == nullptr) {
        // Completed while queued (e.g. straggler responses finished
        // the transient attempt); hand the grant straight back.
        system_.releasePersistent(line, core_);
        return;
    }
    Mshr &mshr = *found;
    mshr.waitingGrant = false;
    mshr.persistent = true;
    issueAttempt(mshr);
}

void
CoherenceController::handleSnoop(const SnoopMsg &msg)
{
    snoopsReceived.inc();
    std::uint64_t line_num = msg.line.lineNum();
    CacheLine *line = cache_.find(msg.line);

    // Persistent requests must also drain tokens parked in a
    // competing full-miss MSHR, or two starving writers could
    // deadlock holding partial token sets.
    if (msg.persistent) {
        Mshr *found = mshrs_.find(line_num);
        if (found != nullptr && !found->upgrade &&
            (found->tokens > 0 || found->owner)) {
            Mshr &loser = *found;
            ResponseMsg resp;
            resp.line = msg.line;
            resp.tokens = loser.tokens;
            resp.owner = loser.owner;
            resp.hasData = loser.haveData;
            resp.dirty = loser.dirtyData;
            resp.sourceCore = core_;
            resp.sourceVm = loser.access.vm;
            loser.tokens = 0;
            loser.owner = false;
            loser.haveData = false;
            loser.dirtyData = false;
            system_.sendResponseToCore(core_, msg.requester, resp,
                                       system_.eventQueue().now());
        }
    }

    if (line == nullptr)
        return;

    snoopHits.inc();
    respondFromLine(msg, *line);
}

void
CoherenceController::respondFromLine(const SnoopMsg &msg, CacheLine &line)
{
    EventQueue &eq = system_.eventQueue();

    if (msg.kind == SnoopKind::GetX) {
        // Surrender everything.  If we were upgrading this line,
        // the upgrade degenerates to a full miss and will re-fetch
        // on its next attempt.
        ResponseMsg resp;
        resp.line = msg.line;
        resp.tokens = line.tokens;
        resp.owner = line.owner;
        resp.hasData = line.owner;
        resp.dirty = line.dirty;
        resp.sourceCore = core_;
        resp.sourceVm = line.vm;
        Mshr *upgrading = mshrs_.find(msg.line.lineNum());
        if (upgrading != nullptr && upgrading->upgrade) {
            upgrading->upgrade = false;
            upgrading->haveData = false;
        }
        cache_.invalidations.inc();
        removeL2(line);
        system_.sendResponseToCore(core_, msg.requester, resp, eq.now());
        return;
    }

    // GetS.
    bool is_ro = line.pageType == PageType::RoShared;
    bool provider_match =
        is_ro && msg.requesterVm < 32 &&
        (line.providerVms & msg.providerMask) != 0;

    if (line.owner) {
        ResponseMsg resp;
        resp.line = msg.line;
        resp.hasData = true;
        resp.sourceCore = core_;
        resp.sourceVm = line.vm;
        if (line.tokens >= 2) {
            resp.tokens = 1;
            line.tokens--;
        } else {
            // Only the owner token left: transfer ownership (and
            // responsibility for dirty data) to the requester.
            resp.tokens = 1;
            resp.owner = true;
            resp.dirty = line.dirty;
            if (is_ro)
                resp.makeProvider = true;
            cache_.invalidations.inc();
            removeL2(line);
        }
        if (is_ro && msg.requesterVm < 32) {
            // The requester becomes its VM's provider unless this
            // copy already serves that VM.
            if ((line.valid ? line.providerVms : 0U) &
                (1U << msg.requesterVm)) {
                resp.makeProvider = false;
            } else if (!resp.owner) {
                resp.makeProvider = true;
            }
        }
        system_.sendResponseToCore(core_, msg.requester, resp, eq.now());
        return;
    }

    if (provider_match && line.tokens >= 2) {
        // RO-shared fast path: the designated provider re-gifts one
        // token from its memory-granted bundle (Section VI-B).
        ResponseMsg resp;
        resp.line = msg.line;
        resp.tokens = 1;
        resp.hasData = true;
        resp.sourceCore = core_;
        resp.sourceVm = line.vm;
        line.tokens--;
        // The requester becomes provider for its own VM if this
        // copy is not already serving that VM (friend-VM case).
        if (msg.requesterVm < 32 &&
            (line.providerVms & (1U << msg.requesterVm)) == 0) {
            resp.makeProvider = true;
        }
        system_.sendResponseToCore(core_, msg.requester, resp, eq.now());
        return;
    }

    // Non-owner, non-provider holders stay silent on GetS; the
    // owner or memory supplies the data.
}

void
CoherenceController::handleResponse(const ResponseMsg &msg)
{
    Mshr *found = mshrs_.find(msg.line.lineNum());
    if (found == nullptr) {
        // Straggler after completion (or after a persistent
        // surrender): tokens must never be dropped, so bounce them
        // to memory.
        if (msg.tokens > 0 || msg.owner) {
            system_.stats.bouncedResponses.inc();
            system_.sendTokensToMemory(core_, msg.line, msg.tokens,
                                       msg.owner,
                                       msg.owner && msg.dirty);
        }
        return;
    }

    Mshr &mshr = *found;
    Tick now = system_.eventQueue().now();
    {
        // Critical-path decomposition: walk the response's stamps
        // forward from the cursor, clipping each leg to what this
        // response actually adds beyond already-charged time (a
        // stale response from an earlier attempt contributes only
        // its tail, keeping the sweep exact).  The final leg is the
        // response flight: data return if this response delivered
        // the line's data, token collection otherwise.
        bool had_data = mshr.upgrade || mshr.haveData;
        mshr.charge(std::min(msg.reqArrive, now),
                    CritSegment::ReqTraversal);
        mshr.charge(std::min(msg.depart, now),
                    CritSegment::SnoopLookup);
        mshr.charge(now, msg.hasData && !had_data
                             ? CritSegment::DataReturn
                             : CritSegment::TokenCollect);
    }
    if (msg.hasData && !msg.fromMemory) {
        // Cache-to-cache data delivery: interference bytes from the
        // supplying VM's cache into the requester.
        if (CritPathAccountant *cp = system_.critpath())
            cp->bytesDelivered(mshr.access.vm, msg.sourceVm,
                               system_.config().dataBytes);
    }
    if (mshr.upgrade) {
        CacheLine *line = cache_.find(msg.line);
        vsnoop_assert(line != nullptr && line->pinned,
                      "upgrade MSHR without its pinned line");
        line->tokens += msg.tokens;
        if (msg.owner)
            line->owner = true;
        if (msg.owner && msg.dirty)
            line->dirty = true;
    } else {
        mshr.tokens += msg.tokens;
        if (msg.owner)
            mshr.owner = true;
        if (msg.hasData) {
            if (!mshr.haveData) {
                mshr.haveData = true;
                if (msg.fromMemory) {
                    mshr.dataSource = DataSource::Memory;
                } else if (msg.sourceVm == mshr.access.vm) {
                    mshr.dataSource = DataSource::CacheIntraVm;
                } else if (msg.sourceVm ==
                           system_.friendOf(mshr.access.vm)) {
                    mshr.dataSource = DataSource::CacheFriendVm;
                } else {
                    mshr.dataSource = DataSource::CacheOtherVm;
                }
            }
            if (msg.dirty)
                mshr.dirtyData = true;
        }
        if (msg.makeProvider)
            mshr.makeProvider = true;
    }
    if (TraceSink *t = system_.traceFor(mshr.access.addr)) {
        TraceRecord r = traceBase(TraceEventKind::TokenCollect,
                                  system_.eventQueue().now(), core_,
                                  mshr.access, mshr.kind);
        r.tokens = msg.tokens;
        r.owner = msg.owner;
        r.memory = msg.fromMemory;
        t->record(r);
    }
    tryComplete(mshr);
}

void
CoherenceController::tryComplete(Mshr &mshr)
{
    std::uint32_t all = system_.memory().tokensPerLine();
    EventQueue &eq = system_.eventQueue();

    if (mshr.kind == SnoopKind::GetS) {
        if (!(mshr.haveData && mshr.tokens >= 1))
            return;
    } else if (mshr.upgrade) {
        CacheLine *line = cache_.find(mshr.access.addr);
        vsnoop_assert(line != nullptr, "upgrade lost its line");
        if (line->tokens != all)
            return;
        vsnoop_assert(line->owner, "all tokens but no owner token");
        line->dirty = true;
        line->pinned = false;
        cache_.touch(*line);
    } else {
        if (!(mshr.haveData && mshr.tokens == all))
            return;
    }

    if (!mshr.upgrade)
        installLine(mshr);

    // Invalidate any pending timeout and release a persistent grant.
    mshr.timeoutGen++;
    if (mshr.persistent)
        system_.releasePersistent(mshr.access.addr, core_);

    Tick done = eq.now() + system_.config().l2Latency;
    Tick latency = done - mshr.issued;
    // The trailing L2 fill closes the sweep: the cursor has covered
    // [issued, now] contiguously, so the segments now sum to the
    // end-to-end latency exactly (asserted by the accountant).
    mshr.charge(done, CritSegment::DataReturn);
    if (CritPathAccountant *cp = system_.critpath())
        cp->recordTransaction(mshr.seg, latency, mshr.reason,
                              mshr.access.vm);
    system_.stats.missLatency.sample(static_cast<double>(latency));
    system_.stats.latency.sample(latency);
    system_.stats.latencyByReason[static_cast<std::size_t>(mshr.reason)]
        .sample(latency);
    bool retried = mshr.persistent || mshr.attempt > 1;
    (retried ? system_.stats.latencyRetried
             : system_.stats.latencyFirstTry).sample(latency);
    system_.stats.dataFrom[static_cast<std::size_t>(mshr.dataSource)]
        .inc();
    if (mshr.access.pageType == PageType::RoShared) {
        system_.stats.roMissLatency.sample(
            static_cast<double>(done - mshr.issued));
        system_.stats
            .roDataFrom[static_cast<std::size_t>(mshr.dataSource)].inc();
    }

    if (TraceSink *t = system_.traceFor(mshr.access.addr)) {
        TraceRecord r = traceBase(TraceEventKind::Completion, done,
                                  core_, mshr.access, mshr.kind);
        r.dataSource = mshr.dataSource;
        r.persistent = mshr.persistent;
        r.value = done - mshr.issued;
        t->record(r);
    }

    AccessCallback callback = std::move(mshr.callback);
    DataSource source = mshr.dataSource;
    mshrs_.erase(mshr.access.addr.lineNum());
    if (callback)
        callback(done, source, true);
}

void
CoherenceController::installLine(Mshr &mshr)
{
    CacheLine &victim = cache_.victimFor(mshr.access.addr);
    if (victim.valid)
        evict(victim);
    std::uint32_t all = system_.memory().tokensPerLine();
    bool is_write = mshr.kind == SnoopKind::GetX;
    vsnoop_assert(!is_write || (mshr.tokens == all && mshr.owner),
                  "write completing without write permission");
    CacheLine &line = cache_.install(
        victim, mshr.access.addr, mshr.access.vm, mshr.access.pageType,
        mshr.tokens, mshr.owner, is_write || mshr.dirtyData);
    if (mshr.access.pageType == PageType::RoShared && mshr.makeProvider &&
        mshr.access.vm < 32) {
        line.providerVms |= 1U << mshr.access.vm;
    }
    fillL1(mshr.access.addr, mshr.access.vm, mshr.access.pageType);
}

void
CoherenceController::evict(CacheLine &victim)
{
    bool dirty = victim.owner && victim.dirty;
    cache_.evictions.inc();
    if (dirty)
        system_.stats.dirtyWritebacks.inc();
    system_.sendTokensToMemory(core_, victim.addr, victim.tokens,
                               victim.owner, dirty);
    removeL2(victim);
}

} // namespace vsnoop
