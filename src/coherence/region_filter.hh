/**
 * @file
 * Idealized region-based snoop filter, for comparison with virtual
 * snooping.
 *
 * The paper's related work (RegionScout, Coarse-Grain Coherence
 * Tracking, In-Network Coherence Filtering) filters snoops by
 * tracking the shared/private state of coarse-grained memory
 * regions in hardware tables.  This class implements the *idealized*
 * form of that family: an oracle with perfect, instantaneous
 * knowledge of which caches hold lines of a region.
 *
 *  - If no remote cache holds any line of the request's region, the
 *    request goes straight to memory (the RegionScout/CGCT fast
 *    path).
 *  - Otherwise the request is multicast exactly to the caches that
 *    hold lines of the region (an upper bound no real table-based
 *    filter can beat, since real filters suffer false positives
 *    from evictions and table conflicts).
 *
 * Comparing virtual snooping against this oracle quantifies how
 * much of the region-filter family's headroom the VM-boundary
 * heuristic captures without any tracking hardware at all — the
 * paper's central storage-cost argument (Section VII).
 *
 * Note the oracle inspects cache contents on every request; it is a
 * modelling tool, not a buildable design, and is costed accordingly
 * only in snoop counts.
 */

#ifndef VSNOOP_COHERENCE_REGION_FILTER_HH_
#define VSNOOP_COHERENCE_REGION_FILTER_HH_

#include "coherence/policy.hh"
#include "sim/stats.hh"

namespace vsnoop
{

class CoherenceSystem;

/**
 * The oracle region filter.
 */
class IdealRegionFilterPolicy : public SnoopTargetPolicy
{
  public:
    /**
     * @param num_cores Cores in the system.
     * @param region_bytes Region granularity (RegionScout evaluates
     *        256 B - 16 KB; CGCT uses 512 B - 4 KB).
     */
    IdealRegionFilterPolicy(std::uint32_t num_cores,
                            std::uint64_t region_bytes = 1024);

    /** Attach to the system whose caches the oracle inspects. */
    void attach(CoherenceSystem &system) { system_ = &system; }

    SnoopTargets targets(CoreId requester, const MemAccess &access,
                         std::uint32_t attempt) override;

    /** @{ Statistics. */
    /** Requests that went memory-direct (region nowhere cached). */
    Counter memoryDirect;
    /** Requests multicast to the exact sharer set. */
    Counter exactMulticast;
    /** @} */

  private:
    std::uint32_t numCores_;
    std::uint64_t regionBytes_;
    CoherenceSystem *system_ = nullptr;
};

} // namespace vsnoop

#endif // VSNOOP_COHERENCE_REGION_FILTER_HH_
