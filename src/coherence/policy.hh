/**
 * @file
 * Snoop destination-set policies.
 *
 * A SnoopTargetPolicy decides, for each transaction attempt, which
 * remote cores (and whether the memory controller) receive the
 * snoop.  The broadcast TokenB baseline lives here; the virtual
 * snooping policy (the paper's contribution) lives in src/core/ and
 * implements the same interface.
 */

#ifndef VSNOOP_COHERENCE_POLICY_HH_
#define VSNOOP_COHERENCE_POLICY_HH_

#include "coherence/protocol.hh"

namespace vsnoop
{

/**
 * Destination-set selection interface.
 */
class SnoopTargetPolicy
{
  public:
    virtual ~SnoopTargetPolicy() = default;

    /**
     * Choose the snoop destinations for one attempt.
     *
     * @param requester Requesting core.
     * @param access The access (address, r/w, VM, page type).
     * @param attempt 1-based transient attempt number; policies may
     *        widen the set on retries (the counter-threshold scheme
     *        broadcasts from attempt 3, Section IV-B).
     * @return The destination set (requester excluded by contract).
     */
    virtual SnoopTargets targets(CoreId requester, const MemAccess &access,
                                 std::uint32_t attempt) = 0;

    /**
     * Notification that @p vcpu-mapped VM data may now be cached on
     * @p core: the default implementation ignores it; the virtual
     * snooping policy uses it to grow vCPU maps on migration.
     */
    virtual void noteLineCached(CoreId core, VmId vm) { (void)core;
                                                        (void)vm; }
};

/**
 * TokenB: broadcast every request to all other cores plus memory
 * (the paper's baseline).
 */
class TokenBPolicy : public SnoopTargetPolicy
{
  public:
    explicit TokenBPolicy(std::uint32_t num_cores)
        : allCores_(CoreSet::firstN(num_cores))
    {
    }

    SnoopTargets
    targets(CoreId requester, const MemAccess &access,
            std::uint32_t attempt) override
    {
        (void)access;
        (void)attempt;
        SnoopTargets t;
        t.cores = allCores_;
        t.cores.remove(requester);
        t.memory = true;
        // Under broadcast, any owner (or provider) may answer
        // RO-shared reads; match every VM.
        t.providerMask = ~std::uint32_t{0};
        return t;
    }

  private:
    CoreSet allCores_;
};

/**
 * Fixed-set multicast policy, for unit tests: always snoop the
 * given cores.
 */
class StaticPolicy : public SnoopTargetPolicy
{
  public:
    explicit StaticPolicy(CoreSet cores, bool memory = true)
        : cores_(cores), memory_(memory)
    {
    }

    SnoopTargets
    targets(CoreId requester, const MemAccess &access,
            std::uint32_t attempt) override
    {
        (void)access;
        (void)attempt;
        SnoopTargets t;
        t.cores = cores_;
        t.cores.remove(requester);
        t.memory = memory_;
        t.providerMask = ~std::uint32_t{0};
        return t;
    }

  private:
    CoreSet cores_;
    bool memory_;
};

} // namespace vsnoop

#endif // VSNOOP_COHERENCE_POLICY_HH_
