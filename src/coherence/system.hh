/**
 * @file
 * The chip-wide coherence system: controllers, memory, message
 * fabric, persistent-request arbitration and invariant checking.
 *
 * The system is the single place that touches the network: it
 * converts logical sends (snoop to core X, response to requester,
 * tokens back to memory) into timed deliveries via EventQueue, and
 * maintains the in-flight token ledger that makes system-wide token
 * conservation checkable at any instant — the key safety property
 * of token coherence.
 */

#ifndef VSNOOP_COHERENCE_SYSTEM_HH_
#define VSNOOP_COHERENCE_SYSTEM_HH_

#include <memory>
#include <vector>

#include "coherence/controller.hh"
#include "coherence/policy.hh"
#include "coherence/protocol.hh"
#include "mem/main_memory.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/flat_table.hh"

namespace vsnoop
{

class CritPathAccountant;
class HostProfiler;
class PageMon;
class TraceSink;

/**
 * Aggregated protocol statistics.
 */
struct CoherenceStats
{
    /** Coherence transactions (L2 misses and upgrades). */
    Counter transactions;
    Counter readTransactions;
    Counter writeTransactions;
    /** L2 demand hits. */
    Counter l2Hits;
    /**
     * Snoop lookups induced system-wide: one per transaction for
     * the requester's own tag check plus one per remote delivery.
     * This is the metric normalized in the paper's Figures 7/8.
     */
    Counter snoopLookups;
    /** Snoop requests delivered to remote cores. */
    Counter snoopsDelivered;
    /** Snoop requests delivered to memory controllers. */
    Counter memorySnoops;
    /** Transient retry attempts beyond the first. */
    Counter retries;
    /** Transactions that escalated to persistent requests. */
    Counter persistentRequests;
    /** Evictions that wrote dirty data back. */
    Counter dirtyWritebacks;
    /** Token messages bounced to memory with no waiting MSHR. */
    Counter bouncedResponses;
    /** Completed transactions by data source. */
    Counter dataFrom[kNumDataSources];
    /** Same, restricted to RO-shared (content-shared) lines. */
    Counter roDataFrom[kNumDataSources];
    /** Miss (transaction) latency in ticks. */
    Distribution missLatency;
    /** Miss latency restricted to RO-shared lines. */
    Distribution roMissLatency;
    /** Log2-bucketed miss latency, all transactions. */
    LatencyHistogram latency;
    /** Same, split by the first attempt's FilterReason. */
    LatencyHistogram latencyByReason[kNumFilterReasons];
    /** Transactions whose first transient attempt completed. */
    LatencyHistogram latencyFirstTry;
    /** Transactions that retried or went persistent. */
    LatencyHistogram latencyRetried;
};

/**
 * The coherence system.
 */
class CoherenceSystem
{
  public:
    /**
     * @param eq Simulation event queue.
     * @param network Interconnect (cores are nodes 0..N-1).
     * @param policy Snoop destination-set policy.
     * @param config Protocol timing/size knobs.
     * @param geometry Private L2 geometry.
     * @param num_vms VM count for the residence counter banks.
     */
    CoherenceSystem(EventQueue &eq, Network &network,
                    SnoopTargetPolicy &policy,
                    const ProtocolConfig &config,
                    const CacheGeometry &geometry, std::size_t num_vms);

    /** Issue a demand access from @p core at the current tick. */
    void access(CoreId core, const MemAccess &access,
                AccessCallback callback);

    CoherenceController &controller(CoreId core);
    const CoherenceController &controller(CoreId core) const;

    MainMemory &memory() { return memory_; }
    const MainMemory &memory() const { return memory_; }
    EventQueue &eventQueue() { return eq_; }
    const ProtocolConfig &config() const { return config_; }
    SnoopTargetPolicy &policy() { return policy_; }
    std::uint32_t numCores() const { return config_.numCores; }

    /** Establish the friend-VM pairing used for Table VI / Fig 10. */
    void setFriend(VmId vm, VmId friend_vm);

    /** Friend of @p vm, or kInvalidVm when none is configured. */
    VmId friendOf(VmId vm) const;

    /** @{ Message fabric, used by controllers. */
    void sendSnoops(CoreId from, const SnoopMsg &msg,
                    const SnoopTargets &targets);
    void sendResponseToCore(NodeId from_node, CoreId to,
                            const ResponseMsg &msg, Tick depart);
    void sendTokensToMemory(CoreId from, HostAddr line,
                            std::uint32_t tokens, bool owner,
                            bool dirty_data);
    /**
     * Charge a control message (e.g. vCPU-map synchronization) to
     * the network, without any protocol side effect.
     */
    void sendControl(NodeId from, NodeId to, std::uint32_t bytes);
    /** @} */

    /** @{ Persistent-request arbitration. */
    void requestPersistent(HostAddr line, CoreId core);
    void releasePersistent(HostAddr line, CoreId core);
    /** @} */

    /**
     * Attach (or detach, with nullptr) a transaction trace sink.
     * Controllers and policies emit lifecycle records through
     * trace(); the branch-on-null makes the hooks free when
     * tracing is off.  The sink must outlive the system.
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    /** The active trace sink, or nullptr when tracing is off. */
    TraceSink *trace() const { return trace_; }

    /**
     * The trace sink for records about @p addr, or nullptr.  With
     * page watchpoints active (trace/pagemon.hh), transaction
     * records are suppressed for lines outside the watched pages so
     * a --watch-page run traces exactly the pages it asked for;
     * without watchpoints this is trace().  Lifecycle records
     * (vCPU-map and page events) keep using trace() unfiltered.
     */
    TraceSink *traceFor(HostAddr addr) const;

    /**
     * Attach (or detach, with nullptr) the page-level monitor
     * (trace/pagemon.hh).  The controllers charge its per-page
     * counters at exactly the stats.snoopLookups charge sites
     * behind a branch-on-null, so the top-K page totals reconcile
     * with the counter and the interference-matrix total at any
     * instant; resetStats() resets it alongside both.  The monitor
     * must outlive the system.
     */
    void setPagemon(PageMon *pagemon) { pagemon_ = pagemon; }

    /** The active page monitor, or nullptr when detached. */
    PageMon *pagemon() const { return pagemon_; }

    /**
     * Attach (or detach, with nullptr) a host self-profiler.
     * Protocol work and network sends are bracketed with
     * ProfileScope guards that branch on the pointer, mirroring
     * the trace hooks.  The profiler must outlive the system.
     */
    void setProfiler(HostProfiler *profiler) { profiler_ = profiler; }

    /** The active profiler, or nullptr when profiling is off. */
    HostProfiler *profiler() const { return profiler_; }

    /**
     * Attach (or detach, with nullptr) a critical-path accountant
     * (trace/critpath.hh).  Controllers charge per-transaction
     * segment timelines and the fabric charges snoop deliveries to
     * the inter-VM interference matrix through critpath(); the
     * branch-on-null makes the hooks free when detached.  The
     * accountant must outlive the system, and resetStats() resets
     * it alongside the protocol counters so the matrix totals stay
     * reconcilable with CoherenceStats::snoopLookups.
     */
    void setCritPath(CritPathAccountant *accountant)
    {
        critpath_ = accountant;
    }

    /** The active accountant, or nullptr when detached. */
    CritPathAccountant *critpath() const { return critpath_; }

    /**
     * Attach (or detach, with nullptr) the perfmon counter blocks
     * (sim/perfmon.hh) to the protocol's FlatMap tables: every
     * controller's MSHR table (one shared block — chip-aggregate
     * probe behavior), the in-flight token ledger, and main
     * memory's token ledger.  The block must outlive the system.
     */
    void
    setPerf(PerfMon *perf)
    {
        FlatTablePerf *mshr_perf = perf ? &perf->mshrs : nullptr;
        for (auto &controller : controllers_)
            controller->setMshrPerf(mshr_perf);
        inflight_.setPerf(perf ? &perf->inflight : nullptr);
        memory_.setLedgerPerf(perf ? &perf->memoryLedger : nullptr);
    }

    /** Interval-sampled table occupancy (perfmon sampler hook). */
    void
    samplePerfOccupancy(PerfMon &perf) const
    {
        std::uint64_t mshr_entries = 0;
        for (const auto &controller : controllers_)
            mshr_entries += controller->mshrCount();
        perf.mshrs.occupancy.sample(mshr_entries);
        perf.inflight.occupancy.sample(inflight_.size());
        perf.memoryLedger.occupancy.sample(memory_.ledgerSize());
    }

    /** End-of-run table size/capacity snapshot (perfmon results). */
    void
    capturePerfSizes(PerfMon &perf) const
    {
        perf.mshrs.endSize = 0;
        perf.mshrs.endCapacity = 0;
        for (const auto &controller : controllers_) {
            perf.mshrs.endSize += controller->mshrCount();
            perf.mshrs.endCapacity += controller->mshrCapacity();
        }
        perf.inflight.endSize = inflight_.size();
        perf.inflight.endCapacity = inflight_.capacity();
        perf.memoryLedger.endSize = memory_.ledgerSize();
        perf.memoryLedger.endCapacity = memory_.ledgerCapacity();
    }

    /**
     * Verify token conservation and owner uniqueness across caches,
     * memory, MSHRs and in-flight messages.  Panics on violation.
     */
    void checkInvariants() const;

    /**
     * Zero all protocol, memory and per-controller statistics
     * (warmup boundary).  Protocol state is untouched.
     */
    void resetStats();

    /** Mesh node hosting the memory controller for @p line. */
    NodeId memNodeFor(HostAddr line) const;

    CoherenceStats stats;

  private:
    friend class CoherenceController;

    /** Deliver a snoop at a memory controller. */
    void handleMemorySnoop(const SnoopMsg &msg);

    /** network_.send bracketed with the Network profile phase. */
    Tick netSend(NodeId src, NodeId dst, std::uint32_t bytes,
                 MsgClass cls, Tick now);

    /** In-flight token ledger bookkeeping. */
    void inflightAdd(HostAddr line, std::uint32_t tokens, bool owner);
    void inflightRemove(HostAddr line, std::uint32_t tokens, bool owner);

    struct InflightState
    {
        std::uint32_t tokens = 0;
        std::uint32_t owners = 0;
    };

    EventQueue &eq_;
    Network &network_;
    TraceSink *trace_ = nullptr;
    HostProfiler *profiler_ = nullptr;
    CritPathAccountant *critpath_ = nullptr;
    PageMon *pagemon_ = nullptr;
    SnoopTargetPolicy &policy_;
    ProtocolConfig config_;
    MainMemory memory_;
    std::vector<std::unique_ptr<CoherenceController>> controllers_;
    std::vector<NodeId> memNodes_;
    FlatMap<InflightState> inflight_;
    /** Per-line FIFO of cores waiting for persistent-mode grants. */
    FlatMap<std::vector<CoreId>> persistent_;
    std::vector<VmId> friendOf_;
};

} // namespace vsnoop

#endif // VSNOOP_COHERENCE_SYSTEM_HH_
