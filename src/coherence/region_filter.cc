#include "coherence/region_filter.hh"

#include "coherence/system.hh"
#include "sim/logging.hh"

namespace vsnoop
{

IdealRegionFilterPolicy::IdealRegionFilterPolicy(
    std::uint32_t num_cores, std::uint64_t region_bytes)
    : numCores_(num_cores), regionBytes_(region_bytes)
{
    vsnoop_assert(region_bytes >= kLineBytes &&
                      region_bytes % kLineBytes == 0,
                  "region size must be a whole number of lines");
}

SnoopTargets
IdealRegionFilterPolicy::targets(CoreId requester,
                                 const MemAccess &access,
                                 std::uint32_t attempt)
{
    SnoopTargets t;
    t.memory = true;
    t.providerMask = ~std::uint32_t{0};

    if (system_ == nullptr || attempt > 1) {
        // Unattached, or a retry: fall back to broadcast (tokens
        // may be in flight, which even the oracle cannot see).
        t.cores = CoreSet::firstN(numCores_);
        t.cores.remove(requester);
        return t;
    }

    // Oracle lookup: which remote caches hold any line of the
    // region right now?
    std::uint64_t region_base =
        access.addr.raw() & ~(regionBytes_ - 1);
    std::uint64_t lines = regionBytes_ / kLineBytes;
    CoreSet sharers;
    for (CoreId core = 0; core < numCores_; ++core) {
        if (core == requester)
            continue;
        const Cache &cache = system_->controller(core).cache();
        for (std::uint64_t i = 0; i < lines; ++i) {
            HostAddr line(region_base + i * kLineBytes);
            if (cache.find(line) != nullptr) {
                sharers.add(core);
                break;
            }
        }
    }

    t.cores = sharers;
    if (sharers.empty())
        memoryDirect.inc();
    else
        exactMulticast.inc();
    return t;
}

} // namespace vsnoop
