#include "coherence/system.hh"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "trace/critpath.hh"
#include "trace/pagemon.hh"

namespace vsnoop
{

CoherenceSystem::CoherenceSystem(EventQueue &eq, Network &network,
                                 SnoopTargetPolicy &policy,
                                 const ProtocolConfig &config,
                                 const CacheGeometry &geometry,
                                 std::size_t num_vms)
    : eq_(eq), network_(network), policy_(policy), config_(config),
      memory_(config.numCores,
              std::min<std::uint32_t>(4, network.numNodes()),
              config.memLatency),
      friendOf_(num_vms, kInvalidVm)
{
    vsnoop_assert(config_.numCores <= network.numNodes(),
                  "more cores (", config_.numCores, ") than network nodes (",
                  network.numNodes(), ")");
    vsnoop_assert(config_.numCores <= CoreSet::kMaxCores,
                  "CoreSet supports at most 64 cores");
    controllers_.reserve(config_.numCores);
    for (CoreId c = 0; c < config_.numCores; ++c) {
        controllers_.push_back(std::make_unique<CoherenceController>(
            *this, c, geometry, num_vms));
    }
    // Memory controllers are spread evenly over the nodes.
    std::uint32_t mcs = memory_.numControllers();
    for (std::uint32_t i = 0; i < mcs; ++i)
        memNodes_.push_back(i * network.numNodes() / mcs);

    // Seed the flat tables at a working-set-sized footprint.  The
    // ledger is NOT reserved for its worst case (aggregate L2
    // capacity): a mostly-empty multi-megabyte table turns every
    // probe into a cache miss, which costs far more than the rare
    // deterministic rehash when a workload's sharing pattern
    // actually spreads tokens that wide.
    std::size_t l2_lines = geometry.sizeBytes >> kLineShift;
    memory_.reserveLedger(l2_lines);
    inflight_.reserve(8 * config_.numCores);
    persistent_.reserve(2 * config_.numCores);
}

CoherenceController &
CoherenceSystem::controller(CoreId core)
{
    vsnoop_assert(core < controllers_.size(), "bad core id ", core);
    return *controllers_[core];
}

const CoherenceController &
CoherenceSystem::controller(CoreId core) const
{
    vsnoop_assert(core < controllers_.size(), "bad core id ", core);
    return *controllers_[core];
}

void
CoherenceSystem::access(CoreId core, const MemAccess &access,
                        AccessCallback callback)
{
    controller(core).access(access, std::move(callback));
}

Tick
CoherenceSystem::netSend(NodeId src, NodeId dst, std::uint32_t bytes,
                         MsgClass cls, Tick now)
{
    if (critpath_ != nullptr) {
        SendInfo info;
        Tick arrive = network_.send(src, dst, bytes, cls, now, &info);
        critpath_->nocWait(cls, info.queueWait);
        return arrive;
    }
    return network_.send(src, dst, bytes, cls, now);
}

void
CoherenceSystem::setFriend(VmId vm, VmId friend_vm)
{
    vsnoop_assert(vm < friendOf_.size() && friend_vm < friendOf_.size(),
                  "friend pairing out of range");
    friendOf_[vm] = friend_vm;
}

VmId
CoherenceSystem::friendOf(VmId vm) const
{
    if (vm >= friendOf_.size())
        return kInvalidVm;
    return friendOf_[vm];
}

NodeId
CoherenceSystem::memNodeFor(HostAddr line) const
{
    return memNodes_[memory_.controllerFor(line)];
}

TraceSink *
CoherenceSystem::traceFor(HostAddr addr) const
{
    if (trace_ == nullptr)
        return nullptr;
    if (pagemon_ != nullptr && pagemon_->watchActive() &&
        !pagemon_->watches(addr)) {
        return nullptr;
    }
    return trace_;
}

void
CoherenceSystem::sendSnoops(CoreId from, const SnoopMsg &msg,
                            const SnoopTargets &targets)
{
    Tick now = eq_.now();
    targets.cores.forEach([&](CoreId target) {
        vsnoop_assert(target != from, "policy must exclude the requester");
        Tick arrive = netSend(from, target, config_.controlBytes,
                              MsgClass::Request, now);
        stats.snoopsDelivered.inc();
        stats.snoopLookups.inc();
        // Charged at send (next to snoopLookups) so the interference
        // matrix total reconciles with the counter at any instant,
        // warmup reset included.  The page monitor charges here for
        // the same reason: its per-page lookup sum must match too.
        if (critpath_ != nullptr)
            critpath_->snoopLookupRemote(msg.requesterVm, target);
        if (pagemon_ != nullptr)
            pagemon_->snoopDelivery(msg.line, msg.requesterVm, target);
        eq_.scheduleFn(arrive, [this, target, msg] {
            controller(target).handleSnoop(msg);
        });
    });
    if (targets.memory) {
        NodeId mc = memNodeFor(msg.line);
        Tick arrive = netSend(from, mc, config_.controlBytes,
                              MsgClass::Request, now);
        stats.memorySnoops.inc();
        eq_.scheduleFn(arrive, [this, msg] { handleMemorySnoop(msg); });
    }
}

void
CoherenceSystem::sendResponseToCore(NodeId from_node, CoreId to,
                                    const ResponseMsg &msg, Tick depart)
{
    std::uint32_t bytes =
        msg.hasData ? config_.dataBytes : config_.controlBytes;
    MsgClass cls = msg.hasData ? MsgClass::Data : MsgClass::Response;
    // Critical-path stamps: every response originates at the tick
    // its snoop was processed (caches and memory both respond from
    // the snoop-arrival event), so reqArrive is simply "now"; the
    // responder-side occupancy is whatever pushes depart past it
    // (memory access time — cache lookups respond in-tick).
    ResponseMsg stamped = msg;
    stamped.reqArrive = eq_.now();
    stamped.depart = std::max(depart, eq_.now());
    inflightAdd(msg.line, msg.tokens, msg.owner);
    Tick arrive = netSend(from_node, to, bytes, cls, stamped.depart);
    eq_.scheduleFn(arrive, [this, to, stamped] {
        inflightRemove(stamped.line, stamped.tokens, stamped.owner);
        controller(to).handleResponse(stamped);
    });
}

void
CoherenceSystem::sendTokensToMemory(CoreId from, HostAddr line,
                                    std::uint32_t tokens, bool owner,
                                    bool dirty_data)
{
    if (tokens == 0 && !owner)
        return;
    std::uint32_t bytes =
        dirty_data ? config_.dataBytes : config_.controlBytes;
    MsgClass cls = dirty_data ? MsgClass::Data : MsgClass::Response;
    NodeId mc = memNodeFor(line);
    inflightAdd(line, tokens, owner);
    Tick arrive = netSend(from, mc, bytes, cls, eq_.now());
    eq_.scheduleFn(arrive, [this, line, tokens, owner, dirty_data] {
        inflightRemove(line, tokens, owner);
        memory_.returnTokens(line, tokens, owner);
        if (dirty_data)
            memory_.writebacks.inc();
    });
}

void
CoherenceSystem::resetStats()
{
    stats = CoherenceStats{};
    // The accountant resets with the protocol counters: a snoop
    // sent before the boundary is dropped from both sides at once,
    // keeping matrix total == snoopLookups exactly.
    if (critpath_ != nullptr)
        critpath_->resetStats();
    if (pagemon_ != nullptr)
        pagemon_->resetStats();
    memory_.reads.reset();
    memory_.writebacks.reset();
    memory_.dataProvided.reset();
    for (auto &ctrl : controllers_) {
        ctrl->snoopsReceived.reset();
        ctrl->snoopHits.reset();
        ctrl->l1Hits.reset();
        Cache &cache = ctrl->cache();
        cache.hits.reset();
        cache.misses.reset();
        cache.evictions.reset();
        cache.invalidations.reset();
        if (ctrl->hasL1()) {
            ctrl->l1().hits.reset();
            ctrl->l1().misses.reset();
        }
    }
}

void
CoherenceSystem::sendControl(NodeId from, NodeId to, std::uint32_t bytes)
{
    netSend(from, to, bytes, MsgClass::Control, eq_.now());
}

void
CoherenceSystem::handleMemorySnoop(const SnoopMsg &msg)
{
    MemLineState st = memory_.state(msg.line);
    NodeId mc = memNodeFor(msg.line);
    Tick now = eq_.now();
    bool is_ro = msg.pageType == PageType::RoShared;

    if (msg.kind == SnoopKind::GetX) {
        if (st.tokens == 0)
            return;
        MemLineState taken =
            memory_.takeTokens(msg.line, st.tokens, true);
        ResponseMsg resp;
        resp.line = msg.line;
        resp.tokens = taken.tokens;
        resp.owner = taken.owner;
        // Memory data is current only when memory held the owner
        // token; otherwise a dirty cache owner supplies the data.
        resp.hasData = taken.owner;
        resp.fromMemory = true;
        Tick depart =
            now + (resp.hasData ? config_.memLatency
                                : config_.memTokenLatency);
        if (resp.hasData) {
            memory_.reads.inc();
            memory_.dataProvided.inc();
        }
        sendResponseToCore(mc, msg.requester, resp, depart);
        return;
    }

    // GetS.
    if (is_ro) {
        // RO-shared lines are clean by construction: memory may
        // always provide data, and grants a token bundle so the
        // requester can serve same-VM readers cache-to-cache.
        if (st.tokens == 0)
            return; // every token is cached; a retry will broadcast
        std::uint32_t bundle =
            std::max<std::uint32_t>(1, msg.roBundle);
        MemLineState taken = memory_.takeTokens(msg.line, bundle, true);
        ResponseMsg resp;
        resp.line = msg.line;
        resp.tokens = taken.tokens;
        resp.owner = taken.owner;
        resp.hasData = true;
        resp.makeProvider = true;
        resp.fromMemory = true;
        memory_.reads.inc();
        memory_.dataProvided.inc();
        sendResponseToCore(mc, msg.requester, resp,
                           now + config_.memLatency);
        return;
    }

    if (!st.owner)
        return; // a cache owner is responsible for the data
    MemLineState taken = memory_.takeTokens(msg.line, 1, true);
    vsnoop_assert(taken.tokens >= 1, "owner state without tokens");
    ResponseMsg resp;
    resp.line = msg.line;
    resp.tokens = taken.tokens;
    resp.owner = taken.owner;
    resp.hasData = true;
    resp.fromMemory = true;
    memory_.reads.inc();
    memory_.dataProvided.inc();
    sendResponseToCore(mc, msg.requester, resp, now + config_.memLatency);
}

void
CoherenceSystem::requestPersistent(HostAddr line, CoreId core)
{
    std::uint64_t key = line.lineAligned().lineNum();
    auto &queue = persistent_.getOrInsert(key);
    queue.push_back(core);
    if (queue.size() == 1) {
        // Line was unowned: grant immediately (next tick, to avoid
        // re-entering the controller from within its own call).
        eq_.scheduleFnIn(1, [this, line, core] {
            controller(core).persistentGranted(line);
        });
    }
}

void
CoherenceSystem::releasePersistent(HostAddr line, CoreId core)
{
    std::uint64_t key = line.lineAligned().lineNum();
    std::vector<CoreId> *queue = persistent_.find(key);
    vsnoop_assert(queue != nullptr && !queue->empty(),
                  "release of an unheld persistent grant");
    vsnoop_assert(queue->front() == core,
                  "persistent release out of order");
    queue->erase(queue->begin());
    if (queue->empty()) {
        persistent_.erase(key);
        return;
    }
    CoreId next = queue->front();
    eq_.scheduleFnIn(1, [this, line, next] {
        controller(next).persistentGranted(line);
    });
}

void
CoherenceSystem::inflightAdd(HostAddr line, std::uint32_t tokens,
                             bool owner)
{
    if (tokens == 0 && !owner)
        return;
    InflightState &st =
        inflight_.getOrInsert(line.lineAligned().lineNum());
    st.tokens += tokens;
    if (owner)
        st.owners += 1;
}

void
CoherenceSystem::inflightRemove(HostAddr line, std::uint32_t tokens,
                                bool owner)
{
    if (tokens == 0 && !owner)
        return;
    std::uint64_t key = line.lineAligned().lineNum();
    InflightState *st = inflight_.find(key);
    vsnoop_assert(st != nullptr, "in-flight ledger underflow");
    vsnoop_assert(st->tokens >= tokens && (!owner || st->owners >= 1),
                  "in-flight ledger underflow for line ", line.raw());
    st->tokens -= tokens;
    if (owner)
        st->owners -= 1;
    if (st->tokens == 0 && st->owners == 0)
        inflight_.erase(key);
}

void
CoherenceSystem::checkInvariants() const
{
    // Gather every line that deviates anywhere from the
    // all-at-memory default.
    std::unordered_set<std::uint64_t> lines;
    for (const auto &ctrl : controllers_) {
        ctrl->cache().forEachLine([&](const CacheLine &line) {
            lines.insert(line.addr.lineNum());
        });
        std::vector<std::uint64_t> mshr_lines;
        ctrl->collectMshrLines(mshr_lines);
        lines.insert(mshr_lines.begin(), mshr_lines.end());
    }
    memory_.forEachLedgerLine(
        [&](std::uint64_t line_num) { lines.insert(line_num); });
    inflight_.forEach([&](std::uint64_t line_num, const InflightState &) {
        lines.insert(line_num);
    });

    std::uint32_t expect = memory_.tokensPerLine();
    for (std::uint64_t line_num : lines) {
        HostAddr addr(line_num << kLineShift);
        std::uint32_t tokens = 0;
        std::uint32_t owners = 0;
        for (const auto &ctrl : controllers_) {
            const CacheLine *line = ctrl->cache().find(addr);
            if (line != nullptr) {
                tokens += line->tokens;
                if (line->owner)
                    owners++;
            }
            ctrl->sumMshrTokens(addr, tokens, owners);
        }
        MemLineState mem = memory_.state(addr);
        tokens += mem.tokens;
        if (mem.owner)
            owners++;
        const InflightState *inflight = inflight_.find(line_num);
        if (inflight != nullptr) {
            tokens += inflight->tokens;
            owners += inflight->owners;
        }
        vsnoop_assert(tokens == expect,
                      "token conservation violated for line ", addr.raw(),
                      ": ", tokens, " != ", expect);
        vsnoop_assert(owners == 1,
                      "owner uniqueness violated for line ", addr.raw(),
                      ": ", owners, " owners");
    }
}

} // namespace vsnoop
