/**
 * @file
 * Virtual snooping: the paper's contribution (Section IV).
 *
 * VirtualSnoopPolicy implements SnoopTargetPolicy by consulting the
 * per-VM vCPU map — the hardware's n-bit vCPU map registers, kept
 * synchronized by the hypervisor:
 *
 *  - VM-private pages: snoops are multicast to the requesting VM's
 *    vCPU map only;
 *  - RW-shared pages (hypervisor data, inter-VM channels): snoops
 *    broadcast, since the hypervisor may have pulled the data into
 *    any cache;
 *  - RO-shared pages (content-based sharing): handled per the
 *    configured RoPolicy — broadcast, memory-direct, intra-VM, or
 *    friend-VM (Section VI-B).
 *
 * Relocation support (Section IV-B): when a vCPU leaves a core, the
 * core stays in the VM's map until the per-VM cache residence
 * counter says no private line of the VM remains there.  Three
 * modes are modelled:
 *
 *  - Base: cores are never removed (vsnoop-base);
 *  - Counter: remove when the counter reaches zero;
 *  - CounterThreshold: remove speculatively when the counter drops
 *    below a small threshold; stranded tokens are recovered because
 *    transient attempt 3+ broadcasts (safe retry on Token
 *    Coherence).
 */

#ifndef VSNOOP_CORE_VSNOOP_HH_
#define VSNOOP_CORE_VSNOOP_HH_

#include <cstdint>
#include <vector>

#include "coherence/policy.hh"
#include "sim/core_set.hh"
#include "sim/stats.hh"
#include "virt/vcpu_map.hh"

namespace vsnoop
{

class CoherenceSystem;
class PageMon;
enum class TraceEventKind : std::uint8_t;

/** Relocation (vCPU map maintenance) modes, Section IV-B. */
enum class RelocationMode : std::uint8_t
{
    /** Never remove cores from a vCPU map (vsnoop-base). */
    Base,
    /** Remove a core when its residence counter reaches zero. */
    Counter,
    /** Remove speculatively below a threshold; rely on retry. */
    CounterThreshold,
    /**
     * The paper's alternative (discussed but not evaluated there):
     * when the counter drops below the threshold on a departed
     * core, flush the VM's remaining private lines so the counter
     * reaches zero and the core is removed exactly.  Trades flush
     * writeback traffic and controller complexity for retry-free
     * removal.
     */
    CounterFlush,
};

/** Content-shared (RO-shared) page request policies, Section VI-B. */
enum class RoPolicy : std::uint8_t
{
    /** Unoptimized: broadcast requests on content-shared pages. */
    Broadcast,
    /** Send only to the memory controller. */
    MemoryDirect,
    /** Send to the requester's vCPU map plus memory. */
    IntraVm,
    /** Send to the requester's and its friend VM's maps + memory. */
    FriendVm,
};

/** Human-readable names for reporting. */
const char *relocationModeName(RelocationMode mode);
const char *roPolicyName(RoPolicy policy);

/**
 * Virtual snooping configuration.
 */
struct VsnoopConfig
{
    RelocationMode relocation = RelocationMode::Counter;
    RoPolicy roPolicy = RoPolicy::Broadcast;
    /** Residence count below which CounterThreshold removes a core
     *  (the paper uses 10). */
    std::uint64_t counterThreshold = 10;
    /** Transient attempt at which filtered requests fall back to a
     *  broadcast (the paper: first two attempts use the map). */
    std::uint32_t broadcastAttempt = 3;
    /** Bytes per vCPU-map synchronization message. */
    std::uint32_t mapSyncBytes = 8;
    /**
     * Token bundle memory grants to a VM's first RO-shared reader
     * under the intra-VM / friend-VM policies (lets the provider
     * copy serve later same-VM readers cache-to-cache).
     */
    std::uint32_t roTokenBundle = 4;
};

/**
 * The virtual snooping policy and vCPU map register file.
 */
class VirtualSnoopPolicy : public SnoopTargetPolicy,
                           public VcpuMappingListener
{
  public:
    /**
     * @param num_cores Physical cores.
     * @param num_vms Virtual machines.
     * @param config Policy configuration.
     */
    VirtualSnoopPolicy(std::uint32_t num_cores, std::uint32_t num_vms,
                       const VsnoopConfig &config);

    /**
     * Attach to a coherence system: hooks every core's residence
     * counters and enables map-synchronization traffic accounting.
     * Must be called once, after the system is constructed.
     */
    void attach(CoherenceSystem &system);

    /** Configure a friend VM (used when roPolicy is FriendVm). */
    void setFriend(VmId vm, VmId friend_vm);

    /**
     * Attach (or detach, with nullptr) the page-level monitor
     * (trace/pagemon.hh): every first transient attempt reports its
     * filtered-vs-broadcast decision for the touched page, behind a
     * branch-on-null.  The monitor must outlive the policy.
     */
    void setPagemon(PageMon *pagemon) { pagemon_ = pagemon; }

    /** Current vCPU map (snoop domain) of @p vm. */
    CoreSet vcpuMap(VmId vm) const;

    /** Cores currently running @p vm (subset of the map). */
    CoreSet runningSet(VmId vm) const;

    // SnoopTargetPolicy interface.
    SnoopTargets targets(CoreId requester, const MemAccess &access,
                         std::uint32_t attempt) override;

    // VcpuMappingListener interface.
    void onVcpuPlaced(VCpuId vcpu, VmId vm, CoreId core) override;
    void onVcpuRemoved(VCpuId vcpu, VmId vm, CoreId core) override;

    /** Zero every policy statistic (warmup boundary). */
    void
    resetStats()
    {
        mapAdds.reset();
        mapRemovals.reset();
        filteredRequests.reset();
        broadcastRequests.reset();
        memoryDirectRequests.reset();
        selectiveFlushes.reset();
        flushedLines.reset();
        removalPeriodTicks.reset();
    }

    /** @{ Statistics. */
    /** Cores added to vCPU maps. */
    Counter mapAdds;
    /** Cores removed from vCPU maps (Counter/CounterThreshold). */
    Counter mapRemovals;
    /** Requests filtered (multicast within a map). */
    Counter filteredRequests;
    /** Requests broadcast (RW-shared, hypervisor, fallback). */
    Counter broadcastRequests;
    /** Requests sent memory-direct. */
    Counter memoryDirectRequests;
    /** Selective flushes performed (CounterFlush mode). */
    Counter selectiveFlushes;
    /** Lines evicted by selective flushes. */
    Counter flushedLines;
    /**
     * Core-removal period after a vCPU relocation, in ticks
     * (Figure 9).  Sampled when a formerly used core is removed
     * from the VM's map.  Consumers convert ticks to their time
     * scale; buckets are 500 ticks wide up to 2M ticks.
     */
    Histogram removalPeriodTicks{500.0, 4000};
    /** @} */

  private:
    /**
     * Precomputed destination set for one (VM, page class) pair.
     * The targets() hot path is a template load plus a requester-bit
     * clear; the set algebra over the vCPU maps (union with the
     * friend VM's map, provider masks, bundle sizes) runs only here,
     * on the rare map or friend-pairing changes.
     */
    struct TargetTemplate
    {
        SnoopTargets targets;
        /** Statistic bumped on the first transient attempt. */
        Counter *firstAttempt = nullptr;
        /** Attempt number from which the request broadcasts. */
        std::uint32_t fallbackAttempt = ~std::uint32_t{0};
    };

    /** Recompute every template from map_ / friendOf_ / config_. */
    void rebuildTemplates();

    /** Remove @p core from @p vm's map, with sync accounting. */
    void removeFromMap(VmId vm, CoreId core);

    /** Add @p core to @p vm's map, with sync accounting. */
    void addToMap(VmId vm, CoreId core);

    /** Called by the residence counter banks. */
    void onResidenceChange(CoreId core, VmId vm, std::uint64_t count);

    /** Emit a MapAdd/MapRemove trace record when tracing is on. */
    void traceMapChange(TraceEventKind kind, VmId vm, CoreId core) const;

    /** Evaluate removal eligibility for (core, vm). */
    void maybeRemove(CoreId core, VmId vm, std::uint64_t count);

    /** Account hypervisor map-register synchronization traffic. */
    void accountMapSync(VmId vm);

    std::uint32_t numCores_;
    std::uint32_t numVms_;
    VsnoopConfig config_;
    CoherenceSystem *system_ = nullptr;
    PageMon *pagemon_ = nullptr;
    CoreSet allCores_;
    std::vector<CoreSet> map_;
    std::vector<CoreSet> running_;
    std::vector<VmId> friendOf_;
    /** Per-VM templates: [vm * 2] private pages, [vm * 2 + 1] RO. */
    std::vector<TargetTemplate> templates_;
    /** Hypervisor accesses and RW-shared pages (broadcast). */
    TargetTemplate hypervisorTemplate_;
    /** Late-retry broadcast fallback (requester not yet removed). */
    SnoopTargets fallbackTargets_;
    /** Guards against re-entering a selective flush. */
    bool flushing_ = false;
    /**
     * Tick at which the last vCPU of @p vm left @p core while data
     * remained (kMaxTick when not pending), indexed
     * core * numVms + vm; used for the Figure 9 distribution.
     */
    std::vector<Tick> pendingRemovalSince_;
};

} // namespace vsnoop

#endif // VSNOOP_CORE_VSNOOP_HH_
