#include "core/vsnoop.hh"

#include "coherence/system.hh"
#include "sim/logging.hh"
#include "trace/pagemon.hh"
#include "trace/trace.hh"

namespace vsnoop
{

const char *
relocationModeName(RelocationMode mode)
{
    switch (mode) {
      case RelocationMode::Base:
        return "vsnoop-base";
      case RelocationMode::Counter:
        return "counter";
      case RelocationMode::CounterThreshold:
        return "counter-threshold";
      case RelocationMode::CounterFlush:
        return "counter-flush";
    }
    return "unknown";
}

const char *
roPolicyName(RoPolicy policy)
{
    switch (policy) {
      case RoPolicy::Broadcast:
        return "vsnoop-broadcast";
      case RoPolicy::MemoryDirect:
        return "memory-direct";
      case RoPolicy::IntraVm:
        return "intra-VM";
      case RoPolicy::FriendVm:
        return "friend-VM";
    }
    return "unknown";
}

VirtualSnoopPolicy::VirtualSnoopPolicy(std::uint32_t num_cores,
                                       std::uint32_t num_vms,
                                       const VsnoopConfig &config)
    : numCores_(num_cores), numVms_(num_vms), config_(config),
      allCores_(CoreSet::firstN(num_cores)), map_(num_vms),
      running_(num_vms), friendOf_(num_vms, kInvalidVm),
      pendingRemovalSince_(static_cast<std::size_t>(num_cores) * num_vms,
                           kMaxTick)
{
    vsnoop_assert(num_vms <= 32,
                  "provider bitmasks support at most 32 VMs");
    rebuildTemplates();
}

void
VirtualSnoopPolicy::rebuildTemplates()
{
    auto broadcastTargets = [&](FilterReason reason) {
        SnoopTargets t;
        t.cores = allCores_;
        t.memory = true;
        t.providerMask = ~std::uint32_t{0};
        t.reason = reason;
        return t;
    };
    hypervisorTemplate_.targets =
        broadcastTargets(FilterReason::HypervisorShared);
    hypervisorTemplate_.firstAttempt = &broadcastRequests;
    fallbackTargets_ = broadcastTargets(FilterReason::RetryFallback);

    templates_.resize(static_cast<std::size_t>(numVms_) * 2);
    for (VmId vm = 0; vm < numVms_; ++vm) {
        TargetTemplate &priv = templates_[vm * 2];
        priv.targets = SnoopTargets{};
        priv.targets.cores = map_[vm];
        priv.targets.memory = true;
        priv.targets.providerMask = 1U << vm;
        priv.targets.reason = FilterReason::VmPrivate;
        priv.firstAttempt = &filteredRequests;
        // Counter-threshold may have stranded tokens on removed
        // cores; later transient attempts broadcast to recover them
        // (the paper's safe-retry fallback).
        priv.fallbackAttempt = config_.broadcastAttempt;

        TargetTemplate &ro = templates_[vm * 2 + 1];
        SnoopTargets t;
        t.memory = true;
        t.reason = FilterReason::RoShared;
        switch (config_.roPolicy) {
          case RoPolicy::Broadcast:
            t.cores = allCores_;
            t.providerMask = ~std::uint32_t{0};
            ro.firstAttempt = &broadcastRequests;
            ro.fallbackAttempt = ~std::uint32_t{0};
            break;
          case RoPolicy::MemoryDirect:
            // Single-token grants: up to numCores sharers never
            // exhaust memory's pool, so memory-direct keeps
            // succeeding.  Attempt 2 means memory had no free token
            // (every copy cached): fall back to a broadcast that can
            // reach the cached copies.
            t.providerMask = 0;
            t.roBundle = 1;
            ro.firstAttempt = &memoryDirectRequests;
            ro.fallbackAttempt = 2;
            break;
          case RoPolicy::IntraVm:
            t.cores = map_[vm];
            t.providerMask = 1U << vm;
            t.roBundle = config_.roTokenBundle;
            ro.firstAttempt = &filteredRequests;
            ro.fallbackAttempt = config_.broadcastAttempt;
            break;
          case RoPolicy::FriendVm: {
            t.cores = map_[vm];
            t.providerMask = 1U << vm;
            t.roBundle = config_.roTokenBundle;
            VmId fr = friendOf_[vm];
            if (fr != kInvalidVm) {
                t.cores |= map_[fr];
                t.providerMask |= 1U << fr;
            }
            ro.firstAttempt = &filteredRequests;
            ro.fallbackAttempt = config_.broadcastAttempt;
            break;
          }
        }
        ro.targets = t;
    }
}

void
VirtualSnoopPolicy::attach(CoherenceSystem &system)
{
    vsnoop_assert(system_ == nullptr, "policy attached twice");
    system_ = &system;
    for (CoreId c = 0; c < numCores_; ++c) {
        system.controller(c).residence().setCallback(
            [this, c](VmId vm, std::uint64_t count) {
                onResidenceChange(c, vm, count);
            });
    }
    if (config_.roPolicy == RoPolicy::FriendVm) {
        for (VmId vm = 0; vm < numVms_; ++vm) {
            if (friendOf_[vm] != kInvalidVm)
                system.setFriend(vm, friendOf_[vm]);
        }
    }
}

void
VirtualSnoopPolicy::setFriend(VmId vm, VmId friend_vm)
{
    vsnoop_assert(vm < numVms_ && friend_vm < numVms_,
                  "friend pairing out of range");
    friendOf_[vm] = friend_vm;
    rebuildTemplates();
    if (system_ != nullptr)
        system_->setFriend(vm, friend_vm);
}

CoreSet
VirtualSnoopPolicy::vcpuMap(VmId vm) const
{
    vsnoop_assert(vm < numVms_, "bad VM id ", vm);
    return map_[vm];
}

CoreSet
VirtualSnoopPolicy::runningSet(VmId vm) const
{
    vsnoop_assert(vm < numVms_, "bad VM id ", vm);
    return running_[vm];
}

SnoopTargets
VirtualSnoopPolicy::targets(CoreId requester, const MemAccess &access,
                            std::uint32_t attempt)
{
    // Table-driven filter decision: select the precomputed template
    // for the access's (VM, page class), then clear the requester's
    // bit.  No per-request set algebra over the vCPU maps — that
    // runs in rebuildTemplates() on the rare map changes.
    const TargetTemplate *tmpl;
    if (access.vm == kInvalidVm || access.vm >= numVms_ ||
        access.pageType == PageType::RwShared) {
        // Hypervisor accesses and RW-shared pages must broadcast:
        // the hypervisor can have left the data in any cache.
        tmpl = &hypervisorTemplate_;
    } else if (access.pageType == PageType::VmPrivate) {
        tmpl = &templates_[static_cast<std::size_t>(access.vm) * 2];
    } else {
        vsnoop_assert(!access.isWrite,
                      "RO-shared write must take the COW path");
        tmpl = &templates_[static_cast<std::size_t>(access.vm) * 2 + 1];
    }
    if (attempt >= tmpl->fallbackAttempt) {
        SnoopTargets t = fallbackTargets_;
        t.cores.remove(requester);
        return t;
    }
    SnoopTargets t = tmpl->targets;
    t.cores.remove(requester);
    if (attempt == 1) {
        tmpl->firstAttempt->inc();
        // Filtered means the destination set was narrowed below a
        // broadcast: multicast within a map or memory-direct.
        if (pagemon_ != nullptr) {
            pagemon_->policyDecision(
                access.addr,
                tmpl->firstAttempt != &broadcastRequests);
        }
    }
    return t;
}

void
VirtualSnoopPolicy::onVcpuPlaced(VCpuId vcpu, VmId vm, CoreId core)
{
    (void)vcpu;
    vsnoop_assert(vm < numVms_, "bad VM id ", vm);
    running_[vm].add(core);
    // The core is back in use by this VM: cancel any pending
    // removal-period measurement.
    pendingRemovalSince_[static_cast<std::size_t>(core) * numVms_ + vm] =
        kMaxTick;
    if (!map_[vm].contains(core))
        addToMap(vm, core);
}

void
VirtualSnoopPolicy::onVcpuRemoved(VCpuId vcpu, VmId vm, CoreId core)
{
    (void)vcpu;
    vsnoop_assert(vm < numVms_, "bad VM id ", vm);
    running_[vm].remove(core);
    if (config_.relocation == RelocationMode::Base)
        return;
    std::uint64_t count = 0;
    if (system_ != nullptr)
        count = system_->controller(core).residence().count(vm);
    // Start the Figure 9 removal-period clock only when the VM
    // actually left data behind; a clean departure is removed
    // immediately and has no drain period to measure.
    if (map_[vm].contains(core) && count > 0) {
        pendingRemovalSince_[static_cast<std::size_t>(core) * numVms_ +
                             vm] =
            system_ != nullptr ? system_->eventQueue().now() : 0;
    }
    maybeRemove(core, vm, count);
}

void
VirtualSnoopPolicy::onResidenceChange(CoreId core, VmId vm,
                                      std::uint64_t count)
{
    if (config_.relocation == RelocationMode::Base)
        return;
    maybeRemove(core, vm, count);
}

void
VirtualSnoopPolicy::maybeRemove(CoreId core, VmId vm, std::uint64_t count)
{
    if (!map_[vm].contains(core) || running_[vm].contains(core))
        return;
    bool removable = false;
    switch (config_.relocation) {
      case RelocationMode::Base:
        return;
      case RelocationMode::Counter:
        removable = count == 0;
        break;
      case RelocationMode::CounterThreshold:
        removable = count < config_.counterThreshold;
        break;
      case RelocationMode::CounterFlush:
        if (count == 0) {
            removable = true;
        } else if (count < config_.counterThreshold && !flushing_ &&
                   system_ != nullptr) {
            // Evict the stragglers; the resulting residence-counter
            // callbacks re-enter maybeRemove and take the count==0
            // branch above once the flush completes.
            flushing_ = true;
            selectiveFlushes.inc();
            flushedLines.inc(
                system_->controller(core).flushVmPrivateLines(vm));
            flushing_ = false;
            removable =
                system_->controller(core).residence().count(vm) == 0 &&
                map_[vm].contains(core);
        }
        break;
    }
    if (removable)
        removeFromMap(vm, core);
}

void
VirtualSnoopPolicy::traceMapChange(TraceEventKind kind, VmId vm,
                                   CoreId core) const
{
    if (system_ == nullptr)
        return;
    TraceSink *t = system_->trace();
    if (t == nullptr)
        return;
    TraceRecord r;
    r.kind = kind;
    r.tick = system_->eventQueue().now();
    r.core = core;
    r.vm = vm;
    r.targets = map_[vm].mask();
    r.value = system_->controller(core).residence().count(vm);
    t->record(r);
}

void
VirtualSnoopPolicy::addToMap(VmId vm, CoreId core)
{
    map_[vm].add(core);
    rebuildTemplates();
    mapAdds.inc();
    traceMapChange(TraceEventKind::MapAdd, vm, core);
    accountMapSync(vm);
}

void
VirtualSnoopPolicy::removeFromMap(VmId vm, CoreId core)
{
    map_[vm].remove(core);
    rebuildTemplates();
    mapRemovals.inc();
    traceMapChange(TraceEventKind::MapRemove, vm, core);
    accountMapSync(vm);
    auto idx = static_cast<std::size_t>(core) * numVms_ + vm;
    Tick since = pendingRemovalSince_[idx];
    if (since != kMaxTick && system_ != nullptr) {
        Tick now = system_->eventQueue().now();
        removalPeriodTicks.sample(static_cast<double>(now - since));
    }
    pendingRemovalSince_[idx] = kMaxTick;
}

void
VirtualSnoopPolicy::accountMapSync(VmId vm)
{
    // The hypervisor multicasts the new map value to the cores in
    // the map and collects acknowledgments (Section IV-B).  The
    // cost is control traffic only; relocation is so much rarer
    // than coherence transactions that the latency is negligible
    // (the paper argues it is at most one broadcast round trip),
    // but the messages are charged to the network so the Table IV
    // traffic numbers include them.
    if (system_ == nullptr)
        return;
    CoreSet members = map_[vm];
    if (members.count() < 2)
        return;
    CoreId src = members.first();
    members.forEach([&](CoreId c) {
        if (c == src)
            return;
        system_->sendControl(src, c, config_.mapSyncBytes);  // update
        system_->sendControl(c, src, config_.mapSyncBytes);  // ack
    });
}

} // namespace vsnoop
