/**
 * @file
 * Chrome trace-event exporter: renders a TraceSink (and optionally
 * a TimeSeries) as a JSON document loadable in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Track layout:
 *  - pid 0 "cores": one thread per physical core.  Each completed
 *    coherence transaction is a complete ("X") slice on its
 *    requesting core's track, from issue to global completion, with
 *    the filter decision (broadcast vs multicast, destination set,
 *    reason), attempts and data source in args.  Retries and
 *    persistent escalations are instant events.
 *  - pid 1 "vms": one thread per VM.  The same transactions grouped
 *    by requesting VM, plus vCPU-map add/remove instants — the
 *    broadcast→multicast transition after a migration is visible
 *    here.
 *  - pid 2 "timeseries" (when a TimeSeries is supplied): counter
 *    ("C") tracks for per-core residence counts and filtered vs
 *    broadcast request rates, so drain curves render natively.
 *
 * Timestamps: one simulation tick is exported as one microsecond
 * (the trace-event "ts" unit); viewers display relative time, so
 * only the scale matters.
 *
 * The document is produced with the deterministic JsonWriter:
 * identical sink contents serialize to identical bytes.
 */

#ifndef VSNOOP_TRACE_CHROME_TRACE_HH_
#define VSNOOP_TRACE_CHROME_TRACE_HH_

#include <iosfwd>

#include "trace/timeseries.hh"
#include "trace/trace.hh"

namespace vsnoop
{

/** System shape needed for track metadata. */
struct ChromeTraceMeta
{
    std::uint32_t numCores = 0;
    std::uint32_t numVms = 0;
};

/**
 * Write the full trace document to @p out.
 *
 * @param series Optional time series for counter tracks (nullptr
 *        or a disabled series skips them).
 */
void writeChromeTrace(std::ostream &out, const TraceSink &sink,
                      const TimeSeries *series,
                      const ChromeTraceMeta &meta);

} // namespace vsnoop

#endif // VSNOOP_TRACE_CHROME_TRACE_HH_
