/**
 * @file
 * Critical-path latency attribution and inter-VM interference
 * accounting.
 *
 * The aggregate latency histograms (PR 3) say how long transactions
 * took; they cannot say *where inside a transaction* the cycles
 * went, nor *whose caches* absorbed another VM's snoops — which is
 * exactly the isolation property the paper argues for.  This layer
 * answers both:
 *
 *  - Every miss carries a segment timeline.  The controller keeps a
 *    per-MSHR cursor (`segMark`) that sweeps from issue to
 *    completion; every interval of simulated time between those two
 *    points is charged to exactly one CritSegment, so the segment
 *    sum equals the end-to-end latency *by construction* (asserted
 *    on every completion).  Response messages carry the two
 *    intermediate stamps the decomposition needs: when the request
 *    reached the responder (reqArrive) and when the response left
 *    it (depart).
 *
 *  - An inter-VM interference matrix counts, for every
 *    requester-VM x target-VM pair, the snoop lookups induced, the
 *    tag-port cycles they occupied, and the data bytes delivered
 *    cache-to-cache.  Row/column index numVms is the host row:
 *    hypervisor requesters and snoops landing on cores not
 *    currently running any vCPU.  Diagonal entries are a VM
 *    snooping itself (the virtual-snooping ideal); everything
 *    off-diagonal is interference.
 *
 * Like TraceSink, this class references only the header-only
 * protocol types (coherence/protocol.hh), so the coherence library
 * can depend on it without a cycle.  The accountant follows the
 * one-system-per-thread contract (system/sim_system.hh).
 */

#ifndef VSNOOP_TRACE_CRITPATH_HH_
#define VSNOOP_TRACE_CRITPATH_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "noc/network.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * The segments a transaction's end-to-end latency decomposes into.
 * Order matters only for display; the conservation property is
 * per-transaction: the seven segment values always sum to the
 * completion latency.
 */
enum class CritSegment : std::uint8_t
{
    /** Issue-side queueing before the first attempt departs. */
    MshrWait,
    /** Request traversal: first-attempt issue to snoop arrival. */
    ReqTraversal,
    /** Responder-side occupancy: snoop arrival to response depart
     *  (memory access time; cache tag lookups respond in-tick). */
    SnoopLookup,
    /** Waiting on further token responses after the first. */
    TokenCollect,
    /** Dead time inside failed transient windows (retries). */
    RetryBackoff,
    /** Arbiter wait + persistent re-broadcast windows. */
    PersistentEscalation,
    /** Data response in flight, plus the final L2 fill. */
    DataReturn,
};

/** Number of CritSegment values. */
constexpr std::size_t kNumCritSegments = 7;

/** Machine name ("mshr_wait", "req_traversal", ...). */
const char *critSegmentName(CritSegment segment);

/** A compact (count, sum-of-ticks) accumulation cell. */
struct CritPathCell
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    double
    mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/**
 * End-of-run copy of the segment attribution, embedded in
 * SystemResults.
 */
struct CritPathSnapshot
{
    bool enabled = false;
    /** Full per-segment histograms over all transactions. */
    LatencyHistogram segments[kNumCritSegments];
    /** Per-FilterReason segment sums (count = transactions). */
    CritPathCell byReason[kNumCritSegments][kNumFilterReasons];
    /** Rows in byVm: numVms + 1 (the last row is the host). */
    std::uint32_t vmRows = 0;
    /** Per-requesting-VM segment sums, [seg * vmRows + row]. */
    std::vector<CritPathCell> byVm;
    /** NoC queue-wait cycles observed by sends, per MsgClass. */
    std::uint64_t nocWaitCycles[kNumMsgClasses] = {};

    const CritPathCell &
    vmCell(std::size_t seg, std::uint32_t row) const
    {
        return byVm[seg * vmRows + row];
    }
};

/**
 * End-of-run copy of the interference matrices, embedded in
 * SystemResults.  All matrices are dim x dim, row-major,
 * [requester VM][target VM], with row/column dim-1 the host.
 */
struct InterferenceSnapshot
{
    bool enabled = false;
    std::uint32_t dim = 0;
    std::vector<std::uint64_t> snoopLookups;
    std::vector<std::uint64_t> tagBusyCycles;
    std::vector<std::uint64_t> bytesDelivered;

    std::uint64_t
    at(const std::vector<std::uint64_t> &m, std::uint32_t requester,
       std::uint32_t target) const
    {
        return m[static_cast<std::size_t>(requester) * dim + target];
    }

    std::uint64_t total(const std::vector<std::uint64_t> &m) const;
    std::uint64_t offDiagonal(const std::vector<std::uint64_t> &m) const;

    /** Fraction of snoop lookups landing outside the requester's
     *  own VM (0 with no lookups). */
    double offDiagLookupShare() const;
};

/** Display label for a matrix row ("vm0".."vmN-1", then "host"). */
std::string vmRowLabel(std::uint32_t row, std::uint32_t dim);

/**
 * The live accountant, owned by SimSystem and attached to
 * CoherenceSystem behind a branch-on-null pointer (like TraceSink
 * and HostProfiler).
 */
class CritPathAccountant
{
  public:
    /** Maps a core to the VM currently running on it (kInvalidVm
     *  when idle); used to attribute snoop deliveries. */
    using CoreVmResolver = std::function<VmId(CoreId)>;

    /**
     * @param num_vms Guest VMs; the matrices get one extra
     *        host row/column.
     * @param tag_lookup_cycles Tag-port occupancy charged per snoop
     *        lookup (accounting only; no timing effect).
     */
    CritPathAccountant(std::uint32_t num_vms, Tick tag_lookup_cycles);

    void setCoreVmResolver(CoreVmResolver resolver);

    /**
     * Faster alternative to setCoreVmResolver: a raw per-core VM
     * table (e.g. VcpuMapping::vmAtTable()) indexed directly on the
     * per-snoop path.  Takes precedence over the resolver when set;
     * the pointer must stay valid for the accountant's lifetime.
     */
    void setCoreVmTable(const VmId *table) { coreVmTable_ = table; }

    /**
     * Fold one completed transaction's segment timeline in.
     * Asserts the conservation invariant: the segments must sum to
     * @p end_to_end exactly.
     */
    void recordTransaction(const std::uint64_t (&seg)[kNumCritSegments],
                           std::uint64_t end_to_end, FilterReason reason,
                           VmId vm);

    /** The requester's own (missing) tag lookup: diagonal charge. */
    void snoopLookupLocal(VmId requester);

    /** A snoop delivery charged to whichever VM holds @p target. */
    void snoopLookupRemote(VmId requester, CoreId target);

    /** A cache-to-cache data response reaching @p requester. */
    void bytesDelivered(VmId requester, VmId source,
                        std::uint64_t bytes);

    /** Queue-wait cycles a network send observed along its path. */
    void
    nocWait(MsgClass cls, Tick wait)
    {
        nocWaitCycles_[static_cast<std::size_t>(cls)] += wait;
    }

    /** Zero all accounting (warmup boundary). */
    void resetStats();

    /** Matrix dimension: numVms + 1. */
    std::uint32_t dim() const { return dim_; }

    /** Matrix row a VM id maps to (out-of-range ids -> host row). */
    std::uint32_t
    rowFor(VmId vm) const
    {
        return vm < dim_ - 1 ? vm : dim_ - 1;
    }

    std::uint64_t
    lookupAt(std::uint32_t requester, std::uint32_t target) const
    {
        return snoopLookups_[static_cast<std::size_t>(requester) * dim_ +
                             target];
    }

    CritPathSnapshot critSnapshot() const;
    InterferenceSnapshot interferenceSnapshot() const;

    /** @{ Registry-facing totals (SimSystem::registerStats). */
    /** Transactions folded in. */
    Counter transactions;
    /** Total ticks charged, per segment. */
    Counter segTotal[kNumCritSegments];
    /** Snoop lookups charged to the matrix / off the diagonal. */
    Counter lookupsTotal;
    Counter lookupsOffDiag;
    /** Cache-to-cache data bytes / off-diagonal portion. */
    Counter bytesTotal;
    Counter bytesOffDiag;
    /** @} */

  private:
    void chargeLookup(std::uint32_t req_row, std::uint32_t tgt_row);

    std::uint32_t dim_;
    Tick tagLookupCycles_;
    CoreVmResolver resolver_;
    const VmId *coreVmTable_ = nullptr;
    LatencyHistogram segments_[kNumCritSegments];
    CritPathCell byReason_[kNumCritSegments][kNumFilterReasons];
    /** [seg * dim_ + row]. */
    std::vector<CritPathCell> byVm_;
    /** dim_ x dim_, row-major [requester][target]. */
    std::vector<std::uint64_t> snoopLookups_;
    std::vector<std::uint64_t> tagBusyCycles_;
    std::vector<std::uint64_t> bytesDelivered_;
    std::uint64_t nocWaitCycles_[kNumMsgClasses] = {};
};

} // namespace vsnoop

#endif // VSNOOP_TRACE_CRITPATH_HH_
