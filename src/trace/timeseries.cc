#include "trace/timeseries.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace vsnoop
{

const char *
msgClassName(MsgClass cls)
{
    switch (cls) {
      case MsgClass::Request: return "request";
      case MsgClass::Response: return "response";
      case MsgClass::Data: return "data";
      case MsgClass::Control: return "control";
    }
    vsnoop_panic("unknown MsgClass ", static_cast<int>(cls));
}

void
TimeSeries::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("interval").value(interval);
    json.key("samples").beginArray();
    for (const TimeSeriesSample &s : samples) {
        json.beginObject();
        json.key("tick").value(s.tick);
        json.key("transactions").value(s.transactions);
        json.key("snoop_lookups").value(s.snoopLookups);
        json.key("snoops_delivered").value(s.snoopsDelivered);
        json.key("filtered_requests").value(s.filteredRequests);
        json.key("broadcast_requests").value(s.broadcastRequests);
        json.key("retries").value(s.retries);
        json.key("persistent_requests").value(s.persistentRequests);
        json.key("byte_hops").beginObject();
        for (std::size_t c = 0; c < kNumMsgClasses; ++c)
            json.key(msgClassName(static_cast<MsgClass>(c)))
                .value(s.byteHops[c]);
        json.endObject();
        json.key("residence_per_core").beginArray();
        for (std::uint64_t r : s.residencePerCore)
            json.value(r);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

IntervalSampler::IntervalSampler(EventQueue &eq, Tick interval,
                                 SnapshotFn fn)
    : eq_(eq), interval_(interval), fn_(std::move(fn))
{
    vsnoop_assert(interval_ >= 1, "sampling interval must be positive");
    series_.interval = interval_;
}

void
IntervalSampler::start()
{
    vsnoop_assert(!running_, "sampler started twice");
    running_ = true;
    fn_(lastRaw_);
    lastSampleTick_ = eq_.now();
    scheduleNext();
}

void
IntervalSampler::scheduleNext()
{
    eq_.scheduleFnIn(interval_, [this] {
        if (!running_)
            return;
        takeSample();
        scheduleNext();
    });
}

void
IntervalSampler::takeSample()
{
    TimeSeriesSample raw;
    fn_(raw);
    TimeSeriesSample delta = raw;
    delta.tick = eq_.now();
    delta.transactions -= lastRaw_.transactions;
    delta.snoopLookups -= lastRaw_.snoopLookups;
    delta.snoopsDelivered -= lastRaw_.snoopsDelivered;
    delta.filteredRequests -= lastRaw_.filteredRequests;
    delta.broadcastRequests -= lastRaw_.broadcastRequests;
    delta.retries -= lastRaw_.retries;
    delta.persistentRequests -= lastRaw_.persistentRequests;
    for (std::size_t c = 0; c < kNumMsgClasses; ++c)
        delta.byteHops[c] -= lastRaw_.byteHops[c];
    // residencePerCore stays absolute: it is a level, not a rate.
    series_.samples.push_back(std::move(delta));
    lastRaw_ = std::move(raw);
    lastSampleTick_ = eq_.now();
}

void
IntervalSampler::stop()
{
    if (!running_)
        return;
    if (eq_.now() > lastSampleTick_)
        takeSample();
    running_ = false;
}

void
IntervalSampler::resetSeries()
{
    series_.samples.clear();
    fn_(lastRaw_);
    lastSampleTick_ = eq_.now();
}

} // namespace vsnoop
