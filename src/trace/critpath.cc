#include "trace/critpath.hh"

#include "sim/logging.hh"

namespace vsnoop
{

const char *
critSegmentName(CritSegment segment)
{
    switch (segment) {
      case CritSegment::MshrWait: return "mshr_wait";
      case CritSegment::ReqTraversal: return "req_traversal";
      case CritSegment::SnoopLookup: return "snoop_lookup";
      case CritSegment::TokenCollect: return "token_collect";
      case CritSegment::RetryBackoff: return "retry_backoff";
      case CritSegment::PersistentEscalation:
        return "persistent_escalation";
      case CritSegment::DataReturn: return "data_return";
    }
    vsnoop_panic("unknown CritSegment ", static_cast<int>(segment));
}

std::string
vmRowLabel(std::uint32_t row, std::uint32_t dim)
{
    if (row + 1 == dim)
        return "host";
    return "vm" + std::to_string(row);
}

std::uint64_t
InterferenceSnapshot::total(const std::vector<std::uint64_t> &m) const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : m)
        sum += v;
    return sum;
}

std::uint64_t
InterferenceSnapshot::offDiagonal(
    const std::vector<std::uint64_t> &m) const
{
    std::uint64_t sum = total(m);
    for (std::uint32_t i = 0; i < dim; ++i)
        sum -= at(m, i, i);
    return sum;
}

double
InterferenceSnapshot::offDiagLookupShare() const
{
    std::uint64_t all = total(snoopLookups);
    if (all == 0)
        return 0.0;
    return static_cast<double>(offDiagonal(snoopLookups)) /
           static_cast<double>(all);
}

CritPathAccountant::CritPathAccountant(std::uint32_t num_vms,
                                       Tick tag_lookup_cycles)
    : dim_(num_vms + 1), tagLookupCycles_(tag_lookup_cycles)
{
    std::size_t cells = static_cast<std::size_t>(dim_) * dim_;
    snoopLookups_.assign(cells, 0);
    tagBusyCycles_.assign(cells, 0);
    bytesDelivered_.assign(cells, 0);
    byVm_.assign(kNumCritSegments * dim_, CritPathCell{});
}

void
CritPathAccountant::setCoreVmResolver(CoreVmResolver resolver)
{
    resolver_ = std::move(resolver);
}

void
CritPathAccountant::recordTransaction(
    const std::uint64_t (&seg)[kNumCritSegments],
    std::uint64_t end_to_end, FilterReason reason, VmId vm)
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : seg)
        sum += v;
    vsnoop_assert(sum == end_to_end,
                  "critical-path conservation violated: segments sum to ",
                  sum, " but the transaction took ", end_to_end);

    transactions.inc();
    std::uint32_t row = rowFor(vm);
    auto ri = static_cast<std::size_t>(reason);
    for (std::size_t s = 0; s < kNumCritSegments; ++s) {
        segments_[s].sample(seg[s]);
        segTotal[s].inc(seg[s]);
        byReason_[s][ri].count++;
        byReason_[s][ri].sum += seg[s];
        CritPathCell &cell = byVm_[s * dim_ + row];
        cell.count++;
        cell.sum += seg[s];
    }
}

void
CritPathAccountant::chargeLookup(std::uint32_t req_row,
                                 std::uint32_t tgt_row)
{
    snoopLookups_[static_cast<std::size_t>(req_row) * dim_ + tgt_row]++;
    tagBusyCycles_[static_cast<std::size_t>(req_row) * dim_ + tgt_row] +=
        tagLookupCycles_;
    lookupsTotal.inc();
    if (req_row != tgt_row)
        lookupsOffDiag.inc();
}

void
CritPathAccountant::snoopLookupLocal(VmId requester)
{
    // The requester's own tag check runs on the core the access was
    // issued from, which by construction runs the requesting VM: a
    // diagonal (self-interference) charge.
    std::uint32_t row = rowFor(requester);
    chargeLookup(row, row);
}

void
CritPathAccountant::snoopLookupRemote(VmId requester, CoreId target)
{
    VmId target_vm;
    if (coreVmTable_ != nullptr)
        target_vm = coreVmTable_[target];
    else
        target_vm = resolver_ ? resolver_(target) : kInvalidVm;
    chargeLookup(rowFor(requester), rowFor(target_vm));
}

void
CritPathAccountant::bytesDelivered(VmId requester, VmId source,
                                   std::uint64_t bytes)
{
    std::uint32_t req_row = rowFor(requester);
    std::uint32_t src_row = rowFor(source);
    bytesDelivered_[static_cast<std::size_t>(req_row) * dim_ +
                    src_row] += bytes;
    bytesTotal.inc(bytes);
    if (req_row != src_row)
        bytesOffDiag.inc(bytes);
}

void
CritPathAccountant::resetStats()
{
    for (std::size_t s = 0; s < kNumCritSegments; ++s) {
        segments_[s].reset();
        segTotal[s].reset();
        for (std::size_t r = 0; r < kNumFilterReasons; ++r)
            byReason_[s][r] = CritPathCell{};
    }
    std::fill(byVm_.begin(), byVm_.end(), CritPathCell{});
    std::fill(snoopLookups_.begin(), snoopLookups_.end(), 0);
    std::fill(tagBusyCycles_.begin(), tagBusyCycles_.end(), 0);
    std::fill(bytesDelivered_.begin(), bytesDelivered_.end(), 0);
    for (std::uint64_t &w : nocWaitCycles_)
        w = 0;
    transactions.reset();
    lookupsTotal.reset();
    lookupsOffDiag.reset();
    bytesTotal.reset();
    bytesOffDiag.reset();
}

CritPathSnapshot
CritPathAccountant::critSnapshot() const
{
    CritPathSnapshot snap;
    snap.enabled = true;
    snap.vmRows = dim_;
    snap.byVm = byVm_;
    for (std::size_t s = 0; s < kNumCritSegments; ++s) {
        snap.segments[s] = segments_[s];
        for (std::size_t r = 0; r < kNumFilterReasons; ++r)
            snap.byReason[s][r] = byReason_[s][r];
    }
    for (std::size_t c = 0; c < kNumMsgClasses; ++c)
        snap.nocWaitCycles[c] = nocWaitCycles_[c];
    return snap;
}

InterferenceSnapshot
CritPathAccountant::interferenceSnapshot() const
{
    InterferenceSnapshot snap;
    snap.enabled = true;
    snap.dim = dim_;
    snap.snoopLookups = snoopLookups_;
    snap.tagBusyCycles = tagBusyCycles_;
    snap.bytesDelivered = bytesDelivered_;
    return snap;
}

} // namespace vsnoop
