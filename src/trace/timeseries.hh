/**
 * @file
 * Interval time series: periodic snapshots of key simulation rates.
 *
 * The paper's own analysis (Section V, Figures 7-9) is temporal —
 * migration transients, residence-counter drain curves — but the
 * simulator only reported end-of-run aggregates.  The
 * IntervalSampler snapshots a set of cumulative counters every N
 * ticks and stores the per-interval deltas (plus the absolute
 * per-core residence counts) in a TimeSeries, which serializes into
 * the RunResult JSON-lines schema so sweep output carries a time
 * series per run.
 *
 * Determinism: sampling rides the simulation event queue, so sample
 * ticks and values are part of the deterministic event order —
 * byte-identical for identical configurations and seeds regardless
 * of how many sweep workers run concurrently.
 */

#ifndef VSNOOP_TRACE_TIMESERIES_HH_
#define VSNOOP_TRACE_TIMESERIES_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace vsnoop
{

class JsonWriter;

/** Machine name of a MsgClass ("request", "data", ...). */
const char *msgClassName(MsgClass cls);

/**
 * One sample.  Counter fields hold the delta over the preceding
 * interval; residencePerCore holds the absolute counts at the
 * sample tick (sum over VMs of each core's residence counters).
 */
struct TimeSeriesSample
{
    /** Tick the sample was taken at (end of its interval). */
    Tick tick = 0;
    std::uint64_t transactions = 0;
    std::uint64_t snoopLookups = 0;
    std::uint64_t snoopsDelivered = 0;
    /** Requests multicast within a vCPU map (VirtualSnoop only). */
    std::uint64_t filteredRequests = 0;
    /** Requests broadcast (VirtualSnoop only). */
    std::uint64_t broadcastRequests = 0;
    std::uint64_t retries = 0;
    std::uint64_t persistentRequests = 0;
    /** Network byte-hops per message class (Table IV metric). */
    std::uint64_t byteHops[kNumMsgClasses] = {};
    /** VM-private lines resident per core, summed over VMs. */
    std::vector<std::uint64_t> residencePerCore;
};

/**
 * A run's collected samples.
 */
struct TimeSeries
{
    /** Sampling interval in ticks; 0 means sampling was off. */
    Tick interval = 0;
    std::vector<TimeSeriesSample> samples;

    bool enabled() const { return interval > 0; }

    /** Append as {"interval":N,"samples":[...]} (deterministic). */
    void writeJson(JsonWriter &json) const;
};

/**
 * Drives periodic sampling on a simulation's event queue.
 *
 * The owner provides a snapshot callback that fills a sample with
 * *cumulative* counter values; the sampler differences consecutive
 * snapshots into per-interval deltas (residencePerCore is kept
 * absolute).  resetSeries() re-baselines at the warmup boundary so
 * the series covers exactly the measurement phase.
 */
class IntervalSampler
{
  public:
    using SnapshotFn = std::function<void(TimeSeriesSample &)>;

    /**
     * @param eq Event queue to schedule sampling on.
     * @param interval Ticks between samples (>= 1).
     * @param fn Fills cumulative counter values.
     */
    IntervalSampler(EventQueue &eq, Tick interval, SnapshotFn fn);

    /** Schedule the first sample (one interval from now). */
    void start();

    /**
     * Stop sampling and take one final partial-interval sample if
     * simulated time advanced past the last one (so end-of-run
     * state — e.g. a drained residence counter — is captured).
     */
    void stop();

    /** Drop collected samples and re-baseline (warmup boundary). */
    void resetSeries();

    const TimeSeries &series() const { return series_; }

  private:
    void scheduleNext();
    void takeSample();

    EventQueue &eq_;
    Tick interval_;
    SnapshotFn fn_;
    TimeSeries series_;
    /** Previous cumulative snapshot (delta baseline). */
    TimeSeriesSample lastRaw_;
    Tick lastSampleTick_ = 0;
    bool running_ = false;
};

} // namespace vsnoop

#endif // VSNOOP_TRACE_TIMESERIES_HH_
