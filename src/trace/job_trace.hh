/**
 * @file
 * Job lifecycle trace: spans and instants for the sweep service,
 * exported as a Chrome trace-event document.
 *
 * While chrome_trace.hh renders coherence transactions from one
 * simulated run, this recorder captures the serving layer around
 * the runs: each job's path through the JobQueue as wall-clock
 * spans.  Loading the export in Perfetto (https://ui.perfetto.dev)
 * shows one track per job under a "jobs" process, with the track
 * split into the contiguous lifecycle phases:
 *
 *   queue-wait   submit() accepted the job .. the dispatcher (or a
 *                cancellation) took it out of the queue
 *   execute      the dispatcher ran it .. terminal state
 *
 * The two phases tile [submitted, finished] exactly, so a job's
 * spans sum to its submit-to-done latency by construction — the
 * acceptance check tests rely on.  Cache lookups surface as
 * hit/miss instants on the job's track; executed runs become
 * slices under a separate "runs" process (one row per matrix
 * slot — jobs execute one at a time, so slots never collide
 * across jobs); result streaming, which overlaps execution, gets
 * its own "streams" process.  Every event carries the request id
 * of the HTTP request that created the job, correlating the
 * Perfetto view with access-log lines and /metrics deltas.
 *
 * Timestamps are system/heartbeat.hh steadyNowMs() milliseconds,
 * exported as trace-event microseconds (ms * 1000); viewers show
 * relative time, so only the scale matters.  Thread-safe: the
 * queue's dispatcher, run workers, and streaming handlers record
 * concurrently; writeChromeTrace() snapshots under the same lock.
 */

#ifndef VSNOOP_TRACE_JOB_TRACE_HH_
#define VSNOOP_TRACE_JOB_TRACE_HH_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace vsnoop
{

/** One closed lifecycle span ([beginMs, endMs], steadyNowMs). */
struct JobSpan
{
    std::uint64_t job = 0;
    /** Phase name: "queue-wait", "execute", "run", "stream". */
    std::string name;
    std::int64_t beginMs = 0;
    std::int64_t endMs = 0;
    std::string requestId;
    /** Matrix slot for "run" spans; -1 elsewhere. */
    std::int64_t slot = -1;
    /** Extra detail shown in the viewer's args pane. */
    std::string detail;
};

/** One point event ("cache-hit", "cache-miss", "cancel"). */
struct JobInstant
{
    std::uint64_t job = 0;
    std::string name;
    std::int64_t tsMs = 0;
    std::string requestId;
    std::int64_t slot = -1;
};

/**
 * Thread-safe collector for job spans/instants.  See the file
 * comment for the track layout writeChromeTrace() produces.
 */
class JobTraceRecorder
{
  public:
    void record(JobSpan span);
    void record(JobInstant instant);

    /** Point-in-time copies, recording order (for tests). */
    std::vector<JobSpan> spans() const;
    std::vector<JobInstant> instants() const;

    /**
     * Render everything recorded so far as one deterministic
     * Chrome trace-event JSON document.
     */
    void writeChromeTrace(std::ostream &out) const;

  private:
    mutable std::mutex mutex_;
    std::vector<JobSpan> spans_;
    std::vector<JobInstant> instants_;
};

} // namespace vsnoop

#endif // VSNOOP_TRACE_JOB_TRACE_HH_
