#include "trace/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <utility>

#include "mem/addr.hh"
#include "sim/core_set.hh"
#include "sim/json.hh"

namespace vsnoop
{

namespace
{

/** Common fields of every trace event. */
void
eventHeader(JsonWriter &json, const char *name, const char *ph,
            Tick ts, std::uint64_t pid, std::uint64_t tid)
{
    json.beginObject();
    json.key("name").value(name);
    json.key("ph").value(ph);
    json.key("ts").value(ts);
    json.key("pid").value(pid);
    json.key("tid").value(tid);
}

void
metadataEvent(JsonWriter &json, const char *what, std::uint64_t pid,
              std::uint64_t tid, const std::string &name)
{
    eventHeader(json, what, "M", 0, pid, tid);
    json.key("args").beginObject();
    json.key("name").value(name);
    json.endObject();
    json.endObject();
}

/** In-flight transaction state folded from lifecycle records. */
struct PendingTx
{
    Tick issued = 0;
    SnoopKind kind = SnoopKind::GetS;
    PageType pageType = PageType::VmPrivate;
    VmId vm = kInvalidVm;
    /** First attempt's filter decision. */
    bool haveDecision = false;
    FilterReason reason = FilterReason::Baseline;
    std::uint64_t targets = 0;
    bool targetsMemory = false;
    bool broadcastFirst = false;
    std::uint32_t attempts = 1;
    std::uint32_t retries = 0;
    bool persistent = false;
};

const char *
decisionName(const PendingTx &tx)
{
    if (tx.broadcastFirst)
        return "broadcast";
    if (tx.targets == 0)
        return "memory-direct";
    return "multicast";
}

std::string
lineName(SnoopKind kind, std::uint64_t line)
{
    std::string name = kind == SnoopKind::GetX ? "GetX " : "GetS ";
    // Hex keeps related lines visually groupable in the viewer.
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(line << kLineShift));
    name += buf;
    return name;
}

/** The completed-transaction slice, emitted on one track. */
void
transactionSlice(JsonWriter &json, const TraceRecord &done,
                 const PendingTx &tx, std::uint64_t pid,
                 std::uint64_t tid)
{
    eventHeader(json, lineName(tx.kind, done.line).c_str(), "X",
                tx.issued, pid, tid);
    json.key("dur").value(done.tick - tx.issued);
    json.key("args").beginObject();
    json.key("page_type").value(pageTypeName(tx.pageType));
    json.key("vm").value(static_cast<std::uint64_t>(tx.vm));
    if (tx.haveDecision) {
        json.key("decision").value(decisionName(tx));
        json.key("reason").value(filterReasonName(tx.reason));
        json.key("targets").value(
            CoreSet::fromMask(tx.targets).toString());
        json.key("fanout").value(
            static_cast<std::uint64_t>(
                CoreSet::fromMask(tx.targets).count()) +
            (tx.targetsMemory ? 1 : 0));
        json.key("memory_snooped").value(tx.targetsMemory);
    }
    json.key("attempts").value(tx.attempts);
    json.key("retries").value(tx.retries);
    json.key("persistent").value(tx.persistent || done.persistent);
    json.key("data_source").value(dataSourceName(done.dataSource));
    json.key("latency").value(done.value);
    json.endObject();
    json.endObject();
}

void
instant(JsonWriter &json, const char *name, const TraceRecord &r,
        std::uint64_t pid, std::uint64_t tid)
{
    eventHeader(json, name, "i", r.tick, pid, tid);
    json.key("s").value("t");
    json.key("args").beginObject();
    switch (r.kind) {
      case TraceEventKind::Retry:
      case TraceEventKind::PersistentEscalation:
        json.key("attempt").value(
            static_cast<std::uint64_t>(r.attempt));
        break;
      case TraceEventKind::TokenCollect:
        json.key("tokens").value(r.tokens);
        json.key("owner").value(r.owner);
        break;
      case TraceEventKind::MapAdd:
      case TraceEventKind::MapRemove:
        json.key("core").value(static_cast<std::uint64_t>(r.core));
        json.key("residence").value(r.value);
        break;
      case TraceEventKind::PageMap:
      case TraceEventKind::PageUnmap:
      case TraceEventKind::PageTypeChange:
      case TraceEventKind::PageCow:
      case TraceEventKind::PageRemap:
        json.key("guest_page").value(r.value);
        json.key("host_page").value(r.line >>
                                    (kPageShift - kLineShift));
        json.key("page_type").value(pageTypeName(r.pageType));
        json.key("prev_type").value(
            pageTypeName(static_cast<PageType>(r.tokens)));
        if (r.targets != 0)
            json.key("prev_host_page").value(r.targets);
        break;
      default:
        break;
    }
    json.endObject();
    json.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &out, const TraceSink &sink,
                 const TimeSeries *series, const ChromeTraceMeta &meta)
{
    constexpr std::uint64_t kCorePid = 0;
    constexpr std::uint64_t kVmPid = 1;
    constexpr std::uint64_t kSeriesPid = 2;

    JsonWriter json;
    json.beginObject();
    json.key("displayTimeUnit").value("ms");
    json.key("traceEvents").beginArray();

    metadataEvent(json, "process_name", kCorePid, 0, "cores");
    for (std::uint32_t c = 0; c < meta.numCores; ++c)
        metadataEvent(json, "thread_name", kCorePid, c,
                      "core " + std::to_string(c));
    metadataEvent(json, "process_name", kVmPid, 0, "vms");
    for (std::uint32_t v = 0; v < meta.numVms; ++v)
        metadataEvent(json, "thread_name", kVmPid, v,
                      "vm " + std::to_string(v));
    // Page-lifecycle events for shared-region pages (and any event
    // without a guest VM owner) land on a host track.  The track is
    // named only when such records exist, so traces from runs
    // without page events keep their exact historical bytes.
    bool host_row = false;
    sink.forEach([&](const TraceRecord &r) {
        host_row = host_row ||
                   (r.kind >= TraceEventKind::PageMap &&
                    r.kind <= TraceEventKind::PageRemap &&
                    r.vm >= meta.numVms);
    });
    if (host_row)
        metadataEvent(json, "thread_name", kVmPid, meta.numVms, "host");

    // Fold lifecycle records into one slice per transaction.  At
    // most one transaction per (core, line) is outstanding, so that
    // pair keys the in-flight state.  std::map keeps behaviour
    // deterministic; emission order is record order regardless.
    std::map<std::pair<CoreId, std::uint64_t>, PendingTx> pending;
    Tick lastTick = 0;
    sink.forEach([&](const TraceRecord &r) {
        lastTick = std::max(lastTick, r.tick);
        auto key = std::make_pair(r.core, r.line);
        switch (r.kind) {
          case TraceEventKind::RequestIssue: {
            PendingTx tx;
            tx.issued = r.tick;
            tx.kind = r.snoopKind;
            tx.pageType = r.pageType;
            tx.vm = r.vm;
            pending[key] = tx;
            break;
          }
          case TraceEventKind::FilterDecision: {
            auto it = pending.find(key);
            if (it == pending.end())
                break; // issue record fell out of the ring
            PendingTx &tx = it->second;
            if (!tx.haveDecision) {
                tx.haveDecision = true;
                tx.reason = r.reason;
                tx.targets = r.targets;
                tx.targetsMemory = r.memory;
                tx.broadcastFirst = r.broadcast;
            }
            tx.attempts = std::max<std::uint32_t>(tx.attempts,
                                                  r.attempt);
            if (r.persistent)
                tx.persistent = true;
            break;
          }
          case TraceEventKind::Retry: {
            auto it = pending.find(key);
            if (it != pending.end())
                it->second.retries++;
            instant(json, "retry", r, kCorePid, r.core);
            break;
          }
          case TraceEventKind::PersistentEscalation:
            if (auto it = pending.find(key); it != pending.end())
                it->second.persistent = true;
            instant(json, "persistent-escalation", r, kCorePid,
                    r.core);
            break;
          case TraceEventKind::TokenCollect:
            instant(json, "tokens", r, kCorePid, r.core);
            break;
          case TraceEventKind::Completion: {
            auto it = pending.find(key);
            if (it == pending.end()) {
                // The issue record was overwritten; an instant is
                // better than losing the completion entirely.
                instant(json, "complete", r, kCorePid, r.core);
                break;
            }
            transactionSlice(json, r, it->second, kCorePid, r.core);
            if (it->second.vm < meta.numVms)
                transactionSlice(json, r, it->second, kVmPid,
                                 it->second.vm);
            pending.erase(it);
            break;
          }
          case TraceEventKind::MapAdd:
            instant(json, "map-add", r, kVmPid, r.vm);
            break;
          case TraceEventKind::MapRemove:
            instant(json, "map-remove", r, kVmPid, r.vm);
            break;
          case TraceEventKind::PageMap:
          case TraceEventKind::PageUnmap:
          case TraceEventKind::PageTypeChange:
          case TraceEventKind::PageCow:
          case TraceEventKind::PageRemap:
            instant(json, traceEventKindName(r.kind), r, kVmPid,
                    r.vm < meta.numVms ? r.vm : meta.numVms);
            break;
        }
    });

    // Close transactions that never saw a Completion record (still
    // in flight at run end, or the completion fell out of the ring):
    // an unterminated "X" span would otherwise silently vanish from
    // the viewer.  Each is emitted as a slice capped at the last
    // recorded tick, marked unclosed, and counted in otherData.
    std::uint64_t unclosed = 0;
    for (const auto &[key, tx] : pending) {
        eventHeader(json, lineName(tx.kind, key.second).c_str(), "X",
                    tx.issued, kCorePid, key.first);
        json.key("dur").value(lastTick > tx.issued ? lastTick - tx.issued
                                                   : 0);
        json.key("args").beginObject();
        json.key("page_type").value(pageTypeName(tx.pageType));
        json.key("vm").value(static_cast<std::uint64_t>(tx.vm));
        if (tx.haveDecision) {
            json.key("decision").value(decisionName(tx));
            json.key("reason").value(filterReasonName(tx.reason));
        }
        json.key("attempts").value(tx.attempts);
        json.key("retries").value(tx.retries);
        json.key("persistent").value(tx.persistent);
        json.key("unclosed").value(true);
        json.endObject();
        json.endObject();
        unclosed++;
    }

    if (series != nullptr && series->enabled()) {
        metadataEvent(json, "process_name", kSeriesPid, 0,
                      "timeseries");
        for (const TimeSeriesSample &s : series->samples) {
            for (std::size_t c = 0; c < s.residencePerCore.size();
                 ++c) {
                eventHeader(json,
                            ("residence core " + std::to_string(c))
                                .c_str(),
                            "C", s.tick, kSeriesPid, 0);
                json.key("args").beginObject();
                json.key("lines").value(s.residencePerCore[c]);
                json.endObject();
                json.endObject();
            }
            eventHeader(json, "requests", "C", s.tick, kSeriesPid, 0);
            json.key("args").beginObject();
            json.key("filtered").value(s.filteredRequests);
            json.key("broadcast").value(s.broadcastRequests);
            json.endObject();
            json.endObject();
        }
    }

    json.endArray();
    json.key("otherData").beginObject();
    json.key("records_retained")
        .value(static_cast<std::uint64_t>(sink.size()));
    json.key("records_dropped").value(sink.dropped());
    json.key("unclosed_transactions").value(unclosed);
    json.endObject();
    json.endObject();
    out << json.str();
}

} // namespace vsnoop
