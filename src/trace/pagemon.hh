/**
 * @file
 * Page-level snoop forensics (pagemon): per-host-page attribution
 * of coherence activity plus sharing-lifecycle tracking.
 *
 * The aggregate counters (CoherenceStats, the PR 5 interference
 * matrices) say *how many* snoops were filtered or crossed VMs;
 * they cannot say *which pages* caused them, nor how a page's
 * sharing classification evolved to get there — and the paper's
 * whole filtering argument (Sections IV and VI: VM-private vs
 * RW-shared vs RO-shared, COW breaks, content-scan remaps) is a
 * per-page story.  PageMon closes that gap:
 *
 *  - Per-page counters (snoop lookups charged, misses, cross-VM
 *    deliveries, per-FilterReason and per-requester-VM breakdowns,
 *    distinct-sharer census) live in a bounded heavy-hitter table:
 *    a Space-Saving-style top-K over a FlatMap.  When the table is
 *    full the minimum-lookup cell is evicted and *all* of its
 *    counts fold into a truncated remainder, so the mass identity
 *
 *        sum(tracked lookups) + truncatedLookups == lookups charged
 *
 *    holds exactly at every instant — which is what lets the top-K
 *    total reconcile with CoherenceStats::snoopLookups and the
 *    interference-matrix grand total (asserted in snapshot()).
 *    The classic Space-Saving count-inheritance variant
 *    over-estimates newcomers and would break that identity.
 *
 *  - Page-lifecycle events from the hypervisor
 *    (virt/page_event.hh) are counted and, when a TraceSink is
 *    attached, emitted as timestamped records (TraceEventKind::
 *    Page*) so a page's classification history replays in Perfetto.
 *
 *  - Watchpoints (--watch-page) promote every coherence transaction
 *    touching a matched host page to full lifecycle tracing:
 *    CoherenceSystem::traceFor() consults watches() and suppresses
 *    transaction records for unmatched lines while the watch set is
 *    non-empty.
 *
 * Charging follows the branch-on-null convention: producers hold a
 * nullable PageMon pointer, so runs without --pages stay
 * byte-identical.  Like CritPathAccountant, charges arrive at
 * exactly the two sites that increment stats.snoopLookups (the
 * requester's own tag check and each remote delivery), memory
 * snoops excluded, and resetStats() runs inside
 * CoherenceSystem::resetStats() so warmup resets drop both sides of
 * the reconciliation at once.  One PageMon per SimSystem
 * (one-system-per-thread contract).
 */

#ifndef VSNOOP_TRACE_PAGEMON_HH_
#define VSNOOP_TRACE_PAGEMON_HH_

#include <cstdint>
#include <mutex>
#include <vector>

#include "coherence/protocol.hh"
#include "sim/flat_table.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "virt/page_event.hh"

namespace vsnoop
{

class EventQueue;
class TraceSink;

/**
 * One tracked page's counters.  byVm has numVms + 1 rows (host
 * last), indexed by the *requesting* VM of each charged lookup.
 */
struct PageCell
{
    /** Host page number. */
    std::uint64_t pageNum = 0;
    /** Snoop lookups charged (the reconciliation/rank key). */
    std::uint64_t lookups = 0;
    /** Transactions that missed to this page (local charges). */
    std::uint64_t misses = 0;
    /** Remote deliveries landing outside the requester's VM. */
    std::uint64_t crossVm = 0;
    /** First-attempt policy decisions (VirtualSnoop only). */
    std::uint64_t filtered = 0;
    std::uint64_t broadcast = 0;
    /** Snoop attempts by FilterReason (every attempt). */
    std::uint64_t byReason[kNumFilterReasons] = {};
    /** Charged lookups by requesting VM; row vmRows-1 is the host. */
    std::vector<std::uint64_t> byVm;
    /** Bitmask of VMs seen mapping the page (lifecycle events). */
    std::uint32_t sharerMask = 0;
    /** Sharing type after the last lifecycle event seen. */
    PageType lastType = PageType::VmPrivate;
};

/**
 * End-of-run copy of the attribution, embedded in SystemResults.
 * `cells` is sorted (lookups descending, page number ascending) so
 * JSON emission is byte-identical across --jobs values.
 */
struct PagesSnapshot
{
    bool enabled = false;
    /** Configured heavy-hitter capacity. */
    std::uint32_t topK = 0;
    /** byVm rows per cell: numVms + 1 (host last). */
    std::uint32_t vmRows = 0;
    std::vector<PageCell> cells;
    /** Lookups folded into the remainder by evictions. */
    std::uint64_t truncatedLookups = 0;
    /** Evictions folded (a page re-entering counts again). */
    std::uint64_t truncatedPages = 0;
    /** All lookups charged: sum(cells) + truncatedLookups. */
    std::uint64_t totalLookups = 0;
    /** @{ Lifecycle transition counts (virt/page_event.hh kinds). */
    std::uint64_t mapEvents = 0;
    std::uint64_t unmapEvents = 0;
    std::uint64_t typeChanges = 0;
    std::uint64_t cowBreaks = 0;
    std::uint64_t remaps = 0;
    /** @} */
    /** Distinct mapped host pages by current type (filled by
     *  SimSystem::results() from the hypervisor's tables). */
    std::uint64_t censusByType[kNumPageTypes] = {};
};

/**
 * The live monitor, owned by SimSystem, attached to CoherenceSystem
 * and the Hypervisor behind branch-on-null pointers.
 */
class PageMon : public PageEventListener
{
  public:
    /**
     * @param num_vms Guest VMs; byVm rows get one extra host row.
     * @param top_k Heavy-hitter capacity (>= 1).
     */
    PageMon(std::uint32_t num_vms, std::uint32_t top_k);

    /** Tick source for lifecycle record timestamps (may be null:
     *  events then stamp tick 0, e.g. during system build). */
    void setClock(const EventQueue *eq) { clock_ = eq; }

    /** Lifecycle-record destination (nullable, branch-on-null). */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    /** Raw per-core VM table (VcpuMapping::vmAtTable()) used to
     *  classify remote deliveries as cross-VM.  Must stay valid for
     *  the monitor's lifetime. */
    void setCoreVmTable(const VmId *table) { coreVmTable_ = table; }

    /** @{ Charge hooks (coherence/controller, coherence/system).
     *  Call these at exactly the stats.snoopLookups charge sites. */
    /** The requester's own tag check on a miss. */
    void miss(HostAddr addr, VmId requester);
    /** One snoop delivery to a remote core. */
    void snoopDelivery(HostAddr line, VmId requester, CoreId target);
    /** @} */

    /** One snoop attempt's filter reasoning (coherence/controller). */
    void filterReasonCharge(HostAddr line, FilterReason reason);

    /** VirtualSnoop first-attempt decision (core/vsnoop). */
    void policyDecision(HostAddr line, bool filtered);

    /** PageEventListener: count, census, trace record. */
    void onPageEvent(const PageEvent &event) override;

    /** @{ Watchpoints. */
    void addWatch(std::uint64_t host_page);
    /** True when the watch set is non-empty (trace filtering on). */
    bool watchActive() const { return !watchPages_.empty(); }
    /** True when @p addr falls on a watched page. */
    bool watches(HostAddr addr) const;
    /** @} */

    /** Zero all attribution (warmup boundary; called from
     *  CoherenceSystem::resetStats()).  The watch set stays. */
    void resetStats();

    /** Copy out the attribution, sorted for deterministic output.
     *  Asserts the mass identity (see file comment). */
    PagesSnapshot snapshot() const;

    std::uint32_t topK() const { return topK_; }
    std::uint32_t vmRows() const { return vmRows_; }

    /** @{ Registry-facing totals (SimSystem::registerStats). */
    /** Lookups charged to pages (== stats.snoopLookups). */
    Counter lookupsCharged;
    /** Remote deliveries outside the requester's VM. */
    Counter crossVmLookups;
    /** Lookups folded into the truncated remainder. */
    Counter truncatedLookups;
    /** Lifecycle events seen, by kind. */
    Counter eventsByKind[kNumPageEventKinds];
    /** @} */

  private:
    /** Cell for @p page, evicting the min cell when full. */
    PageCell &cellFor(std::uint64_t page);
    void charge(std::uint64_t page, VmId requester);

    std::uint32_t vmRows_;
    std::uint32_t topK_;
    const EventQueue *clock_ = nullptr;
    TraceSink *trace_ = nullptr;
    const VmId *coreVmTable_ = nullptr;
    FlatMap<PageCell> cells_;
    std::uint64_t truncatedPages_ = 0;
    std::vector<std::uint64_t> watchPages_;
};

/**
 * Sweep-level pagemon aggregation for live telemetry
 * (vsnoop_pages_* series), mirroring PerfExport: worker threads
 * add() each finished run's snapshot under the internal mutex; the
 * registry's publisher thread stages with stageMetrics().
 */
class PagesExport
{
  public:
    /** Register the vsnoop_pages_* series.  Call once, before
     *  registry.freeze(). */
    void registerMetrics(MetricsRegistry &registry);

    /** Fold one finished run's snapshot in (any thread). */
    void add(const PagesSnapshot &pages);

    /** Runs aggregated so far. */
    std::uint64_t runs() const;

    /** Stage current aggregates (publisher thread only). */
    void stageMetrics(MetricsRegistry &registry) const;

  private:
    mutable std::mutex mutex_;
    std::uint64_t runs_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t truncatedLookups_ = 0;
    std::uint64_t crossVm_ = 0;
    std::uint64_t cowBreaks_ = 0;
    std::uint64_t remaps_ = 0;
    std::uint64_t typeChanges_ = 0;
    std::uint64_t mapEvents_ = 0;
    /** Max over runs of the hottest page's lookups. */
    std::uint64_t hottestLookups_ = 0;

    std::size_t runsId_ = 0;
    std::size_t lookupsId_ = 0;
    std::size_t truncatedId_ = 0;
    std::size_t crossVmId_ = 0;
    std::size_t cowBreaksId_ = 0;
    std::size_t remapsId_ = 0;
    std::size_t typeChangesId_ = 0;
    std::size_t mapEventsId_ = 0;
    std::size_t hottestId_ = 0;
    bool metricsRegistered_ = false;
};

} // namespace vsnoop

#endif // VSNOOP_TRACE_PAGEMON_HH_
