#include "trace/job_trace.hh"

#include <algorithm>
#include <ostream>
#include <set>

#include "sim/json.hh"

namespace vsnoop
{

namespace
{

/** Track layout: one process per event family. */
constexpr std::uint64_t kJobsPid = 0;
constexpr std::uint64_t kRunsPid = 1;
constexpr std::uint64_t kStreamsPid = 2;

void
eventHeader(JsonWriter &json, const std::string &name, const char *ph,
            std::int64_t tsMs, std::uint64_t pid, std::uint64_t tid)
{
    json.beginObject();
    json.key("name").value(name);
    json.key("ph").value(ph);
    // steadyNowMs milliseconds -> trace-event microseconds.
    json.key("ts").value(tsMs * 1000);
    json.key("pid").value(pid);
    json.key("tid").value(tid);
}

void
metadataEvent(JsonWriter &json, const char *what, std::uint64_t pid,
              std::uint64_t tid, const std::string &name)
{
    eventHeader(json, what, "M", 0, pid, tid);
    json.key("args").beginObject();
    json.key("name").value(name);
    json.endObject();
    json.endObject();
}

void
commonArgs(JsonWriter &json, std::uint64_t job,
           const std::string &requestId, std::int64_t slot,
           const std::string &detail)
{
    json.key("args").beginObject();
    json.key("job").value(job);
    json.key("request_id").value(requestId);
    if (slot >= 0)
        json.key("slot").value(slot);
    if (!detail.empty())
        json.key("detail").value(detail);
    json.endObject();
}

} // namespace

void
JobTraceRecorder::record(JobSpan span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
}

void
JobTraceRecorder::record(JobInstant instant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    instants_.push_back(std::move(instant));
}

std::vector<JobSpan>
JobTraceRecorder::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::vector<JobInstant>
JobTraceRecorder::instants() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return instants_;
}

void
JobTraceRecorder::writeChromeTrace(std::ostream &out) const
{
    std::vector<JobSpan> spans;
    std::vector<JobInstant> instants;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans = spans_;
        instants = instants_;
    }

    // Which tracks exist, for the metadata block.
    std::set<std::uint64_t> jobTids;
    std::set<std::uint64_t> runTids;
    std::set<std::uint64_t> streamTids;
    for (const JobSpan &span : spans) {
        if (span.name == "run")
            runTids.insert(
                static_cast<std::uint64_t>(std::max<std::int64_t>(
                    span.slot, 0)));
        else if (span.name == "stream")
            streamTids.insert(span.job);
        else
            jobTids.insert(span.job);
    }
    for (const JobInstant &instant : instants)
        jobTids.insert(instant.job);

    JsonWriter json;
    json.beginObject();
    json.key("traceEvents").beginArray();

    metadataEvent(json, "process_name", kJobsPid, 0, "jobs");
    for (std::uint64_t tid : jobTids)
        metadataEvent(json, "thread_name", kJobsPid, tid,
                      "job " + std::to_string(tid));
    if (!runTids.empty()) {
        metadataEvent(json, "process_name", kRunsPid, 0, "runs");
        for (std::uint64_t tid : runTids)
            metadataEvent(json, "thread_name", kRunsPid, tid,
                          "slot " + std::to_string(tid));
    }
    if (!streamTids.empty()) {
        metadataEvent(json, "process_name", kStreamsPid, 0, "streams");
        for (std::uint64_t tid : streamTids)
            metadataEvent(json, "thread_name", kStreamsPid, tid,
                          "job " + std::to_string(tid) + " stream");
    }

    for (const JobSpan &span : spans) {
        std::uint64_t pid = kJobsPid;
        std::uint64_t tid = span.job;
        if (span.name == "run") {
            pid = kRunsPid;
            tid = static_cast<std::uint64_t>(
                std::max<std::int64_t>(span.slot, 0));
        } else if (span.name == "stream") {
            pid = kStreamsPid;
        }
        eventHeader(json, span.name, "X", span.beginMs, pid, tid);
        json.key("dur").value((span.endMs - span.beginMs) * 1000);
        commonArgs(json, span.job, span.requestId, span.slot,
                   span.detail);
        json.endObject();
    }

    for (const JobInstant &instant : instants) {
        eventHeader(json, instant.name, "i", instant.tsMs, kJobsPid,
                    instant.job);
        json.key("s").value("t");
        commonArgs(json, instant.job, instant.requestId, instant.slot,
                   "");
        json.endObject();
    }

    json.endArray();
    json.key("displayTimeUnit").value("ms");
    json.endObject();
    out << json.str();
}

} // namespace vsnoop
