/**
 * @file
 * Transaction tracing: bounded-ring-buffer capture of the coherence
 * transaction lifecycle.
 *
 * Every number the evaluation reports (Figures 6-10, Tables IV-VI)
 * is an end-of-run aggregate; when a snoop-reduction figure
 * deviates from the paper the aggregates cannot say *which*
 * transactions broadcast instead of multicast, or *when* a vCPU
 * map shrank after a migration.  TraceSink records the per-event
 * story: request issue, the policy's filter decision (destination
 * set + reason), retries, token collection, completion, and vCPU
 * map changes — each as one compact fixed-size record.
 *
 * Cost model: producers hold a nullable TraceSink pointer and emit
 * records behind a branch-on-null, so a build with tracing off pays
 * one pointer test per hook and nothing else.  Storage is a bounded
 * ring: once `capacity` records are held the oldest are overwritten
 * (the tail of a run is usually the interesting part) and the drop
 * count is reported, so tracing never grows without bound.
 *
 * The records reference only header-only protocol types
 * (coherence/protocol.hh); this library links against vsnoop_sim
 * alone, which lets the coherence library depend on it without a
 * cycle.
 */

#ifndef VSNOOP_TRACE_TRACE_HH_
#define VSNOOP_TRACE_TRACE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "sim/metrics.hh"
#include "sim/types.hh"

namespace vsnoop
{

/** What a trace record describes. */
enum class TraceEventKind : std::uint8_t
{
    /** A demand miss entered the coherence layer (MSHR allocated). */
    RequestIssue,
    /**
     * The snoop-target policy chose a destination set for one
     * attempt: the target CoreSet, whether memory is snooped, and
     * the reason (see FilterReason).  Doubles as the fan-out
     * record: the target mask's popcount is the snoop fan-out.
     */
    FilterDecision,
    /** A transient attempt timed out and will retry wider. */
    Retry,
    /** Transient attempts exhausted; escalated to persistent mode. */
    PersistentEscalation,
    /** A token/data response was folded into the MSHR. */
    TokenCollect,
    /** The transaction globally performed. */
    Completion,
    /** A core was added to a VM's vCPU map. */
    MapAdd,
    /** A core was removed from a VM's vCPU map. */
    MapRemove,
    /**
     * @{ Page-lifecycle records (virt/page_event.hh, emitted by
     * trace/pagemon.hh).  `vm` is the owning VM, `line` the first
     * line of the host page, `value` the guest page number,
     * `targets` the previous host page (cow/remap), `pageType` the
     * sharing type after the event and `tokens` the type before it.
     */
    /** A page got its first host mapping. */
    PageMap,
    /** A mapping was removed. */
    PageUnmap,
    /** Only the sharing type changed (same host page). */
    PageTypeChange,
    /** A copy-on-write break gave the writer a private copy. */
    PageCow,
    /** The content scan merged the page onto a canonical copy. */
    PageRemap,
    /** @} */
};

/** Number of TraceEventKind values. */
constexpr std::size_t kNumTraceEventKinds = 13;

/** Short machine name ("issue", "filter", ...). */
const char *traceEventKindName(TraceEventKind kind);

/** Machine name of a FilterReason ("vm-private", "ro-shared", ...). */
const char *filterReasonName(FilterReason reason);

/** Machine name of a DataSource ("cache_intra_vm", ...). */
const char *dataSourceName(DataSource source);

/**
 * One trace record.  A single flat struct holds the union of all
 * event kinds' fields; unused fields keep their defaults.  At 64
 * bytes a 1M-record ring costs 64 MB, which is why the buffer is
 * bounded.
 */
struct TraceRecord
{
    /** Tick the event happened at. */
    Tick tick = 0;
    TraceEventKind kind = TraceEventKind::RequestIssue;
    /** GetS / GetX (transaction-lifecycle events). */
    SnoopKind snoopKind = SnoopKind::GetS;
    /** Policy reasoning behind a FilterDecision. */
    FilterReason reason = FilterReason::Baseline;
    PageType pageType = PageType::VmPrivate;
    /** Data origin (TokenCollect with data / Completion). */
    DataSource dataSource = DataSource::Memory;
    /** 1-based transient attempt number. */
    std::uint8_t attempt = 0;
    /** Destination set reached every other core (FilterDecision). */
    bool broadcast = false;
    /** Memory controller was snooped (FilterDecision). */
    bool memory = false;
    /** Transaction was in persistent mode. */
    bool persistent = false;
    /** Response carried the owner token (TokenCollect). */
    bool owner = false;
    /** Requesting (or map-affected) core. */
    CoreId core = kInvalidCore;
    /** Requesting (or map-affected) VM. */
    VmId vm = kInvalidVm;
    /** Cache-line number (HostAddr >> kLineShift); 0 for Map*. */
    std::uint64_t line = 0;
    /** Target CoreSet mask (FilterDecision). */
    std::uint64_t targets = 0;
    /** Tokens carried (TokenCollect) / held after folding. */
    std::uint32_t tokens = 0;
    /**
     * Kind-specific scalar: completion latency in ticks
     * (Completion), or the residence count at the map change
     * (MapAdd/MapRemove).
     */
    std::uint64_t value = 0;
};

/**
 * Bounded ring buffer of TraceRecords.
 *
 * Not thread-safe: a sink belongs to one SimSystem and follows the
 * one-system-per-thread contract (system/sim_system.hh).
 */
class TraceSink
{
  public:
    /** @param capacity Maximum records retained (>= 1). */
    explicit TraceSink(std::size_t capacity);

    /** Append a record, overwriting the oldest when full. */
    void record(const TraceRecord &r);

    /** Records currently retained. */
    std::size_t size() const { return buffer_.size(); }

    /** Records ever recorded (retained + dropped). */
    std::uint64_t recorded() const { return recorded_; }

    /** Records overwritten because the ring was full. */
    std::uint64_t dropped() const { return recorded_ - buffer_.size(); }

    std::size_t capacity() const { return capacity_; }

    /** The @p i-th retained record in chronological order. */
    const TraceRecord &at(std::size_t i) const;

    /** Invoke @p fn for each retained record, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < buffer_.size(); ++i)
            fn(at(i));
    }

    /** Drop every record (the ring keeps its capacity). */
    void clear();

    /**
     * Register live-telemetry series for this sink's record counts
     * under @p prefix (e.g. "vsnoop_sim_").  Call before
     * registry.freeze(); stageMetrics() then stages the current
     * counts on each publication cycle.  Staging follows the sink's
     * own threading contract: the owning simulation thread stages,
     * the registry's seqlock makes the values safe to read from the
     * stats-server thread.
     */
    void registerMetrics(MetricsRegistry &registry,
                         const std::string &prefix);

    /** Stage recorded/dropped/retained into the registered series. */
    void stageMetrics(MetricsRegistry &registry) const;

  private:
    std::size_t capacity_;
    /** Insertion slot once the ring has wrapped. */
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
    std::vector<TraceRecord> buffer_;
    bool metricsRegistered_ = false;
    MetricsRegistry::Id recordedMetric_ = 0;
    MetricsRegistry::Id droppedMetric_ = 0;
    MetricsRegistry::Id retainedMetric_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_TRACE_TRACE_HH_
