#include "trace/pagemon.hh"

#include <algorithm>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace vsnoop
{

namespace
{

TraceEventKind
traceKindFor(PageEventKind kind)
{
    switch (kind) {
      case PageEventKind::Map: return TraceEventKind::PageMap;
      case PageEventKind::Unmap: return TraceEventKind::PageUnmap;
      case PageEventKind::TypeChange:
        return TraceEventKind::PageTypeChange;
      case PageEventKind::CowBreak: return TraceEventKind::PageCow;
      case PageEventKind::Remap: return TraceEventKind::PageRemap;
    }
    vsnoop_panic("unknown PageEventKind ", static_cast<int>(kind));
}

} // namespace

PageMon::PageMon(std::uint32_t num_vms, std::uint32_t top_k)
    : vmRows_(num_vms + 1), topK_(top_k)
{
    vsnoop_assert(topK_ >= 1, "pagemon top-K must be positive");
    // Steady state holds exactly topK_ cells; reserving double keeps
    // the probe chains short and avoids rehash churn at the cap.
    cells_.reserve(static_cast<std::size_t>(topK_) * 2);
}

PageCell &
PageMon::cellFor(std::uint64_t page)
{
    if (PageCell *cell = cells_.find(page))
        return *cell;
    if (cells_.size() >= topK_) {
        // Evict-to-remainder: fold the coldest cell's entire mass
        // into the truncated aggregate so the lookup-sum identity
        // survives the eviction exactly.  Deterministic tie-break:
        // fewest lookups, then the highest page number goes.
        bool have = false;
        std::uint64_t victim = 0;
        std::uint64_t victim_lookups = 0;
        cells_.forEach([&](std::uint64_t p, const PageCell &c) {
            if (!have || c.lookups < victim_lookups ||
                (c.lookups == victim_lookups && p > victim)) {
                have = true;
                victim = p;
                victim_lookups = c.lookups;
            }
        });
        truncatedLookups.inc(victim_lookups);
        truncatedPages_++;
        cells_.erase(victim);
    }
    PageCell &cell = cells_.getOrInsert(page);
    cell.pageNum = page;
    cell.byVm.assign(vmRows_, 0);
    return cell;
}

void
PageMon::miss(HostAddr addr, VmId requester)
{
    PageCell &cell = cellFor(addr.pageNum());
    cell.lookups++;
    cell.misses++;
    cell.byVm[requester < vmRows_ - 1 ? requester : vmRows_ - 1]++;
    lookupsCharged.inc();
}

void
PageMon::snoopDelivery(HostAddr line, VmId requester, CoreId target)
{
    PageCell &cell = cellFor(line.pageNum());
    cell.lookups++;
    cell.byVm[requester < vmRows_ - 1 ? requester : vmRows_ - 1]++;
    lookupsCharged.inc();
    VmId target_vm =
        coreVmTable_ != nullptr ? coreVmTable_[target] : kInvalidVm;
    if (target_vm != requester) {
        cell.crossVm++;
        crossVmLookups.inc();
    }
}

void
PageMon::filterReasonCharge(HostAddr line, FilterReason reason)
{
    cellFor(line.pageNum())
        .byReason[static_cast<std::size_t>(reason)]++;
}

void
PageMon::policyDecision(HostAddr line, bool filtered)
{
    PageCell &cell = cellFor(line.pageNum());
    if (filtered)
        cell.filtered++;
    else
        cell.broadcast++;
}

void
PageMon::onPageEvent(const PageEvent &event)
{
    eventsByKind[static_cast<std::size_t>(event.kind)].inc();
    // Census on tracked cells only: the event stream updates sharing
    // info for pages already hot enough to hold a cell, without
    // letting cold pages grow the bounded table.
    if (PageCell *cell = cells_.find(event.hostPage)) {
        if (event.vm != kInvalidVm && event.vm < 32)
            cell->sharerMask |= 1u << event.vm;
        cell->lastType = event.type;
    }
    if (trace_ != nullptr) {
        TraceRecord r;
        r.tick = clock_ != nullptr ? clock_->now() : 0;
        r.kind = traceKindFor(event.kind);
        r.vm = event.vm;
        r.line = event.hostPage << (kPageShift - kLineShift);
        r.value = event.guestPage;
        r.targets = event.prevHostPage;
        r.pageType = event.type;
        r.tokens = static_cast<std::uint32_t>(event.prevType);
        trace_->record(r);
    }
}

void
PageMon::addWatch(std::uint64_t host_page)
{
    if (std::find(watchPages_.begin(), watchPages_.end(), host_page) ==
        watchPages_.end()) {
        watchPages_.push_back(host_page);
    }
}

bool
PageMon::watches(HostAddr addr) const
{
    // Watch sets are a handful of pages; a linear scan beats any
    // hashed structure on the per-record path.
    std::uint64_t page = addr.pageNum();
    return std::find(watchPages_.begin(), watchPages_.end(), page) !=
           watchPages_.end();
}

void
PageMon::resetStats()
{
    cells_ = FlatMap<PageCell>{};
    cells_.reserve(static_cast<std::size_t>(topK_) * 2);
    truncatedPages_ = 0;
    lookupsCharged.reset();
    crossVmLookups.reset();
    truncatedLookups.reset();
    for (auto &counter : eventsByKind)
        counter.reset();
}

PagesSnapshot
PageMon::snapshot() const
{
    PagesSnapshot s;
    s.enabled = true;
    s.topK = topK_;
    s.vmRows = vmRows_;
    s.cells.reserve(cells_.size());
    cells_.forEach([&s](std::uint64_t, const PageCell &cell) {
        s.cells.push_back(cell);
    });
    // Hottest first; page number breaks ties so the order (and the
    // JSON bytes downstream) never depends on table iteration order.
    std::sort(s.cells.begin(), s.cells.end(),
              [](const PageCell &a, const PageCell &b) {
                  if (a.lookups != b.lookups)
                      return a.lookups > b.lookups;
                  return a.pageNum < b.pageNum;
              });
    s.truncatedLookups = truncatedLookups.value();
    s.truncatedPages = truncatedPages_;
    s.totalLookups = lookupsCharged.value();
    std::uint64_t tracked = 0;
    for (const PageCell &cell : s.cells)
        tracked += cell.lookups;
    vsnoop_assert(tracked + s.truncatedLookups == s.totalLookups,
                  "pagemon mass leak: tracked ", tracked,
                  " + truncated ", s.truncatedLookups, " != charged ",
                  s.totalLookups);
    s.mapEvents =
        eventsByKind[static_cast<std::size_t>(PageEventKind::Map)]
            .value();
    s.unmapEvents =
        eventsByKind[static_cast<std::size_t>(PageEventKind::Unmap)]
            .value();
    s.typeChanges =
        eventsByKind[static_cast<std::size_t>(PageEventKind::TypeChange)]
            .value();
    s.cowBreaks =
        eventsByKind[static_cast<std::size_t>(PageEventKind::CowBreak)]
            .value();
    s.remaps =
        eventsByKind[static_cast<std::size_t>(PageEventKind::Remap)]
            .value();
    return s;
}

void
PagesExport::registerMetrics(MetricsRegistry &registry)
{
    runsId_ = registry.addCounter(
        "vsnoop_pages_runs_total",
        "Runs whose pagemon snapshot was aggregated.");
    lookupsId_ = registry.addCounter(
        "vsnoop_pages_lookups_total",
        "Snoop lookups charged to pages across finished runs.");
    truncatedId_ = registry.addCounter(
        "vsnoop_pages_truncated_lookups_total",
        "Lookups folded into the top-K truncated remainder.");
    crossVmId_ = registry.addCounter(
        "vsnoop_pages_cross_vm_lookups_total",
        "Snoop deliveries landing outside the requester's VM.");
    cowBreaksId_ = registry.addCounter(
        "vsnoop_pages_cow_breaks_total",
        "Copy-on-write breaks observed by pagemon.");
    remapsId_ = registry.addCounter(
        "vsnoop_pages_remaps_total",
        "Content-scan relocation remaps observed by pagemon.");
    typeChangesId_ = registry.addCounter(
        "vsnoop_pages_type_changes_total",
        "Sharing-type transitions observed by pagemon.");
    mapEventsId_ = registry.addCounter(
        "vsnoop_pages_map_events_total",
        "Page map events observed by pagemon.");
    hottestId_ = registry.addGauge(
        "vsnoop_pages_hottest_lookups",
        "Max over runs of the hottest page's snoop lookups.");
    metricsRegistered_ = true;
}

void
PagesExport::add(const PagesSnapshot &pages)
{
    std::lock_guard<std::mutex> lock(mutex_);
    runs_++;
    lookups_ += pages.totalLookups;
    truncatedLookups_ += pages.truncatedLookups;
    for (const PageCell &cell : pages.cells)
        crossVm_ += cell.crossVm;
    cowBreaks_ += pages.cowBreaks;
    remaps_ += pages.remaps;
    typeChanges_ += pages.typeChanges;
    mapEvents_ += pages.mapEvents;
    if (!pages.cells.empty())
        hottestLookups_ =
            std::max(hottestLookups_, pages.cells.front().lookups);
}

std::uint64_t
PagesExport::runs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_;
}

void
PagesExport::stageMetrics(MetricsRegistry &registry) const
{
    vsnoop_assert(metricsRegistered_,
                  "stageMetrics() before registerMetrics()");
    std::uint64_t runs, lookups, truncated, cross_vm, cow_breaks;
    std::uint64_t remaps, type_changes, map_events, hottest;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        runs = runs_;
        lookups = lookups_;
        truncated = truncatedLookups_;
        cross_vm = crossVm_;
        cow_breaks = cowBreaks_;
        remaps = remaps_;
        type_changes = typeChanges_;
        map_events = mapEvents_;
        hottest = hottestLookups_;
    }
    registry.set(runsId_, static_cast<double>(runs));
    registry.set(lookupsId_, static_cast<double>(lookups));
    registry.set(truncatedId_, static_cast<double>(truncated));
    registry.set(crossVmId_, static_cast<double>(cross_vm));
    registry.set(cowBreaksId_, static_cast<double>(cow_breaks));
    registry.set(remapsId_, static_cast<double>(remaps));
    registry.set(typeChangesId_, static_cast<double>(type_changes));
    registry.set(mapEventsId_, static_cast<double>(map_events));
    registry.set(hottestId_, static_cast<double>(hottest));
}

} // namespace vsnoop
