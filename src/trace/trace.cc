#include "trace/trace.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vsnoop
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::RequestIssue: return "issue";
      case TraceEventKind::FilterDecision: return "filter";
      case TraceEventKind::Retry: return "retry";
      case TraceEventKind::PersistentEscalation: return "persistent";
      case TraceEventKind::TokenCollect: return "tokens";
      case TraceEventKind::Completion: return "complete";
      case TraceEventKind::MapAdd: return "map-add";
      case TraceEventKind::MapRemove: return "map-remove";
      case TraceEventKind::PageMap: return "page-map";
      case TraceEventKind::PageUnmap: return "page-unmap";
      case TraceEventKind::PageTypeChange: return "page-type";
      case TraceEventKind::PageCow: return "page-cow";
      case TraceEventKind::PageRemap: return "page-remap";
    }
    vsnoop_panic("unknown TraceEventKind ", static_cast<int>(kind));
}

const char *
filterReasonName(FilterReason reason)
{
    switch (reason) {
      case FilterReason::Baseline: return "baseline";
      case FilterReason::HypervisorShared: return "hypervisor-shared";
      case FilterReason::VmPrivate: return "vm-private";
      case FilterReason::RoShared: return "ro-shared";
      case FilterReason::RetryFallback: return "retry-fallback";
      case FilterReason::Persistent: return "persistent";
    }
    vsnoop_panic("unknown FilterReason ", static_cast<int>(reason));
}

const char *
dataSourceName(DataSource source)
{
    switch (source) {
      case DataSource::CacheIntraVm: return "cache_intra_vm";
      case DataSource::CacheFriendVm: return "cache_friend_vm";
      case DataSource::CacheOtherVm: return "cache_other_vm";
      case DataSource::Memory: return "memory";
    }
    vsnoop_panic("unknown DataSource ", static_cast<int>(source));
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity)
{
    vsnoop_assert(capacity_ >= 1, "trace capacity must be positive");
    // Grow on demand up to capacity: short runs never pay for the
    // full ring.
    buffer_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
TraceSink::record(const TraceRecord &r)
{
    recorded_++;
    if (buffer_.size() < capacity_) {
        buffer_.push_back(r);
        return;
    }
    buffer_[head_] = r;
    head_ = (head_ + 1) % capacity_;
}

const TraceRecord &
TraceSink::at(std::size_t i) const
{
    vsnoop_assert(i < buffer_.size(), "trace record index out of range");
    // Until the ring wraps, head_ == 0 and the mapping is identity.
    return buffer_[(head_ + i) % buffer_.size()];
}

void
TraceSink::clear()
{
    buffer_.clear();
    head_ = 0;
    recorded_ = 0;
}

void
TraceSink::registerMetrics(MetricsRegistry &registry,
                           const std::string &prefix)
{
    recordedMetric_ = registry.addCounter(
        prefix + "trace_records_recorded_total",
        "Trace records ever recorded (retained + dropped).");
    droppedMetric_ = registry.addCounter(
        prefix + "trace_records_dropped_total",
        "Trace records overwritten because the ring was full.");
    retainedMetric_ = registry.addGauge(
        prefix + "trace_records_retained",
        "Trace records currently retained in the ring.");
    metricsRegistered_ = true;
}

void
TraceSink::stageMetrics(MetricsRegistry &registry) const
{
    if (!metricsRegistered_)
        return;
    registry.set(recordedMetric_, static_cast<double>(recorded()));
    registry.set(droppedMetric_, static_cast<double>(dropped()));
    registry.set(retainedMetric_, static_cast<double>(size()));
}

} // namespace vsnoop
