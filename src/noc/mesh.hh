/**
 * @file
 * 2D mesh network with XY routing and link contention.
 *
 * Models the paper's interconnect (Table II): a 4x4 mesh with
 * 16-byte links and a 4-cycle router pipeline.  Messages are
 * wormhole-routed: latency is hops * (router pipeline + link
 * traversal) plus serialization of the remaining flits, and each
 * traversed link is occupied for one cycle per flit.  Contention is
 * modelled by per-link busy-until times: a message departing while
 * a link on its path is busy waits for the link to free.
 *
 * This is deliberately lighter than a flit-level Garnet model, but
 * it preserves the two quantities the paper's evaluation depends
 * on: per-message latency as a function of distance and load, and
 * exact byte-hop traffic accounting.
 */

#ifndef VSNOOP_NOC_MESH_HH_
#define VSNOOP_NOC_MESH_HH_

#include <vector>

#include "noc/network.hh"

namespace vsnoop
{

struct MeshPerf;

/**
 * Mesh configuration knobs.
 */
struct MeshConfig
{
    std::uint32_t width = 4;
    std::uint32_t height = 4;
    /** Link width in bytes (flit size). */
    std::uint32_t linkBytes = 16;
    /** Router pipeline depth in cycles. */
    Tick routerPipeline = 4;
    /** Cycles for a flit to traverse one link. */
    Tick linkLatency = 1;
    /** Latency for node-local delivery (src == dst). */
    Tick localLatency = 1;
};

/**
 * The 2D mesh.
 */
class Mesh : public Network
{
  public:
    explicit Mesh(const MeshConfig &config);

    Tick send(NodeId src, NodeId dst, std::uint32_t bytes,
              MsgClass cls, Tick now,
              SendInfo *info = nullptr) override;

    std::uint32_t numNodes() const override { return width_ * height_; }

    /**
     * Every physical directed link plus one loopback pseudo-link
     * per node (see LinkStat), node-major, directions in
     * East/West/North/South/Local order with off-grid boundary
     * links omitted.
     */
    std::vector<LinkStat> linkStats() const override;

    void resetStats() override;

    std::uint32_t width() const { return width_; }
    std::uint32_t height() const { return height_; }

    /** Manhattan hop count between two nodes under XY routing. */
    std::uint32_t hopCount(NodeId src, NodeId dst) const;

    /**
     * Unloaded latency of a message (no contention), for tests and
     * analytic checks.
     */
    Tick unloadedLatency(NodeId src, NodeId dst, std::uint32_t bytes) const;

    /**
     * Attach an internals counter block (sim/perfmon.hh); nullptr
     * detaches.  Branch-on-null: send() pays one predictable branch
     * per leg and per hop when detached.
     */
    void setPerf(MeshPerf *perf) { perf_ = perf; }

  private:
    /**
     * Directed link from @p node toward +x / -x / +y / -y, plus the
     * loopback pseudo-link for node-local delivery.
     */
    enum Direction : std::uint8_t { East, West, North, South, Local };

    /** Directions per node in the link arrays (incl. Local). */
    static constexpr std::size_t kLinkStride = 5;

    /**
     * All per-link state — the contention horizon plus the traffic
     * accumulators behind the linkStats() snapshot — merged and
     * aligned so the send loop touches exactly one cache line per
     * hop (56 bytes used of the 64-byte line).
     */
    struct alignas(64) LinkState
    {
        /** Earliest tick this directed link is free. */
        Tick free = 0;
        std::uint64_t byteHops[kNumMsgClasses] = {};
        std::uint64_t busyCycles = 0;
        std::uint64_t waitCycles = 0;
    };

    // Shipped geometries have power-of-two widths and link widths;
    // the shift/mask fast paths keep integer division off the
    // per-message path (division fallback for odd test meshes).
    std::uint32_t nodeX(NodeId n) const {
        return widthPow2_ ? n & (width_ - 1) : n % width_;
    }
    std::uint32_t nodeY(NodeId n) const {
        return widthPow2_ ? n >> widthShift_ : n / width_;
    }
    NodeId nodeAt(std::uint32_t x, std::uint32_t y) const {
        return y * width_ + x;
    }

    std::size_t linkIndex(NodeId from, Direction dir) const;

    /** Downstream node of a link; kInvalidNode when off-grid. */
    NodeId neighbor(NodeId from, Direction dir) const;

    /** Flits needed for a message of @p bytes. */
    std::uint32_t flitsFor(std::uint32_t bytes) const;

    std::uint32_t width_;
    std::uint32_t height_;
    std::uint32_t linkBytes_;
    /** @{ Power-of-two fast-path state (see nodeX/flitsFor). */
    bool widthPow2_;
    bool linkBytesPow2_;
    std::uint32_t widthShift_;
    std::uint32_t flitShift_;
    /** @} */
    Tick routerPipeline_;
    Tick linkLatency_;
    Tick localLatency_;
    /** Per-link contention + accounting, node-major by direction. */
    std::vector<LinkState> links_;
    MeshPerf *perf_ = nullptr;
};

/**
 * Idealized contention-free crossbar: fixed latency between any two
 * nodes.  Used by the network ablation benchmark to separate
 * protocol effects from topology effects.
 */
class IdealCrossbar : public Network
{
  public:
    IdealCrossbar(std::uint32_t num_nodes, Tick latency,
                  std::uint32_t link_bytes = 16);

    Tick send(NodeId src, NodeId dst, std::uint32_t bytes,
              MsgClass cls, Tick now,
              SendInfo *info = nullptr) override;

    std::uint32_t numNodes() const override { return numNodes_; }

  private:
    std::uint32_t numNodes_;
    Tick latency_;
    std::uint32_t linkBytes_;
};

} // namespace vsnoop

#endif // VSNOOP_NOC_MESH_HH_
