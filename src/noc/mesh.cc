#include "noc/mesh.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vsnoop
{

Mesh::Mesh(const MeshConfig &config)
    : width_(config.width), height_(config.height),
      linkBytes_(config.linkBytes), routerPipeline_(config.routerPipeline),
      linkLatency_(config.linkLatency), localLatency_(config.localLatency)
{
    vsnoop_assert(width_ >= 1 && height_ >= 1, "degenerate mesh");
    vsnoop_assert(linkBytes_ >= 1, "link width must be positive");
    linkFree_.assign(static_cast<std::size_t>(numNodes()) * 4, 0);
}

std::size_t
Mesh::linkIndex(NodeId from, Direction dir) const
{
    return static_cast<std::size_t>(from) * 4 + dir;
}

std::uint32_t
Mesh::flitsFor(std::uint32_t bytes) const
{
    return std::max<std::uint32_t>(1, (bytes + linkBytes_ - 1) / linkBytes_);
}

std::uint32_t
Mesh::hopCount(NodeId src, NodeId dst) const
{
    auto dx = static_cast<std::int32_t>(nodeX(dst)) -
              static_cast<std::int32_t>(nodeX(src));
    auto dy = static_cast<std::int32_t>(nodeY(dst)) -
              static_cast<std::int32_t>(nodeY(src));
    return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

Tick
Mesh::unloadedLatency(NodeId src, NodeId dst, std::uint32_t bytes) const
{
    if (src == dst)
        return localLatency_;
    std::uint32_t hops = hopCount(src, dst);
    std::uint32_t flits = flitsFor(bytes);
    // Wormhole: head flit pays the full pipeline per hop; the tail
    // follows one link cycle per extra flit.
    return hops * (routerPipeline_ + linkLatency_) +
           (flits - 1) * linkLatency_;
}

Tick
Mesh::send(NodeId src, NodeId dst, std::uint32_t bytes, MsgClass cls,
           Tick now)
{
    vsnoop_assert(src < numNodes() && dst < numNodes(),
                  "node out of range: src=", src, " dst=", dst);

    auto ci = static_cast<std::size_t>(cls);
    std::uint32_t hops = hopCount(src, dst);
    std::uint32_t flits = flitsFor(bytes);
    stats_.messages[ci].inc();
    stats_.bytes[ci].inc(bytes);
    stats_.byteHops[ci].inc(static_cast<std::uint64_t>(flits) *
                            linkBytes_ *
                            std::max<std::uint32_t>(hops, 1));

    if (src == dst)
        return now + localLatency_;
    Tick occupancy = static_cast<Tick>(flits) * linkLatency_;

    // Walk the XY path, reserving each directed link for the
    // message's serialization time.  The head's arrival at the next
    // router is delayed by both the pipeline and any link backlog.
    std::uint32_t x = nodeX(src);
    std::uint32_t y = nodeY(src);
    std::uint32_t dst_x = nodeX(dst);
    std::uint32_t dst_y = nodeY(dst);
    Tick head = now;
    while (x != dst_x || y != dst_y) {
        Direction dir;
        NodeId here = nodeAt(x, y);
        if (x < dst_x) {
            dir = East;
            x++;
        } else if (x > dst_x) {
            dir = West;
            x--;
        } else if (y < dst_y) {
            dir = North;
            y++;
        } else {
            dir = South;
            y--;
        }
        Tick &free = linkFree_[linkIndex(here, dir)];
        Tick start = std::max(head + routerPipeline_, free);
        free = start + occupancy;
        head = start + linkLatency_;
    }
    // Tail flits trail the head on the final link.
    return head + (flits - 1) * linkLatency_;
}

IdealCrossbar::IdealCrossbar(std::uint32_t num_nodes, Tick latency,
                             std::uint32_t link_bytes)
    : numNodes_(num_nodes), latency_(latency), linkBytes_(link_bytes)
{
    vsnoop_assert(num_nodes >= 1, "crossbar needs at least one node");
}

Tick
IdealCrossbar::send(NodeId src, NodeId dst, std::uint32_t bytes,
                    MsgClass cls, Tick now)
{
    vsnoop_assert(src < numNodes_ && dst < numNodes_,
                  "node out of range: src=", src, " dst=", dst);
    auto ci = static_cast<std::size_t>(cls);
    std::uint32_t flits =
        std::max<std::uint32_t>(1, (bytes + linkBytes_ - 1) / linkBytes_);
    stats_.messages[ci].inc();
    stats_.bytes[ci].inc(bytes);
    // A crossbar is a single hop regardless of endpoints.
    stats_.byteHops[ci].inc(static_cast<std::uint64_t>(flits) *
                            linkBytes_);
    return now + latency_ + (flits - 1);
}

} // namespace vsnoop
