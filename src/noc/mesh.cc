#include "noc/mesh.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"
#include "sim/perfmon.hh"

namespace vsnoop
{

Mesh::Mesh(const MeshConfig &config)
    : width_(config.width), height_(config.height),
      linkBytes_(config.linkBytes), routerPipeline_(config.routerPipeline),
      linkLatency_(config.linkLatency), localLatency_(config.localLatency)
{
    vsnoop_assert(width_ >= 1 && height_ >= 1, "degenerate mesh");
    vsnoop_assert(linkBytes_ >= 1, "link width must be positive");
    widthPow2_ = (width_ & (width_ - 1)) == 0;
    widthShift_ = static_cast<std::uint32_t>(std::countr_zero(width_));
    linkBytesPow2_ = (linkBytes_ & (linkBytes_ - 1)) == 0;
    flitShift_ = static_cast<std::uint32_t>(std::countr_zero(linkBytes_));
    links_.assign(static_cast<std::size_t>(numNodes()) * kLinkStride,
                  LinkState{});
}

std::size_t
Mesh::linkIndex(NodeId from, Direction dir) const
{
    return static_cast<std::size_t>(from) * kLinkStride + dir;
}

NodeId
Mesh::neighbor(NodeId from, Direction dir) const
{
    std::uint32_t x = nodeX(from);
    std::uint32_t y = nodeY(from);
    switch (dir) {
      case East:
        return x + 1 < width_ ? nodeAt(x + 1, y) : kInvalidNode;
      case West:
        return x > 0 ? nodeAt(x - 1, y) : kInvalidNode;
      case North:
        return y + 1 < height_ ? nodeAt(x, y + 1) : kInvalidNode;
      case South:
        return y > 0 ? nodeAt(x, y - 1) : kInvalidNode;
      case Local:
        return from;
    }
    return kInvalidNode;
}

std::uint32_t
Mesh::flitsFor(std::uint32_t bytes) const
{
    std::uint32_t rounded = bytes + linkBytes_ - 1;
    std::uint32_t flits =
        linkBytesPow2_ ? rounded >> flitShift_ : rounded / linkBytes_;
    return std::max<std::uint32_t>(1, flits);
}

std::uint32_t
Mesh::hopCount(NodeId src, NodeId dst) const
{
    auto dx = static_cast<std::int32_t>(nodeX(dst)) -
              static_cast<std::int32_t>(nodeX(src));
    auto dy = static_cast<std::int32_t>(nodeY(dst)) -
              static_cast<std::int32_t>(nodeY(src));
    return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

Tick
Mesh::unloadedLatency(NodeId src, NodeId dst, std::uint32_t bytes) const
{
    if (src == dst)
        return localLatency_;
    std::uint32_t hops = hopCount(src, dst);
    std::uint32_t flits = flitsFor(bytes);
    // Wormhole: head flit pays the full pipeline per hop; the tail
    // follows one link cycle per extra flit.
    return hops * (routerPipeline_ + linkLatency_) +
           (flits - 1) * linkLatency_;
}

Tick
Mesh::send(NodeId src, NodeId dst, std::uint32_t bytes, MsgClass cls,
           Tick now, SendInfo *info)
{
    vsnoop_assert(src < numNodes() && dst < numNodes(),
                  "node out of range: src=", src, " dst=", dst);

    auto ci = static_cast<std::size_t>(cls);
    std::uint32_t hops = hopCount(src, dst);
    std::uint32_t flits = flitsFor(bytes);
    std::uint64_t linkBytesCarried =
        static_cast<std::uint64_t>(flits) * linkBytes_;
    stats_.messages[ci].inc();
    stats_.bytes[ci].inc(bytes);
    stats_.byteHops[ci].inc(linkBytesCarried *
                            std::max<std::uint32_t>(hops, 1));
    if (info != nullptr)
        *info = SendInfo{hops, 0};

    if (src == dst) {
        // The aggregate metric charged one hop; the loopback
        // pseudo-link absorbs it so per-link sums conserve the
        // aggregate (see LinkStat).
        links_[linkIndex(src, Local)].byteHops[ci] += linkBytesCarried;
        return now + localLatency_;
    }
    Tick occupancy = static_cast<Tick>(flits) * linkLatency_;

    // Walk the XY path, reserving each directed link for the
    // message's serialization time.  The head's arrival at the next
    // router is delayed by both the pipeline and any link backlog.
    // XY routing fixes the direction per leg, so each leg advances
    // the link index by a constant stride instead of re-deriving
    // (node, direction) coordinates per hop.
    std::uint32_t x = nodeX(src);
    std::uint32_t y = nodeY(src);
    std::uint32_t dst_x = nodeX(dst);
    std::uint32_t dst_y = nodeY(dst);
    Tick head = now;
    auto walkLeg = [&](std::size_t idx, std::ptrdiff_t stride,
                       std::uint32_t steps) {
        if (perf_ != nullptr)
            perf_->legLength.sample(steps);
        for (std::uint32_t s = 0; s < steps; ++s) {
            LinkState &link = links_[idx];
            Tick ready = head + routerPipeline_;
            if (link.free > ready) {
                link.waitCycles += link.free - ready;
                if (info != nullptr)
                    info->queueWait += link.free - ready;
            }
            // Zero-wait hops land in bucket 0, so the histogram is
            // the full backlog distribution, not just its tail.
            if (perf_ != nullptr)
                perf_->sendBacklog.sample(
                    link.free > ready ? link.free - ready : 0);
            Tick start = std::max(ready, link.free);
            link.free = start + occupancy;
            link.byteHops[ci] += linkBytesCarried;
            link.busyCycles += occupancy;
            head = start + linkLatency_;
            idx = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(idx) + stride);
        }
    };
    if (x != dst_x) {
        Direction dir = x < dst_x ? East : West;
        std::ptrdiff_t step = x < dst_x ? 1 : -1;
        std::uint32_t steps = x < dst_x ? dst_x - x : x - dst_x;
        walkLeg(linkIndex(nodeAt(x, y), dir),
                step * static_cast<std::ptrdiff_t>(kLinkStride), steps);
    }
    if (y != dst_y) {
        Direction dir = y < dst_y ? North : South;
        std::ptrdiff_t step = y < dst_y ? static_cast<std::ptrdiff_t>(width_)
                                        : -static_cast<std::ptrdiff_t>(width_);
        std::uint32_t steps = y < dst_y ? dst_y - y : y - dst_y;
        walkLeg(linkIndex(nodeAt(dst_x, y), dir),
                step * static_cast<std::ptrdiff_t>(kLinkStride), steps);
    }
    // Tail flits trail the head on the final link.
    return head + (flits - 1) * linkLatency_;
}

std::vector<LinkStat>
Mesh::linkStats() const
{
    std::vector<LinkStat> out;
    out.reserve(links_.size());
    for (NodeId n = 0; n < numNodes(); ++n) {
        for (std::size_t d = 0; d < kLinkStride; ++d) {
            auto dir = static_cast<Direction>(d);
            NodeId to = neighbor(n, dir);
            if (to == kInvalidNode)
                continue;
            const LinkState &link = links_[linkIndex(n, dir)];
            LinkStat stat;
            stat.from = n;
            stat.to = to;
            for (std::size_t c = 0; c < kNumMsgClasses; ++c)
                stat.byteHops[c] = link.byteHops[c];
            stat.busyCycles = link.busyCycles;
            stat.waitCycles = link.waitCycles;
            out.push_back(stat);
        }
    }
    return out;
}

void
Mesh::resetStats()
{
    Network::resetStats();
    // Accounting only: the contention horizon (free) is protocol
    // state and must survive the warmup boundary untouched.
    for (LinkState &link : links_) {
        std::fill(std::begin(link.byteHops), std::end(link.byteHops),
                  std::uint64_t{0});
        link.busyCycles = 0;
        link.waitCycles = 0;
    }
}

IdealCrossbar::IdealCrossbar(std::uint32_t num_nodes, Tick latency,
                             std::uint32_t link_bytes)
    : numNodes_(num_nodes), latency_(latency), linkBytes_(link_bytes)
{
    vsnoop_assert(num_nodes >= 1, "crossbar needs at least one node");
}

Tick
IdealCrossbar::send(NodeId src, NodeId dst, std::uint32_t bytes,
                    MsgClass cls, Tick now, SendInfo *info)
{
    vsnoop_assert(src < numNodes_ && dst < numNodes_,
                  "node out of range: src=", src, " dst=", dst);
    if (info != nullptr)
        *info = SendInfo{src == dst ? 0u : 1u, 0};
    auto ci = static_cast<std::size_t>(cls);
    std::uint32_t flits =
        std::max<std::uint32_t>(1, (bytes + linkBytes_ - 1) / linkBytes_);
    stats_.messages[ci].inc();
    stats_.bytes[ci].inc(bytes);
    // A crossbar is a single hop regardless of endpoints.
    stats_.byteHops[ci].inc(static_cast<std::uint64_t>(flits) *
                            linkBytes_);
    return now + latency_ + (flits - 1);
}

} // namespace vsnoop
