/**
 * @file
 * Abstract on-chip network interface.
 *
 * The coherence layer talks to the network purely in terms of
 * "deliver this many bytes from node A to node B, tell me when it
 * arrives".  Two implementations exist: the 4x4 2D mesh matching
 * the paper's Garnet configuration (Table II), and an idealized
 * crossbar used for the network-sensitivity ablation.
 *
 * Traffic accounting matches the paper's Table IV metric: the total
 * amount of data transferred through the network, i.e. message
 * bytes multiplied by the number of links each message traverses.
 */

#ifndef VSNOOP_NOC_NETWORK_HH_
#define VSNOOP_NOC_NETWORK_HH_

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vsnoop
{

/** Node index on the network (cores and memory controllers). */
using NodeId = std::uint32_t;

/**
 * Message classes, for per-class traffic accounting.
 */
enum class MsgClass : std::uint8_t
{
    /** Coherence request (transient / persistent snoop). */
    Request,
    /** Token or ack response without data. */
    Response,
    /** Data-bearing response or writeback. */
    Data,
    /** vCPU map synchronization and other control traffic. */
    Control,
};

/** Number of MsgClass values. */
constexpr std::size_t kNumMsgClasses = 4;

/**
 * Per-class and aggregate traffic statistics.
 */
struct NetworkStats
{
    Counter messages[kNumMsgClasses];
    Counter bytes[kNumMsgClasses];
    /**
     * Link occupancy weighted by hop count: flits * link width *
     * hops.  This is the Table IV traffic metric — what the wires
     * actually carry, including flit padding of small messages.
     */
    Counter byteHops[kNumMsgClasses];

    std::uint64_t
    totalMessages() const
    {
        std::uint64_t sum = 0;
        for (const auto &c : messages)
            sum += c.value();
        return sum;
    }

    std::uint64_t
    totalByteHops() const
    {
        std::uint64_t sum = 0;
        for (const auto &c : byteHops)
            sum += c.value();
        return sum;
    }
};

/**
 * Network interface.
 */
class Network
{
  public:
    virtual ~Network() = default;

    /**
     * Send @p bytes from @p src to @p dst, departing at @p now.
     *
     * @return Tick at which the last flit arrives at @p dst.
     */
    virtual Tick send(NodeId src, NodeId dst, std::uint32_t bytes,
                      MsgClass cls, Tick now) = 0;

    /** Number of network nodes. */
    virtual std::uint32_t numNodes() const = 0;

    /** Traffic statistics (accumulated across all sends). */
    const NetworkStats &stats() const { return stats_; }

    /** Reset traffic statistics (e.g. after warmup). */
    void resetStats() { stats_ = NetworkStats{}; }

  protected:
    NetworkStats stats_;
};

} // namespace vsnoop

#endif // VSNOOP_NOC_NETWORK_HH_
