/**
 * @file
 * Abstract on-chip network interface.
 *
 * The coherence layer talks to the network purely in terms of
 * "deliver this many bytes from node A to node B, tell me when it
 * arrives".  Two implementations exist: the 4x4 2D mesh matching
 * the paper's Garnet configuration (Table II), and an idealized
 * crossbar used for the network-sensitivity ablation.
 *
 * Traffic accounting matches the paper's Table IV metric: the total
 * amount of data transferred through the network, i.e. message
 * bytes multiplied by the number of links each message traverses.
 */

#ifndef VSNOOP_NOC_NETWORK_HH_
#define VSNOOP_NOC_NETWORK_HH_

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vsnoop
{

/** Node index on the network (cores and memory controllers). */
using NodeId = std::uint32_t;

/** Sentinel node id: "no node". */
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/**
 * Message classes, for per-class traffic accounting.
 */
enum class MsgClass : std::uint8_t
{
    /** Coherence request (transient / persistent snoop). */
    Request,
    /** Token or ack response without data. */
    Response,
    /** Data-bearing response or writeback. */
    Data,
    /** vCPU map synchronization and other control traffic. */
    Control,
};

/** Number of MsgClass values. */
constexpr std::size_t kNumMsgClasses = 4;

/**
 * Per-class and aggregate traffic statistics.
 */
struct NetworkStats
{
    Counter messages[kNumMsgClasses];
    Counter bytes[kNumMsgClasses];
    /**
     * Link occupancy weighted by hop count: flits * link width *
     * hops.  This is the Table IV traffic metric — what the wires
     * actually carry, including flit padding of small messages.
     */
    Counter byteHops[kNumMsgClasses];

    std::uint64_t
    totalMessages() const
    {
        std::uint64_t sum = 0;
        for (const auto &c : messages)
            sum += c.value();
        return sum;
    }

    std::uint64_t
    totalByteHops() const
    {
        std::uint64_t sum = 0;
        for (const auto &c : byteHops)
            sum += c.value();
        return sum;
    }
};

/**
 * Per-directed-link traffic snapshot, for spatial heatmaps.
 *
 * The aggregate byteHops metric charges node-local delivery
 * (src == dst) one hop even though no physical link is traversed;
 * so that per-link accounting conserves the aggregate exactly,
 * each node also exposes a loopback pseudo-link (from == to) that
 * absorbs the local-delivery charge.  Loopback entries never carry
 * busy or wait cycles — local delivery is uncontended in the
 * timing model.
 */
struct LinkStat
{
    NodeId from = 0;
    /** Downstream node; equal to @p from for the loopback entry. */
    NodeId to = 0;
    /** Bytes carried (flit-padded), per message class. */
    std::uint64_t byteHops[kNumMsgClasses] = {};
    /** Cycles the link spent serializing flits. */
    std::uint64_t busyCycles = 0;
    /** Cycles messages waited for this link behind earlier traffic. */
    std::uint64_t waitCycles = 0;

    std::uint64_t
    totalByteHops() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t b : byteHops)
            sum += b;
        return sum;
    }
};

/**
 * Per-send observability, filled by send() when the caller asks.
 * Reporting only: requesting it never changes delivery timing.
 */
struct SendInfo
{
    /** Physical links traversed (0 for node-local delivery). */
    std::uint32_t hops = 0;
    /**
     * Cycles the message waited for busy links along its path, on
     * top of the unloaded latency.  The critical-path layer
     * aggregates this per message class (trace/critpath.hh).
     */
    Tick queueWait = 0;
};

/**
 * Network interface.
 */
class Network
{
  public:
    virtual ~Network() = default;

    /**
     * Send @p bytes from @p src to @p dst, departing at @p now.
     *
     * @param info When non-null, receives per-send hop and
     *        queue-wait observability (see SendInfo).
     * @return Tick at which the last flit arrives at @p dst.
     */
    virtual Tick send(NodeId src, NodeId dst, std::uint32_t bytes,
                      MsgClass cls, Tick now,
                      SendInfo *info = nullptr) = 0;

    /** Number of network nodes. */
    virtual std::uint32_t numNodes() const = 0;

    /** Traffic statistics (accumulated across all sends). */
    const NetworkStats &stats() const { return stats_; }

    /**
     * Per-link traffic snapshot in a deterministic (node-major)
     * order.  Empty for networks that do not model individual
     * links.  For networks that do, summing byteHops over all
     * entries (loopbacks included) reproduces the aggregate
     * byteHops for every message class.
     */
    virtual std::vector<LinkStat> linkStats() const { return {}; }

    /** Reset traffic statistics (e.g. after warmup). */
    virtual void resetStats() { stats_ = NetworkStats{}; }

  protected:
    NetworkStats stats_;
};

} // namespace vsnoop

#endif // VSNOOP_NOC_NETWORK_HH_
