/**
 * @file
 * The hypervisor model: VM lifecycle, memory virtualization,
 * hypervisor-shared regions, and content-based page sharing.
 *
 * Responsibilities mirror Sections II and VI of the paper:
 *
 *  - allocate host-physical pages to VMs on first touch and record
 *    the guest-to-host mapping per VM;
 *  - expose RW-shared pages: the hypervisor's own globally shared
 *    region, and per-VM communication pages (I/O rings) shared
 *    between one VM and the hypervisor — requests to either must be
 *    broadcast;
 *  - deduplicate identical pages across VMs (content-based page
 *    sharing): pages carrying the same declared content class merge
 *    onto one RO-shared host page; a write to an RO-shared page
 *    triggers copy-on-write, giving the writer a fresh VM-private
 *    page.
 *
 * Page contents are modelled by content-class ids rather than byte
 * arrays: the workload declares which pages are content-identical
 * across VMs (same class id), which corresponds to the paper's
 * idealized continuous hash-based scan.
 */

#ifndef VSNOOP_VIRT_HYPERVISOR_HH_
#define VSNOOP_VIRT_HYPERVISOR_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "virt/page_event.hh"
#include "virt/page_table.hh"

namespace vsnoop
{

/**
 * Hypervisor configuration.
 */
struct HypervisorConfig
{
    /** Pages in the hypervisor's globally shared region. */
    std::uint64_t hypervisorPages = 64;
    /** Per-VM pages shared with the hypervisor (I/O rings etc.). */
    std::uint64_t perVmSharedPages = 16;
    /** Pages per direct inter-VM communication channel. */
    std::uint64_t channelPages = 8;
};

/**
 * Result of an address translation.
 */
struct Translation
{
    HostAddr addr{0};
    PageType type = PageType::VmPrivate;
    /** True when this access triggered a copy-on-write break. */
    bool cowBroke = false;
};

/**
 * The hypervisor.
 */
class Hypervisor
{
  public:
    explicit Hypervisor(const HypervisorConfig &config = {});

    /** Create a VM with @p num_vcpus virtual CPUs. */
    VmId createVm(std::uint32_t num_vcpus);

    /** The configuration this hypervisor was built with. */
    const HypervisorConfig &config() const { return config_; }

    std::uint32_t numVms() const {
        return static_cast<std::uint32_t>(vms_.size());
    }
    std::uint32_t numVcpus(VmId vm) const;

    /** The VM's nested page table (read-only outside the class). */
    const PageTable &pageTable(VmId vm) const;

    /**
     * Translate a guest data access, allocating the page on first
     * touch and breaking content sharing on writes (COW).
     */
    Translation translateData(VmId vm, GuestAddr addr, bool is_write);

    /**
     * Address of a page in the hypervisor's globally shared region.
     * Always RW-shared: any VM may have pulled it into any cache.
     */
    Translation hypervisorAddr(std::uint64_t page_idx,
                               std::uint64_t offset = 0) const;

    /**
     * Address of a page shared between @p vm and the hypervisor
     * (e.g. an I/O ring).  RW-shared.
     */
    Translation vmSharedAddr(VmId vm, std::uint64_t page_idx,
                             std::uint64_t offset = 0);

    /**
     * Address of a page in a direct inter-VM communication channel
     * between @p a and @p b (Section II-B's third sharing source:
     * shared-memory networking between co-located VMs).  RW-shared:
     * either VM may write, so snoops on these pages must broadcast.
     * The channel is symmetric: (a, b) and (b, a) name the same
     * pages.
     */
    Translation channelAddr(VmId a, VmId b, std::uint64_t page_idx,
                            std::uint64_t offset = 0);

    /**
     * Declare the content class of a guest page.  Pages with equal
     * nonzero classes (across any VMs) are candidates for
     * content-based sharing; class 0 means "unique content".
     */
    void declareContent(VmId vm, std::uint64_t guest_page,
                        std::uint64_t content_class);

    /**
     * Run one content scan: merge every same-class page group onto
     * a single RO-shared host page.  Corresponds to the paper's
     * idealized continuous scan when called before measurement.
     *
     * @return Number of pages newly merged (freed).
     */
    std::uint64_t runContentScan();

    /** Combined mapping generation over all VMs (TLB revalidation). */
    std::uint64_t mappingGeneration() const { return generation_; }

    /**
     * Attach (or detach, with nullptr) a page-lifecycle observer
     * (virt/page_event.hh).  Every mapping change — first-touch
     * allocation, shared-region allocation, COW break, content-scan
     * merge — emits one event through the pointer behind a
     * branch-on-null, so runs without an observer pay one pointer
     * test per site.  The listener must outlive the hypervisor.
     */
    void setPageListener(PageEventListener *listener)
    {
        pageListener_ = listener;
    }

    /** The active listener, or nullptr when none is attached. */
    PageEventListener *pageListener() const { return pageListener_; }

    /** @{ Statistics. */
    Counter pagesAllocated;
    Counter pagesDeduplicated;
    Counter cowBreaks;
    /** @} */

  private:
    struct VmState
    {
        std::uint32_t numVcpus = 0;
        PageTable table;
        /** Declared content class per guest page (nonzero only). */
        std::unordered_map<std::uint64_t, std::uint64_t> contentClass;
    };

    /** Reverse info for a host page under content sharing. */
    struct SharedHostPage
    {
        /** (vm, guest_page) pairs currently mapping this page. */
        std::vector<std::pair<VmId, std::uint64_t>> mappers;
    };

    std::uint64_t allocHostPage();
    VmState &vmState(VmId vm);
    const VmState &vmState(VmId vm) const;
    void emitPageEvent(const PageEvent &event);

    HypervisorConfig config_;
    PageEventListener *pageListener_ = nullptr;
    std::vector<VmState> vms_;
    std::uint64_t nextHostPage_ = 1; // page 0 reserved
    std::uint64_t hypervisorBase_ = 0;
    std::uint64_t generation_ = 0;
    /** content class -> canonical host page. */
    std::unordered_map<std::uint64_t, std::uint64_t> canonical_;
    /** host page -> sharing info (content-shared pages only). */
    std::unordered_map<std::uint64_t, SharedHostPage> shared_;
    /** (vm, idx) -> host page for per-VM hypervisor-shared pages. */
    std::unordered_map<std::uint64_t, std::uint64_t> vmShared_;
    /** (min vm, max vm, idx) -> host page for inter-VM channels. */
    std::unordered_map<std::uint64_t, std::uint64_t> channels_;
};

} // namespace vsnoop

#endif // VSNOOP_VIRT_HYPERVISOR_HH_
