#include "virt/page_table.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace vsnoop
{

std::optional<PageTableEntry>
PageTable::lookup(std::uint64_t guest_page) const
{
    const PageTableEntry *entry = entries_.find(guest_page);
    if (entry == nullptr)
        return std::nullopt;
    return *entry;
}

void
PageTable::map(std::uint64_t guest_page, std::uint64_t host_page,
               PageType type)
{
    entries_.getOrInsert(guest_page) = PageTableEntry{host_page, type};
    generation_++;
}

void
PageTable::setType(std::uint64_t guest_page, PageType type)
{
    PageTableEntry *entry = entries_.find(guest_page);
    vsnoop_assert(entry != nullptr,
                  "setType on unmapped guest page ", guest_page);
    entry->type = type;
    generation_++;
}

void
PageTable::unmap(std::uint64_t guest_page)
{
    entries_.erase(guest_page);
    generation_++;
}

void
PageTable::forEach(const std::function<void(std::uint64_t,
                                            const PageTableEntry &)> &fn)
    const
{
    // FlatMap iterates in table (hash-slot) order, which depends on
    // the capacity the table happens to have grown to.  JSON and
    // report consumers walk mappings straight into output bytes, so
    // emission is sorted by guest page: iteration-order differences
    // across capacities must never leak into output.
    std::vector<std::uint64_t> pages;
    pages.reserve(entries_.size());
    entries_.forEach(
        [&pages](std::uint64_t guest_page, const PageTableEntry &) {
            pages.push_back(guest_page);
        });
    std::sort(pages.begin(), pages.end());
    for (std::uint64_t guest_page : pages)
        fn(guest_page, *entries_.find(guest_page));
}

} // namespace vsnoop
