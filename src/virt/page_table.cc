#include "virt/page_table.hh"

#include "sim/logging.hh"

namespace vsnoop
{

std::optional<PageTableEntry>
PageTable::lookup(std::uint64_t guest_page) const
{
    auto it = entries_.find(guest_page);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
PageTable::map(std::uint64_t guest_page, std::uint64_t host_page,
               PageType type)
{
    entries_[guest_page] = PageTableEntry{host_page, type};
    generation_++;
}

void
PageTable::setType(std::uint64_t guest_page, PageType type)
{
    auto it = entries_.find(guest_page);
    vsnoop_assert(it != entries_.end(),
                  "setType on unmapped guest page ", guest_page);
    it->second.type = type;
    generation_++;
}

void
PageTable::unmap(std::uint64_t guest_page)
{
    entries_.erase(guest_page);
    generation_++;
}

void
PageTable::forEach(const std::function<void(std::uint64_t,
                                            const PageTableEntry &)> &fn)
    const
{
    for (const auto &[guest_page, entry] : entries_)
        fn(guest_page, entry);
}

} // namespace vsnoop
