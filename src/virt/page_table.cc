#include "virt/page_table.hh"

#include "sim/logging.hh"

namespace vsnoop
{

std::optional<PageTableEntry>
PageTable::lookup(std::uint64_t guest_page) const
{
    const PageTableEntry *entry = entries_.find(guest_page);
    if (entry == nullptr)
        return std::nullopt;
    return *entry;
}

void
PageTable::map(std::uint64_t guest_page, std::uint64_t host_page,
               PageType type)
{
    entries_.getOrInsert(guest_page) = PageTableEntry{host_page, type};
    generation_++;
}

void
PageTable::setType(std::uint64_t guest_page, PageType type)
{
    PageTableEntry *entry = entries_.find(guest_page);
    vsnoop_assert(entry != nullptr,
                  "setType on unmapped guest page ", guest_page);
    entry->type = type;
    generation_++;
}

void
PageTable::unmap(std::uint64_t guest_page)
{
    entries_.erase(guest_page);
    generation_++;
}

void
PageTable::forEach(const std::function<void(std::uint64_t,
                                            const PageTableEntry &)> &fn)
    const
{
    entries_.forEach(fn);
}

} // namespace vsnoop
