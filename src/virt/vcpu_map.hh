/**
 * @file
 * The vCPU-to-physical-core mapping and its change notifications.
 *
 * The hypervisor scheduler mutates this mapping; the virtual
 * snooping hardware (vCPU map registers, src/core/) listens for
 * placement changes to keep per-VM snoop domains synchronized, the
 * way the paper's hypervisor updates vCPU map registers before
 * transferring control to a VM (Section IV-A).
 */

#ifndef VSNOOP_VIRT_VCPU_MAP_HH_
#define VSNOOP_VIRT_VCPU_MAP_HH_

#include <cstdint>
#include <vector>

#include "sim/core_set.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "virt/sched_sim.hh"

namespace vsnoop
{

/**
 * Observer of vCPU placement changes.
 */
class VcpuMappingListener
{
  public:
    virtual ~VcpuMappingListener() = default;

    /** @p vcpu of @p vm begins running on @p core. */
    virtual void onVcpuPlaced(VCpuId vcpu, VmId vm, CoreId core) = 0;

    /** @p vcpu of @p vm stops running on @p core. */
    virtual void onVcpuRemoved(VCpuId vcpu, VmId vm, CoreId core) = 0;
};

/**
 * Bidirectional vCPU/core mapping.
 */
class VcpuMapping
{
  public:
    explicit VcpuMapping(std::uint32_t num_cores);

    /** Register a vCPU belonging to @p vm; initially unplaced. */
    VCpuId addVcpu(VmId vm);

    std::uint32_t numVcpus() const {
        return static_cast<std::uint32_t>(vmOf_.size());
    }
    std::uint32_t numCores() const {
        return static_cast<std::uint32_t>(vcpuAt_.size());
    }

    /** Place @p vcpu on @p core; the core must be free. */
    void place(VCpuId vcpu, CoreId core);

    /** Remove @p vcpu from its current core (no-op if unplaced). */
    void removeFromCore(VCpuId vcpu);

    /** Exchange the cores of two placed vCPUs. */
    void swap(VCpuId a, VCpuId b);

    /** Core currently running @p vcpu (kInvalidCore if unplaced). */
    CoreId coreOf(VCpuId vcpu) const;

    /** vCPU currently on @p core (kInvalidVCpu if idle). */
    VCpuId vcpuAt(CoreId core) const;

    /** Owning VM of @p vcpu. */
    VmId vmOf(VCpuId vcpu) const;

    /** VM currently running on @p core (kInvalidVm if idle). */
    VmId vmAt(CoreId core) const;

    /**
     * Per-core VM table, indexed by CoreId, kept in sync with
     * placements.  The pointer is stable for the mapping's lifetime;
     * hot accounting paths index it directly instead of paying an
     * indirect vmAt() call per snoop.
     */
    const VmId *vmAtTable() const { return vmAtCore_.data(); }

    /** Cores currently running any vCPU of @p vm. */
    CoreSet coresRunning(VmId vm) const;

    /** Attach a placement listener (not owned). */
    void addListener(VcpuMappingListener *listener);

  private:
    std::vector<VmId> vmOf_;
    std::vector<CoreId> coreOf_;
    std::vector<VCpuId> vcpuAt_;
    /** Cached vmOf_[vcpuAt_[core]] (kInvalidVm for idle cores). */
    std::vector<VmId> vmAtCore_;
    std::vector<VcpuMappingListener *> listeners_;
};

/**
 * Periodic random vCPU shuffler: the paper's approximation of
 * scheduler-driven VM relocation (Section V-C).  Every period, two
 * vCPUs from different VMs are selected at random and their
 * physical cores are exchanged.
 */
class ShuffleMigrator : public Event
{
  public:
    /**
     * @param eq Event queue.
     * @param mapping The mapping to shuffle.
     * @param period Ticks between shuffles.
     * @param seed RNG seed (shuffles are deterministic per seed).
     */
    ShuffleMigrator(EventQueue &eq, VcpuMapping &mapping, Tick period,
                    std::uint64_t seed);

    /** Begin shuffling (first shuffle one period from now). */
    void start();

    /** Stop shuffling. */
    void stop();

    void process() override;

    /** Shuffles performed. */
    Counter migrations;

  private:
    EventQueue &eq_;
    VcpuMapping &mapping_;
    Tick period_;
    Rng rng_;
};

/**
 * Replays a credit-scheduler placement trace onto a VcpuMapping —
 * the scheduler/coherence coupling the paper leaves as future work
 * ("it will be necessary to make hypervisors aware of the migration
 * costs", Section VIII).  Instead of the random shuffles of
 * Section V-C, the snoop-filtering simulation sees the placement
 * decisions a real credit scheduler made, including idle gaps where
 * a vCPU is descheduled entirely.
 */
class TraceMigrator : public Event
{
  public:
    /**
     * @param eq Event queue.
     * @param mapping The mapping to drive.
     * @param trace Scheduler placement trace (time-ordered).
     * @param ticks_per_ms Conversion from trace milliseconds to
     *        simulation ticks.
     */
    TraceMigrator(EventQueue &eq, VcpuMapping &mapping,
                  std::vector<PlacementEvent> trace,
                  double ticks_per_ms);

    /** Apply all t=0 events and arm the first future event. */
    void start();

    /** Stop replaying. */
    void stop();

    void process() override;

    /** True once the trace has been fully applied. */
    bool finished() const { return next_ >= trace_.size(); }

    /** Placement changes applied so far. */
    Counter placements;
    /** Placements that moved a vCPU to a different core. */
    Counter migrations;

  private:
    /** Apply due events; on trace end, re-place stranded vCPUs. */
    void applyDue(Tick now);

    /** Apply every event due at or before @p now. */
    void applyEventsDue(Tick now);

    /** Tick of trace event @p index. */
    Tick eventTick(std::size_t index) const;

    EventQueue &eq_;
    VcpuMapping &mapping_;
    std::vector<PlacementEvent> trace_;
    double ticksPerMs_;
    std::size_t next_ = 0;
    std::vector<CoreId> lastCore_;
};

} // namespace vsnoop

#endif // VSNOOP_VIRT_VCPU_MAP_HH_
