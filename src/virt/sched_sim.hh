/**
 * @file
 * Credit-scheduler simulation (Section III-B of the paper).
 *
 * A self-contained model of Xen's credit scheduler used to
 * reproduce Figure 3 (pinned vs. migrating vCPUs, under- and
 * overcommitted) and Table I (average vCPU relocation periods).
 * This model runs above the cache simulator: it deals in
 * milliseconds of CPU time, not memory accesses.
 *
 * Modelled behaviour:
 *  - each vCPU alternates runnable/blocked phases (exponentially
 *    distributed, per-application means) and must accumulate a
 *    fixed amount of CPU work;
 *  - cores run one vCPU at a time for up to a 30 ms slice; credits
 *    are refilled each accounting period and a vCPU that exhausted
 *    its credits yields to one that has credits left;
 *  - in "full migration" mode an idle core steals a waiting
 *    runnable vCPU from anywhere (Xen's load balancing); in
 *    "no migration" mode vCPUs are pinned one-to-one (or
 *    round-robin when overcommitted) to physical cores;
 *  - domain0 wakes up for short I/O-handling bursts at an
 *    application-dependent rate, displacing guest vCPUs; this is
 *    what makes even undercommitted systems migrate (Table I);
 *  - a migrated vCPU runs below full speed for a short cold-cache
 *    window, which is why pinning wins when cores are plentiful.
 */

#ifndef VSNOOP_VIRT_SCHED_SIM_HH_
#define VSNOOP_VIRT_SCHED_SIM_HH_

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * Scheduling behaviour of one application (one VM's workload).
 */
struct SchedProfile
{
    /** Mean runnable-phase length per vCPU (ms). */
    double meanRunMs = 50.0;
    /** Mean blocked-phase length per vCPU (ms). */
    double meanBlockMs = 5.0;
    /** domain0 wakeups per second caused by this VM's I/O. */
    double dom0WakeupsPerSec = 10.0;
    /** Length of each domain0 burst (ms). */
    double dom0BurstMs = 0.3;
    /**
     * Probability that a waking vCPU is placed on a different free
     * core even when its previous core is available (interrupt- and
     * event-channel-driven wake placement in Xen).
     */
    double wakeMigrateProb = 0.8;
    /** CPU work each vCPU must complete (ms of CPU time). */
    double workMsPerVcpu = 3000.0;
    /**
     * Barrier granularity: work (ms) each vCPU completes per
     * parallel phase before waiting for its VM siblings.  Zero
     * disables barrier coupling.  Fine-grained phases make pinning
     * expensive when cores are overcommitted: a straggler vCPU
     * stalls its whole VM while sibling cores idle (Figure 3b).
     */
    double phaseWorkMs = 0.0;
};

/**
 * Scheduler configuration.
 */
struct SchedConfig
{
    std::uint32_t numCores = 8;
    /** Scheduler time slice (Xen credit default: 30 ms). */
    double sliceMs = 30.0;
    /** Credit accounting period (ms). */
    double accountingMs = 30.0;
    /** Simulation step (ms). */
    double stepMs = 0.1;
    /** Pin vCPUs to fixed cores instead of load balancing. */
    bool pinned = false;
    /** Cold-cache window after a migration (ms). */
    double migrationColdMs = 1.0;
    /** Relative execution speed inside the cold window. */
    double coldSpeed = 0.5;
    /** RNG seed. */
    std::uint64_t seed = 42;
    /** Give up after this much simulated time (ms). */
    double maxSimMs = 600000.0;
    /** Record every placement change into SchedResult::trace. */
    bool recordTrace = false;
};

/**
 * One vCPU placement change, recorded for replay into the
 * coherence-level simulation (the paper's future-work coupling of
 * scheduler policy and snoop filtering).
 */
struct PlacementEvent
{
    /** Simulated time of the change (ms). */
    double timeMs = 0.0;
    VCpuId vcpu = kInvalidVCpu;
    /** New core, or kInvalidCore when the vCPU is descheduled. */
    CoreId core = kInvalidCore;
};

/**
 * Results of one scheduler run.
 */
struct SchedResult
{
    /** Completion time of each VM (ms). */
    std::vector<double> vmFinishMs;
    /** Time the last VM finished (ms). */
    double makespanMs = 0.0;
    /** Total vCPU-to-core mapping changes (guest vCPUs only). */
    std::uint64_t migrations = 0;
    /**
     * Average relocation period (ms): guest vCPU-time divided by
     * mapping changes — Table I's metric.
     */
    double avgRelocationPeriodMs = 0.0;
    /** Fraction of core-time spent running guest vCPUs. */
    double coreUtilization = 0.0;
    /** True when the run hit maxSimMs before completing. */
    bool timedOut = false;
    /** Placement trace (only when SchedConfig::recordTrace). */
    std::vector<PlacementEvent> trace;
};

/**
 * The scheduler simulator.
 */
class SchedulerSim
{
  public:
    /**
     * @param config Scheduler configuration.
     * @param profile Application behaviour (same app in every VM,
     *        as in the paper's experiments).
     * @param num_vms Guest VMs.
     * @param vcpus_per_vm vCPUs per guest VM.
     */
    SchedulerSim(const SchedConfig &config, const SchedProfile &profile,
                 std::uint32_t num_vms, std::uint32_t vcpus_per_vm);

    /** Run to completion (or maxSimMs). */
    SchedResult run();

  private:
    struct VcpuState
    {
        VmId vm = 0;
        bool runnable = true;
        bool done = false;
        /** Parked at a barrier until every VM sibling arrives. */
        bool atBarrier = false;
        /** Became runnable this step via a wake event (event-driven
         *  placement applies); cleared on placement. */
        bool justWoke = false;
        double nextToggleMs = 0.0;
        double creditMs = 0.0;
        double workDoneMs = 0.0;
        /** Work accumulated in the current parallel phase. */
        double phaseWorkMs = 0.0;
        double sliceEndMs = 0.0;
        double coldUntilMs = 0.0;
        CoreId core = kInvalidCore;
        CoreId lastCore = kInvalidCore;
        CoreId pinnedCore = kInvalidCore;
        std::uint64_t mappingChanges = 0;
    };

    struct CoreState
    {
        /** Guest vCPU currently running (kInvalidVCpu if none). */
        VCpuId vcpu = kInvalidVCpu;
        /** Busy with a domain0 burst until this time. */
        double dom0UntilMs = 0.0;
        double busyMs = 0.0;
    };

    void vacate(VCpuId v);
    void placeOn(VCpuId v, CoreId c, double now);
    bool canRun(const VcpuState &v) const;

    SchedConfig config_;
    SchedProfile profile_;
    std::uint32_t numVms_;
    std::uint32_t vcpusPerVm_;
    std::vector<VcpuState> vcpus_;
    std::vector<CoreState> cores_;
    /** Current simulated time, for trace recording. */
    double nowMs_ = 0.0;
    /** Placement trace (filled when config_.recordTrace). */
    std::vector<PlacementEvent> trace_;
    Rng rng_;
};

} // namespace vsnoop

#endif // VSNOOP_VIRT_SCHED_SIM_HH_
