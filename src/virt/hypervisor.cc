#include "virt/hypervisor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vsnoop
{

Hypervisor::Hypervisor(const HypervisorConfig &config) : config_(config)
{
    // Reserve the hypervisor's globally shared region up front.
    hypervisorBase_ = nextHostPage_;
    nextHostPage_ += config_.hypervisorPages;
}

VmId
Hypervisor::createVm(std::uint32_t num_vcpus)
{
    vsnoop_assert(num_vcpus > 0, "a VM needs at least one vCPU");
    vsnoop_assert(vms_.size() < 32,
                  "provider bitmasks support at most 32 VMs");
    auto id = static_cast<VmId>(vms_.size());
    vms_.emplace_back();
    vms_.back().numVcpus = num_vcpus;
    return id;
}

std::uint32_t
Hypervisor::numVcpus(VmId vm) const
{
    return vmState(vm).numVcpus;
}

const PageTable &
Hypervisor::pageTable(VmId vm) const
{
    return vmState(vm).table;
}

Hypervisor::VmState &
Hypervisor::vmState(VmId vm)
{
    vsnoop_assert(vm < vms_.size(), "bad VM id ", vm);
    return vms_[vm];
}

const Hypervisor::VmState &
Hypervisor::vmState(VmId vm) const
{
    vsnoop_assert(vm < vms_.size(), "bad VM id ", vm);
    return vms_[vm];
}

std::uint64_t
Hypervisor::allocHostPage()
{
    pagesAllocated.inc();
    return nextHostPage_++;
}

void
Hypervisor::emitPageEvent(const PageEvent &event)
{
    if (pageListener_ != nullptr)
        pageListener_->onPageEvent(event);
}

Translation
Hypervisor::translateData(VmId vm, GuestAddr addr, bool is_write)
{
    VmState &state = vmState(vm);
    std::uint64_t guest_page = addr.pageNum();
    auto entry = state.table.lookup(guest_page);

    if (!entry) {
        // First touch: allocate a private host page.
        std::uint64_t host_page = allocHostPage();
        state.table.map(guest_page, host_page, PageType::VmPrivate);
        generation_++;
        emitPageEvent({PageEventKind::Map, vm, guest_page, host_page,
                       0, PageType::VmPrivate, PageType::VmPrivate});
        entry = state.table.lookup(guest_page);
    }

    Translation t;
    t.type = entry->type;

    if (is_write && entry->type == PageType::RoShared) {
        // Copy-on-write: the writer gets a fresh private page; the
        // other mappers keep reading the shared copy.
        std::uint64_t host_page = allocHostPage();
        auto shared_it = shared_.find(entry->hostPage);
        if (shared_it != shared_.end()) {
            auto &mappers = shared_it->second.mappers;
            std::erase(mappers, std::make_pair(vm, guest_page));
            if (mappers.empty())
                shared_.erase(shared_it);
        }
        std::uint64_t shared_page = entry->hostPage;
        state.table.map(guest_page, host_page, PageType::VmPrivate);
        // The page's content diverged: it no longer belongs to its
        // declared content class.
        state.contentClass.erase(guest_page);
        generation_++;
        cowBreaks.inc();
        emitPageEvent({PageEventKind::CowBreak, vm, guest_page,
                       host_page, shared_page, PageType::VmPrivate,
                       PageType::RoShared});
        t.type = PageType::VmPrivate;
        t.cowBroke = true;
        t.addr = HostAddr((host_page << kPageShift) | addr.pageOffset());
        return t;
    }

    t.addr = HostAddr((entry->hostPage << kPageShift) | addr.pageOffset());
    return t;
}

Translation
Hypervisor::hypervisorAddr(std::uint64_t page_idx,
                           std::uint64_t offset) const
{
    vsnoop_assert(page_idx < config_.hypervisorPages,
                  "hypervisor page index out of range: ", page_idx);
    vsnoop_assert(offset < kPageBytes, "offset beyond page: ", offset);
    Translation t;
    t.addr =
        HostAddr(((hypervisorBase_ + page_idx) << kPageShift) | offset);
    t.type = PageType::RwShared;
    return t;
}

Translation
Hypervisor::vmSharedAddr(VmId vm, std::uint64_t page_idx,
                         std::uint64_t offset)
{
    vsnoop_assert(vm < vms_.size(), "bad VM id ", vm);
    vsnoop_assert(page_idx < config_.perVmSharedPages,
                  "per-VM shared page index out of range: ", page_idx);
    vsnoop_assert(offset < kPageBytes, "offset beyond page: ", offset);
    std::uint64_t key =
        (static_cast<std::uint64_t>(vm) << 32) | page_idx;
    auto it = vmShared_.find(key);
    std::uint64_t host_page;
    if (it == vmShared_.end()) {
        host_page = allocHostPage();
        vmShared_.emplace(key, host_page);
        emitPageEvent({PageEventKind::Map, vm, page_idx, host_page, 0,
                       PageType::RwShared, PageType::RwShared});
    } else {
        host_page = it->second;
    }
    Translation t;
    t.addr = HostAddr((host_page << kPageShift) | offset);
    t.type = PageType::RwShared;
    return t;
}

Translation
Hypervisor::channelAddr(VmId a, VmId b, std::uint64_t page_idx,
                        std::uint64_t offset)
{
    vsnoop_assert(a < vms_.size() && b < vms_.size(),
                  "bad VM id in channel: ", a, ", ", b);
    vsnoop_assert(a != b, "a channel connects two distinct VMs");
    vsnoop_assert(page_idx < config_.channelPages,
                  "channel page index out of range: ", page_idx);
    vsnoop_assert(offset < kPageBytes, "offset beyond page: ", offset);
    VmId lo = std::min(a, b);
    VmId hi = std::max(a, b);
    std::uint64_t key = (static_cast<std::uint64_t>(lo) << 40) |
                        (static_cast<std::uint64_t>(hi) << 16) |
                        page_idx;
    auto it = channels_.find(key);
    std::uint64_t host_page;
    if (it == channels_.end()) {
        host_page = allocHostPage();
        channels_.emplace(key, host_page);
        // Channel pages are attributed to the lower-numbered VM.
        emitPageEvent({PageEventKind::Map, lo, page_idx, host_page, 0,
                       PageType::RwShared, PageType::RwShared});
    } else {
        host_page = it->second;
    }
    Translation t;
    t.addr = HostAddr((host_page << kPageShift) | offset);
    t.type = PageType::RwShared;
    return t;
}

void
Hypervisor::declareContent(VmId vm, std::uint64_t guest_page,
                           std::uint64_t content_class)
{
    VmState &state = vmState(vm);
    if (content_class == 0) {
        state.contentClass.erase(guest_page);
        return;
    }
    state.contentClass[guest_page] = content_class;
}

std::uint64_t
Hypervisor::runContentScan()
{
    // Pass 1: group declared pages by content class.  Only classes
    // with at least two pages are shareable; a unique page must
    // never be marked RO-shared (it would needlessly widen its
    // snoop destination set).
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<VmId, std::uint64_t>>>
        groups;
    for (VmId vm = 0; vm < vms_.size(); ++vm) {
        for (const auto &[guest_page, cls] : vms_[vm].contentClass)
            groups[cls].emplace_back(vm, guest_page);
    }

    // Pass 2: merge each shareable group onto its canonical page.
    std::uint64_t merged = 0;
    for (auto &[cls, pages] : groups) {
        bool already_canonical = canonical_.contains(cls);
        if (pages.size() < 2 && !already_canonical)
            continue;
        auto cit = canonical_.find(cls);
        std::uint64_t canon;
        if (cit != canonical_.end()) {
            canon = cit->second;
        } else {
            // Prefer reusing an existing mapped page as canonical.
            canon = 0;
            for (const auto &[vm, guest_page] : pages) {
                auto entry = vms_[vm].table.lookup(guest_page);
                if (entry) {
                    canon = entry->hostPage;
                    break;
                }
            }
            if (canon == 0)
                canon = allocHostPage();
            canonical_.emplace(cls, canon);
        }
        SharedHostPage &info = shared_[canon];
        for (const auto &[vm, guest_page] : pages) {
            VmState &state = vms_[vm];
            auto entry = state.table.lookup(guest_page);
            bool had_own_page = entry && entry->hostPage != canon;
            if (!entry || entry->hostPage != canon ||
                entry->type != PageType::RoShared) {
                state.table.map(guest_page, canon, PageType::RoShared);
                generation_++;
                if (had_own_page) {
                    // Relocation remap: the VM's own copy merged
                    // onto the canonical shared page.
                    emitPageEvent({PageEventKind::Remap, vm,
                                   guest_page, canon, entry->hostPage,
                                   PageType::RoShared, entry->type});
                } else if (!entry) {
                    emitPageEvent({PageEventKind::Map, vm, guest_page,
                                   canon, 0, PageType::RoShared,
                                   PageType::RoShared});
                } else {
                    emitPageEvent({PageEventKind::TypeChange, vm,
                                   guest_page, canon, canon,
                                   PageType::RoShared, entry->type});
                }
            }
            auto pair = std::make_pair(vm, guest_page);
            if (std::find(info.mappers.begin(), info.mappers.end(),
                          pair) == info.mappers.end()) {
                info.mappers.push_back(pair);
            }
            if (had_own_page) {
                pagesDeduplicated.inc();
                merged++;
            }
        }
    }
    return merged;
}

} // namespace vsnoop
